// Command dynocache-sim runs one trace-driven code cache simulation:
// a Table 1 benchmark (or a saved trace file) against one eviction policy
// at one cache pressure factor.
//
// Usage:
//
//	dynocache-sim -bench gzip -policy 8-unit -pressure 2
//	dynocache-sim -trace word.trace -policy fifo -pressure 10
//
// Policies: flush, fifo, lru, adaptive, preemptive, N-unit (e.g. 8-unit),
// generational/N.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynocache"
	"dynocache/internal/overhead"
	"dynocache/internal/report"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "", "Table 1 benchmark name to synthesize")
	traceFile := flag.String("trace", "", "saved trace file to replay instead of -bench")
	scale := flag.Float64("scale", 1.0, "workload scale for -bench")
	policyStr := flag.String("policy", "8-unit", "eviction policy")
	pressure := flag.Int("pressure", 2, "cache pressure factor n (capacity = maxCache/n)")
	links := flag.Bool("links", true, "include link-maintenance costs in the overhead estimate")
	occupancy := flag.Bool("occupancy", false, "print cache occupancy and live-link timelines")
	flag.Parse()

	var (
		tr  *trace.Trace
		err error
	)
	switch {
	case *traceFile != "":
		tr, err = trace.Load(*traceFile)
	case *bench != "":
		var p workload.Profile
		p, err = workload.ByName(*bench)
		if err == nil {
			tr, err = p.Scaled(*scale).Synthesize()
		}
	default:
		return fmt.Errorf("one of -bench or -trace is required")
	}
	if err != nil {
		return err
	}

	policy, err := dynocache.ParsePolicy(*policyStr)
	if err != nil {
		return err
	}
	opts := sim.Options{CensusEvery: 2000}
	if *occupancy {
		n := len(tr.Accesses) / 400
		if n < 1 {
			n = 1
		}
		opts.OccupancyEvery = n
	}
	res, err := sim.Run(tr, policy, *pressure, opts)
	if err != nil {
		return err
	}

	model := overhead.Paper()
	b := res.Overhead(model, *links)
	s := res.Stats
	fmt.Printf("benchmark      %s (%d superblocks, %d accesses)\n", tr.Name, tr.NumBlocks(), len(tr.Accesses))
	fmt.Printf("policy         %s   pressure %d   capacity %d bytes\n", policy, *pressure, res.Capacity)
	fmt.Printf("miss rate      %.4f (%d misses / %d accesses)\n", s.MissRate(), s.Misses, s.Accesses)
	fmt.Printf("evictions      %d invocations, %d blocks, %d bytes\n",
		s.EvictionInvocations, s.BlocksEvicted, s.BytesEvicted)
	fmt.Printf("links          %d patched, %d inter-unit removals, %.1f%% of live links cross units\n",
		s.LinksPatched, s.InterUnitLinksRemoved, 100*res.InterUnitLinkFraction())
	fmt.Printf("overhead       %s instructions\n", b)
	fmt.Printf("est. time      %.4f s management overhead (CPI %.2f @ %.2f GHz)\n",
		model.Seconds(b.Total()), model.CPI, model.ClockHz/1e9)
	if *occupancy && len(res.Occupancy) > 0 {
		bytes := make([]float64, len(res.Occupancy))
		linksLive := make([]float64, len(res.Occupancy))
		for i, o := range res.Occupancy {
			bytes[i] = float64(o.ResidentBytes)
			linksLive[i] = float64(o.LiveLinks)
		}
		fmt.Printf("occupancy      %s\n", report.Sparkline(bytes, 80))
		fmt.Printf("live links     %s\n", report.Sparkline(linksLive, 80))
	}
	return nil
}
