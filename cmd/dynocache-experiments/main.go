// Command dynocache-experiments regenerates every table and figure of the
// paper's evaluation.
//
// Usage:
//
//	dynocache-experiments [-quick] [-scale 1.0] [-pressures 2,4,6,8,10]
//	                      [-maxunits 64] [-out report.txt] [-only fig6,...]
//	                      [-check] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -check replays every simulation under the verification layer
// (internal/check): structural invariants are validated after every cache
// operation and FIFO-family runs are compared in lockstep against an
// independent oracle simulator. Output is identical; the run is a few
// times slower.
//
// The full-scale run (-scale 1.0) reproduces Table 1's superblock counts
// exactly and takes about a CPU-minute; -quick runs a 5%-scale version in
// well under a minute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dynocache/internal/experiments"
	"dynocache/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "run at 5% workload scale")
	scale := flag.Float64("scale", 0, "workload scale override (1.0 = paper scale)")
	pressures := flag.String("pressures", "", "comma-separated cache pressure factors (default 2,4,6,8,10)")
	maxUnits := flag.Int("maxunits", 0, "largest unit count in the granularity sweep")
	out := flag.String("out", "", "write the report to a file instead of stdout")
	csvDir := flag.String("csvdir", "", "also export every figure's data as CSV files into this directory")
	only := flag.String("only", "", "comma-separated experiment ids (table1,fig3,fig4,fig6..fig15,eq3,eq4,table2,sec53,multiprog,sensitivity,ablations,appendix)")
	checkRuns := flag.Bool("check", false, "verify every simulation against invariants and the oracle simulator")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintf(os.Stderr, "dynocache-experiments: %v\n", perr)
		}
	}()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *maxUnits > 0 {
		cfg.MaxUnits = *maxUnits
	}
	cfg.Verify = *checkRuns
	if *pressures != "" {
		cfg.Pressures = nil
		for _, f := range strings.Split(*pressures, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad pressure %q: %w", f, err)
			}
			cfg.Pressures = append(cfg.Pressures, p)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dynocache experiment suite (scale %.3g, pressures %v, sweep to %d units)\n",
		cfg.Scale, cfg.Pressures, cfg.MaxUnits)

	if *csvDir != "" {
		if err := writeCSVs(suite, *csvDir); err != nil {
			return err
		}
		fmt.Fprintf(w, "CSV data written to %s\n", *csvDir)
	}
	if *only == "" {
		return suite.RunAll(w)
	}
	for _, id := range strings.Split(*only, ",") {
		if err := runOne(suite, strings.TrimSpace(strings.ToLower(id)), w); err != nil {
			return err
		}
	}
	return nil
}

func runOne(s *experiments.Suite, id string, w io.Writer) error {
	fmt.Fprintf(w, "\n==== %s ====\n\n", id)
	switch id {
	case "table1":
		return s.Table1().Render(w)
	case "fig3":
		r, err := s.Fig3()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "SPEC:\n%s\nWindows:\n%s\n", r.SPEC, r.Windows)
		return nil
	case "fig4":
		return s.Fig4().Render(w)
	case "fig6":
		r, err := s.Fig6()
		if err != nil {
			return err
		}
		return r.Chart().Render(w)
	case "fig7":
		r, err := s.Fig7()
		if err != nil {
			return err
		}
		return r.Series().Render(w)
	case "fig8":
		r, err := s.Fig8()
		if err != nil {
			return err
		}
		return r.Chart().Render(w)
	case "fig9":
		r, err := s.Fig9()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	case "eq3":
		r, err := s.Eq3()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	case "eq4":
		r, err := s.Eq4()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	case "fig10":
		r, err := s.Fig10()
		if err != nil {
			return err
		}
		return r.Chart().Render(w)
	case "fig11":
		r, err := s.Fig11()
		if err != nil {
			return err
		}
		return r.Series().Render(w)
	case "fig12":
		r, err := s.Fig12()
		if err != nil {
			return err
		}
		if err := r.Chart().Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "overall mean links: %.2f; back-pointer table: %.1f%% of cache\n",
			r.OverallMean, r.BackPtrPctOfCache)
		return nil
	case "fig13":
		r, err := s.Fig13()
		if err != nil {
			return err
		}
		return r.Chart().Render(w)
	case "fig14":
		r, err := s.Fig14()
		if err != nil {
			return err
		}
		return r.Chart().Render(w)
	case "fig15":
		r, err := s.Fig15()
		if err != nil {
			return err
		}
		return r.Series().Render(w)
	case "table2":
		r, err := s.Table2()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	case "sec53":
		r, err := s.Sec53()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	case "multiprog":
		r, err := s.Multiprog()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "solo-blend miss rate (8-unit, private caches): %.4f\n", r.SoloBlendMissRate)
		fmt.Fprintf(w, "shared-cache miss rate (8-unit):               %.4f\n\n", r.SharedMissRate8)
		return r.Table().Render(w)
	case "sensitivity":
		r, err := s.Sensitivity()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	case "appendix":
		r, err := s.Appendix(10)
		if err != nil {
			return err
		}
		if err := r.Table().Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchmarks with FIFO > FLUSH: %d/20\n", r.CrossedCount)
		fmt.Fprintf(w, "8-unit miss rate: SPEC %.4f, Windows %.4f\n", r.SPECMissRate, r.WindowsMissRate)
		return nil
	case "ablations":
		r, err := s.Ablations()
		if err != nil {
			return err
		}
		return r.Table().Render(w)
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}
