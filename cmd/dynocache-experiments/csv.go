package main

import (
	"fmt"
	"os"
	"path/filepath"

	"dynocache/internal/experiments"
	"dynocache/internal/report"
)

// writeCSVs exports the numeric data behind every figure as CSV files in
// dir, for plotting with external tools.
func writeCSVs(s *experiments.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, t *report.Table) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.CSV(f); err != nil {
			return err
		}
		return f.Close()
	}

	if err := save("table1.csv", s.Table1()); err != nil {
		return err
	}
	if err := save("fig4.csv", s.Fig4()); err != nil {
		return err
	}

	f6, err := s.Fig6()
	if err != nil {
		return err
	}
	t6 := report.NewTable("", "policy", "miss_rate")
	for i, p := range f6.Policies {
		t6.AddRowf(p, fmt.Sprintf("%.6f", f6.MissRates[i]))
	}
	if err := save("fig6.csv", t6); err != nil {
		return err
	}

	f7, err := s.Fig7()
	if err != nil {
		return err
	}
	h7 := []string{"policy"}
	for _, p := range f7.Pressures {
		h7 = append(h7, fmt.Sprintf("p%d", p))
	}
	t7 := report.NewTable("", h7...)
	for i, pol := range f7.Policies {
		row := []string{pol}
		for _, v := range f7.Rates[i] {
			row = append(row, fmt.Sprintf("%.6f", v))
		}
		t7.AddRow(row...)
	}
	if err := save("fig7.csv", t7); err != nil {
		return err
	}

	f8, err := s.Fig8()
	if err != nil {
		return err
	}
	t8 := report.NewTable("", "policy", "relative_pct", "invocations")
	for i, p := range f8.Policies {
		t8.AddRowf(p, fmt.Sprintf("%.3f", f8.Relative[i]), f8.Absolute[i])
	}
	if err := save("fig8.csv", t8); err != nil {
		return err
	}

	for _, fig := range []struct {
		name string
		get  func() (*experiments.OverheadResult, error)
	}{
		{"fig10.csv", s.Fig10},
		{"fig14.csv", s.Fig14},
	} {
		r, err := fig.get()
		if err != nil {
			return err
		}
		t := report.NewTable("", "policy", "relative_overhead")
		for i, p := range r.Policies {
			t.AddRowf(p, fmt.Sprintf("%.6f", r.Relative[i]))
		}
		if err := save(fig.name, t); err != nil {
			return err
		}
	}

	for _, fig := range []struct {
		name string
		get  func() (*experiments.Fig11Result, error)
	}{
		{"fig11.csv", s.Fig11},
		{"fig15.csv", s.Fig15},
	} {
		r, err := fig.get()
		if err != nil {
			return err
		}
		h := []string{"policy"}
		for _, p := range r.Pressures {
			h = append(h, fmt.Sprintf("p%d", p))
		}
		t := report.NewTable("", h...)
		for i, pol := range r.Policies {
			row := []string{pol}
			for _, v := range r.Relative[i] {
				row = append(row, fmt.Sprintf("%.6f", v))
			}
			t.AddRow(row...)
		}
		if err := save(fig.name, t); err != nil {
			return err
		}
	}

	f12, err := s.Fig12()
	if err != nil {
		return err
	}
	t12 := report.NewTable("", "benchmark", "mean_outbound_links")
	for i, b := range f12.Benchmarks {
		t12.AddRowf(b, fmt.Sprintf("%.4f", f12.MeanLinks[i]))
	}
	if err := save("fig12.csv", t12); err != nil {
		return err
	}

	f13, err := s.Fig13()
	if err != nil {
		return err
	}
	t13 := report.NewTable("", "policy", "inter_unit_pct")
	for i, p := range f13.Policies {
		t13.AddRowf(p, fmt.Sprintf("%.3f", f13.InterPct[i]))
	}
	if err := save("fig13.csv", t13); err != nil {
		return err
	}

	t2, err := s.Table2()
	if err != nil {
		return err
	}
	tt2 := report.NewTable("", "benchmark", "linked_s", "unlinked_s", "slowdown_pct")
	for _, row := range t2.Rows {
		tt2.AddRowf(row.Benchmark,
			fmt.Sprintf("%.6f", row.LinkedSec),
			fmt.Sprintf("%.6f", row.UnlinkedSec),
			fmt.Sprintf("%.1f", row.SlowdownPct))
	}
	if err := save("table2.csv", tt2); err != nil {
		return err
	}

	s53, err := s.Sec53()
	if err != nil {
		return err
	}
	t53 := report.NewTable("", "benchmark", "reduction_pct")
	for i, b := range s53.Benchmarks {
		t53.AddRowf(b, fmt.Sprintf("%.2f", s53.ReductionPct[i]))
	}
	return save("sec53.csv", t53)
}
