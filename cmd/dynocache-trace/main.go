// Command dynocache-trace generates, saves, and inspects code-cache
// traces — the equivalents of the paper's saved DynamoRIO logs.
//
// Usage:
//
//	dynocache-trace gen -bench gzip -out gzip.trace [-scale 1.0]
//	dynocache-trace info gzip.trace
//	dynocache-trace dump gzip.trace [-n 100]
//	dynocache-trace list
package main

import (
	"flag"
	"fmt"
	"os"

	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-trace: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: dynocache-trace <gen|info|dump|list> [flags]")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "gen":
		fs := flag.NewFlagSet("gen", flag.ExitOnError)
		bench := fs.String("bench", "", "Table 1 benchmark name")
		scale := fs.Float64("scale", 1.0, "workload scale")
		out := fs.String("out", "", "output trace file")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *bench == "" || *out == "" {
			return fmt.Errorf("gen requires -bench and -out")
		}
		p, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		tr, err := p.Scaled(*scale).Synthesize()
		if err != nil {
			return err
		}
		if err := tr.Save(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %s\n", *out, tr.Summarize())
		return nil

	case "info":
		if len(args) != 1 {
			return fmt.Errorf("info requires a trace file")
		}
		tr, err := trace.Load(args[0])
		if err != nil {
			return err
		}
		fmt.Println(tr.Summarize())
		fmt.Printf("self-link fraction: %.1f%%\n", 100*tr.SelfLinkFraction())
		return nil

	case "dump":
		fs := flag.NewFlagSet("dump", flag.ExitOnError)
		n := fs.Int("n", 50, "max access lines (0 = all)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("dump requires a trace file")
		}
		tr, err := trace.Load(fs.Arg(0))
		if err != nil {
			return err
		}
		return tr.Dump(os.Stdout, *n)

	case "list":
		for _, p := range workload.Table1() {
			fmt.Printf("%-14s %6d superblocks  %-12s %s\n",
				p.Name, p.Superblocks, p.Suite, p.Description)
		}
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}
