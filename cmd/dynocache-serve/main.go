// Command dynocache-serve is the load harness for the sharded multi-tenant
// cache service (internal/service): K goroutine "tenants" replay Table 1
// traces concurrently against shared code-cache shards, and the harness
// reports aggregate throughput, batch-amortized access latency percentiles,
// backpressure rejections, and shard imbalance.
//
// Usage:
//
//	dynocache-serve [-tenants 8] [-shards 0] [-policy 8-unit] [-scale 0.05]
//	                [-pressure 2] [-batch 64] [-duration 3s] [-passes 0]
//	                [-queue 32] [-benchmarks gzip,mcf,...] [-check]
//	                [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -shards 0 means one shard per tenant (dedicated shards, pinned routing);
// fewer shards than tenants exercises shared-shard contention with
// hash routing. -passes N replays each tenant's trace exactly N times
// (reproducible); -passes 0 runs until -duration elapses.
//
// -check turns on the full verification stack: the invariant wall and
// oracle differ around every shard (internal/check), the service's
// double-entry ledger check (per-tenant counters must sum to the
// engine-side counters), and — when every tenant has a dedicated shard —
// an exact comparison of each tenant's miss/eviction counters against a
// single-threaded sim replay of the same access stream. Any violation
// exits non-zero, as does a deadlock (no worker progress before the
// watchdog fires).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dynocache"
	"dynocache/internal/core"
	"dynocache/internal/profiling"
	"dynocache/internal/service"
	"dynocache/internal/sim"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-serve: %v\n", err)
		os.Exit(1)
	}
}

// tenantRun is one client goroutine's workload and measurements.
type tenantRun struct {
	name   string
	tr     *trace.Trace
	tenant *service.Tenant

	issued    int       // accesses issued (full + partial passes)
	latencies []float64 // per-access amortized latency, ns, one sample per batch
	err       error
}

func run(w io.Writer) error {
	tenants := flag.Int("tenants", 8, "number of concurrent tenant goroutines")
	shards := flag.Int("shards", 0, "cache shards (0 = one per tenant, pinned)")
	policyStr := flag.String("policy", "8-unit", "eviction policy per shard (flush, N-unit, fifo, lru, ...)")
	scale := flag.Float64("scale", 0.05, "workload scale (1.0 = paper scale)")
	pressure := flag.Int("pressure", 2, "cache pressure factor for shard sizing")
	batch := flag.Int("batch", 64, "accesses per batch (one lock acquisition)")
	duration := flag.Duration("duration", 3*time.Second, "how long to drive load (ignored when -passes > 0)")
	passes := flag.Int("passes", 0, "replay each tenant trace exactly N times (0 = duration mode)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "admission queue depth per shard")
	benchmarks := flag.String("benchmarks", "", "comma-separated Table 1 benchmarks to cycle through (default: all)")
	check := flag.Bool("check", false, "verify invariants, ledger consistency, and (dedicated shards) solo-replay equality")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintf(os.Stderr, "dynocache-serve: %v\n", perr)
		}
	}()

	if *tenants < 1 {
		return fmt.Errorf("need at least 1 tenant")
	}
	if *batch < 1 {
		return fmt.Errorf("batch size must be >= 1")
	}
	nShards := *shards
	dedicated := nShards == 0 || nShards == *tenants
	if nShards == 0 {
		nShards = *tenants
	}

	names := benchmarkNames(*benchmarks)
	policy, err := dynocache.ParsePolicy(*policyStr)
	if err != nil {
		return err
	}

	// Synthesize one trace per tenant, cycling through the benchmark list,
	// and size every shard for the hungriest tenant at the given pressure.
	runs := make([]*tenantRun, *tenants)
	capacity := 0
	for i := range runs {
		bench := names[i%len(names)]
		p, err := workload.ByName(bench)
		if err != nil {
			return err
		}
		tr, err := p.Scaled(*scale).Synthesize()
		if err != nil {
			return err
		}
		c, err := sim.CapacityFor(tr, *pressure)
		if err != nil {
			return err
		}
		if c > capacity {
			capacity = c
		}
		runs[i] = &tenantRun{name: fmt.Sprintf("t%02d-%s", i, bench), tr: tr}
	}

	svc, err := service.New(service.Config{
		Shards:        nShards,
		Policy:        policy,
		ShardCapacity: capacity,
		QueueDepth:    *queue,
		Verify:        *check,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	for i, r := range runs {
		span := core.SuperblockID(r.tr.NumBlocks())
		if dedicated {
			r.tenant, err = svc.RegisterPinned(r.name, i, span)
		} else {
			r.tenant, err = svc.Register(r.name, span)
		}
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "dynocache-serve: %d tenants over %d shards (%s, %d B/shard, batch %d, queue %d, verify %v, GOMAXPROCS %d)\n",
		*tenants, nShards, policy, capacity, *batch, *queue, *check, runtime.GOMAXPROCS(0))

	// Drive the tenants; a watchdog converts a deadlock into a failure
	// instead of a hang.
	start := time.Now()
	done := make(chan int, len(runs))
	for i, r := range runs {
		go func(i int, r *tenantRun) {
			r.err = r.drive(*batch, *passes, *duration)
			done <- i
		}(i, r)
	}
	watchdog := 2**duration + 120*time.Second
	for range runs {
		select {
		case <-done:
		case <-time.After(watchdog):
			return fmt.Errorf("deadlock: no worker progress within %v", watchdog)
		}
	}
	elapsed := time.Since(start)
	for _, r := range runs {
		if r.err != nil {
			return r.err
		}
	}

	reportRun(w, svc, runs, elapsed)

	// Always close the double-entry ledger; -check additionally demands
	// solo-replay equality on dedicated shards.
	if err := svc.CheckConsistency(); err != nil {
		return err
	}
	fmt.Fprintf(w, "ledger: per-tenant counters sum to engine counters on every shard\n")
	if *check && dedicated {
		if err := verifySoloReplay(runs, policy, capacity); err != nil {
			return err
		}
		fmt.Fprintf(w, "solo-replay: per-tenant miss/eviction counters match single-threaded sim replay\n")
	}
	return nil
}

// drive replays the tenant's trace in batches until the pass count or the
// deadline is reached, backing off on backpressure.
func (r *tenantRun) drive(batch, passes int, duration time.Duration) error {
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return r.tr.Blocks[id], nil
	}
	deadline := time.Now().Add(duration)
	accesses := r.tr.Accesses
	for pass := 0; ; pass++ {
		if passes > 0 && pass >= passes {
			return nil
		}
		for cur := 0; cur < len(accesses); cur += batch {
			if passes == 0 && !time.Now().Before(deadline) {
				return nil
			}
			end := cur + batch
			if end > len(accesses) {
				end = len(accesses)
			}
			ids := accesses[cur:end]
			for {
				t0 := time.Now()
				err := r.tenant.ReplayBatch(ids, regen)
				if err == nil {
					r.latencies = append(r.latencies,
						float64(time.Since(t0).Nanoseconds())/float64(len(ids)))
					break
				}
				var busy *service.BacklogError
				if !errors.As(err, &busy) {
					return err
				}
				backoff := busy.RetryAfter
				if backoff > 5*time.Millisecond {
					backoff = 5 * time.Millisecond
				}
				time.Sleep(backoff)
			}
			r.issued += len(ids)
		}
	}
}

// verifySoloReplay re-runs each tenant's issued access stream through the
// single-threaded simulator and demands exact counter equality — the
// concurrency layer must not change what the cache did.
func verifySoloReplay(runs []*tenantRun, policy core.Policy, capacity int) error {
	for _, r := range runs {
		solo := trace.New(r.name)
		for _, id := range r.tr.SortedIDs() {
			if err := solo.Define(r.tr.Blocks[id]); err != nil {
				return err
			}
		}
		for i := 0; i < r.issued; i++ {
			if err := solo.Touch(r.tr.Accesses[i%len(r.tr.Accesses)]); err != nil {
				return err
			}
		}
		res, err := sim.Run(solo, policy, 1, sim.Options{Capacity: capacity})
		if err != nil {
			return err
		}
		got := r.tenant.Stats()
		want := res.Stats
		if got.Accesses != want.Accesses || got.Hits != want.Hits || got.Misses != want.Misses ||
			got.InsertedBlocks != want.InsertedBlocks || got.InsertedBytes != want.InsertedBytes ||
			got.EvictionInvocations != want.EvictionInvocations ||
			got.BlocksEvicted != want.BlocksEvicted || got.BytesEvicted != want.BytesEvicted {
			return fmt.Errorf("solo-replay mismatch for %s: service (a=%d h=%d m=%d ins=%d/%dB ev=%d/%d/%dB) vs solo (a=%d h=%d m=%d ins=%d/%dB ev=%d/%d/%dB)",
				r.name,
				got.Accesses, got.Hits, got.Misses, got.InsertedBlocks, got.InsertedBytes,
				got.EvictionInvocations, got.BlocksEvicted, got.BytesEvicted,
				want.Accesses, want.Hits, want.Misses, want.InsertedBlocks, want.InsertedBytes,
				want.EvictionInvocations, want.BlocksEvicted, want.BytesEvicted)
		}
	}
	return nil
}

// reportRun prints the per-tenant table and the aggregate service metrics.
func reportRun(w io.Writer, svc *service.Service, runs []*tenantRun, elapsed time.Duration) {
	fmt.Fprintf(w, "\n%-14s %5s %10s %10s %9s %10s %9s %9s %9s\n",
		"tenant", "shard", "accesses", "misses", "missrate", "evictions", "rejected", "p50(µs)", "p99(µs)")
	var all []float64
	var totalAccesses uint64
	for _, r := range runs {
		st := r.tenant.Stats()
		totalAccesses += st.Accesses
		all = append(all, r.latencies...)
		qs := stats.Quantiles(r.latencies, 0.5, 0.99)
		missRate := 0.0
		if st.Accesses > 0 {
			missRate = float64(st.Misses) / float64(st.Accesses)
		}
		fmt.Fprintf(w, "%-14s %5d %10d %10d %9.4f %10d %9d %9.2f %9.2f\n",
			r.name, r.tenant.Shard(), st.Accesses, st.Misses, missRate,
			st.EvictionInvocations, st.Rejected, qs[0]/1e3, qs[1]/1e3)
	}
	qs := stats.Quantiles(all, 0.5, 0.99)
	fmt.Fprintf(w, "\naggregate throughput: %.2f M accesses/s (%d accesses in %v)\n",
		float64(totalAccesses)/elapsed.Seconds()/1e6, totalAccesses, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "access latency (batch-amortized): p50 %.2fµs p99 %.2fµs\n", qs[0]/1e3, qs[1]/1e3)

	shardAcc := make([]float64, 0, svc.NumShards())
	var maxAcc, sumAcc float64
	for _, st := range svc.ShardStats() {
		a := float64(st.Accesses)
		shardAcc = append(shardAcc, a)
		sumAcc += a
		if a > maxAcc {
			maxAcc = a
		}
	}
	if sumAcc > 0 {
		mean := sumAcc / float64(len(shardAcc))
		fmt.Fprintf(w, "shard imbalance: max/mean accesses %.3f (stddev %.0f)\n",
			maxAcc/mean, stats.StdDev(shardAcc))
	}
}

// benchmarkNames resolves the -benchmarks flag (default: all of Table 1).
func benchmarkNames(flagVal string) []string {
	if flagVal == "" {
		var names []string
		for _, p := range workload.Table1() {
			names = append(names, p.Name)
		}
		return names
	}
	var names []string
	for _, n := range strings.Split(flagVal, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	return names
}
