// Command dynocache-serve is the load harness for the sharded multi-tenant
// cache service (internal/service): K goroutine "tenants" replay Table 1
// traces concurrently against shared code-cache shards, and the harness
// reports aggregate throughput, batch-amortized access latency percentiles,
// backpressure rejections, shard imbalance, and live-migration activity.
//
// Usage:
//
//	dynocache-serve [-tenants 8] [-shards 0] [-policy 8-unit] [-scale 0.05]
//	                [-pressure 2] [-batch 64] [-duration 3s] [-passes 0]
//	                [-queue 32] [-benchmarks gzip,mcf,...] [-check]
//	                [-hotspot 0] [-rebalance] [-compare]
//	                [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -shards 0 means one shard per tenant (dedicated shards, pinned routing);
// fewer shards than tenants exercises shared-shard contention with
// hash routing. -passes N replays each tenant's trace exactly N times
// (reproducible); -passes 0 runs until -duration elapses.
//
// -hotspot D makes the load skewed and non-stationary: one tenant at a
// time drives full speed while the rest throttle, and the hot role
// rotates every D. -rebalance starts the service's load-aware migration
// manager against that skew. -compare runs the same workload twice —
// static routing, then rebalanced — and exits non-zero unless the
// controller beats static routing on p99 latency without giving up
// throughput.
//
// -check turns on the full verification stack: the invariant wall and
// oracle differ around every shard (internal/check), the service's
// double-entry ledger check (per-tenant counters must sum to the
// engine-side counters), and — when every tenant has a dedicated shard
// and no rebalancer may co-locate tenants — an exact comparison of each
// tenant's miss/eviction counters against a single-threaded sim replay
// of the same access stream. Any violation exits non-zero, as does a
// deadlock (no worker progress before the watchdog fires).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynocache"
	"dynocache/internal/core"
	"dynocache/internal/profiling"
	"dynocache/internal/service"
	"dynocache/internal/sim"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-serve: %v\n", err)
		os.Exit(1)
	}
}

// tenantRun is one client goroutine's workload and measurements.
type tenantRun struct {
	name   string
	idx    int
	tr     *trace.Trace
	tenant *service.Tenant

	issued    int       // accesses issued (full + partial passes)
	latencies []float64 // per-access amortized latency, ns, one sample per batch
	err       error
}

// hotspotColdShrink throttles the tenants that do not currently hold the
// hot role: cold tenants submit batches this many times smaller, so the
// hot tenant dominates its shard's access rate while every tenant keeps a
// request in flight. Throttling by batch size instead of sleeping keeps
// sustained admission pressure on a shared shard — which is exactly the
// co-location cost a rebalancer can remove — and keeps cold latency off
// the scheduler's sleep/wake path, which on a small machine would drown
// the signal in wake-up jitter.
const hotspotColdShrink = 8

// hotspotState shares the rotating hot-tenant index with the drivers.
type hotspotState struct {
	interval time.Duration
	hot      atomic.Int32
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func startHotspot(interval time.Duration, tenants int) *hotspotState {
	hs := &hotspotState{interval: interval, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hs.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-hs.stop:
				return
			case <-tick.C:
				hs.hot.Store((hs.hot.Load() + 1) % int32(tenants))
			}
		}
	}()
	return hs
}

func (hs *hotspotState) halt() {
	hs.stopOnce.Do(func() { close(hs.stop) })
	<-hs.done
}

// phaseConfig is everything one measurement phase needs; -compare runs
// two phases over the same synthesized traces.
type phaseConfig struct {
	tenants   int
	shards    int
	dedicated bool
	policy    core.Policy
	capacity  int
	batch     int
	passes    int
	duration  time.Duration
	queue     int
	check     bool
	hotspot   time.Duration
	rebalance bool
	// pinAll0 starts every tenant on shard 0 — the reproducible
	// adversarial placement -compare uses for both phases, so the A/B
	// isolates exactly one variable: whether the controller may move
	// tenants off the pile-up.
	pinAll0 bool

	names  []string
	traces []*trace.Trace
}

// phaseResult is the headline metrics of one phase.
type phaseResult struct {
	throughput float64 // M accesses/s
	p50, p99   float64 // ns, batch-amortized (includes backoff)
	// worstP99 is the highest per-tenant p99 — the victim metric. The
	// aggregate p99 is dominated by the hot tenant's own samples (it
	// issues orders of magnitude more batches), so the queueing a cold
	// tenant suffers behind a co-located hot tenant only shows up here.
	worstP99 float64
	// imbalance is max/mean of per-shard engine access counts — the
	// placement-quality metric the rebalancer exists to fix. Engine
	// counters stay where the work was served (ledger transfers move the
	// tenant columns, not the engine's), so this measures actual load
	// placement over the whole phase.
	imbalance  float64
	rejected   uint64
	migrations service.MigrationStats
}

func run(w io.Writer) error {
	tenants := flag.Int("tenants", 8, "number of concurrent tenant goroutines")
	shards := flag.Int("shards", 0, "cache shards (0 = one per tenant, pinned)")
	policyStr := flag.String("policy", "8-unit", "eviction policy per shard (flush, N-unit, fifo, lru, ...)")
	scale := flag.Float64("scale", 0.05, "workload scale (1.0 = paper scale)")
	pressure := flag.Int("pressure", 2, "cache pressure factor for shard sizing")
	batch := flag.Int("batch", 64, "accesses per batch (one lock acquisition)")
	duration := flag.Duration("duration", 3*time.Second, "how long to drive load (ignored when -passes > 0)")
	passes := flag.Int("passes", 0, "replay each tenant trace exactly N times (0 = duration mode)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "admission queue depth per shard")
	benchmarks := flag.String("benchmarks", "", "comma-separated Table 1 benchmarks to cycle through (default: all)")
	check := flag.Bool("check", false, "verify invariants, ledger consistency, and (dedicated shards) solo-replay equality")
	hotspot := flag.Duration("hotspot", 0, "rotate a full-speed hot tenant every D (0 = uniform load)")
	rebalance := flag.Bool("rebalance", false, "run the load-aware migration manager")
	compare := flag.Bool("compare", false, "run static routing then rebalanced and gate on the improvement")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintf(os.Stderr, "dynocache-serve: %v\n", perr)
		}
	}()

	if *tenants < 1 {
		return fmt.Errorf("need at least 1 tenant")
	}
	if *batch < 1 {
		return fmt.Errorf("batch size must be >= 1")
	}
	if *compare && *hotspot <= 0 {
		return fmt.Errorf("-compare needs a skewed workload; set -hotspot")
	}
	nShards := *shards
	dedicated := nShards == 0 || nShards == *tenants
	if nShards == 0 {
		nShards = *tenants
	}

	benchNames := benchmarkNames(*benchmarks)
	policy, err := dynocache.ParsePolicy(*policyStr)
	if err != nil {
		return err
	}

	// Synthesize one trace per tenant, cycling through the benchmark list,
	// and size every shard for the hungriest tenant at the given pressure.
	cfg := phaseConfig{
		tenants:   *tenants,
		shards:    nShards,
		dedicated: dedicated,
		policy:    policy,
		batch:     *batch,
		passes:    *passes,
		duration:  *duration,
		queue:     *queue,
		check:     *check,
		hotspot:   *hotspot,
		rebalance: *rebalance,
	}
	for i := 0; i < *tenants; i++ {
		bench := benchNames[i%len(benchNames)]
		p, err := workload.ByName(bench)
		if err != nil {
			return err
		}
		tr, err := p.Scaled(*scale).Synthesize()
		if err != nil {
			return err
		}
		c, err := sim.CapacityFor(tr, *pressure)
		if err != nil {
			return err
		}
		if c > cfg.capacity {
			cfg.capacity = c
		}
		cfg.names = append(cfg.names, fmt.Sprintf("t%02d-%s", i, bench))
		cfg.traces = append(cfg.traces, tr)
	}

	if !*compare {
		_, err := runPhase(w, cfg)
		return err
	}

	staticCfg := cfg
	staticCfg.rebalance = false
	staticCfg.pinAll0 = true
	cfg.pinAll0 = true
	fmt.Fprintf(w, "=== phase 1: static routing ===\n")
	staticRes, err := runPhase(w, staticCfg)
	if err != nil {
		return err
	}
	rebalCfg := cfg
	rebalCfg.rebalance = true
	fmt.Fprintf(w, "\n=== phase 2: rebalanced routing ===\n")
	rebalRes, err := runPhase(w, rebalCfg)
	if err != nil {
		return err
	}
	return gateComparison(w, staticRes, rebalRes)
}

// gateComparison is the -compare acceptance. Both phases start from the
// same adversarial placement (every tenant on shard 0); the only variable
// is whether the controller may move tenants. The primary gate is the
// placement metric itself — the rebalanced phase must decisively cut the
// shard load imbalance the static phase is stuck with — because that is
// deterministic: static stays at max/mean == numShards by construction,
// and a working controller converges near 1. Throughput and worst-tenant
// p99 gate only as collapse guards with wide noise margins: on a
// multi-core host fixing placement directly buys parallel service (p99
// and throughput wins), but a single-CPU shared runner serializes every
// shard onto one core and adds ±25% run-to-run throughput noise, so the
// paper metrics would flake as primary gates there.
func gateComparison(w io.Writer, static, rebal phaseResult) error {
	p99Ratio := rebal.worstP99 / static.worstP99
	thrRatio := rebal.throughput / static.throughput
	fmt.Fprintf(w, "\ncompare: shard imbalance %.3f -> %.3f, worst-tenant p99 %.2fµs -> %.2fµs (x%.3f), throughput %.2f -> %.2f M/s (x%.3f), %d migrations\n",
		static.imbalance, rebal.imbalance,
		static.worstP99/1e3, rebal.worstP99/1e3, p99Ratio,
		static.throughput, rebal.throughput, thrRatio,
		rebal.migrations.Completed)
	if rebal.migrations.Completed == 0 {
		return fmt.Errorf("compare: rebalanced phase never migrated — manager did not react to the hotspot")
	}
	if rebal.imbalance > 0.7*static.imbalance {
		return fmt.Errorf("compare: rebalancing must cut shard imbalance to <= 70%% of static, got %.3f vs %.3f",
			rebal.imbalance, static.imbalance)
	}
	if thrRatio < 0.60 {
		return fmt.Errorf("compare: rebalancing collapsed throughput, x%.3f < 0.60", thrRatio)
	}
	if p99Ratio > 1.50 {
		return fmt.Errorf("compare: rebalancing collapsed the worst-tenant p99, x%.3f > 1.50", p99Ratio)
	}
	fmt.Fprintf(w, "compare: PASS (imbalance cut %.1f%%, throughput x%.3f, worst-tenant p99 x%.3f)\n",
		(1-rebal.imbalance/static.imbalance)*100, thrRatio, p99Ratio)
	return nil
}

// runPhase builds a fresh service, drives the full workload against it,
// reports, and closes the ledger.
func runPhase(w io.Writer, cfg phaseConfig) (phaseResult, error) {
	var res phaseResult
	runs := make([]*tenantRun, cfg.tenants)
	for i := range runs {
		runs[i] = &tenantRun{name: cfg.names[i], idx: i, tr: cfg.traces[i]}
	}
	svc, err := service.New(service.Config{
		Shards:        cfg.shards,
		Policy:        cfg.policy,
		ShardCapacity: cfg.capacity,
		QueueDepth:    cfg.queue,
		Verify:        cfg.check,
	})
	if err != nil {
		return res, err
	}
	defer svc.Close()
	for i, r := range runs {
		span := core.SuperblockID(r.tr.NumBlocks())
		switch {
		case cfg.pinAll0:
			r.tenant, err = svc.RegisterPinned(r.name, 0, span)
		case cfg.dedicated:
			r.tenant, err = svc.RegisterPinned(r.name, i, span)
		default:
			r.tenant, err = svc.Register(r.name, span)
		}
		if err != nil {
			return res, err
		}
	}

	fmt.Fprintf(w, "dynocache-serve: %d tenants over %d shards (%s, %d B/shard, batch %d, queue %d, verify %v, hotspot %v, rebalance %v, GOMAXPROCS %d)\n",
		cfg.tenants, cfg.shards, cfg.policy, cfg.capacity, cfg.batch, cfg.queue,
		cfg.check, cfg.hotspot, cfg.rebalance, runtime.GOMAXPROCS(0))

	var hs *hotspotState
	if cfg.hotspot > 0 && cfg.tenants > 1 {
		hs = startHotspot(cfg.hotspot, cfg.tenants)
		defer hs.halt()
	}
	var mgr *service.Manager
	if cfg.rebalance {
		// React well inside one hotspot rotation: the victim metric only
		// improves if isolation lag is a small fraction of the hot period.
		mgr = svc.StartManager(service.ManagerConfig{
			Interval: 50 * time.Millisecond,
			Cooldown: 100 * time.Millisecond,
		})
		defer mgr.Stop()
	}

	// Drive the tenants; a watchdog converts a deadlock into a failure
	// instead of a hang.
	start := time.Now()
	done := make(chan int, len(runs))
	for i, r := range runs {
		go func(i int, r *tenantRun) {
			r.err = r.drive(cfg.batch, cfg.passes, cfg.duration, hs)
			done <- i
		}(i, r)
	}
	watchdog := 2*cfg.duration + 120*time.Second
	for range runs {
		select {
		case <-done:
		case <-time.After(watchdog):
			return res, fmt.Errorf("deadlock: no worker progress within %v", watchdog)
		}
	}
	elapsed := time.Since(start)
	for _, r := range runs {
		if r.err != nil {
			return res, r.err
		}
	}
	if mgr != nil {
		mgr.Stop()
	}
	if hs != nil {
		hs.halt()
	}

	res = reportRun(w, svc, runs, elapsed)

	// Always close the double-entry ledger; -check additionally demands
	// solo-replay equality when shards stay dedicated (a rebalancer may
	// co-locate tenants, which legitimately changes eviction interleaving).
	if err := svc.CheckConsistency(); err != nil {
		return res, err
	}
	fmt.Fprintf(w, "ledger: per-tenant counters sum to engine counters on every shard\n")
	if cfg.check && cfg.dedicated && !cfg.rebalance {
		if err := verifySoloReplay(runs, cfg.policy, cfg.capacity); err != nil {
			return res, err
		}
		fmt.Fprintf(w, "solo-replay: per-tenant miss/eviction counters match single-threaded sim replay\n")
	}
	return res, nil
}

// drive replays the tenant's trace in batches until the pass count or the
// deadline is reached, backing off on backpressure. The latency clock
// starts before the first submission attempt, so retry backoff — the
// client-visible cost of backpressure and migration freezes — lands in
// the percentiles instead of vanishing.
func (r *tenantRun) drive(batch, passes int, duration time.Duration, hs *hotspotState) error {
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return r.tr.Blocks[id], nil
	}
	deadline := time.Now().Add(duration)
	accesses := r.tr.Accesses
	for pass := 0; ; pass++ {
		if passes > 0 && pass >= passes {
			return nil
		}
		for cur := 0; cur < len(accesses); {
			if passes == 0 && !time.Now().Before(deadline) {
				return nil
			}
			step := batch
			if hs != nil && hs.hot.Load() != int32(r.idx) {
				if step = batch / hotspotColdShrink; step < 1 {
					step = 1
				}
			}
			end := cur + step
			if end > len(accesses) {
				end = len(accesses)
			}
			ids := accesses[cur:end]
			cur = end
			t0 := time.Now()
			for {
				err := r.tenant.ReplayBatch(ids, regen)
				if err == nil {
					r.latencies = append(r.latencies,
						float64(time.Since(t0).Nanoseconds())/float64(len(ids)))
					break
				}
				var busy *service.BacklogError
				if !errors.As(err, &busy) {
					return err
				}
				backoff := busy.RetryAfter
				if backoff > 5*time.Millisecond {
					backoff = 5 * time.Millisecond
				}
				time.Sleep(backoff)
			}
			r.issued += len(ids)
		}
	}
}

// verifySoloReplay re-runs each tenant's issued access stream through the
// single-threaded simulator and demands exact counter equality — the
// concurrency layer must not change what the cache did.
func verifySoloReplay(runs []*tenantRun, policy core.Policy, capacity int) error {
	for _, r := range runs {
		solo := trace.New(r.name)
		for _, id := range r.tr.SortedIDs() {
			if err := solo.Define(r.tr.Blocks[id]); err != nil {
				return err
			}
		}
		for i := 0; i < r.issued; i++ {
			if err := solo.Touch(r.tr.Accesses[i%len(r.tr.Accesses)]); err != nil {
				return err
			}
		}
		res, err := sim.Run(solo, policy, 1, sim.Options{Capacity: capacity})
		if err != nil {
			return err
		}
		got := r.tenant.Stats()
		want := res.Stats
		if got.Accesses != want.Accesses || got.Hits != want.Hits || got.Misses != want.Misses ||
			got.InsertedBlocks != want.InsertedBlocks || got.InsertedBytes != want.InsertedBytes ||
			got.EvictionInvocations != want.EvictionInvocations ||
			got.BlocksEvicted != want.BlocksEvicted || got.BytesEvicted != want.BytesEvicted {
			return fmt.Errorf("solo-replay mismatch for %s: service (a=%d h=%d m=%d ins=%d/%dB ev=%d/%d/%dB) vs solo (a=%d h=%d m=%d ins=%d/%dB ev=%d/%d/%dB)",
				r.name,
				got.Accesses, got.Hits, got.Misses, got.InsertedBlocks, got.InsertedBytes,
				got.EvictionInvocations, got.BlocksEvicted, got.BytesEvicted,
				want.Accesses, want.Hits, want.Misses, want.InsertedBlocks, want.InsertedBytes,
				want.EvictionInvocations, want.BlocksEvicted, want.BytesEvicted)
		}
	}
	return nil
}

// reportRun prints the per-tenant table and the aggregate service metrics,
// returning the phase's headline numbers.
func reportRun(w io.Writer, svc *service.Service, runs []*tenantRun, elapsed time.Duration) phaseResult {
	fmt.Fprintf(w, "\n%-14s %5s %10s %10s %9s %10s %9s %9s %9s\n",
		"tenant", "shard", "accesses", "misses", "missrate", "evictions", "rejected", "p50(µs)", "p99(µs)")
	var all []float64
	var totalAccesses, totalRejected uint64
	var worstP99 float64
	for _, r := range runs {
		st := r.tenant.Stats()
		totalAccesses += st.Accesses
		totalRejected += st.Rejected
		all = append(all, r.latencies...)
		qs := stats.Quantiles(r.latencies, 0.5, 0.99)
		if qs[1] > worstP99 {
			worstP99 = qs[1]
		}
		missRate := 0.0
		if st.Accesses > 0 {
			missRate = float64(st.Misses) / float64(st.Accesses)
		}
		fmt.Fprintf(w, "%-14s %5d %10d %10d %9.4f %10d %9d %9.2f %9.2f\n",
			r.name, r.tenant.Shard(), st.Accesses, st.Misses, missRate,
			st.EvictionInvocations, st.Rejected, qs[0]/1e3, qs[1]/1e3)
	}
	qs := stats.Quantiles(all, 0.5, 0.99)
	throughput := float64(totalAccesses) / elapsed.Seconds() / 1e6
	fmt.Fprintf(w, "\naggregate throughput: %.2f M accesses/s (%d accesses in %v)\n",
		throughput, totalAccesses, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "access latency (batch-amortized, incl. backoff): p50 %.2fµs p99 %.2fµs, worst-tenant p99 %.2fµs\n",
		qs[0]/1e3, qs[1]/1e3, worstP99/1e3)

	shardAcc := make([]float64, 0, svc.NumShards())
	var maxAcc, sumAcc float64
	for _, st := range svc.ShardStats() {
		a := float64(st.Accesses)
		shardAcc = append(shardAcc, a)
		sumAcc += a
		if a > maxAcc {
			maxAcc = a
		}
	}
	imbalance := 0.0
	if sumAcc > 0 {
		mean := sumAcc / float64(len(shardAcc))
		imbalance = maxAcc / mean
		fmt.Fprintf(w, "shard imbalance: max/mean accesses %.3f (stddev %.0f)\n",
			imbalance, stats.StdDev(shardAcc))
	}
	ms := svc.MigrationStats()
	fmt.Fprintf(w, "migrations: %d started, %d completed, %d aborted, %.1f KiB moved, flip pause last/max %v/%v, route epoch %d\n",
		ms.Started, ms.Completed, ms.Aborted, float64(ms.BytesMoved)/1024,
		ms.FlipPauseLast.Round(time.Microsecond), ms.FlipPauseMax.Round(time.Microsecond),
		svc.RouteEpoch())
	return phaseResult{
		throughput: throughput,
		p50:        qs[0],
		p99:        qs[1],
		worstP99:   worstP99,
		imbalance:  imbalance,
		rejected:   totalRejected,
		migrations: ms,
	}
}

// benchmarkNames resolves the -benchmarks flag (default: all of Table 1).
func benchmarkNames(flagVal string) []string {
	if flagVal == "" {
		var names []string
		for _, p := range workload.Table1() {
			names = append(names, p.Name)
		}
		return names
	}
	var names []string
	for _, n := range strings.Split(flagVal, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	return names
}
