// Command dynocache-dbt runs a synthetic DRISC program under the full
// dynamic binary translator, printing translation, chaining, and cache
// management statistics plus the modelled execution time.
//
// Usage:
//
//	dynocache-dbt [-seed 1] [-policy 8-unit] [-capacity 65536]
//	              [-chaining=true] [-threshold 50] [-budget 100000000]
package main

import (
	"flag"
	"fmt"
	"os"

	"dynocache"
	"dynocache/internal/core"
	"dynocache/internal/dbt"
	"dynocache/internal/program"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-dbt: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "synthetic program seed")
	progFile := flag.String("prog", "", "run a saved program object file instead of generating one")
	saveProg := flag.String("save", "", "save the generated program to an object file and exit")
	policyStr := flag.String("policy", "8-unit", "code cache policy (flush, N-unit, fifo)")
	capacity := flag.Int("capacity", 64<<10, "code cache capacity in bytes")
	chaining := flag.Bool("chaining", true, "enable superblock chaining")
	threshold := flag.Int("threshold", 50, "hot threshold (block executions before translation)")
	budget := flag.Uint64("budget", 100_000_000, "guest instruction budget")
	record := flag.String("record", "", "record the superblock lookup log and save it as a trace file")
	flag.Parse()

	policy, err := dynocache.ParsePolicy(*policyStr)
	if err == nil {
		switch policy.Kind {
		case core.PolicyFlush, core.PolicyUnits, core.PolicyFine:
		default:
			err = fmt.Errorf("the DBT supports flush, N-unit, and fifo policies, got %q", *policyStr)
		}
	}
	if err != nil {
		return err
	}
	var p *program.Program
	if *progFile != "" {
		p, err = program.LoadObj(*progFile)
	} else {
		p, err = program.Generate(program.DefaultGenConfig(*seed))
	}
	if err != nil {
		return err
	}
	if *saveProg != "" {
		if err := p.SaveObj(*saveProg); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d instructions, %d functions\n", *saveProg, len(p.Insts), len(p.Funcs))
		return nil
	}
	code, err := p.Code()
	if err != nil {
		return err
	}
	cfg := dbt.DefaultConfig()
	cfg.Policy = policy
	cfg.CacheCapacity = *capacity
	cfg.Chaining = *chaining
	cfg.HotThreshold = *threshold
	d, err := dbt.New(cfg)
	if err != nil {
		return err
	}
	if *record != "" {
		d.EnableTraceRecording()
	}
	if err := d.Load(code, program.CodeBase, p.Entry); err != nil {
		return err
	}
	if err := d.Run(*budget); err != nil {
		return err
	}

	s := d.Stats()
	cs := d.Cache().Stats()
	fmt.Printf("program        seed %d, %d instructions, %d functions\n", *seed, len(p.Insts), len(p.Funcs))
	fmt.Printf("policy         %s   capacity %d   chaining %v   threshold %d\n",
		policy, *capacity, *chaining, *threshold)
	fmt.Printf("guest work     %d interpreted + %d cached instructions\n", s.InterpretedInsts, s.CacheInsts)
	fmt.Printf("blocks         %d discovered, %d interpreted executions\n", s.BBsDiscovered, s.BBExecutions)
	fmt.Printf("superblocks    %d formed, %d bytes translated, %d wrap pads\n",
		s.SuperblocksFormed, s.TranslatedBytes, s.PadsInserted)
	fmt.Printf("chaining       %d stubs patched, %d unpatched on eviction\n", s.StubsPatched, s.StubsUnpatched)
	fmt.Printf("dispatch       %d cache entries, %d traps (%d indirect)\n",
		s.CacheEntries, s.Traps, s.IndirectTraps)
	fmt.Printf("cache          %d blocks inserted (%d bytes), %d eviction invocations, %d blocks evicted\n",
		cs.InsertedBlocks, cs.InsertedBytes, cs.EvictionInvocations, cs.BlocksEvicted)
	fmt.Printf("optimizer      %d consts folded, %d dead insts removed, %d loads forwarded\n",
		s.OptConstFolded, s.OptDeadRemoved, s.OptLoadsForwarded)
	if d.BBCache() != nil {
		bs := d.BBCache().Stats()
		fmt.Printf("bb cache       %d fragments (%d bytes), %d bb->bb links, %d evictions\n",
			s.BBFragsTranslated, s.BBFragBytes, s.BBToBBLinks, bs.EvictionInvocations)
	}
	fmt.Printf("modelled time  %.6f s (%.0f instructions incl. management)\n",
		d.ModeledSeconds(), d.ModeledInstructions())
	if *record != "" {
		tr, err := d.RecordedTrace(fmt.Sprintf("dbt-seed%d", *seed))
		if err != nil {
			return err
		}
		if err := tr.Save(*record); err != nil {
			return err
		}
		fmt.Printf("recorded       %s -> %s\n", tr.Summarize(), *record)
	}
	return nil
}
