// Command dynocache-bench measures the simulator's critical paths and
// writes a machine-readable report. It pins three workloads:
//
//   - single-run replay of the largest Table 1 trace (word) under the
//     fine-grained FIFO policy, through four loops: the frozen pre-kernel
//     baseline (legacy.go), the generic interface kernel, the
//     devirtualized FIFO kernel, and the streaming decoder feeding the
//     devirtualized kernel;
//   - a full granularity sweep (every FIFO-family policy times every
//     Table 1 benchmark at quick scale) — the parallel path the
//     experiments suite spends its time in;
//   - the multi-configuration kernel pair: the granularity ladder times a
//     pressure ladder on the replay trace, once as sequential per-config
//     replays (sweep/perconfig) and once through the single-pass kernel
//     (sweep/singlepass), plus the representative-interval estimator over
//     the same ladder's turnover regime on word and vortex
//     (sweep/sampled);
//   - the service's ReplayBatch loop, a tenant alone on one shard.
//
// Before timing anything it replays the trace through every loop once
// and insists the results are identical, so the speedups it reports are
// speedups of the same computation.
//
// The replayed policy defaults to fine-grained FIFO and can be pinned to
// any core policy name with -policy (e.g. -policy lru, -policy 8-unit,
// -policy generational/8). Comparison rows replay the same trace under
// exact LRU and sampling approx-LRU so the report always quantifies the
// recency kernels against the FIFO family.
//
// With -gate, the freshly measured report is compared against a committed
// one and the run fails if replay throughput regressed by more than
// -gate-drop (default 15%). The gated metrics are within-process ratios —
// replay_speedup_vs_legacy plus the recency-kernel cost ratios
// lru_cost_vs_generic and approxlru_cost_vs_generic — so they transfer
// across machines of different absolute speed. The LRU cost additionally
// has an absolute ceiling: the exact-LRU kernel must stay under 2x the
// generic FIFO kernel's ns/op, enforced with the same noise allowance
// as the relative gates (the measured ratio sits right at the target).
//
// Usage:
//
//	dynocache-bench -scale 1.0 -pressure 2 -o BENCH_report.json
//	dynocache-bench -policy lru -o -
//	dynocache-bench -gate BENCH_report.json -o BENCH_report.ci.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dynocache/internal/core"
	"dynocache/internal/service"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// benchResult is one benchmark's line in the report. GOMAXPROCS is
// recorded per row, not just at the top level, because the scaling
// sweep re-pins it between rows.
type benchResult struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	AccessesPerSec float64 `json:"accesses_per_sec,omitempty"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

// scalingInfo summarizes the GOMAXPROCS sweep of the contended service
// configuration (shards = procs, two tenants per shard). Efficiency is
// normalized throughput: (APS at max procs / APS at min procs) divided
// by (max procs / min procs) — 1.0 is perfect linear scaling.
type scalingInfo struct {
	Procs          []int     `json:"procs"`
	AccessesPerSec []float64 `json:"accesses_per_sec"`
	Efficiency     float64   `json:"efficiency"`
}

// benchReport is the JSON document bench.sh commits as BENCH_report.json.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Trace    string  `json:"trace"`
	Policy   string  `json:"policy"`
	Blocks   int     `json:"blocks"`
	Accesses int     `json:"accesses"`
	Bytes    int     `json:"bytes"`
	Scale    float64 `json:"scale"`
	Pressure int     `json:"pressure"`

	Benchmarks []benchResult `json:"benchmarks"`

	// Scaling is the multi-core scaling sweep of the shared-nothing
	// service (service/replay-batch/pN rows), absent when the sweep was
	// disabled with -cpu "".
	Scaling *scalingInfo `json:"scaling,omitempty"`

	// Baseline, when provided (-baseline-commit/-baseline-ns), records a
	// measurement of this same replay workload taken from a checkout of
	// an earlier commit — the whole earlier binary, old core included —
	// which the in-binary legacy loop cannot represent because it links
	// against the current core.
	Baseline *baselineInfo `json:"baseline,omitempty"`

	// ReplaySpeedupVsLegacy is the specialized kernel's accesses/sec over
	// the frozen pre-kernel loop's, on the single-run replay workload.
	ReplaySpeedupVsLegacy float64 `json:"replay_speedup_vs_legacy"`

	// LRUCostVsGeneric and ApproxLRUCostVsGeneric are the recency
	// kernels' ns/op over the generic FIFO kernel's on the same trace —
	// the price of exact (heap arena, first-fit holes, recency list) and
	// sampled (random-probe timestamps) LRU relative to a baseline FIFO
	// loop with none of that machinery. Present only when the comparison
	// rows ran (the replayed policy is not itself the row's policy).
	LRUCostVsGeneric       float64 `json:"lru_cost_vs_generic,omitempty"`
	ApproxLRUCostVsGeneric float64 `json:"approxlru_cost_vs_generic,omitempty"`

	// ReplaySpeedupVsBaseline is the same ratio against the out-of-tree
	// baseline measurement, when one was provided.
	ReplaySpeedupVsBaseline float64 `json:"replay_speedup_vs_baseline,omitempty"`

	// SweepSpeedupVsPerConfig is the single-pass multi-configuration
	// kernel's throughput over sequential per-config replays of the
	// identical granularity x pressure ladder on the replay trace — a
	// within-process ratio, gated committed-relative like the replay
	// speedup.
	SweepSpeedupVsPerConfig float64 `json:"sweep_speedup_vs_perconfig,omitempty"`

	// MigrateFlipPauseMaxNs and MigrateFlipPauseAvgNs record the
	// client-visible frozen window of a live tenant migration (fence-up to
	// fence-drop) over the service/migrate row's handoffs. The max is
	// gated by an absolute ceiling (-flip-ceiling), not committed-relative:
	// the pause is scheduler-sensitive at the microsecond scale, and the
	// property that matters is "a flip never blocks clients for long", not
	// a ratio to a previous run.
	MigrateFlipPauseMaxNs int64 `json:"migrate_flip_pause_max_ns,omitempty"`
	MigrateFlipPauseAvgNs int64 `json:"migrate_flip_pause_avg_ns,omitempty"`

	// SampledMissRateError and SampledMissRateBound record the
	// representative-interval estimator's worst absolute miss-rate error
	// against the full replay over the sampled row's configurations (word
	// and vortex, turnover-regime pressures), and the worst error bound
	// the estimator reported for them. The self-check fails the run if
	// any error exceeds its bound or the two-point acceptance line.
	SampledMissRateError float64 `json:"sampled_missrate_error,omitempty"`
	SampledMissRateBound float64 `json:"sampled_missrate_bound,omitempty"`
}

// baselineInfo is an externally measured replay datum for comparison.
type baselineInfo struct {
	Commit         string  `json:"commit"`
	NsPerOp        float64 `json:"ns_per_op"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
	AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dynocache-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "word", "Table 1 benchmark to replay (word is the largest)")
	policyName := flag.String("policy", "fifo", "eviction policy for the replay rows (any name core.ParsePolicy accepts)")
	scale := flag.Float64("scale", 1.0, "workload scale for the replay trace")
	sweepScale := flag.Float64("sweep-scale", 0.05, "workload scale for the sweep benchmark")
	pressure := flag.Int("pressure", 2, "cache pressure factor n (capacity = maxCache/n)")
	out := flag.String("o", "BENCH_report.json", "report output path ('-' for stdout)")
	baselineCommit := flag.String("baseline-commit", "", "commit an out-of-tree baseline replay was measured at")
	baselineNs := flag.Float64("baseline-ns", 0, "out-of-tree baseline replay ns/op (same trace, scale, pressure)")
	baselineAllocs := flag.Int64("baseline-allocs", 0, "out-of-tree baseline replay allocs/op")
	benchtime := flag.String("benchtime", "1s", "measurement window per benchmark (longer = steadier on busy machines)")
	gate := flag.String("gate", "", "committed report to gate against (fail on replay throughput regression)")
	gateDrop := flag.Float64("gate-drop", 0.15, "max tolerated fractional drop of replay_speedup_vs_legacy under -gate")
	cpuList := flag.String("cpu", "auto", "comma-separated GOMAXPROCS values for the service scaling sweep (e.g. 1,2,4,8); 'auto' = powers of two up to NumCPU; '' disables the sweep")
	scalingFloor := flag.Float64("scaling-floor", 0, "fail unless scaling efficiency reaches this floor (0 disables; only applied when the sweep spans >1 proc)")
	flipCeiling := flag.Duration("flip-ceiling", 50*time.Millisecond, "fail if any live-migration flip pause exceeds this (0 disables)")
	flag.Parse()

	// testing.Benchmark reads the measurement window from the testing
	// package's own flag, which exists only after testing.Init.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}

	p, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	tr, err := p.Scaled(*scale).Synthesize()
	if err != nil {
		return err
	}
	policy, err := core.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	lruPolicy := core.Policy{Kind: core.PolicyLRU}
	approxPolicy := core.Policy{Kind: core.PolicyApproxLRU}

	if err := selfCheck(tr, policy, *pressure); err != nil {
		return err
	}
	if policy != lruPolicy {
		if err := selfCheck(tr, lruPolicy, *pressure); err != nil {
			return err
		}
	}
	if policy != approxPolicy {
		if err := selfCheck(tr, approxPolicy, *pressure); err != nil {
			return err
		}
	}
	if err := serviceSelfCheck(tr, policy, *pressure); err != nil {
		return err
	}

	rep := &benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Trace:       tr.Name,
		Policy:      policy.String(),
		Blocks:      tr.NumBlocks(),
		Accesses:    len(tr.Accesses),
		Bytes:       tr.TotalBytes(),
		Scale:       *scale,
		Pressure:    *pressure,
	}

	accesses := len(tr.Accesses)
	var legacyAPS, specializedAPS float64

	fmt.Fprintf(os.Stderr, "replaying %s: %d blocks, %d accesses, %d bytes\n",
		tr.Name, tr.NumBlocks(), accesses, tr.TotalBytes())

	record := func(name string, perOpAccesses int, f func(b *testing.B)) benchResult {
		r := testing.Benchmark(f)
		br := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		}
		if perOpAccesses > 0 && r.NsPerOp() > 0 {
			br.AccessesPerSec = float64(perOpAccesses) / (float64(r.NsPerOp()) / 1e9)
		}
		fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/op %14.0f acc/s %8d allocs/op\n",
			name, br.NsPerOp, br.AccessesPerSec, br.AllocsPerOp)
		rep.Benchmarks = append(rep.Benchmarks, br)
		return br
	}

	legacyAPS = record("replay/legacy", accesses, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := legacyRun(tr, policy, *pressure, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}).AccessesPerSec

	genericNs := record("replay/generic", accesses, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(tr, policy, *pressure, sim.Options{ForceGeneric: true}); err != nil {
				b.Fatal(err)
			}
		}
	}).NsPerOp

	specializedAPS = record("replay/specialized", accesses, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(tr, policy, *pressure, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}).AccessesPerSec

	var enc bytes.Buffer
	if err := tr.Write(&enc); err != nil {
		return err
	}
	raw := enc.Bytes()
	record("replay/stream", accesses, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := trace.NewStream(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.RunStream(st, policy, *pressure, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	if policy != lruPolicy {
		// The cross-policy comparison row: the same trace replayed under
		// LRU on its devirtualized kernel, so the report always quantifies
		// the engine's cost beyond the FIFO family.
		lruNs := record("replay/lru", accesses, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(tr, lruPolicy, *pressure, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp
		if genericNs > 0 {
			rep.LRUCostVsGeneric = lruNs / genericNs
		}
	}
	if policy != approxPolicy {
		// The sampling counterpart: random-probe timestamp LRU on the
		// same devirtualized engine, so the report separates what exact
		// recency ordering costs from what the heap arena costs.
		approxNs := record("replay/approxlru", accesses, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(tr, approxPolicy, *pressure, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp
		if genericNs > 0 {
			rep.ApproxLRUCostVsGeneric = approxNs / genericNs
		}
	}

	sweepTraces, sweepAccesses, err := sweepWorkload(*sweepScale)
	if err != nil {
		return err
	}
	sweepPolicies := core.GranularitySweep(8)
	record("sweep", sweepAccesses*len(sweepPolicies), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Sweep(sweepTraces, sweepPolicies, *pressure, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The kernel-vs-kernel pair: the same granularity x pressure ladder on
	// the replay trace, sequentially per config and through the single-pass
	// kernel. Both rows count ladder-equivalent accesses, so the APS ratio
	// is the kernel's speedup on identical work.
	ladderCfgs := pressureLadder(sweepPolicies, []int{1, 2, 3, 4, 6, 8})
	if err := singlePassSelfCheck(tr, ladderCfgs); err != nil {
		return err
	}
	perConfigAPS := record("sweep/perconfig", accesses*len(ladderCfgs), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, cfg := range ladderCfgs {
				if _, err := sim.Run(tr, cfg.Policy, cfg.Pressure, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}).AccessesPerSec
	singlePassAPS := record("sweep/singlepass", accesses*len(ladderCfgs), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunConfigs(tr, ladderCfgs, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}).AccessesPerSec
	if perConfigAPS > 0 {
		rep.SweepSpeedupVsPerConfig = singlePassAPS / perConfigAPS
	}

	// The sampling row replays only representative intervals but estimates
	// the whole ladder, so it counts full-ladder-equivalent accesses: its
	// APS is effective throughput, comparable against sweep/singlepass.
	// Restricted to the turnover regime (pressure >= 3) where the
	// estimator is accurate; the self-check holds every estimate to its
	// own bound and the two-point acceptance line before timing starts.
	sampledCfgs := pressureLadder(sweepPolicies, []int{3, 4, 6, 8})
	sampledTraces, err := sampledWorkload(tr, *scale)
	if err != nil {
		return err
	}
	sampledEff := 0
	for _, str := range sampledTraces {
		sampledEff += len(str.Accesses) * len(sampledCfgs)
	}
	rep.SampledMissRateError, rep.SampledMissRateBound, err = sampledSelfCheck(sampledTraces, sampledCfgs)
	if err != nil {
		return err
	}
	record("sweep/sampled", sampledEff, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, str := range sampledTraces {
				if _, err := sim.RunConfigsSampled(str, sampledCfgs, sim.SampleOptions{}, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	capacity, err := sim.CapacityFor(tr, *pressure)
	if err != nil {
		return err
	}
	// Service rows measure steady-state batch replay: the service is
	// built (tables reserved, owner goroutines started) once per row
	// outside the timed loop and warmed with one full replay, so
	// allocs/op reflects the replay protocol itself — the envelope pool,
	// the MPSC handoff, and the owner's devirtualized loop.
	sb, err := newServiceBench(tr, policy, capacity, 1, 1)
	if err != nil {
		return err
	}
	if err := sb.replay(tr); err != nil {
		return err
	}
	record("service/replay-batch", accesses, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sb.replay(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	sb.close()

	// Migration row: one tenant populated with the full trace ping-pongs
	// between two shards. An op is a round trip — two live handoffs moving
	// the whole resident span — ending where it started, so every
	// iteration relocates the same state. AccessesPerSec is meaningless
	// here; the row's ns/op is the handoff cost and the report carries the
	// flip-pause ceiling check.
	msvc, err := service.New(service.Config{Shards: 2, Policy: policy, ShardCapacity: capacity})
	if err != nil {
		return err
	}
	mtn, err := msvc.RegisterPinned(tr.Name, 0, traceSpan(tr))
	if err != nil {
		msvc.Close()
		return err
	}
	msb := &serviceBench{svc: msvc, tenants: []*service.Tenant{mtn}, regen: traceRegen(tr)}
	if err := msb.replay(tr); err != nil {
		msvc.Close()
		return err
	}
	record("service/migrate", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := msvc.Migrate(tr.Name, 1); err != nil {
				b.Fatal(err)
			}
			if err := msvc.Migrate(tr.Name, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := msvc.CheckConsistency(); err != nil {
		msvc.Close()
		return fmt.Errorf("service/migrate: ledger broken after handoffs: %w", err)
	}
	migStats := msvc.MigrationStats()
	msb.close()
	rep.MigrateFlipPauseMaxNs = migStats.FlipPauseMax.Nanoseconds()
	if migStats.Completed > 0 {
		rep.MigrateFlipPauseAvgNs = migStats.FlipPauseTotal.Nanoseconds() / int64(migStats.Completed)
	}
	fmt.Fprintf(os.Stderr, "migrate flip pause: avg %v, max %v over %d handoffs\n",
		time.Duration(rep.MigrateFlipPauseAvgNs), migStats.FlipPauseMax, migStats.Completed)
	if *flipCeiling > 0 && migStats.FlipPauseMax > *flipCeiling {
		return fmt.Errorf("service/migrate: flip pause %v exceeds the %v ceiling", migStats.FlipPauseMax, *flipCeiling)
	}

	procs, err := parseCPUList(*cpuList)
	if err != nil {
		return err
	}
	if len(procs) > 0 {
		// The contended scaling configuration: shards = procs, two
		// tenants pinned per shard, every tenant replaying the full trace
		// concurrently. One op therefore grows with p (2p full replays),
		// so accesses/sec — not ns/op — is the comparable metric.
		prev := runtime.GOMAXPROCS(0)
		var aps []float64
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			sbp, err := newServiceBench(tr, policy, capacity, p, 2)
			if err != nil {
				return err
			}
			if err := sbp.replay(tr); err != nil {
				return err
			}
			r := record(fmt.Sprintf("service/replay-batch/p%d", p), 2*p*accesses, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sbp.replay(tr); err != nil {
						b.Fatal(err)
					}
				}
			})
			sbp.close()
			aps = append(aps, r.AccessesPerSec)
		}
		runtime.GOMAXPROCS(prev)
		rep.Scaling = &scalingInfo{Procs: procs, AccessesPerSec: aps}
		first, last := 0, len(procs)-1
		if aps[first] > 0 && procs[last] > procs[first] {
			rep.Scaling.Efficiency = (aps[last] / aps[first]) / (float64(procs[last]) / float64(procs[first]))
		} else if procs[last] == procs[first] {
			// A single-point sweep (e.g. a 1-core machine) cannot measure
			// scaling; record perfect efficiency so the committed report
			// carries a value, and let multi-core runners gate for real.
			rep.Scaling.Efficiency = 1.0
		}
		fmt.Fprintf(os.Stderr, "scaling efficiency at p%d (vs p%d): %.2f\n",
			procs[last], procs[first], rep.Scaling.Efficiency)
		if *scalingFloor > 0 && procs[last] > procs[first] && rep.Scaling.Efficiency < *scalingFloor {
			return fmt.Errorf("scaling efficiency %.2f at %d procs is below the required floor %.2f",
				rep.Scaling.Efficiency, procs[last], *scalingFloor)
		}
	}

	if legacyAPS > 0 {
		rep.ReplaySpeedupVsLegacy = specializedAPS / legacyAPS
	}
	fmt.Fprintf(os.Stderr, "replay speedup vs legacy: %.2fx\n", rep.ReplaySpeedupVsLegacy)
	if rep.LRUCostVsGeneric > 0 {
		fmt.Fprintf(os.Stderr, "lru cost vs generic: %.2fx\n", rep.LRUCostVsGeneric)
	}
	if rep.ApproxLRUCostVsGeneric > 0 {
		fmt.Fprintf(os.Stderr, "approxlru cost vs generic: %.2fx\n", rep.ApproxLRUCostVsGeneric)
	}
	if rep.SweepSpeedupVsPerConfig > 0 {
		fmt.Fprintf(os.Stderr, "sweep speedup vs per-config: %.2fx\n", rep.SweepSpeedupVsPerConfig)
	}
	fmt.Fprintf(os.Stderr, "sampled miss-rate error %.4f (worst bound %.4f)\n",
		rep.SampledMissRateError, rep.SampledMissRateBound)

	if *baselineNs > 0 {
		rep.Baseline = &baselineInfo{
			Commit:         *baselineCommit,
			NsPerOp:        *baselineNs,
			AccessesPerSec: float64(accesses) / (*baselineNs / 1e9),
			AllocsPerOp:    *baselineAllocs,
		}
		rep.ReplaySpeedupVsBaseline = specializedAPS / rep.Baseline.AccessesPerSec
		fmt.Fprintf(os.Stderr, "replay speedup vs baseline %s: %.2fx\n",
			rep.Baseline.Commit, rep.ReplaySpeedupVsBaseline)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		if _, err = os.Stdout.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}

	if *gate != "" {
		return gateAgainst(rep, *gate, *gateDrop)
	}
	return nil
}

// gateAgainst compares the fresh report's replay speedup against a
// committed report and fails on a regression beyond maxDrop. The gated
// metric is the specialized kernel's throughput relative to the frozen
// legacy loop measured in the same process, which cancels out the raw
// speed of the machine running the comparison.
func gateAgainst(rep *benchReport, path string, maxDrop float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var committed benchReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("gate: parse %s: %w", path, err)
	}
	if committed.ReplaySpeedupVsLegacy <= 0 {
		return fmt.Errorf("gate: %s has no replay_speedup_vs_legacy to gate against", path)
	}
	floor := committed.ReplaySpeedupVsLegacy * (1 - maxDrop)
	fmt.Fprintf(os.Stderr, "gate: replay speedup vs legacy %.2fx, committed %.2fx, floor %.2fx\n",
		rep.ReplaySpeedupVsLegacy, committed.ReplaySpeedupVsLegacy, floor)
	if rep.ReplaySpeedupVsLegacy < floor {
		return fmt.Errorf("gate: replay speedup vs legacy regressed to %.2fx, more than %.0f%% below the committed %.2fx (%s)",
			rep.ReplaySpeedupVsLegacy, maxDrop*100, committed.ReplaySpeedupVsLegacy, path)
	}
	if err := gateRecency(rep, &committed, path, maxDrop); err != nil {
		return err
	}
	if err := gateSweepSpeedup(rep, &committed, path, maxDrop); err != nil {
		return err
	}
	return gateScaling(rep, &committed, path, maxDrop)
}

// gateSweepSpeedup holds the single-pass kernel's speedup over per-config
// replays to its committed value — the same committed-relative clause the
// replay speedup uses, since both are within-process ratios.
func gateSweepSpeedup(rep, committed *benchReport, path string, maxDrop float64) error {
	if rep.SweepSpeedupVsPerConfig <= 0 || committed.SweepSpeedupVsPerConfig <= 0 {
		return nil // row absent on one side; nothing comparable
	}
	floor := committed.SweepSpeedupVsPerConfig * (1 - maxDrop)
	fmt.Fprintf(os.Stderr, "gate: sweep speedup vs per-config %.2fx, committed %.2fx, floor %.2fx\n",
		rep.SweepSpeedupVsPerConfig, committed.SweepSpeedupVsPerConfig, floor)
	if rep.SweepSpeedupVsPerConfig < floor {
		return fmt.Errorf("gate: sweep speedup vs per-config regressed to %.2fx, more than %.0f%% below the committed %.2fx (%s)",
			rep.SweepSpeedupVsPerConfig, maxDrop*100, committed.SweepSpeedupVsPerConfig, path)
	}
	return nil
}

// lruCostCeiling is the absolute target for the exact-LRU kernel:
// replaying under LRU should cost under this multiple of the generic
// FIFO kernel's ns/op. Paired measurement on the reference box puts the
// ratio at ~1.98x mean with single-run spread 1.7x-2.2x (down from the
// 2.7x fragmentation-burst gap against the specialized kernel), so a
// fresh run straddles the target inside normal noise. The gate therefore
// grants the same maxDrop allowance the relative gates use — a run fails
// only at lruCostCeiling*(1+maxDrop) — which still catches any change
// that reopens the historical gap.
const lruCostCeiling = 2.0

// gateRecency holds the recency-kernel cost ratios to their committed
// values (same maxDrop tolerance as the replay speedup — here a cost
// *increase* is the regression) and enforces the absolute LRU ceiling.
// Both ratios are within-process, so they transfer across machines.
func gateRecency(rep, committed *benchReport, path string, maxDrop float64) error {
	if rep.LRUCostVsGeneric > 0 {
		hardCeil := lruCostCeiling * (1 + maxDrop)
		fmt.Fprintf(os.Stderr, "gate: lru cost vs generic %.2fx, ceiling %.2fx (+%.0f%% noise allowance)\n",
			rep.LRUCostVsGeneric, lruCostCeiling, maxDrop*100)
		if rep.LRUCostVsGeneric >= hardCeil {
			return fmt.Errorf("gate: lru kernel costs %.2fx the generic FIFO kernel, at or above the %.1fx ceiling plus %.0f%% noise allowance",
				rep.LRUCostVsGeneric, lruCostCeiling, maxDrop*100)
		}
	}
	for _, m := range []struct {
		name             string
		fresh, committed float64
	}{
		{"lru_cost_vs_generic", rep.LRUCostVsGeneric, committed.LRUCostVsGeneric},
		{"approxlru_cost_vs_generic", rep.ApproxLRUCostVsGeneric, committed.ApproxLRUCostVsGeneric},
	} {
		if m.fresh <= 0 || m.committed <= 0 {
			continue // row absent on one side; nothing comparable
		}
		ceil := m.committed * (1 + maxDrop)
		fmt.Fprintf(os.Stderr, "gate: %s %.2fx, committed %.2fx, ceiling %.2fx\n",
			m.name, m.fresh, m.committed, ceil)
		if m.fresh > ceil {
			return fmt.Errorf("gate: %s regressed to %.2fx, more than %.0f%% above the committed %.2fx (%s)",
				m.name, m.fresh, maxDrop*100, m.committed, path)
		}
	}
	return nil
}

// gateScaling compares multi-core scaling efficiency against the
// committed report. Efficiency is a within-process ratio like the replay
// speedup, but it is only comparable when both runs swept the same
// GOMAXPROCS ladder — a report generated on a 1-core box records a
// single-point sweep, which a 4-core runner must not be judged against
// (nor vice versa), so mismatched ladders warn and skip instead of
// failing.
func gateScaling(rep, committed *benchReport, path string, maxDrop float64) error {
	if committed.Scaling == nil || rep.Scaling == nil {
		return nil
	}
	cp, fp := committed.Scaling.Procs, rep.Scaling.Procs
	if !equalInts(cp, fp) {
		fmt.Fprintf(os.Stderr, "gate: scaling sweep procs %v differ from committed %v (%s); skipping scaling comparison\n",
			fp, cp, path)
		return nil
	}
	if len(cp) < 2 || cp[len(cp)-1] <= cp[0] {
		return nil // single-point sweep measures nothing
	}
	floor := committed.Scaling.Efficiency * (1 - maxDrop)
	fmt.Fprintf(os.Stderr, "gate: scaling efficiency %.2f, committed %.2f, floor %.2f\n",
		rep.Scaling.Efficiency, committed.Scaling.Efficiency, floor)
	if rep.Scaling.Efficiency < floor {
		return fmt.Errorf("gate: scaling efficiency regressed to %.2f, more than %.0f%% below the committed %.2f (%s)",
			rep.Scaling.Efficiency, maxDrop*100, committed.Scaling.Efficiency, path)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// selfCheck replays the trace once through every loop the report times
// and fails loudly unless they agree, so a kernel regression can never
// hide behind a flattering benchmark number.
func selfCheck(tr *trace.Trace, policy core.Policy, pressure int) error {
	want, err := legacyRun(tr, policy, pressure, sim.Options{})
	if err != nil {
		return fmt.Errorf("self-check: legacy replay: %w", err)
	}
	check := func(name string, got *sim.Result) error {
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			return fmt.Errorf("self-check: %s stats diverge from legacy:\n got %+v\nwant %+v", name, got.Stats, want.Stats)
		}
		if got.AppInstructions != want.AppInstructions {
			return fmt.Errorf("self-check: %s AppInstructions = %v, legacy %v", name, got.AppInstructions, want.AppInstructions)
		}
		return nil
	}
	got, err := sim.Run(tr, policy, pressure, sim.Options{})
	if err != nil {
		return fmt.Errorf("self-check: specialized replay: %w", err)
	}
	if err := check("specialized", got); err != nil {
		return err
	}
	got, err = sim.Run(tr, policy, pressure, sim.Options{ForceGeneric: true})
	if err != nil {
		return fmt.Errorf("self-check: generic replay: %w", err)
	}
	if err := check("generic", got); err != nil {
		return err
	}
	var enc bytes.Buffer
	if err := tr.Write(&enc); err != nil {
		return err
	}
	st, err := trace.NewStream(bytes.NewReader(enc.Bytes()))
	if err != nil {
		return err
	}
	got, err = sim.RunStream(st, policy, pressure, sim.Options{})
	if err != nil {
		return fmt.Errorf("self-check: streamed replay: %w", err)
	}
	return check("stream", got)
}

// pressureLadder crosses the granularity sweep with a pressure ladder
// into the multi-configuration kernel's input.
func pressureLadder(policies []core.Policy, pressures []int) []sim.SweepConfig {
	cfgs := make([]sim.SweepConfig, 0, len(policies)*len(pressures))
	for _, pol := range policies {
		for _, p := range pressures {
			cfgs = append(cfgs, sim.SweepConfig{Policy: pol, Pressure: p})
		}
	}
	return cfgs
}

// singlePassSelfCheck proves the multi-configuration kernel is the same
// computation as the per-config replays it is timed against: every
// core.Stats field must match bit for bit over the whole ladder.
func singlePassSelfCheck(tr *trace.Trace, cfgs []sim.SweepConfig) error {
	multi, err := sim.RunConfigs(tr, cfgs, sim.Options{})
	if err != nil {
		return fmt.Errorf("self-check: single-pass replay: %w", err)
	}
	for i, cfg := range cfgs {
		single, err := sim.Run(tr, cfg.Policy, cfg.Pressure, sim.Options{})
		if err != nil {
			return fmt.Errorf("self-check: per-config replay %s p%d: %w", cfg.Policy, cfg.Pressure, err)
		}
		if !reflect.DeepEqual(multi[i].Stats, single.Stats) {
			return fmt.Errorf("self-check: single-pass stats diverge from per-config at %s p%d:\n got %+v\nwant %+v",
				cfg.Policy, cfg.Pressure, multi[i].Stats, single.Stats)
		}
	}
	return nil
}

// sampledMaxAbsError is the sampling estimator's acceptance line on the
// calibrated traces in the turnover regime: two points of absolute
// miss-rate error (measured worst cases at full scale: word 0.0098,
// vortex 0.0189).
const sampledMaxAbsError = 0.02

// sampledSelfCheck runs the estimator against the full replay on every
// sampled-row trace and fails unless each estimate sits within its own
// reported bound and the acceptance line. Returns the worst error and
// worst bound for the report.
func sampledSelfCheck(traces []*trace.Trace, cfgs []sim.SweepConfig) (maxErr, maxBound float64, err error) {
	for _, tr := range traces {
		full, err := sim.RunConfigs(tr, cfgs, sim.Options{})
		if err != nil {
			return 0, 0, fmt.Errorf("self-check: full replay of %s: %w", tr.Name, err)
		}
		ss, err := sim.RunConfigsSampled(tr, cfgs, sim.SampleOptions{}, sim.Options{})
		if err != nil {
			return 0, 0, fmt.Errorf("self-check: sampled replay of %s: %w", tr.Name, err)
		}
		for i, cfg := range cfgs {
			e := ss.Results[i].MissRate - full[i].Stats.MissRate()
			if e < 0 {
				e = -e
			}
			if e > ss.Results[i].ErrorBound {
				return 0, 0, fmt.Errorf("self-check: sampled %s %s p%d error %.4f exceeds its own bound %.4f",
					tr.Name, cfg.Policy, cfg.Pressure, e, ss.Results[i].ErrorBound)
			}
			if e > sampledMaxAbsError {
				return 0, 0, fmt.Errorf("self-check: sampled %s %s p%d error %.4f over the %.2f acceptance line",
					tr.Name, cfg.Policy, cfg.Pressure, e, sampledMaxAbsError)
			}
			if e > maxErr {
				maxErr = e
			}
			if ss.Results[i].ErrorBound > maxBound {
				maxBound = ss.Results[i].ErrorBound
			}
		}
	}
	return maxErr, maxBound, nil
}

// sampledWorkload returns the sampling row's traces — word and vortex at
// the replay scale, reusing the already synthesized replay trace when it
// is one of them.
func sampledWorkload(tr *trace.Trace, scale float64) ([]*trace.Trace, error) {
	var out []*trace.Trace
	for _, name := range []string{"word", "vortex"} {
		if tr.Name == name {
			out = append(out, tr)
			continue
		}
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		str, err := p.Scaled(scale).Synthesize()
		if err != nil {
			return nil, err
		}
		out = append(out, str)
	}
	return out, nil
}

// sweepWorkload synthesizes every Table 1 benchmark at the given scale
// and returns the traces plus their summed access count.
func sweepWorkload(scale float64) ([]*trace.Trace, int, error) {
	var (
		traces   []*trace.Trace
		accesses int
	)
	for _, p := range workload.ScaledTable1(scale) {
		tr, err := p.Synthesize()
		if err != nil {
			return nil, 0, err
		}
		traces = append(traces, tr)
		accesses += len(tr.Accesses)
	}
	return traces, accesses, nil
}

// parseCPUList resolves the -cpu flag into a sorted, deduplicated
// GOMAXPROCS ladder. "auto" yields the powers of two up to NumCPU (with
// NumCPU itself always included), "" disables the sweep entirely.
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var procs []int
	if s == "auto" {
		n := runtime.NumCPU()
		for p := 1; p < n; p *= 2 {
			procs = append(procs, p)
		}
		procs = append(procs, n)
	} else {
		for _, f := range strings.Split(s, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p < 1 {
				return nil, fmt.Errorf("bad -cpu entry %q (want positive integers)", f)
			}
			procs = append(procs, p)
		}
	}
	sort.Ints(procs)
	out := procs[:0]
	for i, p := range procs {
		if i == 0 || p != procs[i-1] {
			out = append(out, p)
		}
	}
	return out, nil
}

// traceSpan returns the dense ID universe of a trace (max ID + 1).
func traceSpan(tr *trace.Trace) core.SuperblockID {
	var maxID core.SuperblockID
	for id := range tr.Blocks {
		if id > maxID {
			maxID = id
		}
	}
	return maxID + 1
}

// traceRegen returns a regeneration callback serving blocks from the
// trace's table.
func traceRegen(tr *trace.Trace) func(core.SuperblockID) (core.Superblock, error) {
	return func(id core.SuperblockID) (core.Superblock, error) {
		sb, ok := tr.Blocks[id]
		if !ok {
			return core.Superblock{}, fmt.Errorf("undefined block %d", id)
		}
		return sb, nil
	}
}

// serviceBench is one service benchmark configuration: a running
// shared-nothing service plus its registered tenants, reused across
// benchmark iterations so the timed loop measures steady-state replay,
// not construction.
type serviceBench struct {
	svc     *service.Service
	tenants []*service.Tenant
	regen   func(core.SuperblockID) (core.Superblock, error)
}

// newServiceBench builds a service with the given shard count and
// tenantsPerShard tenants pinned round-robin onto the shards.
func newServiceBench(tr *trace.Trace, policy core.Policy, capacity, shards, tenantsPerShard int) (*serviceBench, error) {
	svc, err := service.New(service.Config{Shards: shards, Policy: policy, ShardCapacity: capacity})
	if err != nil {
		return nil, err
	}
	span := traceSpan(tr)
	tenants := make([]*service.Tenant, shards*tenantsPerShard)
	for i := range tenants {
		tn, err := svc.RegisterPinned(fmt.Sprintf("tenant-%d", i), i%shards, span)
		if err != nil {
			svc.Close()
			return nil, err
		}
		tenants[i] = tn
	}
	return &serviceBench{svc: svc, tenants: tenants, regen: traceRegen(tr)}, nil
}

func (sb *serviceBench) close() { sb.svc.Close() }

// replay drives every tenant through the full trace via ReplayBatch in
// AccessChunk batches, concurrently when there is more than one tenant
// (retrying on backpressure with the hinted delay, capped to keep
// retries responsive).
func (sb *serviceBench) replay(tr *trace.Trace) error {
	if len(sb.tenants) == 1 {
		return sb.replayOne(tr, sb.tenants[0])
	}
	errc := make(chan error, len(sb.tenants))
	for _, tn := range sb.tenants {
		go func(tn *service.Tenant) {
			errc <- sb.replayOne(tr, tn)
		}(tn)
	}
	var firstErr error
	for range sb.tenants {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (sb *serviceBench) replayOne(tr *trace.Trace, tn *service.Tenant) error {
	ids := tr.Accesses
	for len(ids) > 0 {
		n := trace.AccessChunk
		if n > len(ids) {
			n = len(ids)
		}
		for {
			err := tn.ReplayBatch(ids[:n], sb.regen)
			if err == nil {
				break
			}
			var busy *service.BacklogError
			if !errors.As(err, &busy) {
				return err
			}
			delay := busy.RetryAfter
			if delay > 2*time.Millisecond {
				delay = 2 * time.Millisecond
			}
			time.Sleep(delay)
		}
		ids = ids[n:]
	}
	return nil
}

// serviceSelfCheck proves the service's owner-goroutine replay is
// bit-identical to a solo sim replay before any service row is timed: a
// tenant alone on one shard replays the trace and its ledger must equal
// the solo kernel's counters field for field, with the double-entry
// ledger closing on top.
func serviceSelfCheck(tr *trace.Trace, policy core.Policy, pressure int) error {
	capacity, err := sim.CapacityFor(tr, pressure)
	if err != nil {
		return err
	}
	want, err := sim.Run(tr, policy, pressure, sim.Options{})
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{Shards: 1, Policy: policy, ShardCapacity: capacity})
	if err != nil {
		return err
	}
	defer svc.Close()
	tn, err := svc.Register(tr.Name, traceSpan(tr))
	if err != nil {
		return err
	}
	regen := traceRegen(tr)
	ids := tr.Accesses
	for len(ids) > 0 {
		n := trace.AccessChunk
		if n > len(ids) {
			n = len(ids)
		}
		if err := tn.ReplayBatch(ids[:n], regen); err != nil {
			return err
		}
		ids = ids[n:]
	}
	if err := svc.CheckConsistency(); err != nil {
		return fmt.Errorf("self-check: %w", err)
	}
	got, ws := tn.Stats(), want.Stats
	for _, c := range []struct {
		name      string
		got, want uint64
	}{
		{"Accesses", got.Accesses, ws.Accesses},
		{"Hits", got.Hits, ws.Hits},
		{"Misses", got.Misses, ws.Misses},
		{"InsertedBlocks", got.InsertedBlocks, ws.InsertedBlocks},
		{"InsertedBytes", got.InsertedBytes, ws.InsertedBytes},
		{"EvictionInvocations", got.EvictionInvocations, ws.EvictionInvocations},
		{"BlocksEvicted", got.BlocksEvicted, ws.BlocksEvicted},
		{"BytesEvicted", got.BytesEvicted, ws.BytesEvicted},
	} {
		if c.got != c.want {
			return fmt.Errorf("self-check: service %s = %d diverges from solo replay's %d", c.name, c.got, c.want)
		}
	}
	return nil
}
