package main

import (
	"fmt"

	"dynocache/internal/check"
	"dynocache/internal/core"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
)

// legacyRun is a frozen copy of sim.Run as it stood before the replay
// kernels were split out (interface dispatch per access, a full
// Superblock struct copy per access, and float64 instruction
// accumulation). It exists only as the benchmark baseline: the report's
// speedup column compares the current kernels against this loop, and a
// startup self-check asserts both produce identical results.
func legacyRun(tr *trace.Trace, policy core.Policy, pressure int, opts sim.Options) (*sim.Result, error) {
	var maxID core.SuperblockID
	maxBlock := 0
	for id, sb := range tr.Blocks {
		if id > maxID {
			maxID = id
		}
		if sb.Size > maxBlock {
			maxBlock = sb.Size
		}
	}
	if maxBlock == 0 {
		return nil, fmt.Errorf("sim: trace %q is empty", tr.Name)
	}
	blocks := make([]core.Superblock, int(maxID)+1)
	for id, sb := range tr.Blocks {
		blocks[id] = sb
	}

	if pressure < 1 {
		return nil, fmt.Errorf("sim: pressure factor must be >= 1, got %d", pressure)
	}
	capacity := tr.TotalBytes() / pressure
	if opts.Capacity > 0 {
		capacity = opts.Capacity
	}
	if floor := maxBlock + 512; capacity < floor {
		capacity = floor
	}
	raw, err := policy.New(capacity)
	if err != nil {
		return nil, err
	}
	if opts.RecordSamples {
		if s, ok := raw.(sampleRecorder); ok {
			s.SetSampleRecording(true)
		}
	}
	cache := raw
	var chk *check.Checked
	if opts.Verify {
		chk = check.Wrap(raw, policy)
		cache = chk
	}

	res := &sim.Result{
		Benchmark: tr.Name,
		Policy:    policy,
		Pressure:  pressure,
		Capacity:  capacity,
	}
	var censusSamples int
	for i, id := range tr.Accesses {
		if int(id) >= len(blocks) || blocks[id].Size == 0 {
			return nil, fmt.Errorf("sim: trace %q access %d references undefined block %d", tr.Name, i, id)
		}
		sb := blocks[id]
		res.AppInstructions += float64(sb.Size) / 4
		if !cache.Access(id) {
			if opts.DisableChaining {
				sb.Links = nil
			}
			if err := cache.Insert(sb); err != nil {
				return nil, fmt.Errorf("sim: trace %q access %d: %w", tr.Name, i, err)
			}
		}
		if chk != nil {
			if err := chk.Err(); err != nil {
				return nil, fmt.Errorf("sim: trace %q access %d: verification failed: %w", tr.Name, i, err)
			}
		}
		if opts.CensusEvery > 0 && (i+1)%opts.CensusEvery == 0 {
			intra, inter := cache.LinkCensus()
			res.MeanIntraLinks += float64(intra)
			res.MeanInterLinks += float64(inter)
			res.MeanBackPtrBytes += float64(cache.BackPtrTableBytes())
			censusSamples++
		}
	}
	if censusSamples > 0 {
		res.MeanIntraLinks /= float64(censusSamples)
		res.MeanInterLinks /= float64(censusSamples)
		res.MeanBackPtrBytes /= float64(censusSamples)
	}
	res.Stats = *cache.Stats()
	if s, ok := raw.(sampleRecorder); ok && opts.RecordSamples {
		res.Samples = s.Samples()
	}
	return res, nil
}

// sampleRecorder is any cache that can record eviction samples; every
// engine-backed policy qualifies.
type sampleRecorder interface {
	SetSampleRecording(on bool)
	Samples() []core.EvictionSample
}
