package core

import (
	"fmt"
	"sort"
)

// CompactingLRUCache is an LRU code cache that defragments instead of
// over-evicting: when an insertion fails only because free space is
// scattered, the cache slides every resident block toward the bottom of
// the arena and coalesces the free space into one hole.
//
// The paper dismisses this design in one sentence (§3.3): "compaction (to
// remove fragmentation) would require adjusting all the link pointers".
// This type exists to put numbers on that sentence: it counts the bytes
// moved and — crucially — the patched links whose encoded targets must be
// rewritten because one of their endpoints moved. An ablation benchmark
// compares the resulting overhead against FIFO circular buffers, which
// never fragment and never compact.
type CompactingLRUCache struct {
	*LRUCache

	// Compactions counts defragmentation passes.
	Compactions uint64
	// BytesMoved counts block bytes slid during compaction.
	BytesMoved uint64
	// LinksRepatched counts patched links with at least one moved
	// endpoint; each needs its encoded jump target rewritten.
	LinksRepatched uint64

	// Reusable compaction scratch: the offset-sorted resident-ID list and
	// an epoch-stamped moved set, so steady-state compaction allocates
	// nothing beyond sort.Slice bookkeeping.
	compactScratch []SuperblockID
	movedMarks     []uint32
	movedEpoch     uint32
}

var _ Cache = (*CompactingLRUCache)(nil)

// NewCompactingLRU returns a compacting LRU cache.
func NewCompactingLRU(capacity int) (*CompactingLRUCache, error) {
	base, err := NewLRU(capacity)
	if err != nil {
		return nil, err
	}
	base.name = "compacting-LRU"
	c := &CompactingLRUCache{LRUCache: base}
	// Intervene inside the eviction loop too: the moment aggregate space
	// suffices, defragment instead of evicting further.
	base.preEvict = func(size int) bool {
		if c.fits(size) || c.FreeBytes() < size {
			return false
		}
		c.compact()
		return true
	}
	return c, nil
}

// fits reports whether some hole can take size bytes, without mutating.
func (c *LRUCache) fits(size int) bool { return c.holes.largest() >= size }

// markMoved stamps id into the current compaction's moved set.
func (c *CompactingLRUCache) markMoved(id SuperblockID) {
	if int(id) >= len(c.movedMarks) {
		marks := make([]uint32, len(c.where))
		copy(marks, c.movedMarks)
		c.movedMarks = marks
	}
	c.movedMarks[id] = c.movedEpoch
}

func (c *CompactingLRUCache) moved(id SuperblockID) bool {
	return int(id) < len(c.movedMarks) && c.movedMarks[id] == c.movedEpoch
}

// compact slides all resident blocks to the bottom of the arena in offset
// order, leaving one coalesced hole at the top, and accounts for the link
// re-patching the move forces.
func (c *CompactingLRUCache) compact() {
	ids := c.compactScratch[:0]
	for id := c.head; id != lruNil; id = c.nextID[id] {
		ids = append(ids, SuperblockID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return c.where[ids[i]] < c.where[ids[j]] })
	c.movedEpoch++
	at := 0
	var bytesMoved uint64
	for _, id := range ids {
		if c.where[id] != int64(at) {
			c.markMoved(id)
			bytesMoved += uint64(c.sizes[id])
			c.where[id] = int64(at)
		}
		at += int(c.sizes[id])
	}
	c.compactScratch = ids
	c.holes.reset(at, c.capacity-at)
	// Every patched link with a moved endpoint must be rewritten: if the
	// source moved, its jump instruction moved with it (cheap) but the
	// relative target changed; if the target moved, the source's encoded
	// target is stale. Count each once.
	var repatched uint64
	c.links.forEachPatched(func(from, to SuperblockID) {
		if c.moved(from) || c.moved(to) {
			repatched++
		}
	})
	c.Compactions++
	c.BytesMoved += bytesMoved
	c.LinksRepatched += repatched
}

// CompactionOverhead prices the defragmentation work: a memmove-class
// per-byte cost plus the paper's per-link unlinking/relinking cost
// (Equation 4's slope, charged once per stale link).
func (c *CompactingLRUCache) CompactionOverhead(perByte, perLink float64) float64 {
	return perByte*float64(c.BytesMoved) + perLink*float64(c.LinksRepatched)
}

// CheckInvariants validates the underlying allocator state.
func (c *CompactingLRUCache) CheckInvariants() error {
	if err := c.LRUCache.CheckInvariants(); err != nil {
		return fmt.Errorf("core: compacting: %w", err)
	}
	return nil
}
