package core

import (
	"strings"
	"testing"

	"dynocache/internal/stats"
)

func newTestRand() *stats.Rand { return stats.NewRand(0xD0C, 7) }

// --- LRU ---

func TestLRUBasics(t *testing.T) {
	c, err := NewLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLRU(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if c.Name() != "LRU" || c.Units() != 0 || c.Capacity() != 100 {
		t.Fatalf("metadata wrong: %s/%d/%d", c.Name(), c.Units(), c.Capacity())
	}
	mustInsert(t, c, sb(1, 40), sb(2, 40))
	if !c.Access(1) || c.Access(3) {
		t.Fatal("hit/miss behaviour wrong")
	}
	if c.Resident() != 2 || c.ResidentBytes() != 80 || c.FreeBytes() != 20 {
		t.Fatalf("occupancy wrong: %d/%d/%d", c.Resident(), c.ResidentBytes(), c.FreeBytes())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c, _ := NewLRU(100)
	mustInsert(t, c, sb(1, 40), sb(2, 40))
	c.Access(1) // block 1 becomes MRU; block 2 is now LRU
	mustInsert(t, c, sb(3, 40))
	if c.Contains(2) {
		t.Error("LRU block 2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("blocks 1 and 3 should be resident")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUFragmentationDetected(t *testing.T) {
	// Capacity 100: insert 10 blocks of 10, touch alternate ones, then
	// request a 20-byte block. Evicting one 10-byte LRU block leaves two
	// non-adjacent holes; aggregate free >= 20 while no hole fits.
	c, _ := NewLRU(100)
	for i := 1; i <= 10; i++ {
		mustInsert(t, c, sb(SuperblockID(i), 10))
	}
	// Make odd blocks recently used so LRU order alternates.
	for i := 1; i <= 9; i += 2 {
		c.Access(SuperblockID(i))
	}
	mustInsert(t, c, sb(11, 20))
	if c.FragEvictions == 0 {
		t.Fatal("expected fragmentation-forced evictions")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUHoleCoalescing(t *testing.T) {
	c, _ := NewLRU(100)
	mustInsert(t, c, sb(1, 30), sb(2, 30), sb(3, 40)) // full
	c.Access(3)
	c.Access(1) // LRU order now: 2, 3, 1
	mustInsert(t, c, sb(4, 60))
	// Evicting 2 then 3 coalesces [30,100) into one hole for block 4.
	if !c.Contains(1) || !c.Contains(4) {
		t.Error("blocks 1 and 4 should be resident")
	}
	if c.Contains(2) || c.Contains(3) {
		t.Error("blocks 2 and 3 should be evicted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUFlushAndCensus(t *testing.T) {
	c, _ := NewLRU(100)
	c.Flush() // empty: no-op
	if c.Stats().FullFlushes != 0 {
		t.Error("empty flush should not count")
	}
	mustInsert(t, c, sb(1, 10, 1), sb(2, 10, 1))
	intra, inter := c.LinkCensus()
	if intra != 1 || inter != 1 {
		t.Fatalf("census = %d/%d, want 1 intra (self) 1 inter", intra, inter)
	}
	if c.BackPtrTableBytes() != 32 {
		t.Fatalf("BackPtrTableBytes = %d, want 32", c.BackPtrTableBytes())
	}
	c.Flush()
	if c.Resident() != 0 || c.Stats().FullFlushes != 1 {
		t.Fatal("flush failed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUAddLinkValidation(t *testing.T) {
	c, _ := NewLRU(100)
	if err := c.AddLink(1, 2); err == nil {
		t.Error("AddLink from absent block should fail")
	}
	mustInsert(t, c, sb(1, 10))
	if err := c.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestLRUInvariantsUnderChurn(t *testing.T) {
	c, _ := NewLRU(500)
	r := newTestRand()
	sizes := map[SuperblockID]int{}
	for step := 0; step < 10000; step++ {
		id := SuperblockID(r.Intn(120))
		size, ok := sizes[id]
		if !ok {
			size = 5 + r.Intn(80)
			sizes[id] = size
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size, Links: []SuperblockID{SuperblockID(r.Intn(120))}}); err != nil {
				t.Fatal(err)
			}
		}
		if step%2500 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.InsertedBlocks-s.BlocksEvicted != uint64(c.Resident()) {
		t.Fatalf("block conservation violated: %+v resident=%d", *s, c.Resident())
	}
}

// --- Adaptive ---

func TestAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(AdaptiveConfig{Capacity: 0}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewAdaptive(AdaptiveConfig{Capacity: 100, MinUnits: 4, MaxUnits: 2}); err == nil {
		t.Error("inverted bounds should fail")
	}
	if _, err := NewAdaptive(AdaptiveConfig{Capacity: 100, InitialUnits: 512}); err == nil {
		t.Error("initial units out of bounds should fail")
	}
}

func TestAdaptiveHillClimbs(t *testing.T) {
	// A cyclic scan over far more blocks than fit keeps the controller
	// exploring: it must adjust repeatedly, stay within its bounds, and
	// keep the cache structurally sound.
	cfg := AdaptiveConfig{Capacity: 2000, InitialUnits: 2, MaxUnits: 64, Window: 32}
	c, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30000; step++ {
		id := SuperblockID(step % 400)
		if !c.Access(id) {
			if err := c.Insert(sb(id, 20)); err != nil {
				t.Fatal(err)
			}
		}
		if u := c.CurrentUnits(); u < cfg.MinUnits || u > cfg.MaxUnits {
			t.Fatalf("units %d escaped [%d, %d]", u, cfg.MinUnits, cfg.MaxUnits)
		}
	}
	if c.Adjustments == 0 {
		t.Fatal("controller never adjusted under thrash")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveTracksOptimumDirection(t *testing.T) {
	// Under a stable, fitting working set with occasional cold inserts,
	// coarse flushes are expensive; the climber should spend most of its
	// time above its floor granularity.
	c, err := NewAdaptive(AdaptiveConfig{Capacity: 10000, InitialUnits: 2, MaxUnits: 128, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	r := newTestRand()
	var unitSum, samples int
	for step := 0; step < 60000; step++ {
		var id SuperblockID
		if r.Bernoulli(0.1) {
			id = SuperblockID(1000 + r.Intn(5000)) // cold excursion
		} else {
			id = SuperblockID(r.Intn(200)) // resident working set
		}
		if !c.Access(id) {
			if err := c.Insert(sb(id, 30)); err != nil {
				t.Fatal(err)
			}
		}
		if step%100 == 0 {
			unitSum += c.CurrentUnits()
			samples++
		}
	}
	mean := float64(unitSum) / float64(samples)
	if mean <= 2.5 {
		t.Fatalf("climber stuck at the coarse floor (mean units %.1f)", mean)
	}
}

func TestAdaptiveName(t *testing.T) {
	c, _ := NewAdaptive(AdaptiveConfig{Capacity: 100})
	if c.Name() != "adaptive" {
		t.Fatalf("name = %q", c.Name())
	}
}

// --- Preemptive flush ---

func TestPreemptiveFlushTriggersOnPhaseChange(t *testing.T) {
	c, err := NewPreemptiveFlush(10000, 64, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	insert := func(id SuperblockID) {
		if !c.Access(id) {
			if err := c.Insert(sb(id, 50)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 1: a small hot set, accessed repeatedly (low miss rate).
	for i := 0; i < 2000; i++ {
		insert(SuperblockID(i % 40))
	}
	if c.PreemptiveFlushes != 0 {
		t.Fatal("no preemptive flush expected during the stable phase")
	}
	// Phase 2: brand-new blocks every access (miss rate ~1).
	for i := 0; i < 500; i++ {
		insert(SuperblockID(10000 + i))
	}
	if c.PreemptiveFlushes == 0 {
		t.Fatal("phase change should have triggered a preemptive flush")
	}
	if !strings.Contains(c.String(), "preemptive-flush") {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestPreemptiveFlushDefaults(t *testing.T) {
	c, err := NewPreemptiveFlush(100, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.window != 512 || c.threshold != 0.5 || c.minFill != 0.5 {
		t.Fatalf("defaults wrong: %d/%g/%g", c.window, c.threshold, c.minFill)
	}
}

// --- Generational ---

func TestGenerationalValidation(t *testing.T) {
	if _, err := NewGenerational(0, 0.25, 8, 2); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewGenerational(100, 1.5, 8, 2); err == nil {
		t.Error("bad nursery fraction should fail")
	}
	if _, err := NewGenerational(100, 0.25, 8, 0); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestGenerationalPromotion(t *testing.T) {
	c, err := NewGenerational(1000, 0.25, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, c, sb(1, 50))
	if c.Tenured().Contains(1) {
		t.Fatal("new blocks must start in the nursery")
	}
	c.Access(1)
	c.Access(1) // second nursery hit: promote
	if !c.Tenured().Contains(1) {
		t.Fatal("block 1 should be tenured after reaching the threshold")
	}
	if c.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", c.Promotions)
	}
	// Still one logical block even though two copies exist.
	if c.Resident() != 1 {
		t.Fatalf("Resident = %d, want 1", c.Resident())
	}
	if !c.Access(1) {
		t.Fatal("tenured block should hit")
	}
}

func TestGenerationalCheckInvariants(t *testing.T) {
	c, err := NewGenerational(1000, 0.25, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		id := SuperblockID(i % 40)
		if !c.Access(id) {
			mustInsert(t, c, sb(id, 20+int(id)))
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	c.Flush()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A nursery-resident block with scrubbed metadata must be flagged.
	for i := range c.blockMeta {
		c.blockMeta[i] = Superblock{}
	}
	if c.Nursery().Resident() > 0 {
		t.Fatal("expected an empty nursery after Flush")
	}
	mustInsert(t, c, sb(1, 30))
	c.blockMeta[1] = Superblock{}
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("missing promotion metadata should fail the invariant check")
	}
}

func TestGenerationalJumboBypassesNursery(t *testing.T) {
	c, _ := NewGenerational(1000, 0.1, 2, 2) // nursery 100 bytes
	mustInsert(t, c, sb(1, 500))
	if !c.Tenured().Contains(1) || c.Nursery().Contains(1) {
		t.Fatal("jumbo block should go straight to tenured")
	}
}

func TestGenerationalStatsAggregation(t *testing.T) {
	c, _ := NewGenerational(400, 0.25, 2, 2)
	for i := 0; i < 200; i++ {
		id := SuperblockID(i % 50)
		if !c.Access(id) {
			mustInsert(t, c, sb(id, 20))
		}
	}
	s := c.Stats()
	if s.Accesses != 200 || s.Hits+s.Misses != s.Accesses {
		t.Fatalf("access stats inconsistent: %+v", *s)
	}
	ns, ts := c.Nursery().Stats(), c.Tenured().Stats()
	if s.EvictionInvocations != ns.EvictionInvocations+ts.EvictionInvocations {
		t.Fatal("eviction aggregation wrong")
	}
	if s.BlocksEvicted != ns.BlocksEvicted+ts.BlocksEvicted {
		t.Fatal("blocks-evicted aggregation wrong")
	}
}

func TestGenerationalDuplicateInsert(t *testing.T) {
	c, _ := NewGenerational(1000, 0.25, 2, 2)
	mustInsert(t, c, sb(1, 50))
	if err := c.Insert(sb(1, 50)); err == nil {
		t.Error("duplicate insert should fail")
	}
}

func TestGenerationalAddLinkRouting(t *testing.T) {
	c, _ := NewGenerational(1000, 0.25, 2, 2)
	if err := c.AddLink(1, 2); err == nil {
		t.Error("AddLink from absent block should fail")
	}
	mustInsert(t, c, sb(1, 50))
	if err := c.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(1) // promoted
	if err := c.AddLink(1, 3); err != nil {
		t.Fatalf("AddLink on tenured block: %v", err)
	}
	if c.BackPtrTableBytes() < 0 {
		t.Fatal("nonsense back-pointer bytes")
	}
	c.Flush()
	if c.Resident() != 0 {
		t.Fatal("flush should empty both generations")
	}
}

// --- Policy specs ---

func TestPolicyNewAndString(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
	}{
		{Policy{Kind: PolicyFlush}, "FLUSH"},
		{Policy{Kind: PolicyUnits, Units: 8}, "8-unit"},
		{Policy{Kind: PolicyFine}, "FIFO"},
		{Policy{Kind: PolicyLRU}, "LRU"},
		{Policy{Kind: PolicyAdaptive}, "adaptive"},
		{Policy{Kind: PolicyPreemptive}, "preemptive"},
		{Policy{Kind: PolicyGenerational, Units: 8}, "generational/8"},
	}
	for _, tc := range cases {
		if tc.p.String() != tc.name {
			t.Errorf("String() = %q, want %q", tc.p.String(), tc.name)
		}
		c, err := tc.p.New(10000)
		if err != nil {
			t.Errorf("%s: New failed: %v", tc.name, err)
			continue
		}
		if c.Capacity() <= 0 {
			t.Errorf("%s: bad capacity", tc.name)
		}
	}
	if _, err := (Policy{Kind: PolicyKind(99)}).New(100); err == nil {
		t.Error("unknown policy should fail")
	}
	if got := (Policy{Kind: PolicyKind(99)}).String(); !strings.Contains(got, "policy(") {
		t.Errorf("unknown policy String() = %q", got)
	}
	if got := (Policy{Kind: PolicyGenerational}).New; got == nil {
		t.Error("unreachable")
	}
}

func TestGranularitySweep(t *testing.T) {
	ps := GranularitySweep(64)
	want := []string{"FLUSH", "2-unit", "4-unit", "8-unit", "16-unit", "32-unit", "64-unit", "FIFO"}
	if len(ps) != len(want) {
		t.Fatalf("sweep length = %d, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("sweep[%d] = %s, want %s", i, p, want[i])
		}
	}
}

// Cross-policy property: same access stream, miss counts ordered by
// granularity is NOT guaranteed pointwise, but conservation laws are.
func TestAllPoliciesConservationLaws(t *testing.T) {
	policies := []Policy{
		{Kind: PolicyFlush},
		{Kind: PolicyUnits, Units: 4},
		{Kind: PolicyUnits, Units: 16},
		{Kind: PolicyFine},
		{Kind: PolicyLRU},
		{Kind: PolicyApproxLRU},
		{Kind: PolicyAdaptive},
		{Kind: PolicyPreemptive},
	}
	r := newTestRand()
	type ref struct {
		id   SuperblockID
		size int
	}
	var blocks []ref
	for i := 0; i < 150; i++ {
		blocks = append(blocks, ref{SuperblockID(i), 10 + r.Intn(90)})
	}
	var accesses []int
	for i := 0; i < 8000; i++ {
		accesses = append(accesses, r.Zipf(len(blocks), 0.9))
	}
	for _, p := range policies {
		c, err := p.New(2500)
		if err != nil {
			t.Fatal(err)
		}
		for _, ai := range accesses {
			b := blocks[ai]
			if !c.Access(b.id) {
				if err := c.Insert(Superblock{ID: b.id, Size: b.size}); err != nil {
					t.Fatalf("%s: %v", p, err)
				}
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Errorf("%s: access conservation violated", p)
		}
		if s.InsertedBlocks-s.BlocksEvicted != uint64(c.Resident()) {
			t.Errorf("%s: block conservation violated: ins=%d ev=%d res=%d",
				p, s.InsertedBlocks, s.BlocksEvicted, c.Resident())
		}
		if c.ResidentBytes() > c.Capacity() {
			t.Errorf("%s: over capacity", p)
		}
	}
}
