package core

import "fmt"

// PreemptiveFlushCache models Dynamo's preemptive flushing policy
// (Bala et al., §2.3): instead of waiting for the cache to fill, the
// manager watches for program phase changes and flushes the whole cache at
// the phase boundary, betting that the old working set is dead anyway.
//
// The phase detector is Dynamo's: a spike in the rate of new-region
// creation signals that the program has moved on. Concretely, we flush
// when the fraction of misses among the last Window accesses exceeds
// Threshold while the cache is at least MinFill full. A flush-when-full
// backstop (the underlying FLUSH mechanism) still applies.
type PreemptiveFlushCache struct {
	*FIFOCache

	window    int
	threshold float64
	minFill   float64

	recent      []bool // ring of hit/miss outcomes, true = miss
	recentIdx   int
	recentCount int
	missInWin   int

	// PreemptiveFlushes counts flushes triggered by the phase detector, as
	// opposed to capacity flushes.
	PreemptiveFlushes uint64
}

var _ Cache = (*PreemptiveFlushCache)(nil)

// NewPreemptiveFlush returns a preemptively flushing cache. window is the
// number of recent accesses the detector inspects (default 512);
// threshold the miss fraction that signals a phase change (default 0.5);
// minFill the occupancy fraction below which flushing is pointless
// (default 0.5).
func NewPreemptiveFlush(capacity, window int, threshold, minFill float64) (*PreemptiveFlushCache, error) {
	if window <= 0 {
		window = 512
	}
	if threshold <= 0 || threshold > 1 {
		threshold = 0.5
	}
	if minFill <= 0 || minFill > 1 {
		minFill = 0.5
	}
	base, err := NewFlush(capacity)
	if err != nil {
		return nil, err
	}
	base.name = "preemptive-flush"
	c := &PreemptiveFlushCache{
		FIFOCache: base,
		window:    window,
		threshold: threshold,
		minFill:   minFill,
		recent:    make([]bool, window),
	}
	// Rebind the engine to the wrapper so the access stream feeds the
	// phase detector through the observers below.
	base.bindPolicy(c)
	return c, nil
}

// ObserveHit implements VictimPolicy, feeding the phase detector.
func (c *PreemptiveFlushCache) ObserveHit(SuperblockID) { c.observe(false) }

// ObserveMiss implements VictimPolicy: a miss both feeds the detector and
// may trip the preemptive flush.
func (c *PreemptiveFlushCache) ObserveMiss(SuperblockID) {
	c.observe(true)
	if c.phaseChange() {
		c.Flush()
		c.PreemptiveFlushes++
		c.resetDetector()
	}
}

// Observes implements VictimPolicy: the detector watches every outcome.
func (c *PreemptiveFlushCache) Observes() (hits, misses bool) { return true, true }

func (c *PreemptiveFlushCache) observe(miss bool) {
	if c.recentCount == c.window {
		if c.recent[c.recentIdx] {
			c.missInWin--
		}
	} else {
		c.recentCount++
	}
	c.recent[c.recentIdx] = miss
	if miss {
		c.missInWin++
	}
	c.recentIdx = (c.recentIdx + 1) % c.window
}

func (c *PreemptiveFlushCache) phaseChange() bool {
	if c.recentCount < c.window {
		return false // not enough history yet
	}
	if float64(c.ResidentBytes()) < c.minFill*float64(c.Capacity()) {
		return false
	}
	return float64(c.missInWin)/float64(c.recentCount) >= c.threshold
}

func (c *PreemptiveFlushCache) resetDetector() {
	for i := range c.recent {
		c.recent[i] = false
	}
	c.recentIdx, c.recentCount, c.missInWin = 0, 0, 0
}

// String describes the detector configuration.
func (c *PreemptiveFlushCache) String() string {
	return fmt.Sprintf("preemptive-flush(window=%d, threshold=%.2f, minFill=%.2f)",
		c.window, c.threshold, c.minFill)
}
