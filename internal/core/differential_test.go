package core

import (
	"testing"

	"dynocache/internal/stats"
)

// Differential tests: FIFOCache against small, independent reference
// models of the eviction semantics. The references share no code with the
// production cache — they use plain slices and re-derive residency from
// first principles every step.

// refFine models fine-grained FIFO: evict oldest blocks, one at a time,
// until the insertion fits.
type refFine struct {
	cap   int
	used  int
	order []SuperblockID
	size  map[SuperblockID]int
}

func newRefFine(cap int) *refFine {
	return &refFine{cap: cap, size: map[SuperblockID]int{}}
}

func (r *refFine) contains(id SuperblockID) bool {
	_, ok := r.size[id]
	return ok
}

func (r *refFine) insert(id SuperblockID, size int) {
	for r.used+size > r.cap {
		victim := r.order[0]
		r.order = r.order[1:]
		r.used -= r.size[victim]
		delete(r.size, victim)
	}
	r.order = append(r.order, id)
	r.size[id] = size
	r.used += size
}

// refFlush models FLUSH: empty everything when the insertion does not fit.
type refFlush struct {
	cap  int
	used int
	size map[SuperblockID]int
}

func newRefFlush(cap int) *refFlush {
	return &refFlush{cap: cap, size: map[SuperblockID]int{}}
}

func (r *refFlush) contains(id SuperblockID) bool {
	_, ok := r.size[id]
	return ok
}

func (r *refFlush) insert(id SuperblockID, size int) {
	if r.used+size > r.cap {
		r.size = map[SuperblockID]int{}
		r.used = 0
	}
	r.size[id] = size
	r.used += size
}

func TestFineMatchesReferenceModel(t *testing.T) {
	const capacity = 1000
	c, err := NewFine(capacity)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefFine(capacity)
	r := stats.NewRand(0xD1F, 1)
	sizes := map[SuperblockID]int{}
	for step := 0; step < 50000; step++ {
		id := SuperblockID(r.Intn(250))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		if got, want := c.Contains(id), ref.contains(id); got != want {
			t.Fatalf("step %d: residency of %d diverged: cache=%v ref=%v", step, id, got, want)
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size}); err != nil {
				t.Fatal(err)
			}
			ref.insert(id, size)
		}
		if c.ResidentBytes() != ref.used {
			t.Fatalf("step %d: resident bytes diverged: cache=%d ref=%d", step, c.ResidentBytes(), ref.used)
		}
	}
}

func TestFlushMatchesReferenceModel(t *testing.T) {
	const capacity = 1000
	c, err := NewFlush(capacity)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefFlush(capacity)
	r := stats.NewRand(0xD1E, 2)
	sizes := map[SuperblockID]int{}
	for step := 0; step < 50000; step++ {
		id := SuperblockID(r.Intn(250))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		if got, want := c.Contains(id), ref.contains(id); got != want {
			t.Fatalf("step %d: residency of %d diverged: cache=%v ref=%v", step, id, got, want)
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size}); err != nil {
				t.Fatal(err)
			}
			ref.insert(id, size)
		}
		if c.ResidentBytes() != ref.used {
			t.Fatalf("step %d: resident bytes diverged: cache=%d ref=%d", step, c.ResidentBytes(), ref.used)
		}
	}
}

// TestLinkTableMatchesMapOracle drives the dense slice-indexed linkTable
// and the retained map-based reference (links_oracle_test.go) through the
// same randomized schedule of inserts, link declarations, partial
// evictions, and full flushes — including re-insertion of evicted blocks
// (regeneration), which exercises the pending/relink path. The two must
// agree on every Stats counter, the unlink-event count, the eviction
// samples, and the exact patched and pending relations.
func TestLinkTableMatchesMapOracle(t *testing.T) {
	const nIDs = 200
	dense := newLinkTable()
	oracle := newMapLinkTable()
	var denseStats, oracleStats Stats
	r := stats.NewRand(0xD1C, 4)

	resident := make(map[SuperblockID]bool)
	var order []SuperblockID // insertion order, for FIFO-style evictions
	isResident := func(id SuperblockID) bool { return resident[id] }

	compareRelations := func(step int) {
		t.Helper()
		if err := dense.checkInvariants(); err != nil {
			t.Fatalf("step %d: dense invariants: %v", step, err)
		}
		if err := oracle.checkInvariants(); err != nil {
			t.Fatalf("step %d: oracle invariants: %v", step, err)
		}
		dp, op := dense.pairs(), oracle.pairs()
		if len(dp) != len(op) {
			t.Fatalf("step %d: patched relation sizes diverged: dense=%d oracle=%d", step, len(dp), len(op))
		}
		for pair := range op {
			if !dp[pair] {
				t.Fatalf("step %d: oracle link %d->%d missing from dense table", step, pair.from, pair.to)
			}
		}
		dq, oq := dense.pendingPairs(), oracle.pendingPairs()
		if len(dq) != len(oq) {
			t.Fatalf("step %d: pending relation sizes diverged: dense=%d oracle=%d", step, len(dq), len(oq))
		}
		for pair := range oq {
			if !dq[pair] {
				t.Fatalf("step %d: oracle pending %d->%d missing from dense table", step, pair.from, pair.to)
			}
		}
		unitOf := func(id SuperblockID) (int64, bool) {
			if !resident[id] {
				return 0, false
			}
			return int64(id % 5), true
		}
		di, de := dense.census(unitOf)
		oi, oe := oracle.census(unitOf)
		if di != oi || de != oe {
			t.Fatalf("step %d: census diverged: dense=(%d,%d) oracle=(%d,%d)", step, di, de, oi, oe)
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // insert (initial generation or regeneration)
			id := SuperblockID(r.Intn(nIDs))
			if resident[id] {
				continue
			}
			resident[id] = true
			order = append(order, id)
			for k := r.Intn(4); k > 0; k-- {
				to := SuperblockID(r.Intn(nIDs))
				dense.declare(id, to, isResident, &denseStats)
				oracle.declare(id, to, isResident, &oracleStats)
			}
			dense.onInsert(id, &denseStats)
			oracle.onInsert(id, &oracleStats)
		case op < 8: // declare a link from a resident block (AddLink path)
			if len(order) == 0 {
				continue
			}
			from := order[r.Intn(len(order))]
			to := SuperblockID(r.Intn(nIDs))
			dense.declare(from, to, isResident, &denseStats)
			oracle.declare(from, to, isResident, &oracleStats)
		default: // evict a FIFO prefix (op==9 flushes everything)
			if len(order) == 0 {
				continue
			}
			n := 1 + r.Intn(len(order))
			if op == 9 {
				n = len(order)
			}
			ids := make([]SuperblockID, n)
			copy(ids, order[:n])
			order = order[n:]
			set := make(map[SuperblockID]struct{}, n)
			for _, id := range ids {
				set[id] = struct{}{}
				delete(resident, id)
			}
			de, oe := dense.unlinkEventsFor(ids), oracle.unlinkEventsFor(set)
			if de != oe {
				t.Fatalf("step %d: unlink events diverged: dense=%d oracle=%d", step, de, oe)
			}
			var ds, os EvictionSample
			dense.onEvict(ids, &denseStats, &ds)
			oracle.onEvict(set, &oracleStats, &os)
			if ds != os {
				t.Fatalf("step %d: eviction samples diverged: dense=%+v oracle=%+v", step, ds, os)
			}
		}
		if dense.patchedLinks() != oracle.patchedCount {
			t.Fatalf("step %d: patched counts diverged: dense=%d oracle=%d",
				step, dense.patchedLinks(), oracle.patchedCount)
		}
		if denseStats != oracleStats {
			t.Fatalf("step %d: stats diverged:\ndense:  %+v\noracle: %+v", step, denseStats, oracleStats)
		}
		if step%500 == 0 {
			compareRelations(step)
		}
	}
	compareRelations(20000)
}

// Unit-cache sandwich property: at every moment, an n-unit cache's
// resident set sits between FLUSH's (subset of everything finer keeps
// *longest-lived content*) is not a strict lattice, but two laws do hold
// exactly and are checked here:
//  1. every policy's resident bytes never exceed capacity;
//  2. the most recently inserted block is always resident.
func TestGranularitySandwichLaws(t *testing.T) {
	const capacity = 2000
	var caches []Cache
	fl, _ := NewFlush(capacity)
	u4, _ := NewUnits(capacity, 4)
	u32, _ := NewUnits(capacity, 32)
	fi, _ := NewFine(capacity)
	caches = append(caches, fl, u4, u32, fi)
	r := stats.NewRand(0xD1D, 3)
	sizes := map[SuperblockID]int{}
	for step := 0; step < 30000; step++ {
		id := SuperblockID(r.Intn(300))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(150)
			sizes[id] = size
		}
		for _, c := range caches {
			if !c.Access(id) {
				if err := c.Insert(Superblock{ID: id, Size: size}); err != nil {
					t.Fatalf("%s: %v", c.Name(), err)
				}
			}
			if c.ResidentBytes() > c.Capacity() {
				t.Fatalf("%s: over capacity at step %d", c.Name(), step)
			}
			if !c.Contains(id) {
				t.Fatalf("%s: freshly touched block %d not resident at step %d", c.Name(), id, step)
			}
		}
	}
}
