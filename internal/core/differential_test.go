package core

import (
	"testing"

	"dynocache/internal/stats"
)

// Differential tests: FIFOCache against small, independent reference
// models of the eviction semantics. The references share no code with the
// production cache — they use plain slices and re-derive residency from
// first principles every step.

// refFine models fine-grained FIFO: evict oldest blocks, one at a time,
// until the insertion fits.
type refFine struct {
	cap   int
	used  int
	order []SuperblockID
	size  map[SuperblockID]int
}

func newRefFine(cap int) *refFine {
	return &refFine{cap: cap, size: map[SuperblockID]int{}}
}

func (r *refFine) contains(id SuperblockID) bool {
	_, ok := r.size[id]
	return ok
}

func (r *refFine) insert(id SuperblockID, size int) {
	for r.used+size > r.cap {
		victim := r.order[0]
		r.order = r.order[1:]
		r.used -= r.size[victim]
		delete(r.size, victim)
	}
	r.order = append(r.order, id)
	r.size[id] = size
	r.used += size
}

// refFlush models FLUSH: empty everything when the insertion does not fit.
type refFlush struct {
	cap  int
	used int
	size map[SuperblockID]int
}

func newRefFlush(cap int) *refFlush {
	return &refFlush{cap: cap, size: map[SuperblockID]int{}}
}

func (r *refFlush) contains(id SuperblockID) bool {
	_, ok := r.size[id]
	return ok
}

func (r *refFlush) insert(id SuperblockID, size int) {
	if r.used+size > r.cap {
		r.size = map[SuperblockID]int{}
		r.used = 0
	}
	r.size[id] = size
	r.used += size
}

func TestFineMatchesReferenceModel(t *testing.T) {
	const capacity = 1000
	c, err := NewFine(capacity)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefFine(capacity)
	r := stats.NewRand(0xD1F, 1)
	sizes := map[SuperblockID]int{}
	for step := 0; step < 50000; step++ {
		id := SuperblockID(r.Intn(250))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		if got, want := c.Contains(id), ref.contains(id); got != want {
			t.Fatalf("step %d: residency of %d diverged: cache=%v ref=%v", step, id, got, want)
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size}); err != nil {
				t.Fatal(err)
			}
			ref.insert(id, size)
		}
		if c.ResidentBytes() != ref.used {
			t.Fatalf("step %d: resident bytes diverged: cache=%d ref=%d", step, c.ResidentBytes(), ref.used)
		}
	}
}

func TestFlushMatchesReferenceModel(t *testing.T) {
	const capacity = 1000
	c, err := NewFlush(capacity)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefFlush(capacity)
	r := stats.NewRand(0xD1E, 2)
	sizes := map[SuperblockID]int{}
	for step := 0; step < 50000; step++ {
		id := SuperblockID(r.Intn(250))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		if got, want := c.Contains(id), ref.contains(id); got != want {
			t.Fatalf("step %d: residency of %d diverged: cache=%v ref=%v", step, id, got, want)
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size}); err != nil {
				t.Fatal(err)
			}
			ref.insert(id, size)
		}
		if c.ResidentBytes() != ref.used {
			t.Fatalf("step %d: resident bytes diverged: cache=%d ref=%d", step, c.ResidentBytes(), ref.used)
		}
	}
}

// Unit-cache sandwich property: at every moment, an n-unit cache's
// resident set sits between FLUSH's (subset of everything finer keeps
// *longest-lived content*) is not a strict lattice, but two laws do hold
// exactly and are checked here:
//  1. every policy's resident bytes never exceed capacity;
//  2. the most recently inserted block is always resident.
func TestGranularitySandwichLaws(t *testing.T) {
	const capacity = 2000
	var caches []Cache
	fl, _ := NewFlush(capacity)
	u4, _ := NewUnits(capacity, 4)
	u32, _ := NewUnits(capacity, 32)
	fi, _ := NewFine(capacity)
	caches = append(caches, fl, u4, u32, fi)
	r := stats.NewRand(0xD1D, 3)
	sizes := map[SuperblockID]int{}
	for step := 0; step < 30000; step++ {
		id := SuperblockID(r.Intn(300))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(150)
			sizes[id] = size
		}
		for _, c := range caches {
			if !c.Access(id) {
				if err := c.Insert(Superblock{ID: id, Size: size}); err != nil {
					t.Fatalf("%s: %v", c.Name(), err)
				}
			}
			if c.ResidentBytes() > c.Capacity() {
				t.Fatalf("%s: over capacity at step %d", c.Name(), step)
			}
			if !c.Contains(id) {
				t.Fatalf("%s: freshly touched block %d not resident at step %d", c.Name(), id, step)
			}
		}
	}
}
