package core

import "fmt"

// Engine is the policy-agnostic half of every cache in this package: the
// slot arena bookkeeping (dense where/size tables, resident counts, live
// bytes), the Stats counter set, the link table (including frozen CSR
// adjacency and lazy patched counting), eviction-sample recording, the
// eviction hook, and the shared invariant checks. What it deliberately
// does NOT contain is any notion of *which* blocks to evict or where to
// place an insertion — that is the VictimPolicy's job.
//
// A concrete cache type (FIFOCache, LRUCache, ...) embeds an Engine by
// value and implements VictimPolicy on itself; the constructor binds the
// two with bindPolicy. The split keeps every policy on one set of cache
// mechanics — exactly the property the paper's cross-policy comparisons
// assume — and lets the replay kernels drive any policy through the same
// devirtualized loop (see EngineBacked).
//
// An Engine must not be copied after first use (its policy holds a
// pointer back to it through the embedding cache type).
type Engine struct {
	name     string
	capacity int

	pol            VictimPolicy
	observesHits   bool
	observesMisses bool

	where     []int64 // id -> arena offset, absentVoff when not resident
	sizes     []int32 // id -> size of the resident block
	resident  int
	liveBytes int64 // sum of resident block sizes

	links *linkTable
	stats Stats

	// evictScratch is the reusable per-invocation victim list (in the
	// policy's eviction order); valid only for the duration of one
	// eviction invocation. Policies build their victim batches in it.
	evictScratch []SuperblockID

	recordSamples bool
	samples       []EvictionSample

	// evictHook, when set, observes every eviction (ids in eviction
	// order) after residency is cleared and before link bookkeeping runs.
	// The DBT uses it to unpatch stubs and drop hash-table entries for
	// physically evicted superblocks. The slice is reused across
	// invocations; hooks must not retain it.
	evictHook func(ids []SuperblockID)
}

// VictimPolicy is the strategy half of a cache: it decides where incoming
// blocks land and which resident blocks die, and optionally observes
// access outcomes. Implementations keep only ordering state (queues,
// recency lists, free lists); all residency, byte, counter, and link
// bookkeeping belongs to the Engine. See DESIGN.md §12 for the full
// contract, including what a policy may and may not touch.
type VictimPolicy interface {
	// Place returns the arena offset for an incoming block of size bytes,
	// evicting resident blocks through Engine.evictBatch as needed. The
	// engine has already validated the block (positive size, fits the
	// capacity, not resident).
	Place(size int) (int64, error)
	// OnInserted records a completed insertion (id now resident at off)
	// in the policy's ordering structures, and runs any per-insertion
	// control (the adaptive controller hooks here).
	OnInserted(id SuperblockID, off int64, size int)
	// ObserveHit is called on each cache hit, after the hit counters,
	// when Observes reports hits=true (LRU recency touches, the
	// preemptive phase detector).
	ObserveHit(id SuperblockID)
	// ObserveMiss is the miss-side counterpart, called after the miss
	// counters and before the subsequent Insert.
	ObserveMiss(id SuperblockID)
	// Observes declares which of the two observers the policy needs; the
	// engine and the replay kernels skip the calls entirely otherwise.
	Observes() (hits, misses bool)
	// EvictAll empties the arena as one eviction invocation (Flush). The
	// engine guarantees at least one block is resident.
	EvictAll()
	// UnitOf maps a resident block to its co-eviction group token for the
	// link census (Figure 12's intra/inter-unit split).
	UnitOf(id SuperblockID) (int64, bool)
}

// EngineBacked is satisfied by every cache built on the shared Engine.
// The replay kernels use it to reach the engine's concrete methods
// (Contains, Insert, BatchAccessStats) regardless of the policy on top.
type EngineBacked interface {
	Cache
	ReplayEngine() *Engine
}

// CounterReader marks a policy whose hooks read the engine's Stats
// mid-run (the adaptive controller prices its windows from the live
// access counters inside OnInserted). Kernels that batch access counters
// must flush them before every insertion for such policies; for every
// other policy per-chunk folding is observably equivalent, and the
// kernels exploit that.
type CounterReader interface {
	ReadsCounters() bool
}

// initEngine prepares an embedded engine in place.
func (e *Engine) initEngine(name string, capacity int) {
	e.name = name
	e.capacity = capacity
	e.links = newLinkTable()
}

// bindPolicy attaches the victim policy steering this engine. Wrapper
// policies (adaptive, preemptive) rebind after construction so the
// engine dispatches to their overridden observers.
func (e *Engine) bindPolicy(pol VictimPolicy) {
	e.pol = pol
	e.observesHits, e.observesMisses = pol.Observes()
}

// ReplayEngine implements EngineBacked for every embedding cache type.
func (e *Engine) ReplayEngine() *Engine { return e }

// BoundPolicy returns the victim policy steering this engine.
func (e *Engine) BoundPolicy() VictimPolicy { return e.pol }

// Observers reports which access-outcome callbacks the bound policy
// requires; the replay kernels hoist these flags out of the hot loop.
func (e *Engine) Observers() (hits, misses bool) {
	return e.observesHits, e.observesMisses
}

// Name implements Cache.
func (e *Engine) Name() string { return e.name }

// Capacity implements Cache.
func (e *Engine) Capacity() int { return e.capacity }

// Stats implements Cache.
func (e *Engine) Stats() *Stats { return &e.stats }

// grow extends the dense residency tables to cover id.
func (e *Engine) grow(id SuperblockID) {
	if int(id) < len(e.where) {
		return
	}
	n := int(id) + 1
	if n < 2*len(e.where) {
		n = 2 * len(e.where)
	}
	where := make([]int64, n)
	for i := range where {
		where[i] = absentVoff
	}
	copy(where, e.where)
	e.where = where
	sizes := make([]int32, n)
	copy(sizes, e.sizes)
	e.sizes = sizes
}

// Reserve pre-sizes the dense residency and link tables for IDs in
// [0, maxID]. Purely an optimization: it avoids the doubling copies of
// incremental growth when the caller knows the trace's ID span up front
// (the replay kernels do).
func (e *Engine) Reserve(maxID SuperblockID) {
	e.grow(maxID)
	e.links.reserve(maxID)
}

// FreezeLinks switches link maintenance to frozen-adjacency mode: blocks
// is the dense (ID-indexed) block table, and blocks[id].Links is the
// immutable link row every future Insert of id promises to declare
// verbatim (or nil for every insert when chainingDisabled). AddLink is
// rejected once frozen. The replay kernels uphold this contract — each
// insertion replays the trace's fixed definition — and in exchange all
// link bookkeeping becomes sequential scans of flat CSR arrays, which
// dominates the replay profile at high cache pressure.
func (e *Engine) FreezeLinks(blocks []Superblock, chainingDisabled bool) {
	e.links.freeze(blocks, chainingDisabled)
}

// FreezeLinksShared is FreezeLinks over a prebuilt FrozenAdjacency,
// letting concurrent replays of the same trace share one immutable CSR
// relation instead of each rebuilding it (the adjacency is only read;
// residency and counters stay per-cache). The same insert contract
// applies: every Insert of id must declare exactly the link row the
// adjacency was built from.
func (e *Engine) FreezeLinksShared(fa *FrozenAdjacency) {
	e.links.freezeShared(fa)
}

// SetLazyPatchedCount defers patched-link counting to PatchedLinks (and
// BackPtrTableBytes) queries instead of maintaining the count on every
// insert and eviction. Requires frozen link adjacency, and is only safe
// when nothing observes the count mid-run — no verification wrapper, no
// census sampling. The fast replay kernel opts in; the count remains
// queryable afterwards via on-demand recomputation.
func (e *Engine) SetLazyPatchedCount(on bool) {
	if on && !e.links.frozen {
		return
	}
	e.links.deferPatched = on
}

// Contains implements Cache.
func (e *Engine) Contains(id SuperblockID) bool {
	return int(id) < len(e.where) && e.where[id] != absentVoff
}

// Access implements Cache, feeding the policy's observers when it has
// any.
func (e *Engine) Access(id SuperblockID) bool {
	e.stats.Accesses++
	if e.Contains(id) {
		e.stats.Hits++
		if e.observesHits {
			e.pol.ObserveHit(id)
		}
		return true
	}
	e.stats.Misses++
	if e.observesMisses {
		e.pol.ObserveMiss(id)
	}
	return false
}

// BatchAccessStats folds a batch of access outcomes into the counters in
// one call: accesses total probes, hits of which hit (the rest were
// misses). Equivalent to that many Access calls; the replay kernel
// accumulates between misses and flushes before every Insert, keeping
// its per-access path to a single residency probe.
func (e *Engine) BatchAccessStats(accesses, hits uint64) {
	e.stats.Accesses += accesses
	e.stats.Hits += hits
	e.stats.Misses += accesses - hits
}

// Resident implements Cache.
func (e *Engine) Resident() int { return e.resident }

// ResidentBytes implements Cache.
func (e *Engine) ResidentBytes() int { return int(e.liveBytes) }

// SetSampleRecording enables or disables per-invocation eviction sample
// capture (for the simulated PAPI measurements of Figure 9).
func (e *Engine) SetSampleRecording(on bool) { e.recordSamples = on }

// SetEvictHook registers a callback invoked with the IDs removed by each
// eviction invocation, in eviction order. The slice is reused across
// invocations; the hook must not retain it past its return.
func (e *Engine) SetEvictHook(hook func(ids []SuperblockID)) { e.evictHook = hook }

// Where returns the arena offset of a resident block (virtual for the
// FIFO family, heap offset for LRU-family policies).
func (e *Engine) Where(id SuperblockID) (off int64, ok bool) {
	if !e.Contains(id) {
		return 0, false
	}
	return e.where[id], true
}

// Samples returns the recorded eviction samples.
func (e *Engine) Samples() []EvictionSample { return e.samples }

// validateInsert mirrors the historical package-level helper with
// concrete receivers so every check inlines on the insert hot path. The
// messages must stay identical across policies.
func (e *Engine) validateInsert(sb Superblock) error {
	if err := validateID(sb.ID); err != nil {
		return err
	}
	if !e.links.prevalidated() {
		// With frozen, prevalidated adjacency the row was checked once at
		// freeze time and inserts are bound to redeclare it verbatim.
		for _, to := range sb.Links {
			if err := validateID(to); err != nil {
				return err
			}
		}
	}
	if sb.Size <= 0 {
		return fmt.Errorf("core: superblock %d has non-positive size %d", sb.ID, sb.Size)
	}
	if sb.Size > e.capacity {
		return fmt.Errorf("core: superblock %d (%d bytes) exceeds cache capacity %d", sb.ID, sb.Size, e.capacity)
	}
	if e.Contains(sb.ID) {
		return fmt.Errorf("core: superblock %d is already resident", sb.ID)
	}
	return nil
}

// Insert implements Cache: validate, let the policy make room and choose
// the offset, then run the engine's single binding path (residency
// tables, counters, link declaration and relinking) and hand the
// placement back to the policy's ordering structures.
func (e *Engine) Insert(sb Superblock) error {
	if err := e.validateInsert(sb); err != nil {
		return err
	}
	// Concrete dispatch for the plain FIFO family (the replay kernels'
	// dominant insert source): one itab compare instead of two interface
	// calls per insertion. Wrapper policies (adaptive, preemptive) rebind
	// to their own type and take the general path below.
	if fc, ok := e.pol.(*FIFOCache); ok {
		off, err := fc.Place(sb.Size)
		if err != nil {
			return err
		}
		e.bind(sb, off)
		fc.OnInserted(sb.ID, off, sb.Size)
		return nil
	}
	off, err := e.pol.Place(sb.Size)
	if err != nil {
		return err
	}
	e.bind(sb, off)
	e.pol.OnInserted(sb.ID, off, sb.Size)
	return nil
}

// bind makes sb resident at off and runs all insertion bookkeeping.
func (e *Engine) bind(sb Superblock, off int64) {
	e.grow(sb.ID)
	e.where[sb.ID] = off
	e.sizes[sb.ID] = int32(sb.Size)
	e.resident++
	e.liveBytes += int64(sb.Size)
	e.stats.InsertedBlocks++
	e.stats.InsertedBytes += uint64(sb.Size)
	if e.links.frozen {
		e.links.declareAll(sb.ID, sb.Links, &e.stats)
	} else {
		for _, to := range sb.Links {
			e.links.declare(sb.ID, to, e.Contains, &e.stats)
		}
	}
	e.links.onInsert(sb.ID, &e.stats)
}

// evictBatch completes one eviction invocation: order holds the victims
// in the policy's eviction order, already removed from the policy's own
// ordering structures. The engine clears residency, maintains every
// counter (including the uniform full-flush rule: an invocation that
// empties the cache counts as one), fires the eviction hook, records a
// sample, and runs link bookkeeping. No-op on an empty batch.
func (e *Engine) evictBatch(order []SuperblockID) {
	if len(order) == 0 {
		return
	}
	var bytes int64
	for _, id := range order {
		bytes += int64(e.sizes[id])
		e.where[id] = absentVoff
	}
	e.resident -= len(order)
	e.liveBytes -= bytes
	if e.evictHook != nil {
		e.evictHook(order)
	}
	e.stats.EvictionInvocations++
	e.stats.BlocksEvicted += uint64(len(order))
	e.stats.BytesEvicted += uint64(bytes)
	if e.resident == 0 {
		e.stats.FullFlushes++
	}
	var sample *EvictionSample
	if e.recordSamples {
		e.samples = append(e.samples, EvictionSample{Bytes: int(bytes), Blocks: len(order)})
		sample = &e.samples[len(e.samples)-1]
	}
	e.stats.UnlinkEvents += e.links.onEvict(order, &e.stats, sample)
}

// AddLink implements Cache.
func (e *Engine) AddLink(from, to SuperblockID) error {
	if !e.Contains(from) {
		return fmt.Errorf("core: AddLink from non-resident superblock %d", from)
	}
	if err := validateID(to); err != nil {
		return err
	}
	if e.links.frozen {
		return fmt.Errorf("core: AddLink on a cache with frozen link adjacency")
	}
	e.links.declare(from, to, e.Contains, &e.stats)
	return nil
}

// Flush implements Cache: it empties the cache as one eviction
// invocation regardless of policy (used by the preemptive-flush
// detector).
func (e *Engine) Flush() {
	if e.resident == 0 {
		return
	}
	e.pol.EvictAll()
}

// LinkCensus implements Cache, classifying patched links by the policy's
// co-eviction units.
func (e *Engine) LinkCensus() (intra, inter int) {
	return e.links.census(e.pol.UnitOf)
}

// BackPtrTableBytes implements Cache. The paper estimates 16 bytes per
// link (an 8-byte pointer plus an 8-byte list link); the FIFO family
// overrides this for FLUSH mode, which needs no table at all.
func (e *Engine) BackPtrTableBytes() int { return 16 * e.links.patchedLinks() }

// PatchedLinks returns the number of currently patched chaining links.
func (e *Engine) PatchedLinks() int { return e.links.patchedLinks() }

// checkEngineInvariants validates the engine-owned state; cache types
// call it from their CheckInvariants after their policy-side checks.
func (e *Engine) checkEngineInvariants() error {
	if int(e.liveBytes) > e.capacity {
		return fmt.Errorf("core: resident bytes %d exceed capacity %d", e.liveBytes, e.capacity)
	}
	return e.links.checkInvariants()
}
