package core

import "testing"

func TestLinkPatchOnInsert(t *testing.T) {
	c, _ := NewFine(1000)
	mustInsert(t, c, sb(1, 10))
	mustInsert(t, c, sb(2, 10, 1)) // 2 -> 1, target resident: patched
	s := c.Stats()
	if s.LinksPatched != 1 || s.PendingRelinks != 0 {
		t.Fatalf("link stats = %+v", *s)
	}
	if c.PatchedLinks() != 1 {
		t.Fatalf("PatchedLinks = %d, want 1", c.PatchedLinks())
	}
}

func TestLinkPendingResolvedLater(t *testing.T) {
	c, _ := NewFine(1000)
	mustInsert(t, c, sb(1, 10, 2)) // 1 -> 2, target absent: pending
	if c.Stats().LinksPatched != 0 {
		t.Fatal("link should be pending, not patched")
	}
	mustInsert(t, c, sb(2, 10)) // target arrives: pending link patched
	s := c.Stats()
	if s.LinksPatched != 1 || s.PendingRelinks != 1 {
		t.Fatalf("link stats = %+v", *s)
	}
}

func TestSelfLinkIsIntraUnit(t *testing.T) {
	c, _ := NewFine(1000)
	mustInsert(t, c, sb(1, 10, 1)) // self-loop
	intra, inter := c.LinkCensus()
	if intra != 1 || inter != 0 {
		t.Fatalf("census = %d/%d, want 1 intra 0 inter", intra, inter)
	}
}

func TestCensusByGranularity(t *testing.T) {
	// Two blocks linked to each other, tiled adjacently.
	build := func(c Cache) {
		mustInsert(t, c, sb(1, 10), sb(2, 10, 1))
		if err := c.AddLink(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	fl, _ := NewFlush(100)
	build(fl)
	intra, inter := fl.LinkCensus()
	if intra != 2 || inter != 0 {
		t.Fatalf("FLUSH census = %d/%d, want all intra", intra, inter)
	}

	fi, _ := NewFine(100)
	build(fi)
	intra, inter = fi.LinkCensus()
	if intra != 0 || inter != 2 {
		t.Fatalf("FIFO census = %d/%d, want all inter", intra, inter)
	}

	// 2 units of 50: both 10-byte blocks land in unit 0 -> intra.
	un, _ := NewUnits(100, 2)
	build(un)
	intra, inter = un.LinkCensus()
	if intra != 2 || inter != 0 {
		t.Fatalf("2-unit census = %d/%d, want all intra", intra, inter)
	}

	// Blocks in different units -> inter.
	un2, _ := NewUnits(100, 2)
	mustInsert(t, un2, sb(1, 50), sb(2, 10, 1)) // block 2 starts at 50: unit 1
	intra, inter = un2.LinkCensus()
	if intra != 0 || inter != 1 {
		t.Fatalf("cross-unit census = %d/%d, want 0/1", intra, inter)
	}
}

func TestUnlinkCostOnlyForSurvivingSources(t *testing.T) {
	// Fine cache: 1 and 2 inserted, both link to each other; then 1 evicted.
	c, _ := NewFine(50)
	mustInsert(t, c, sb(1, 30))
	mustInsert(t, c, sb(2, 20, 1)) // 2 -> 1 patched
	mustInsert(t, c, sb(3, 25))    // evicts 1; 2 survives with a link into 1
	s := c.Stats()
	if s.InterUnitLinksRemoved != 1 {
		t.Fatalf("InterUnitLinksRemoved = %d, want 1", s.InterUnitLinksRemoved)
	}
	if s.UnlinkEvents != 1 {
		t.Fatalf("UnlinkEvents = %d, want 1", s.UnlinkEvents)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoEvictedLinksAreFree(t *testing.T) {
	// FLUSH: everything dies together; no unlink cost ever.
	c, _ := NewFlush(50)
	mustInsert(t, c, sb(1, 25, 2))
	mustInsert(t, c, sb(2, 25, 1))
	mustInsert(t, c, sb(3, 25)) // full flush of 1 and 2
	s := c.Stats()
	if s.InterUnitLinksRemoved != 0 || s.UnlinkEvents != 0 {
		t.Fatalf("FLUSH must never pay unlink costs: %+v", *s)
	}
	if s.IntraUnitLinksFlushed != 2 {
		t.Fatalf("IntraUnitLinksFlushed = %d, want 2", s.IntraUnitLinksFlushed)
	}
}

func TestEvictedSourceRelinksAfterRegeneration(t *testing.T) {
	c, _ := NewFine(100)
	mustInsert(t, c, sb(1, 30))
	mustInsert(t, c, sb(2, 20, 1)) // 2 -> 1 patched
	mustInsert(t, c, sb(3, 60))    // evicts 1, unlinks 2->1, 2->1 now pending
	if c.PatchedLinks() != 0 {
		t.Fatalf("PatchedLinks = %d, want 0 after unlink", c.PatchedLinks())
	}
	// Regenerate 1: the surviving 2 should re-chain to it automatically.
	mustInsert(t, c, sb(1, 10))
	if !c.Contains(2) {
		t.Fatal("test setup: block 2 should still be resident")
	}
	s := c.Stats()
	if s.PendingRelinks != 1 {
		t.Fatalf("PendingRelinks = %d, want 1", s.PendingRelinks)
	}
	if c.PatchedLinks() != 1 {
		t.Fatalf("PatchedLinks = %d, want 1 after relink", c.PatchedLinks())
	}
}

func TestAddLinkValidation(t *testing.T) {
	c, _ := NewFine(100)
	if err := c.AddLink(1, 2); err == nil {
		t.Error("AddLink from absent block should fail")
	}
	mustInsert(t, c, sb(1, 10))
	if err := c.AddLink(1, 2); err != nil {
		t.Fatalf("AddLink to absent target should pend, not fail: %v", err)
	}
	mustInsert(t, c, sb(2, 10))
	if c.PatchedLinks() != 1 {
		t.Fatal("pending AddLink should patch when target arrives")
	}
}

func TestDuplicateLinkNotDoubleCounted(t *testing.T) {
	c, _ := NewFine(100)
	mustInsert(t, c, sb(1, 10))
	mustInsert(t, c, sb(2, 10, 1, 1)) // duplicate declared link
	if c.PatchedLinks() != 1 {
		t.Fatalf("PatchedLinks = %d, want 1 (duplicates collapse)", c.PatchedLinks())
	}
}

func TestBackPtrTableBytes(t *testing.T) {
	fi, _ := NewFine(100)
	mustInsert(t, fi, sb(1, 10))
	mustInsert(t, fi, sb(2, 10, 1))
	if got := fi.BackPtrTableBytes(); got != 16 {
		t.Fatalf("BackPtrTableBytes = %d, want 16", got)
	}
	// FLUSH caches need no table at all (Section 5.1).
	fl, _ := NewFlush(100)
	mustInsert(t, fl, sb(1, 10))
	mustInsert(t, fl, sb(2, 10, 1))
	if got := fl.BackPtrTableBytes(); got != 0 {
		t.Fatalf("FLUSH BackPtrTableBytes = %d, want 0", got)
	}
}

func TestLinkSampleRecordsRemovals(t *testing.T) {
	c, _ := NewFine(50)
	c.SetSampleRecording(true)
	mustInsert(t, c, sb(1, 30))
	mustInsert(t, c, sb(2, 20, 1))
	mustInsert(t, c, sb(3, 25)) // evicts 1, removing one inbound link
	samples := c.Samples()
	if len(samples) != 1 || samples[0].LinksRemoved != 1 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestLinkTableInvariantsUnderChurn(t *testing.T) {
	c, _ := NewUnits(500, 4)
	sizes := map[SuperblockID]int{}
	r := newTestRand()
	for step := 0; step < 10000; step++ {
		id := SuperblockID(r.Intn(100))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(60)
			sizes[id] = size
		}
		if !c.Access(id) {
			links := []SuperblockID{SuperblockID(r.Intn(100)), SuperblockID(r.Intn(100))}
			if err := c.Insert(Superblock{ID: id, Size: size, Links: links}); err != nil {
				t.Fatal(err)
			}
		} else if r.Bernoulli(0.1) {
			if err := c.AddLink(id, SuperblockID(r.Intn(100))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	intra, inter := c.LinkCensus()
	if intra+inter != c.PatchedLinks() {
		t.Fatalf("census %d+%d != patched %d", intra, inter, c.PatchedLinks())
	}
}
