package core

import (
	"fmt"
	"strconv"
	"strings"
)

// PolicyKind enumerates the eviction policies in this package.
type PolicyKind uint8

// The available policy families.
const (
	PolicyFlush PolicyKind = iota
	PolicyUnits
	PolicyFine
	PolicyLRU
	PolicyCompactingLRU
	PolicyAdaptive
	PolicyPreemptive
	PolicyGenerational
	PolicyApproxLRU
)

// Policy is a declarative cache specification, the unit of parameter
// sweeps in the experiment harness.
type Policy struct {
	Kind  PolicyKind
	Units int // for PolicyUnits (>= 2) and the tenured side of generational
}

// String names the policy the way the paper labels its x-axes.
func (p Policy) String() string {
	switch p.Kind {
	case PolicyFlush:
		return "FLUSH"
	case PolicyUnits:
		return fmt.Sprintf("%d-unit", p.Units)
	case PolicyFine:
		return "FIFO"
	case PolicyLRU:
		return "LRU"
	case PolicyApproxLRU:
		return "approx-LRU"
	case PolicyCompactingLRU:
		return "compacting-LRU"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyPreemptive:
		return "preemptive"
	case PolicyGenerational:
		return fmt.Sprintf("generational/%d", p.Units)
	default:
		return fmt.Sprintf("policy(%d)", p.Kind)
	}
}

// New instantiates the policy over a cache of the given capacity.
func (p Policy) New(capacity int) (Cache, error) {
	switch p.Kind {
	case PolicyFlush:
		return NewFlush(capacity)
	case PolicyUnits:
		return NewUnits(capacity, p.Units)
	case PolicyFine:
		return NewFine(capacity)
	case PolicyLRU:
		return NewLRU(capacity)
	case PolicyApproxLRU:
		return NewApproxLRU(capacity)
	case PolicyCompactingLRU:
		return NewCompactingLRU(capacity)
	case PolicyAdaptive:
		return NewAdaptive(AdaptiveConfig{Capacity: capacity})
	case PolicyPreemptive:
		return NewPreemptiveFlush(capacity, 0, 0, 0)
	case PolicyGenerational:
		units := p.Units
		if units == 0 {
			units = 8
		}
		return NewGenerational(capacity, 0.25, units, 2)
	default:
		return nil, fmt.Errorf("core: unknown policy kind %d", p.Kind)
	}
}

// ParsePolicy parses a policy display name: "flush", "fifo" (or "fine"),
// "lru", "approx-lru", "compacting-lru", "adaptive", "preemptive", "N-unit" (e.g.
// "8-unit", with "1-unit" meaning FLUSH), or "generational/N" (bare
// "generational" defaults to 8 tenured units). It accepts every name
// Policy.String produces.
func ParsePolicy(s string) (Policy, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "flush":
		return Policy{Kind: PolicyFlush}, nil
	case "fifo", "fine":
		return Policy{Kind: PolicyFine}, nil
	case "lru":
		return Policy{Kind: PolicyLRU}, nil
	case "approx-lru", "approxlru":
		return Policy{Kind: PolicyApproxLRU}, nil
	case "compacting-lru":
		return Policy{Kind: PolicyCompactingLRU}, nil
	case "adaptive":
		return Policy{Kind: PolicyAdaptive}, nil
	case "preemptive", "preemptive-flush":
		return Policy{Kind: PolicyPreemptive}, nil
	case "generational":
		return Policy{Kind: PolicyGenerational, Units: 8}, nil
	}
	if rest, ok := strings.CutPrefix(s, "generational/"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return Policy{}, fmt.Errorf("core: bad generational unit count %q", rest)
		}
		return Policy{Kind: PolicyGenerational, Units: n}, nil
	}
	if unitStr, ok := strings.CutSuffix(s, "-unit"); ok {
		n, err := strconv.Atoi(unitStr)
		if err != nil || n < 1 {
			return Policy{}, fmt.Errorf("core: bad unit count %q", unitStr)
		}
		if n == 1 {
			return Policy{Kind: PolicyFlush}, nil
		}
		return Policy{Kind: PolicyUnits, Units: n}, nil
	}
	return Policy{}, fmt.Errorf("core: unknown policy %q", s)
}

// GranularitySweep returns the paper's x-axis: FLUSH, then 2..maxUnits
// cache units in powers of two, then fine-grained FIFO. This is the sweep
// behind Figures 6-8, 10-11, and 13-15.
func GranularitySweep(maxUnits int) []Policy {
	ps := []Policy{{Kind: PolicyFlush}}
	for n := 2; n <= maxUnits; n *= 2 {
		ps = append(ps, Policy{Kind: PolicyUnits, Units: n})
	}
	return append(ps, Policy{Kind: PolicyFine})
}
