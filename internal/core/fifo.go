package core

import "fmt"

// evictionMode selects how far the eviction frontier advances per
// invocation.
type evictionMode uint8

const (
	// modeFlush empties the whole cache per invocation (coarsest).
	modeFlush evictionMode = iota
	// modeUnit advances the frontier to the next unit boundary (medium).
	modeUnit
	// modeFine advances the frontier just past enough blocks to fit the
	// incoming one (finest).
	modeFine
)

// absentVoff marks an ID with no resident block in the dense offset table.
const absentVoff = -1

// FIFOCache is the paper's circular-buffer code cache. Superblocks tile a
// virtual byte space [tail, head) with no gaps; physical placement is the
// virtual offset modulo capacity. Eviction always removes the oldest
// blocks; the granularity modes differ only in how far the tail advances
// per eviction invocation:
//
//	FLUSH   — to the head (everything goes; Dynamo, naive full flush)
//	n-unit  — to the next multiple of capacity/n (Figure 5's cache units)
//	FIFO    — to the first block boundary that frees enough space
//	          (DynamoRIO's bounded circular buffer)
//
// Because blocks tile contiguously, a "unit flush" may also take the block
// straddling the unit's upper boundary; that block's bytes were partly in
// the flushed unit, and variable-size entries cannot be split (§3.3).
//
// Residency is tracked in dense slices indexed by SuperblockID (IDs are
// frontend-assigned from 0; see the dense-ID invariant in DESIGN.md), and
// each eviction invocation reuses a scratch victim list, so the hit path
// and steady-state eviction perform no heap allocations.
type FIFOCache struct {
	name     string
	capacity int
	unitSize int // eviction quantum for modeUnit
	nUnits   int // reported unit count: 1 flush, n unit, 0 fine
	mode     evictionMode

	head, tail int64 // virtual byte offsets; head-tail = resident bytes
	queue      []fifoEntry
	qfront     int     // index of the oldest live entry in queue
	where      []int64 // id -> virtual offset, absentVoff when not resident
	sizes      []int32 // id -> size of the resident block
	resident   int

	links *linkTable
	stats Stats

	// evictScratch is the reusable per-invocation victim list (FIFO
	// order); valid only for the duration of one eviction invocation.
	evictScratch []SuperblockID

	recordSamples bool
	samples       []EvictionSample

	// evictHook, when set, observes every eviction (ids in FIFO order)
	// before link bookkeeping runs. The DBT uses it to unpatch stubs and
	// drop hash-table entries for physically evicted superblocks. The
	// slice is reused across invocations; hooks must not retain it.
	evictHook func(ids []SuperblockID)
}

type fifoEntry struct {
	id   SuperblockID
	voff int64
	size int
}

var _ Cache = (*FIFOCache)(nil)

// NewFlush returns a cache that flushes entirely when it fills (the
// coarsest granularity).
func NewFlush(capacity int) (*FIFOCache, error) {
	return newFIFO("FLUSH", capacity, capacity, 1, modeFlush)
}

// NewUnits returns a medium-grained cache split into n equal units flushed
// in circular FIFO order. n must be at least 2 and at most capacity.
// The capacity is rounded down to a multiple of n so units are equal-sized.
func NewUnits(capacity, n int) (*FIFOCache, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: unit cache needs n >= 2, got %d (use NewFlush for n=1)", n)
	}
	if n > capacity {
		return nil, fmt.Errorf("core: unit count %d exceeds capacity %d", n, capacity)
	}
	unitSize := capacity / n
	return newFIFO(fmt.Sprintf("%d-unit", n), unitSize*n, unitSize, n, modeUnit)
}

// NewFine returns the finest-grained FIFO cache: evict only enough of the
// oldest superblocks to make room for each insertion.
func NewFine(capacity int) (*FIFOCache, error) {
	return newFIFO("FIFO", capacity, 0, 0, modeFine)
}

func newFIFO(name string, capacity, unitSize, nUnits int, mode evictionMode) (*FIFOCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	return &FIFOCache{
		name:     name,
		capacity: capacity,
		unitSize: unitSize,
		nUnits:   nUnits,
		mode:     mode,
		links:    newLinkTable(),
	}, nil
}

// Name implements Cache.
func (c *FIFOCache) Name() string { return c.name }

// Capacity implements Cache.
func (c *FIFOCache) Capacity() int { return c.capacity }

// Units implements Cache.
func (c *FIFOCache) Units() int { return c.nUnits }

// Stats implements Cache.
func (c *FIFOCache) Stats() *Stats { return &c.stats }

// grow extends the dense residency tables to cover id.
func (c *FIFOCache) grow(id SuperblockID) {
	if int(id) < len(c.where) {
		return
	}
	n := int(id) + 1
	if n < 2*len(c.where) {
		n = 2 * len(c.where)
	}
	where := make([]int64, n)
	for i := range where {
		where[i] = absentVoff
	}
	copy(where, c.where)
	c.where = where
	sizes := make([]int32, n)
	copy(sizes, c.sizes)
	c.sizes = sizes
}

// Reserve pre-sizes the dense residency and link tables for IDs in
// [0, maxID]. Purely an optimization: it avoids the doubling copies of
// incremental growth when the caller knows the trace's ID span up front
// (the replay kernels do).
func (c *FIFOCache) Reserve(maxID SuperblockID) {
	c.grow(maxID)
	c.links.reserve(maxID)
}

// FreezeLinks switches link maintenance to frozen-adjacency mode: blocks
// is the dense (ID-indexed) block table, and blocks[id].Links is the
// immutable link row every future Insert of id promises to declare
// verbatim (or nil for every insert when chainingDisabled). AddLink is
// rejected once frozen. The replay kernels uphold this contract — each
// insertion replays the trace's fixed definition — and in exchange all
// link bookkeeping becomes sequential scans of flat CSR arrays, which
// dominates the replay profile at high cache pressure.
func (c *FIFOCache) FreezeLinks(blocks []Superblock, chainingDisabled bool) {
	c.links.freeze(blocks, chainingDisabled)
}

// SetLazyPatchedCount defers patched-link counting to PatchedLinks (and
// BackPtrTableBytes) queries instead of maintaining the count on every
// insert and eviction. Requires frozen link adjacency, and is only safe
// when nothing observes the count mid-run — no verification wrapper, no
// census sampling. The fast replay kernel opts in; the count remains
// queryable afterwards via on-demand recomputation.
func (c *FIFOCache) SetLazyPatchedCount(on bool) {
	if on && !c.links.frozen {
		return
	}
	c.links.deferPatched = on
}

// Contains implements Cache.
func (c *FIFOCache) Contains(id SuperblockID) bool {
	return int(id) < len(c.where) && c.where[id] != absentVoff
}

// Access implements Cache.
func (c *FIFOCache) Access(id SuperblockID) bool {
	c.stats.Accesses++
	if c.Contains(id) {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// BatchAccessStats folds a batch of access outcomes into the counters in
// one call: accesses total probes, hits of which hit (the rest were
// misses). Equivalent to that many Access calls; the replay kernel
// accumulates per chunk and flushes once, keeping its per-access path to
// a single residency probe.
func (c *FIFOCache) BatchAccessStats(accesses, hits uint64) {
	c.stats.Accesses += accesses
	c.stats.Hits += hits
	c.stats.Misses += accesses - hits
}

// Resident implements Cache.
func (c *FIFOCache) Resident() int { return c.resident }

// ResidentBytes implements Cache.
func (c *FIFOCache) ResidentBytes() int { return int(c.head - c.tail) }

// SetSampleRecording enables or disables per-invocation eviction sample
// capture (for the simulated PAPI measurements of Figure 9).
func (c *FIFOCache) SetSampleRecording(on bool) { c.recordSamples = on }

// SetEvictHook registers a callback invoked with the IDs removed by each
// eviction invocation, in FIFO order. The slice is reused across
// invocations; the hook must not retain it past its return.
func (c *FIFOCache) SetEvictHook(hook func(ids []SuperblockID)) { c.evictHook = hook }

// Where returns the virtual byte offset of a resident block. The physical
// placement is voff modulo Capacity().
func (c *FIFOCache) Where(id SuperblockID) (voff int64, ok bool) {
	if !c.Contains(id) {
		return 0, false
	}
	return c.where[id], true
}

// VirtualHead returns the virtual offset at which the next insertion will
// be placed.
func (c *FIFOCache) VirtualHead() int64 { return c.head }

// Samples returns the recorded eviction samples.
func (c *FIFOCache) Samples() []EvictionSample { return c.samples }

// validateInsert mirrors the package-level validateInsert with concrete
// receivers so every check inlines on the insert hot path. The messages
// must stay identical to the shared helper's.
func (c *FIFOCache) validateInsert(sb Superblock) error {
	if err := validateID(sb.ID); err != nil {
		return err
	}
	if !c.links.linksValid {
		// With frozen, prevalidated adjacency the row was checked once at
		// freeze time and inserts are bound to redeclare it verbatim.
		for _, to := range sb.Links {
			if err := validateID(to); err != nil {
				return err
			}
		}
	}
	if sb.Size <= 0 {
		return fmt.Errorf("core: superblock %d has non-positive size %d", sb.ID, sb.Size)
	}
	if sb.Size > c.capacity {
		return fmt.Errorf("core: superblock %d (%d bytes) exceeds cache capacity %d", sb.ID, sb.Size, c.capacity)
	}
	if c.Contains(sb.ID) {
		return fmt.Errorf("core: superblock %d is already resident", sb.ID)
	}
	return nil
}

// Insert implements Cache.
func (c *FIFOCache) Insert(sb Superblock) error {
	if err := c.validateInsert(sb); err != nil {
		return err
	}
	// Evict until [head, head+size) fits within the capacity window.
	if c.head+int64(sb.Size)-c.tail > int64(c.capacity) {
		c.evictFor(int64(sb.Size))
	}
	voff := c.head
	c.head += int64(sb.Size)
	c.queue = append(c.queue, fifoEntry{id: sb.ID, voff: voff, size: sb.Size})
	c.grow(sb.ID)
	c.where[sb.ID] = voff
	c.sizes[sb.ID] = int32(sb.Size)
	c.resident++
	c.stats.InsertedBlocks++
	c.stats.InsertedBytes += uint64(sb.Size)
	if c.links.frozen {
		c.links.declareAll(sb.ID, sb.Links, &c.stats)
	} else {
		for _, to := range sb.Links {
			c.links.declare(sb.ID, to, c.Contains, &c.stats)
		}
	}
	c.links.onInsert(sb.ID, &c.stats)
	return nil
}

// AddLink implements Cache.
func (c *FIFOCache) AddLink(from, to SuperblockID) error {
	if !c.Contains(from) {
		return fmt.Errorf("core: AddLink from non-resident superblock %d", from)
	}
	if err := validateID(to); err != nil {
		return err
	}
	if c.links.frozen {
		return fmt.Errorf("core: AddLink on a cache with frozen link adjacency")
	}
	c.links.declare(from, to, c.Contains, &c.stats)
	return nil
}

// evictFor runs one eviction invocation making room for an insertion of
// the given size.
func (c *FIFOCache) evictFor(size int64) {
	// The tail must reach at least `need` for the insertion to fit.
	need := c.head + size - int64(c.capacity)
	var frontier int64
	switch c.mode {
	case modeFlush:
		frontier = c.head
	case modeUnit:
		q := int64(c.unitSize)
		frontier = (need + q - 1) / q * q
	case modeFine:
		frontier = need
	}
	c.evictBelow(frontier)
}

// evictBelow removes, as a single eviction invocation, every block whose
// start offset is below frontier.
func (c *FIFOCache) evictBelow(frontier int64) {
	order := c.evictScratch[:0]
	var bytes int64
	for c.qfront < len(c.queue) && c.queue[c.qfront].voff < frontier {
		e := c.queue[c.qfront]
		c.qfront++
		order = append(order, e.id)
		bytes += int64(e.size)
		c.where[e.id] = absentVoff
	}
	c.evictScratch = order
	if len(order) == 0 {
		return
	}
	c.resident -= len(order)
	if c.qfront < len(c.queue) {
		c.tail = c.queue[c.qfront].voff
	} else {
		c.tail = c.head
		c.queue = c.queue[:0]
		c.qfront = 0
		c.stats.FullFlushes++
	}
	// Reclaim queue space once the dead prefix dominates.
	if c.qfront > 1024 && c.qfront*2 > len(c.queue) {
		c.queue = append(c.queue[:0], c.queue[c.qfront:]...)
		c.qfront = 0
	}

	if c.evictHook != nil {
		c.evictHook(order)
	}

	c.stats.EvictionInvocations++
	c.stats.BlocksEvicted += uint64(len(order))
	c.stats.BytesEvicted += uint64(bytes)

	var sample *EvictionSample
	if c.recordSamples {
		c.samples = append(c.samples, EvictionSample{Bytes: int(bytes), Blocks: len(order)})
		sample = &c.samples[len(c.samples)-1]
	}
	c.stats.UnlinkEvents += c.links.onEvict(order, &c.stats, sample)
}

// Flush implements Cache: it empties the cache as one eviction invocation
// regardless of granularity (used by the preemptive-flush policy).
func (c *FIFOCache) Flush() {
	if c.Resident() == 0 {
		return
	}
	c.evictBelow(c.head)
}

// unitToken maps a resident block to its co-eviction group token.
func (c *FIFOCache) unitToken(id SuperblockID) (int64, bool) {
	if !c.Contains(id) {
		return 0, false
	}
	voff := c.where[id]
	switch c.mode {
	case modeFlush:
		return 0, true
	case modeUnit:
		return voff / int64(c.unitSize), true
	default: // modeFine: every block is its own eviction unit
		return voff, true
	}
}

// LinkCensus implements Cache.
func (c *FIFOCache) LinkCensus() (intra, inter int) {
	return c.links.census(c.unitToken)
}

// BackPtrTableBytes implements Cache. The paper estimates 16 bytes per
// link (an 8-byte pointer plus an 8-byte list link); a FLUSH cache needs
// no table at all because all links die together.
func (c *FIFOCache) BackPtrTableBytes() int {
	if c.mode == modeFlush {
		return 0
	}
	return 16 * c.links.patchedLinks()
}

// PatchedLinks returns the number of currently patched chaining links.
func (c *FIFOCache) PatchedLinks() int { return c.links.patchedLinks() }

// CheckInvariants validates internal consistency; it is exported for tests
// and returns the first violation found.
func (c *FIFOCache) CheckInvariants() error {
	if got := int(c.head - c.tail); got > c.capacity {
		return fmt.Errorf("core: resident bytes %d exceed capacity %d", got, c.capacity)
	}
	var bytes int
	prevEnd := c.tail
	for i := c.qfront; i < len(c.queue); i++ {
		e := c.queue[i]
		if e.voff != prevEnd {
			return fmt.Errorf("core: block %d at %d does not tile (expected %d)", e.id, e.voff, prevEnd)
		}
		prevEnd = e.voff + int64(e.size)
		if w, ok := c.Where(e.id); !ok || w != e.voff {
			return fmt.Errorf("core: block %d queue/index mismatch", e.id)
		}
		if int(c.sizes[e.id]) != e.size {
			return fmt.Errorf("core: block %d size table mismatch", e.id)
		}
		bytes += e.size
	}
	if prevEnd != c.head {
		return fmt.Errorf("core: queue ends at %d, head is %d", prevEnd, c.head)
	}
	if bytes != c.ResidentBytes() {
		return fmt.Errorf("core: block bytes %d != resident bytes %d", bytes, c.ResidentBytes())
	}
	if c.resident != len(c.queue)-c.qfront {
		return fmt.Errorf("core: index has %d blocks, queue has %d", c.resident, len(c.queue)-c.qfront)
	}
	return c.links.checkInvariants()
}
