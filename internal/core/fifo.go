package core

import "fmt"

// evictionMode selects how far the eviction frontier advances per
// invocation.
type evictionMode uint8

const (
	// modeFlush empties the whole cache per invocation (coarsest).
	modeFlush evictionMode = iota
	// modeUnit advances the frontier to the next unit boundary (medium).
	modeUnit
	// modeFine advances the frontier just past enough blocks to fit the
	// incoming one (finest).
	modeFine
)

// absentVoff marks an ID with no resident block in the dense offset table.
const absentVoff = -1

// FIFOCache is the paper's circular-buffer code cache. Superblocks tile a
// virtual byte space [tail, head) with no gaps; physical placement is the
// virtual offset modulo capacity. Eviction always removes the oldest
// blocks; the granularity modes differ only in how far the tail advances
// per eviction invocation:
//
//	FLUSH   — to the head (everything goes; Dynamo, naive full flush)
//	n-unit  — to the next multiple of capacity/n (Figure 5's cache units)
//	FIFO    — to the first block boundary that frees enough space
//	          (DynamoRIO's bounded circular buffer)
//
// Because blocks tile contiguously, a "unit flush" may also take the block
// straddling the unit's upper boundary; that block's bytes were partly in
// the flushed unit, and variable-size entries cannot be split (§3.3).
//
// The type is the Engine's FIFO-family VictimPolicy: the embedded Engine
// owns residency, counters, and links, while this struct keeps only the
// circular-buffer ordering state (the queue and the virtual head/tail).
// Each eviction invocation reuses the engine's scratch victim list, so
// the hit path and steady-state eviction perform no heap allocations.
type FIFOCache struct {
	Engine

	unitSize int // eviction quantum for modeUnit
	nUnits   int // reported unit count: 1 flush, n unit, 0 fine
	mode     evictionMode

	head, tail int64 // virtual byte offsets; head-tail = resident bytes
	queue      []fifoEntry
	qfront     int // index of the oldest live entry in queue
}

type fifoEntry struct {
	id   SuperblockID
	voff int64
	size int
}

var (
	_ Cache        = (*FIFOCache)(nil)
	_ VictimPolicy = (*FIFOCache)(nil)
	_ EngineBacked = (*FIFOCache)(nil)
)

// NewFlush returns a cache that flushes entirely when it fills (the
// coarsest granularity).
func NewFlush(capacity int) (*FIFOCache, error) {
	return newFIFO("FLUSH", capacity, capacity, 1, modeFlush)
}

// NewUnits returns a medium-grained cache split into n equal units flushed
// in circular FIFO order. n must be at least 2 and at most capacity.
// The capacity is rounded down to a multiple of n so units are equal-sized.
func NewUnits(capacity, n int) (*FIFOCache, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: unit cache needs n >= 2, got %d (use NewFlush for n=1)", n)
	}
	if n > capacity {
		return nil, fmt.Errorf("core: unit count %d exceeds capacity %d", n, capacity)
	}
	unitSize := capacity / n
	return newFIFO(fmt.Sprintf("%d-unit", n), unitSize*n, unitSize, n, modeUnit)
}

// NewFine returns the finest-grained FIFO cache: evict only enough of the
// oldest superblocks to make room for each insertion.
func NewFine(capacity int) (*FIFOCache, error) {
	return newFIFO("FIFO", capacity, 0, 0, modeFine)
}

func newFIFO(name string, capacity, unitSize, nUnits int, mode evictionMode) (*FIFOCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	c := &FIFOCache{
		unitSize: unitSize,
		nUnits:   nUnits,
		mode:     mode,
	}
	c.initEngine(name, capacity)
	c.bindPolicy(c)
	return c, nil
}

// Units implements Cache.
func (c *FIFOCache) Units() int { return c.nUnits }

// VirtualHead returns the virtual offset at which the next insertion will
// be placed.
func (c *FIFOCache) VirtualHead() int64 { return c.head }

// Place implements VictimPolicy: evict until [head, head+size) fits
// within the capacity window, then claim the head.
func (c *FIFOCache) Place(size int) (int64, error) {
	if c.head+int64(size)-c.tail > int64(c.capacity) {
		c.evictFor(int64(size))
	}
	voff := c.head
	c.head += int64(size)
	return voff, nil
}

// OnInserted implements VictimPolicy: append the placed block to the
// circular queue.
func (c *FIFOCache) OnInserted(id SuperblockID, off int64, size int) {
	c.queue = append(c.queue, fifoEntry{id: id, voff: off, size: size})
}

// ObserveHit implements VictimPolicy (FIFO ordering ignores hits).
func (c *FIFOCache) ObserveHit(SuperblockID) {}

// ObserveMiss implements VictimPolicy.
func (c *FIFOCache) ObserveMiss(SuperblockID) {}

// Observes implements VictimPolicy: the FIFO family needs no access
// callbacks, which keeps the replay kernels' hit path branch-free.
func (c *FIFOCache) Observes() (hits, misses bool) { return false, false }

// EvictAll implements VictimPolicy.
func (c *FIFOCache) EvictAll() { c.evictBelow(c.head) }

// evictFor runs one eviction invocation making room for an insertion of
// the given size.
func (c *FIFOCache) evictFor(size int64) {
	// The tail must reach at least `need` for the insertion to fit.
	need := c.head + size - int64(c.capacity)
	var frontier int64
	switch c.mode {
	case modeFlush:
		frontier = c.head
	case modeUnit:
		q := int64(c.unitSize)
		frontier = (need + q - 1) / q * q
	case modeFine:
		frontier = need
	}
	c.evictBelow(frontier)
}

// evictBelow removes, as a single eviction invocation, every block whose
// start offset is below frontier. The queue is trimmed here; residency,
// counters, and link bookkeeping run in the engine's evictBatch.
func (c *FIFOCache) evictBelow(frontier int64) {
	order := c.evictScratch[:0]
	for c.qfront < len(c.queue) && c.queue[c.qfront].voff < frontier {
		order = append(order, c.queue[c.qfront].id)
		c.qfront++
	}
	c.evictScratch = order
	if len(order) == 0 {
		return
	}
	if c.qfront < len(c.queue) {
		c.tail = c.queue[c.qfront].voff
	} else {
		c.tail = c.head
		c.queue = c.queue[:0]
		c.qfront = 0
	}
	// Reclaim queue space once the dead prefix dominates.
	if c.qfront > 1024 && c.qfront*2 > len(c.queue) {
		c.queue = append(c.queue[:0], c.queue[c.qfront:]...)
		c.qfront = 0
	}
	c.evictBatch(order)
}

// UnitOf implements VictimPolicy, mapping a resident block to its
// co-eviction group token.
func (c *FIFOCache) UnitOf(id SuperblockID) (int64, bool) {
	if !c.Contains(id) {
		return 0, false
	}
	voff := c.where[id]
	switch c.mode {
	case modeFlush:
		return 0, true
	case modeUnit:
		return voff / int64(c.unitSize), true
	default: // modeFine: every block is its own eviction unit
		return voff, true
	}
}

// BackPtrTableBytes implements Cache, overriding the engine's default: a
// FLUSH cache needs no back-pointer table at all because all links die
// together.
func (c *FIFOCache) BackPtrTableBytes() int {
	if c.mode == modeFlush {
		return 0
	}
	return c.Engine.BackPtrTableBytes()
}

// CheckInvariants validates internal consistency; it is exported for tests
// and returns the first violation found.
func (c *FIFOCache) CheckInvariants() error {
	if got := int(c.head - c.tail); got != c.ResidentBytes() {
		return fmt.Errorf("core: virtual window %d != resident bytes %d", got, c.ResidentBytes())
	}
	var bytes int
	prevEnd := c.tail
	for i := c.qfront; i < len(c.queue); i++ {
		e := c.queue[i]
		if e.voff != prevEnd {
			return fmt.Errorf("core: block %d at %d does not tile (expected %d)", e.id, e.voff, prevEnd)
		}
		prevEnd = e.voff + int64(e.size)
		if w, ok := c.Where(e.id); !ok || w != e.voff {
			return fmt.Errorf("core: block %d queue/index mismatch", e.id)
		}
		if int(c.sizes[e.id]) != e.size {
			return fmt.Errorf("core: block %d size table mismatch", e.id)
		}
		bytes += e.size
	}
	if prevEnd != c.head {
		return fmt.Errorf("core: queue ends at %d, head is %d", prevEnd, c.head)
	}
	if bytes != c.ResidentBytes() {
		return fmt.Errorf("core: block bytes %d != resident bytes %d", bytes, c.ResidentBytes())
	}
	if c.resident != len(c.queue)-c.qfront {
		return fmt.Errorf("core: index has %d blocks, queue has %d", c.resident, len(c.queue)-c.qfront)
	}
	return c.checkEngineInvariants()
}
