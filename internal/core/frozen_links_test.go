package core

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// frozenBlocks builds a dense block table for frozen-adjacency tests.
// dirty adds the raw-row irregularities freeze must tolerate: duplicate
// link declarations and targets outside the dense table (valid IDs that
// are simply never defined, so they can never become resident).
func frozenBlocks(r *rand.Rand, n int, dirty bool) []Superblock {
	blocks := make([]Superblock, n)
	for i := range blocks {
		var links []SuperblockID
		for j := 0; j < r.Intn(4); j++ {
			to := SuperblockID(r.Intn(n))
			if !contains(links, to) {
				links = append(links, to)
			}
		}
		if self := SuperblockID(i); r.Intn(4) == 0 && !contains(links, self) {
			links = append(links, self) // self-link
		}
		if dirty {
			if len(links) > 0 && r.Intn(3) == 0 {
				links = append(links, links[0]) // duplicate declaration
			}
			if r.Intn(3) == 0 {
				links = append(links, SuperblockID(n+r.Intn(3))) // out of range
			}
		}
		blocks[i] = Superblock{
			ID:    SuperblockID(i),
			Size:  40 + r.Intn(200),
			Links: links,
		}
	}
	return blocks
}

// patchedSet collects forEachPatched's visit set as sorted "from->to"
// pairs for order-insensitive comparison.
func patchedSet(c *FIFOCache) [][2]SuperblockID {
	var set [][2]SuperblockID
	c.links.forEachPatched(func(from, to SuperblockID) {
		set = append(set, [2]SuperblockID{from, to})
	})
	sort.Slice(set, func(i, j int) bool {
		if set[i][0] != set[j][0] {
			return set[i][0] < set[j][0]
		}
		return set[i][1] < set[j][1]
	})
	return set
}

// TestFrozenMatchesDynamic is the frozen-adjacency contract test: a
// frozen cache and a plain dynamic cache replaying the same access
// sequence (every insert declaring the block's fixed link row, as the
// replay kernels do) must agree on every statistic, the patched-link
// gauge, the census, the patched relation itself, and their internal
// invariants — across granularities, clean and dirty link rows, and
// eager vs deferred patched counting.
func TestFrozenMatchesDynamic(t *testing.T) {
	newCaches := map[string]func(capacity int) (*FIFOCache, *FIFOCache){
		"flush": func(cap int) (*FIFOCache, *FIFOCache) {
			a, _ := NewFlush(cap)
			b, _ := NewFlush(cap)
			return a, b
		},
		"4-unit": func(cap int) (*FIFOCache, *FIFOCache) {
			a, _ := NewUnits(cap, 4)
			b, _ := NewUnits(cap, 4)
			return a, b
		},
		"fine": func(cap int) (*FIFOCache, *FIFOCache) {
			a, _ := NewFine(cap)
			b, _ := NewFine(cap)
			return a, b
		},
	}
	for name, mk := range newCaches {
		for _, dirty := range []bool{false, true} {
			for _, lazy := range []bool{false, true} {
				r := rand.New(rand.NewSource(int64(len(name)) + 17))
				blocks := frozenBlocks(r, 60, dirty)
				frozen, dynamic := mk(1200)
				frozen.Reserve(SuperblockID(len(blocks) - 1))
				frozen.FreezeLinks(blocks, false)
				frozen.SetLazyPatchedCount(lazy)
				if dirty && frozen.links.fa.rowsExact {
					t.Fatalf("%s: dirty rows should not be exact", name)
				}
				if !dirty && !frozen.links.fa.rowsExact {
					t.Fatalf("%s: clean rows should be exact", name)
				}

				for step := 0; step < 4000; step++ {
					id := SuperblockID(r.Intn(len(blocks)))
					fh := frozen.Access(id)
					dh := dynamic.Access(id)
					if fh != dh {
						t.Fatalf("%s dirty=%v lazy=%v step %d: hit %v vs %v", name, dirty, lazy, step, fh, dh)
					}
					if !fh {
						if err := frozen.Insert(blocks[id]); err != nil {
							t.Fatal(err)
						}
						if err := dynamic.Insert(blocks[id]); err != nil {
							t.Fatal(err)
						}
					}
					if step%500 == 0 {
						if got, want := frozen.PatchedLinks(), dynamic.PatchedLinks(); got != want {
							t.Fatalf("%s dirty=%v lazy=%v step %d: PatchedLinks %d vs %d", name, dirty, lazy, step, got, want)
						}
					}
				}

				if frozen.stats != dynamic.stats {
					t.Errorf("%s dirty=%v lazy=%v: stats diverge:\nfrozen  %+v\ndynamic %+v",
						name, dirty, lazy, frozen.stats, dynamic.stats)
				}
				if got, want := frozen.PatchedLinks(), dynamic.PatchedLinks(); got != want {
					t.Errorf("%s dirty=%v lazy=%v: PatchedLinks %d vs %d", name, dirty, lazy, got, want)
				}
				if got, want := frozen.BackPtrTableBytes(), dynamic.BackPtrTableBytes(); got != want {
					t.Errorf("%s dirty=%v lazy=%v: BackPtrTableBytes %d vs %d", name, dirty, lazy, got, want)
				}
				fi, fe := frozen.LinkCensus()
				di, de := dynamic.LinkCensus()
				if fi != di || fe != de {
					t.Errorf("%s dirty=%v lazy=%v: census (%d,%d) vs (%d,%d)", name, dirty, lazy, fi, fe, di, de)
				}
				if !reflect.DeepEqual(patchedSet(frozen), patchedSet(dynamic)) {
					t.Errorf("%s dirty=%v lazy=%v: patched relations diverge", name, dirty, lazy)
				}
				if err := frozen.CheckInvariants(); err != nil {
					t.Errorf("%s dirty=%v lazy=%v: frozen invariants: %v", name, dirty, lazy, err)
				}
				if err := dynamic.CheckInvariants(); err != nil {
					t.Errorf("%s dirty=%v lazy=%v: dynamic invariants: %v", name, dirty, lazy, err)
				}
			}
		}
	}
}

// TestFrozenUnlinkEventsMatchDynamic pins the standalone pre-eviction
// unlink-event counter (the fused onEvict return is covered by the
// differential above) in both modes.
func TestFrozenUnlinkEventsMatchDynamic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	blocks := frozenBlocks(r, 40, true)
	frozen, _ := NewFine(900)
	dynamic, _ := NewFine(900)
	frozen.FreezeLinks(blocks, false)
	for step := 0; step < 2000; step++ {
		id := SuperblockID(r.Intn(len(blocks)))
		if !frozen.Access(id) {
			if err := frozen.Insert(blocks[id]); err != nil {
				t.Fatal(err)
			}
		}
		if !dynamic.Access(id) {
			if err := dynamic.Insert(blocks[id]); err != nil {
				t.Fatal(err)
			}
		}
		if step%200 == 0 {
			// Probe a hypothetical eviction of a random resident subset.
			var set []SuperblockID
			for _, b := range blocks {
				if frozen.Contains(b.ID) && r.Intn(3) == 0 {
					set = append(set, b.ID)
				}
			}
			if got, want := frozen.links.unlinkEventsFor(set), dynamic.links.unlinkEventsFor(set); got != want {
				t.Fatalf("step %d: unlinkEventsFor %d vs %d", step, got, want)
			}
		}
	}
	if frozen.stats != dynamic.stats {
		t.Errorf("stats diverge:\nfrozen  %+v\ndynamic %+v", frozen.stats, dynamic.stats)
	}
}

// TestFreezeChainingDisabled freezes an empty relation: inserts carry no
// links, nothing patches, and validation is skipped wholesale.
func TestFreezeChainingDisabled(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	blocks := frozenBlocks(r, 30, false)
	c, _ := NewFine(700)
	c.FreezeLinks(blocks, true)
	if !c.links.fa.linksValid {
		t.Fatal("chaining-disabled freeze should mark links valid")
	}
	for step := 0; step < 1000; step++ {
		id := SuperblockID(r.Intn(len(blocks)))
		if !c.Access(id) {
			sb := blocks[id]
			sb.Links = nil // the DisableChaining contract: links stripped
			if err := c.Insert(sb); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.PatchedLinks() != 0 || c.stats.LinksPatched != 0 {
		t.Errorf("chaining disabled: PatchedLinks=%d LinksPatched=%d, want 0",
			c.PatchedLinks(), c.stats.LinksPatched)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFrozenRejectsDynamicMutation: AddLink errors, raw declare panics.
func TestFrozenRejectsDynamicMutation(t *testing.T) {
	blocks := []Superblock{{ID: 0, Size: 64}, {ID: 1, Size: 64}}
	c, _ := NewFine(256)
	c.FreezeLinks(blocks, false)
	if err := c.Insert(blocks[0]); err != nil {
		t.Fatal(err)
	}
	err := c.AddLink(0, 1)
	if err == nil || !strings.Contains(err.Error(), "frozen link adjacency") {
		t.Errorf("AddLink on frozen cache: %v, want frozen-adjacency error", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("dynamic declare on a frozen table should panic")
		}
	}()
	c.links.declare(0, 1, c.Contains, &c.stats)
}

// TestFrozenValidateInsert covers the concrete validator both with and
// without freeze-time link prevalidation.
func TestFrozenValidateInsert(t *testing.T) {
	blocks := []Superblock{
		{ID: 0, Size: 64, Links: []SuperblockID{1}},
		{ID: 1, Size: 64},
	}
	c, _ := NewFine(256)
	c.FreezeLinks(blocks, false)
	if !c.links.fa.linksValid {
		t.Fatal("clean rows should prevalidate")
	}
	if err := c.Insert(blocks[0]); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sb   Superblock
		want string
	}{
		{Superblock{ID: 1 << 30, Size: 64}, "dense-ID limit"},
		{Superblock{ID: 1, Size: 0}, "non-positive size"},
		{Superblock{ID: 1, Size: 9999}, "exceeds cache capacity"},
		{Superblock{ID: 0, Size: 64}, "already resident"},
	}
	for _, tc := range cases {
		if err := c.Insert(tc.sb); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Insert(%+v) = %v, want %q", tc.sb, err, tc.want)
		}
	}

	// Without prevalidation (dirty row -> linksValid false), a bad link
	// target is still caught per insert.
	dirty := []Superblock{{ID: 0, Size: 64, Links: []SuperblockID{1 << 30}}}
	d, _ := NewFine(256)
	d.FreezeLinks(dirty, false)
	if d.links.fa.linksValid {
		t.Fatal("out-of-limit link target should fail prevalidation")
	}
	if err := d.Insert(dirty[0]); err == nil || !strings.Contains(err.Error(), "dense-ID limit") {
		t.Errorf("Insert with invalid link = %v, want dense-ID limit error", err)
	}
}

// TestBatchAccessStats pins the fold's equivalence to individual calls.
func TestBatchAccessStats(t *testing.T) {
	a, _ := NewFine(256)
	b, _ := NewFine(256)
	if err := a.Insert(Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []SuperblockID{0, 1, 0, 2, 0} {
		a.Access(id)
	}
	b.BatchAccessStats(5, 3)
	if a.stats.Accesses != b.stats.Accesses || a.stats.Hits != b.stats.Hits || a.stats.Misses != b.stats.Misses {
		t.Errorf("batch fold diverges: %+v vs %+v", a.stats, b.stats)
	}
}

// TestReserve pre-sizes the dense tables; inserts inside the span must
// not reallocate them.
func TestReserve(t *testing.T) {
	c, _ := NewFine(4096)
	c.Reserve(99)
	if len(c.where) < 100 || len(c.links.resident) < 100 {
		t.Fatalf("Reserve(99): where=%d links=%d, want >= 100", len(c.where), len(c.links.resident))
	}
	wherePtr := &c.where[0]
	for id := SuperblockID(0); id < 100; id += 7 {
		if err := c.Insert(Superblock{ID: id, Size: 32}); err != nil {
			t.Fatal(err)
		}
	}
	if &c.where[0] != wherePtr {
		t.Error("insert within the reserved span reallocated the residency table")
	}
	if c.VirtualHead() != int64(15*32) {
		t.Errorf("VirtualHead = %d, want %d", c.VirtualHead(), 15*32)
	}
}

// TestLazyPatchedCountRequiresFreeze: enabling lazy counting on an
// unfrozen cache is ignored (the dynamic path must keep eager counts).
func TestLazyPatchedCountRequiresFreeze(t *testing.T) {
	c, _ := NewFine(256)
	c.SetLazyPatchedCount(true)
	if c.links.deferPatched {
		t.Fatal("lazy counting must not engage without frozen adjacency")
	}
	if err := c.Insert(Superblock{ID: 0, Size: 64, Links: []SuperblockID{0}}); err != nil {
		t.Fatal(err)
	}
	if c.PatchedLinks() != 1 {
		t.Errorf("PatchedLinks = %d, want 1", c.PatchedLinks())
	}
}

// TestFrozenFlushAndSamples drives the frozen eviction path through Flush
// and sample recording (the sample branch of the frozen onEvict walks).
func TestFrozenFlushAndSamples(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	blocks := frozenBlocks(r, 20, false)
	for _, lazy := range []bool{false, true} {
		c, _ := NewFine(600)
		c.FreezeLinks(blocks, false)
		c.SetLazyPatchedCount(lazy)
		c.SetSampleRecording(true)
		for step := 0; step < 500; step++ {
			id := SuperblockID(r.Intn(len(blocks)))
			if !c.Access(id) {
				if err := c.Insert(blocks[id]); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.Flush()
		if c.Resident() != 0 {
			t.Fatalf("lazy=%v: %d resident after Flush", lazy, c.Resident())
		}
		if c.PatchedLinks() != 0 {
			t.Errorf("lazy=%v: PatchedLinks = %d after Flush, want 0", lazy, c.PatchedLinks())
		}
		if len(c.Samples()) == 0 {
			t.Errorf("lazy=%v: no eviction samples recorded", lazy)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("lazy=%v: %v", lazy, err)
		}
	}
}

// TestFrozenCSRAccessors pins the raw-CSR view the replay kernels hoist
// into their hot loops: the offset/edge arrays must describe exactly the
// rows OutRow/InRow serve, out-of-range IDs must yield empty rows, and
// the exported metadata must match the construction-time flags.
func TestFrozenCSRAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	blocks := frozenBlocks(r, 50, true)
	fa := NewFrozenAdjacency(blocks)
	if fa.NumBlocks() != len(blocks) {
		t.Fatalf("NumBlocks = %d, want %d", fa.NumBlocks(), len(blocks))
	}
	if fa.RowsExact() != fa.rowsExact || fa.LinksValid() != fa.linksValid {
		t.Fatal("accessor flags diverge from construction state")
	}
	for pass, csr := range []func() ([]int32, []SuperblockID){fa.OutCSR, fa.InCSR} {
		idx, edges := csr()
		if len(idx) != len(blocks)+1 || int(idx[len(blocks)]) != len(edges) {
			t.Fatalf("pass %d: CSR shape idx=%d edges=%d for %d blocks", pass, len(idx), len(edges), len(blocks))
		}
		for id := SuperblockID(0); int(id) < len(blocks); id++ {
			row := fa.OutRow(id)
			if pass == 1 {
				row = fa.InRow(id)
			}
			if !reflect.DeepEqual(append([]SuperblockID{}, edges[idx[id]:idx[id+1]]...), append([]SuperblockID{}, row...)) {
				t.Fatalf("pass %d: CSR row %d diverges from the row accessor", pass, id)
			}
		}
	}
	beyond := SuperblockID(len(blocks) + 5)
	if fa.OutRow(beyond) != nil || fa.InRow(beyond) != nil {
		t.Error("rows beyond the dense span must be empty")
	}
	if err := ValidateID(0); err != nil {
		t.Errorf("ValidateID(0) = %v", err)
	}
	if err := ValidateID(1 << 30); err == nil {
		t.Error("ValidateID must reject IDs over the dense-table limit")
	}
}

// TestFreezeEmptyTable: freezing a zero-block table must not break the
// (vacuous) walks.
func TestFreezeEmptyTable(t *testing.T) {
	c, _ := NewFine(256)
	c.FreezeLinks(nil, false)
	if got := c.PatchedLinks(); got != 0 {
		t.Errorf("PatchedLinks = %d, want 0", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
