package core

import (
	"fmt"
	"math"
	"sort"
)

// ApproxLRUCache approximates recency eviction by random-probe timestamp
// sampling, the Redis-style alternative to an exact LRU: every access
// stamps a flat lastUsed array with a logical tick, and eviction draws
// approxLRUProbes random residents and takes the stalest. There is no
// intrusive recency list — hits cost one array store instead of a
// doubly-linked-list splice, and eviction trades exactness for a few
// cache-friendly probes into a dense array.
//
// The approximation is deliberately cheap rather than faithful: with k
// probes the victim is expected to sit in the stalest ~1/(k+1) tail of
// the recency distribution, so hot blocks are overwhelmingly safe and
// the measured miss-rate delta against exact LRU stays small (bounded by
// the differential tests in internal/check). The probe sequence comes
// from a fixed-seed splitmix64 generator, so replays are bit-stable and
// the policy's decisions are equivariant under ID permutation: probes
// select positions in the dense resident array, never ID values.
type ApproxLRUCache struct {
	Engine

	// lastUsed[id] is the logical tick of id's most recent access or
	// insertion; tick increases monotonically, so stamps are unique.
	lastUsed []int64
	tick     int64

	// live is the dense resident-ID array the sampler probes; order is
	// insertion order perturbed by swap-removal, which is itself a
	// deterministic function of the access sequence.
	live []int32

	rng uint64 // splitmix64 state, fixed seed for reproducibility

	holes holeList // free regions, first-fit by lowest offset
	// freeBytes mirrors the holes' byte sum; CheckInvariants re-tallies it.
	freeBytes int

	// FragEvictions and BurstCarves mirror the LRU counters: evictions
	// forced despite sufficient aggregate free space, and batched
	// carve/merge passes (see LRUCache).
	FragEvictions uint64
	BurstCarves   uint64

	// runIDs/runOffs/runSizes stage one victim run chunk for the batched
	// carve; fixed arrays keep the steady state allocation-free.
	runIDs, runOffs, runSizes [evictRunChunk]int32
}

// approxLRUProbes is the sample width per eviction: 8 probes puts the
// victim in the stalest ~11% of residents in expectation, the same
// operating point approx-LRU caches and Redis's allkeys-lru default use.
const approxLRUProbes = 8

// approxLRUSeed is the fixed splitmix64 seed; a constant keeps replays
// bit-stable across runs and platforms.
const approxLRUSeed = 0x9E3779B97F4A7C15

var (
	_ Cache        = (*ApproxLRUCache)(nil)
	_ VictimPolicy = (*ApproxLRUCache)(nil)
	_ EngineBacked = (*ApproxLRUCache)(nil)
)

// NewApproxLRU returns a sampling-LRU cache with the given capacity in
// bytes.
func NewApproxLRU(capacity int) (*ApproxLRUCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	if capacity > math.MaxInt32 {
		return nil, fmt.Errorf("core: approx-LRU capacity %d exceeds the hole index limit", capacity)
	}
	c := &ApproxLRUCache{rng: approxLRUSeed}
	c.holes.reset(0, capacity)
	c.freeBytes = capacity
	c.initEngine("approx-LRU", capacity)
	c.bindPolicy(c)
	return c, nil
}

// Units implements Cache: sampling LRU evicts single blocks.
func (c *ApproxLRUCache) Units() int { return 0 }

// grow extends the timestamp table to cover id.
func (c *ApproxLRUCache) grow(id SuperblockID) {
	if int(id) < len(c.lastUsed) {
		return
	}
	n := int(id) + 1
	if n < 2*len(c.lastUsed) {
		n = 2 * len(c.lastUsed)
	}
	lu := make([]int64, n)
	copy(lu, c.lastUsed)
	c.lastUsed = lu
}

// Reserve pre-sizes the engine tables, the timestamp table, and the
// resident array for IDs in [0, maxID].
func (c *ApproxLRUCache) Reserve(maxID SuperblockID) {
	c.Engine.Reserve(maxID)
	c.grow(maxID)
	if cap(c.live) < int(maxID)+1 {
		live := make([]int32, len(c.live), int(maxID)+1)
		copy(live, c.live)
		c.live = live
	}
}

// FreeBytes returns the total free space across all holes.
func (c *ApproxLRUCache) FreeBytes() int { return c.freeBytes }

// LargestHole returns the size of the biggest contiguous free region.
func (c *ApproxLRUCache) LargestHole() int { return c.holes.largest() }

// ObserveHit implements VictimPolicy: a hit restamps the timestamp — the
// whole point of the approximation, one store instead of a list splice.
func (c *ApproxLRUCache) ObserveHit(id SuperblockID) {
	c.lastUsed[id] = c.tick
	c.tick++
}

// ObserveMiss implements VictimPolicy.
func (c *ApproxLRUCache) ObserveMiss(SuperblockID) {}

// Observes implements VictimPolicy: the sampler needs the hit stream.
func (c *ApproxLRUCache) Observes() (hits, misses bool) { return true, false }

// nextRand advances the splitmix64 stream.
func (c *ApproxLRUCache) nextRand() uint64 {
	c.rng += 0x9E3779B97F4A7C15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sampleVictim draws approxLRUProbes positions from the resident array
// and swap-removes the one with the stalest timestamp. Duplicate probes
// resolve to the first occurrence (stamps are unique per block), keeping
// selection deterministic.
func (c *ApproxLRUCache) sampleVictim() int32 {
	n := len(c.live)
	best := int(c.nextRand() % uint64(n))
	bt := c.lastUsed[c.live[best]]
	for i := 1; i < approxLRUProbes; i++ {
		k := int(c.nextRand() % uint64(n))
		if st := c.lastUsed[c.live[k]]; st < bt {
			best, bt = k, st
		}
	}
	id := c.live[best]
	c.live[best] = c.live[n-1]
	c.live = c.live[:n-1]
	return id
}

// alloc carves size bytes off the first-fit hole.
func (c *ApproxLRUCache) alloc(size int) (int, bool) {
	off, ok := c.holes.allocFirstFit(size)
	if !ok {
		return 0, false
	}
	c.freeBytes -= size
	return off, true
}

// Place implements VictimPolicy: sample-evict stale blocks until a
// first-fit hole accommodates the new superblock, retiring each victim
// run through the batched freeRunAndTake carve. Victims staged but not
// consumed by the carve return to the resident array.
func (c *ApproxLRUCache) Place(size int) (int64, error) {
	if off, ok := c.alloc(size); ok {
		return int64(off), nil
	}
	evicted := c.evictScratch[:0]
	var off int
	for {
		n := 0
		for n < evictRunChunk && len(c.live) > 0 {
			victim := c.sampleVictim()
			c.runIDs[n] = victim
			c.runOffs[n] = int32(c.where[victim])
			c.runSizes[n] = c.sizes[victim]
			n++
		}
		if n == 0 {
			c.evictScratch = evicted
			c.evictBatch(evicted)
			return 0, fmt.Errorf("core: approx-LRU could not place %d bytes in empty cache", size)
		}
		place, taken, used := c.holes.freeRunAndTake(c.runOffs[:n], c.runSizes[:n], size)
		c.BurstCarves++
		for i := 0; i < used; i++ {
			if c.freeBytes >= size {
				c.FragEvictions++
			}
			c.freeBytes += int(c.runSizes[i])
			evicted = append(evicted, SuperblockID(c.runIDs[i]))
		}
		// Staged victims the carve did not need stay resident.
		for i := used; i < n; i++ {
			c.live = append(c.live, c.runIDs[i])
		}
		if taken {
			c.freeBytes -= size
			off = place
			break
		}
	}
	c.evictScratch = evicted
	c.evictBatch(evicted)
	return int64(off), nil
}

// OnInserted implements VictimPolicy: stamp the new block and add it to
// the resident array.
func (c *ApproxLRUCache) OnInserted(id SuperblockID, off int64, size int) {
	c.grow(id)
	c.lastUsed[id] = c.tick
	c.tick++
	c.live = append(c.live, int32(id))
}

// EvictAll implements VictimPolicy.
func (c *ApproxLRUCache) EvictAll() {
	order := c.evictScratch[:0]
	for _, id := range c.live {
		order = append(order, SuperblockID(id))
	}
	c.evictScratch = order
	c.live = c.live[:0]
	c.holes.reset(0, c.capacity)
	c.freeBytes = c.capacity
	c.evictBatch(order)
}

// UnitOf implements VictimPolicy: every block is its own eviction unit.
func (c *ApproxLRUCache) UnitOf(id SuperblockID) (int64, bool) {
	return c.Where(id)
}

// CheckInvariants validates allocator and resident-array consistency.
func (c *ApproxLRUCache) CheckInvariants() error {
	if err := c.holes.checkInvariants(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	type region struct{ off, size int }
	holes := make([]region, 0, c.holes.count)
	tally := 0
	c.holes.ascend(func(off, size int) {
		holes = append(holes, region{off, size})
		tally += size
	})
	for i, h := range holes {
		if h.size <= 0 || h.off < 0 || h.off+h.size > c.capacity {
			return fmt.Errorf("core: bad hole %+v", h)
		}
		if i > 0 {
			prev := holes[i-1]
			if prev.off+prev.size >= h.off {
				return fmt.Errorf("core: holes %+v and %+v overlap or touch", prev, h)
			}
		}
	}
	if tally != c.freeBytes {
		return fmt.Errorf("core: free-byte counter %d != hole tally %d", c.freeBytes, tally)
	}
	if got := c.capacity - c.FreeBytes(); got != c.ResidentBytes() {
		return fmt.Errorf("core: allocator accounts %d resident bytes, engine %d", got, c.ResidentBytes())
	}
	// Blocks and holes partition the arena.
	regions := make([]region, 0, c.resident+len(holes))
	for id, voff := range c.where {
		if voff == absentVoff {
			continue
		}
		regions = append(regions, region{int(voff), int(c.sizes[id])})
	}
	if len(regions) != c.resident {
		return fmt.Errorf("core: resident count %d != occupied regions %d", c.resident, len(regions))
	}
	regions = append(regions, holes...)
	sort.Slice(regions, func(i, j int) bool { return regions[i].off < regions[j].off })
	at := 0
	for _, r := range regions {
		if r.off != at {
			return fmt.Errorf("core: arena gap/overlap at %d (next region at %d)", at, r.off)
		}
		at += r.size
	}
	if at != c.capacity {
		return fmt.Errorf("core: arena regions end at %d, capacity %d", at, c.capacity)
	}
	// The resident array holds exactly the resident blocks, once each.
	if len(c.live) != c.resident {
		return fmt.Errorf("core: resident array has %d entries, engine has %d resident", len(c.live), c.resident)
	}
	seen := make(map[int32]bool, len(c.live))
	for _, id := range c.live {
		if seen[id] {
			return fmt.Errorf("core: resident array repeats block %d", id)
		}
		seen[id] = true
		if !c.Contains(SuperblockID(id)) {
			return fmt.Errorf("core: resident-array block %d not resident", id)
		}
	}
	return c.checkEngineInvariants()
}
