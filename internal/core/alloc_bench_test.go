package core

import "testing"

// Benchmarks and tests for the dense-ID hot path's allocation behavior:
// after warmup (tables grown, scratch buffers at steady-state capacity),
// the Access hit path and eviction invocations must not touch the heap.

// allocRing builds a ring of linked superblocks for churn workloads: block
// i links to its two successors, so evictions constantly unpatch links
// from surviving sources and re-pend them.
func allocRing(n, size int) []Superblock {
	blocks := make([]Superblock, n)
	for i := range blocks {
		id := SuperblockID(i)
		blocks[i] = Superblock{
			ID:   id,
			Size: size,
			Links: []SuperblockID{
				SuperblockID((i + 1) % n),
				SuperblockID((i + 7) % n),
			},
		}
	}
	return blocks
}

// churn replays k sequential misses over the ring, inserting on each.
func churn(c Cache, blocks []Superblock, start, k int) (int, error) {
	n := len(blocks)
	for j := 0; j < k; j++ {
		sb := blocks[start%n]
		start++
		if c.Access(sb.ID) {
			continue
		}
		if err := c.Insert(sb); err != nil {
			return start, err
		}
	}
	return start, nil
}

func TestZeroAllocSteadyState(t *testing.T) {
	const (
		nBlocks = 256
		blkSize = 64
	)
	blocks := allocRing(nBlocks, blkSize)

	t.Run("access-hit", func(t *testing.T) {
		// Capacity holds the whole ring: every access after warmup hits.
		c, err := NewFine(nBlocks * blkSize)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := churn(c, blocks, 0, nBlocks); err != nil {
			t.Fatal(err)
		}
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			if !c.Access(SuperblockID(i % nBlocks)) {
				t.Error("unexpected miss")
			}
			i++
		})
		if allocs != 0 {
			t.Errorf("Access hit path allocated %.1f times per run, want 0", allocs)
		}
	})

	evictionCases := []struct {
		name string
		mk   func(capacity int) (Cache, error)
	}{
		{"fine", func(cap int) (Cache, error) { return NewFine(cap) }},
		{"8-unit", func(cap int) (Cache, error) { return NewUnits(cap, 8) }},
		{"flush", func(cap int) (Cache, error) { return NewFlush(cap) }},
		{"lru", func(cap int) (Cache, error) { return NewLRU(cap) }},
		{"generational", func(cap int) (Cache, error) { return NewGenerational(cap, 0.25, 8, 2) }},
	}
	for _, tc := range evictionCases {
		t.Run("evict-"+tc.name, func(t *testing.T) {
			// Capacity holds a quarter of the ring: cycling through it
			// keeps the eviction mechanism permanently busy.
			c, err := tc.mk(nBlocks * blkSize / 4)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up for several full laps so the dense tables cover the
			// ID space and every scratch buffer (victim list, queue,
			// link-record sets) reaches its steady-state capacity.
			cursor, err := churn(c, blocks, 0, 8*nBlocks)
			if err != nil {
				t.Fatal(err)
			}
			var insertErr error
			allocs := testing.AllocsPerRun(1000, func() {
				cursor, insertErr = churn(c, blocks, cursor, 1)
				if insertErr != nil {
					t.Error(insertErr)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state eviction allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// BenchmarkAccessHot measures the Access hit path.
func BenchmarkAccessHot(b *testing.B) {
	const (
		nBlocks = 256
		blkSize = 64
	)
	blocks := allocRing(nBlocks, blkSize)
	c, err := NewFine(nBlocks * blkSize)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := churn(c, blocks, 0, nBlocks); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Access(SuperblockID(i % nBlocks)) {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkEvictionStorm measures insertion under permanent cache
// pressure: every few inserts trigger an eviction invocation with link
// unpatching.
func BenchmarkEvictionStorm(b *testing.B) {
	const (
		nBlocks = 256
		blkSize = 64
	)
	blocks := allocRing(nBlocks, blkSize)
	for _, n := range []int{0, 8, 1} { // fine, 8-unit, flush
		name := map[int]string{0: "fine", 8: "8-unit", 1: "flush"}[n]
		b.Run(name, func(b *testing.B) {
			capacity := nBlocks * blkSize / 4
			var c Cache
			var err error
			switch n {
			case 0:
				c, err = NewFine(capacity)
			case 1:
				c, err = NewFlush(capacity)
			default:
				c, err = NewUnits(capacity, n)
			}
			if err != nil {
				b.Fatal(err)
			}
			cursor, err := churn(c, blocks, 0, 8*nBlocks)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := churn(c, blocks, cursor, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}
