package core

import "fmt"

// mapLinkTable is the reference implementation of the link table: the
// map-backed version linkTable replaced when the package moved to dense
// slice-indexed records. It is kept verbatim (modulo the rename) as a
// differential-testing oracle: both implementations must produce identical
// Stats and identical patched/pending relations on any operation schedule.
type mapLinkTable struct {
	// patched[from] is the set of targets from currently jumps to.
	patched map[SuperblockID]map[SuperblockID]struct{}
	// backPtrs[to] is the set of sources patched to jump to `to`.
	backPtrs map[SuperblockID]map[SuperblockID]struct{}
	// pending[to] is the set of resident sources with a declared but
	// unpatched link to the absent block `to`.
	pending map[SuperblockID]map[SuperblockID]struct{}

	patchedCount int
}

func newMapLinkTable() *mapLinkTable {
	return &mapLinkTable{
		patched:  make(map[SuperblockID]map[SuperblockID]struct{}),
		backPtrs: make(map[SuperblockID]map[SuperblockID]struct{}),
		pending:  make(map[SuperblockID]map[SuperblockID]struct{}),
	}
}

func (lt *mapLinkTable) patch(from, to SuperblockID) {
	set, ok := lt.patched[from]
	if !ok {
		set = make(map[SuperblockID]struct{})
		lt.patched[from] = set
	}
	if _, dup := set[to]; dup {
		return
	}
	set[to] = struct{}{}
	bp, ok := lt.backPtrs[to]
	if !ok {
		bp = make(map[SuperblockID]struct{})
		lt.backPtrs[to] = bp
	}
	bp[from] = struct{}{}
	lt.patchedCount++
}

func (lt *mapLinkTable) addPending(from, to SuperblockID) {
	set, ok := lt.pending[to]
	if !ok {
		set = make(map[SuperblockID]struct{})
		lt.pending[to] = set
	}
	set[from] = struct{}{}
}

func (lt *mapLinkTable) declare(from, to SuperblockID, resident func(SuperblockID) bool, stats *Stats) {
	if resident(to) {
		lt.patch(from, to)
		stats.LinksPatched++
	} else {
		lt.addPending(from, to)
	}
}

func (lt *mapLinkTable) onInsert(id SuperblockID, stats *Stats) {
	waiting, ok := lt.pending[id]
	if !ok {
		return
	}
	delete(lt.pending, id)
	for from := range waiting {
		lt.patch(from, id)
		stats.LinksPatched++
		stats.PendingRelinks++
	}
}

func (lt *mapLinkTable) onEvict(evicted map[SuperblockID]struct{}, stats *Stats, samples *EvictionSample) {
	for id := range evicted {
		for from := range lt.backPtrs[id] {
			if _, also := evicted[from]; also {
				stats.IntraUnitLinksFlushed++
				continue
			}
			delete(lt.patched[from], id)
			lt.patchedCount--
			stats.InterUnitLinksRemoved++
			if samples != nil {
				samples.LinksRemoved++
			}
			lt.addPending(from, id)
		}
		delete(lt.backPtrs, id)
	}
	for id := range evicted {
		for to := range lt.patched[id] {
			if _, also := evicted[to]; !also {
				if bp, ok := lt.backPtrs[to]; ok {
					delete(bp, id)
				}
			}
			lt.patchedCount--
		}
		delete(lt.patched, id)
		for to, set := range lt.pending {
			delete(set, id)
			if len(set) == 0 {
				delete(lt.pending, to)
			}
		}
	}
}

func (lt *mapLinkTable) unlinkEventsFor(evicted map[SuperblockID]struct{}) uint64 {
	var events uint64
	for id := range evicted {
		for from := range lt.backPtrs[id] {
			if _, also := evicted[from]; !also {
				events++
				break
			}
		}
	}
	return events
}

func (lt *mapLinkTable) census(unitOf func(SuperblockID) (int64, bool)) (intra, inter int) {
	for from, set := range lt.patched {
		fu, ok := unitOf(from)
		if !ok {
			continue
		}
		for to := range set {
			tu, ok := unitOf(to)
			if !ok {
				continue
			}
			if fu == tu {
				intra++
			} else {
				inter++
			}
		}
	}
	return intra, inter
}

func (lt *mapLinkTable) checkInvariants() error {
	count := 0
	for from, set := range lt.patched {
		for to := range set {
			bp, ok := lt.backPtrs[to]
			if !ok {
				return fmt.Errorf("core: link %d->%d missing back-pointer set", from, to)
			}
			if _, ok := bp[from]; !ok {
				return fmt.Errorf("core: link %d->%d missing back-pointer", from, to)
			}
			count++
		}
	}
	for to, bp := range lt.backPtrs {
		for from := range bp {
			if _, ok := lt.patched[from][to]; !ok {
				return fmt.Errorf("core: dangling back-pointer %d->%d", from, to)
			}
		}
	}
	if count != lt.patchedCount {
		return fmt.Errorf("core: patched count %d != recounted %d", lt.patchedCount, count)
	}
	return nil
}

// linkPairs flattens a patched relation into a set of from->to pairs.
type linkPair struct{ from, to SuperblockID }

func (lt *mapLinkTable) pairs() map[linkPair]bool {
	out := make(map[linkPair]bool)
	for from, set := range lt.patched {
		for to := range set {
			out[linkPair{from, to}] = true
		}
	}
	return out
}

func (lt *linkTable) pairs() map[linkPair]bool {
	out := make(map[linkPair]bool)
	lt.forEachPatched(func(from, to SuperblockID) {
		out[linkPair{from, to}] = true
	})
	return out
}

// pendingPairs flattens the pending relation into from->to pairs.
func (lt *mapLinkTable) pendingPairs() map[linkPair]bool {
	out := make(map[linkPair]bool)
	for to, set := range lt.pending {
		for from := range set {
			out[linkPair{from, to}] = true
		}
	}
	return out
}

func (lt *linkTable) pendingPairs() map[linkPair]bool {
	out := make(map[linkPair]bool)
	if lt.frozen {
		for from := 0; from+1 < len(lt.fa.foutIdx); from++ {
			if !lt.resident[from] {
				continue
			}
			for _, to := range lt.foutRow(SuperblockID(from)) {
				if !lt.resident[to] {
					out[linkPair{SuperblockID(from), to}] = true
				}
			}
		}
		return out
	}
	for from := range lt.out {
		if !lt.resident[from] {
			continue
		}
		for _, to := range lt.out[from] {
			if int(to) >= len(lt.resident) || !lt.resident[to] {
				out[linkPair{SuperblockID(from), to}] = true
			}
		}
	}
	return out
}
