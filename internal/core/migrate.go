package core

import (
	"encoding/binary"
	"fmt"
)

// This file makes a tenant's cache state a first-class, movable value.
//
// The service layer (internal/service) places each tenant's dense ID range
// [0, span) at [base, base+span) inside a shard's engine. Live shard
// rebalancing needs to pull exactly that slice of engine state out — the
// tenant's resident superblocks, their sizes, their relative eviction
// order, and the declared links among them — and push it into another
// engine without disturbing the paper's Eq. 2–4 accounting:
//
//   - extraction is NOT an eviction: no eviction counters fire on the
//     source, because the code is not being thrown away, only relocated;
//   - installation is NOT an insertion: the destination's InsertedBlocks /
//     InsertedBytes stay untouched (the blocks were already paid for at
//     their original insertion), but any evictions the destination must
//     perform to make room are real evictions with full Stats accounting;
//   - links WITHIN the span travel with the state and are redeclared at
//     the destination; links CROSSING the span boundary cannot survive a
//     relocation (the patched branches would dangle) and are severed with
//     Eq. 4's cost model: a patched link from a surviving source into the
//     span is an individual unpatch (InterUnitLinksRemoved, and one
//     UnlinkEvent per departing block with at least one such link), while
//     pending declarations into the span are severed for free.
//
// Relative eviction order is preserved by construction: the FIFO family
// exports blocks in queue order and reinstalls them oldest-first at the
// destination's head; LRU exports in recency order (eviction victim
// first) and rebuilds the recency list with the same relative ranking.
// When the destination arena is empty the exact source geometry (virtual
// offsets for FIFO, heap extents for LRU) is adopted verbatim, so a
// tenant migrated between otherwise-idle shards behaves bit-identically
// to one that never moved.

// MigratedBlock is one resident superblock inside a TenantState. IDs and
// link targets are span-relative (engine ID minus the extraction base), so
// the state is position-independent and can be installed at any base.
type MigratedBlock struct {
	ID   SuperblockID // span-relative ID
	Size int32
	// Off is the block's arena offset at the source (virtual offset for
	// the FIFO family, heap offset for LRU). Installation adopts the
	// exact layout when the destination arena is empty and the offsets
	// are admissible; otherwise Off is only a hint and placement is
	// re-derived.
	Off int64
	// Links is the block's declared intra-span out-row (deduplicated,
	// declaration order), span-relative. Cross-span links were severed at
	// extraction and do not travel.
	Links []SuperblockID
}

// TenantState is the compact, movable form of one ID span's resident
// state: every resident block in eviction order (Blocks[0] is the next
// victim, Blocks[len-1] the most recently placed/used), with sizes,
// source offsets, and intra-span links.
type TenantState struct {
	Span   SuperblockID
	Bytes  int64 // sum of Blocks[i].Size
	Blocks []MigratedBlock
}

// SpanMigrator is implemented by caches whose per-span state can be
// extracted and reinstalled elsewhere. FIFOCache (all three granularity
// modes) and LRUCache implement it; wrapper policies built on them
// inherit it.
type SpanMigrator interface {
	// ExtractSpan removes every resident block with ID in [base,
	// base+span) and returns it as a TenantState in eviction order.
	// Residency, byte, and link bookkeeping are updated; eviction
	// counters are NOT (relocation is not eviction), but severing
	// cross-span patched links charges Eq. 4's unlink counters.
	ExtractSpan(base, span SuperblockID) (*TenantState, error)
	// InstallSpan re-creates an extracted state at a (possibly new)
	// base, preserving relative eviction order. Evictions needed to make
	// room are real evictions with full Stats accounting; the installed
	// blocks do not count as insertions. Validation runs before any
	// mutation: on error the cache is unchanged.
	InstallSpan(base SuperblockID, st *TenantState) error
}

var (
	_ SpanMigrator = (*FIFOCache)(nil)
	_ SpanMigrator = (*LRUCache)(nil)
)

// validateSpan rejects impossible migration spans and frozen link tables
// (the frozen CSR relation is immutable and cannot express a departing
// span; the service never freezes, only the solo replay kernels do).
func (e *Engine) validateSpan(base, span SuperblockID) error {
	if span < 1 {
		return fmt.Errorf("core: empty migration span")
	}
	if uint64(base)+uint64(span) > uint64(MaxSuperblockID)+1 {
		return fmt.Errorf("core: migration span [%d, %d) exceeds the ID limit %d", base, uint64(base)+uint64(span), MaxSuperblockID)
	}
	if e.links.frozen {
		return fmt.Errorf("core: cannot migrate spans on a cache with frozen link adjacency")
	}
	return nil
}

// extractState clears residency for the ordered in-span blocks and builds
// their movable state. ids must be exactly the resident blocks of [base,
// base+span) in eviction order; the policy caller has already removed
// them from its own ordering structures. Eviction counters stay
// untouched; cross-span link severing charges Eq. 4's unlink counters.
func (e *Engine) extractState(base, span SuperblockID, ids []SuperblockID) *TenantState {
	st := &TenantState{Span: span, Blocks: make([]MigratedBlock, 0, len(ids))}
	rows, events := e.links.onExtract(base, span, ids, &e.stats)
	for i, id := range ids {
		size := e.sizes[id]
		st.Blocks = append(st.Blocks, MigratedBlock{
			ID:    id - base,
			Size:  size,
			Off:   e.where[id],
			Links: rows[i],
		})
		st.Bytes += int64(size)
		e.where[id] = absentVoff
		e.resident--
		e.liveBytes -= int64(size)
	}
	e.stats.UnlinkEvents += events
	return st
}

// bindMigrated is bind() for relocated blocks: residency, bytes, and the
// link relation are re-established exactly as for an insertion, but with
// NO counter charges — InsertedBlocks/InsertedBytes because the block
// was paid for at its original insertion, and LinksPatched/PendingRelinks
// because relocation moves already-patched code (a carried edge that was
// patched at the source comes back patched; one that was pending stays
// pending and re-chains with normal accounting when its target
// regenerates). This is what makes a migrated tenant's counters
// bit-identical to a never-migrated run.
func (e *Engine) bindMigrated(sb Superblock, off int64) {
	e.grow(sb.ID)
	e.where[sb.ID] = off
	e.sizes[sb.ID] = int32(sb.Size)
	e.resident++
	e.liveBytes += int64(sb.Size)
	for _, to := range sb.Links {
		e.links.declareSilent(sb.ID, to, e.Contains)
	}
	e.links.onInsertSilent(sb.ID)
}

// declareSilent rebuilds a carried declaration without patch-cost
// charges; patchedCount still tracks the live edge set.
func (lt *linkTable) declareSilent(from, to SuperblockID, resident func(SuperblockID) bool) {
	if from > to {
		lt.grow(from)
	} else {
		lt.grow(to)
	}
	if contains(lt.out[from], to) {
		return
	}
	lt.out[from] = append(lt.out[from], to)
	if !contains(lt.in[to], from) {
		lt.in[to] = append(lt.in[to], from)
	}
	if resident(to) {
		lt.patchedCount++
	}
}

// onInsertSilent marks a relocated block resident and re-patches its
// carried inbound edges, again without counter charges.
func (lt *linkTable) onInsertSilent(id SuperblockID) {
	lt.grow(id)
	lt.resident[id] = true
	for _, from := range lt.in[id] {
		if from == id {
			continue // patched by its own declaration, as in bind
		}
		if lt.resident[from] && contains(lt.out[from], id) {
			lt.patchedCount++
		}
	}
}

// validateInstall checks a TenantState against this engine before any
// mutation, so a failed install leaves the destination untouched.
func (e *Engine) validateInstall(base SuperblockID, st *TenantState) error {
	if st == nil {
		return fmt.Errorf("core: nil tenant state")
	}
	if err := e.validateSpan(base, st.Span); err != nil {
		return err
	}
	// The whole target range must be vacant, not just the carried IDs:
	// a resident stranger inside the span would alias carried pending
	// links when it is next referenced.
	end := base + st.Span
	if limit := SuperblockID(len(e.where)); end > limit {
		end = limit
	}
	for id := base; id < end; id++ {
		if e.where[id] != absentVoff {
			return fmt.Errorf("core: block %d already resident inside install span [%d, %d)", id, base, base+st.Span)
		}
	}
	var bytes int64
	seen := make(map[SuperblockID]struct{}, len(st.Blocks))
	for _, b := range st.Blocks {
		if b.ID >= st.Span {
			return fmt.Errorf("core: migrated block %d outside declared span %d", b.ID, st.Span)
		}
		if _, dup := seen[b.ID]; dup {
			return fmt.Errorf("core: migrated block %d appears twice in tenant state", b.ID)
		}
		seen[b.ID] = struct{}{}
		if b.Size <= 0 {
			return fmt.Errorf("core: migrated block %d has non-positive size %d", b.ID, b.Size)
		}
		if int(b.Size) > e.capacity {
			return fmt.Errorf("core: migrated block %d (%d bytes) exceeds cache capacity %d", b.ID, b.Size, e.capacity)
		}
		// b.ID < st.Span plus the vacancy scan above already guarantee
		// base+b.ID is absent, so no per-block residency check is needed.
		for _, to := range b.Links {
			if to >= st.Span {
				return fmt.Errorf("core: migrated block %d links to %d outside declared span %d", b.ID, to, st.Span)
			}
		}
		bytes += int64(b.Size)
	}
	if bytes != st.Bytes {
		return fmt.Errorf("core: tenant state declares %d bytes, blocks sum to %d", st.Bytes, bytes)
	}
	return nil
}

// rebasedLinks translates a span-relative link row into engine IDs.
func rebasedLinks(base SuperblockID, links []SuperblockID) []SuperblockID {
	if len(links) == 0 {
		return nil
	}
	out := make([]SuperblockID, len(links))
	for i, to := range links {
		out[i] = base + to
	}
	return out
}

// Contiguous reports whether the state's blocks tile their source arena
// with no gaps — the precondition for the FIFO family's exact-geometry
// adoption (a tenant alone on its source shard always extracts
// contiguously; co-located tenants interleave and do not).
func (st *TenantState) Contiguous() bool {
	if len(st.Blocks) == 0 {
		return false
	}
	for i := 1; i < len(st.Blocks); i++ {
		p := st.Blocks[i-1]
		if st.Blocks[i].Off != p.Off+int64(p.Size) {
			return false
		}
	}
	return true
}

// removeEdge deletes `to` from a declared out-row, preserving order.
func removeEdge(set *[]SuperblockID, to SuperblockID) bool {
	s := *set
	for i, x := range s {
		if x == to {
			copy(s[i:], s[i+1:])
			*set = s[:len(s)-1]
			return true
		}
	}
	return false
}

// onExtract processes a span departure: it returns every extracted
// block's intra-span out-row (span-relative, for the TenantState) and the
// number of Eq. 4 unlink events, and severs every edge crossing the span
// boundary so the vacated ID range can be reused safely.
//
// Accounting mirrors onEvict's classification, minus the parts that do
// not apply to relocation: patched links FROM the span to survivors die
// with the departing source for free (exactly as a source's eviction
// would kill them); patched links from survivors INTO the span are
// unpatched one at a time (InterUnitLinksRemoved, one UnlinkEvent per
// departing block with at least one) — but unlike eviction they are NOT
// reinstated as pending, because the target is leaving this engine for
// good. Pending declarations across the boundary (either direction) are
// severed for free. Intra-span edges travel with the state and charge
// nothing — they are neither flushed nor unpatched.
func (lt *linkTable) onExtract(base, span SuperblockID, ids []SuperblockID, stats *Stats) (rows [][]SuperblockID, events uint64) {
	lt.markEvicted(ids)
	rows = make([][]SuperblockID, len(ids))
	// Outbound walk, pre-departure residency: record the intra-span row,
	// retire the patched count of every live out-edge, truncate.
	for i, id := range ids {
		out := lt.out[id]
		var row []SuperblockID
		for _, to := range out {
			if to >= base && to-base < span {
				row = append(row, to-base)
			}
			if int(to) < len(lt.resident) && lt.resident[to] {
				lt.patchedCount--
			}
		}
		rows[i] = row
		lt.out[id] = out[:0]
	}
	for _, id := range ids {
		lt.resident[id] = false
	}
	// Inbound walk over the whole span: sever every surviving out-of-span
	// edge into it. Edges into departing (marked) targets were patched
	// and charge Eq. 4; edges into absent in-span targets were pending
	// and sever for free. Removing the edge from out[from] (not just
	// unpatching) is what makes reusing the vacated ID range safe: a
	// future insert at these IDs must not spuriously re-patch a stale
	// declaration that pointed at the departed tenant's code.
	end := base + span
	if limit := SuperblockID(len(lt.in)); end > limit {
		end = limit
	}
	for to := base; to < end; to++ {
		wasPatched := lt.evicted(to)
		unlinked := false
		for _, from := range lt.in[to] {
			if from >= base && from < base+span {
				continue // intra-span: travels with the state or already dead
			}
			if int(from) >= len(lt.resident) || !lt.resident[from] {
				continue // dead source: edge not live
			}
			if !removeEdge(&lt.out[from], to) {
				continue // stale reverse entry from an earlier residency
			}
			if wasPatched {
				lt.patchedCount--
				stats.InterUnitLinksRemoved++
				unlinked = true
			}
		}
		if unlinked {
			events++
		}
	}
	return rows, events
}

// ExtractSpan implements SpanMigrator for the FIFO family. Blocks leave
// in queue (eviction) order; survivors are compacted down the virtual
// byte space — the canonical relocation of a circular buffer, free of
// charge because offsets are virtual — so the queue keeps tiling
// [tail, head) with no gaps.
func (c *FIFOCache) ExtractSpan(base, span SuperblockID) (*TenantState, error) {
	if err := c.validateSpan(base, span); err != nil {
		return nil, err
	}
	var ids []SuperblockID
	for i := c.qfront; i < len(c.queue); i++ {
		if id := c.queue[i].id; id >= base && id-base < span {
			ids = append(ids, id)
		}
	}
	st := c.extractState(base, span, ids)
	if len(ids) == 0 {
		return st, nil
	}
	// Compact the survivors in place: each keeps its order but slides
	// down by the extracted bytes that preceded it, so the tail is
	// unchanged and the head retreats by the extracted total.
	var removed int64
	w := 0
	for i := c.qfront; i < len(c.queue); i++ {
		e := c.queue[i]
		if e.id >= base && e.id-base < span {
			removed += int64(e.size)
			continue
		}
		e.voff -= removed
		c.where[e.id] = e.voff
		c.queue[w] = e
		w++
	}
	c.queue = c.queue[:w]
	c.qfront = 0
	c.head -= removed
	if w == 0 {
		c.tail = c.head
	} else {
		c.tail = c.queue[0].voff
	}
	return st, nil
}

// InstallSpan implements SpanMigrator for the FIFO family. An empty
// destination adopts the source geometry verbatim when the state is
// contiguous (bit-identical continuation for a tenant migrated between
// dedicated shards); otherwise blocks append at the head oldest-first,
// evicting for room with full Stats accounting, which preserves the
// span's relative eviction order among themselves and makes them the
// youngest blocks in the destination.
func (c *FIFOCache) InstallSpan(base SuperblockID, st *TenantState) error {
	if err := c.validateInstall(base, st); err != nil {
		return err
	}
	if c.resident == 0 {
		c.queue = c.queue[:0]
		c.qfront = 0
		if st.Contiguous() {
			c.tail = st.Blocks[0].Off
			c.head = c.tail
			for _, b := range st.Blocks {
				sb := Superblock{ID: base + b.ID, Size: int(b.Size), Links: rebasedLinks(base, b.Links)}
				c.bindMigrated(sb, b.Off)
				c.queue = append(c.queue, fifoEntry{id: sb.ID, voff: b.Off, size: int(b.Size)})
				c.head += int64(b.Size)
			}
			return nil
		}
	}
	for _, b := range st.Blocks {
		size := int(b.Size)
		if c.head+int64(size)-c.tail > int64(c.capacity) {
			c.evictFor(int64(size))
		}
		voff := c.head
		c.head += int64(size)
		sb := Superblock{ID: base + b.ID, Size: size, Links: rebasedLinks(base, b.Links)}
		c.bindMigrated(sb, voff)
		c.queue = append(c.queue, fifoEntry{id: sb.ID, voff: voff, size: size})
	}
	return nil
}

// ExtractSpan implements SpanMigrator for LRU. Blocks leave in recency
// order, eviction victim first; their heap extents return to the hole
// index (merging as a free would).
func (c *LRUCache) ExtractSpan(base, span SuperblockID) (*TenantState, error) {
	if err := c.validateSpan(base, span); err != nil {
		return nil, err
	}
	var ids []SuperblockID
	for v := c.tail; v != lruNil; v = c.prevID[v] {
		if id := SuperblockID(v); id >= base && id-base < span {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		c.unlink(int32(id))
		size := int(c.sizes[id])
		// Merging free: want is unreachable, so nothing is re-carved.
		c.holes.freeAndTake(int(c.where[id]), size, c.capacity+1)
		c.freeBytes += size
	}
	return c.extractState(base, span, ids), nil
}

// InstallSpan implements SpanMigrator for LRU. An empty destination
// adopts the exact source extents (the hole index is rebuilt as their
// complement), reproducing the source allocator state bit-for-bit;
// otherwise each block is placed first-fit in recency order — oldest
// first, so the span's relative recency ranking survives — evicting
// destination tail victims with full Stats accounting as needed.
func (c *LRUCache) InstallSpan(base SuperblockID, st *TenantState) error {
	if err := c.validateInstall(base, st); err != nil {
		return err
	}
	if c.resident == 0 && lruLayoutAdmissible(st, c.capacity) {
		// Rebuild the hole index as the complement of the adopted extents.
		order := make([]int, len(st.Blocks))
		for i := range order {
			order[i] = i
		}
		sortByOff(order, st.Blocks)
		c.holes.reset(0, 0)
		c.freeBytes = 0
		at := 0
		for _, i := range order {
			b := st.Blocks[i]
			if gap := int(b.Off) - at; gap > 0 {
				c.holes.insert(at, gap)
				c.freeBytes += gap
			}
			at = int(b.Off) + int(b.Size)
		}
		if gap := c.capacity - at; gap > 0 {
			c.holes.insert(at, gap)
			c.freeBytes += gap
		}
		for _, b := range st.Blocks {
			sb := Superblock{ID: base + b.ID, Size: int(b.Size), Links: rebasedLinks(base, b.Links)}
			c.bindMigrated(sb, b.Off)
			c.growList(sb.ID)
			c.pushFront(int32(sb.ID))
		}
		return nil
	}
	for _, b := range st.Blocks {
		off, err := c.Place(int(b.Size))
		if err != nil {
			return fmt.Errorf("core: installing migrated block %d: %w", b.ID, err)
		}
		sb := Superblock{ID: base + b.ID, Size: int(b.Size), Links: rebasedLinks(base, b.Links)}
		c.bindMigrated(sb, off)
		c.growList(sb.ID)
		c.pushFront(int32(sb.ID))
	}
	return nil
}

// lruLayoutAdmissible reports whether the state's extents can be adopted
// verbatim into an arena of the given capacity: in range, non-negative,
// and non-overlapping.
func lruLayoutAdmissible(st *TenantState, capacity int) bool {
	if len(st.Blocks) == 0 {
		return false
	}
	order := make([]int, len(st.Blocks))
	for i := range order {
		order[i] = i
	}
	sortByOff(order, st.Blocks)
	at := int64(0)
	for _, i := range order {
		b := st.Blocks[i]
		if b.Off < at || b.Off+int64(b.Size) > int64(capacity) {
			return false
		}
		at = b.Off + int64(b.Size)
	}
	return true
}

// sortByOff sorts an index slice by the corresponding block offsets
// (insertion sort: migration state is cold path, spans are modest).
func sortByOff(order []int, blocks []MigratedBlock) {
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && blocks[order[j-1]].Off > blocks[order[j]].Off {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
}

// tenantStateMagic identifies the serialized TenantState format.
const tenantStateMagic = "DTS1"

// Encode serializes the state to a compact little-endian byte form, the
// wire format a control plane would ship between shard hosts.
func (st *TenantState) Encode() []byte {
	size := 4 + 4 + 8 + 4
	for _, b := range st.Blocks {
		size += 4 + 4 + 8 + 4 + 4*len(b.Links)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, tenantStateMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Span))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Bytes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Blocks)))
	for _, b := range st.Blocks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Size))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.Off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Links)))
		for _, to := range b.Links {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(to))
		}
	}
	return buf
}

// DecodeTenantState parses a serialized TenantState, validating structure
// (magic, bounds, byte-sum consistency) but not engine-specific
// constraints — InstallSpan re-validates against the destination.
func DecodeTenantState(data []byte) (*TenantState, error) {
	r := byteReader{data: data}
	magic := r.take(4)
	if magic == nil || string(magic) != tenantStateMagic {
		return nil, fmt.Errorf("core: bad tenant state magic")
	}
	span := r.u32()
	bytes := int64(r.u64())
	n := r.u32()
	if r.err {
		return nil, fmt.Errorf("core: truncated tenant state header")
	}
	if uint64(span) > uint64(MaxSuperblockID)+1 {
		return nil, fmt.Errorf("core: tenant state span %d exceeds the ID limit", span)
	}
	if bytes < 0 {
		return nil, fmt.Errorf("core: negative tenant state byte total")
	}
	// Each block needs at least 20 bytes on the wire; reject counts the
	// remaining payload cannot possibly hold before allocating.
	if uint64(n) > uint64(len(r.data)-r.off)/20 {
		return nil, fmt.Errorf("core: tenant state block count %d exceeds payload", n)
	}
	st := &TenantState{Span: SuperblockID(span), Bytes: bytes, Blocks: make([]MigratedBlock, 0, n)}
	var sum int64
	for i := uint32(0); i < n; i++ {
		id := r.u32()
		size := int32(r.u32())
		off := int64(r.u64())
		nl := r.u32()
		if r.err {
			return nil, fmt.Errorf("core: truncated tenant state block %d", i)
		}
		if SuperblockID(id) >= st.Span {
			return nil, fmt.Errorf("core: tenant state block %d outside span %d", id, span)
		}
		if size <= 0 {
			return nil, fmt.Errorf("core: tenant state block %d has non-positive size %d", id, size)
		}
		if off < 0 {
			return nil, fmt.Errorf("core: tenant state block %d has negative offset", id)
		}
		if uint64(nl) > uint64(len(r.data)-r.off)/4 {
			return nil, fmt.Errorf("core: tenant state block %d link count %d exceeds payload", id, nl)
		}
		var links []SuperblockID
		for j := uint32(0); j < nl; j++ {
			// The nl bound above guarantees 4·nl bytes remain, so these
			// reads cannot run out of payload.
			to := r.u32()
			if SuperblockID(to) >= st.Span {
				return nil, fmt.Errorf("core: tenant state block %d links outside span %d", id, span)
			}
			links = append(links, SuperblockID(to))
		}
		st.Blocks = append(st.Blocks, MigratedBlock{ID: SuperblockID(id), Size: size, Off: off, Links: links})
		sum += int64(size)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("core: %d trailing bytes after tenant state", len(r.data)-r.off)
	}
	if sum != st.Bytes {
		return nil, fmt.Errorf("core: tenant state declares %d bytes, blocks sum to %d", st.Bytes, sum)
	}
	return st, nil
}

// byteReader is a minimal bounds-checked little-endian cursor.
type byteReader struct {
	data []byte
	off  int
	err  bool
}

func (r *byteReader) take(n int) []byte {
	if r.err || r.off+n > len(r.data) {
		r.err = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
