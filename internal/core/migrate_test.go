package core

import (
	"encoding/binary"
	"reflect"
	"testing"

	"dynocache/internal/stats"
)

// migEvent is one step of a deterministic synthetic workload.
type migEvent struct {
	id    SuperblockID
	size  int
	links []SuperblockID
}

func migStream(seed uint64, n, idRange int) []migEvent {
	r := stats.NewRand(seed, 5)
	sizes := make(map[SuperblockID]int)
	evs := make([]migEvent, 0, n)
	for i := 0; i < n; i++ {
		id := SuperblockID(r.Intn(idRange))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		var links []SuperblockID
		for j := 0; j < r.Geometric(1.7) && j < 6; j++ {
			links = append(links, SuperblockID(r.Intn(idRange)))
		}
		evs = append(evs, migEvent{id: id, size: size, links: links})
	}
	return evs
}

func driveMig(t *testing.T, c Cache, evs []migEvent) {
	t.Helper()
	for _, ev := range evs {
		if !c.Access(ev.id) {
			if err := c.Insert(Superblock{ID: ev.id, Size: ev.size, Links: ev.links}); err != nil {
				t.Fatalf("%s insert %d: %v", c.Name(), ev.id, err)
			}
		}
	}
}

// sumStats adds two Stats field-wise (all fields are uint64 counters).
func sumStats(a, b Stats) Stats {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	out := reflect.New(reflect.TypeOf(a)).Elem()
	for i := 0; i < va.NumField(); i++ {
		out.Field(i).SetUint(va.Field(i).Uint() + vb.Field(i).Uint())
	}
	return out.Interface().(Stats)
}

// TestFIFOMigrationBitEquality drives the same stream through a solo
// cache and through a chain of caches with the whole span migrated at
// each quarter boundary. Empty destinations adopt the exact geometry, so
// every counter, the residency set, and the queue itself must come out
// bit-identical to the uninterrupted run.
func TestFIFOMigrationBitEquality(t *testing.T) {
	mk := map[string]func() *FIFOCache{
		"flush": func() *FIFOCache { c, _ := NewFlush(1000); return c },
		"units": func() *FIFOCache { c, _ := NewUnits(1000, 8); return c },
		"fine":  func() *FIFOCache { c, _ := NewFine(1000); return c },
	}
	const span = SuperblockID(300)
	evs := migStream(42, 8000, int(span))
	for name, newCache := range mk {
		t.Run(name, func(t *testing.T) {
			solo := newCache()
			driveMig(t, solo, evs)

			var agg Stats
			cur := newCache()
			q := len(evs) / 4
			for hop := 0; hop < 4; hop++ {
				lo, hi := hop*q, (hop+1)*q
				if hop == 3 {
					hi = len(evs)
				}
				driveMig(t, cur, evs[lo:hi])
				if hop == 3 {
					break
				}
				st, err := cur.ExtractSpan(0, span)
				if err != nil {
					t.Fatalf("hop %d extract: %v", hop, err)
				}
				if cur.Resident() != 0 || cur.ResidentBytes() != 0 {
					t.Fatalf("hop %d: source not empty after whole-span extraction", hop)
				}
				if err := cur.CheckInvariants(); err != nil {
					t.Fatalf("hop %d source invariants: %v", hop, err)
				}
				agg = sumStats(agg, *cur.Stats())
				next := newCache()
				if err := next.InstallSpan(0, st); err != nil {
					t.Fatalf("hop %d install: %v", hop, err)
				}
				if err := next.CheckInvariants(); err != nil {
					t.Fatalf("hop %d dest invariants: %v", hop, err)
				}
				cur = next
			}
			agg = sumStats(agg, *cur.Stats())
			if agg != *solo.Stats() {
				t.Fatalf("stats diverged:\n migrated: %+v\n solo:     %+v", agg, *solo.Stats())
			}
			if cur.head != solo.head || cur.tail != solo.tail {
				t.Fatalf("window diverged: [%d,%d) vs solo [%d,%d)", cur.tail, cur.head, solo.tail, solo.head)
			}
			got := cur.queue[cur.qfront:]
			want := solo.queue[solo.qfront:]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("queue diverged: %d entries vs %d", len(got), len(want))
			}
			if cur.PatchedLinks() != solo.PatchedLinks() {
				t.Fatalf("patched links diverged: %d vs %d", cur.PatchedLinks(), solo.PatchedLinks())
			}
		})
	}
}

// TestLRUMigrationBitEquality is the LRU analogue: exact-layout adoption
// must reproduce the recency chain, the hole index, and every counter of
// the uninterrupted run.
func TestLRUMigrationBitEquality(t *testing.T) {
	const span = SuperblockID(300)
	evs := migStream(7, 8000, int(span))
	solo, _ := NewLRU(1000)
	driveMig(t, solo, evs)

	var agg Stats
	cur, _ := NewLRU(1000)
	q := len(evs) / 4
	for hop := 0; hop < 4; hop++ {
		lo, hi := hop*q, (hop+1)*q
		if hop == 3 {
			hi = len(evs)
		}
		driveMig(t, cur, evs[lo:hi])
		if hop == 3 {
			break
		}
		st, err := cur.ExtractSpan(0, span)
		if err != nil {
			t.Fatalf("hop %d extract: %v", hop, err)
		}
		if cur.Resident() != 0 {
			t.Fatalf("hop %d: source not empty after whole-span extraction", hop)
		}
		if err := cur.CheckInvariants(); err != nil {
			t.Fatalf("hop %d source invariants: %v", hop, err)
		}
		agg = sumStats(agg, *cur.Stats())
		next, _ := NewLRU(1000)
		if err := next.InstallSpan(0, st); err != nil {
			t.Fatalf("hop %d install: %v", hop, err)
		}
		if err := next.CheckInvariants(); err != nil {
			t.Fatalf("hop %d dest invariants: %v", hop, err)
		}
		cur = next
	}
	agg = sumStats(agg, *cur.Stats())
	if agg != *solo.Stats() {
		t.Fatalf("stats diverged:\n migrated: %+v\n solo:     %+v", agg, *solo.Stats())
	}
	chain := func(c *LRUCache) []int32 {
		var ids []int32
		for v := c.tail; v != lruNil; v = c.prevID[v] {
			ids = append(ids, v)
		}
		return ids
	}
	if !reflect.DeepEqual(chain(cur), chain(solo)) {
		t.Fatal("recency chain diverged")
	}
	holes := func(c *LRUCache) [][2]int {
		var hs [][2]int
		c.holes.ascend(func(off, size int) {
			hs = append(hs, [2]int{off, size})
		})
		return hs
	}
	if !reflect.DeepEqual(holes(cur), holes(solo)) {
		t.Fatalf("hole index diverged: %v vs %v", holes(cur), holes(solo))
	}
	if cur.freeBytes != solo.freeBytes {
		t.Fatalf("free bytes diverged: %d vs %d", cur.freeBytes, solo.freeBytes)
	}
}

// TestMigrationInterleavedSpans extracts one of two interleaved tenants.
// The survivor must be untouched, the departing span must land intact at
// a different base, and relative eviction order must survive the
// non-contiguous (append) install path.
func TestMigrationInterleavedSpans(t *testing.T) {
	c, _ := NewFine(100000)
	const (
		baseA = SuperblockID(0)
		baseB = SuperblockID(1000)
		span  = SuperblockID(100)
	)
	for i := SuperblockID(0); i < 50; i++ {
		mustInsert(t, c, sb(baseA+i, 20))
		var links []SuperblockID
		if i > 0 {
			links = append(links, baseB+i-1)
		}
		mustInsert(t, c, Superblock{ID: baseB + i, Size: 30, Links: links})
	}
	wantOrder := make([]SuperblockID, 0, 50)
	for i := c.qfront; i < len(c.queue); i++ {
		if id := c.queue[i].id; id >= baseB {
			wantOrder = append(wantOrder, id-baseB)
		}
	}
	st, err := c.ExtractSpan(baseB, span)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Blocks) != 50 || st.Bytes != 50*30 {
		t.Fatalf("state = %d blocks / %d bytes", len(st.Blocks), st.Bytes)
	}
	for i, b := range st.Blocks {
		if b.ID != wantOrder[i] {
			t.Fatalf("eviction order not preserved at %d: got %d want %d", i, b.ID, wantOrder[i])
		}
	}
	if st.Contiguous() {
		t.Fatal("interleaved extraction cannot be contiguous")
	}
	for i := SuperblockID(0); i < 50; i++ {
		if !c.Contains(baseA + i) {
			t.Fatalf("survivor block %d lost", baseA+i)
		}
		if c.Contains(baseB + i) {
			t.Fatalf("extracted block %d still resident", baseB+i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("source invariants after extraction: %v", err)
	}

	// Install at a different base into a non-empty destination.
	dst, _ := NewFine(100000)
	mustInsert(t, dst, sb(5000, 40))
	if err := dst.InstallSpan(200, st); err != nil {
		t.Fatal(err)
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if dst.Stats().InsertedBlocks != 1 {
		t.Fatalf("installation must not count as insertion: %+v", *dst.Stats())
	}
	var gotOrder []SuperblockID
	for i := dst.qfront; i < len(dst.queue); i++ {
		if id := dst.queue[i].id; id >= 200 && id < 200+span {
			gotOrder = append(gotOrder, id-200)
		}
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatal("relative eviction order not preserved across append-path install")
	}
	// Intra-span links travelled: 49 chained links, all patched.
	if got := dst.PatchedLinks(); got != 49 {
		t.Fatalf("patched links after install = %d, want 49", got)
	}
}

// TestCrossSpanLinkSevering checks Eq. 4 accounting at the span boundary:
// patched links from survivors into the departing span are unpatched one
// by one (InterUnitLinksRemoved + one UnlinkEvent per departing target),
// the departing side's own cross-span links die free, pending
// declarations sever silently, and the vacated ID range is safe to reuse.
func TestCrossSpanLinkSevering(t *testing.T) {
	c, _ := NewFine(10000)
	// Span A = [0,100), span B = [100,200).
	mustInsert(t, c, Superblock{ID: 10, Size: 20, Links: []SuperblockID{110, 150}}) // 110 patched later, 150 stays pending
	mustInsert(t, c, Superblock{ID: 110, Size: 20})
	mustInsert(t, c, Superblock{ID: 111, Size: 20, Links: []SuperblockID{10, 110}}) // one cross, one intra
	if got := c.PatchedLinks(); got != 3 {
		t.Fatalf("patched before = %d, want 3 (10→110, 111→10, 111→110)", got)
	}
	before := *c.Stats()

	st, err := c.ExtractSpan(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	after := *c.Stats()
	if after.EvictionInvocations != before.EvictionInvocations ||
		after.BlocksEvicted != before.BlocksEvicted ||
		after.BytesEvicted != before.BytesEvicted ||
		after.FullFlushes != before.FullFlushes {
		t.Fatalf("extraction charged eviction counters: %+v", after)
	}
	if after.InterUnitLinksRemoved-before.InterUnitLinksRemoved != 1 {
		t.Fatalf("InterUnitLinksRemoved delta = %d, want 1 (10→110)", after.InterUnitLinksRemoved-before.InterUnitLinksRemoved)
	}
	if after.UnlinkEvents-before.UnlinkEvents != 1 {
		t.Fatalf("UnlinkEvents delta = %d, want 1 (block 110 had one inbound survivor link)", after.UnlinkEvents-before.UnlinkEvents)
	}
	if after.IntraUnitLinksFlushed != before.IntraUnitLinksFlushed {
		t.Fatal("relocation must not flush intra-unit links")
	}
	if got := c.PatchedLinks(); got != 0 {
		t.Fatalf("patched after extraction = %d, want 0", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The state carries only the intra-span edge 111→110, span-relative.
	if len(st.Blocks) != 2 || st.Blocks[0].ID != 10 || st.Blocks[1].ID != 11 {
		t.Fatalf("state blocks = %+v", st.Blocks)
	}
	if len(st.Blocks[0].Links) != 0 || !reflect.DeepEqual(st.Blocks[1].Links, []SuperblockID{10}) {
		t.Fatalf("state links = %v / %v", st.Blocks[0].Links, st.Blocks[1].Links)
	}

	// Reusing the vacated range must not resurrect severed declarations:
	// fresh 110/150 arrive and nothing re-patches 10's old links.
	mustInsert(t, c, Superblock{ID: 110, Size: 10}, Superblock{ID: 150, Size: 10})
	if got := c.PatchedLinks(); got != 0 {
		t.Fatalf("stale declarations re-patched on ID reuse: %d", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The travelled intra-span link patches again at the new home.
	dst, _ := NewFine(10000)
	if err := dst.InstallSpan(300, st); err != nil {
		t.Fatal(err)
	}
	if got := dst.PatchedLinks(); got != 1 {
		t.Fatalf("patched at destination = %d, want 1 (311→310)", got)
	}
	if dst.Stats().InsertedBlocks != 0 || dst.Stats().InsertedBytes != 0 {
		t.Fatal("installation must not count as insertion")
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInstallEvictsForRoom: a full destination makes room with REAL
// evictions, charged to the destination's stats.
func TestInstallEvictsForRoom(t *testing.T) {
	src, _ := NewFine(100)
	mustInsert(t, src, sb(0, 40), sb(1, 40))
	st, err := src.ExtractSpan(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := NewFine(100)
	mustInsert(t, dst, sb(500, 50), sb(501, 40))
	if err := dst.InstallSpan(0, st); err != nil {
		t.Fatal(err)
	}
	s := dst.Stats()
	if s.EvictionInvocations == 0 || s.BlocksEvicted == 0 {
		t.Fatalf("room-making must be a real eviction: %+v", *s)
	}
	if !dst.Contains(0) || !dst.Contains(1) {
		t.Fatal("migrated blocks not resident")
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractSpanValidation(t *testing.T) {
	c, _ := NewFine(100)
	if _, err := c.ExtractSpan(0, 0); err == nil {
		t.Error("empty span should fail")
	}
	if _, err := c.ExtractSpan(MaxSuperblockID, 2); err == nil {
		t.Error("span past the ID limit should fail")
	}
	c.FreezeLinks([]Superblock{{ID: 1, Size: 10}}, false)
	if _, err := c.ExtractSpan(0, 10); err == nil {
		t.Error("frozen link table should reject extraction")
	}
}

func TestInstallSpanValidation(t *testing.T) {
	mk := func() *TenantState {
		return &TenantState{Span: 10, Bytes: 40, Blocks: []MigratedBlock{
			{ID: 1, Size: 20, Off: 0},
			{ID: 2, Size: 20, Off: 20},
		}}
	}
	// The resident stranger sits OUTSIDE the install span, so each case
	// below reaches its own targeted validation branch rather than the
	// span-vacancy scan.
	dst, _ := NewFine(100)
	mustInsert(t, dst, sb(200, 10))
	before := *dst.Stats()

	cases := map[string]*TenantState{
		"nil state":     nil,
		"out of span":   func() *TenantState { s := mk(); s.Blocks[1].ID = 10; return s }(),
		"duplicate":     func() *TenantState { s := mk(); s.Blocks[1].ID = 1; return s }(),
		"bad size":      func() *TenantState { s := mk(); s.Blocks[0].Size = 0; s.Bytes = 20; return s }(),
		"oversized":     func() *TenantState { s := mk(); s.Blocks[0].Size = 200; s.Bytes = 220; return s }(),
		"byte mismatch": func() *TenantState { s := mk(); s.Bytes = 41; return s }(),
		"link oob":      func() *TenantState { s := mk(); s.Blocks[0].Links = []SuperblockID{10}; return s }(),
	}
	for name, st := range cases {
		if err := dst.InstallSpan(100, st); err == nil {
			t.Errorf("%s: install should fail", name)
		}
	}
	// Stranger inside the target span trips the vacancy scan; a bad span
	// fails before any block is examined.
	if err := dst.InstallSpan(195, mk()); err == nil {
		t.Error("resident stranger inside the span should fail install")
	}
	if err := dst.InstallSpan(MaxSuperblockID-5, mk()); err == nil {
		t.Error("span past the ID limit should fail install")
	}
	if *dst.Stats() != before || dst.Resident() != 1 {
		t.Fatal("failed install must leave the destination untouched")
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	lru, _ := NewLRU(100)
	if err := lru.InstallSpan(0, mk().withBytes(41)); err == nil {
		t.Error("LRU install must validate too")
	}
}

// withBytes mutates the declared byte total (test helper for building
// invalid states).
func (st *TenantState) withBytes(b int64) *TenantState {
	st.Bytes = b
	return st
}

// TestInstallSpanEdgeGeometry covers the adoption edge cases: an empty
// state installs as a no-op on both families, a vacant-span extract
// returns an empty state without disturbing the queue, and an
// inadmissible (overlapping-extent) LRU layout falls back to first-fit
// placement instead of verbatim adoption.
func TestInstallSpanEdgeGeometry(t *testing.T) {
	empty := &TenantState{Span: 10}
	if empty.Contiguous() {
		t.Error("empty state must not be contiguous")
	}
	f, _ := NewFine(100)
	if err := f.InstallSpan(0, empty); err != nil {
		t.Fatalf("empty install (FIFO): %v", err)
	}
	if f.Resident() != 0 {
		t.Fatal("empty install must not create residents")
	}
	mustInsert(t, f, sb(1, 10))
	st, err := f.ExtractSpan(50, 10)
	if err != nil || len(st.Blocks) != 0 {
		t.Fatalf("vacant-span extract: %v, %d blocks", err, len(st.Blocks))
	}
	if f.Resident() != 1 {
		t.Fatal("vacant-span extract must not disturb residents")
	}

	l, _ := NewLRU(100)
	if err := l.InstallSpan(0, empty); err != nil {
		t.Fatalf("empty install (LRU): %v", err)
	}
	if _, err := l.ExtractSpan(0, 0); err == nil {
		t.Error("LRU empty span should fail extraction")
	}
	// Overlapping extents are individually valid but not adoptable as a
	// layout; the blocks must land via first-fit placement instead.
	overlap := &TenantState{Span: 10, Bytes: 40, Blocks: []MigratedBlock{
		{ID: 1, Size: 20, Off: 0},
		{ID: 2, Size: 20, Off: 10},
	}}
	if err := l.InstallSpan(0, overlap); err != nil {
		t.Fatalf("overlapping-extent install must fall back to placement: %v", err)
	}
	if l.Resident() != 2 || !l.Access(1) || !l.Access(2) {
		t.Fatal("fallback placement lost blocks")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A populated destination always places rather than adopts.
	l2, _ := NewLRU(100)
	mustInsert(t, l2, sb(50, 10))
	good := &TenantState{Span: 10, Bytes: 40, Blocks: []MigratedBlock{
		{ID: 1, Size: 20, Off: 0},
		{ID: 2, Size: 20, Off: 20},
	}}
	if err := l2.InstallSpan(0, good); err != nil {
		t.Fatalf("install into populated LRU: %v", err)
	}
	if l2.Resident() != 3 {
		t.Fatalf("resident = %d, want 3", l2.Resident())
	}
	if err := l2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBindMigratedLinkEdgeCases exercises the silent link-rebuild paths:
// duplicate carried links collapse, self-links patch through their own
// declaration, and extraction tolerates dead link sources.
func TestBindMigratedLinkEdgeCases(t *testing.T) {
	dst, _ := NewFine(200)
	st := &TenantState{Span: 10, Bytes: 40, Blocks: []MigratedBlock{
		{ID: 1, Size: 20, Off: 0, Links: []SuperblockID{2, 2, 1}}, // dup + self
		{ID: 2, Size: 20, Off: 20, Links: []SuperblockID{1}},
	}}
	if err := dst.InstallSpan(0, st); err != nil {
		t.Fatal(err)
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if removeEdge(&[]SuperblockID{1, 2}, 3) {
		t.Error("removeEdge of a missing edge must report false")
	}

	// Dead-source severing: block 20 links into the span, then is
	// evicted by pressure before the span departs. onExtract must skip
	// the dead source without miscounting unlink events.
	c, _ := NewFine(100)
	mustInsert(t, c, Superblock{ID: 0, Size: 40})
	mustInsert(t, c, Superblock{ID: 20, Size: 40, Links: []SuperblockID{0}})
	mustInsert(t, c, Superblock{ID: 21, Size: 80}) // evicts 0 and 20
	if c.Contains(20) {
		t.Fatal("setup: block 20 should have been evicted")
	}
	before := c.Stats().InterUnitLinksRemoved
	if _, err := c.ExtractSpan(0, 10); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().InterUnitLinksRemoved - before; got != 0 {
		t.Fatalf("dead-source extract charged %d unlinks, want 0", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantStateCodecRoundTrip(t *testing.T) {
	c, _ := NewFine(1000)
	driveMig(t, c, migStream(3, 2000, 200))
	st, err := c.ExtractSpan(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	data := st.Encode()
	got, err := DecodeTenantState(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("decode(encode(state)) != state")
	}
	// Corruption at every byte must fail decode or stay structurally valid.
	if _, err := DecodeTenantState(data[:len(data)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
	if _, err := DecodeTenantState(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// TestDecodeTenantStateMalformed walks every structural rejection of the
// wire decoder with hand-built payloads.
func TestDecodeTenantStateMalformed(t *testing.T) {
	u32 := func(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }
	header := func(span uint32, bytes uint64, n uint32) []byte {
		return u32(u64(u32([]byte(tenantStateMagic), span), bytes), n)
	}
	block := func(buf []byte, id, size uint32, off uint64, links ...uint32) []byte {
		buf = u64(u32(u32(buf, id), size), off)
		buf = u32(buf, uint32(len(links)))
		for _, l := range links {
			buf = u32(buf, l)
		}
		return buf
	}
	cases := map[string][]byte{
		"bad magic":        []byte("XXXX0000000000000000"),
		"truncated header": []byte(tenantStateMagic)[:4],
		"span over limit":  header(^uint32(0), 0, 0),
		"negative bytes":   header(10, 1<<63, 0),
		"count > payload":  header(10, 0, 1000),
		"id out of span":   block(header(10, 20, 1), 10, 20, 0),
		"zero size":        block(header(10, 0, 1), 1, 0, 0),
		"negative size":    block(header(10, 0, 1), 1, 1<<31, 0),
		"negative offset":  block(header(10, 20, 1), 1, 20, 1<<63),
		"links > payload":  u32(u64(u32(u32(header(10, 20, 1), 1), 20), 0), 1000),
		"link out of span": block(header(10, 20, 1), 1, 20, 0, 10),
		"truncated block":  block(header(10, 40, 2), 1, 20, 0, 2, 3, 4, 5, 6),
		"sum mismatch":     block(header(10, 21, 1), 1, 20, 0),
	}
	for name, data := range cases {
		if _, err := DecodeTenantState(data); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

func FuzzTenantStateCodec(f *testing.F) {
	c, _ := NewFine(1000)
	for _, ev := range migStream(11, 500, 64) {
		if !c.Access(ev.id) {
			c.Insert(Superblock{ID: ev.id, Size: ev.size, Links: ev.links})
		}
	}
	if st, err := c.ExtractSpan(0, 64); err == nil {
		f.Add(st.Encode())
	}
	f.Add([]byte(tenantStateMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeTenantState(data)
		if err != nil {
			return
		}
		again, err := DecodeTenantState(st.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded state failed: %v", err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatal("decode∘encode not idempotent")
		}
	})
}
