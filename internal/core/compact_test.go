package core

import "testing"

func TestCompactingLRUBasics(t *testing.T) {
	c, err := NewCompactingLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompactingLRU(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if c.Name() != "compacting-LRU" {
		t.Fatalf("name = %q", c.Name())
	}
	mustInsert(t, c, sb(1, 40), sb(2, 40))
	if !c.Access(1) {
		t.Fatal("hit expected")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionInsteadOfFragEviction(t *testing.T) {
	// Build the fragmentation scenario from the plain-LRU test: alternate
	// recency so evicting the LRU block leaves scattered holes, then ask
	// for a block that only fits after defragmentation.
	c, _ := NewCompactingLRU(100)
	for i := 1; i <= 10; i++ {
		mustInsert(t, c, sb(SuperblockID(i), 10))
	}
	for i := 1; i <= 9; i += 2 {
		c.Access(SuperblockID(i))
	}
	// Evict one block (block 2, the LRU) by normal means: insert a
	// 10-byte block... the cache is full, so this evicts exactly one.
	mustInsert(t, c, sb(11, 10))
	// Now free space is zero again; evict two more via a 20-byte insert.
	// Plain LRU would evict extra blocks due to fragmentation; the
	// compactor must instead compact once aggregate space suffices.
	mustInsert(t, c, sb(12, 20))
	if c.Compactions == 0 {
		t.Fatalf("expected a compaction, got none (FragEvictions=%d)", c.FragEvictions)
	}
	if c.FragEvictions != 0 {
		t.Fatalf("compaction should eliminate fragmentation evictions, got %d", c.FragEvictions)
	}
	if c.BytesMoved == 0 {
		t.Fatal("compaction moved nothing")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionRepatchesLinks(t *testing.T) {
	// Layout: A(0..30) B(30..60) C(60..90), 10 bytes tail free, with the
	// link C -> A. Evicting B leaves two non-adjacent holes totalling 40;
	// a 40-byte request then forces compaction, which slides C (a link
	// endpoint) down.
	c, _ := NewCompactingLRU(100)
	mustInsert(t, c, sb(1, 30), sb(2, 30), sb(3, 30, 1)) // 3 -> 1
	c.Access(1)
	c.Access(3) // LRU order: 2 (victim), 1, 3
	mustInsert(t, c, sb(4, 40))
	if c.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", c.Compactions)
	}
	if c.BytesMoved != 30 {
		t.Fatalf("BytesMoved = %d, want 30 (block 3 slid down)", c.BytesMoved)
	}
	if c.LinksRepatched != 1 {
		t.Fatalf("LinksRepatched = %d, want 1 (the 3->1 link)", c.LinksRepatched)
	}
	if c.FragEvictions != 0 {
		t.Fatalf("FragEvictions = %d, want 0", c.FragEvictions)
	}
	for _, id := range []SuperblockID{1, 3, 4} {
		if !c.Contains(id) {
			t.Fatalf("block %d should have survived", id)
		}
	}
	if c.Contains(2) {
		t.Fatal("block 2 should have been evicted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.CompactionOverhead(1, 296.5) != 30+296.5 {
		t.Fatalf("CompactionOverhead = %g", c.CompactionOverhead(1, 296.5))
	}
}

func TestCompactingLRUUnderChurn(t *testing.T) {
	c, _ := NewCompactingLRU(2000)
	r := newTestRand()
	sizes := map[SuperblockID]int{}
	for step := 0; step < 20000; step++ {
		id := SuperblockID(r.Intn(200))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(150)
			sizes[id] = size
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size, Links: []SuperblockID{SuperblockID(r.Intn(200))}}); err != nil {
				t.Fatal(err)
			}
		}
		if step%5000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The compactor eliminates fragmentation-forced evictions whenever
	// aggregate space suffices.
	if c.FragEvictions != 0 {
		t.Fatalf("FragEvictions = %d with compaction enabled", c.FragEvictions)
	}
	if c.Compactions == 0 {
		t.Fatal("churny variable-size workload should have compacted")
	}
	// And the paper's objection stands: compaction forces link rewrites.
	if c.LinksRepatched == 0 {
		t.Fatal("compactions should have repatched links")
	}
}
