package core

import "fmt"

// GenerationalCache separates superblocks by observed lifetime, after
// Hazelwood & Smith's generational cache management (reference [15] in the
// paper, MICRO 2003): a small nursery absorbs the many short-lived regions
// cheaply with fine-grained FIFO eviction, while regions that prove
// themselves hot are copied into a tenured cache managed with
// medium-grained unit flushes.
//
// Links are maintained within each generation; a promotion re-declares the
// block's links in the tenured cache (the copy gets fresh exit stubs, as a
// real system would emit).
type GenerationalCache struct {
	name    string
	nursery *FIFOCache
	tenured *FIFOCache

	// hitCounts tracks nursery hits per block to decide promotion,
	// indexed by dense SuperblockID.
	hitCounts []int32
	threshold int

	// blockMeta remembers size and links for promotion-time re-insertion,
	// indexed by dense SuperblockID; Size == 0 means never seen.
	blockMeta []Superblock

	stats      Stats // access-level stats; structural stats come from sub-caches
	aggregated Stats // scratch for Stats() aggregation

	// Promotions counts blocks copied from nursery to tenured.
	Promotions uint64
}

var _ Cache = (*GenerationalCache)(nil)

// NewGenerational creates a generational cache. nurseryFrac is the
// fraction of capacity given to the nursery (e.g. 0.25); tenuredUnits the
// unit count of the tenured cache; threshold the nursery hit count that
// triggers promotion.
func NewGenerational(capacity int, nurseryFrac float64, tenuredUnits, threshold int) (*GenerationalCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	if nurseryFrac <= 0 || nurseryFrac >= 1 {
		return nil, fmt.Errorf("core: nursery fraction %g outside (0, 1)", nurseryFrac)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("core: promotion threshold must be >= 1, got %d", threshold)
	}
	nurseryCap := int(float64(capacity) * nurseryFrac)
	if nurseryCap < 1 {
		nurseryCap = 1
	}
	nursery, err := NewFine(nurseryCap)
	if err != nil {
		return nil, err
	}
	var tenured *FIFOCache
	if tenuredUnits <= 1 {
		tenured, err = NewFlush(capacity - nurseryCap)
	} else {
		tenured, err = NewUnits(capacity-nurseryCap, tenuredUnits)
	}
	if err != nil {
		return nil, err
	}
	return &GenerationalCache{
		name:      fmt.Sprintf("generational(%d%%/%d-unit)", int(nurseryFrac*100), tenuredUnits),
		nursery:   nursery,
		tenured:   tenured,
		threshold: threshold,
	}, nil
}

// Name implements Cache.
func (c *GenerationalCache) Name() string { return c.name }

// Capacity implements Cache.
func (c *GenerationalCache) Capacity() int { return c.nursery.Capacity() + c.tenured.Capacity() }

// Units implements Cache: reported as the tenured generation's units.
func (c *GenerationalCache) Units() int { return c.tenured.Units() }

// Nursery exposes the young generation for inspection.
func (c *GenerationalCache) Nursery() *FIFOCache { return c.nursery }

// Tenured exposes the old generation for inspection.
func (c *GenerationalCache) Tenured() *FIFOCache { return c.tenured }

// grow extends the dense per-block tables to cover id.
func (c *GenerationalCache) grow(id SuperblockID) {
	if int(id) < len(c.blockMeta) {
		return
	}
	n := int(id) + 1
	if n < 2*len(c.blockMeta) {
		n = 2 * len(c.blockMeta)
	}
	meta := make([]Superblock, n)
	copy(meta, c.blockMeta)
	c.blockMeta = meta
	hits := make([]int32, n)
	copy(hits, c.hitCounts)
	c.hitCounts = hits
}

// PromotionThreshold returns the nursery hit count that triggers
// promotion (used by the verification oracle to mirror the policy).
func (c *GenerationalCache) PromotionThreshold() int { return c.threshold }

// Reserve pre-sizes the promotion tables and both generations' dense
// tables for IDs in [0, maxID].
func (c *GenerationalCache) Reserve(maxID SuperblockID) {
	c.grow(maxID)
	c.nursery.Reserve(maxID)
	c.tenured.Reserve(maxID)
}

// FreezeLinks freezes link adjacency in both generations; see
// Engine.FreezeLinks for the contract. Promotion re-inserts the recorded
// block metadata verbatim, which is exactly the frozen row.
func (c *GenerationalCache) FreezeLinks(blocks []Superblock, chainingDisabled bool) {
	c.nursery.FreezeLinks(blocks, chainingDisabled)
	c.tenured.FreezeLinks(blocks, chainingDisabled)
}

// FreezeLinksShared freezes both generations over one prebuilt, shared
// adjacency; see Engine.FreezeLinksShared.
func (c *GenerationalCache) FreezeLinksShared(fa *FrozenAdjacency) {
	c.nursery.FreezeLinksShared(fa)
	c.tenured.FreezeLinksShared(fa)
}

// SetLazyPatchedCount defers patched-link counting in both generations;
// see Engine.SetLazyPatchedCount for when this is safe.
func (c *GenerationalCache) SetLazyPatchedCount(on bool) {
	c.nursery.SetLazyPatchedCount(on)
	c.tenured.SetLazyPatchedCount(on)
}

// PatchedLinks returns the number of currently patched chaining links
// across both generations.
func (c *GenerationalCache) PatchedLinks() int {
	return c.nursery.PatchedLinks() + c.tenured.PatchedLinks()
}

// Contains implements Cache.
func (c *GenerationalCache) Contains(id SuperblockID) bool {
	return c.tenured.Contains(id) || c.nursery.Contains(id)
}

// HitFast is the replay kernel's access path: the policy side of Access
// (promotion bookkeeping) without the wrapper's access counters, which
// the kernel folds in batches via BatchAccessStats.
func (c *GenerationalCache) HitFast(id SuperblockID) bool {
	if c.tenured.Contains(id) {
		return true
	}
	if c.nursery.Contains(id) {
		c.hitCounts[id]++
		if int(c.hitCounts[id]) >= c.threshold {
			c.promote(id)
		}
		return true
	}
	return false
}

// BatchAccessStats folds a batch of access outcomes into the wrapper's
// counters: accesses total probes, hits of which hit.
func (c *GenerationalCache) BatchAccessStats(accesses, hits uint64) {
	c.stats.Accesses += accesses
	c.stats.Hits += hits
	c.stats.Misses += accesses - hits
}

// Access implements Cache. A nursery hit may promote the block.
func (c *GenerationalCache) Access(id SuperblockID) bool {
	c.stats.Accesses++
	if c.HitFast(id) {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// promote copies a proven-hot block into the tenured generation. The
// nursery copy is abandoned in place (it ages out with the FIFO), exactly
// as a copying promotion leaves dead code behind.
func (c *GenerationalCache) promote(id SuperblockID) {
	if int(id) >= len(c.blockMeta) {
		return
	}
	sb := c.blockMeta[id]
	if sb.Size == 0 || c.tenured.Contains(id) {
		return
	}
	if sb.Size > c.tenured.Capacity() {
		return // cannot ever tenure; keep serving from the nursery
	}
	if err := c.tenured.Insert(sb); err != nil {
		return // defensive: promotion failure just defers tenure
	}
	c.Promotions++
}

// Insert implements Cache: new blocks always enter the nursery.
func (c *GenerationalCache) Insert(sb Superblock) error {
	if err := validateID(sb.ID); err != nil {
		return err
	}
	if sb.Size > c.nursery.Capacity() {
		// Too big for the nursery: insert directly into tenured space,
		// the way jumbo allocations bypass young generations.
		if err := c.tenured.Insert(sb); err != nil {
			return err
		}
		c.grow(sb.ID)
		c.blockMeta[sb.ID] = sb
		c.stats.InsertedBlocks++
		c.stats.InsertedBytes += uint64(sb.Size)
		return nil
	}
	if c.Contains(sb.ID) {
		return fmt.Errorf("core: superblock %d is already resident", sb.ID)
	}
	if err := c.nursery.Insert(sb); err != nil {
		return err
	}
	c.grow(sb.ID)
	c.blockMeta[sb.ID] = sb
	c.hitCounts[sb.ID] = 0
	c.stats.InsertedBlocks++
	c.stats.InsertedBytes += uint64(sb.Size)
	return nil
}

// AddLink implements Cache, routing the link to whichever generation holds
// the source.
func (c *GenerationalCache) AddLink(from, to SuperblockID) error {
	switch {
	case c.tenured.Contains(from):
		return c.tenured.AddLink(from, to)
	case c.nursery.Contains(from):
		return c.nursery.AddLink(from, to)
	default:
		return fmt.Errorf("core: AddLink from non-resident superblock %d", from)
	}
}

// Resident implements Cache. Blocks present in both generations (promoted,
// nursery copy not yet aged out) are counted once.
func (c *GenerationalCache) Resident() int {
	n := c.tenured.Resident()
	for _, e := range c.nursery.queue[c.nursery.qfront:] {
		if !c.tenured.Contains(e.id) {
			n++
		}
	}
	return n
}

// ResidentBytes implements Cache (double-counting promoted blocks' dead
// nursery copies, which genuinely occupy space).
func (c *GenerationalCache) ResidentBytes() int {
	return c.nursery.ResidentBytes() + c.tenured.ResidentBytes()
}

// LinkCensus implements Cache by summing the generations.
func (c *GenerationalCache) LinkCensus() (intra, inter int) {
	i1, e1 := c.nursery.LinkCensus()
	i2, e2 := c.tenured.LinkCensus()
	return i1 + i2, e1 + e2
}

// BackPtrTableBytes implements Cache.
func (c *GenerationalCache) BackPtrTableBytes() int {
	return c.nursery.BackPtrTableBytes() + c.tenured.BackPtrTableBytes()
}

// Flush implements Cache.
func (c *GenerationalCache) Flush() {
	c.nursery.Flush()
	c.tenured.Flush()
	for i := range c.hitCounts {
		c.hitCounts[i] = 0
	}
}

// CheckInvariants validates both generations and the promotion tables; it
// is exported for the verification layer and returns the first violation.
func (c *GenerationalCache) CheckInvariants() error {
	if err := c.nursery.CheckInvariants(); err != nil {
		return fmt.Errorf("core: generational nursery: %w", err)
	}
	if err := c.tenured.CheckInvariants(); err != nil {
		return fmt.Errorf("core: generational tenured: %w", err)
	}
	for _, e := range c.nursery.queue[c.nursery.qfront:] {
		if int(e.id) >= len(c.blockMeta) || c.blockMeta[e.id].Size == 0 {
			return fmt.Errorf("core: generational: resident block %d has no recorded metadata", e.id)
		}
	}
	return nil
}

// Stats implements Cache: access counters are the wrapper's; structural
// counters (insertions, evictions, links) are summed from the generations
// on every call.
func (c *GenerationalCache) Stats() *Stats {
	n, t := c.nursery.Stats(), c.tenured.Stats()
	agg := c.stats // copies access-level counters and insertion counters
	agg.EvictionInvocations = n.EvictionInvocations + t.EvictionInvocations
	agg.BlocksEvicted = n.BlocksEvicted + t.BlocksEvicted
	agg.BytesEvicted = n.BytesEvicted + t.BytesEvicted
	agg.FullFlushes = n.FullFlushes + t.FullFlushes
	agg.LinksPatched = n.LinksPatched + t.LinksPatched
	agg.PendingRelinks = n.PendingRelinks + t.PendingRelinks
	agg.UnlinkEvents = n.UnlinkEvents + t.UnlinkEvents
	agg.InterUnitLinksRemoved = n.InterUnitLinksRemoved + t.InterUnitLinksRemoved
	agg.IntraUnitLinksFlushed = n.IntraUnitLinksFlushed + t.IntraUnitLinksFlushed
	c.aggregated = agg
	return &c.aggregated
}
