package core

import "fmt"

// linkTable implements superblock chaining (Section 3.1).
//
// For each resident block it tracks the subset of declared links actually
// *patched* into cached code (target resident at declaration time, or
// resolved later when the target arrived), and a back-pointer table mapping
// each block to the sources patched to jump to it.
//
// A declared link whose target is absent waits in the pending table; when
// the target is (re)inserted, the link is patched and counted as a
// relink — this models DynamoRIO re-chaining through exit stubs after a
// regeneration.
//
// Layout: the table is indexed by dense SuperblockIDs. Every frontend in
// this repository (the DBT, the workload synthesizer, the interleaver)
// assigns IDs densely from 0, so a flat []linkRecord replaces the four
// map[SuperblockID]set tables the reference implementation uses (see
// mapLinkTable in links_oracle_test.go). Each record holds small unordered
// ID slices that are truncated — never freed — on eviction, so the table
// stops allocating once the workload's link population has been seen: the
// steady-state eviction path performs zero heap allocations.
type linkRecord struct {
	// patched lists the targets this block currently jumps to.
	patched []SuperblockID
	// backPtrs lists the sources patched to jump to this block — the
	// back-pointer table whose memory cost Section 5.1 estimates at 16
	// bytes per link.
	backPtrs []SuperblockID
	// pendIn lists the resident sources with a declared but unpatched link
	// to this (absent) block.
	pendIn []SuperblockID
	// pendOut lists the absent targets this block has pending links to;
	// it mirrors pendIn so eviction can scrub a block's pending
	// declarations without scanning every record.
	pendOut []SuperblockID
}

type linkTable struct {
	recs []linkRecord

	patchedCount int

	// marks[id] == epoch means id belongs to the eviction set currently
	// being processed; bumping epoch clears the whole set in O(1).
	marks []uint32
	epoch uint32
}

func newLinkTable() *linkTable {
	return &linkTable{}
}

// grow extends the dense tables to cover id.
func (lt *linkTable) grow(id SuperblockID) {
	if int(id) < len(lt.recs) {
		return
	}
	n := int(id) + 1
	if n < 2*len(lt.recs) {
		n = 2 * len(lt.recs)
	}
	recs := make([]linkRecord, n)
	copy(recs, lt.recs)
	lt.recs = recs
	marks := make([]uint32, n)
	copy(marks, lt.marks)
	lt.marks = marks
}

// contains reports membership in an unordered ID set slice.
func contains(set []SuperblockID, id SuperblockID) bool {
	for _, x := range set {
		if x == id {
			return true
		}
	}
	return false
}

// remove deletes id from an unordered set slice by swap-with-last.
func remove(set []SuperblockID, id SuperblockID) []SuperblockID {
	for i, x := range set {
		if x == id {
			set[i] = set[len(set)-1]
			return set[:len(set)-1]
		}
	}
	return set
}

// markEvicted stamps the eviction set for O(1) membership tests.
func (lt *linkTable) markEvicted(ids []SuperblockID) {
	lt.epoch++
	for _, id := range ids {
		lt.grow(id)
		lt.marks[id] = lt.epoch
	}
}

func (lt *linkTable) evicted(id SuperblockID) bool {
	return int(id) < len(lt.marks) && lt.marks[id] == lt.epoch
}

// patch records from->to as patched.
func (lt *linkTable) patch(from, to SuperblockID) {
	if from > to {
		lt.grow(from)
	} else {
		lt.grow(to)
	}
	f := &lt.recs[from]
	if contains(f.patched, to) {
		return
	}
	f.patched = append(f.patched, to)
	lt.recs[to].backPtrs = append(lt.recs[to].backPtrs, from)
	lt.patchedCount++
}

func (lt *linkTable) addPending(from, to SuperblockID) {
	if from > to {
		lt.grow(from)
	} else {
		lt.grow(to)
	}
	t := &lt.recs[to]
	if contains(t.pendIn, from) {
		return
	}
	t.pendIn = append(t.pendIn, from)
	lt.recs[from].pendOut = append(lt.recs[from].pendOut, to)
}

// declare records a link from a resident block and patches it when the
// target is resident. resident reports residency; stats receives patch
// counters.
func (lt *linkTable) declare(from, to SuperblockID, resident func(SuperblockID) bool, stats *Stats) {
	if resident(to) {
		lt.patch(from, to)
		stats.LinksPatched++
	} else {
		lt.addPending(from, to)
	}
}

// onInsert resolves pending links targeting the newly inserted block.
func (lt *linkTable) onInsert(id SuperblockID, stats *Stats) {
	if int(id) >= len(lt.recs) {
		return
	}
	waiting := lt.recs[id].pendIn
	if len(waiting) == 0 {
		return
	}
	for _, from := range waiting {
		lt.recs[from].pendOut = remove(lt.recs[from].pendOut, id)
		lt.patch(from, id)
		stats.LinksPatched++
		stats.PendingRelinks++
	}
	lt.recs[id].pendIn = lt.recs[id].pendIn[:0]
}

// onEvict processes the eviction of a set of blocks in one invocation.
// Links whose source is also being evicted die with the region for free;
// links from surviving blocks must be unpatched one at a time, which is
// what Equation 4 charges for. Unpatched (pending-style) re-links are
// reinstated so the source re-chains if the target is regenerated.
//
// The classification only matters for the intra/inter split in stats: by
// construction every costed unlink crosses a unit boundary (the source
// survives the flushed region).
func (lt *linkTable) onEvict(ids []SuperblockID, stats *Stats, samples *EvictionSample) {
	lt.markEvicted(ids)
	for _, id := range ids {
		// Inbound patched links.
		rec := &lt.recs[id]
		for _, from := range rec.backPtrs {
			if lt.evicted(from) {
				stats.IntraUnitLinksFlushed++
				continue
			}
			// Surviving source: unpatch, charge, and let it re-chain later.
			lt.recs[from].patched = remove(lt.recs[from].patched, id)
			lt.patchedCount--
			stats.InterUnitLinksRemoved++
			if samples != nil {
				samples.LinksRemoved++
			}
			lt.addPending(from, id)
		}
		rec.backPtrs = rec.backPtrs[:0]
	}
	// Outbound bookkeeping for each evicted block: scrub its patched links
	// from targets' back-pointer sets and drop its pending declarations.
	for _, id := range ids {
		rec := &lt.recs[id]
		for _, to := range rec.patched {
			if !lt.evicted(to) {
				lt.recs[to].backPtrs = remove(lt.recs[to].backPtrs, id)
			}
			lt.patchedCount--
		}
		rec.patched = rec.patched[:0]
		for _, to := range rec.pendOut {
			lt.recs[to].pendIn = remove(lt.recs[to].pendIn, id)
		}
		rec.pendOut = rec.pendOut[:0]
	}
}

// unlinkEventsFor counts, before eviction, how many of the blocks in ids
// have at least one inbound link from a surviving source. Call before
// onEvict mutates the tables.
func (lt *linkTable) unlinkEventsFor(ids []SuperblockID) uint64 {
	lt.markEvicted(ids)
	var events uint64
	for _, id := range ids {
		for _, from := range lt.recs[id].backPtrs {
			if !lt.evicted(from) {
				events++
				break
			}
		}
	}
	return events
}

// census classifies patched links by unit token.
func (lt *linkTable) census(unitOf func(SuperblockID) (int64, bool)) (intra, inter int) {
	for from := range lt.recs {
		set := lt.recs[from].patched
		if len(set) == 0 {
			continue
		}
		fu, ok := unitOf(SuperblockID(from))
		if !ok {
			continue
		}
		for _, to := range set {
			tu, ok := unitOf(to)
			if !ok {
				continue
			}
			if fu == tu {
				intra++
			} else {
				inter++
			}
		}
	}
	return intra, inter
}

// forEachPatched visits every patched link once.
func (lt *linkTable) forEachPatched(fn func(from, to SuperblockID)) {
	for from := range lt.recs {
		for _, to := range lt.recs[from].patched {
			fn(SuperblockID(from), to)
		}
	}
}

// patchedLinks returns the current patched link count.
func (lt *linkTable) patchedLinks() int { return lt.patchedCount }

// checkInvariants verifies internal consistency; used by tests.
func (lt *linkTable) checkInvariants() error {
	count := 0
	for from := range lt.recs {
		for _, to := range lt.recs[from].patched {
			if !contains(lt.recs[to].backPtrs, SuperblockID(from)) {
				return fmt.Errorf("core: link %d->%d missing back-pointer", from, to)
			}
			count++
		}
	}
	for to := range lt.recs {
		for _, from := range lt.recs[to].backPtrs {
			if !contains(lt.recs[from].patched, SuperblockID(to)) {
				return fmt.Errorf("core: dangling back-pointer %d->%d", from, to)
			}
		}
		for _, from := range lt.recs[to].pendIn {
			if !contains(lt.recs[from].pendOut, SuperblockID(to)) {
				return fmt.Errorf("core: pending link %d->%d missing pendOut mirror", from, to)
			}
		}
		for _, t2 := range lt.recs[to].pendOut {
			if !contains(lt.recs[t2].pendIn, SuperblockID(to)) {
				return fmt.Errorf("core: pendOut %d->%d missing pendIn mirror", to, t2)
			}
		}
	}
	if count != lt.patchedCount {
		return fmt.Errorf("core: patched count %d != recounted %d", lt.patchedCount, count)
	}
	return nil
}
