package core

import "fmt"

// linkTable implements superblock chaining (Section 3.1).
//
// For each resident block it tracks the links *declared* by the frontend
// (the block's exits), the subset actually *patched* into cached code
// (target resident at declaration time, or resolved later when the target
// arrived), and a back-pointer table mapping each block to the sources
// patched to jump to it.
//
// A declared link whose target is absent waits in the pending table; when
// the target is (re)inserted, the link is patched and counted as a
// relink — this models DynamoRIO re-chaining through exit stubs after a
// regeneration.
type linkTable struct {
	// declared[from] lists every link declared by the resident block
	// `from`, patched or not. Reset when `from` is evicted.
	declared map[SuperblockID][]SuperblockID
	// patched[from] is the set of targets from currently jumps to.
	patched map[SuperblockID]map[SuperblockID]struct{}
	// backPtrs[to] is the set of sources patched to jump to `to` — the
	// back-pointer table whose memory cost Section 5.1 estimates at 16
	// bytes per link.
	backPtrs map[SuperblockID]map[SuperblockID]struct{}
	// pending[to] is the set of resident sources with a declared but
	// unpatched link to the absent block `to`.
	pending map[SuperblockID]map[SuperblockID]struct{}

	patchedCount int
}

func newLinkTable() *linkTable {
	return &linkTable{
		declared: make(map[SuperblockID][]SuperblockID),
		patched:  make(map[SuperblockID]map[SuperblockID]struct{}),
		backPtrs: make(map[SuperblockID]map[SuperblockID]struct{}),
		pending:  make(map[SuperblockID]map[SuperblockID]struct{}),
	}
}

// patch records from->to as patched.
func (lt *linkTable) patch(from, to SuperblockID) {
	set, ok := lt.patched[from]
	if !ok {
		set = make(map[SuperblockID]struct{})
		lt.patched[from] = set
	}
	if _, dup := set[to]; dup {
		return
	}
	set[to] = struct{}{}
	bp, ok := lt.backPtrs[to]
	if !ok {
		bp = make(map[SuperblockID]struct{})
		lt.backPtrs[to] = bp
	}
	bp[from] = struct{}{}
	lt.patchedCount++
}

func (lt *linkTable) addPending(from, to SuperblockID) {
	set, ok := lt.pending[to]
	if !ok {
		set = make(map[SuperblockID]struct{})
		lt.pending[to] = set
	}
	set[from] = struct{}{}
}

// declare records a link from a resident block and patches it when the
// target is resident. resident reports residency; stats receives patch
// counters.
func (lt *linkTable) declare(from, to SuperblockID, resident func(SuperblockID) bool, stats *Stats) {
	lt.declared[from] = append(lt.declared[from], to)
	if resident(to) {
		lt.patch(from, to)
		stats.LinksPatched++
	} else {
		lt.addPending(from, to)
	}
}

// onInsert resolves pending links targeting the newly inserted block.
func (lt *linkTable) onInsert(id SuperblockID, stats *Stats) {
	waiting, ok := lt.pending[id]
	if !ok {
		return
	}
	delete(lt.pending, id)
	for from := range waiting {
		lt.patch(from, id)
		stats.LinksPatched++
		stats.PendingRelinks++
	}
}

// onEvict processes the eviction of a set of blocks in one invocation.
// Links whose source is also being evicted die with the region for free;
// links from surviving blocks must be unpatched one at a time, which is
// what Equation 4 charges for. Unpatched (pending-style) re-links are
// reinstated so the source re-chains if the target is regenerated.
//
// unitOf maps a resident block to its eviction-unit token; two blocks with
// equal tokens share a unit. The classification only matters for the
// intra/inter split in stats: by construction every costed unlink crosses
// a unit boundary (the source survives the flushed region).
func (lt *linkTable) onEvict(evicted map[SuperblockID]struct{}, stats *Stats, samples *EvictionSample) {
	for id := range evicted {
		// Inbound patched links.
		for from := range lt.backPtrs[id] {
			if _, also := evicted[from]; also {
				stats.IntraUnitLinksFlushed++
				continue
			}
			// Surviving source: unpatch, charge, and let it re-chain later.
			delete(lt.patched[from], id)
			lt.patchedCount--
			stats.InterUnitLinksRemoved++
			if samples != nil {
				samples.LinksRemoved++
			}
			lt.addPending(from, id)
		}
		delete(lt.backPtrs, id)
	}
	// Outbound bookkeeping for each evicted block: scrub its patched links
	// from targets' back-pointer sets and drop its pending declarations.
	for id := range evicted {
		for to := range lt.patched[id] {
			if _, also := evicted[to]; !also {
				if bp, ok := lt.backPtrs[to]; ok {
					delete(bp, id)
				}
			}
			lt.patchedCount--
		}
		delete(lt.patched, id)
		delete(lt.declared, id)
		for to, set := range lt.pending {
			delete(set, id)
			if len(set) == 0 {
				delete(lt.pending, to)
			}
		}
	}
}

// unlinkEventsFor counts, before eviction, how many of the blocks in
// evicted have at least one inbound link from a surviving source. Call
// before onEvict mutates the tables.
func (lt *linkTable) unlinkEventsFor(evicted map[SuperblockID]struct{}) uint64 {
	var events uint64
	for id := range evicted {
		for from := range lt.backPtrs[id] {
			if _, also := evicted[from]; !also {
				events++
				break
			}
		}
	}
	return events
}

// census classifies patched links by unit token.
func (lt *linkTable) census(unitOf func(SuperblockID) (int64, bool)) (intra, inter int) {
	for from, set := range lt.patched {
		fu, ok := unitOf(from)
		if !ok {
			continue
		}
		for to := range set {
			tu, ok := unitOf(to)
			if !ok {
				continue
			}
			if fu == tu {
				intra++
			} else {
				inter++
			}
		}
	}
	return intra, inter
}

// patchedLinks returns the current patched link count.
func (lt *linkTable) patchedLinks() int { return lt.patchedCount }

// checkInvariants verifies internal consistency; used by tests.
func (lt *linkTable) checkInvariants() error {
	count := 0
	for from, set := range lt.patched {
		for to := range set {
			bp, ok := lt.backPtrs[to]
			if !ok {
				return fmt.Errorf("core: link %d->%d missing back-pointer set", from, to)
			}
			if _, ok := bp[from]; !ok {
				return fmt.Errorf("core: link %d->%d missing back-pointer", from, to)
			}
			count++
		}
	}
	for to, bp := range lt.backPtrs {
		for from := range bp {
			if _, ok := lt.patched[from][to]; !ok {
				return fmt.Errorf("core: dangling back-pointer %d->%d", from, to)
			}
		}
	}
	if count != lt.patchedCount {
		return fmt.Errorf("core: patched count %d != recounted %d", lt.patchedCount, count)
	}
	return nil
}
