package core

import "fmt"

// linkTable implements superblock chaining (Section 3.1).
//
// For each resident block it tracks the subset of declared links actually
// *patched* into cached code (target resident at declaration time, or
// resolved later when the target arrived), and enough reverse structure to
// charge eviction for unlinking — the back-pointer table whose memory cost
// Section 5.1 estimates at 16 bytes per link.
//
// A declared link whose target is absent is pending; when the target is
// (re)inserted, the link is patched and counted as a relink — this models
// DynamoRIO re-chaining through exit stubs after a regeneration.
//
// Representation: the table stores the declared-edge relation and derives
// patched/pending from residency instead of maintaining them as separate
// mutable sets. For every source it keeps the targets declared during the
// source's current residency (out, truncated when the source is evicted),
// and for every target an append-only index of every source that ever
// declared a link to it (in). A declared edge from->to is live while the
// source is resident; a live edge is patched iff the target is resident,
// pending otherwise:
//
//	live(from, to)    = resident(from) && to ∈ out[from]
//	patched(from, to) = live(from, to) && resident(to)
//	pending(from, to) = live(from, to) && !resident(to)
//
// This is equivalent to the explicit patched/backPtrs/pendIn/pendOut
// bookkeeping it replaced (the map-based version survives as the
// differential oracle in links_oracle_test.go): a patched link's target
// eviction reinstates the pending link automatically because the edge
// stays in out[from], and a source's eviction kills all its edges because
// out[from] is truncated. What the rewrite buys is the eviction path:
// processing an eviction set is a pure walk over the in/out lists — no
// set removals, no pending reinstatement writes, no allocation — which
// matters because eviction-side link maintenance dominates the replay
// profile at high cache pressure.
//
// Layout: both tables are dense slices indexed by SuperblockID. Every
// frontend in this repository assigns IDs densely from 0 (see the
// dense-ID invariant in DESIGN.md). List entries are truncated — never
// freed — so the table stops allocating once the workload's link
// population has been seen: the steady-state insert and eviction paths
// perform zero heap allocations.
type linkTable struct {
	// out[from] holds the targets declared during from's current
	// residency, deduplicated, in declaration order. Truncated (capacity
	// kept) when from is evicted.
	out [][]SuperblockID
	// in[to] holds every source that ever declared a link to `to`,
	// deduplicated, append-only. An entry is only meaningful when the
	// edge is live; walks re-validate against out[from].
	in [][]SuperblockID

	// Frozen mode (see freeze): the declared-edge relation is a known
	// immutable graph, stored in CSR form by a FrozenAdjacency — possibly
	// shared, read-only, with other caches replaying the same trace.
	// Every walk becomes a sequential scan of a flat edge array plus a
	// residency bit test — no per-edge set scans, no slice-header chasing
	// — and liveness simplifies to resident(from), because a resident
	// source always has exactly its frozen out-row declared.
	frozen bool
	fa     *FrozenAdjacency
	// deferPatched (frozen mode only) stops maintaining patchedCount per
	// operation; patchedLinks() recomputes it from residency on demand.
	// Only safe when nothing observes the count mid-run — the fast replay
	// kernel opts in (no verification wrapper, no census sampling), which
	// deletes the eviction path's whole outbound bookkeeping walk.
	deferPatched bool

	// resident mirrors the owning cache's residency, maintained from
	// onInsert/onEvict events so derivations need no callback per edge.
	resident []bool

	patchedCount int

	// marks[id] == epoch means id belongs to the eviction set currently
	// being processed; bumping epoch clears the whole set in O(1).
	marks []uint32
	epoch uint32
}

func newLinkTable() *linkTable {
	return &linkTable{}
}

// grow extends the dense tables to cover id.
func (lt *linkTable) grow(id SuperblockID) {
	if int(id) < len(lt.out) {
		return
	}
	n := int(id) + 1
	if n < 2*len(lt.out) {
		n = 2 * len(lt.out)
	}
	out := make([][]SuperblockID, n)
	copy(out, lt.out)
	lt.out = out
	in := make([][]SuperblockID, n)
	copy(in, lt.in)
	lt.in = in
	resident := make([]bool, n)
	copy(resident, lt.resident)
	lt.resident = resident
	marks := make([]uint32, n)
	copy(marks, lt.marks)
	lt.marks = marks
}

// reserve pre-sizes the tables for IDs in [0, maxID], avoiding the
// doubling copies of incremental growth when the span is known up front.
func (lt *linkTable) reserve(maxID SuperblockID) {
	lt.grow(maxID)
}

// contains reports membership in an unordered ID set slice.
func contains(set []SuperblockID, id SuperblockID) bool {
	for _, x := range set {
		if x == id {
			return true
		}
	}
	return false
}

// freeze switches the table to frozen-adjacency mode. blocks is the dense
// (ID-indexed) block table; blocks[id].Links is the immutable link row the
// owner promises every future insertion of id will declare, verbatim.
// chainingDisabled freezes an empty relation (the owner strips Links from
// every insert).
//
// Under that contract, "declared during the source's current residency"
// collapses to "source resident": a resident source always has exactly its
// frozen row declared. The relation is stored as forward and reverse CSR
// arrays, so insertion and eviction walks are sequential scans of flat
// edge arrays with one residency test per edge — no per-edge set scans —
// and the eviction path writes nothing but the residency and mark stamps.
func (lt *linkTable) freeze(blocks []Superblock, chainingDisabled bool) {
	n := len(blocks)
	if chainingDisabled || n == 0 {
		// Inserts carry no links under the disabled contract (nothing to
		// validate or walk), and an empty table has no relation at all.
		lt.freezeShared(EmptyAdjacency(n))
		return
	}
	lt.freezeShared(NewFrozenAdjacency(blocks))
}

// freezeShared switches the table to frozen-adjacency mode over a
// prebuilt (possibly shared) immutable relation. The adjacency is only
// read; all mutable state stays in this table.
func (lt *linkTable) freezeShared(fa *FrozenAdjacency) {
	lt.frozen = true
	lt.fa = fa
	if fa.n > 0 {
		lt.grow(SuperblockID(fa.n - 1))
	}
}

// prevalidated reports whether every raw link row was ID-validated at
// freeze time, letting the owner's insert path skip re-validation.
func (lt *linkTable) prevalidated() bool {
	return lt.fa != nil && lt.fa.linksValid
}

// foutRow returns id's frozen forward link row.
func (lt *linkTable) foutRow(id SuperblockID) []SuperblockID {
	return lt.fa.OutRow(id)
}

// finRow returns id's frozen reverse link row.
func (lt *linkTable) finRow(id SuperblockID) []SuperblockID {
	return lt.fa.InRow(id)
}

// declareAll records, in frozen mode, the insertion-time declaration of a
// block's full raw link row. Stats mirror declare(): LinksPatched counts
// per declaration, duplicates included, while patchedCount counts the
// deduplicated edges whose target is resident. The inserting block counts
// as resident for its own self-link (the owning cache sets residency
// before declaring, while the table's own flag is set in onInsert).
func (lt *linkTable) declareAll(id SuperblockID, links []SuperblockID, stats *Stats) {
	if len(links) == 0 {
		return
	}
	resident := lt.resident
	if lt.fa.rowsExact {
		// Frozen row == raw row: one pass covers both counters.
		patched := 0
		for _, to := range lt.foutRow(id) {
			if to == id || resident[to] {
				patched++
			}
		}
		stats.LinksPatched += uint64(patched)
		if !lt.deferPatched {
			lt.patchedCount += patched
		}
		return
	}
	for _, to := range links {
		if to == id || (int(to) < len(resident) && resident[to]) {
			stats.LinksPatched++
		}
	}
	if lt.deferPatched {
		return
	}
	for _, to := range lt.foutRow(id) {
		if to == id || resident[to] {
			lt.patchedCount++
		}
	}
}

// markEvicted stamps the eviction set for O(1) membership tests.
func (lt *linkTable) markEvicted(ids []SuperblockID) {
	lt.epoch++
	for _, id := range ids {
		lt.grow(id)
		lt.marks[id] = lt.epoch
	}
}

func (lt *linkTable) evicted(id SuperblockID) bool {
	return int(id) < len(lt.marks) && lt.marks[id] == lt.epoch
}

// declare records a link from a resident block; it is patched when the
// target is resident and pending otherwise. resident reports residency
// (the owning cache's view; during an insertion the table's own flag for
// the inserting block is not yet set). stats receives patch counters.
func (lt *linkTable) declare(from, to SuperblockID, resident func(SuperblockID) bool, stats *Stats) {
	if lt.frozen {
		panic("core: dynamic declare on a frozen link table")
	}
	if from > to {
		lt.grow(from)
	} else {
		lt.grow(to)
	}
	targetResident := resident(to)
	if targetResident {
		// Counted per declaration, duplicate or not, mirroring the cost
		// of emitting the patch; the relation itself deduplicates below.
		stats.LinksPatched++
	}
	if contains(lt.out[from], to) {
		return
	}
	lt.out[from] = append(lt.out[from], to)
	if !contains(lt.in[to], from) {
		lt.in[to] = append(lt.in[to], from)
	}
	if targetResident {
		lt.patchedCount++
	}
}

// onInsert marks id resident and resolves pending links targeting it:
// every live inbound edge was necessarily pending (id was absent) and is
// now patched.
func (lt *linkTable) onInsert(id SuperblockID, stats *Stats) {
	if lt.frozen {
		if int(id) >= len(lt.resident) {
			lt.grow(id)
		}
		resident := lt.resident
		resident[id] = true
		relinked := 0
		for _, from := range lt.finRow(id) {
			if from != id && resident[from] {
				relinked++
			}
		}
		if relinked > 0 {
			if !lt.deferPatched {
				lt.patchedCount += relinked
			}
			stats.LinksPatched += uint64(relinked)
			stats.PendingRelinks += uint64(relinked)
		}
		return
	}
	lt.grow(id)
	lt.resident[id] = true
	for _, from := range lt.in[id] {
		if from == id {
			// A self-link is patched by its own declaration, which runs
			// with the block already resident in the owning cache.
			continue
		}
		if lt.resident[from] && contains(lt.out[from], id) {
			lt.patchedCount++
			stats.LinksPatched++
			stats.PendingRelinks++
		}
	}
}

// onEvict processes the eviction of a set of blocks in one invocation and
// returns how many of them had at least one patched inbound link from a
// surviving source — the unlink events Equation 4 charges for. Links
// whose source is also being evicted die with the region for free; links
// from surviving blocks must be unpatched one at a time. The surviving
// source's edge stays declared, so it re-chains (as a pending relink) if
// the target is regenerated.
//
// The classification only matters for the intra/inter split in stats: by
// construction every costed unlink crosses a unit boundary (the source
// survives the flushed region).
func (lt *linkTable) onEvict(ids []SuperblockID, stats *Stats, samples *EvictionSample) uint64 {
	lt.markEvicted(ids)
	for _, id := range ids {
		lt.resident[id] = false
	}
	var events uint64
	if lt.frozen {
		// Frozen mode fuses both passes: liveness is just resident(from),
		// so each evicted block's inbound and outbound rows are scanned
		// once against the residency and mark tables, with no writes.
		resident := lt.resident
		finIdx, finEdges := lt.fa.finIdx, lt.fa.finEdges
		if lt.deferPatched {
			// Deferred counting: the outbound walk existed only to keep
			// patchedCount current, so it disappears entirely.
			for _, id := range ids {
				unlinked := false
				for _, from := range finEdges[finIdx[id]:finIdx[id+1]] {
					if resident[from] {
						stats.InterUnitLinksRemoved++
						if samples != nil {
							samples.LinksRemoved++
						}
						unlinked = true
					} else if lt.evicted(from) {
						stats.IntraUnitLinksFlushed++
					}
				}
				if unlinked {
					events++
				}
			}
			return events
		}
		foutIdx, foutEdges := lt.fa.foutIdx, lt.fa.foutEdges
		for _, id := range ids {
			unlinked := false
			for _, from := range finEdges[finIdx[id]:finIdx[id+1]] {
				if resident[from] {
					lt.patchedCount--
					stats.InterUnitLinksRemoved++
					if samples != nil {
						samples.LinksRemoved++
					}
					unlinked = true
				} else if lt.evicted(from) {
					stats.IntraUnitLinksFlushed++
				}
			}
			if unlinked {
				events++
			}
			for _, to := range foutEdges[foutIdx[id]:foutIdx[id+1]] {
				if resident[to] || lt.evicted(to) {
					lt.patchedCount--
				}
			}
		}
		return events
	}
	// Inbound patched links: classify against the surviving residents.
	// out sets are still intact, so liveness checks see the pre-eviction
	// edge relation.
	for _, id := range ids {
		unlinked := false
		for _, from := range lt.in[id] {
			if !contains(lt.out[from], id) {
				continue // edge from an earlier residency of from; dead
			}
			if lt.resident[from] {
				// Surviving source: unpatch and charge. The edge stays in
				// out[from], which is exactly the pending reinstatement.
				lt.patchedCount--
				stats.InterUnitLinksRemoved++
				if samples != nil {
					samples.LinksRemoved++
				}
				unlinked = true
			} else if lt.evicted(from) {
				stats.IntraUnitLinksFlushed++
			}
		}
		if unlinked {
			events++
		}
	}
	// Outbound bookkeeping: each evicted block's patched links die with
	// it. Links to surviving targets and intra-set links are both counted
	// here (intra-set inbound links were classified above but not
	// decremented, so every dying patched link is decremented once).
	for _, id := range ids {
		for _, to := range lt.out[id] {
			if lt.resident[to] || lt.evicted(to) {
				lt.patchedCount--
			}
		}
		lt.out[id] = lt.out[id][:0]
	}
	return events
}

// unlinkEventsFor counts, before eviction, how many of the blocks in ids
// have at least one patched inbound link from a surviving source. Call
// before onEvict; onEvict also returns this count, fused, for callers on
// the hot path.
func (lt *linkTable) unlinkEventsFor(ids []SuperblockID) uint64 {
	lt.markEvicted(ids)
	var events uint64
	if lt.frozen {
		for _, id := range ids {
			for _, from := range lt.finRow(id) {
				if !lt.evicted(from) && lt.resident[from] {
					events++
					break
				}
			}
		}
		return events
	}
	for _, id := range ids {
		for _, from := range lt.in[id] {
			if !lt.evicted(from) && lt.resident[from] && contains(lt.out[from], id) {
				events++
				break
			}
		}
	}
	return events
}

// census classifies patched links by unit token.
func (lt *linkTable) census(unitOf func(SuperblockID) (int64, bool)) (intra, inter int) {
	if lt.frozen {
		for from := 0; from+1 < len(lt.fa.foutIdx); from++ {
			set := lt.fa.foutEdges[lt.fa.foutIdx[from]:lt.fa.foutIdx[from+1]]
			if len(set) == 0 {
				continue
			}
			fu, ok := unitOf(SuperblockID(from))
			if !ok {
				continue
			}
			for _, to := range set {
				tu, ok := unitOf(to)
				if !ok {
					continue
				}
				if fu == tu {
					intra++
				} else {
					inter++
				}
			}
		}
		return intra, inter
	}
	for from := range lt.out {
		set := lt.out[from]
		if len(set) == 0 {
			continue
		}
		fu, ok := unitOf(SuperblockID(from))
		if !ok {
			continue
		}
		for _, to := range set {
			tu, ok := unitOf(to)
			if !ok {
				continue
			}
			if fu == tu {
				intra++
			} else {
				inter++
			}
		}
	}
	return intra, inter
}

// forEachPatched visits every patched link once.
func (lt *linkTable) forEachPatched(fn func(from, to SuperblockID)) {
	if lt.frozen {
		for from := 0; from+1 < len(lt.fa.foutIdx); from++ {
			if !lt.resident[from] {
				continue
			}
			for _, to := range lt.fa.foutEdges[lt.fa.foutIdx[from]:lt.fa.foutIdx[from+1]] {
				if lt.resident[to] {
					fn(SuperblockID(from), to)
				}
			}
		}
		return
	}
	for from := range lt.out {
		if !lt.resident[from] {
			continue
		}
		for _, to := range lt.out[from] {
			if int(to) < len(lt.resident) && lt.resident[to] {
				fn(SuperblockID(from), to)
			}
		}
	}
}

// patchedLinks returns the current patched link count, recomputing it
// from residency when counting is deferred.
func (lt *linkTable) patchedLinks() int {
	if lt.frozen && lt.deferPatched {
		count := 0
		resident := lt.resident
		for from := 0; from+1 < len(lt.fa.foutIdx); from++ {
			if !resident[from] {
				continue
			}
			for _, to := range lt.fa.foutEdges[lt.fa.foutIdx[from]:lt.fa.foutIdx[from+1]] {
				if resident[to] {
					count++
				}
			}
		}
		return count
	}
	return lt.patchedCount
}

// checkInvariants verifies internal consistency; used by tests.
func (lt *linkTable) checkInvariants() error {
	if lt.frozen {
		count := 0
		for from := 0; from+1 < len(lt.fa.foutIdx); from++ {
			set := lt.fa.foutEdges[lt.fa.foutIdx[from]:lt.fa.foutIdx[from+1]]
			for i, to := range set {
				if contains(set[:i], to) {
					return fmt.Errorf("core: duplicate frozen edge %d->%d", from, to)
				}
				if !contains(lt.finRow(to), SuperblockID(from)) {
					return fmt.Errorf("core: frozen edge %d->%d missing reverse entry", from, to)
				}
				if lt.resident[from] && lt.resident[to] {
					count++
				}
			}
		}
		if !lt.deferPatched && count != lt.patchedCount {
			return fmt.Errorf("core: patched count %d != frozen recount %d", lt.patchedCount, count)
		}
		return nil
	}
	count := 0
	for from := range lt.out {
		set := lt.out[from]
		if len(set) > 0 && !lt.resident[from] {
			return fmt.Errorf("core: non-resident superblock %d has %d live edges", from, len(set))
		}
		for i, to := range set {
			if contains(set[:i], to) {
				return fmt.Errorf("core: duplicate edge %d->%d", from, to)
			}
			if !contains(lt.in[to], SuperblockID(from)) {
				return fmt.Errorf("core: edge %d->%d missing reverse entry", from, to)
			}
			if lt.resident[to] {
				count++
			}
		}
	}
	for to := range lt.in {
		for i, from := range lt.in[to] {
			if contains(lt.in[to][:i], from) {
				return fmt.Errorf("core: duplicate reverse entry %d->%d", from, to)
			}
		}
	}
	if count != lt.patchedCount {
		return fmt.Errorf("core: patched count %d != recounted %d", lt.patchedCount, count)
	}
	return nil
}
