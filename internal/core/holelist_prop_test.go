package core

import (
	"math/rand"
	"testing"
)

// holeModel is the brute-force reference for the chunked hole index: a
// per-byte free bitmap over a small arena. Maximal free runs are the
// holes; first-fit, coalescing, and byte conservation all fall out of
// recomputing runs from scratch after every operation.
type holeModel struct {
	free []bool
}

func newHoleModel(n int) *holeModel { return &holeModel{free: make([]bool, n)} }

// runs returns the maximal free runs in offset order.
func (m *holeModel) runs() (offs, sizes []int) {
	for i := 0; i < len(m.free); {
		if !m.free[i] {
			i++
			continue
		}
		j := i
		for j < len(m.free) && m.free[j] {
			j++
		}
		offs = append(offs, i)
		sizes = append(sizes, j-i)
		i = j
	}
	return offs, sizes
}

// firstFit returns the lowest-offset free run of at least take bytes.
func (m *holeModel) firstFit(take int) (int, bool) {
	offs, sizes := m.runs()
	for i, s := range sizes {
		if s >= take {
			return offs[i], true
		}
	}
	return 0, false
}

func (m *holeModel) mark(off, size int, free bool) {
	for i := off; i < off+size; i++ {
		m.free[i] = free
	}
}

func (m *holeModel) freeBytes() int {
	n := 0
	for _, f := range m.free {
		if f {
			n++
		}
	}
	return n
}

// collect snapshots a holeList as parallel off/size slices.
func collectHoles(l *holeList) (offs, sizes []int) {
	l.ascend(func(off, size int) {
		offs = append(offs, off)
		sizes = append(sizes, size)
	})
	return offs, sizes
}

// checkAgainstModel asserts that l holds exactly the model's maximal
// free runs: same holes in the same order means no overlaps, no missed
// coalescing, and exact free-byte conservation.
func checkAgainstModel(t *testing.T, step int, l *holeList, m *holeModel) {
	t.Helper()
	if err := l.checkInvariants(); err != nil {
		t.Fatalf("step %d: %v", step, err)
	}
	gotOffs, gotSizes := collectHoles(l)
	wantOffs, wantSizes := m.runs()
	if len(gotOffs) != len(wantOffs) {
		t.Fatalf("step %d: %d holes, model has %d", step, len(gotOffs), len(wantOffs))
	}
	total := 0
	for i := range gotOffs {
		if gotOffs[i] != wantOffs[i] || gotSizes[i] != wantSizes[i] {
			t.Fatalf("step %d: hole %d is [%d,+%d), model has [%d,+%d)",
				step, i, gotOffs[i], gotSizes[i], wantOffs[i], wantSizes[i])
		}
		total += gotSizes[i]
	}
	if total != m.freeBytes() {
		t.Fatalf("step %d: holes sum to %d bytes, model frees %d", step, total, m.freeBytes())
	}
}

// holeDriver interprets a byte string as an adversarial operation
// sequence over a small arena, holding three states in lockstep: the
// bitmap model, a holeList driven per-region through freeAndTake, and a
// holeList driven through the batched freeRunAndTake. Every step checks
// structural invariants, model equality (which implies no overlapping
// holes and exact free-byte conservation), and agreement between the
// per-victim and batched carve paths.
func holeDriver(t *testing.T, data []byte) {
	const arena = 512
	m := newHoleModel(arena)
	var single, batched holeList
	single.reset(0, 0)
	batched.reset(0, 0)

	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int(b)
	}

	// pickAllocated chooses a fully-allocated region seeded by the fuzz
	// bytes; returns ok=false when the arena has no allocated byte.
	pickAllocated := func() (off, size int, ok bool) {
		start := next() * arena / 256
		for i := 0; i < arena; i++ {
			p := (start + i) % arena
			if !m.free[p] {
				end := p
				limit := next()%32 + 1
				for end < arena && !m.free[end] && end-p < limit {
					end++
				}
				return p, end - p, true
			}
		}
		return 0, 0, false
	}

	for step := 0; len(data) > 0 && step < 4096; step++ {
		switch next() % 3 {
		case 0: // first-fit allocation
			take := next()%96 + 1
			wantOff, wantOK := m.firstFit(take)
			gotOff, gotOK := single.allocFirstFit(take)
			batOff, batOK := batched.allocFirstFit(take)
			if gotOK != wantOK || (gotOK && gotOff != wantOff) {
				t.Fatalf("step %d: allocFirstFit(%d) = (%d, %v), model wants (%d, %v)",
					step, take, gotOff, gotOK, wantOff, wantOK)
			}
			if batOK != gotOK || batOff != gotOff {
				t.Fatalf("step %d: batched list alloc diverges: (%d, %v) vs (%d, %v)",
					step, batOff, batOK, gotOff, gotOK)
			}
			if gotOK {
				m.mark(gotOff, take, false)
			}
		case 1: // single free-and-take
			o, s, ok := pickAllocated()
			if !ok {
				continue
			}
			want := next()%128 + 1
			place, taken := single.freeAndTake(o, s, want)
			bp, bt, bu := batched.freeRunAndTake([]int32{int32(o)}, []int32{int32(s)}, want)
			if bt != taken || (taken && bp != place) || bu != 1 {
				t.Fatalf("step %d: freeRunAndTake single region = (%d, %v, %d), freeAndTake = (%d, %v)",
					step, bp, bt, bu, place, taken)
			}
			m.mark(o, s, true)
			if taken {
				m.mark(place, want, false)
			}
		case 2: // burst: several disjoint regions through both carve paths
			k := next()%6 + 1
			offs := make([]int32, 0, k)
			sizes := make([]int32, 0, k)
			staged := newHoleModel(arena)
			for i := 0; i < k; i++ {
				o, s, ok := pickAllocated()
				if !ok {
					break
				}
				overlaps := false
				for p := o; p < o+s; p++ {
					if staged.free[p] {
						overlaps = true
						break
					}
				}
				if overlaps {
					continue
				}
				staged.mark(o, s, true)
				offs = append(offs, int32(o))
				sizes = append(sizes, int32(s))
			}
			if len(offs) == 0 {
				continue
			}
			want := next()%160 + 1
			// Mirror the LRU eviction loop: per-victim carve until taken.
			sPlace, sTaken, sUsed := 0, false, 0
			for i := range offs {
				sUsed++
				sPlace, sTaken = single.freeAndTake(int(offs[i]), int(sizes[i]), want)
				if sTaken {
					break
				}
			}
			bPlace, bTaken, bUsed := batched.freeRunAndTake(offs, sizes, want)
			if bTaken != sTaken || bUsed != sUsed || (bTaken && bPlace != sPlace) {
				t.Fatalf("step %d: batched carve = (%d, %v, %d), per-victim = (%d, %v, %d)",
					step, bPlace, bTaken, bUsed, sPlace, sTaken, sUsed)
			}
			for i := 0; i < sUsed; i++ {
				m.mark(int(offs[i]), int(sizes[i]), true)
			}
			if sTaken {
				m.mark(sPlace, want, false)
			}
		}
		checkAgainstModel(t, step, &single, m)
		checkAgainstModel(t, step, &batched, m)
	}
}

// TestHoleListAdversarial drives long seeded-random operation sequences
// through the property driver, covering bucket splits and drains,
// coalescing in every adjacency shape, self-fitting frees whose merged
// run exceeds the request (the remainder must come back as a hole), and
// per-victim vs batched carve agreement.
func TestHoleListAdversarial(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 8192)
		rng.Read(data)
		holeDriver(t, data)
	}
}

// TestHoleListSelfFittingRun pins the merged-run-bigger-than-want edge
// directly: a batched run whose first region alone exceeds the request
// must stop after one region, place at the region base, and return the
// oversized remainder to the index.
func TestHoleListSelfFittingRun(t *testing.T) {
	var l holeList
	l.reset(0, 256)
	if off, ok := l.allocFirstFit(256); !ok || off != 0 {
		t.Fatalf("draining alloc = (%d, %v)", off, ok)
	}
	place, taken, used := l.freeRunAndTake(
		[]int32{64, 0}, []int32{128, 64}, 32)
	if !taken || place != 64 || used != 1 {
		t.Fatalf("freeRunAndTake = (%d, %v, %d), want (64, true, 1)", place, taken, used)
	}
	if l.largest() != 96 {
		t.Fatalf("largest = %d, want the 96-byte remainder", l.largest())
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// FuzzHoleList lets the fuzzer shape the operation sequence directly.
func FuzzHoleList(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 64, 1, 10, 3, 50, 2, 3, 5, 9, 7, 80})
	rng := rand.New(rand.NewSource(42))
	seed := make([]byte, 512)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		holeDriver(t, data)
	})
}
