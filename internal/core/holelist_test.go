package core

import (
	"strings"
	"testing"
)

// TestHoleListGrowthAndDrain drives the chunked array through bucket
// splits (ascending inserts fill and split the last bucket) and bucket
// removal (exact-fit allocations drain entries one by one), checking
// structural invariants at every boundary.
func TestHoleListGrowthAndDrain(t *testing.T) {
	var l holeList
	l.reset(0, 0)
	const n = 3 * holeBucketCap // enough one-byte holes to force splits
	for i := 0; i < n; i++ {
		l.insert(i*2, 1) // disjoint: gaps prevent accidental adjacency
		if err := l.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if l.count != n {
		t.Fatalf("count = %d, want %d", l.count, n)
	}
	if len(l.bucks) < 2 {
		t.Fatalf("expected bucket splits, got %d bucket(s)", len(l.bucks))
	}
	if l.largest() != 1 {
		t.Fatalf("largest = %d, want 1", l.largest())
	}
	prev := -1
	l.ascend(func(off, size int) {
		if off <= prev {
			t.Fatalf("ascend out of order: %d after %d", off, prev)
		}
		prev = off
	})
	// No hole fits 2 bytes.
	if _, ok := l.allocFirstFit(2); ok {
		t.Fatal("allocFirstFit(2) succeeded with only 1-byte holes")
	}
	// Exact fits drain in offset order and empty every bucket.
	for i := 0; i < n; i++ {
		off, ok := l.allocFirstFit(1)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if off != i*2 {
			t.Fatalf("alloc %d placed at %d, want %d (first fit)", i, off, i*2)
		}
	}
	if l.count != 0 || len(l.bucks) != 0 {
		t.Fatalf("drained list has count %d, %d buckets", l.count, len(l.bucks))
	}
	if l.largest() != 0 {
		t.Fatalf("largest on empty list = %d, want 0", l.largest())
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHoleListReverseInsert exercises locate and in-bucket memmoves by
// inserting in descending offset order.
func TestHoleListReverseInsert(t *testing.T) {
	var l holeList
	l.reset(0, 0)
	const n = 2 * holeBucketCap
	for i := n - 1; i >= 0; i-- {
		l.insert(i*3, 2)
		if err := l.checkInvariants(); err != nil {
			t.Fatalf("after insert at %d: %v", i*3, err)
		}
	}
	if l.count != n {
		t.Fatalf("count = %d, want %d", l.count, n)
	}
	// Carving one byte off a 2-byte hole leaves the remainder in place.
	off, ok := l.allocFirstFit(1)
	if !ok || off != 0 {
		t.Fatalf("allocFirstFit(1) = (%d, %v), want (0, true)", off, ok)
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHoleListFreeAndTakeMerging pins the eviction-loop contract: frees
// coalesce with both neighbors, and the placement is carved out of the
// merged hole the moment it reaches the requested size.
func TestHoleListFreeAndTakeMerging(t *testing.T) {
	var l holeList
	l.reset(0, 256)
	if off, ok := l.allocFirstFit(256); !ok || off != 0 {
		t.Fatalf("draining alloc = (%d, %v)", off, ok)
	}
	huge := 1 << 20 // never satisfiable: frees must just insert holes
	if _, taken := l.freeAndTake(0, 64, huge); taken {
		t.Fatal("64-byte free satisfied a huge request")
	}
	if _, taken := l.freeAndTake(128, 64, huge); taken {
		t.Fatal("disjoint free satisfied a huge request")
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if l.count != 2 {
		t.Fatalf("count = %d, want 2 disjoint holes", l.count)
	}
	// Freeing the gap merges all three regions into [0,192) and the
	// request is satisfied at the merged hole's base.
	place, taken := l.freeAndTake(64, 64, 192)
	if !taken || place != 0 {
		t.Fatalf("merged freeAndTake = (%d, %v), want (0, true)", place, taken)
	}
	if l.count != 0 {
		t.Fatalf("count = %d after exact merged take, want 0", l.count)
	}
	// Free region alone fits: remainder becomes a fresh hole.
	place, taken = l.freeAndTake(192, 64, 32)
	if !taken || place != 192 {
		t.Fatalf("self-fitting freeAndTake = (%d, %v), want (192, true)", place, taken)
	}
	if l.largest() != 32 {
		t.Fatalf("largest = %d, want the 32-byte remainder", l.largest())
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHoleListErrorStrings(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{errHoleOrder, "order"},
		{errHoleSummary, "summary"},
		{errHoleBucketSize, "bucket"},
		{errHoleCount, "count"},
	} {
		if !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%v does not mention %q", tc.err, tc.want)
		}
	}
}
