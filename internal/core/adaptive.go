package core

import "fmt"

// AdaptiveConfig parameterizes the pressure-adaptive granularity policy.
// The paper's future work proposes "a cache management strategy that
// dynamically adjusts the eviction granularity on-the-fly, based on the
// perceived cache pressure"; AdaptiveCache is that strategy.
//
// The controller watches the overhead mix over a sliding window. When
// eviction/unlink overhead dominates it coarsens the unit quantum (fewer,
// bigger flushes); when miss overhead dominates it refines it. Cost
// weights default to the paper's Equations 2-4.
type AdaptiveConfig struct {
	Capacity int
	// InitialUnits is the starting granularity (default 8).
	InitialUnits int
	// MinUnits/MaxUnits bound the adjustment range (defaults 2 and 256).
	MinUnits int
	MaxUnits int
	// Window is the number of insertions between controller decisions
	// (default 64).
	Window int
	// CostPerMiss, CostPerMissByte, CostPerEvict, CostPerEvictByte,
	// CostPerUnlink weight the observed events (defaults: Equations 2-4).
	CostPerMiss      float64
	CostPerMissByte  float64
	CostPerEvict     float64
	CostPerEvictByte float64
	CostPerUnlink    float64
	// Tolerance is the relative cost worsening that makes the climber
	// reverse direction (default 0.02).
	Tolerance float64
}

func (cfg *AdaptiveConfig) setDefaults() {
	if cfg.InitialUnits == 0 {
		cfg.InitialUnits = 8
	}
	if cfg.MinUnits == 0 {
		cfg.MinUnits = 2
	}
	if cfg.MaxUnits == 0 {
		cfg.MaxUnits = 256
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.CostPerMiss == 0 {
		cfg.CostPerMiss = 1922 // Equation 3 intercept
	}
	if cfg.CostPerMissByte == 0 {
		cfg.CostPerMissByte = 75.4 // Equation 3 slope
	}
	if cfg.CostPerEvict == 0 {
		cfg.CostPerEvict = 3055 // Equation 2 intercept
	}
	if cfg.CostPerEvictByte == 0 {
		cfg.CostPerEvictByte = 2.77 // Equation 2 slope
	}
	if cfg.CostPerUnlink == 0 {
		cfg.CostPerUnlink = 296.5 // Equation 4 slope
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.02
	}
}

// AdaptiveCache is a medium-grained FIFO cache whose unit count doubles or
// halves in response to the observed total overhead. Changing the quantum
// is safe at any insertion boundary: it only affects how far future
// eviction invocations advance the frontier.
//
// The controller is a gradient-free hill climber: each window it prices
// the window's events (Equations 2-4) per access, keeps moving in the
// current direction (finer or coarser) while cost improves, and reverses
// when it worsens beyond Tolerance. It therefore oscillates around
// whatever granularity currently minimizes overhead — tracking the
// pressure-dependent optimum of Figures 10-11 without knowing the
// pressure.
type AdaptiveCache struct {
	*FIFOCache
	cfg AdaptiveConfig

	curUnits  int
	dir       int // +1 = refine (more units), -1 = coarsen
	lastCost  float64
	haveCost  bool
	lastStats Stats // snapshot at the previous controller decision
	sinceCtl  int   // insertions since the previous decision
	// Adjustments counts granularity changes (diagnostic).
	Adjustments int
}

var _ Cache = (*AdaptiveCache)(nil)

// NewAdaptive returns an adaptive-granularity cache.
func NewAdaptive(cfg AdaptiveConfig) (*AdaptiveCache, error) {
	cfg.setDefaults()
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.MinUnits < 2 || cfg.MaxUnits < cfg.MinUnits {
		return nil, fmt.Errorf("core: bad unit bounds [%d, %d]", cfg.MinUnits, cfg.MaxUnits)
	}
	if cfg.InitialUnits < cfg.MinUnits || cfg.InitialUnits > cfg.MaxUnits {
		return nil, fmt.Errorf("core: InitialUnits %d outside [%d, %d]", cfg.InitialUnits, cfg.MinUnits, cfg.MaxUnits)
	}
	base, err := NewUnits(cfg.Capacity, cfg.InitialUnits)
	if err != nil {
		return nil, err
	}
	base.name = "adaptive"
	c := &AdaptiveCache{FIFOCache: base, cfg: cfg, curUnits: cfg.InitialUnits, dir: 1}
	// Rebind the engine to the wrapper so insertions flow through the
	// controller hook below.
	base.bindPolicy(c)
	return c, nil
}

// CurrentUnits returns the granularity currently in force.
func (c *AdaptiveCache) CurrentUnits() int { return c.curUnits }

// ReadsCounters implements CounterReader: the controller below prices
// each window from the live Stats, so batched access counters must be
// flushed before every insertion.
func (c *AdaptiveCache) ReadsCounters() bool { return true }

// OnInserted implements VictimPolicy, running the controller between
// insertions (changing the quantum is safe at any insertion boundary).
func (c *AdaptiveCache) OnInserted(id SuperblockID, off int64, size int) {
	c.FIFOCache.OnInserted(id, off, size)
	c.sinceCtl++
	if c.sinceCtl >= c.cfg.Window {
		c.adjust()
		c.sinceCtl = 0
	}
}

// adjust prices the window just finished and hill-climbs: keep moving in
// the improving direction, reverse when cost per access worsens.
func (c *AdaptiveCache) adjust() {
	cur := c.stats
	d := Stats{
		Accesses:              cur.Accesses - c.lastStats.Accesses,
		Misses:                cur.Misses - c.lastStats.Misses,
		InsertedBytes:         cur.InsertedBytes - c.lastStats.InsertedBytes,
		EvictionInvocations:   cur.EvictionInvocations - c.lastStats.EvictionInvocations,
		BytesEvicted:          cur.BytesEvicted - c.lastStats.BytesEvicted,
		UnlinkEvents:          cur.UnlinkEvents - c.lastStats.UnlinkEvents,
		InterUnitLinksRemoved: cur.InterUnitLinksRemoved - c.lastStats.InterUnitLinksRemoved,
	}
	c.lastStats = cur
	if d.Accesses == 0 {
		return
	}
	window := c.cfg.CostPerMiss*float64(d.Misses) +
		c.cfg.CostPerMissByte*float64(d.InsertedBytes) +
		c.cfg.CostPerEvict*float64(d.EvictionInvocations) +
		c.cfg.CostPerEvictByte*float64(d.BytesEvicted) +
		c.cfg.CostPerUnlink*float64(d.InterUnitLinksRemoved) +
		95.7*float64(d.UnlinkEvents)
	cost := window / float64(d.Accesses)

	if c.haveCost && cost > c.lastCost*(1+c.cfg.Tolerance) {
		c.dir = -c.dir // the last move hurt: go back the other way
	}
	c.lastCost = cost
	c.haveCost = true

	next := c.curUnits * 2
	if c.dir < 0 {
		next = c.curUnits / 2
	}
	if next < c.cfg.MinUnits || next > c.cfg.MaxUnits {
		c.dir = -c.dir // bounce off the bounds
		return
	}
	c.setUnits(next)
}

func (c *AdaptiveCache) setUnits(n int) {
	if n < c.cfg.MinUnits {
		n = c.cfg.MinUnits
	}
	if n > c.cfg.MaxUnits {
		n = c.cfg.MaxUnits
	}
	if n == c.curUnits {
		return
	}
	c.curUnits = n
	c.unitSize = c.capacity / n
	if c.unitSize < 1 {
		c.unitSize = 1
	}
	c.nUnits = n
	c.Adjustments++
}
