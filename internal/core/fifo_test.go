package core

import (
	"testing"

	"dynocache/internal/stats"
)

func sb(id SuperblockID, size int, links ...SuperblockID) Superblock {
	return Superblock{ID: id, Size: size, Links: links}
}

func mustInsert(t *testing.T, c Cache, blocks ...Superblock) {
	t.Helper()
	for _, b := range blocks {
		if err := c.Insert(b); err != nil {
			t.Fatalf("Insert(%d): %v", b.ID, err)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewFlush(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewFine(-1); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := NewUnits(100, 1); err == nil {
		t.Error("1 unit should be rejected (use NewFlush)")
	}
	if _, err := NewUnits(4, 8); err == nil {
		t.Error("more units than bytes should fail")
	}
}

func TestUnitCapacityRounding(t *testing.T) {
	c, err := NewUnits(103, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 100 {
		t.Fatalf("capacity = %d, want 100 (rounded to 4 equal units)", c.Capacity())
	}
	if c.Units() != 4 {
		t.Fatalf("units = %d, want 4", c.Units())
	}
}

func TestNamesAndUnits(t *testing.T) {
	fl, _ := NewFlush(100)
	un, _ := NewUnits(100, 8)
	fi, _ := NewFine(100)
	if fl.Name() != "FLUSH" || fl.Units() != 1 {
		t.Errorf("flush: %s/%d", fl.Name(), fl.Units())
	}
	if un.Name() != "8-unit" || un.Units() != 8 {
		t.Errorf("unit: %s/%d", un.Name(), un.Units())
	}
	if fi.Name() != "FIFO" || fi.Units() != 0 {
		t.Errorf("fine: %s/%d", fi.Name(), fi.Units())
	}
}

func TestAccessHitMissCounting(t *testing.T) {
	c, _ := NewFine(100)
	if c.Access(1) {
		t.Error("access on empty cache should miss")
	}
	mustInsert(t, c, sb(1, 10))
	if !c.Access(1) {
		t.Error("access after insert should hit")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", *s)
	}
	if s.MissRate() != 0.5 || s.HitRate() != 0.5 {
		t.Fatalf("rates = %g/%g", s.MissRate(), s.HitRate())
	}
}

func TestStatsZeroRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Error("zero-access rates should be 0")
	}
}

func TestInsertValidation(t *testing.T) {
	c, _ := NewFine(100)
	if err := c.Insert(sb(1, 0)); err == nil {
		t.Error("zero size should fail")
	}
	if err := c.Insert(sb(1, -5)); err == nil {
		t.Error("negative size should fail")
	}
	if err := c.Insert(sb(1, 101)); err == nil {
		t.Error("oversized block should fail")
	}
	mustInsert(t, c, sb(1, 10))
	if err := c.Insert(sb(1, 10)); err == nil {
		t.Error("duplicate insert should fail")
	}
}

func TestFineEvictsJustEnough(t *testing.T) {
	c, _ := NewFine(100)
	mustInsert(t, c, sb(1, 40), sb(2, 40), sb(3, 20)) // full
	mustInsert(t, c, sb(4, 30))                       // must evict block 1 only
	if c.Contains(1) {
		t.Error("block 1 should have been evicted")
	}
	for _, id := range []SuperblockID{2, 3, 4} {
		if !c.Contains(id) {
			t.Errorf("block %d should be resident", id)
		}
	}
	s := c.Stats()
	if s.EvictionInvocations != 1 || s.BlocksEvicted != 1 || s.BytesEvicted != 40 {
		t.Fatalf("eviction stats = %+v", *s)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFineEvictsMultipleWhenNeeded(t *testing.T) {
	c, _ := NewFine(100)
	mustInsert(t, c, sb(1, 30), sb(2, 30), sb(3, 40)) // full
	mustInsert(t, c, sb(4, 50))                       // needs blocks 1 and 2 gone
	if c.Contains(1) || c.Contains(2) {
		t.Error("blocks 1 and 2 should have been evicted")
	}
	if !c.Contains(3) || !c.Contains(4) {
		t.Error("blocks 3 and 4 should be resident")
	}
	s := c.Stats()
	if s.EvictionInvocations != 1 || s.BlocksEvicted != 2 {
		t.Fatalf("one invocation should evict both: %+v", *s)
	}
}

func TestFlushEvictsEverything(t *testing.T) {
	c, _ := NewFlush(100)
	mustInsert(t, c, sb(1, 40), sb(2, 40))
	mustInsert(t, c, sb(3, 40)) // overflow -> full flush
	if c.Contains(1) || c.Contains(2) {
		t.Error("flush should have evicted everything old")
	}
	if !c.Contains(3) {
		t.Error("new block should be resident")
	}
	s := c.Stats()
	if s.FullFlushes != 1 || s.BlocksEvicted != 2 || s.BytesEvicted != 80 {
		t.Fatalf("flush stats = %+v", *s)
	}
	if c.Resident() != 1 || c.ResidentBytes() != 40 {
		t.Fatalf("resident = %d blocks / %d bytes", c.Resident(), c.ResidentBytes())
	}
}

func TestFlushAlwaysEmptiesEvenAfterManyLaps(t *testing.T) {
	c, _ := NewFlush(100)
	prevInvocations := uint64(0)
	for i := SuperblockID(1); i <= 40; i++ {
		mustInsert(t, c, sb(i, 33))
		s := c.Stats()
		if s.EvictionInvocations > prevInvocations {
			// A FLUSH eviction must leave only the block just inserted.
			if got := c.Resident(); got != 1 {
				t.Fatalf("insert %d: resident = %d after flush, want 1", i, got)
			}
			prevInvocations = s.EvictionInvocations
		}
	}
	s := c.Stats()
	if s.FullFlushes != s.EvictionInvocations || s.FullFlushes == 0 {
		t.Fatalf("every FLUSH eviction must be a full flush: %+v", *s)
	}
}

func TestUnitEvictsOneUnitAtATime(t *testing.T) {
	// 4 units of 25 bytes each.
	c, _ := NewUnits(100, 4)
	// Blocks of 25 bytes tile exactly one per unit.
	mustInsert(t, c, sb(1, 25), sb(2, 25), sb(3, 25), sb(4, 25))
	mustInsert(t, c, sb(5, 5)) // flush unit 0 (block 1) only
	if c.Contains(1) {
		t.Error("block 1 should be gone with unit 0")
	}
	for _, id := range []SuperblockID{2, 3, 4, 5} {
		if !c.Contains(id) {
			t.Errorf("block %d should be resident", id)
		}
	}
	s := c.Stats()
	if s.EvictionInvocations != 1 || s.BlocksEvicted != 1 {
		t.Fatalf("unit eviction stats = %+v", *s)
	}
	// The rest of the freed 25-byte unit absorbs more small blocks without
	// another eviction invocation.
	mustInsert(t, c, sb(6, 5), sb(7, 5), sb(8, 5))
	if c.Stats().EvictionInvocations != 1 {
		t.Fatal("inserting into freed unit must not evict")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitEvictsStraddler(t *testing.T) {
	// 2 units of 50. Block 2 straddles the unit boundary (40..70).
	c, _ := NewUnits(100, 2)
	mustInsert(t, c, sb(1, 40), sb(2, 30), sb(3, 30)) // full
	mustInsert(t, c, sb(4, 20))
	// Frontier advances to 50; block 2 starts at 40 < 50, so it goes too.
	if c.Contains(1) || c.Contains(2) {
		t.Error("blocks 1 and 2 should be evicted (2 straddles the boundary)")
	}
	if !c.Contains(3) || !c.Contains(4) {
		t.Error("blocks 3 and 4 should be resident")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionInvocationOrdering(t *testing.T) {
	// Comparing granularities on the same insert stream: coarser units mean
	// fewer invocations — the Figure 8 effect in miniature.
	stream := make([]Superblock, 60)
	for i := range stream {
		stream[i] = sb(SuperblockID(i+1), 10)
	}
	run := func(c Cache) uint64 {
		for _, b := range stream {
			if !c.Access(b.ID) {
				mustInsert(t, c, b)
			}
		}
		return c.Stats().EvictionInvocations
	}
	flush, _ := NewFlush(100)
	units4, _ := NewUnits(100, 4)
	fine, _ := NewFine(100)
	nf, n4, nn := run(flush), run(units4), run(fine)
	if !(nf <= n4 && n4 <= nn) {
		t.Fatalf("invocations should grow with granularity: flush=%d 4-unit=%d fine=%d", nf, n4, nn)
	}
	if nn != 50 {
		t.Fatalf("fine-grained: one eviction per overflow insert, got %d", nn)
	}
}

func TestManualFlush(t *testing.T) {
	c, _ := NewUnits(100, 4)
	c.Flush() // empty flush is a no-op
	if c.Stats().EvictionInvocations != 0 {
		t.Error("flushing an empty cache should not count")
	}
	mustInsert(t, c, sb(1, 10), sb(2, 10))
	c.Flush()
	if c.Resident() != 0 || c.Stats().FullFlushes != 1 {
		t.Fatalf("manual flush failed: resident=%d stats=%+v", c.Resident(), *c.Stats())
	}
}

func TestSampleRecording(t *testing.T) {
	c, _ := NewFine(50)
	c.SetSampleRecording(true)
	mustInsert(t, c, sb(1, 30), sb(2, 20))
	mustInsert(t, c, sb(3, 25)) // evicts block 1
	samples := c.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(samples))
	}
	if samples[0].Bytes != 30 || samples[0].Blocks != 1 {
		t.Fatalf("sample = %+v", samples[0])
	}
}

func TestQueueCompaction(t *testing.T) {
	c, _ := NewFine(64)
	// Thousands of insertions force the dead-prefix compaction path.
	for i := 0; i < 5000; i++ {
		id := SuperblockID(i)
		if !c.Access(id) {
			mustInsert(t, c, sb(id, 16))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(c.queue) > 4096 {
		t.Fatalf("queue never compacted: len=%d", len(c.queue))
	}
}

// Property test: a random access/insert stream preserves every structural
// invariant under all three granularities.
func TestFIFOInvariantsUnderRandomWorkload(t *testing.T) {
	r := stats.NewRand(99, 5)
	caches := []*FIFOCache{}
	fl, _ := NewFlush(1000)
	u8, _ := NewUnits(1000, 8)
	fi, _ := NewFine(1000)
	caches = append(caches, fl, u8, fi)

	sizes := make(map[SuperblockID]int)
	for step := 0; step < 20000; step++ {
		id := SuperblockID(r.Intn(300))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		var links []SuperblockID
		for i := 0; i < r.Geometric(1.7) && i < 6; i++ {
			links = append(links, SuperblockID(r.Intn(300)))
		}
		for _, c := range caches {
			if !c.Access(id) {
				if err := c.Insert(Superblock{ID: id, Size: size, Links: links}); err != nil {
					t.Fatalf("%s step %d: %v", c.Name(), step, err)
				}
			}
		}
		if step%2000 == 0 {
			for _, c := range caches {
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("%s step %d: %v", c.Name(), step, err)
				}
			}
		}
	}
	for _, c := range caches {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s final: %v", c.Name(), err)
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("%s: hits+misses != accesses: %+v", c.Name(), *s)
		}
		if s.InsertedBlocks != s.Misses {
			t.Fatalf("%s: inserted %d != misses %d", c.Name(), s.InsertedBlocks, s.Misses)
		}
		if got := uint64(c.Resident()); s.InsertedBlocks-s.BlocksEvicted != got {
			t.Fatalf("%s: inserted-evicted=%d, resident=%d", c.Name(), s.InsertedBlocks-s.BlocksEvicted, got)
		}
		if c.ResidentBytes() > c.Capacity() {
			t.Fatalf("%s: resident bytes exceed capacity", c.Name())
		}
	}
}
