package core

import (
	"strings"
	"testing"
)

// TestParsePolicyRoundTrip pins ParsePolicy against Policy.String for
// the whole policy zoo, plus the documented aliases and rejections.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{
		{Kind: PolicyFlush},
		{Kind: PolicyUnits, Units: 8},
		{Kind: PolicyFine},
		{Kind: PolicyLRU},
		{Kind: PolicyCompactingLRU},
		{Kind: PolicyAdaptive},
		{Kind: PolicyPreemptive},
		{Kind: PolicyGenerational, Units: 4},
	} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", p.String(), got, p)
		}
	}
	aliases := map[string]Policy{
		"fine":             {Kind: PolicyFine},
		"preemptive-flush": {Kind: PolicyPreemptive},
		"1-unit":           {Kind: PolicyFlush},
		"generational":     {Kind: PolicyGenerational, Units: 8},
		"  LRU  ":          {Kind: PolicyLRU},
	}
	for in, want := range aliases {
		got, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "clock", "0-unit", "x-unit", "generational/0", "generational/x"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) should fail", bad)
		}
	}
	if _, err := (Policy{Kind: PolicyKind(99)}).New(1024); err == nil {
		t.Error("New with unknown policy kind should fail")
	}
	if s := (Policy{Kind: PolicyKind(99)}).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown policy String = %q", s)
	}
}

// TestEngineAccessors covers the kernel-facing engine surface: the
// EngineBacked handle, the bound policy, the hoisted observer flags, and
// the DBT's eviction hook.
func TestEngineAccessors(t *testing.T) {
	c, err := NewLRU(256)
	if err != nil {
		t.Fatal(err)
	}
	eng := c.ReplayEngine()
	if eng.BoundPolicy().(*LRUCache) != c {
		t.Error("BoundPolicy does not return the constructing cache")
	}
	if hits, misses := eng.Observers(); !hits || misses {
		t.Errorf("LRU Observers = (%v, %v), want (true, false)", hits, misses)
	}
	c.ObserveMiss(0) // declared unobserved; must be a safe no-op
	c.Reserve(63)
	if c.LargestHole() != 256 {
		t.Errorf("LargestHole = %d, want the whole arena", c.LargestHole())
	}
	var hooked []SuperblockID
	eng.SetEvictHook(func(ids []SuperblockID) { hooked = append(hooked, ids...) })
	for id := SuperblockID(0); id < 5; id++ {
		if err := c.Insert(Superblock{ID: id, Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if len(hooked) == 0 {
		t.Error("eviction hook never fired under overflow")
	}
	if _, ok := eng.Where(SuperblockID(1000)); ok {
		t.Error("Where reported an offset for a non-resident block")
	}

	f, err := NewFine(256)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := f.ReplayEngine().Observers(); hits || misses {
		t.Errorf("FIFO Observers = (%v, %v), want (false, false)", hits, misses)
	}
	var pol VictimPolicy = f
	pol.ObserveHit(0) // declared unobserved; must be safe no-ops
	pol.ObserveMiss(0)
}

// TestGenerationalReplaySurface covers the composite's kernel-facing
// API: geometry accessors, Reserve, frozen links, lazy patched counting,
// batched counters, and the census/byte views.
func TestGenerationalReplaySurface(t *testing.T) {
	g, err := NewGenerational(4096, 0.25, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() == "" {
		t.Error("empty Name")
	}
	if g.Units() < 1 {
		t.Errorf("Units = %d", g.Units())
	}
	if g.PromotionThreshold() != 2 {
		t.Errorf("PromotionThreshold = %d, want 2", g.PromotionThreshold())
	}
	g.Reserve(7)
	blocks := []Superblock{
		{ID: 0, Size: 64, Links: []SuperblockID{1}},
		{ID: 1, Size: 64},
	}
	g.FreezeLinks(blocks, false)
	g.SetLazyPatchedCount(true)
	for _, sb := range blocks {
		if err := g.Insert(sb); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.PatchedLinks(); got != 1 {
		t.Errorf("PatchedLinks = %d, want 1", got)
	}
	if got := g.ResidentBytes(); got != 128 {
		t.Errorf("ResidentBytes = %d, want 128", got)
	}
	intra, inter := g.LinkCensus()
	if intra+inter != 1 {
		t.Errorf("LinkCensus = (%d, %d), want one live link", intra, inter)
	}
	before := *g.Stats()
	g.BatchAccessStats(10, 7)
	st := g.Stats()
	if st.Accesses != before.Accesses+10 || st.Hits != before.Hits+7 || st.Misses != before.Misses+3 {
		t.Errorf("BatchAccessStats folded to %+v from %+v", st, before)
	}
	// Two nursery hits promote (threshold 2); HitFast is the kernel path.
	if !g.HitFast(0) || !g.HitFast(0) {
		t.Fatal("resident block missed")
	}
	if !g.Tenured().Contains(0) {
		t.Error("block 0 not promoted after reaching the hit threshold")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
