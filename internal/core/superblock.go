// Package core implements the paper's primary contribution: a
// software-managed code cache with pluggable eviction granularity.
//
// The cache stores variable-size superblocks (single-entry multiple-exit
// translated regions) in a byte-addressed arena. Eviction granularity
// spans the spectrum studied in the paper:
//
//   - FLUSH: the whole cache is one eviction unit (Dynamo, Mojo per-half)
//   - medium-grained: the cache is split into n equal units, flushed in
//     circular FIFO order (the paper's proposal, Figure 5)
//   - fine-grained FIFO: evict just enough of the oldest superblocks to
//     fit the incoming one (DynamoRIO's bounded-cache mode)
//
// All three are a single mechanism here: a circular FIFO byte buffer whose
// eviction frontier advances in chunks aligned to a configurable quantum
// (capacity, capacity/n, or exact-fit). The package also implements the
// superblock-chaining machinery of Section 3.1/5: outbound links, a
// back-pointer table, intra- vs inter-unit link classification, and the
// unlink accounting that feeds Equation 4.
package core

import "fmt"

// SuperblockID identifies a superblock by the source-program region it was
// translated from. IDs are assigned by the frontend (DBT or trace
// synthesizer) and stay stable across eviction and regeneration.
//
// Dense-ID invariant: every cache in this package indexes its residency
// and link tables by ID, so frontends must assign IDs densely from 0 (the
// DBT, the workload synthesizer, and the interleaver all do). Sparse IDs
// still work but waste table memory proportional to the largest ID;
// MaxSuperblockID bounds the damage.
type SuperblockID uint32

// MaxSuperblockID is the largest ID the dense-indexed caches accept
// (inclusive). 1<<26 IDs keep worst-case table footprints in the
// low gigabytes; every in-repo frontend stays far below it.
const MaxSuperblockID SuperblockID = 1<<26 - 1

// validateID rejects IDs that would blow up the dense tables.
func validateID(id SuperblockID) error {
	if id > MaxSuperblockID {
		return fmt.Errorf("core: superblock ID %d exceeds the dense-ID limit %d", id, MaxSuperblockID)
	}
	return nil
}

// Superblock describes one translated region as presented to the cache.
// The same value is re-presented when a region is regenerated after
// eviction.
type Superblock struct {
	ID    SuperblockID
	SrcPC uint64 // source PC of the region entry (diagnostic)
	Size  int    // bytes occupied in the code cache
	// Links lists the superblocks this one branches to (chaining
	// candidates). A link to the block's own ID is a self-loop; such links
	// never cross unit boundaries, which is why even the finest granularity
	// keeps some intra-unit links (Figure 13).
	Links []SuperblockID
}

// Stats accumulates the event counts from which all paper overheads are
// computed. Counters are cumulative for the lifetime of a cache.
type Stats struct {
	Accesses uint64 // calls to Access
	Hits     uint64 // accesses that found the block resident
	Misses   uint64 // accesses that did not

	InsertedBlocks uint64 // blocks (re)generated into the cache
	InsertedBytes  uint64 // total bytes regenerated (drives Equation 3)

	EvictionInvocations uint64 // times the eviction mechanism ran (Figure 8)
	BlocksEvicted       uint64 // superblocks removed
	BytesEvicted        uint64 // bytes removed (drives Equation 2)
	FullFlushes         uint64 // invocations that emptied the entire cache

	LinksPatched   uint64 // links patched into cached code
	PendingRelinks uint64 // subset of LinksPatched resolved from the pending table

	UnlinkEvents          uint64 // evicted blocks that had inbound links to remove
	InterUnitLinksRemoved uint64 // inbound links unpatched one by one (drives Equation 4)
	IntraUnitLinksFlushed uint64 // links that died for free with their region
}

// MissRate returns Misses / Accesses, or 0 before any access.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits / Accesses, or 0 before any access.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// EvictionSample records one eviction invocation for the simulated PAPI
// measurements behind Figure 9: how many bytes and blocks were evicted and
// how many inter-unit links had to be unpatched.
type EvictionSample struct {
	Bytes        int
	Blocks       int
	LinksRemoved int
}

// Cache is the interface shared by every eviction policy in this package.
type Cache interface {
	// Name identifies the policy, e.g. "FLUSH", "8-unit", "FIFO", "LRU".
	Name() string
	// Capacity returns the managed arena size in bytes.
	Capacity() int
	// Units returns the number of eviction units (1 for FLUSH); 0 means
	// per-block (fine-grained) eviction.
	Units() int
	// Contains reports residency without touching access statistics.
	Contains(id SuperblockID) bool
	// Access looks up id, recording a hit or miss, and returns whether it
	// was a hit. On a miss the caller regenerates the block and calls
	// Insert.
	Access(id SuperblockID) bool
	// Insert places a regenerated superblock into the cache, evicting as
	// required by the policy. Inserting a block that is already resident
	// or that cannot fit is an error.
	Insert(sb Superblock) error
	// AddLink declares (and if possible patches) a chaining link from a
	// resident block to a target. Declaring a link from a non-resident
	// block is an error.
	AddLink(from, to SuperblockID) error
	// Resident returns the number of cached superblocks.
	Resident() int
	// ResidentBytes returns the bytes currently occupied.
	ResidentBytes() int
	// LinkCensus classifies currently patched links into intra-unit and
	// inter-unit populations (Figure 13).
	LinkCensus() (intra, inter int)
	// BackPtrTableBytes returns the memory footprint of the back-pointer
	// table at 16 bytes per patched link (Section 5.1).
	BackPtrTableBytes() int
	// Flush empties the cache as one eviction invocation.
	Flush()
	// Stats exposes the cumulative counters.
	Stats() *Stats
}
