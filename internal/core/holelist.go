package core

// holeList indexes the free regions of the LRU arena: a two-level
// chunked sorted array, ordered by hole offset. It replaces first a
// sorted slice (linear scans and memmoves over the whole hole set) and
// then an augmented treap (whose per-level recursion and max-repair
// overhead dominated replay profiles): holes live in small fixed-size
// buckets, with the per-bucket minimum offset and maximum hole size
// mirrored in two flat summary arrays. Every operation is a short
// linear scan of the summaries followed by a scan or memmove inside one
// bucket — a few L1-resident cache lines, no pointers, no rebalancing —
// and the steady state allocates nothing once the bucket array reaches
// its high-water mark.
//
// The summary scans stay deliberately linear: a segment tree over the
// bucket maxima was tried and measured slower on the replay benchmark,
// because eviction bursts grow a hole on almost every victim — the
// update stream is raise-dominated — and the tree pays an O(log
// buckets) chain of dependent loads per raise, where the flat
// summaries absorb a raise with two compares. Lowers (the expensive
// linear rescans) are rare: only when the group or global maximum
// itself shrinks.
//
// Offsets and sizes are int32: NewLRU rejects capacities beyond int32
// range, far above any code cache the paper considers.
type holeList struct {
	// minOff[i] and bmax[i] summarize buckets[i]: its first (lowest)
	// hole offset and its largest hole size. Kept as flat parallel
	// arrays so locate and first-fit scans touch contiguous memory.
	minOff []int32
	bmax   []int32
	bucks  []holeBucket
	count  int

	// smax[g] is the largest hole size across buckets [g*holeGroup,
	// (g+1)*holeGroup), and gmax the exact global maximum — a third
	// summary level above bmax. First-fit scans consult gmax to fail in
	// O(1) (the common case under pressure: every insert tries
	// allocFirstFit before evicting) and smax to skip 64 buckets at a
	// time; heavily fragmented arenas hold thousands of small holes, and
	// without the group level every successful allocation waded through
	// hundreds of bucket maxima. Rescans happen only when a group's (or
	// the global) maximum shrinks, far rarer than the scans they save.
	smax []int32
	gmax int32
}

// holeGroup is the number of buckets summarized per smax entry.
const holeGroup = 64

// holeBucketCap is the fan-out: buckets split at this size and are
// removed when they empty. 32 int32 pairs keep one bucket at four cache
// lines while a ~1000-hole arena needs only ~40-60 summary entries.
const holeBucketCap = 32

type holeBucket struct {
	n     int32
	offs  [holeBucketCap]int32
	sizes [holeBucketCap]int32
}

// reset empties the index, then installs a single hole covering
// [off, off+size) when size > 0.
func (l *holeList) reset(off, size int) {
	l.minOff = l.minOff[:0]
	l.bmax = l.bmax[:0]
	l.bucks = l.bucks[:0]
	l.smax = l.smax[:0]
	l.count = 0
	l.gmax = 0
	if size > 0 {
		l.insert(off, size)
	}
}

// insertBucket opens an empty bucket at position bi. The bucket shift
// moves every later bmax entry across group boundaries, so the group
// summaries are rebuilt wholesale — one pass over bmax, on the rare
// split/empty path only.
func (l *holeList) insertBucket(bi int) {
	l.minOff = append(l.minOff, 0)
	copy(l.minOff[bi+1:], l.minOff[bi:])
	l.bmax = append(l.bmax, 0)
	copy(l.bmax[bi+1:], l.bmax[bi:])
	l.bucks = append(l.bucks, holeBucket{})
	copy(l.bucks[bi+1:], l.bucks[bi:])
	l.bucks[bi] = holeBucket{}
	l.rebuildSmax()
}

// removeBucket drops the (empty) bucket at bi.
func (l *holeList) removeBucket(bi int) {
	l.minOff = append(l.minOff[:bi], l.minOff[bi+1:]...)
	l.bmax = append(l.bmax[:bi], l.bmax[bi+1:]...)
	l.bucks = append(l.bucks[:bi], l.bucks[bi+1:]...)
	l.rebuildSmax()
}

// rebuildSmax recomputes every group summary from bmax.
func (l *holeList) rebuildSmax() {
	ng := (len(l.bmax) + holeGroup - 1) / holeGroup
	for cap(l.smax) < ng {
		l.smax = append(l.smax[:cap(l.smax)], 0)
	}
	l.smax = l.smax[:ng]
	for gi := 0; gi < ng; gi++ {
		l.rescanSmax(gi)
	}
}

// rescanSmax recomputes group gi's summary from its bucket maxima.
func (l *holeList) rescanSmax(gi int) {
	base := gi * holeGroup
	end := base + holeGroup
	if end > len(l.bmax) {
		end = len(l.bmax)
	}
	m := int32(0)
	for _, v := range l.bmax[base:end] {
		if v > m {
			m = v
		}
	}
	l.smax[gi] = m
}

// bmaxRaised propagates a grown bucket maximum up the summary levels.
func (l *holeList) bmaxRaised(bi int, size int32) {
	if gi := bi / holeGroup; size > l.smax[gi] {
		l.smax[gi] = size
	}
	if size > l.gmax {
		l.gmax = size
	}
}

// bmaxLowered repairs the summary levels after bucket bi's maximum
// dropped from old (bmax[bi] must already hold the new value).
func (l *holeList) bmaxLowered(bi int, old int32) {
	gi := bi / holeGroup
	if old != l.smax[gi] {
		return
	}
	l.rescanSmax(gi)
	if old == l.gmax {
		l.rescanGmax()
	}
}

// recomputeMax refreshes bmax[bi] from the bucket's entries.
func (l *holeList) recomputeMax(bi int) {
	b := &l.bucks[bi]
	m := int32(0)
	for j := int32(0); j < b.n; j++ {
		if b.sizes[j] > m {
			m = b.sizes[j]
		}
	}
	l.bmax[bi] = m
}

// split halves the full bucket bi, moving its upper entries into a new
// successor bucket.
func (l *holeList) split(bi int) {
	l.insertBucket(bi + 1)
	lo, hi := &l.bucks[bi], &l.bucks[bi+1]
	half := int32(holeBucketCap / 2)
	copy(hi.offs[:], lo.offs[half:])
	copy(hi.sizes[:], lo.sizes[half:])
	hi.n = holeBucketCap - half
	lo.n = half
	l.minOff[bi+1] = hi.offs[0]
	l.recomputeMax(bi)
	l.recomputeMax(bi + 1)
	// Both bucket maxima may have dropped from the pre-split value; the
	// entry multiset is unchanged, so gmax holds, but the groups rescan.
	l.rescanSmax(bi / holeGroup)
	if g := (bi + 1) / holeGroup; g != bi/holeGroup {
		l.rescanSmax(g)
	}
}

// insertEntry places a hole at position j of bucket bi, splitting first
// when the bucket is full.
func (l *holeList) insertEntry(bi int, j, off, size int32) {
	if l.bucks[bi].n == holeBucketCap {
		l.split(bi)
		if j > l.bucks[bi].n {
			j -= l.bucks[bi].n
			bi++
		}
	}
	b := &l.bucks[bi]
	copy(b.offs[j+1:b.n+1], b.offs[j:b.n])
	copy(b.sizes[j+1:b.n+1], b.sizes[j:b.n])
	b.offs[j], b.sizes[j] = off, size
	b.n++
	if j == 0 {
		l.minOff[bi] = off
	}
	if size > l.bmax[bi] {
		l.bmax[bi] = size
		l.bmaxRaised(bi, size)
	}
	l.count++
}

// deleteEntry removes entry j of bucket bi, dropping the bucket when it
// empties.
func (l *holeList) deleteEntry(bi int, j int32) {
	b := &l.bucks[bi]
	old := b.sizes[j]
	copy(b.offs[j:b.n-1], b.offs[j+1:b.n])
	copy(b.sizes[j:b.n-1], b.sizes[j+1:b.n])
	b.n--
	l.count--
	if b.n == 0 {
		l.removeBucket(bi)
		if old == l.gmax {
			l.rescanGmax()
		}
		return
	}
	if j == 0 {
		l.minOff[bi] = b.offs[0]
	}
	if old == l.bmax[bi] {
		l.recomputeMax(bi)
		l.bmaxLowered(bi, old)
	}
}

// rescanGmax recomputes the cached global maximum from the group
// summaries. Called only when a hole of size gmax shrinks or disappears.
func (l *holeList) rescanGmax() {
	m := int32(0)
	for _, v := range l.smax {
		if v > m {
			m = v
		}
	}
	l.gmax = m
}

// insert adds a hole; offsets are unique by construction (holes never
// overlap).
func (l *holeList) insert(off, size int) {
	o, s := int32(off), int32(size)
	if len(l.bucks) == 0 {
		l.insertBucket(0)
		l.insertEntry(0, 0, o, s)
		return
	}
	bi := l.locate(o)
	if bi < 0 {
		bi = 0
	}
	b := &l.bucks[bi]
	j := int32(0)
	for j < b.n && b.offs[j] < o {
		j++
	}
	l.insertEntry(bi, j, o, s)
}

// locate returns the last bucket whose minimum offset is <= off, or -1
// when off precedes every bucket. Unlike the first-fit scan over the
// size maxima (where the linear walk wins — see the type comment), this
// is a pure predecessor search over a sorted array, and with bursty
// workloads calling it per freed region the binary search measures
// clearly faster once the arena holds more than a handful of buckets.
func (l *holeList) locate(off int32) int {
	lo, hi := 0, len(l.minOff)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.minOff[mid] <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// allocFirstFit carves take bytes off the lowest-offset hole of at
// least take bytes: one pass over the bucket maxima, one scan inside
// the first qualifying bucket.
func (l *holeList) allocFirstFit(take int) (off int, ok bool) {
	t := int32(take)
	if t > l.gmax {
		// No hole can fit: the common case under pressure, answered
		// without touching the summaries.
		return 0, false
	}
	for gi, gm := range l.smax {
		if gm < t {
			continue
		}
		base := gi * holeGroup
		end := base + holeGroup
		if end > len(l.bmax) {
			end = len(l.bmax)
		}
		for bi := base; bi < end; bi++ {
			if l.bmax[bi] < t {
				continue
			}
			b := &l.bucks[bi]
			for j := int32(0); j < b.n; j++ {
				if b.sizes[j] < t {
					continue
				}
				off = int(b.offs[j])
				if b.sizes[j] == t {
					l.deleteEntry(bi, j)
					return off, true
				}
				b.offs[j] += t
				b.sizes[j] -= t
				if j == 0 {
					l.minOff[bi] = b.offs[0]
				}
				if old := b.sizes[j] + t; old == l.bmax[bi] {
					l.recomputeMax(bi)
					l.bmaxLowered(bi, old)
				}
				return off, true
			}
		}
	}
	return 0, false
}

// freeAndTake returns the region [off, off+size) to the index,
// coalescing it with adjacent holes, and — when the merged hole reaches
// want bytes — immediately re-carves its first want bytes for the
// caller, reporting the placement. This is the whole per-victim cost of
// the LRU eviction loop.
//
// Checking only the merged hole suffices for the caller's first-fit
// placement: freeAndTake runs after a failed allocFirstFit, so no other
// hole fits want bytes, and each call touches exactly one region — the
// merged hole is the unique candidate, and when it fits it is the first
// fit by construction.
func (l *holeList) freeAndTake(off, size, want int) (place int, taken bool) {
	o, s, w := int32(off), int32(size), int32(want)
	bi := l.locate(o)

	// Bracket the freed region: with minOff[bi] <= o the predecessor is
	// always inside bucket bi; the successor is the next entry, possibly
	// the first of the next bucket.
	pj := int32(-1)
	predAdj, succAdj := false, false
	var sbi int
	var sj int32
	if bi >= 0 {
		b := &l.bucks[bi]
		pj = b.n - 1
		for b.offs[pj] > o {
			pj--
		}
		predAdj = b.offs[pj]+b.sizes[pj] == o
		sbi, sj = bi, pj+1
		if sj == b.n {
			sbi, sj = bi+1, 0
		}
	} else {
		sbi, sj = 0, 0
	}
	if sbi < len(l.bucks) {
		succAdj = o+s == l.bucks[sbi].offs[sj]
	}

	moff, msize := o, s
	if predAdj {
		moff = l.bucks[bi].offs[pj]
		msize += l.bucks[bi].sizes[pj]
	}
	if succAdj {
		msize += l.bucks[sbi].sizes[sj]
	}
	taken = msize >= w
	if taken {
		place = int(moff)
	}

	switch {
	case predAdj && succAdj:
		// The predecessor absorbs everything; deleting the successor
		// (a higher entry, or a later bucket) leaves (bi, pj) stable.
		l.deleteEntry(sbi, sj)
		l.setEntry(bi, pj, moff, msize, w, taken)
	case predAdj:
		l.setEntry(bi, pj, moff, msize, w, taken)
	case succAdj:
		l.setEntry(sbi, sj, moff, msize, w, taken)
	default:
		if !taken {
			if bi >= 0 {
				l.insertEntry(bi, pj+1, o, s)
			} else if len(l.bucks) == 0 {
				l.insertBucket(0)
				l.insertEntry(0, 0, o, s)
			} else {
				l.insertEntry(0, 0, o, s)
			}
		} else if msize > w {
			// The freed region alone fits: the remainder is a fresh hole.
			l.insert(int(moff+w), int(msize-w))
		}
	}
	return place, taken
}

// setEntry rewrites the merged hole at (bi, j) to (off, size), carving
// its first want bytes when taken. The rewritten bounds stay strictly
// between the entry's neighbors (the merge consumed the only regions in
// between), so the position is preserved.
func (l *holeList) setEntry(bi int, j, off, size, want int32, taken bool) {
	if taken {
		if size == want {
			l.deleteEntry(bi, j)
			return
		}
		off += want
		size -= want
	}
	b := &l.bucks[bi]
	old := b.sizes[j]
	b.offs[j], b.sizes[j] = off, size
	if j == 0 {
		l.minOff[bi] = off
	}
	switch {
	case size > l.bmax[bi]:
		l.bmax[bi] = size
		l.bmaxRaised(bi, size)
	case old == l.bmax[bi] && size < old:
		l.recomputeMax(bi)
		l.bmaxLowered(bi, old)
	}
}

// largest returns the biggest hole size, 0 when the arena is full.
func (l *holeList) largest() int { return int(l.gmax) }

// freeRunAndTake retires a whole eviction burst in one fused pass: it
// frees the regions offs[i]..offs[i]+sizes[i] in order, merging each
// into the index exactly as freeAndTake would, and stops the moment the
// merged hole containing the just-freed region reaches want bytes —
// carving the placement from that hole's base. It returns the placement,
// whether it fit, and how many regions were consumed; unconsumed regions
// are untouched.
//
// Fusing the burst into one pass buys two things over calling
// freeAndTake per victim. First, the bracket of the hole grown by the
// previous region is carried across iterations: when the next region
// extends that same hole — the common case, because first-fit places
// insertion-order neighbors at adjacent offsets and LRU evicts them in
// insertion-adjacent runs — the predecessor search is skipped entirely
// and the hole grows in place. Second, the want check runs against the
// one merged hole each region touches, which is the unique first-fit
// candidate: no other hole fit want bytes when the burst began, and no
// earlier region's merge reached want (or the pass would have stopped).
func (l *holeList) freeRunAndTake(offs, sizes []int32, want int) (place int, taken bool, used int) {
	w := int32(want)
	// Bracket cache: the entry grown by the previous region — its bucket,
	// index, and bounds. Valid only when cbi >= 0. Eviction runs walk
	// address-clustered blocks in both directions, so a region abutting
	// the cached hole on either side skips the predecessor search.
	cbi := -1
	var cj, cstart, cend int32
	for used = 0; used < len(offs); used++ {
		o, s := offs[used], sizes[used]

		var bi int
		var pj, sj int32
		var sbi int
		predAdj := false
		succAdj := false
		if cbi >= 0 && o == cend {
			// The region extends the hole the previous region grew: the
			// bracket is already known, no predecessor search needed.
			bi, pj, predAdj = cbi, cj, true
			sbi, sj = bi, pj+1
			if sj == l.bucks[bi].n {
				sbi, sj = bi+1, 0
			}
			succAdj = sbi < len(l.bucks) && o+s == l.bucks[sbi].offs[sj]
		} else if cbi >= 0 && o+s == cstart {
			// The region grows the cached hole downward: the cached entry
			// is the successor; its in-bucket predecessor is one step away.
			sbi, sj, succAdj = cbi, cj, true
			if cj > 0 {
				bi, pj = cbi, cj-1
			} else if cbi > 0 {
				bi, pj = cbi-1, l.bucks[cbi-1].n-1
			} else {
				bi, pj = -1, -1
			}
			predAdj = pj >= 0 && l.bucks[bi].offs[pj]+l.bucks[bi].sizes[pj] == o
			if !predAdj {
				// The switch below distinguishes pred/succ merges by the
				// flags; bi/pj are only read when predAdj holds.
				bi, pj = sbi, sj-1
			}
		} else {
			if bi = l.locate(o); bi >= 0 {
				b := &l.bucks[bi]
				pj = b.n - 1
				for b.offs[pj] > o {
					pj--
				}
				predAdj = b.offs[pj]+b.sizes[pj] == o
				sbi, sj = bi, pj+1
				if sj == b.n {
					sbi, sj = bi+1, 0
				}
			} else {
				pj = -1
				sbi, sj = 0, 0
			}
			succAdj = sbi < len(l.bucks) && o+s == l.bucks[sbi].offs[sj]
		}

		moff, msize := o, s
		if predAdj {
			moff = l.bucks[bi].offs[pj]
			msize += l.bucks[bi].sizes[pj]
		}
		if succAdj {
			msize += l.bucks[sbi].sizes[sj]
		}
		taken = msize >= w
		if taken {
			place = int(moff)
		}

		switch {
		case predAdj && succAdj:
			// The predecessor absorbs everything; deleting the successor
			// (a higher entry, or a later bucket) leaves (bi, pj) stable.
			l.deleteEntry(sbi, sj)
			l.setEntry(bi, pj, moff, msize, w, taken)
			cbi, cj, cstart, cend = bi, pj, moff, moff+msize
		case predAdj:
			l.setEntry(bi, pj, moff, msize, w, taken)
			cbi, cj, cstart, cend = bi, pj, moff, moff+msize
		case succAdj:
			l.setEntry(sbi, sj, moff, msize, w, taken)
			cbi, cj, cstart, cend = sbi, sj, moff, moff+msize
		default:
			if !taken {
				// A fresh hole; inserting may split buckets, so the
				// bracket cache is invalidated rather than chased.
				cbi = -1
				if bi >= 0 {
					l.insertEntry(bi, pj+1, o, s)
				} else if len(l.bucks) == 0 {
					l.insertBucket(0)
					l.insertEntry(0, 0, o, s)
				} else {
					l.insertEntry(0, 0, o, s)
				}
			} else if msize > w {
				// The freed region alone fits: the remainder is a fresh hole.
				l.insert(int(moff+w), int(msize-w))
			}
		}
		if taken {
			used++
			return place, true, used
		}
	}
	return 0, false, used
}

// ascend visits every hole in offset order.
func (l *holeList) ascend(fn func(off, size int)) {
	for bi := range l.bucks {
		b := &l.bucks[bi]
		for j := int32(0); j < b.n; j++ {
			fn(int(b.offs[j]), int(b.sizes[j]))
		}
	}
}

// checkInvariants validates the chunked-array structure: bucket sizes,
// summary mirrors, global offset order, and the entry count.
func (l *holeList) checkInvariants() error {
	if len(l.minOff) != len(l.bucks) || len(l.bmax) != len(l.bucks) {
		return errHoleSummary
	}
	total := 0
	last := int32(-1)
	for bi := range l.bucks {
		b := &l.bucks[bi]
		if b.n < 1 || b.n > holeBucketCap {
			return errHoleBucketSize
		}
		if l.minOff[bi] != b.offs[0] {
			return errHoleSummary
		}
		m := int32(0)
		for j := int32(0); j < b.n; j++ {
			if b.offs[j] <= last {
				return errHoleOrder
			}
			last = b.offs[j]
			if b.sizes[j] > m {
				m = b.sizes[j]
			}
		}
		if l.bmax[bi] != m {
			return errHoleSummary
		}
		total += int(b.n)
	}
	if total != l.count {
		return errHoleCount
	}
	ng := (len(l.bmax) + holeGroup - 1) / holeGroup
	if len(l.smax) != ng {
		return errHoleGmax
	}
	g := int32(0)
	for gi := 0; gi < ng; gi++ {
		base := gi * holeGroup
		end := base + holeGroup
		if end > len(l.bmax) {
			end = len(l.bmax)
		}
		m := int32(0)
		for _, v := range l.bmax[base:end] {
			if v > m {
				m = v
			}
		}
		if l.smax[gi] != m {
			return errHoleGmax
		}
		if m > g {
			g = m
		}
	}
	if l.gmax != g {
		return errHoleGmax
	}
	return nil
}

var (
	errHoleOrder      = holeListError("hole list violates offset order")
	errHoleSummary    = holeListError("hole list summary arrays stale")
	errHoleBucketSize = holeListError("hole list bucket size out of range")
	errHoleCount      = holeListError("hole list count stale")
	errHoleGmax       = holeListError("hole list cached global max stale")
)

type holeListError string

func (e holeListError) Error() string { return string(e) }
