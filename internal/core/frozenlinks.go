package core

// FrozenAdjacency is the immutable CSR form of a trace's declared-link
// relation: forward and reverse edge arrays over dense SuperblockIDs.
// It used to live inside each cache's linkTable, rebuilt per run; pulling
// it out makes the (per-run-static, read-only) graph shareable across
// every cache simulating the same trace — the multi-configuration sweep
// kernel drives dozens of cache states off one adjacency, and sweep
// workers replaying the same trace under different policies share it
// instead of re-deduplicating the link rows per (policy, pressure) job.
//
// A FrozenAdjacency is immutable after construction and safe for
// concurrent readers. All mutable link state (residency, patched counts,
// eviction marks) stays in the owning linkTable.
type FrozenAdjacency struct {
	n         int
	foutIdx   []int32
	foutEdges []SuperblockID
	finIdx    []int32
	finEdges  []SuperblockID
	// rowsExact means no raw link was dropped during construction (no
	// duplicates, no out-of-range targets), so every frozen row equals
	// its raw row and declaration-time stats can be counted from the CSR
	// row alone.
	rowsExact bool
	// linksValid means every raw link row passed validateID at build
	// time, so insert paths bound to redeclare the row verbatim can skip
	// re-validating it.
	linksValid bool
}

// NewFrozenAdjacency compiles a dense (ID-indexed) block table's link
// rows into CSR form. Targets outside [0, len(blocks)) can never become
// resident under the frozen contract, so edges to them are inert and
// excluded from the relation; duplicate declarations collapse to one
// edge. See linkTable.freeze for how declaration-time stats still honor
// the raw rows when either reduction applies.
func NewFrozenAdjacency(blocks []Superblock) *FrozenAdjacency {
	n := len(blocks)
	fa := &FrozenAdjacency{
		n:       n,
		foutIdx: make([]int32, n+1),
		finIdx:  make([]int32, n+1),
	}
	if n == 0 {
		return fa
	}
	// Pass 1: deduplicated out- and in-degrees.
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	total := int32(0)
	raw := int32(0)
	fa.linksValid = true
	for id := range blocks {
		links := blocks[id].Links
		raw += int32(len(links))
		for i, to := range links {
			if validateID(to) != nil {
				fa.linksValid = false
			}
			if int(to) >= n || contains(links[:i], to) {
				continue
			}
			outDeg[id]++
			inDeg[to]++
			total++
		}
	}
	fa.rowsExact = total == raw
	var o int32
	for id := 0; id < n; id++ {
		fa.foutIdx[id] = o
		o += outDeg[id]
	}
	fa.foutIdx[n] = o
	o = 0
	for id := 0; id < n; id++ {
		fa.finIdx[id] = o
		o += inDeg[id]
	}
	fa.finIdx[n] = o
	// Pass 2: fill. Deduplicating the forward rows deduplicates the
	// reverse rows for free (each edge contributes exactly once).
	fa.foutEdges = make([]SuperblockID, total)
	fa.finEdges = make([]SuperblockID, total)
	outCur := make([]int32, n)
	copy(outCur, fa.foutIdx[:n])
	inCur := make([]int32, n)
	copy(inCur, fa.finIdx[:n])
	for id := range blocks {
		links := blocks[id].Links
		for i, to := range links {
			if int(to) >= n || contains(links[:i], to) {
				continue
			}
			fa.foutEdges[outCur[id]] = to
			outCur[id]++
			fa.finEdges[inCur[to]] = SuperblockID(id)
			inCur[to]++
		}
	}
	return fa
}

// EmptyAdjacency returns a frozen relation with no edges over n blocks —
// the chaining-disabled contract, where the owner strips Links from
// every insert so there is nothing to validate or walk.
func EmptyAdjacency(n int) *FrozenAdjacency {
	return &FrozenAdjacency{
		n:          n,
		foutIdx:    make([]int32, n+1),
		finIdx:     make([]int32, n+1),
		linksValid: n > 0,
	}
}

// NumBlocks returns the dense ID span the adjacency covers.
func (fa *FrozenAdjacency) NumBlocks() int { return fa.n }

// RowsExact reports whether every frozen row equals its raw link row.
func (fa *FrozenAdjacency) RowsExact() bool { return fa.rowsExact }

// LinksValid reports whether every raw link row passed ID validation at
// build time.
func (fa *FrozenAdjacency) LinksValid() bool { return fa.linksValid }

// OutRow returns id's forward link row. The slice aliases the immutable
// edge array; callers must not modify it.
func (fa *FrozenAdjacency) OutRow(id SuperblockID) []SuperblockID {
	if int(id)+1 >= len(fa.foutIdx) {
		return nil
	}
	return fa.foutEdges[fa.foutIdx[id]:fa.foutIdx[id+1]]
}

// InRow returns id's reverse link row (every source declaring a link to
// id). The slice aliases the immutable edge array; callers must not
// modify it.
func (fa *FrozenAdjacency) InRow(id SuperblockID) []SuperblockID {
	if int(id)+1 >= len(fa.finIdx) {
		return nil
	}
	return fa.finEdges[fa.finIdx[id]:fa.finIdx[id+1]]
}

// OutCSR exposes the raw forward CSR (row offsets and edge array) so
// replay kernels can hoist the slice headers out of their hot loops.
// Both slices alias immutable storage; callers must not modify them.
func (fa *FrozenAdjacency) OutCSR() (idx []int32, edges []SuperblockID) {
	return fa.foutIdx, fa.foutEdges
}

// InCSR is OutCSR for the reverse adjacency.
func (fa *FrozenAdjacency) InCSR() (idx []int32, edges []SuperblockID) {
	return fa.finIdx, fa.finEdges
}

// ValidateID reports whether an ID fits the dense-table limit, with the
// same error the cache insert paths produce. Exported for replay kernels
// that validate link rows themselves when the adjacency was not
// prevalidated.
func ValidateID(id SuperblockID) error { return validateID(id) }
