package core

import (
	"fmt"
	"math"
	"sort"
)

// LRUCache is a recency-based code cache over a first-fit heap allocator.
//
// The paper argues (§3.3) that LRU-like eviction of variable-size entries
// leads to internal fragmentation: freeing recency-ordered blocks leaves
// holes that incoming blocks do not exactly fill, and compaction would
// require re-patching every link. This implementation exists to quantify
// that argument: it tracks how often evictions happen *despite* sufficient
// total free space (pure fragmentation evictions) and how much of the
// arena sits in unusable holes.
//
// The type is the Engine's recency VictimPolicy: the embedded Engine owns
// residency, offsets, sizes, counters, and links, while this struct keeps
// only the ordering state — an intrusive recency list over dense IDs and
// the hole index. Everything is flat int32 slices, so the steady state
// allocates nothing and the hot paths never chase pointers.
type LRUCache struct {
	Engine

	// Intrusive recency list: prevID/nextID are doubly-linked-list
	// neighbors indexed by SuperblockID, valid only while the block is
	// resident (the engine's where table is the membership test).
	// head is the most recently used block, tail the eviction victim.
	prevID, nextID []int32
	head, tail     int32

	holes holeList // free regions, first-fit by lowest offset
	// freeBytes mirrors the holes' byte sum so aggregate-space queries in
	// the eviction loop are O(1); CheckInvariants re-tallies it.
	freeBytes int

	// FragEvictions counts blocks evicted while total free space already
	// exceeded the incoming block's size: evictions forced purely by
	// fragmentation, the cost FIFO circular buffers avoid.
	FragEvictions uint64

	// BurstCarves counts hole-index burst passes (freeRunAndTake calls):
	// with batching, a fragmentation burst that evicts dozens of blocks
	// costs one carve/merge pass per evictRunChunk victims instead of one
	// per victim. BlocksEvicted / BurstCarves is the amortization factor.
	BurstCarves uint64

	// runIDs/runOffs/runSizes stage one victim run chunk for the batched
	// carve; fixed arrays keep the steady state allocation-free.
	runIDs, runOffs, runSizes [evictRunChunk]int32

	// preEvict, when set, runs before each eviction step; returning true
	// means it made room by other means (the compacting variant
	// defragments here) and allocation should be retried.
	preEvict func(size int) bool
}

const lruNil = int32(-1)

// evictRunChunk bounds how many recency-tail victims are staged per
// freeRunAndTake pass. Bursts rarely exceed it (the word trace averages
// ~37 victims per burst); larger chunks just grow the scratch.
const evictRunChunk = 64

var (
	_ Cache        = (*LRUCache)(nil)
	_ VictimPolicy = (*LRUCache)(nil)
	_ EngineBacked = (*LRUCache)(nil)
)

// NewLRU returns an LRU cache with the given capacity in bytes.
func NewLRU(capacity int) (*LRUCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	if capacity > math.MaxInt32 {
		return nil, fmt.Errorf("core: LRU capacity %d exceeds the hole index limit", capacity)
	}
	c := &LRUCache{head: lruNil, tail: lruNil}
	c.holes.reset(0, capacity)
	c.freeBytes = capacity
	c.initEngine("LRU", capacity)
	c.bindPolicy(c)
	return c, nil
}

// Units implements Cache: LRU evicts single blocks, like fine-grained FIFO.
func (c *LRUCache) Units() int { return 0 }

// growList extends the dense list tables to cover id.
func (c *LRUCache) growList(id SuperblockID) {
	if int(id) < len(c.prevID) {
		return
	}
	n := int(id) + 1
	if n < 2*len(c.prevID) {
		n = 2 * len(c.prevID)
	}
	prev := make([]int32, n)
	copy(prev, c.prevID)
	c.prevID = prev
	next := make([]int32, n)
	copy(next, c.nextID)
	c.nextID = next
}

// Reserve pre-sizes the engine tables and the recency list for IDs in
// [0, maxID].
func (c *LRUCache) Reserve(maxID SuperblockID) {
	c.Engine.Reserve(maxID)
	c.growList(maxID)
}

// FreeBytes returns the total free space across all holes.
func (c *LRUCache) FreeBytes() int { return c.freeBytes }

// LargestHole returns the size of the biggest contiguous free region.
func (c *LRUCache) LargestHole() int { return c.holes.largest() }

// ObserveHit implements VictimPolicy; a hit refreshes recency.
func (c *LRUCache) ObserveHit(id SuperblockID) { c.touch(int32(id)) }

// ObserveMiss implements VictimPolicy.
func (c *LRUCache) ObserveMiss(SuperblockID) {}

// Observes implements VictimPolicy: LRU needs the hit stream for recency.
func (c *LRUCache) Observes() (hits, misses bool) { return true, false }

// touch moves the resident block id to the front of the recency list.
func (c *LRUCache) touch(id int32) {
	if c.head == id {
		return
	}
	c.unlink(id)
	c.pushFront(id)
}

// pushFront makes id the most recently used block.
func (c *LRUCache) pushFront(id int32) {
	c.prevID[id] = lruNil
	c.nextID[id] = c.head
	if c.head != lruNil {
		c.prevID[c.head] = id
	}
	c.head = id
	if c.tail == lruNil {
		c.tail = id
	}
}

// unlink removes the resident block id from the recency list.
func (c *LRUCache) unlink(id int32) {
	p, n := c.prevID[id], c.nextID[id]
	if p != lruNil {
		c.nextID[p] = n
	} else {
		c.head = n
	}
	if n != lruNil {
		c.prevID[n] = p
	} else {
		c.tail = p
	}
}

// alloc carves size bytes off the first-fit hole; ok is false when no
// hole is big enough.
func (c *LRUCache) alloc(size int) (int, bool) {
	off, ok := c.holes.allocFirstFit(size)
	if !ok {
		return 0, false
	}
	c.freeBytes -= size
	return off, true
}

// Place implements VictimPolicy: evict least-recently-used blocks until a
// first-fit hole accommodates the new superblock.
//
// The plain LRU path batches the fragmentation burst: it stages the
// contiguous victim run off the recency tail and retires it through one
// freeRunAndTake carve/merge pass per chunk, which selects the same
// victims and the same placement as the per-victim loop (see
// freeRunAndTake) while touching the hole index once. The compacting
// variant keeps the per-victim loop because preEvict may defragment
// between steps.
func (c *LRUCache) Place(size int) (int64, error) {
	if off, ok := c.alloc(size); ok {
		return int64(off), nil
	}
	if c.preEvict != nil {
		return c.placeCompacting(size)
	}
	evicted := c.evictScratch[:0]
	var off int
	for {
		n := 0
		for v := c.tail; v != lruNil && n < evictRunChunk; v = c.prevID[v] {
			c.runIDs[n] = v
			c.runOffs[n] = int32(c.where[v])
			c.runSizes[n] = c.sizes[v]
			n++
		}
		if n == 0 {
			// Whole cache freed and it still doesn't fit: impossible
			// given the engine's capacity check.
			c.evictScratch = evicted
			c.evictBatch(evicted)
			return 0, fmt.Errorf("core: LRU could not place %d bytes in empty cache", size)
		}
		place, taken, used := c.holes.freeRunAndTake(c.runOffs[:n], c.runSizes[:n], size)
		c.BurstCarves++
		for i := 0; i < used; i++ {
			if c.freeBytes >= size {
				// There is room in aggregate, yet no hole fits: this
				// eviction is forced by fragmentation alone.
				c.FragEvictions++
			}
			victim := c.runIDs[i]
			c.unlink(victim)
			c.freeBytes += int(c.runSizes[i])
			evicted = append(evicted, SuperblockID(victim))
		}
		if taken {
			c.freeBytes -= size
			off = place
			break
		}
	}
	c.evictScratch = evicted
	c.evictBatch(evicted)
	return int64(off), nil
}

// placeCompacting is the per-victim eviction loop used when a preEvict
// hook is installed: the hook may defragment between steps, so victims
// must be retired one at a time with the hook consulted before each.
func (c *LRUCache) placeCompacting(size int) (int64, error) {
	evicted := c.evictScratch[:0]
	var off int
	for {
		if c.preEvict(size) {
			if o, ok := c.alloc(size); ok {
				off = o
				break
			}
		}
		victim := c.tail
		if victim == lruNil {
			c.evictScratch = evicted
			c.evictBatch(evicted)
			return 0, fmt.Errorf("core: LRU could not place %d bytes in empty cache", size)
		}
		if c.FreeBytes() >= size {
			c.FragEvictions++
		}
		c.unlink(victim)
		c.freeBytes += int(c.sizes[victim])
		// freeAndTake both returns the victim's bytes and, the moment the
		// merged hole fits, carves the placement out of it — one hole-index
		// pass per victim, and the merged hole is provably the first fit
		// (see freeAndTake).
		place, ok := c.holes.freeAndTake(int(c.where[victim]), int(c.sizes[victim]), size)
		evicted = append(evicted, SuperblockID(victim))
		if ok {
			c.freeBytes -= size
			off = place
			break
		}
	}
	c.evictScratch = evicted
	c.evictBatch(evicted)
	return int64(off), nil
}

// OnInserted implements VictimPolicy: make the placed block most recently
// used. Offsets and sizes live in the engine's tables.
func (c *LRUCache) OnInserted(id SuperblockID, off int64, size int) {
	c.growList(id)
	c.pushFront(int32(id))
}

// EvictAll implements VictimPolicy.
func (c *LRUCache) EvictAll() {
	order := c.evictScratch[:0]
	for id := c.head; id != lruNil; id = c.nextID[id] {
		order = append(order, SuperblockID(id))
	}
	c.evictScratch = order
	c.head, c.tail = lruNil, lruNil
	c.holes.reset(0, c.capacity)
	c.freeBytes = c.capacity
	c.evictBatch(order)
}

// UnitOf implements VictimPolicy: every block is its own eviction unit,
// so only self-links are intra-unit.
func (c *LRUCache) UnitOf(id SuperblockID) (int64, bool) {
	return c.Where(id)
}

// CheckInvariants validates allocator and list consistency.
func (c *LRUCache) CheckInvariants() error {
	if err := c.holes.checkInvariants(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	// Holes sorted, non-overlapping, non-adjacent, in range; the running
	// byte counter matches the tally.
	type region struct{ off, size int }
	holes := make([]region, 0, c.holes.count)
	tally := 0
	c.holes.ascend(func(off, size int) {
		holes = append(holes, region{off, size})
		tally += size
	})
	for i, h := range holes {
		if h.size <= 0 || h.off < 0 || h.off+h.size > c.capacity {
			return fmt.Errorf("core: bad hole %+v", h)
		}
		if i > 0 {
			prev := holes[i-1]
			if prev.off+prev.size >= h.off {
				return fmt.Errorf("core: holes %+v and %+v overlap or touch", prev, h)
			}
		}
	}
	if tally != c.freeBytes {
		return fmt.Errorf("core: free-byte counter %d != hole tally %d", c.freeBytes, tally)
	}
	if got := c.capacity - c.FreeBytes(); got != c.ResidentBytes() {
		return fmt.Errorf("core: allocator accounts %d resident bytes, engine %d", got, c.ResidentBytes())
	}
	// Blocks and holes partition the arena.
	regions := make([]region, 0, c.resident+len(holes))
	for id, voff := range c.where {
		if voff == absentVoff {
			continue
		}
		regions = append(regions, region{int(voff), int(c.sizes[id])})
	}
	if len(regions) != c.resident {
		return fmt.Errorf("core: resident count %d != occupied regions %d", c.resident, len(regions))
	}
	regions = append(regions, holes...)
	sort.Slice(regions, func(i, j int) bool { return regions[i].off < regions[j].off })
	at := 0
	for _, r := range regions {
		if r.off != at {
			return fmt.Errorf("core: arena gap/overlap at %d (next region at %d)", at, r.off)
		}
		at += r.size
	}
	if at != c.capacity {
		return fmt.Errorf("core: arena regions end at %d, capacity %d", at, c.capacity)
	}
	// Recency list contains exactly the resident blocks.
	seen := 0
	for id := c.head; id != lruNil; id = c.nextID[id] {
		if !c.Contains(SuperblockID(id)) {
			return fmt.Errorf("core: recency node %d not resident", id)
		}
		seen++
		if seen > c.resident {
			return fmt.Errorf("core: recency list cycle")
		}
	}
	if seen != c.resident {
		return fmt.Errorf("core: recency list has %d nodes, engine has %d resident", seen, c.resident)
	}
	return c.checkEngineInvariants()
}
