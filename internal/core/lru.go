package core

import (
	"fmt"
	"sort"
)

// LRUCache is a recency-based code cache over a first-fit heap allocator.
//
// The paper argues (§3.3) that LRU-like eviction of variable-size entries
// leads to internal fragmentation: freeing recency-ordered blocks leaves
// holes that incoming blocks do not exactly fill, and compaction would
// require re-patching every link. This implementation exists to quantify
// that argument: it tracks how often evictions happen *despite* sufficient
// total free space (pure fragmentation evictions) and how much of the
// arena sits in unusable holes.
//
// Like the FIFO family, residency is indexed by dense SuperblockID, and
// eviction reuses scratch buffers plus a node free list so the steady
// state allocates nothing.
type LRUCache struct {
	name     string
	capacity int

	nodes    []*lruNode // id -> node, nil when not resident
	resident int
	// Recency list: mru.next ... lru; sentinel-free doubly linked list.
	mru, lru *lruNode

	holes []hole // sorted by offset, coalesced

	links *linkTable
	stats Stats

	// evictScratch is the reusable per-invocation victim list.
	evictScratch []SuperblockID
	// freeNodes recycles evicted list nodes.
	freeNodes []*lruNode

	// FragEvictions counts blocks evicted while total free space already
	// exceeded the incoming block's size: evictions forced purely by
	// fragmentation, the cost FIFO circular buffers avoid.
	FragEvictions uint64

	// preEvict, when set, runs before each eviction step; returning true
	// means it made room by other means (the compacting variant
	// defragments here) and allocation should be retried.
	preEvict func(size int) bool
}

type lruNode struct {
	id         SuperblockID
	off, size  int
	prev, next *lruNode
}

type hole struct{ off, size int }

var _ Cache = (*LRUCache)(nil)

// NewLRU returns an LRU cache with the given capacity in bytes.
func NewLRU(capacity int) (*LRUCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	return &LRUCache{
		name:     "LRU",
		capacity: capacity,
		holes:    []hole{{off: 0, size: capacity}},
		links:    newLinkTable(),
	}, nil
}

// Name implements Cache.
func (c *LRUCache) Name() string { return c.name }

// Capacity implements Cache.
func (c *LRUCache) Capacity() int { return c.capacity }

// Units implements Cache: LRU evicts single blocks, like fine-grained FIFO.
func (c *LRUCache) Units() int { return 0 }

// Stats implements Cache.
func (c *LRUCache) Stats() *Stats { return &c.stats }

// grow extends the dense node table to cover id.
func (c *LRUCache) grow(id SuperblockID) {
	if int(id) < len(c.nodes) {
		return
	}
	n := int(id) + 1
	if n < 2*len(c.nodes) {
		n = 2 * len(c.nodes)
	}
	nodes := make([]*lruNode, n)
	copy(nodes, c.nodes)
	c.nodes = nodes
}

// node returns the resident node for id, or nil.
func (c *LRUCache) node(id SuperblockID) *lruNode {
	if int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// Contains implements Cache.
func (c *LRUCache) Contains(id SuperblockID) bool { return c.node(id) != nil }

// Resident implements Cache.
func (c *LRUCache) Resident() int { return c.resident }

// ResidentBytes implements Cache.
func (c *LRUCache) ResidentBytes() int {
	free := 0
	for _, h := range c.holes {
		free += h.size
	}
	return c.capacity - free
}

// FreeBytes returns the total free space across all holes.
func (c *LRUCache) FreeBytes() int { return c.capacity - c.ResidentBytes() }

// LargestHole returns the size of the biggest contiguous free region.
func (c *LRUCache) LargestHole() int {
	best := 0
	for _, h := range c.holes {
		if h.size > best {
			best = h.size
		}
	}
	return best
}

// Access implements Cache; a hit refreshes recency.
func (c *LRUCache) Access(id SuperblockID) bool {
	c.stats.Accesses++
	n := c.node(id)
	if n == nil {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.touch(n)
	return true
}

func (c *LRUCache) touch(n *lruNode) {
	if c.mru == n {
		return
	}
	c.unlink(n)
	n.next = c.mru
	if c.mru != nil {
		c.mru.prev = n
	}
	c.mru = n
	if c.lru == nil {
		c.lru = n
	}
}

func (c *LRUCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if c.mru == n {
		c.mru = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if c.lru == n {
		c.lru = n.prev
	}
	n.prev, n.next = nil, nil
}

// newNode takes a node from the free list or allocates one.
func (c *LRUCache) newNode(id SuperblockID, off, size int) *lruNode {
	if k := len(c.freeNodes); k > 0 {
		n := c.freeNodes[k-1]
		c.freeNodes = c.freeNodes[:k-1]
		*n = lruNode{id: id, off: off, size: size}
		return n
	}
	return &lruNode{id: id, off: off, size: size}
}

// retire removes a resident node from the index and recycles it.
func (c *LRUCache) retire(n *lruNode) {
	c.nodes[n.id] = nil
	c.resident--
	c.freeNodes = append(c.freeNodes, n)
}

// alloc finds a first-fit hole; ok is false when no hole is big enough.
func (c *LRUCache) alloc(size int) (int, bool) {
	for i, h := range c.holes {
		if h.size >= size {
			off := h.off
			if h.size == size {
				c.holes = append(c.holes[:i], c.holes[i+1:]...)
			} else {
				c.holes[i] = hole{off: h.off + size, size: h.size - size}
			}
			return off, true
		}
	}
	return 0, false
}

// free returns a region to the hole list, coalescing neighbors.
func (c *LRUCache) free(off, size int) {
	i := sort.Search(len(c.holes), func(i int) bool { return c.holes[i].off >= off })
	c.holes = append(c.holes, hole{})
	copy(c.holes[i+1:], c.holes[i:])
	c.holes[i] = hole{off: off, size: size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(c.holes) && c.holes[i].off+c.holes[i].size == c.holes[i+1].off {
		c.holes[i].size += c.holes[i+1].size
		c.holes = append(c.holes[:i+1], c.holes[i+2:]...)
	}
	if i > 0 && c.holes[i-1].off+c.holes[i-1].size == c.holes[i].off {
		c.holes[i-1].size += c.holes[i].size
		c.holes = append(c.holes[:i], c.holes[i+1:]...)
	}
}

// Insert implements Cache: evict least-recently-used blocks until a
// first-fit hole accommodates the new superblock.
func (c *LRUCache) Insert(sb Superblock) error {
	if err := validateInsert(c, sb); err != nil {
		return err
	}
	off, ok := c.alloc(sb.Size)
	if !ok {
		evicted := c.evictScratch[:0]
		var bytes int
		for {
			if c.preEvict != nil && c.preEvict(sb.Size) {
				if off, ok = c.alloc(sb.Size); ok {
					break
				}
			}
			victim := c.lru
			if victim == nil {
				// Whole cache freed and it still doesn't fit: impossible
				// given the validateInsert capacity check.
				c.evictScratch = evicted
				return fmt.Errorf("core: LRU could not place %d bytes in empty cache", sb.Size)
			}
			if c.FreeBytes() >= sb.Size {
				// There is room in aggregate, yet no hole fits: this
				// eviction is forced by fragmentation alone.
				c.FragEvictions++
			}
			c.unlink(victim)
			c.free(victim.off, victim.size)
			evicted = append(evicted, victim.id)
			bytes += victim.size
			c.retire(victim)
			if off, ok = c.alloc(sb.Size); ok {
				break
			}
		}
		c.evictScratch = evicted
		if len(evicted) > 0 {
			c.stats.EvictionInvocations++
			c.stats.BlocksEvicted += uint64(len(evicted))
			c.stats.BytesEvicted += uint64(bytes)
			if c.resident == 0 {
				c.stats.FullFlushes++
			}
			c.stats.UnlinkEvents += c.links.onEvict(evicted, &c.stats, nil)
		}
	}
	n := c.newNode(sb.ID, off, sb.Size)
	c.grow(sb.ID)
	c.nodes[sb.ID] = n
	c.resident++
	c.touch(n)
	c.stats.InsertedBlocks++
	c.stats.InsertedBytes += uint64(sb.Size)
	for _, to := range sb.Links {
		c.links.declare(sb.ID, to, c.Contains, &c.stats)
	}
	c.links.onInsert(sb.ID, &c.stats)
	return nil
}

// AddLink implements Cache.
func (c *LRUCache) AddLink(from, to SuperblockID) error {
	if !c.Contains(from) {
		return fmt.Errorf("core: AddLink from non-resident superblock %d", from)
	}
	if err := validateID(to); err != nil {
		return err
	}
	c.links.declare(from, to, c.Contains, &c.stats)
	return nil
}

// Flush implements Cache.
func (c *LRUCache) Flush() {
	if c.resident == 0 {
		return
	}
	evicted := c.evictScratch[:0]
	var bytes int
	for n := c.mru; n != nil; n = n.next {
		evicted = append(evicted, n.id)
		bytes += n.size
	}
	for n := c.mru; n != nil; {
		next := n.next
		n.prev, n.next = nil, nil
		c.retire(n)
		n = next
	}
	c.evictScratch = evicted
	c.mru, c.lru = nil, nil
	c.holes = c.holes[:0]
	c.holes = append(c.holes, hole{off: 0, size: c.capacity})
	c.stats.EvictionInvocations++
	c.stats.BlocksEvicted += uint64(len(evicted))
	c.stats.BytesEvicted += uint64(bytes)
	c.stats.FullFlushes++
	c.stats.UnlinkEvents += c.links.onEvict(evicted, &c.stats, nil)
}

// LinkCensus implements Cache: every block is its own eviction unit, so
// only self-links are intra-unit.
func (c *LRUCache) LinkCensus() (intra, inter int) {
	return c.links.census(func(id SuperblockID) (int64, bool) {
		n := c.node(id)
		if n == nil {
			return 0, false
		}
		return int64(n.off), true
	})
}

// BackPtrTableBytes implements Cache.
func (c *LRUCache) BackPtrTableBytes() int { return 16 * c.links.patchedLinks() }

// CheckInvariants validates allocator and list consistency.
func (c *LRUCache) CheckInvariants() error {
	// Holes sorted, non-overlapping, non-adjacent, in range.
	for i, h := range c.holes {
		if h.size <= 0 || h.off < 0 || h.off+h.size > c.capacity {
			return fmt.Errorf("core: bad hole %+v", h)
		}
		if i > 0 {
			prev := c.holes[i-1]
			if prev.off+prev.size >= h.off {
				return fmt.Errorf("core: holes %+v and %+v overlap or touch", prev, h)
			}
		}
	}
	// Blocks and holes partition the arena.
	type region struct{ off, size int }
	regions := make([]region, 0, c.resident+len(c.holes))
	live := 0
	for id, n := range c.nodes {
		if n == nil {
			continue
		}
		if n.id != SuperblockID(id) {
			return fmt.Errorf("core: node for %d carries id %d", id, n.id)
		}
		regions = append(regions, region{n.off, n.size})
		live++
	}
	if live != c.resident {
		return fmt.Errorf("core: resident count %d != indexed nodes %d", c.resident, live)
	}
	for _, h := range c.holes {
		regions = append(regions, region{h.off, h.size})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].off < regions[j].off })
	at := 0
	for _, r := range regions {
		if r.off != at {
			return fmt.Errorf("core: arena gap/overlap at %d (next region at %d)", at, r.off)
		}
		at += r.size
	}
	if at != c.capacity {
		return fmt.Errorf("core: arena regions end at %d, capacity %d", at, c.capacity)
	}
	// Recency list contains exactly the resident blocks.
	seen := 0
	for n := c.mru; n != nil; n = n.next {
		if c.node(n.id) != n {
			return fmt.Errorf("core: recency node %d not indexed", n.id)
		}
		seen++
		if seen > c.resident {
			return fmt.Errorf("core: recency list cycle")
		}
	}
	if seen != c.resident {
		return fmt.Errorf("core: recency list has %d nodes, index has %d", seen, c.resident)
	}
	return c.links.checkInvariants()
}
