package core

import (
	"strings"
	"testing"
)

// FuzzApproxLRUChurn lets the fuzzer shape an access/insert stream for
// the sampler and holds the full invariant set — allocator partition,
// resident-array consistency, counter conservation — at every boundary.
func FuzzApproxLRUChurn(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 1, 2, 3, 200, 9, 77, 77, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		c, err := NewApproxLRU(600)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range data {
			id := SuperblockID(b % 96)
			if !c.Access(id) {
				blk := Superblock{ID: id, Size: 5 + int(id)%80}
				if b >= 128 {
					blk.Links = []SuperblockID{SuperblockID(b % 96), id}
				}
				if err := c.Insert(blk); err != nil {
					t.Fatal(err)
				}
			}
			if i%257 == 0 {
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses || s.InsertedBlocks-s.BlocksEvicted != uint64(c.Resident()) {
			t.Fatalf("conservation violated: %+v resident=%d", *s, c.Resident())
		}
	})
}

func TestApproxLRUBasics(t *testing.T) {
	c, err := NewApproxLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewApproxLRU(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewApproxLRU(1 << 40); err == nil {
		t.Error("capacity beyond the hole index limit should fail")
	}
	if c.Name() != "approx-LRU" || c.Units() != 0 || c.Capacity() != 100 {
		t.Fatalf("metadata wrong: %s/%d/%d", c.Name(), c.Units(), c.Capacity())
	}
	if hits, misses := c.Observes(); !hits || misses {
		t.Fatalf("Observes() = %v/%v, want hits only", hits, misses)
	}
	mustInsert(t, c, sb(1, 40), sb(2, 40))
	if !c.Access(1) || c.Access(3) {
		t.Fatal("hit/miss behaviour wrong")
	}
	if c.Resident() != 2 || c.ResidentBytes() != 80 || c.FreeBytes() != 20 {
		t.Fatalf("occupancy wrong: %d/%d/%d", c.Resident(), c.ResidentBytes(), c.FreeBytes())
	}
	if c.LargestHole() != 20 {
		t.Fatalf("LargestHole = %d, want 20", c.LargestHole())
	}
	if off, ok := c.UnitOf(1); !ok || off != 0 {
		t.Fatalf("UnitOf(1) = (%d, %v), want the block's offset", off, ok)
	}
	if _, ok := c.UnitOf(9); ok {
		t.Fatal("UnitOf of an absent block should fail")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestApproxLRUEvictsStaleTail is the sampling analogue of the exact-LRU
// eviction test: with 8 probes over a small resident set, the sampler
// sees most residents per draw, so after a restamping pass the coldest
// blocks must be strongly preferred as victims. Statistical, but the
// fixed-seed generator makes the outcome reproducible.
func TestApproxLRUEvictsStaleTail(t *testing.T) {
	c, _ := NewApproxLRU(1000)
	for i := 1; i <= 10; i++ {
		mustInsert(t, c, sb(SuperblockID(i), 100)) // full after 10
	}
	// Restamp every block except 1 and 2: the stale tail is {1, 2}.
	for i := 3; i <= 10; i++ {
		c.Access(SuperblockID(i))
	}
	mustInsert(t, c, sb(11, 100))
	if c.Contains(1) && c.Contains(2) {
		t.Fatal("sampler evicted a restamped block while both stale blocks survive")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApproxLRUFragmentationCounters(t *testing.T) {
	c, _ := NewApproxLRU(100)
	for i := 1; i <= 10; i++ {
		mustInsert(t, c, sb(SuperblockID(i), 10))
	}
	// A 30-byte insert into a full arena of 10-byte blocks must run at
	// least one batched carve; whether evictions count as
	// fragmentation-forced depends on which victims the probes draw.
	mustInsert(t, c, sb(11, 30))
	if c.BurstCarves == 0 {
		t.Fatal("expected at least one batched carve pass")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApproxLRUFlushAndReserve(t *testing.T) {
	c, _ := NewApproxLRU(200)
	c.Reserve(64)
	if len(c.lastUsed) < 65 || cap(c.live) < 65 {
		t.Fatalf("Reserve did not pre-size tables: %d/%d", len(c.lastUsed), cap(c.live))
	}
	mustInsert(t, c, sb(1, 50, 1), sb(2, 50, 1))
	c.Flush()
	if c.Resident() != 0 || c.FreeBytes() != 200 || c.Stats().FullFlushes != 1 {
		t.Fatalf("flush failed: resident=%d free=%d stats=%+v", c.Resident(), c.FreeBytes(), *c.Stats())
	}
	// Insert past the reserved range to exercise grow's doubling path.
	mustInsert(t, c, sb(150, 20))
	if !c.Contains(150) {
		t.Fatal("block 150 should be resident after growth")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApproxLRUPlaceOversizedFails(t *testing.T) {
	// Insert validates size against capacity before ever reaching Place,
	// so Place's drained-cache failure is only reachable directly: an
	// impossible request must drain nothing and report the empty cache.
	c, _ := NewApproxLRU(100)
	if _, err := c.Place(150); err == nil || !strings.Contains(err.Error(), "empty cache") {
		t.Fatalf("oversized Place should fail on the drained cache, got %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestApproxLRUCheckInvariantsDetectsCorruption tampers with each piece
// of sampler state the invariant checker guards, proving the checks can
// actually fire rather than vacuously passing.
func TestApproxLRUCheckInvariantsDetectsCorruption(t *testing.T) {
	fresh := func() *ApproxLRUCache {
		c, _ := NewApproxLRU(300)
		mustInsert(t, c, sb(1, 100), sb(2, 100))
		return c
	}
	c := fresh()
	c.ObserveMiss(3) // contract: a no-op that must not disturb state
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		corrupt func(c *ApproxLRUCache)
		want    string
	}{
		{"free-byte counter drift", func(c *ApproxLRUCache) { c.freeBytes++ }, "free-byte counter"},
		{"resident array short", func(c *ApproxLRUCache) { c.live = c.live[:1] }, "resident array"},
		{"resident array duplicate", func(c *ApproxLRUCache) { c.live[1] = c.live[0] }, "repeats block"},
		{"resident array stale id", func(c *ApproxLRUCache) { c.live[1] = 99 }, "not resident"},
	} {
		c := fresh()
		tc.corrupt(c)
		err := c.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestApproxLRUDeterministicReplay(t *testing.T) {
	run := func() Stats {
		c, _ := NewApproxLRU(2000)
		r := newTestRand()
		for step := 0; step < 20000; step++ {
			id := SuperblockID(r.Zipf(150, 0.8))
			if !c.Access(id) {
				if err := c.Insert(Superblock{ID: id, Size: 10 + int(id)%80}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return *c.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fixed-seed sampler not bit-stable:\n %+v\n %+v", a, b)
	}
}

func TestApproxLRUInvariantsUnderChurn(t *testing.T) {
	c, _ := NewApproxLRU(500)
	r := newTestRand()
	sizes := map[SuperblockID]int{}
	for step := 0; step < 10000; step++ {
		id := SuperblockID(r.Intn(120))
		size, ok := sizes[id]
		if !ok {
			size = 5 + r.Intn(80)
			sizes[id] = size
		}
		if !c.Access(id) {
			if err := c.Insert(Superblock{ID: id, Size: size, Links: []SuperblockID{SuperblockID(r.Intn(120))}}); err != nil {
				t.Fatal(err)
			}
		}
		if step%2500 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.InsertedBlocks-s.BlocksEvicted != uint64(c.Resident()) {
		t.Fatalf("block conservation violated: %+v resident=%d", *s, c.Resident())
	}
}
