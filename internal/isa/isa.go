// Package isa defines DRISC, the small 32-bit RISC instruction set that the
// dynocache dynamic binary translator operates on.
//
// The paper drives its code cache simulator with superblock streams from
// DynamoRIO running IA-32 binaries. We have no IA-32 frontend, so DRISC
// plays the role of the guest architecture: the program generator emits
// DRISC binaries, the interpreter executes them, and the DBT discovers,
// profiles, and translates DRISC code into the managed code cache.
//
// DRISC deliberately has just enough surface to exercise every DBT code
// path: ALU ops, loads/stores, conditional branches, direct and indirect
// jumps, calls/returns, and a syscall/halt escape.
//
// Encoding (32-bit words, fixed width):
//
//	R-type: opcode[31:26] rd[25:22] rs1[21:18] rs2[17:14] unused[13:0]
//	I-type: opcode[31:26] rd[25:22] rs1[21:18] imm16[15:0] (sign-extended)
//	J-type: opcode[31:26] imm26[25:0] (sign-extended word offset)
package isa

import "fmt"

// WordSize is the size in bytes of every DRISC instruction.
const WordSize = 4

// NumRegs is the size of the architectural register file. R0 reads as zero
// and ignores writes; R15 is the conventional link register.
const NumRegs = 16

// Reg names an architectural register.
type Reg uint8

// Conventional register roles.
const (
	RZero Reg = 0  // hardwired zero
	RSP   Reg = 14 // stack pointer by convention
	RLink Reg = 15 // link register written by JAL
)

// String returns the assembler name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Opcode identifies a DRISC operation.
type Opcode uint8

// The DRISC opcode space.
const (
	OpNop Opcode = iota
	// R-type ALU
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMul
	OpSlt // rd = (rs1 < rs2) ? 1 : 0, signed
	// I-type
	OpAddi
	OpLui // rd = imm << 16
	OpLw  // rd = mem[rs1 + imm]
	OpSw  // mem[rs1 + imm] = rd
	// Control flow
	OpBeq // if rd == rs1: pc += imm words
	OpBne
	OpBlt
	OpBge
	OpJmp  // pc += imm26 words
	OpJal  // r15 = pc+4; pc += imm26 words
	OpJr   // pc = rs1 (indirect jump / return)
	OpJalr // r15 = pc+4; pc = rs1 (indirect call)
	// System
	OpSyscall
	OpHalt
	// OpTrap is reserved for the dynamic binary translator: it never
	// appears in guest programs. Exit stubs in translated superblocks trap
	// back to the dispatcher with a 16-bit stub index in the immediate.
	OpTrap

	numOpcodes
)

var opNames = [numOpcodes]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpMul: "mul", OpSlt: "slt",
	OpAddi: "addi", OpLui: "lui", OpLw: "lw", OpSw: "sw",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpJal: "jal", OpJr: "jr", OpJalr: "jalr",
	OpSyscall: "syscall", OpHalt: "halt", OpTrap: "trap",
}

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	if op < numOpcodes {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// Valid reports whether op is a defined DRISC opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// Format classifies the encoding layout of an opcode.
type Format uint8

// The three DRISC encoding formats plus the degenerate no-operand format.
const (
	FormatR Format = iota
	FormatI
	FormatJ
	FormatNone
)

// FormatOf returns the encoding format of op.
func FormatOf(op Opcode) Format {
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpSlt, OpJr, OpJalr:
		return FormatR
	case OpAddi, OpLui, OpLw, OpSw, OpBeq, OpBne, OpBlt, OpBge, OpTrap:
		return FormatI
	case OpJmp, OpJal:
		return FormatJ
	default:
		return FormatNone
	}
}

// IsBranch reports whether op is a conditional branch.
func IsBranch(op Opcode) bool {
	return op == OpBeq || op == OpBne || op == OpBlt || op == OpBge
}

// IsDirectJump reports whether op is an unconditional pc-relative jump.
func IsDirectJump(op Opcode) bool { return op == OpJmp || op == OpJal }

// IsIndirect reports whether op transfers control through a register.
func IsIndirect(op Opcode) bool { return op == OpJr || op == OpJalr }

// IsCall reports whether op writes the link register.
func IsCall(op Opcode) bool { return op == OpJal || op == OpJalr }

// EndsBlock reports whether op terminates a basic block: any control
// transfer, plus halt (syscalls return to the next instruction and so do
// not end a block in our model).
func EndsBlock(op Opcode) bool {
	return IsBranch(op) || IsDirectJump(op) || IsIndirect(op) || op == OpHalt || op == OpTrap
}

// Inst is a decoded DRISC instruction.
type Inst struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32 // imm16 for I-type, imm26 (word offset) for J-type
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch FormatOf(in.Op) {
	case FormatR:
		switch in.Op {
		case OpJr:
			return fmt.Sprintf("jr %s", in.Rs1)
		case OpJalr:
			return fmt.Sprintf("jalr %s", in.Rs1)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
		}
	case FormatI:
		switch in.Op {
		case OpLui:
			return fmt.Sprintf("lui %s, %d", in.Rd, in.Imm)
		case OpLw:
			return fmt.Sprintf("lw %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
		case OpSw:
			return fmt.Sprintf("sw %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
		case OpBeq, OpBne, OpBlt, OpBge:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		case OpTrap:
			return fmt.Sprintf("trap %d", in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
	case FormatJ:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	default:
		return in.Op.String()
	}
}

// BranchTarget returns the target PC of a pc-relative control transfer
// located at pc. It panics if the instruction is not pc-relative.
func (in Inst) BranchTarget(pc uint32) uint32 {
	if !IsBranch(in.Op) && !IsDirectJump(in.Op) {
		panic(fmt.Sprintf("isa: BranchTarget on %s", in.Op))
	}
	return pc + WordSize + uint32(in.Imm)*WordSize
}

// FallThrough returns the address of the next sequential instruction.
func FallThrough(pc uint32) uint32 { return pc + WordSize }
