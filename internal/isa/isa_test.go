package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if RZero.String() != "r0" || RLink.String() != "r15" {
		t.Fatalf("unexpected register names: %s %s", RZero, RLink)
	}
	if !Reg(15).Valid() || Reg(16).Valid() {
		t.Error("register validity wrong at boundary")
	}
}

func TestOpcodeNamesUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); op < numOpcodes; op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("opcode %d has empty name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("opcodes %d and %d share name %q", prev, op, name)
		}
		seen[name] = op
	}
	if got := Opcode(200).String(); got != "op200" {
		t.Fatalf("invalid opcode name = %q", got)
	}
}

func TestClassifiers(t *testing.T) {
	cases := []struct {
		op                             Opcode
		branch, direct, indirect, call bool
	}{
		{OpAdd, false, false, false, false},
		{OpBeq, true, false, false, false},
		{OpBge, true, false, false, false},
		{OpJmp, false, true, false, false},
		{OpJal, false, true, false, true},
		{OpJr, false, false, true, false},
		{OpJalr, false, false, true, true},
	}
	for _, c := range cases {
		if IsBranch(c.op) != c.branch || IsDirectJump(c.op) != c.direct ||
			IsIndirect(c.op) != c.indirect || IsCall(c.op) != c.call {
			t.Errorf("classification wrong for %s", c.op)
		}
	}
	for _, op := range []Opcode{OpBeq, OpJmp, OpJr, OpHalt} {
		if !EndsBlock(op) {
			t.Errorf("%s should end a block", op)
		}
	}
	for _, op := range []Opcode{OpAdd, OpLw, OpSyscall, OpNop} {
		if EndsBlock(op) {
			t.Errorf("%s should not end a block", op)
		}
	}
}

func TestEncodeDecodeRoundTripAll(t *testing.T) {
	insts := []Inst{
		{Op: OpNop},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSlt, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm: -123},
		{Op: OpLui, Rd: 6, Imm: 32767},
		{Op: OpLw, Rd: 7, Rs1: 8, Imm: 16},
		{Op: OpSw, Rd: 9, Rs1: 10, Imm: -32768},
		{Op: OpBeq, Rd: 1, Rs1: 2, Imm: -5},
		{Op: OpBge, Rd: 3, Rs1: 4, Imm: 100},
		{Op: OpJmp, Imm: -33554432},
		{Op: OpJal, Imm: 33554431},
		{Op: OpJr, Rs1: 15},
		{Op: OpJalr, Rs1: 3},
		{Op: OpSyscall},
		{Op: OpHalt},
	}
	for _, in := range insts {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#x): %v", w, err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(Inst{Op: numOpcodes}); err == nil {
		t.Error("invalid opcode should fail")
	}
	if _, err := Encode(Inst{Op: OpAdd, Rd: 16}); err == nil {
		t.Error("invalid register should fail")
	}
	if _, err := Encode(Inst{Op: OpAddi, Imm: 1 << 20}); err == nil {
		t.Error("oversized imm16 should fail")
	}
	if _, err := Encode(Inst{Op: OpJmp, Imm: 1 << 26}); err == nil {
		t.Error("oversized imm26 should fail")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode with bad inst should panic")
		}
	}()
	MustEncode(Inst{Op: OpAddi, Imm: 1 << 30})
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOpcodes) << 26); err == nil {
		t.Error("decoding invalid opcode should fail")
	}
}

// Property: every encodable instruction round-trips through Encode/Decode.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2 uint8, imm int32) bool {
		op := Opcode(opRaw % uint8(numOpcodes))
		in := Inst{Op: op}
		switch FormatOf(op) {
		case FormatR:
			in.Rd = Reg(rd % NumRegs)
			in.Rs1 = Reg(rs1 % NumRegs)
			in.Rs2 = Reg(rs2 % NumRegs)
		case FormatI:
			in.Rd = Reg(rd % NumRegs)
			in.Rs1 = Reg(rs1 % NumRegs)
			in.Imm = int32(int16(imm))
		case FormatJ:
			in.Imm = imm % (1 << 25)
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 10},
		{Op: OpAddi, Rd: 1, Rs1: 1, Imm: -1},
		{Op: OpBne, Rd: 1, Rs1: 0, Imm: -2},
		{Op: OpHalt},
	}
	code, err := EncodeProgram(insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != len(insts)*WordSize {
		t.Fatalf("code size = %d, want %d", len(code), len(insts)*WordSize)
	}
	back, err := DecodeProgram(code)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if back[i] != insts[i] {
			t.Fatalf("inst %d: got %+v, want %+v", i, back[i], insts[i])
		}
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram([]byte{1, 2, 3}); err == nil {
		t.Error("non-multiple length should fail")
	}
	bad := make([]byte, 4)
	bad[3] = 0xFF // opcode 63: invalid
	if _, err := DecodeProgram(bad); err == nil {
		t.Error("invalid word should fail")
	}
	if _, err := EncodeProgram([]Inst{{Op: numOpcodes}}); err == nil {
		t.Error("EncodeProgram with bad inst should fail")
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpBeq, Imm: 3}
	if got := in.BranchTarget(100); got != 100+4+12 {
		t.Fatalf("BranchTarget = %d, want 116", got)
	}
	in = Inst{Op: OpJmp, Imm: -2}
	if got := in.BranchTarget(100); got != 96 {
		t.Fatalf("backward BranchTarget = %d, want 96", got)
	}
	if FallThrough(100) != 104 {
		t.Error("FallThrough wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("BranchTarget on non-branch should panic")
		}
	}()
	Inst{Op: OpAdd}.BranchTarget(0)
}

func TestDisassemble(t *testing.T) {
	code, err := EncodeProgram([]Inst{
		{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 7},
		{Op: OpHalt},
	})
	if err != nil {
		t.Fatal(err)
	}
	text, err := Disassemble(code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "00001000: addi r1, r0, 7") {
		t.Fatalf("disassembly missing first line:\n%s", text)
	}
	if !strings.Contains(text, "00001004: halt") {
		t.Fatalf("disassembly missing halt:\n%s", text)
	}
	if _, err := Disassemble([]byte{1}, 0); err == nil {
		t.Error("bad code should fail to disassemble")
	}
}

func TestInstStringForms(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"jr r15":          {Op: OpJr, Rs1: 15},
		"jalr r3":         {Op: OpJalr, Rs1: 3},
		"lui r6, 100":     {Op: OpLui, Rd: 6, Imm: 100},
		"lw r7, 16(r8)":   {Op: OpLw, Rd: 7, Rs1: 8, Imm: 16},
		"sw r9, -4(r10)":  {Op: OpSw, Rd: 9, Rs1: 10, Imm: -4},
		"beq r1, r2, -5":  {Op: OpBeq, Rd: 1, Rs1: 2, Imm: -5},
		"jmp 42":          {Op: OpJmp, Imm: 42},
		"halt":            {Op: OpHalt},
		"addi r4, r5, -1": {Op: OpAddi, Rd: 4, Rs1: 5, Imm: -1},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
