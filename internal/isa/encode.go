package isa

import (
	"encoding/binary"
	"fmt"
)

// Encoding field layout constants.
const (
	opShift  = 26
	rdShift  = 22
	rs1Shift = 18
	rs2Shift = 14

	regMask  = 0xF
	imm16Max = 1<<15 - 1
	imm16Min = -(1 << 15)
	imm26Max = 1<<25 - 1
	imm26Min = -(1 << 25)
)

// Encode packs in into its 32-bit machine encoding.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return 0, fmt.Errorf("isa: invalid register in %v", in)
	}
	w := uint32(in.Op) << opShift
	switch FormatOf(in.Op) {
	case FormatR:
		w |= uint32(in.Rd) << rdShift
		w |= uint32(in.Rs1) << rs1Shift
		w |= uint32(in.Rs2) << rs2Shift
	case FormatI:
		if in.Imm < imm16Min || in.Imm > imm16Max {
			return 0, fmt.Errorf("isa: imm16 out of range: %d", in.Imm)
		}
		w |= uint32(in.Rd) << rdShift
		w |= uint32(in.Rs1) << rs1Shift
		w |= uint32(uint16(in.Imm))
	case FormatJ:
		if in.Imm < imm26Min || in.Imm > imm26Max {
			return 0, fmt.Errorf("isa: imm26 out of range: %d", in.Imm)
		}
		w |= uint32(in.Imm) & 0x03FFFFFF
	case FormatNone:
		// opcode only
	}
	return w, nil
}

// MustEncode is Encode that panics on error; for use with instruction
// streams constructed by trusted generators.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit machine word into an Inst.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> opShift)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d in %#x", uint8(op), w)
	}
	in := Inst{Op: op}
	switch FormatOf(op) {
	case FormatR:
		in.Rd = Reg((w >> rdShift) & regMask)
		in.Rs1 = Reg((w >> rs1Shift) & regMask)
		in.Rs2 = Reg((w >> rs2Shift) & regMask)
	case FormatI:
		in.Rd = Reg((w >> rdShift) & regMask)
		in.Rs1 = Reg((w >> rs1Shift) & regMask)
		in.Imm = int32(int16(uint16(w)))
	case FormatJ:
		imm := w & 0x03FFFFFF
		// sign-extend 26 -> 32
		if imm&(1<<25) != 0 {
			imm |= 0xFC000000
		}
		in.Imm = int32(imm)
	}
	return in, nil
}

// EncodeProgram serializes a sequence of instructions into little-endian
// machine code.
func EncodeProgram(insts []Inst) ([]byte, error) {
	buf := make([]byte, 0, len(insts)*WordSize)
	for i, in := range insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, w)
	}
	return buf, nil
}

// DecodeProgram deserializes little-endian machine code into instructions.
func DecodeProgram(code []byte) ([]Inst, error) {
	if len(code)%WordSize != 0 {
		return nil, fmt.Errorf("isa: code length %d is not a multiple of %d", len(code), WordSize)
	}
	insts := make([]Inst, 0, len(code)/WordSize)
	for off := 0; off < len(code); off += WordSize {
		w := binary.LittleEndian.Uint32(code[off:])
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: offset %d: %w", off, err)
		}
		insts = append(insts, in)
	}
	return insts, nil
}

// Disassemble renders machine code as one assembler line per instruction,
// prefixed with the PC relative to base.
func Disassemble(code []byte, base uint32) (string, error) {
	insts, err := DecodeProgram(code)
	if err != nil {
		return "", err
	}
	out := make([]byte, 0, len(insts)*24)
	for i, in := range insts {
		out = fmt.Appendf(out, "%08x: %s\n", base+uint32(i*WordSize), in)
	}
	return string(out), nil
}
