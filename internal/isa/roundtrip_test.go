package isa

import (
	"strings"
	"testing"

	"dynocache/internal/stats"
)

// randomInst draws a uniformly random well-formed instruction.
func randomInst(r *stats.Rand) Inst {
	op := Opcode(r.Intn(int(numOpcodes)))
	in := Inst{Op: op}
	switch FormatOf(op) {
	case FormatR:
		in.Rd = Reg(r.Intn(NumRegs))
		in.Rs1 = Reg(r.Intn(NumRegs))
		in.Rs2 = Reg(r.Intn(NumRegs))
	case FormatI:
		in.Rd = Reg(r.Intn(NumRegs))
		in.Rs1 = Reg(r.Intn(NumRegs))
		in.Imm = int32(r.Intn(1<<16)) - (1 << 15)
	case FormatJ:
		in.Imm = int32(r.Intn(1<<26)) - (1 << 25)
	}
	return in
}

// Property: the assembler parses the disassembler's output back to the
// identical instruction — for every opcode, including traps.
func TestAsmDisasmFixpoint(t *testing.T) {
	r := stats.NewRand(0xA53, 1)
	for trial := 0; trial < 5000; trial++ {
		in := randomInst(r)
		switch FormatOf(in.Op) {
		case FormatR:
			if in.Op == OpJr || in.Op == OpJalr {
				// Only rs1 is printed; normalize the silent fields.
				in.Rd, in.Rs2 = 0, 0
			}
		case FormatI:
			if in.Op == OpLui || in.Op == OpTrap {
				in.Rs1 = 0
			}
			if in.Op == OpTrap {
				in.Rd = 0
			}
		case FormatNone:
			in = Inst{Op: in.Op}
		}
		text := in.String()
		back, err := AssembleInsts(text)
		if err != nil {
			t.Fatalf("trial %d: %q did not parse: %v", trial, text, err)
		}
		if len(back) != 1 || back[0] != in {
			t.Fatalf("trial %d: %q round-tripped to %+v, want %+v", trial, text, back[0], in)
		}
	}
}

// Property: a whole random program survives assemble -> encode ->
// disassemble -> assemble unchanged.
func TestProgramTextualRoundTrip(t *testing.T) {
	r := stats.NewRand(0xA54, 2)
	var lines []string
	var want []Inst
	for i := 0; i < 400; i++ {
		in := randomInst(r)
		// Normalize silent fields the way the printer does.
		switch {
		case in.Op == OpJr || in.Op == OpJalr:
			in.Rd, in.Rs2 = 0, 0
		case in.Op == OpLui || in.Op == OpTrap:
			in.Rs1 = 0
			if in.Op == OpTrap {
				in.Rd = 0
			}
		case FormatOf(in.Op) == FormatNone:
			in = Inst{Op: in.Op}
		}
		want = append(want, in)
		lines = append(lines, in.String())
	}
	got, err := AssembleInsts(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d: %q -> %+v, want %+v", i, lines[i], got[i], want[i])
		}
	}
}

func TestTrapAssembly(t *testing.T) {
	insts, err := AssembleInsts("trap 42")
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Op != OpTrap || insts[0].Imm != 42 {
		t.Fatalf("trap parsed as %+v", insts[0])
	}
	for _, bad := range []string{"trap", "trap x", "trap 1, 2"} {
		if _, err := AssembleInsts(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
