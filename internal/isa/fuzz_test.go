package isa

import "testing"

// FuzzDecode checks that Decode never panics and that every successfully
// decoded word re-encodes to itself modulo silent fields (the canonical
// encoding property).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(MustEncode(Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -7}))
	f.Add(MustEncode(Inst{Op: OpJmp, Imm: -(1 << 25)}))
	f.Add(MustEncode(Inst{Op: OpTrap, Imm: 77}))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return // invalid opcodes are fine; they must just not panic
		}
		back, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %#x to %+v which does not re-encode: %v", w, in, err)
		}
		// Re-decoding the canonical encoding must be a fixpoint.
		again, err := Decode(back)
		if err != nil || again != in {
			t.Fatalf("canonical encoding not stable: %#x -> %+v -> %#x -> %+v", w, in, back, again)
		}
	})
}

// FuzzAssemble checks the assembler never panics on arbitrary text.
func FuzzAssemble(f *testing.F) {
	f.Add("addi r1, r0, 5\nhalt")
	f.Add("loop: bne r1, r0, loop")
	f.Add("lw r1, 4(r2)")
	f.Add("x: y: z:")
	f.Add("; comment only")
	f.Fuzz(func(t *testing.T, src string) {
		insts, err := AssembleInsts(src)
		if err != nil {
			return
		}
		// Whatever assembles must encode.
		if _, err := EncodeProgram(insts); err != nil {
			t.Fatalf("assembled %q but cannot encode: %v", src, err)
		}
	})
}
