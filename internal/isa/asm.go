package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates DRISC assembler text into machine code.
//
// Syntax, one instruction per line:
//
//	loop:                    ; labels end with ':'
//	    addi r1, r1, -1      ; comments start with ';' or '#'
//	    bne  r1, r0, loop    ; branch targets may be labels or integers
//	    jal  helper
//	    jr   r15
//	    lw   r2, 8(r3)
//	    halt
//
// Branch/jump label operands are resolved to pc-relative word offsets.
func Assemble(src string) ([]byte, error) {
	insts, err := AssembleInsts(src)
	if err != nil {
		return nil, err
	}
	return EncodeProgram(insts)
}

// AssembleInsts is Assemble but returns the decoded instruction list.
func AssembleInsts(src string) ([]Inst, error) {
	type pending struct {
		instIdx int
		label   string
		line    int
	}
	var (
		insts   []Inst
		labels  = map[string]int{} // label -> instruction index
		fixups  []pending
		lineNum int
	)
	for _, rawLine := range strings.Split(src, "\n") {
		lineNum++
		line := stripComment(rawLine)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: allow "label:" alone or "label: inst".
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNum, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNum, label)
			}
			labels[label] = len(insts)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNum, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instIdx: len(insts), label: labelRef, line: lineNum})
		}
		insts = append(insts, in)
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", fx.line, fx.label)
		}
		// pc-relative word offset from the *next* instruction.
		insts[fx.instIdx].Imm = int32(target - (fx.instIdx + 1))
	}
	return insts, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		return line[:i]
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for op := Opcode(0); op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

// parseInst parses one instruction. If the final operand is a label
// reference (for branches/jumps), it is returned for later fixup.
func parseInst(line string) (Inst, string, error) {
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	op, ok := mnemonics[mnem]
	if !ok {
		return Inst{}, "", fmt.Errorf("unknown mnemonic %q", mnem)
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	var ops []string
	if rest != "" {
		for _, o := range strings.Split(rest, ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	in := Inst{Op: op}
	switch op {
	case OpNop, OpHalt, OpSyscall:
		if len(ops) != 0 {
			return Inst{}, "", fmt.Errorf("%s takes no operands", mnem)
		}
		return in, "", nil
	case OpJr, OpJalr:
		if len(ops) != 1 {
			return Inst{}, "", fmt.Errorf("%s takes one register operand", mnem)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		in.Rs1 = r
		return in, "", nil
	case OpJmp, OpJal:
		if len(ops) != 1 {
			return Inst{}, "", fmt.Errorf("%s takes one target operand", mnem)
		}
		if n, err := strconv.ParseInt(ops[0], 10, 32); err == nil {
			in.Imm = int32(n)
			return in, "", nil
		}
		if !isIdent(ops[0]) {
			return Inst{}, "", fmt.Errorf("bad jump target %q", ops[0])
		}
		return in, ops[0], nil
	case OpTrap:
		if len(ops) != 1 {
			return Inst{}, "", fmt.Errorf("trap takes one stub index")
		}
		n, err := strconv.ParseInt(ops[0], 10, 32)
		if err != nil {
			return Inst{}, "", fmt.Errorf("bad stub index %q", ops[0])
		}
		in.Imm = int32(n)
		return in, "", nil
	case OpLui:
		if len(ops) != 2 {
			return Inst{}, "", fmt.Errorf("lui takes rd, imm")
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		n, err := strconv.ParseInt(ops[1], 10, 32)
		if err != nil {
			return Inst{}, "", fmt.Errorf("bad immediate %q", ops[1])
		}
		in.Rd, in.Imm = r, int32(n)
		return in, "", nil
	case OpLw, OpSw:
		if len(ops) != 2 {
			return Inst{}, "", fmt.Errorf("%s takes rd, imm(rs1)", mnem)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		imm, base, err := parseMem(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		in.Rd, in.Rs1, in.Imm = r, base, imm
		return in, "", nil
	case OpBeq, OpBne, OpBlt, OpBge:
		if len(ops) != 3 {
			return Inst{}, "", fmt.Errorf("%s takes rd, rs1, target", mnem)
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		in.Rd, in.Rs1 = a, b
		if n, err := strconv.ParseInt(ops[2], 10, 32); err == nil {
			in.Imm = int32(n)
			return in, "", nil
		}
		if !isIdent(ops[2]) {
			return Inst{}, "", fmt.Errorf("bad branch target %q", ops[2])
		}
		return in, ops[2], nil
	case OpAddi:
		if len(ops) != 3 {
			return Inst{}, "", fmt.Errorf("addi takes rd, rs1, imm")
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		n, err := strconv.ParseInt(ops[2], 10, 32)
		if err != nil {
			return Inst{}, "", fmt.Errorf("bad immediate %q", ops[2])
		}
		in.Rd, in.Rs1, in.Imm = a, b, int32(n)
		return in, "", nil
	default: // three-register ALU
		if len(ops) != 3 {
			return Inst{}, "", fmt.Errorf("%s takes rd, rs1, rs2", mnem)
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		c, err := parseReg(ops[2])
		if err != nil {
			return Inst{}, "", err
		}
		in.Rd, in.Rs1, in.Rs2 = a, b, c
		return in, "", nil
	}
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

// parseMem parses "imm(rN)" memory operands.
func parseMem(s string) (int32, Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	n, err := strconv.ParseInt(immStr, 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad displacement %q", immStr)
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return int32(n), r, nil
}
