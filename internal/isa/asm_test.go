package isa

import (
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
        ; count down from 10
        addi r1, r0, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
`
	insts, err := AssembleInsts(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 4 {
		t.Fatalf("got %d instructions, want 4", len(insts))
	}
	// bne at index 2 targets index 1 -> offset 1 - 3 = -2
	if insts[2].Op != OpBne || insts[2].Imm != -2 {
		t.Fatalf("branch fixup wrong: %+v", insts[2])
	}
}

func TestAssembleForwardLabelAndJal(t *testing.T) {
	src := `
        jal helper
        halt
helper: addi r2, r0, 1
        jr r15
`
	insts, err := AssembleInsts(src)
	if err != nil {
		t.Fatal(err)
	}
	// jal at 0 targets index 2 -> offset 2 - 1 = 1
	if insts[0].Op != OpJal || insts[0].Imm != 1 {
		t.Fatalf("jal fixup wrong: %+v", insts[0])
	}
}

func TestAssembleLabelOnOwnLineAndSameLine(t *testing.T) {
	src := `
a:
b: addi r1, r0, 1
   jmp a
   jmp b
`
	insts, err := AssembleInsts(src)
	if err != nil {
		t.Fatal(err)
	}
	if insts[1].Imm != -2 || insts[2].Imm != -3 {
		t.Fatalf("both labels should point at inst 0: %+v %+v", insts[1], insts[2])
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	insts, err := AssembleInsts("lw r1, 8(r2)\nsw r3, (r4)\nsw r5, -12(r6)")
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Imm != 8 || insts[0].Rs1 != 2 {
		t.Fatalf("lw parsed wrong: %+v", insts[0])
	}
	if insts[1].Imm != 0 || insts[1].Rs1 != 4 {
		t.Fatalf("bare (rN) parsed wrong: %+v", insts[1])
	}
	if insts[2].Imm != -12 {
		t.Fatalf("negative displacement wrong: %+v", insts[2])
	}
}

func TestAssembleNumericTargets(t *testing.T) {
	insts, err := AssembleInsts("beq r1, r2, -3\njmp 7")
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Imm != -3 || insts[1].Imm != 7 {
		t.Fatalf("numeric targets wrong: %+v %+v", insts[0], insts[1])
	}
}

func TestAssembleComments(t *testing.T) {
	insts, err := AssembleInsts("addi r1, r0, 1 ; trailing\n# whole line\nhalt # another")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("got %d instructions, want 2", len(insts))
	}
}

func TestAssembleRoundTripThroughEncode(t *testing.T) {
	src := "addi r1, r0, 5\nmul r2, r1, r1\nhalt"
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := DecodeProgram(code)
	if err != nil {
		t.Fatal(err)
	}
	if insts[1].Op != OpMul || insts[1].Rd != 2 {
		t.Fatalf("mul decoded wrong: %+v", insts[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frob r1, r2, r3",    // unknown mnemonic
		"addi r1, r0",        // too few operands
		"addi r1, r0, x",     // bad immediate
		"add r1, r2",         // too few ALU operands
		"jr r1, r2",          // too many operands
		"jr 5",               // register expected
		"beq r1, r2, 9q",     // bad target
		"jmp nowhere",        // undefined label
		"lw r1, r2",          // bad memory operand
		"lw r1, 4(x2)",       // bad base register
		"lw r1, z(r2)",       // bad displacement
		"halt r1",            // operand on nullary op
		"lui r1",             // too few lui operands
		"addi r99, r0, 1",    // bad register number
		"dup: nop\ndup: nop", // duplicate label
		"9bad: nop",          // invalid label
		"jmp 1.5",            // bad numeric jump target
	}
	for _, src := range cases {
		if _, err := AssembleInsts(src); err == nil {
			t.Errorf("Assemble(%q) should have failed", src)
		}
	}
}
