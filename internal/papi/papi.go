// Package papi simulates the hardware instruction-count measurements the
// paper took with the PAPI performance-counter interface (§4.3, §5.2).
//
// The paper instrumented DynamoRIO's evictor, regenerator, and unlinker
// with PAPI counters, logged >10,000 operations, and fitted least-squares
// trendlines to obtain Equations 2-4. We have no hardware counters and no
// DynamoRIO, so this package plays the role of the instrumented runtime: a
// micro-cost model of each primitive produces per-operation instruction
// counts with deterministic measurement noise, and the same regression
// pipeline (internal/stats) recovers the published coefficients.
//
// The micro-cost models decompose each primitive the way the paper
// describes the work:
//
//	eviction:  fixed invocation cost (state save, frontier bookkeeping)
//	           + per-block hash-table removal + per-byte arena scrub
//	miss:      fixed dispatch/bookkeeping + per-byte re-translation and
//	           copy-in (dominant: Equation 3's slope is 27x Equation 2's)
//	unlink:    fixed lookup + per-link back-pointer walk and patch
//
// Constants are chosen so the aggregate per-byte / per-operation costs
// match Equations 2-4; the per-block terms fold into the fitted slope and
// intercept exactly as they did in the paper's measurements.
package papi

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/stats"
)

// Instrumentation is a simulated PAPI counter harness.
type Instrumentation struct {
	r *stats.Rand
	// NoiseFloor and NoiseFrac control measurement noise: each sample is
	// perturbed by a normal deviate with sigma = NoiseFloor + NoiseFrac *
	// trueCost, modelling counter jitter, interrupts, and cache effects.
	NoiseFloor float64
	NoiseFrac  float64
}

// New returns an instrumentation harness with deterministic noise.
func New(seed uint64) *Instrumentation {
	return &Instrumentation{
		r:          stats.NewRand(seed, 0x9A91),
		NoiseFloor: 120,
		NoiseFrac:  0.04,
	}
}

// Micro-cost constants. The per-byte and fixed components reproduce the
// paper's equations; per-block terms are small and absorbed by the fit.
const (
	evictFixed    = 3000.0 // invocation: save state, bookkeeping
	evictPerBlock = 18.0   // hash-table removal per superblock
	evictPerByte  = 2.72   // arena scrub per byte

	missFixed   = 1850.0 // dispatch, hash insert, state restore
	missPerByte = 75.2   // re-translation and copy of the region

	unlinkFixed   = 90.0  // eviction-candidate back-pointer lookup
	unlinkPerLink = 295.0 // walk + unpatch per incoming link
)

func (ins *Instrumentation) noisy(trueCost float64) float64 {
	v := trueCost + ins.r.Normal(0, ins.NoiseFloor+ins.NoiseFrac*trueCost)
	if v < 1 {
		v = 1
	}
	return v
}

// MeasureEviction returns the simulated instruction count of one eviction
// invocation that removed the given bytes across the given block count.
func (ins *Instrumentation) MeasureEviction(bytes, blocks int) float64 {
	return ins.noisy(evictFixed + evictPerBlock*float64(blocks) + evictPerByte*float64(bytes))
}

// MeasureMiss returns the simulated instruction count of regenerating a
// superblock of the given size.
func (ins *Instrumentation) MeasureMiss(bytes int) float64 {
	return ins.noisy(missFixed + missPerByte*float64(bytes))
}

// MeasureUnlink returns the simulated instruction count of removing the
// given number of incoming links from an eviction candidate.
func (ins *Instrumentation) MeasureUnlink(links int) float64 {
	return ins.noisy(unlinkFixed + unlinkPerLink*float64(links))
}

// EvictionLog converts recorded eviction samples into (sizeBytes,
// instructions) measurement pairs — the scatter of Figure 9.
func (ins *Instrumentation) EvictionLog(samples []core.EvictionSample) (xs, ys []float64) {
	xs = make([]float64, 0, len(samples))
	ys = make([]float64, 0, len(samples))
	for _, s := range samples {
		xs = append(xs, float64(s.Bytes))
		ys = append(ys, ins.MeasureEviction(s.Bytes, s.Blocks))
	}
	return xs, ys
}

// MissLog produces (sizeBytes, instructions) pairs for a set of
// regenerated block sizes.
func (ins *Instrumentation) MissLog(sizes []int) (xs, ys []float64) {
	xs = make([]float64, 0, len(sizes))
	ys = make([]float64, 0, len(sizes))
	for _, s := range sizes {
		xs = append(xs, float64(s))
		ys = append(ys, ins.MeasureMiss(s))
	}
	return xs, ys
}

// UnlinkLog produces (numLinks, instructions) pairs for a set of unlink
// operations described by their link counts.
func (ins *Instrumentation) UnlinkLog(linkCounts []int) (xs, ys []float64) {
	xs = make([]float64, 0, len(linkCounts))
	ys = make([]float64, 0, len(linkCounts))
	for _, n := range linkCounts {
		xs = append(xs, float64(n))
		ys = append(ys, ins.MeasureUnlink(n))
	}
	return xs, ys
}

// Fit runs the paper's least-squares trendline over a measurement log.
func Fit(xs, ys []float64) (stats.LinearFit, error) {
	if len(xs) < 100 {
		return stats.LinearFit{}, fmt.Errorf("papi: only %d samples; the paper collected >10,000", len(xs))
	}
	return stats.LeastSquares(xs, ys)
}
