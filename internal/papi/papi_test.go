package papi

import (
	"math"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/stats"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.MeasureMiss(200) != b.MeasureMiss(200) {
			t.Fatal("same-seed instrumentation diverged")
		}
	}
}

func TestMeasurementsPositive(t *testing.T) {
	ins := New(1)
	for i := 0; i < 1000; i++ {
		if ins.MeasureEviction(10, 1) < 1 || ins.MeasureMiss(10) < 1 || ins.MeasureUnlink(0) < 1 {
			t.Fatal("measurement below floor")
		}
	}
}

func TestEvictionFitRecoversEquation2(t *testing.T) {
	// Build a realistic eviction log: unit-flush-sized evictions over a
	// spread of byte counts, as a DynamoRIO run would produce.
	r := stats.NewRand(3, 1)
	ins := New(3)
	samples := make([]core.EvictionSample, 12000)
	for i := range samples {
		blocks := 1 + r.Intn(12)
		bytes := 0
		for j := 0; j < blocks; j++ {
			bytes += 60 + r.Intn(500)
		}
		samples[i] = core.EvictionSample{Bytes: bytes, Blocks: blocks}
	}
	xs, ys := ins.EvictionLog(samples)
	fit, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Equation 2: 2.77x + 3055. The per-block micro-cost folds into the
	// slope, so allow a modest tolerance band.
	if math.Abs(fit.Slope-2.77)/2.77 > 0.08 {
		t.Fatalf("slope = %g, want ~2.77", fit.Slope)
	}
	if math.Abs(fit.Intercept-3055)/3055 > 0.08 {
		t.Fatalf("intercept = %g, want ~3055", fit.Intercept)
	}
}

func TestMissFitRecoversEquation3(t *testing.T) {
	r := stats.NewRand(5, 1)
	ins := New(5)
	sizes := make([]int, 11000)
	for i := range sizes {
		sizes[i] = 30 + int(r.LogNormal(230, 0.9))
	}
	xs, ys := ins.MissLog(sizes)
	fit, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-75.4)/75.4 > 0.05 {
		t.Fatalf("slope = %g, want ~75.4", fit.Slope)
	}
	if math.Abs(fit.Intercept-1922)/1922 > 0.15 {
		t.Fatalf("intercept = %g, want ~1922", fit.Intercept)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %g; the paper's regression was tight", fit.R2)
	}
}

func TestUnlinkFitRecoversEquation4(t *testing.T) {
	r := stats.NewRand(7, 1)
	ins := New(7)
	counts := make([]int, 10500)
	for i := range counts {
		counts[i] = r.Geometric(1.7)
	}
	xs, ys := ins.UnlinkLog(counts)
	fit, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-296.5)/296.5 > 0.05 {
		t.Fatalf("slope = %g, want ~296.5", fit.Slope)
	}
	if math.Abs(fit.Intercept-95.7) > 40 {
		t.Fatalf("intercept = %g, want ~95.7", fit.Intercept)
	}
}

func TestFitRequiresEnoughSamples(t *testing.T) {
	if _, err := Fit(make([]float64, 50), make([]float64, 50)); err == nil {
		t.Error("the paper collected >10,000 samples; tiny logs should be rejected")
	}
}

func TestLogsPairwiseShapes(t *testing.T) {
	ins := New(9)
	xs, ys := ins.MissLog([]int{100, 200})
	if len(xs) != 2 || len(ys) != 2 || xs[0] != 100 || xs[1] != 200 {
		t.Fatalf("MissLog shapes wrong: %v %v", xs, ys)
	}
	xs, ys = ins.UnlinkLog([]int{0, 3})
	if len(xs) != 2 || xs[1] != 3 {
		t.Fatalf("UnlinkLog shapes wrong: %v %v", xs, ys)
	}
	xs, ys = ins.EvictionLog([]core.EvictionSample{{Bytes: 500, Blocks: 2}})
	if len(xs) != 1 || xs[0] != 500 || ys[0] <= 0 {
		t.Fatalf("EvictionLog shapes wrong: %v %v", xs, ys)
	}
}
