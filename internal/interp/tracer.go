package interp

import (
	"fmt"
	"io"

	"dynocache/internal/isa"
)

// RunTraced executes like Run but writes a per-instruction execution log
// to w: the PC, the disassembled instruction, and any register it changed.
// It is a debugging aid for small guest programs and for inspecting
// translated superblocks in place.
func (m *Machine) RunTraced(w io.Writer, maxInsts uint64) error {
	for m.InstCount < maxInsts {
		if m.Halted {
			return nil
		}
		pc := m.PC
		in, err := m.Fetch(pc)
		if err != nil {
			return err
		}
		before := m.Regs
		if err := m.Exec(in); err != nil {
			fmt.Fprintf(w, "%08x: %-24s ! %v\n", pc, in, err)
			return err
		}
		delta := ""
		for r := 1; r < isa.NumRegs; r++ {
			if m.Regs[r] != before[r] {
				delta = fmt.Sprintf("  r%d <- %#x", r, m.Regs[r])
				break
			}
		}
		fmt.Fprintf(w, "%08x: %-24s%s\n", pc, in, delta)
	}
	if m.Halted {
		return nil
	}
	return ErrFuel
}
