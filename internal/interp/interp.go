// Package interp implements a DRISC interpreter.
//
// In the dynocache system the interpreter plays two roles, mirroring
// Figure 1 of the paper:
//
//  1. Cold execution: a dynamic optimization system interprets code until a
//     region becomes hot enough to translate. The DBT (package dbt) drives
//     a Machine instruction-by-instruction while profiling block
//     boundaries.
//  2. Reference semantics: tests run whole programs under the interpreter
//     and compare architectural state against DBT-managed execution,
//     verifying that cache evictions, relinking, and regeneration never
//     change program behaviour.
package interp

import (
	"errors"
	"fmt"

	"dynocache/internal/isa"
)

// Common execution errors.
var (
	// ErrHalted is returned by Step once the machine has executed halt.
	ErrHalted = errors.New("interp: machine is halted")
	// ErrFuel is returned by Run when the instruction budget is exhausted
	// before the program halts.
	ErrFuel = errors.New("interp: instruction budget exhausted")
	// ErrTrap is returned by Step when a translator-inserted trap
	// instruction executes. The machine's PC is left at the trap; the
	// stub index is in LastTrap. Only the DBT dispatcher handles this.
	ErrTrap = errors.New("interp: trap to dispatcher")
)

// MemoryError describes an out-of-range memory or code access.
type MemoryError struct {
	PC   uint32 // PC of the faulting instruction
	Addr uint32 // faulting address
	Op   string // "load", "store", "fetch"
}

func (e *MemoryError) Error() string {
	return fmt.Sprintf("interp: %s fault at addr %#x (pc %#x)", e.Op, e.Addr, e.PC)
}

// SyscallHandler is invoked for each syscall instruction. It may inspect
// and modify machine state. A nil handler makes syscall a no-op.
type SyscallHandler func(m *Machine)

// Machine is a DRISC processor with a flat little-endian memory.
// The zero register (r0) always reads as zero; writes to it are discarded.
type Machine struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	Mem  []byte
	// Halted is set once a halt instruction executes.
	Halted bool
	// InstCount counts every executed instruction, the unit in which the
	// paper expresses all cache-management overheads.
	InstCount uint64
	// Syscall, if non-nil, handles syscall instructions.
	Syscall SyscallHandler
	// LastTrap holds the stub index of the most recent trap instruction
	// (see ErrTrap).
	LastTrap int32
}

// New returns a machine with memSize bytes of zeroed memory.
func New(memSize int) *Machine {
	return &Machine{Mem: make([]byte, memSize)}
}

// Load copies code into memory at base and sets the PC to entry.
func (m *Machine) Load(code []byte, base, entry uint32) error {
	if int(base)+len(code) > len(m.Mem) {
		return fmt.Errorf("interp: code of %d bytes at %#x exceeds memory size %d", len(code), base, len(m.Mem))
	}
	copy(m.Mem[base:], code)
	m.PC = entry
	return nil
}

// Reset zeroes registers and counters but leaves memory intact.
func (m *Machine) Reset(entry uint32) {
	m.Regs = [isa.NumRegs]uint32{}
	m.PC = entry
	m.Halted = false
	m.InstCount = 0
}

// ReadReg returns the value of r, honoring the hardwired zero register.
func (m *Machine) ReadReg(r isa.Reg) uint32 {
	if r == isa.RZero {
		return 0
	}
	return m.Regs[r]
}

// WriteReg sets r to v; writes to r0 are discarded.
func (m *Machine) WriteReg(r isa.Reg, v uint32) {
	if r != isa.RZero {
		m.Regs[r] = v
	}
}

// Fetch decodes the instruction at pc without executing it.
func (m *Machine) Fetch(pc uint32) (isa.Inst, error) {
	if int(pc)+isa.WordSize > len(m.Mem) || pc%isa.WordSize != 0 {
		return isa.Inst{}, &MemoryError{PC: pc, Addr: pc, Op: "fetch"}
	}
	w := uint32(m.Mem[pc]) | uint32(m.Mem[pc+1])<<8 | uint32(m.Mem[pc+2])<<16 | uint32(m.Mem[pc+3])<<24
	return isa.Decode(w)
}

// loadWord reads a 32-bit little-endian word.
func (m *Machine) loadWord(pc, addr uint32) (uint32, error) {
	if int(addr)+4 > len(m.Mem) {
		return 0, &MemoryError{PC: pc, Addr: addr, Op: "load"}
	}
	return uint32(m.Mem[addr]) | uint32(m.Mem[addr+1])<<8 | uint32(m.Mem[addr+2])<<16 | uint32(m.Mem[addr+3])<<24, nil
}

// storeWord writes a 32-bit little-endian word.
func (m *Machine) storeWord(pc, addr, v uint32) error {
	if int(addr)+4 > len(m.Mem) {
		return &MemoryError{PC: pc, Addr: addr, Op: "store"}
	}
	m.Mem[addr] = byte(v)
	m.Mem[addr+1] = byte(v >> 8)
	m.Mem[addr+2] = byte(v >> 16)
	m.Mem[addr+3] = byte(v >> 24)
	return nil
}

// Step executes exactly one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	in, err := m.Fetch(m.PC)
	if err != nil {
		return err
	}
	return m.Exec(in)
}

// Exec applies one decoded instruction to the machine state. The caller is
// responsible for having fetched it from m.PC; control-flow semantics are
// relative to the current PC.
func (m *Machine) Exec(in isa.Inst) error {
	pc := m.PC
	next := isa.FallThrough(pc)
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)+m.ReadReg(in.Rs2))
	case isa.OpSub:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)-m.ReadReg(in.Rs2))
	case isa.OpAnd:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)&m.ReadReg(in.Rs2))
	case isa.OpOr:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)|m.ReadReg(in.Rs2))
	case isa.OpXor:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)^m.ReadReg(in.Rs2))
	case isa.OpShl:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)<<(m.ReadReg(in.Rs2)&31))
	case isa.OpShr:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)>>(m.ReadReg(in.Rs2)&31))
	case isa.OpMul:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)*m.ReadReg(in.Rs2))
	case isa.OpSlt:
		if int32(m.ReadReg(in.Rs1)) < int32(m.ReadReg(in.Rs2)) {
			m.WriteReg(in.Rd, 1)
		} else {
			m.WriteReg(in.Rd, 0)
		}
	case isa.OpAddi:
		m.WriteReg(in.Rd, m.ReadReg(in.Rs1)+uint32(in.Imm))
	case isa.OpLui:
		m.WriteReg(in.Rd, uint32(in.Imm)<<16)
	case isa.OpLw:
		v, err := m.loadWord(pc, m.ReadReg(in.Rs1)+uint32(in.Imm))
		if err != nil {
			return err
		}
		m.WriteReg(in.Rd, v)
	case isa.OpSw:
		if err := m.storeWord(pc, m.ReadReg(in.Rs1)+uint32(in.Imm), m.ReadReg(in.Rd)); err != nil {
			return err
		}
	case isa.OpBeq:
		if m.ReadReg(in.Rd) == m.ReadReg(in.Rs1) {
			next = in.BranchTarget(pc)
		}
	case isa.OpBne:
		if m.ReadReg(in.Rd) != m.ReadReg(in.Rs1) {
			next = in.BranchTarget(pc)
		}
	case isa.OpBlt:
		if int32(m.ReadReg(in.Rd)) < int32(m.ReadReg(in.Rs1)) {
			next = in.BranchTarget(pc)
		}
	case isa.OpBge:
		if int32(m.ReadReg(in.Rd)) >= int32(m.ReadReg(in.Rs1)) {
			next = in.BranchTarget(pc)
		}
	case isa.OpJmp:
		next = in.BranchTarget(pc)
	case isa.OpJal:
		m.WriteReg(isa.RLink, next)
		next = in.BranchTarget(pc)
	case isa.OpJr:
		next = m.ReadReg(in.Rs1)
	case isa.OpJalr:
		target := m.ReadReg(in.Rs1)
		m.WriteReg(isa.RLink, next)
		next = target
	case isa.OpSyscall:
		if m.Syscall != nil {
			m.Syscall(m)
		}
	case isa.OpHalt:
		m.Halted = true
	case isa.OpTrap:
		// Management exit, not guest work: leave the PC on the trap, do
		// not count the instruction, and let the dispatcher take over.
		m.LastTrap = in.Imm
		return ErrTrap
	default:
		return fmt.Errorf("interp: unimplemented opcode %s at pc %#x", in.Op, pc)
	}
	m.InstCount++
	m.PC = next
	return nil
}

// Run executes until halt or until maxInsts instructions have executed.
// It returns nil on a clean halt and ErrFuel if the budget ran out.
func (m *Machine) Run(maxInsts uint64) error {
	for m.InstCount < maxInsts {
		if m.Halted {
			return nil
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	if m.Halted {
		return nil
	}
	return ErrFuel
}

// Snapshot captures the architectural state relevant for behavioural
// equivalence checks: registers and PC. Memory is compared separately when
// needed (it can be large).
type Snapshot struct {
	Regs   [isa.NumRegs]uint32
	PC     uint32
	Halted bool
}

// State returns the current architectural snapshot.
func (m *Machine) State() Snapshot {
	return Snapshot{Regs: m.Regs, PC: m.PC, Halted: m.Halted}
}

// Equal reports whether two snapshots agree on every architectural field.
func (s Snapshot) Equal(o Snapshot) bool { return s == o }
