package interp

import (
	"errors"
	"strings"
	"testing"

	"dynocache/internal/isa"
	"dynocache/internal/program"
)

// run assembles src, loads it at 0, and runs it to completion.
func run(t *testing.T, src string, maxInsts uint64) *Machine {
	t.Helper()
	code, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(1 << 16)
	if err := m.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(maxInsts); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestCountdownLoop(t *testing.T) {
	m := run(t, `
        addi r1, r0, 10
        addi r2, r0, 0
loop:   addi r2, r2, 3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`, 1000)
	if !m.Halted {
		t.Fatal("machine did not halt")
	}
	if m.Regs[2] != 30 {
		t.Fatalf("r2 = %d, want 30", m.Regs[2])
	}
	// 2 setup + 10 iterations * 3 + halt
	if m.InstCount != 2+30+1 {
		t.Fatalf("InstCount = %d, want 33", m.InstCount)
	}
}

func TestALUOps(t *testing.T) {
	m := run(t, `
        addi r1, r0, 12
        addi r2, r0, 5
        add  r3, r1, r2
        sub  r4, r1, r2
        and  r5, r1, r2
        or   r6, r1, r2
        xor  r7, r1, r2
        mul  r8, r1, r2
        slt  r9, r2, r1
        slt  r10, r1, r2
        halt
`, 100)
	want := map[isa.Reg]uint32{3: 17, 4: 7, 5: 4, 6: 13, 7: 9, 8: 60, 9: 1, 10: 0}
	for r, w := range want {
		if m.Regs[r] != w {
			t.Errorf("r%d = %d, want %d", r, m.Regs[r], w)
		}
	}
}

func TestShifts(t *testing.T) {
	m := run(t, `
        addi r1, r0, 1
        addi r2, r0, 4
        shl  r3, r1, r2
        shr  r4, r3, r2
        halt
`, 100)
	if m.Regs[3] != 16 || m.Regs[4] != 1 {
		t.Fatalf("shl/shr wrong: r3=%d r4=%d", m.Regs[3], m.Regs[4])
	}
}

func TestSignedComparisons(t *testing.T) {
	m := run(t, `
        addi r1, r0, -1
        addi r2, r0, 1
        slt  r3, r1, r2     ; -1 < 1 signed -> 1
        blt  r1, r2, less
        addi r4, r0, 99
less:   bge  r2, r1, done
        addi r5, r0, 99
done:   halt
`, 100)
	if m.Regs[3] != 1 {
		t.Fatalf("slt signed failed: r3=%d", m.Regs[3])
	}
	if m.Regs[4] != 0 || m.Regs[5] != 0 {
		t.Fatalf("branches not taken: r4=%d r5=%d", m.Regs[4], m.Regs[5])
	}
}

func TestLoadStore(t *testing.T) {
	m := run(t, `
        addi r1, r0, 1000
        addi r2, r0, 77
        sw   r2, 4(r1)
        lw   r3, 4(r1)
        halt
`, 100)
	if m.Regs[3] != 77 {
		t.Fatalf("load/store round trip: r3=%d, want 77", m.Regs[3])
	}
}

func TestLuiAddiMaterialization(t *testing.T) {
	m := run(t, `
        lui  r1, 2
        addi r1, r1, 52
        halt
`, 100)
	if m.Regs[1] != 2<<16+52 {
		t.Fatalf("r1 = %d, want %d", m.Regs[1], 2<<16+52)
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
        jal  f
        addi r2, r0, 5
        halt
f:      addi r1, r0, 7
        jr   r15
`, 100)
	if m.Regs[1] != 7 || m.Regs[2] != 5 {
		t.Fatalf("call/return wrong: r1=%d r2=%d", m.Regs[1], m.Regs[2])
	}
}

func TestIndirectCall(t *testing.T) {
	m := run(t, `
        addi r1, r0, 20    ; address of f (inst 5)
        jalr r1
        halt
        nop
        nop
f:      addi r2, r0, 9
        jr   r15
`, 100)
	if m.Regs[2] != 9 {
		t.Fatalf("indirect call wrong: r2=%d", m.Regs[2])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
        addi r0, r0, 55
        add  r1, r0, r0
        halt
`, 100)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Fatalf("r0 should stay zero: r0=%d r1=%d", m.Regs[0], m.Regs[1])
	}
}

func TestSyscallHandler(t *testing.T) {
	code, err := isa.Assemble("addi r1, r0, 3\nsyscall\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 12)
	if err := m.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	var got uint32
	m.Syscall = func(mm *Machine) { got = mm.Regs[1] }
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("syscall saw r1=%d, want 3", got)
	}
}

func TestSyscallNilHandlerIsNoop(t *testing.T) {
	m := run(t, "syscall\nhalt", 10)
	if !m.Halted {
		t.Fatal("should halt after syscall")
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := run(t, "halt", 10)
	if err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("Step after halt = %v, want ErrHalted", err)
	}
	if err := m.Run(10); err != nil {
		t.Fatalf("Run on halted machine = %v, want nil", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	code, _ := isa.Assemble("loop: jmp loop")
	m := New(1 << 12)
	if err := m.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); !errors.Is(err, ErrFuel) {
		t.Fatalf("infinite loop = %v, want ErrFuel", err)
	}
	if m.InstCount != 100 {
		t.Fatalf("InstCount = %d, want 100", m.InstCount)
	}
}

func TestMemoryFaults(t *testing.T) {
	// Load fault
	code, _ := isa.Assemble("lui r1, 255\nlw r2, 0(r1)\nhalt")
	m := New(1 << 12)
	if err := m.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	err := m.Run(100)
	var me *MemoryError
	if !errors.As(err, &me) || me.Op != "load" {
		t.Fatalf("expected load MemoryError, got %v", err)
	}
	if !strings.Contains(me.Error(), "load fault") {
		t.Errorf("error text: %v", me)
	}

	// Store fault
	code, _ = isa.Assemble("lui r1, 255\nsw r2, 0(r1)\nhalt")
	m = New(1 << 12)
	_ = m.Load(code, 0, 0)
	if err := m.Run(100); !errors.As(err, &me) || me.Op != "store" {
		t.Fatalf("expected store MemoryError, got %v", err)
	}

	// Fetch fault: jump outside memory
	code, _ = isa.Assemble("lui r1, 255\njr r1")
	m = New(1 << 12)
	_ = m.Load(code, 0, 0)
	if err := m.Run(100); !errors.As(err, &me) || me.Op != "fetch" {
		t.Fatalf("expected fetch MemoryError, got %v", err)
	}

	// Misaligned fetch
	code, _ = isa.Assemble("addi r1, r0, 2\njr r1")
	m = New(1 << 12)
	_ = m.Load(code, 0, 0)
	if err := m.Run(100); !errors.As(err, &me) || me.Op != "fetch" {
		t.Fatalf("expected misaligned fetch fault, got %v", err)
	}
}

func TestLoadTooBig(t *testing.T) {
	m := New(8)
	if err := m.Load(make([]byte, 16), 0, 0); err == nil {
		t.Fatal("oversized code should fail to load")
	}
}

func TestReset(t *testing.T) {
	m := run(t, "addi r1, r0, 5\nhalt", 10)
	m.Reset(0)
	if m.Halted || m.InstCount != 0 || m.Regs[1] != 0 || m.PC != 0 {
		t.Fatalf("Reset incomplete: %+v", m.State())
	}
}

func TestSnapshotEqual(t *testing.T) {
	a := Snapshot{PC: 4}
	b := Snapshot{PC: 4}
	if !a.Equal(b) {
		t.Error("equal snapshots compare unequal")
	}
	b.Regs[3] = 1
	if a.Equal(b) {
		t.Error("different snapshots compare equal")
	}
}

// Integration: a generated program runs to a clean halt under the
// interpreter and executes a healthy number of instructions.
func TestGeneratedProgramRunsToHalt(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := program.DefaultGenConfig(seed)
		p, err := program.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		code, err := p.Code()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := New(program.MemSize)
		if err := m.Load(code, program.CodeBase, p.Entry); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Run(100_000_000); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if !m.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
		if m.InstCount < 10_000 {
			t.Errorf("seed %d: only %d instructions executed; workload too small", seed, m.InstCount)
		}
	}
}

// Determinism: running the same generated program twice gives identical
// final state.
func TestGeneratedProgramDeterministicExecution(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	final := func() Snapshot {
		m := New(program.MemSize)
		if err := m.Load(code, program.CodeBase, p.Entry); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m.State()
	}
	if a, b := final(), final(); !a.Equal(b) {
		t.Fatal("same program produced different final states")
	}
}

func TestRunTraced(t *testing.T) {
	code, err := isa.Assemble("addi r1, r0, 5\naddi r2, r1, 2\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 12)
	if err := m.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := m.RunTraced(&buf, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "00000000: addi r1, r0, 5") {
		t.Fatalf("trace missing first instruction:\n%s", out)
	}
	if !strings.Contains(out, "r1 <- 0x5") || !strings.Contains(out, "r2 <- 0x7") {
		t.Fatalf("trace missing register deltas:\n%s", out)
	}
	if !strings.Contains(out, "halt") {
		t.Fatalf("trace missing halt:\n%s", out)
	}
}

func TestRunTracedFaults(t *testing.T) {
	code, _ := isa.Assemble("lui r1, 255\nlw r2, 0(r1)")
	m := New(1 << 12)
	_ = m.Load(code, 0, 0)
	var buf strings.Builder
	if err := m.RunTraced(&buf, 100); err == nil {
		t.Fatal("fault should propagate")
	}
	if !strings.Contains(buf.String(), "!") {
		t.Fatalf("fault not annotated:\n%s", buf.String())
	}
}

func TestRunTracedFuel(t *testing.T) {
	code, _ := isa.Assemble("loop: jmp loop")
	m := New(1 << 12)
	_ = m.Load(code, 0, 0)
	var buf strings.Builder
	if err := m.RunTraced(&buf, 5); !errors.Is(err, ErrFuel) {
		t.Fatalf("got %v, want ErrFuel", err)
	}
}
