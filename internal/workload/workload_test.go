package workload

import (
	"math"
	"testing"

	"dynocache/internal/core"
)

func TestTable1Fidelity(t *testing.T) {
	// The paper's Table 1 counts, reproduced exactly.
	want := map[string]int{
		"gzip": 301, "vpr": 449, "gcc": 8751, "mcf": 158, "crafty": 1488,
		"parser": 2418, "eon": 448, "perlbmk": 2144, "gap": 667,
		"vortex": 1985, "bzip2": 224, "twolf": 574,
		"iexplore": 14846, "outlook": 13233, "photoshop": 9434,
		"pinball": 1086, "powerpoint": 14475, "visualstudio": 7063,
		"winzip": 3198, "word": 18043,
	}
	ps := Table1()
	if len(ps) != 20 {
		t.Fatalf("Table1 has %d profiles, want 20", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if got := p.Superblocks; got != want[p.Name] {
			t.Errorf("%s: superblocks = %d, want %d", p.Name, got, want[p.Name])
		}
	}
	if got := len(SPECProfiles()); got != 12 {
		t.Errorf("SPEC profiles = %d, want 12", got)
	}
	if got := len(WindowsProfiles()); got != 8 {
		t.Errorf("Windows profiles = %d, want 8", got)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil || p.Superblocks != 301 {
		t.Fatalf("ByName(gzip) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestSuiteString(t *testing.T) {
	if SuiteSPEC.String() != "SPECint2000" || SuiteWindows.String() != "Windows" {
		t.Error("suite names wrong")
	}
}

func TestScaled(t *testing.T) {
	p, _ := ByName("word")
	s := p.Scaled(0.01)
	if s.Superblocks != 180 {
		t.Fatalf("scaled superblocks = %d, want 180", s.Superblocks)
	}
	tiny := p.Scaled(0.00001)
	if tiny.Superblocks != 8 {
		t.Fatalf("scaling floors at 8, got %d", tiny.Superblocks)
	}
	if len(ScaledTable1(0.01)) != 20 {
		t.Error("ScaledTable1 should keep all profiles")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("gzip")
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Superblocks = 0 },
		func(p *Profile) { p.MedianSize = 0 },
		func(p *Profile) { p.SizeSigma = -1 },
		func(p *Profile) { p.MeanLinks = -1 },
		func(p *Profile) { p.ReuseFactor = 0 },
		func(p *Profile) { p.ZipfS = -0.1 },
		func(p *Profile) { p.Phases = 0 },
		func(p *Profile) { p.TurnoverFrac = 1.5 },
		func(p *Profile) { p.WSFrac = 0 },
		func(p *Profile) { p.WSFrac = 1.5 },
		func(p *Profile) { p.HotFrac = -0.1 },
		func(p *Profile) { p.HotProb = 2 },
		func(p *Profile) { p.ExcursionProb = -1 },
		func(p *Profile) { p.SeqJumpProb = 1.1 },
	}
	for i, mut := range mutations {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the profile", i)
		}
		if _, err := p.Synthesize(); err == nil {
			t.Errorf("mutation %d: Synthesize should fail", i)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p, _ := ByName("gzip")
	a, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() != b.NumBlocks() || len(a.Accesses) != len(b.Accesses) {
		t.Fatal("shapes differ between identical syntheses")
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
	for id, sb := range a.Blocks {
		if b.Blocks[id].Size != sb.Size {
			t.Fatalf("block %d size differs", id)
		}
	}
}

func TestSynthesizeCalibration(t *testing.T) {
	p, _ := ByName("gzip")
	tr, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBlocks() != 301 {
		t.Fatalf("blocks = %d, want 301 (Table 1)", tr.NumBlocks())
	}
	if got := len(tr.Accesses); got < 301*p.ReuseFactor {
		t.Fatalf("accesses = %d, want >= %d", got, 301*p.ReuseFactor)
	}
	// Median size within 15% of the Figure 4 calibration target.
	med := tr.MedianSize()
	if math.Abs(med-244)/244 > 0.15 {
		t.Fatalf("median size = %g, want ~244", med)
	}
	// Mean outbound links near the Figure 12 value for this suite.
	links := tr.MeanOutboundLinks()
	if links < 1.0 || links > 2.4 {
		t.Fatalf("mean links = %g, want ~1.7", links)
	}
	// Some self-loops must exist.
	if tr.SelfLinkFraction() < 0.05 {
		t.Fatalf("self-link fraction = %g, too low", tr.SelfLinkFraction())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeSizesRightSkewed(t *testing.T) {
	p, _ := ByName("photoshop")
	tr, err := p.Scaled(0.2).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	sizes := tr.Sizes()
	var mean float64
	for _, s := range sizes {
		mean += s
	}
	mean /= float64(len(sizes))
	if mean <= tr.MedianSize() {
		t.Fatalf("Figure 3 skew missing: mean %g <= median %g", mean, tr.MedianSize())
	}
	// Minimum block size floor.
	for _, s := range sizes {
		if s < 16 {
			t.Fatalf("block smaller than floor: %g", s)
		}
	}
}

func TestSynthesizeTemporalLocality(t *testing.T) {
	// The access stream must be far more concentrated than uniform:
	// the top-10% most accessed blocks should absorb a large share.
	p, _ := ByName("crafty")
	tr, err := p.Scaled(0.3).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[core.SuperblockID]int{}
	for _, id := range tr.Accesses {
		counts[id]++
	}
	freq := make([]int, 0, len(counts))
	for _, c := range counts {
		freq = append(freq, c)
	}
	// Top decile share.
	total := 0
	for _, c := range freq {
		total += c
	}
	// Partial selection: simple sort.
	for i := 0; i < len(freq); i++ {
		for j := i + 1; j < len(freq); j++ {
			if freq[j] > freq[i] {
				freq[i], freq[j] = freq[j], freq[i]
			}
		}
	}
	top := len(freq) / 10
	if top < 1 {
		top = 1
	}
	topSum := 0
	for _, c := range freq[:top] {
		topSum += c
	}
	share := float64(topSum) / float64(total)
	if share < 0.2 {
		t.Fatalf("top-decile share = %g, stream looks uniform", share)
	}
}

func TestSynthesizeTinyProfile(t *testing.T) {
	p, _ := ByName("mcf")
	p = p.Scaled(0.0001) // floors at 8 blocks
	p.ReuseFactor = 2
	tr, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBlocks() != 8 {
		t.Fatalf("blocks = %d, want 8", tr.NumBlocks())
	}
	// Every defined block must be touched at least once.
	seen := map[core.SuperblockID]bool{}
	for _, id := range tr.Accesses {
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d of 8 blocks accessed", len(seen))
	}
}

func TestWindowsBlocksLargerThanSPEC(t *testing.T) {
	g, _ := ByName("gzip")
	w, _ := ByName("word")
	gt, err := g.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := w.Scaled(0.05).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if wt.MedianSize() <= gt.MedianSize() {
		t.Fatalf("Windows median %g should exceed SPEC median %g (Figure 4)",
			wt.MedianSize(), gt.MedianSize())
	}
}
