package workload

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
)

// Synthesize expands the profile into a replayable trace.
//
// The reference stream models how programs actually walk their code:
//
//   - A sliding *phase window* over the superblock population is the
//     current working set; execution predominantly cycles through it in
//     order (loop nests re-entering the same regions), with occasional
//     in-window jumps. Every Phases-th of the trace, the window slides by
//     TurnoverFrac of its width: old code cools off, fresh code heats up.
//   - A small global *hot set* (dispatch loops, utility routines) is
//     re-entered throughout the run with Zipf-skewed popularity.
//   - Rare *excursions* touch uniformly random cold blocks (error paths,
//     one-off initialization), which is what fills a code cache with
//     short-lived regions.
//
// This structure is what differentiates eviction granularities, matching
// the paper's observations: when the cache holds the working set (low
// pressure), FIFO-like policies evict mostly dead previous-phase code
// while FLUSH destroys the live window; when the window exceeds the cache
// (high pressure), cyclic reuse defeats every replacement policy and miss
// rates converge — leaving fine-grained eviction paying its per-invocation
// and unlinking overheads for nearly no miss benefit (Figures 7, 11, 15).
func (p Profile) Synthesize() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRand(p.Seed, 0x517)
	tr := trace.New(p.Name)

	// 1. Definitions: sizes and links for every superblock (Table 1 count,
	// Figure 3/4 sizes, Figure 12 links).
	n := p.Superblocks
	for i := 0; i < n; i++ {
		size := int(r.LogNormal(float64(p.MedianSize), p.SizeSigma))
		if size < 16 {
			size = 16 // a superblock carries at least a branch and a stub
		}
		sb := core.Superblock{
			ID:    core.SuperblockID(i),
			SrcPC: uint64(0x400000 + 64*i), // synthetic source address
			Size:  size,
			Links: p.genLinks(r, i, n),
		}
		if err := tr.Define(sb); err != nil {
			return nil, err
		}
	}

	// 2. Access stream.
	total := n * p.ReuseFactor

	// Working-set window.
	w := int(float64(n) * p.WSFrac)
	if w < 2 {
		w = 2
	}
	if w > n {
		w = n
	}
	step := int(float64(w) * p.TurnoverFrac)
	if step < 1 {
		step = 1
	}
	phaseLen := total / p.Phases
	if phaseLen < 1 {
		phaseLen = 1
	}

	// Global hot set: spread across the ID space with Zipf popularity.
	hotN := int(float64(n) * p.HotFrac)
	if hotN < 1 {
		hotN = 1
	}
	hot := make([]core.SuperblockID, hotN)
	for i := range hot {
		hot[i] = core.SuperblockID((i * n) / hotN)
	}

	winStart := 0
	cursor := 0
	for i := 0; i < total; i++ {
		if i > 0 && i%phaseLen == 0 {
			winStart = (winStart + step) % n
		}
		var id core.SuperblockID
		switch {
		case r.Bernoulli(p.HotProb):
			id = hot[r.Zipf(hotN, p.ZipfS)]
		case r.Bernoulli(p.ExcursionProb):
			id = core.SuperblockID(r.Intn(n))
		default:
			// Cyclic walk through the current window, with occasional
			// short forward skips (branches past cold paths). Skips move
			// with the walk direction, so they land ahead of the cursor in
			// code not visited for almost a full cycle.
			if r.Bernoulli(p.SeqJumpProb) {
				maxSkip := w / 8
				if maxSkip < 1 {
					maxSkip = 1
				}
				cursor += r.Intn(maxSkip)
			}
			id = core.SuperblockID((winStart + cursor) % n)
			cursor++
			if cursor >= w {
				cursor = 0
			}
		}
		if err := tr.Touch(id); err != nil {
			return nil, err
		}
	}
	// Touch any block the walk never reached so Table 1 counts are exact
	// and every definition is exercised.
	seen := make([]bool, n)
	for _, id := range tr.Accesses {
		seen[id] = true
	}
	for i, s := range seen {
		if !s {
			if err := tr.Touch(core.SuperblockID(i)); err != nil {
				return nil, err
			}
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: synthesized invalid trace: %w", p.Name, err)
	}
	return tr, nil
}

// genLinks draws the outbound links of block i (Figure 12 calibration):
// an optional self-loop, plus geometrically many targets that are mostly
// temporal neighbours in creation order, with an occasional far jump.
func (p Profile) genLinks(r *stats.Rand, i, n int) []core.SuperblockID {
	var links []core.SuperblockID
	seen := map[core.SuperblockID]bool{}
	add := func(id core.SuperblockID) {
		if !seen[id] {
			seen[id] = true
			links = append(links, id)
		}
	}
	meanOut := p.MeanLinks
	if r.Bernoulli(p.SelfLinkProb) {
		add(core.SuperblockID(i))
		meanOut -= p.SelfLinkProb // keep the overall mean at MeanLinks
	}
	if meanOut < 0 {
		meanOut = 0
	}
	k := r.Geometric(meanOut)
	for j := 0; j < k && j < 8; j++ {
		var target int
		if r.Bernoulli(p.FarLinkProb) {
			target = r.Intn(n)
		} else {
			// Temporal neighbour: displacement is geometric, direction
			// random (forward links model not-yet-translated successors).
			d := 1 + r.Geometric(p.LinkLocality)
			if r.Bernoulli(0.5) {
				d = -d
			}
			target = i + d
		}
		if target < 0 || target >= n || target == i {
			continue
		}
		add(core.SuperblockID(target))
	}
	return links
}
