// Package workload synthesizes calibrated code-cache traces.
//
// The paper drives its simulator with DynamoRIO logs of 12 SPECint2000
// benchmarks and 8 interactive Windows applications. We cannot run those
// binaries, so each benchmark is replaced by a statistical profile
// calibrated to the paper's published characteristics:
//
//   - hot-superblock count: Table 1, reproduced exactly;
//   - superblock size distribution: log-normal with the per-benchmark
//     medians of Figure 4 and the right-skewed dispersion of Figure 3
//     (Windows applications carry larger regions than SPEC);
//   - outbound link density: geometric with mean ~1.7 (Figure 12),
//     including self-loops, mostly targeting temporally nearby blocks;
//   - temporal locality: an LRU-stack reference model with Zipf-distributed
//     reuse depths and periodic working-set turnover (program phases),
//     the structure that makes eviction-policy choices matter.
//
// A profile deterministically expands into a trace.Trace; equal profiles
// always produce identical traces, mirroring the paper's saved logs.
package workload

import "fmt"

// Suite labels a benchmark's origin.
type Suite uint8

// The two benchmark suites of Table 1.
const (
	SuiteSPEC Suite = iota
	SuiteWindows
)

// String names the suite.
func (s Suite) String() string {
	if s == SuiteSPEC {
		return "SPECint2000"
	}
	return "Windows"
}

// Profile is a calibrated statistical description of one benchmark.
type Profile struct {
	Name        string
	Suite       Suite
	Description string // Table 1's description column

	// Superblocks is the number of hot superblocks the code cache must
	// manage (Table 1's middle column).
	Superblocks int

	// MedianSize is the median superblock size in bytes (Figure 4) and
	// SizeSigma the log-normal shape parameter controlling the right skew
	// of Figure 3.
	MedianSize int
	SizeSigma  float64

	// MeanLinks is the mean number of outbound links per superblock
	// (Figure 12 reports an average of 1.7), SelfLinkProb the probability
	// a block loops to itself, LinkLocality the mean |creation distance|
	// of a link target, and FarLinkProb the chance a link instead targets
	// a uniformly random block.
	MeanLinks    float64
	SelfLinkProb float64
	LinkLocality float64
	FarLinkProb  float64

	// ReuseFactor is the mean number of accesses per superblock in the
	// synthesized trace; SPEC loop nests re-enter regions far more often
	// than interactive applications.
	ReuseFactor int

	// WSFrac sizes the sliding working-set window as a fraction of the
	// superblock population. It is the profile's main cache-pressure
	// lever: the window fits a maxCache/2 cache but overflows a
	// maxCache/10 one.
	WSFrac float64
	// SeqJumpProb is the chance a working-set access restarts the cyclic
	// walk at a random in-window position instead of continuing in order.
	SeqJumpProb float64

	// HotFrac sizes the global always-hot set (dispatchers, utility
	// routines) as a fraction of the population; HotProb is the chance an
	// access goes there; ZipfS skews popularity inside it.
	HotFrac float64
	HotProb float64
	ZipfS   float64

	// ExcursionProb is the chance an access touches a uniformly random
	// cold block (error paths, one-off code).
	ExcursionProb float64

	// Phases is the number of window slides across the trace and
	// TurnoverFrac the slide distance as a fraction of the window width.
	Phases       int
	TurnoverFrac float64

	// Seed makes the expansion deterministic per benchmark.
	Seed uint64
}

// Validate reports the first problem with the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile missing name")
	case p.Superblocks < 1:
		return fmt.Errorf("workload: %s: Superblocks must be >= 1, got %d", p.Name, p.Superblocks)
	case p.MedianSize < 1:
		return fmt.Errorf("workload: %s: MedianSize must be >= 1, got %d", p.Name, p.MedianSize)
	case p.SizeSigma < 0:
		return fmt.Errorf("workload: %s: negative SizeSigma", p.Name)
	case p.MeanLinks < 0:
		return fmt.Errorf("workload: %s: negative MeanLinks", p.Name)
	case p.ReuseFactor < 1:
		return fmt.Errorf("workload: %s: ReuseFactor must be >= 1, got %d", p.Name, p.ReuseFactor)
	case p.ZipfS < 0:
		return fmt.Errorf("workload: %s: negative ZipfS", p.Name)
	case p.Phases < 1:
		return fmt.Errorf("workload: %s: Phases must be >= 1, got %d", p.Name, p.Phases)
	case p.TurnoverFrac < 0 || p.TurnoverFrac > 1:
		return fmt.Errorf("workload: %s: TurnoverFrac %g outside [0, 1]", p.Name, p.TurnoverFrac)
	case p.WSFrac <= 0 || p.WSFrac > 1:
		return fmt.Errorf("workload: %s: WSFrac %g outside (0, 1]", p.Name, p.WSFrac)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("workload: %s: HotFrac %g outside [0, 1]", p.Name, p.HotFrac)
	case p.HotProb < 0 || p.HotProb > 1:
		return fmt.Errorf("workload: %s: HotProb %g outside [0, 1]", p.Name, p.HotProb)
	case p.ExcursionProb < 0 || p.ExcursionProb > 1:
		return fmt.Errorf("workload: %s: ExcursionProb %g outside [0, 1]", p.Name, p.ExcursionProb)
	case p.SeqJumpProb < 0 || p.SeqJumpProb > 1:
		return fmt.Errorf("workload: %s: SeqJumpProb %g outside [0, 1]", p.Name, p.SeqJumpProb)
	}
	return nil
}

// Scaled returns a copy of the profile with the superblock count scaled by
// f (minimum 8 blocks), for fast tests and benchmarks. Distribution
// parameters are untouched.
func (p Profile) Scaled(f float64) Profile {
	q := p
	q.Superblocks = int(float64(p.Superblocks) * f)
	if q.Superblocks < 8 {
		q.Superblocks = 8
	}
	return q
}

// spec builds a SPECint2000 profile with suite-typical locality defaults.
// wsFrac is per-benchmark: it controls how hard the benchmark stresses a
// pressured cache (a small working set still fits at maxCache/10, so FLUSH
// hurts it badly while any FIFO variant keeps it resident; a large one
// defeats every policy equally).
func spec(name, desc string, superblocks, medianSize int, wsFrac float64, seed uint64) Profile {
	return Profile{
		Name: name, Suite: SuiteSPEC, Description: desc,
		Superblocks: superblocks,
		MedianSize:  medianSize, SizeSigma: 0.9,
		MeanLinks: 1.7, SelfLinkProb: 0.25, LinkLocality: 4, FarLinkProb: 0.08,
		ReuseFactor: 150,
		WSFrac:      wsFrac, SeqJumpProb: 0.02,
		HotFrac: 0.002, HotProb: 0.18, ZipfS: 1.1,
		ExcursionProb: 0.02,
		Phases:        8, TurnoverFrac: 0.5,
		Seed: seed,
	}
}

// win builds an interactive-Windows profile: bigger regions, more
// superblocks, less reuse per region, and more frequent phase shifts —
// the behaviour reference [15] reports stresses cache management hardest.
func win(name, desc string, superblocks, medianSize int, wsFrac float64, seed uint64) Profile {
	return Profile{
		Name: name, Suite: SuiteWindows, Description: desc,
		Superblocks: superblocks,
		MedianSize:  medianSize, SizeSigma: 1.1,
		MeanLinks: 1.7, SelfLinkProb: 0.2, LinkLocality: 6, FarLinkProb: 0.12,
		ReuseFactor: 60,
		WSFrac:      wsFrac, SeqJumpProb: 0.03,
		HotFrac: 0.002, HotProb: 0.15, ZipfS: 1.05,
		ExcursionProb: 0.04,
		Phases:        12, TurnoverFrac: 0.6,
		Seed: seed,
	}
}

// Table1 returns the paper's 20 benchmarks (Table 1): name, description,
// and hot-superblock count are reproduced from the paper; the remaining
// parameters are suite-level calibrations described in the package
// comment.
func Table1() []Profile {
	return []Profile{
		spec("gzip", "Compression", 301, 244, 0.30, 0x6721),
		spec("vpr", "FPGA Place+Route", 449, 242, 0.25, 0x6722),
		spec("gcc", "C Compiler", 8751, 237, 0.45, 0x6723),
		spec("mcf", "Combinatorial Optimization", 158, 233, 0.20, 0x6724),
		spec("crafty", "Chess Game", 1488, 223, 0.12, 0x6725),
		spec("parser", "Word Processing", 2418, 225, 0.35, 0x6726),
		spec("eon", "Computer Visualization", 448, 224, 0.25, 0x6727),
		spec("perlbmk", "PERL Language", 2144, 220, 0.40, 0x6728),
		spec("gap", "Group Theory Interpreter", 667, 213, 0.30, 0x6729),
		spec("vortex", "Object-Oriented Database", 1985, 190, 0.45, 0x672A),
		spec("bzip2", "Compression", 224, 230, 0.15, 0x672B),
		spec("twolf", "Place+Route", 574, 210, 0.12, 0x672C),
		win("iexplore", "Web Browser", 14846, 420, 0.50, 0x7731),
		win("outlook", "E-Mail App", 13233, 410, 0.45, 0x7732),
		win("photoshop", "Photo Editor", 9434, 450, 0.50, 0x7733),
		win("pinball", "3D Game Demo", 1086, 380, 0.20, 0x7734),
		win("powerpoint", "Presentation", 14475, 430, 0.45, 0x7735),
		win("visualstudio", "Development Env", 7063, 440, 0.50, 0x7736),
		win("winzip", "Compression", 3198, 390, 0.25, 0x7737),
		win("word", "Word Processor", 18043, 415, 0.55, 0x7738),
	}
}

// SPECProfiles returns only the SPECint2000 rows of Table 1.
func SPECProfiles() []Profile {
	return filterSuite(Table1(), SuiteSPEC)
}

// WindowsProfiles returns only the interactive Windows rows of Table 1.
func WindowsProfiles() []Profile {
	return filterSuite(Table1(), SuiteWindows)
}

func filterSuite(ps []Profile, s Suite) []Profile {
	out := ps[:0:0]
	for _, p := range ps {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the Table 1 profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Table1() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ScaledTable1 returns every Table 1 profile scaled by f; handy for tests
// and quick benchmark runs.
func ScaledTable1(f float64) []Profile {
	ps := Table1()
	for i := range ps {
		ps[i] = ps[i].Scaled(f)
	}
	return ps
}
