package workload

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// Interleave merges several benchmark traces into one multiprogrammed
// workload. The paper motivates bounded code caches by observing that
// "users tend to execute several programs at once" (§2.3): a shared cache
// then sees each program's working set evicted while others run. The
// merged trace round-robins through the inputs in quanta of the given
// number of accesses — each quantum boundary is a context switch.
//
// Block IDs are remapped into disjoint ranges so distinct programs never
// collide; link targets are remapped with them. Program i's base is the
// cumulative ID span of programs 0..i-1, so merging dense-ID traces (the
// synthesizer always emits IDs 0..n-1) yields a dense merged ID space —
// required for the core caches' slice-indexed tables to stay compact.
func Interleave(name string, quantum int, traces ...*trace.Trace) (*trace.Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("workload: Interleave needs at least one trace")
	}
	if quantum < 1 {
		return nil, fmt.Errorf("workload: quantum must be >= 1, got %d", quantum)
	}
	// Assign each program a contiguous ID range starting where the previous
	// program's range ends (its span is maxID+1 to tolerate sparse inputs).
	bases := make([]core.SuperblockID, len(traces))
	next := core.SuperblockID(0)
	for ti, tr := range traces {
		bases[ti] = next
		ids := tr.SortedIDs()
		if len(ids) == 0 {
			return nil, fmt.Errorf("workload: trace %q has no blocks", tr.Name)
		}
		span := ids[len(ids)-1] + 1
		if next > core.MaxSuperblockID-span {
			return nil, fmt.Errorf("workload: merged ID space exceeds %d at trace %q", core.MaxSuperblockID, tr.Name)
		}
		next += span
	}
	out := trace.New(name)
	for ti, tr := range traces {
		base := bases[ti]
		for _, id := range tr.SortedIDs() {
			sb := tr.Blocks[id]
			links := make([]core.SuperblockID, len(sb.Links))
			for i, to := range sb.Links {
				links[i] = base + to
			}
			if err := out.Define(core.Superblock{
				ID:    base + sb.ID,
				SrcPC: sb.SrcPC,
				Size:  sb.Size,
				Links: links,
			}); err != nil {
				return nil, err
			}
		}
	}
	// Round-robin the access streams in quanta until every stream drains.
	// A trace may define blocks but record zero accesses (a program that
	// never ran); such streams are born drained and must not be counted in
	// remaining, or the loop below would spin forever waiting for a
	// decrement that never happens.
	cursors := make([]int, len(traces))
	remaining := 0
	for _, tr := range traces {
		if len(tr.Accesses) > 0 {
			remaining++
		}
	}
	for remaining > 0 {
		for ti, tr := range traces {
			cur := cursors[ti]
			if cur >= len(tr.Accesses) {
				continue
			}
			end := cur + quantum
			if end >= len(tr.Accesses) {
				end = len(tr.Accesses)
				remaining--
			}
			base := bases[ti]
			for _, id := range tr.Accesses[cur:end] {
				if err := out.Touch(base + id); err != nil {
					return nil, err
				}
			}
			cursors[ti] = end
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("workload: interleaved trace invalid: %w", err)
	}
	return out, nil
}

// Multiprogram builds a canonical multiprogrammed workload from named
// Table 1 benchmarks at the given scale, context-switching every quantum
// accesses.
func Multiprogram(scale float64, quantum int, names ...string) (*trace.Trace, error) {
	var traces []*trace.Trace
	label := "multiprog"
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			return nil, err
		}
		tr, err := p.Scaled(scale).Synthesize()
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
		label += "+" + n
	}
	return Interleave(label, quantum, traces...)
}
