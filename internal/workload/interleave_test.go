package workload

import (
	"testing"
	"time"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

func synth(t *testing.T, name string, scale float64) *trace.Trace {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Scaled(scale).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInterleaveValidation(t *testing.T) {
	if _, err := Interleave("x", 100); err == nil {
		t.Error("no traces should fail")
	}
	tr := synth(t, "gzip", 0.1)
	if _, err := Interleave("x", 0, tr); err == nil {
		t.Error("zero quantum should fail")
	}
}

func TestInterleavePreservesEverything(t *testing.T) {
	a := synth(t, "gzip", 0.2)
	b := synth(t, "mcf", 0.5)
	merged, err := Interleave("gzip+mcf", 500, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := merged.NumBlocks(), a.NumBlocks()+b.NumBlocks(); got != want {
		t.Fatalf("blocks = %d, want %d", got, want)
	}
	if got, want := len(merged.Accesses), len(a.Accesses)+len(b.Accesses); got != want {
		t.Fatalf("accesses = %d, want %d", got, want)
	}
	if got, want := merged.TotalBytes(), a.TotalBytes()+b.TotalBytes(); got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
}

func TestInterleaveRemapsIDsDisjointly(t *testing.T) {
	a := synth(t, "gzip", 0.1)
	b := synth(t, "bzip2", 0.5)
	merged, err := Interleave("m", 200, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Program 1's range starts right after program 0's (dense remapping).
	base := core.SuperblockID(a.NumBlocks())
	seenSecond := false
	for id := range merged.Blocks {
		if id >= base {
			seenSecond = true
			if int(id-base) >= b.NumBlocks() {
				t.Fatalf("remapped ID %d outside program 1's range", id)
			}
		}
	}
	if !seenSecond {
		t.Fatal("no IDs from the second program")
	}
	// Dense inputs must merge into a dense ID space: every ID in
	// [0, total) is defined.
	total := a.NumBlocks() + b.NumBlocks()
	for i := 0; i < total; i++ {
		if _, ok := merged.Blocks[core.SuperblockID(i)]; !ok {
			t.Fatalf("merged ID space has a gap at %d", i)
		}
	}
}

func TestInterleaveQuantumStructure(t *testing.T) {
	a := synth(t, "gzip", 0.1)
	b := synth(t, "mcf", 0.5)
	const quantum = 100
	merged, err := Interleave("m", quantum, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The first quantum must come entirely from program 0, the second
	// entirely from program 1.
	base := core.SuperblockID(a.NumBlocks())
	for i := 0; i < quantum; i++ {
		if merged.Accesses[i] >= base {
			t.Fatalf("access %d belongs to program 1 inside program 0's quantum", i)
		}
	}
	for i := quantum; i < 2*quantum; i++ {
		if merged.Accesses[i] < base {
			t.Fatalf("access %d belongs to program 0 inside program 1's quantum", i)
		}
	}
}

func TestInterleaveLinkRemap(t *testing.T) {
	a := synth(t, "gzip", 0.1)
	merged, err := Interleave("m", 50, a, a) // same trace twice
	if err != nil {
		t.Fatal(err)
	}
	// Program 1's links must point into program 1's ID range.
	base := core.SuperblockID(a.NumBlocks())
	for id, sb := range merged.Blocks {
		if id < base {
			continue
		}
		for _, to := range sb.Links {
			if to < base {
				t.Fatalf("program 1 block %d links into program 0 (%d)", id, to)
			}
		}
	}
}

// A trace with defined blocks but zero accesses used to hang Interleave:
// it was counted in remaining but its cursor never advanced, so the
// round-robin loop spun forever. The stream must instead merge as
// already-drained (its blocks defined, contributing no accesses).
func TestInterleaveEmptyAccessStream(t *testing.T) {
	a := synth(t, "gzip", 0.1)
	empty := trace.New("idle")
	if err := empty.Define(core.Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var merged *trace.Trace
	var mergeErr error
	go func() {
		defer close(done)
		merged, mergeErr = Interleave("m", 100, a, empty)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Interleave did not terminate on an empty access stream")
	}
	if mergeErr != nil {
		t.Fatal(mergeErr)
	}
	if got, want := len(merged.Accesses), len(a.Accesses); got != want {
		t.Fatalf("accesses = %d, want %d", got, want)
	}
	if got, want := merged.NumBlocks(), a.NumBlocks()+1; got != want {
		t.Fatalf("blocks = %d, want %d", got, want)
	}
	// All-empty inputs are fine too: a valid merged trace with no accesses.
	onlyEmpty, err := Interleave("m", 5, empty, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyEmpty.Accesses) != 0 {
		t.Fatalf("accesses = %d, want 0", len(onlyEmpty.Accesses))
	}
}

// Property: for any quantum, the merged access count equals the sum of the
// inputs' counts — exercised at the adversarial quanta that sit on the
// drain-detection boundary (1, the stream length, one past it) and with an
// empty stream in the mix.
func TestInterleaveAccessCountProperty(t *testing.T) {
	a := synth(t, "gzip", 0.1)
	b := synth(t, "mcf", 0.3)
	empty := trace.New("idle")
	if err := empty.Define(core.Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		quantum int
		traces  []*trace.Trace
	}{
		{"quantum-1", 1, []*trace.Trace{a, b}},
		{"quantum-len", len(a.Accesses), []*trace.Trace{a, b}},
		{"quantum-len-plus-1", len(a.Accesses) + 1, []*trace.Trace{a, b}},
		{"quantum-shorter-len", len(b.Accesses), []*trace.Trace{a, b}},
		{"one-empty-stream", 7, []*trace.Trace{a, empty, b}},
		{"huge-quantum", 1 << 30, []*trace.Trace{a, b}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			merged, err := Interleave("m", tc.quantum, tc.traces...)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, tr := range tc.traces {
				want += len(tr.Accesses)
			}
			if got := len(merged.Accesses); got != want {
				t.Fatalf("accesses = %d, want %d", got, want)
			}
			if err := merged.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMultiprogram(t *testing.T) {
	tr, err := Multiprogram(0.1, 200, "gzip", "mcf", "bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "multiprog+gzip+mcf+bzip2" {
		t.Fatalf("name = %q", tr.Name)
	}
	if _, err := Multiprogram(0.1, 200, "nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

// Multiprogramming raises effective cache pressure: the merged workload at
// a given capacity misses more than the weighted blend of the solo runs.
func TestMultiprogrammingRaisesPressure(t *testing.T) {
	a := synth(t, "gzip", 0.5)
	b := synth(t, "vpr", 0.5)
	merged, err := Interleave("m", 2000, a, b)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *trace.Trace, capacity int) *core.Stats {
		c, err := core.NewUnits(capacity, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range tr.Accesses {
			if !c.Access(id) {
				if err := c.Insert(tr.Blocks[id]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c.Stats()
	}
	// Capacity sized for one program: generous solo, starved shared.
	capacity := a.TotalBytes() / 2
	sa := run(a, capacity)
	sb := run(b, capacity)
	sm := run(merged, capacity)
	soloBlend := float64(sa.Misses+sb.Misses) / float64(sa.Accesses+sb.Accesses)
	if sm.MissRate() <= soloBlend {
		t.Fatalf("shared-cache miss rate %.4f should exceed solo blend %.4f",
			sm.MissRate(), soloBlend)
	}
}
