// Representative interval sampling for the multi-configuration sweep
// kernel (Bueno et al., PAPERS.md): instead of replaying a whole trace,
// partition it into fixed-length intervals, cluster the intervals by
// access-frequency signature, and replay one representative per cluster
// (with warmup) — estimating each configuration's miss rate as an exact
// compulsory term plus the cluster-weighted capacity-miss rate of the
// representatives, with a measured cross-validation error bound.
//
// The estimator is reliable in the turnover regime — configurations whose
// cache evicts at least a capacity's worth of bytes during warmup, so the
// sampled state converges to the full replay's before measurement. Below
// that (pressure near 1 on large traces) the eviction period exceeds any
// affordable window; the estimator falls back to charging unseen blocks
// at the capacity-ratio turnover probability and reports the charge's
// uncertainty in the bound, which widens accordingly. DESIGN.md §14 has
// the full error model.
//
// The detector is deterministic and total: any access stream and any
// option values produce a well-defined phase partition, so it can be
// fuzzed against adversarial streams (see FuzzPhaseDetector).
//
// Sampling is unsafe on regeneration-storm traces — streams whose miss
// behavior is dominated by rare, abrupt working-set turnovers. A storm
// confined to one unsampled interval of a cluster is invisible to the
// representative, and the cross-validation bound only widens if the
// farthest member happens to catch it. DESIGN.md §14 discusses the
// failure mode; the error bound is an estimate, not a guarantee.
package sim

import (
	"fmt"
	"math"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// SampleOptions tunes the phase detector and the sampled replay.
type SampleOptions struct {
	// IntervalLen is the number of accesses per interval. Non-positive
	// selects the default: len(accesses)/64, floored at 2048 — about 64
	// intervals for typical traces.
	IntervalLen int
	// Warmup is the number of accesses replayed (unmeasured) before each
	// sampled interval to reconstruct cache state. Non-positive selects
	// twice the interval length.
	Warmup int
	// Threshold is the L1 signature distance below which an interval
	// joins an existing cluster (signatures are probability vectors, so
	// distances lie in [0, 2]). Non-positive selects 0.10.
	Threshold float64
}

// sigDims is the signature width: access IDs hash into this many
// frequency buckets.
const sigDims = 64

// Cross-validation bound shaping: the weighted representative-vs-farthest
// disagreement is scaled by sampleSafety and floored at sampleBoundFloor,
// absorbing the estimator's cold-start bias and cluster inhomogeneity.
const (
	sampleSafety     = 2.0
	sampleBoundFloor = 0.015
	// probeBlend weights the farthest-member probe into the cluster
	// estimate: the medoid is mass-representative but the cluster mean
	// sits part-way toward the edge the probe measures.
	probeBlend = 0.25
	// unitChurnSlack widens a unit-granularity config's bound when its
	// arena never turned over during warmup: unit reclaim evicts live
	// blocks on a cycle far longer than any sampled window, a residual
	// the sample cannot observe.
	unitChurnSlack = 0.10
)

// Interval is one fixed-length slice of the access stream.
type Interval struct {
	Start, End int // access index range [Start, End)
	Cluster    int // index into PhaseSet.Clusters
}

// Cluster groups intervals with similar signatures. The representative is
// the cluster's medoid — the member minimizing total signature distance
// to the rest, so it is never an accidental outlier like the first
// interval of the stream (compulsory-miss-dense) can be. Farthest is the
// member whose signature lies farthest from the medoid's — the
// cross-validation probe.
type Cluster struct {
	Rep      int   // interval index of the representative (medoid)
	Members  []int // interval indices in stream order (includes Rep)
	Farthest int   // member farthest from the medoid (== Rep when singleton)
	Weight   float64
}

// PhaseSet is the detector's partition of a stream.
type PhaseSet struct {
	IntervalLen int
	Intervals   []Interval
	Clusters    []Cluster
}

// mix64 is the splitmix64 finalizer — a cheap, deterministic hash
// spreading dense superblock IDs across signature buckets.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampleDefaults resolves non-positive options against the stream length.
func sampleDefaults(n int, opts SampleOptions) SampleOptions {
	if opts.IntervalLen <= 0 {
		opts.IntervalLen = n / 64
		if opts.IntervalLen < 2048 {
			opts.IntervalLen = 2048
		}
	}
	if opts.Warmup <= 0 {
		opts.Warmup = 2 * opts.IntervalLen
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 0.10
	}
	return opts
}

// DetectPhases partitions the access stream into fixed-length intervals
// and clusters them by L1 distance between hashed access-frequency
// signatures (leader clustering: an interval joins the nearest leader
// within Threshold, else starts a new cluster). The result is
// deterministic in (accesses, opts). An empty stream yields an empty
// partition.
func DetectPhases(accesses []core.SuperblockID, opts SampleOptions) *PhaseSet {
	n := len(accesses)
	opts = sampleDefaults(n, opts)
	ps := &PhaseSet{IntervalLen: opts.IntervalLen}
	if n == 0 {
		return ps
	}
	nInt := (n + opts.IntervalLen - 1) / opts.IntervalLen
	sigs := make([][sigDims]float64, nInt)
	for i := 0; i < nInt; i++ {
		start := i * opts.IntervalLen
		end := start + opts.IntervalLen
		if end > n {
			end = n
		}
		for _, id := range accesses[start:end] {
			sigs[i][mix64(uint64(id))%sigDims]++
		}
		inv := 1 / float64(end-start)
		for d := range sigs[i] {
			sigs[i][d] *= inv
		}
		ps.Intervals = append(ps.Intervals, Interval{Start: start, End: end})
	}
	// Leader clustering against frozen leader signatures: an interval
	// joins the nearest leader within Threshold, else becomes a new
	// leader. Leaders only assign membership; the representative is
	// re-picked below.
	leaders := []int{}
	for i := range ps.Intervals {
		bestC, bestD := -1, math.Inf(1)
		for c, ld := range leaders {
			if d := l1(&sigs[ld], &sigs[i]); d < bestD {
				bestC, bestD = c, d
			}
		}
		if bestC < 0 || bestD > opts.Threshold {
			ps.Clusters = append(ps.Clusters, Cluster{Members: []int{i}})
			leaders = append(leaders, i)
			ps.Intervals[i].Cluster = len(ps.Clusters) - 1
			continue
		}
		ps.Clusters[bestC].Members = append(ps.Clusters[bestC].Members, i)
		ps.Intervals[i].Cluster = bestC
	}
	// Representative = medoid (min total distance to members, lowest index
	// on ties), Farthest = max distance from the medoid (again lowest
	// index on ties) — both deterministic. Intervals starting inside the
	// stream's first Warmup accesses cannot be fully warmed (and sit in
	// the compulsory-dense cold-fill region), so they are skipped as
	// representatives whenever the cluster has any warmable member.
	for c := range ps.Clusters {
		cl := &ps.Clusters[c]
		var acc int
		warmable := false
		for _, m := range cl.Members {
			acc += ps.Intervals[m].End - ps.Intervals[m].Start
			if ps.Intervals[m].Start >= opts.Warmup {
				warmable = true
			}
		}
		cl.Weight = float64(acc) / float64(n)
		best := math.Inf(1)
		for _, m := range cl.Members {
			if warmable && ps.Intervals[m].Start < opts.Warmup {
				continue
			}
			var tot float64
			for _, o := range cl.Members {
				tot += l1(&sigs[m], &sigs[o])
			}
			if tot < best {
				best, cl.Rep = tot, m
			}
		}
		far := -1.0
		for _, m := range cl.Members {
			if warmable && ps.Intervals[m].Start < opts.Warmup {
				continue
			}
			if d := l1(&sigs[cl.Rep], &sigs[m]); d > far {
				far, cl.Farthest = d, m
			}
		}
	}
	return ps
}

func l1(a, b *[sigDims]float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// SampledResult is one configuration's estimate from a sampled replay.
type SampledResult struct {
	Config SweepConfig
	// MissRate is the exact compulsory rate plus the cluster-weighted
	// capacity-miss rate measured over representative intervals (medoid
	// blended with the farthest-member probe).
	MissRate float64
	// ErrorBound is the measured error estimate: the weighted
	// representative-vs-farthest cross-validation disagreement scaled by
	// sampleSafety (for singleton clusters, the representative window's
	// half-vs-half disagreement stands in — there is no distinct probe,
	// but within-window temporal variance still signals boundary
	// misalignment, e.g. unit-rotation phase), plus the turnover-charge
	// uncertainty for configs whose cache never turned over during
	// warmup, plus sampleBoundFloor. An estimate of the absolute
	// miss-rate error vs full replay, not a guarantee.
	ErrorBound float64
}

// SampledSweep is the outcome of a sampled multi-configuration replay.
type SampledSweep struct {
	Intervals int
	Clusters  int
	// SampledAccesses counts the accesses actually replayed (warmup and
	// measured, representatives and cross-validation probes), per kernel
	// pass over the configuration list.
	SampledAccesses int
	// Coverage is the fraction of the stream inside measured intervals.
	Coverage float64
	Results  []SampledResult
}

// RunConfigsSampled estimates every configuration's miss rate from
// representative intervals instead of a full replay: DetectPhases picks
// the intervals, each cluster's representative is replayed through the
// multi-configuration kernel after a warmup replay, and each cluster with
// more than one member is cross-validated by also replaying its farthest
// member. Census, occupancy, and verification options are not supported —
// sampling estimates miss rates, nothing else.
//
// Cold-start decomposition: a full replay's misses split into compulsory
// (each distinct block's first trace access — always a miss in every
// FIFO-family configuration, so exactly countable from the stream alone)
// and capacity misses (re-insertions after eviction). Sampling only needs
// to estimate the capacity component:
//
//	missRate ≈ distinctBlocks/n  +  Σ_cluster weight × capRate(rep)
//
// Within a sampled window, each measured-window miss is classified
// against the trace's global first-touch table: a compulsory miss
// (excluded — the exact term covers it), an "unknown" (first window
// touch of a block with pre-window history the cold cache cannot see),
// or a re-touch miss (the block was inserted earlier in the window and
// evicted — genuine capacity behavior). Unknowns are charged as capacity
// misses at the config's steady-state turnover probability
// 1 - capacity/totalBytes: under the FIFO family a long-untouched
// block's residency depends only on whether its last insertion still
// fits the arena, which that ratio approximates. The charge's
// uncertainty, min(p, 1-p) × unknownRate, is added to the error bound —
// so low-pressure configs whose eviction period exceeds the window
// report honestly wide bounds instead of confident noise.
func RunConfigsSampled(tr *trace.Trace, cfgs []SweepConfig, sopts SampleOptions, opts Options) (*SampledSweep, error) {
	if opts.CensusEvery > 0 || opts.OccupancyEvery > 0 {
		return nil, fmt.Errorf("sim: sampled replay of %q estimates miss rates only (no census/occupancy sampling)", tr.Name)
	}
	if len(tr.Accesses) == 0 {
		return nil, fmt.Errorf("sim: trace %q has no accesses to sample", tr.Name)
	}
	tabs, err := buildTraceTables(tr)
	if err != nil {
		return nil, err
	}
	sopts = sampleDefaults(len(tr.Accesses), sopts)
	ps := DetectPhases(tr.Accesses, sopts)
	ss := &SampledSweep{
		Intervals: len(ps.Intervals),
		Clusters:  len(ps.Clusters),
		Results:   make([]SampledResult, len(cfgs)),
	}
	base := 0.0 // exact compulsory term
	st := newSampleState(tr, tabs, cfgs, opts, sopts.Warmup)
	base = float64(st.distinct) / float64(len(tr.Accesses))
	for i := range ss.Results {
		ss.Results[i].Config = cfgs[i]
		ss.Results[i].MissRate = base
	}
	measured := 0
	for _, cl := range ps.Clusters {
		rep, err := st.measure(ps.Intervals[cl.Rep])
		if err != nil {
			return nil, err
		}
		measured += ps.Intervals[cl.Rep].End - ps.Intervals[cl.Rep].Start
		var probe *intervalMeasure
		if cl.Farthest != cl.Rep {
			probe, err = st.measure(ps.Intervals[cl.Farthest])
			if err != nil {
				return nil, err
			}
			measured += ps.Intervals[cl.Farthest].End - ps.Intervals[cl.Farthest].Start
		}
		for i := range cfgs {
			est := rep.capRate[i]
			if probe != nil {
				// The medoid sits at the cluster's center and the probe at
				// its edge; the cluster's true mean lies between, closer
				// to the medoid — blend accordingly, and keep the spread
				// as the cross-validation term.
				est = (1-probeBlend)*rep.capRate[i] + probeBlend*probe.capRate[i]
				ss.Results[i].ErrorBound += sampleSafety * cl.Weight * math.Abs(probe.capRate[i]-rep.capRate[i])
			} else {
				// Singleton cluster: no distinct probe exists, so the
				// cross-validation term would vanish and the bound collapse
				// to the floor even when the window's measurement is
				// boundary-biased (unit-granularity policies' reclaim
				// cadence is longer than a window, so where the boundary
				// lands matters). The representative's half-vs-half miss
				// rate disagreement is the same signal measured within the
				// window; its mean is the estimate, so half the spread is
				// the disagreement scale.
				ss.Results[i].ErrorBound += sampleSafety * cl.Weight * rep.halfSpread[i] / 2
			}
			ss.Results[i].MissRate += cl.Weight * est
			ss.Results[i].ErrorBound += cl.Weight * rep.uncertainty[i]
		}
	}
	ss.SampledAccesses = st.replayed
	for i := range ss.Results {
		ss.Results[i].ErrorBound += sampleBoundFloor
		if ss.Results[i].MissRate > 1 {
			ss.Results[i].MissRate = 1
		}
	}
	ss.Coverage = float64(measured) / float64(len(tr.Accesses))
	return ss, nil
}

// sampleState carries the per-trace machinery shared by every interval
// measurement: the prebuilt tables, the global first-touch table, and a
// seen-epoch scratch for classifying first-in-window touches.
type sampleState struct {
	tr     *trace.Trace
	tabs   *traceTables
	cfgs   []SweepConfig
	opts   Options
	warmup int

	firstTouch []int32 // id -> access index of its first trace occurrence
	distinct   int     // distinct blocks accessed = exact compulsory misses
	seen       []uint32
	epoch      uint32

	// kernels holds one reusable multi-config kernel per batch of
	// maxConfigsPerPass configs, reset between windows.
	kernels []*multiReplay

	replayed int // accesses replayed per kernel pass, warmup included
}

// intervalMeasure is one sampled window's per-config capacity-miss rate,
// the uncertainty of its unknown-touch charge, and the raw miss-rate
// disagreement between the window's two halves (the singleton-cluster
// cross-validation signal).
type intervalMeasure struct {
	capRate     []float64
	uncertainty []float64
	halfSpread  []float64
}

func newSampleState(tr *trace.Trace, tabs *traceTables, cfgs []SweepConfig, opts Options, warmup int) *sampleState {
	span := len(tabs.tables.sizes)
	st := &sampleState{
		tr: tr, tabs: tabs, cfgs: cfgs, opts: opts, warmup: warmup,
		firstTouch: make([]int32, span),
		seen:       make([]uint32, span),
	}
	for i := range st.firstTouch {
		st.firstTouch[i] = -1
	}
	for i, id := range tr.Accesses {
		if int(id) < span && st.firstTouch[id] < 0 {
			st.firstTouch[id] = int32(i)
			st.distinct++
		}
	}
	return st
}

// measure replays [iv.Start-warmup, iv.End) from a cold cache and returns
// each configuration's capacity-miss rate over [iv.Start, iv.End), with
// compulsory misses excluded and unknown touches charged at the config's
// turnover probability (see RunConfigsSampled).
func (st *sampleState) measure(iv Interval) (*intervalMeasure, error) {
	ws := iv.Start - st.warmup
	if ws < 0 {
		ws = 0
	}
	accesses := st.tr.Accesses
	// Classify the measured window's first-in-window touches: compulsory
	// (exact, excluded) vs unknown (pre-window history invisible to the
	// sample).
	// Out-of-span IDs are skipped here: the kernel replay below reports
	// them as undefined-block errors with the access index.
	st.epoch++
	for _, id := range accesses[ws:iv.Start] {
		if int(id) < len(st.seen) {
			st.seen[id] = st.epoch
		}
	}
	var compulsory, unknown int
	for j := iv.Start; j < iv.End; j++ {
		id := accesses[j]
		if int(id) >= len(st.seen) || st.seen[id] == st.epoch {
			continue
		}
		st.seen[id] = st.epoch
		if st.firstTouch[id] == int32(j) {
			compulsory++
		} else {
			unknown++
		}
	}
	span := float64(iv.End - iv.Start)
	mid := iv.Start + (iv.End-iv.Start)/2
	m := &intervalMeasure{
		capRate:     make([]float64, 0, len(st.cfgs)),
		uncertainty: make([]float64, 0, len(st.cfgs)),
		halfSpread:  make([]float64, 0, len(st.cfgs)),
	}
	for start, ki := 0, 0; start < len(st.cfgs); start, ki = start+maxConfigsPerPass, ki+1 {
		end := min(start+maxConfigsPerPass, len(st.cfgs))
		batch := st.cfgs[start:end]
		var mr *multiReplay
		if ki < len(st.kernels) {
			mr = st.kernels[ki]
			mr.reset()
		} else {
			var err error
			mr, err = newMultiReplay(st.tr.Name, st.tabs, iv.End-ws, batch, st.opts)
			if err != nil {
				return nil, err
			}
			st.kernels = append(st.kernels, mr)
		}
		if err := mr.replayChunk(accesses[ws:iv.Start]); err != nil {
			return nil, err
		}
		warm := make([]uint64, len(batch))
		warmEv := make([]uint64, len(batch))
		for c := range batch {
			warm[c] = mr.stats[c].InsertedBlocks
			warmEv[c] = mr.stats[c].BytesEvicted
		}
		// Replay the measured window in two halves with a snapshot between:
		// the halves' raw miss-rate disagreement is the singleton-cluster
		// cross-validation signal.
		if err := mr.replayChunk(accesses[iv.Start:mid]); err != nil {
			return nil, err
		}
		half := make([]uint64, len(batch))
		for c := range batch {
			half[c] = mr.stats[c].InsertedBlocks
		}
		if err := mr.replayChunk(accesses[mid:iv.End]); err != nil {
			return nil, err
		}
		for c := range batch {
			if h1, h2 := float64(mid-iv.Start), float64(iv.End-mid); h1 > 0 && h2 > 0 {
				r1 := float64(half[c]-warm[c]) / h1
				r2 := float64(mr.stats[c].InsertedBlocks-half[c]) / h2
				m.halfSpread = append(m.halfSpread, math.Abs(r1-r2))
			} else {
				m.halfSpread = append(m.halfSpread, 0)
			}
		}
		for c := range batch {
			misses := float64(mr.stats[c].InsertedBlocks-warm[c]) - float64(compulsory)
			if warmEv[c] >= uint64(mr.arenaCap[c]) {
				// The warmup turned the cache over at least once: every
				// cold-start artifact has been evicted and the sampled
				// state approximates the full replay's, so measured
				// misses are trusted as-is (compulsory excluded — the
				// exact term covers those).
				if misses < 0 {
					misses = 0
				}
				m.capRate = append(m.capRate, misses/span)
				m.uncertainty = append(m.uncertainty, 0)
				continue
			}
			// Cache never turned over during warmup: first-in-window
			// misses on blocks with pre-window history ("unknown") are
			// cold-start artifacts. Keep only re-touch misses and charge
			// unknowns at the config's turnover probability, reporting
			// the charge's uncertainty.
			reTouch := misses - float64(unknown)
			if reTouch < 0 {
				reTouch = 0
			}
			missP := 1 - float64(mr.arenaCap[c])/float64(st.tabs.totalBytes)
			if missP < 0 {
				missP = 0
			}
			m.capRate = append(m.capRate, (reTouch+missP*float64(unknown))/span)
			u := missP
			if 1-missP < u {
				u = 1 - missP
			}
			uncert := u * float64(unknown) / span
			if mr.mode[c] == mcUnit {
				// Unit-granularity reclaim churns slowly even when the
				// arena fits the whole working set (evicting a unit frees
				// live blocks that later re-miss) — a cycle far longer
				// than any sampled window, affecting every resident block
				// rather than just first-in-window touches. Widen the
				// bound by an absolute slack proportional to the unit's
				// share of the trace.
				uncert += unitChurnSlack * float64(mr.unitSize[c]) / float64(st.tabs.totalBytes)
			}
			m.uncertainty = append(m.uncertainty, uncert)
		}
	}
	st.replayed += iv.End - ws
	return m, nil
}
