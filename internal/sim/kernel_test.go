package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// runStreamed round-trips tr through the binary codec and replays it with
// RunStream, so the streamed path is exercised end to end.
func runStreamed(t *testing.T, tr *trace.Trace, policy core.Policy, pressure int, opts Options) *Result {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStream(st, policy, pressure, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKernelEquality is the contract behind kernel dispatch: the
// devirtualized kernel, the generic interface kernel, and the streaming
// replay must produce byte-identical Results on every policy and option
// set. Policies outside the FIFO family exercise the generic fallback on
// both sides, which must also agree with its streamed form.
func TestKernelEquality(t *testing.T) {
	tr := testTraces(t, 0.3, "gzip")[0]
	policies := []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyFine},
		{Kind: core.PolicyLRU},
		{Kind: core.PolicyApproxLRU},
		{Kind: core.PolicyCompactingLRU},
		{Kind: core.PolicyAdaptive},
		{Kind: core.PolicyPreemptive},
		{Kind: core.PolicyGenerational, Units: 8},
	}
	optSets := []Options{
		{},
		{DisableChaining: true},
		{RecordSamples: true},
		{Verify: true},
	}
	for _, policy := range policies {
		for _, opts := range optSets {
			name := fmt.Sprintf("%s/%+v", policy, opts)
			fast, err := Run(tr, policy, 3, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			gopts := opts
			gopts.ForceGeneric = true
			generic, err := Run(tr, policy, 3, gopts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			generic.Policy = fast.Policy // incidental: compare outcomes, not config echoes
			if !reflect.DeepEqual(fast, generic) {
				t.Errorf("%s: specialized and generic kernels diverge:\n got %+v\nwant %+v", name, fast, generic)
			}
			streamed := runStreamed(t, tr, policy, 3, opts)
			streamed.Policy = fast.Policy
			if !reflect.DeepEqual(fast, streamed) {
				t.Errorf("%s: streamed replay diverges:\n got %+v\nwant %+v", name, fast, streamed)
			}
		}
	}
}

// TestKernelPatchedCountMode pins the laziness contract: the fast
// kernels defer the patched-link count to queries
// (SetLazyPatchedCount), and nothing observable may depend on that —
// replaying with eager per-event counting must yield byte-identical
// Results for every policy the fast path serves.
func TestKernelPatchedCountMode(t *testing.T) {
	tr := testTraces(t, 0.3, "gzip")[0]
	for _, policy := range []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyFine},
		{Kind: core.PolicyLRU},
		{Kind: core.PolicyApproxLRU},
		{Kind: core.PolicyCompactingLRU},
		{Kind: core.PolicyAdaptive},
		{Kind: core.PolicyPreemptive},
		{Kind: core.PolicyGenerational, Units: 8},
	} {
		results := make([]*Result, 2)
		for eager := 0; eager < 2; eager++ {
			rp, err := newReplay(tr.Name, tr.Blocks, len(tr.Accesses), policy, 3, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rp.fast {
				t.Fatalf("%s: expected the devirtualized kernel", policy)
			}
			if eager == 1 {
				// Undo the fast path's deferral: count patched links per
				// event, as the generic loop does.
				if rp.eng != nil {
					rp.eng.SetLazyPatchedCount(false)
				} else {
					rp.gen.SetLazyPatchedCount(false)
				}
			}
			if err := rp.replayChunk(tr.Accesses); err != nil {
				t.Fatal(err)
			}
			results[eager] = rp.finish()
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("%s: lazy and eager patched-count replays diverge:\n lazy  %+v\n eager %+v",
				policy, results[0], results[1])
		}
	}
}

// TestKernelChunkingInvariance feeds the same access sequence through the
// kernels in chunks of varying sizes; the cut points must not be
// observable in the result.
func TestKernelChunkingInvariance(t *testing.T) {
	tr := testTraces(t, 0.3, "gzip")[0]
	policy := core.Policy{Kind: core.PolicyFine}
	want, err := Run(tr, policy, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 1000, len(tr.Accesses)} {
		for _, force := range []bool{false, true} {
			rp, err := newReplay(tr.Name, tr.Blocks, len(tr.Accesses), policy, 3, Options{ForceGeneric: force})
			if err != nil {
				t.Fatal(err)
			}
			ids := tr.Accesses
			for len(ids) > 0 {
				n := chunk
				if n > len(ids) {
					n = len(ids)
				}
				if err := rp.replayChunk(ids[:n]); err != nil {
					t.Fatal(err)
				}
				ids = ids[n:]
			}
			got := rp.finish()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("chunk %d (generic=%v): result differs:\n got %+v\nwant %+v", chunk, force, got, want)
			}
		}
	}
}

// TestKernelUndefinedBlockError pins the error contract all three
// kernels (engine, generational, generic) share: the failing access's
// global index and block ID.
func TestKernelUndefinedBlockError(t *testing.T) {
	tr := trace.New("bad")
	if err := tr.Define(core.Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	tr.Accesses = []core.SuperblockID{0, 0, 7}
	for _, policy := range []core.Policy{
		{Kind: core.PolicyFine}, // lean engine kernel
		{Kind: core.PolicyLRU},  // observing engine kernel
		{Kind: core.PolicyGenerational, Units: 2},
	} {
		for _, force := range []bool{false, true} {
			_, err := Run(tr, policy, 1, Options{ForceGeneric: force})
			if err == nil {
				t.Fatalf("%s generic=%v: undefined block should fail", policy, force)
			}
			if want := `trace "bad" access 2 references undefined block 7`; !strings.Contains(err.Error(), want) {
				t.Errorf("%s generic=%v: error %q does not contain %q", policy, force, err, want)
			}
		}
	}
}

// TestZeroAllocReplayKernel enforces the devirtualized kernel's
// steady-state guarantee: once the cache's dense tables have grown to the
// trace's ID span, replaying allocates nothing — for the FIFO family and
// for every policy the engine split moved onto the same arena core.
// Compacting-LRU is exempt: its defragmentation pass sorts resident
// blocks with sort.Slice, which allocates by design.
func TestZeroAllocReplayKernel(t *testing.T) {
	tr := testTraces(t, 0.3, "gzip")[0]
	for _, policy := range []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyFine},
		{Kind: core.PolicyLRU},
		{Kind: core.PolicyApproxLRU},
		{Kind: core.PolicyAdaptive},
		{Kind: core.PolicyPreemptive},
		{Kind: core.PolicyGenerational, Units: 8},
	} {
		rp, err := newReplay(tr.Name, tr.Blocks, len(tr.Accesses), policy, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rp.fast {
			t.Fatalf("%s: expected the devirtualized kernel", policy)
		}
		// Warm up: one full pass settles queue capacity and scratch sizes.
		if err := rp.replayChunk(tr.Accesses); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(3, func() {
			if err := rp.replayChunk(tr.Accesses); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: steady-state replay allocates %.1f objects per pass, want 0", policy, avg)
		}
	}
}

func TestSweepWorkerCap(t *testing.T) {
	// Pin a known processor count so both sides of the cap are exercised
	// even on single-core machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	if got := sweepWorkers(1, 0); got != 1 {
		t.Errorf("sweepWorkers(1, 0) = %d, want 1", got)
	}
	if got := sweepWorkers(54, 0); got != 4 {
		t.Errorf("sweepWorkers(54, 0) = %d, want GOMAXPROCS=4", got)
	}
}

// TestSweepWorkerMemoryCap pins the memory side of the worker cap: when
// the per-job footprint eats the budget, the pool shrinks below the CPU
// count — but never below one worker, however large a single job is.
func TestSweepWorkerMemoryCap(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	oldBudget := sweepMemoryBudget
	defer func() { sweepMemoryBudget = oldBudget }()

	sweepMemoryBudget = 1 << 20
	if got := sweepWorkers(54, 300<<10); got != 3 {
		t.Errorf("sweepWorkers with 1MiB budget / 300KiB jobs = %d, want 3", got)
	}
	if got := sweepWorkers(54, 64<<20); got != 1 {
		t.Errorf("sweepWorkers with oversized jobs = %d, want 1 (never starve)", got)
	}
	// A zero estimate means unknown footprint: CPU cap only.
	if got := sweepWorkers(54, 0); got != 8 {
		t.Errorf("sweepWorkers with unknown footprint = %d, want GOMAXPROCS=8", got)
	}
	if detectMemoryBudget() <= 0 {
		t.Error("detectMemoryBudget must return a positive budget")
	}
}

// TestKernelInsertError drives both kernels into the mid-chunk Insert
// failure path: a link target beyond the dense-ID limit passes trace
// construction but must fail the insert, with access counters flushed
// consistently.
func TestKernelInsertError(t *testing.T) {
	blocks := map[core.SuperblockID]core.Superblock{
		0: {ID: 0, Size: 64, Links: []core.SuperblockID{1 << 30}},
	}
	for _, policy := range []core.Policy{
		{Kind: core.PolicyFine}, // lean engine kernel
		{Kind: core.PolicyLRU},  // observing engine kernel
		{Kind: core.PolicyGenerational, Units: 2},
	} {
		for _, force := range []bool{false, true} {
			rp, err := newReplay("badlink", blocks, 1, policy, 1, Options{ForceGeneric: force})
			if err != nil {
				t.Fatal(err)
			}
			err = rp.replayChunk([]core.SuperblockID{0})
			if err == nil || !strings.Contains(err.Error(), "dense-ID limit") {
				t.Errorf("%s generic=%v: replay with invalid link = %v, want dense-ID limit error", policy, force, err)
			}
		}
	}
}

// TestBuildTablesOversizedBlock pins the replay-table size guard.
func TestBuildTablesOversizedBlock(t *testing.T) {
	blocks := map[core.SuperblockID]core.Superblock{
		0: {ID: 0, Size: 1 << 40},
	}
	if _, _, _, err := buildTables("huge", blocks); err == nil ||
		!strings.Contains(err.Error(), "replay table limit") {
		t.Errorf("buildTables with 2^40-byte block = %v, want table-limit error", err)
	}
}

// TestRunStreamErrors covers the streamed replay's failure paths: an
// empty trace rejected at setup, and a decode error surfacing mid-replay.
func TestRunStreamErrors(t *testing.T) {
	policy := core.Policy{Kind: core.PolicyFine}
	var empty bytes.Buffer
	if err := trace.New("empty").Write(&empty); err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewStream(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStream(st, policy, 2, Options{}); err == nil ||
		!strings.Contains(err.Error(), "empty") {
		t.Errorf("streamed empty trace = %v, want empty-trace error", err)
	}

	tr := testTraces(t, 0.05, "gzip")[0]
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-5]
	st, err = trace.NewStream(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStream(st, policy, 2, Options{}); err == nil {
		t.Error("truncated stream should fail the replay")
	}

	// A structurally valid stream whose access section references an
	// undefined block must surface the kernel's error through RunStream.
	bad := trace.New("badstream")
	if err := bad.Define(core.Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	bad.Accesses = []core.SuperblockID{0, 9}
	buf.Reset()
	if err := bad.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st, err = trace.NewStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStream(st, policy, 2, Options{}); err == nil ||
		!strings.Contains(err.Error(), "undefined block 9") {
		t.Errorf("streamed undefined block = %v, want undefined-block error", err)
	}
}

// TestSweepDrainsAfterFailure verifies the fail-fast path: after the
// first job errors, remaining jobs are drained without being simulated,
// and the first error is the one reported.
func TestSweepDrainsAfterFailure(t *testing.T) {
	traces := testTraces(t, 0.05, "gzip", "vortex")
	policies := core.GranularitySweep(4)
	calls := 0
	orig := runJob
	runJob = func(tr *trace.Trace, tabs *traceTables, policy core.Policy, pressure int, opts Options) (*Result, error) {
		calls++
		return nil, fmt.Errorf("boom %d", calls)
	}
	defer func() { runJob = orig }()

	// One worker makes the order deterministic: the first job fails, the
	// rest must be drained without invoking runJob again.
	_, err := sweep(traces, policies, 2, Options{}, 1)
	if err == nil {
		t.Fatal("sweep should propagate the job failure")
	}
	if !strings.Contains(err.Error(), "boom 1") {
		t.Errorf("err = %v, want the first failure (boom 1)", err)
	}
	if calls != 1 {
		t.Errorf("runJob ran %d times after a failure, want 1 (drain without simulating)", calls)
	}
}
