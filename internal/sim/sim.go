// Package sim replays code-cache traces against eviction policies — the
// "code cache simulator" of the paper's experimental setup (§4.1).
//
// A trace (from the DBT or the workload synthesizer) supplies the actual
// region sizes, inter-region links, and entry order that the cache must
// manage; the simulator runs them through a core.Cache and accumulates the
// event counts that the overhead model prices.
package sim

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dynocache/internal/core"
	"dynocache/internal/overhead"
	"dynocache/internal/trace"
)

// Options tunes a simulation run.
type Options struct {
	// CensusEvery samples the live-link census every n accesses to
	// estimate the average intra/inter-unit link split (Figure 13).
	// 0 disables sampling.
	CensusEvery int
	// RecordSamples captures per-invocation eviction samples (Figure 9);
	// only FIFO-family caches support it.
	RecordSamples bool
	// DisableChaining suppresses link declaration entirely, modelling the
	// Table 2 "linking disabled" configuration at the simulator level.
	DisableChaining bool
	// Capacity overrides the maxCache/pressure sizing rule with an
	// explicit byte capacity (still floored at the largest block plus
	// unit-rounding headroom; see effectiveCapacity). Used by experiments
	// that compare workloads on equal hardware budgets.
	Capacity int
	// OccupancyEvery samples the cache occupancy timeline every n
	// accesses (0 disables): resident bytes, resident blocks, and live
	// links, for visualization.
	OccupancyEvery int
	// Verify runs the replay under the check package's verification
	// wrapper: structural invariants after every operation, plus
	// lockstep comparison against the map-based oracle for FIFO-family
	// policies. The first violation aborts the run with full context.
	// Verified runs produce byte-identical results to unverified ones.
	Verify bool
	// ForceGeneric disables the type-specialized replay kernels and
	// drives every access through the portable core.Cache interface
	// loop. Results are identical either way; benchmarks and the kernel
	// differential tests use this to compare the two paths.
	ForceGeneric bool
	// SinglePass routes Sweep's FIFO-family policies through the
	// multi-configuration kernel: one pass over each trace drives every
	// granularity's cache state simultaneously (see multisweep.go),
	// producing Stats identical to the per-config jobs. Policies outside
	// the FIFO family, and sweeps needing Verify, RecordSamples, or
	// ForceGeneric, fall back to per-config jobs automatically.
	SinglePass bool
}

// OccupancySample is one point of the occupancy timeline.
type OccupancySample struct {
	Access        uint64 // access index at which the sample was taken
	ResidentBytes int
	Resident      int
	LiveLinks     int
}

// Result is the outcome of replaying one trace against one policy.
type Result struct {
	Benchmark string
	Policy    core.Policy
	Pressure  int // cache pressure factor n (capacity = maxCache/n)
	Capacity  int // actual cache capacity in bytes

	Stats core.Stats

	// AppInstructions estimates the guest work executed: each access runs
	// its superblock once at one instruction per 4 bytes of cached code
	// (the DRISC instruction width). This anchors overhead percentages to
	// program run time (§5.3).
	AppInstructions float64

	// MeanIntraLinks/MeanInterLinks are the census averages over the run;
	// MeanBackPtrBytes the average back-pointer table footprint.
	MeanIntraLinks   float64
	MeanInterLinks   float64
	MeanBackPtrBytes float64

	// Samples holds per-invocation eviction samples when requested.
	Samples []core.EvictionSample

	// Occupancy holds the occupancy timeline when requested.
	Occupancy []OccupancySample
}

// InterUnitLinkFraction returns the average fraction of live links that
// crossed unit boundaries (Figure 13's y-axis).
func (r *Result) InterUnitLinkFraction() float64 {
	total := r.MeanIntraLinks + r.MeanInterLinks
	if total == 0 {
		return 0
	}
	return r.MeanInterLinks / total
}

// Overhead prices the run with the given model (Figures 10/11 exclude
// link maintenance; Figures 14/15 include it).
func (r *Result) Overhead(m overhead.Model, includeLinks bool) overhead.Breakdown {
	return m.FromStats(&r.Stats, includeLinks)
}

// maxBlockSize returns the size of the largest superblock in tr, or 0 for
// a trace with no blocks.
func maxBlockSize(tr *trace.Trace) int {
	maxBlock := 0
	for _, sb := range tr.Blocks {
		if sb.Size > maxBlock {
			maxBlock = sb.Size
		}
	}
	return maxBlock
}

// effectiveCapacity is the one sizing rule every replay path shares: the
// requested capacity, floored at the largest block plus 512 bytes of
// headroom (unit caches round capacity down to an equal-unit multiple, so
// the arena must clear the largest block even after rounding). Run,
// CapacityFor, and SizeForMissRate all size through here so they cannot
// drift apart.
func effectiveCapacity(requested, maxBlock int) int {
	if floor := maxBlock + 512; requested < floor {
		return floor
	}
	return requested
}

// CapacityFor computes the paper's cache sizing rule: maxCache/pressure,
// floored via effectiveCapacity so every block remains cacheable (§4.2
// sizes caches to stress the policy, never to break it).
func CapacityFor(tr *trace.Trace, pressure int) (int, error) {
	if pressure < 1 {
		return 0, fmt.Errorf("sim: pressure factor must be >= 1, got %d", pressure)
	}
	maxBlock := maxBlockSize(tr)
	if maxBlock == 0 {
		return 0, fmt.Errorf("sim: trace %q is empty", tr.Name)
	}
	return effectiveCapacity(tr.TotalBytes()/pressure, maxBlock), nil
}

// Run replays tr against the policy at the given cache pressure. The
// replay dispatches to a type-specialized kernel when the policy's cache
// is the FIFO family and no sampling or verification hooks are active;
// see kernel.go.
func Run(tr *trace.Trace, policy core.Policy, pressure int, opts Options) (*Result, error) {
	rp, err := newReplay(tr.Name, tr.Blocks, len(tr.Accesses), policy, pressure, opts)
	if err != nil {
		return nil, err
	}
	if err := rp.replayChunk(tr.Accesses); err != nil {
		return nil, err
	}
	return rp.finish(), nil
}

// SweepResult indexes results by [policy][benchmark].
type SweepResult struct {
	Policies   []core.Policy
	Benchmarks []string
	// Results[p][b] corresponds to Policies[p] and Benchmarks[b].
	Results [][]*Result
}

// traceTables bundles one trace's prebuilt dense replay tables (and its
// frozen link adjacency) with the sizing facts capacity derivation
// needs. Sweeps build one per trace and share it across every job
// replaying that trace.
type traceTables struct {
	tables     replayTables
	maxBlock   int
	totalBytes int
}

func buildTraceTables(tr *trace.Trace) (*traceTables, error) {
	tables, maxBlock, totalBytes, err := buildTables(tr.Name, tr.Blocks)
	if err != nil {
		return nil, err
	}
	return &traceTables{tables: tables, maxBlock: maxBlock, totalBytes: totalBytes}, nil
}

// runJob is the per-(policy, trace) replay Sweep dispatches to; tests of
// the sweep's failure handling swap it for an instrumented stand-in.
var runJob = runTraceJob

func runTraceJob(tr *trace.Trace, tabs *traceTables, policy core.Policy, pressure int, opts Options) (*Result, error) {
	rp, err := newReplayFromTables(tr.Name, tabs.tables, tabs.maxBlock, tabs.totalBytes,
		len(tr.Accesses), policy, pressure, opts)
	if err != nil {
		return nil, err
	}
	if err := rp.replayChunk(tr.Accesses); err != nil {
		return nil, err
	}
	return rp.finish(), nil
}

// sweepMemoryBudget bounds the simulation state the sweep worker pool
// may hold live at once; workers are capped so that workers*perJobBytes
// stays under it (a capacity ladder multiplies per-job footprint).
// Detected from the machine's available memory; tests override it.
var sweepMemoryBudget = detectMemoryBudget()

// detectMemoryBudget reads MemAvailable from /proc/meminfo and budgets
// half of it, falling back to 4 GiB where the file is absent.
func detectMemoryBudget() int64 {
	const fallback = 4 << 30
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return fallback
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || kb <= 0 {
			break
		}
		return kb * 1024 / 2
	}
	return fallback
}

// sweepWorkers caps the worker pool at the job count (a sweep of three
// jobs on a 64-core machine spawns three goroutines, not 64 idle ones)
// and at the memory budget: perJobBytes is the peak per-job simulation
// footprint, 0 when unknown.
func sweepWorkers(jobs int, perJobBytes int64) int {
	w := runtime.GOMAXPROCS(0)
	if jobs < w {
		w = jobs
	}
	if perJobBytes > 0 {
		if byMem := sweepMemoryBudget / perJobBytes; int64(w) > byMem {
			w = int(byMem)
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sweepJobFootprint estimates the worst-case per-job simulation state in
// bytes across the sweep's traces: the dense per-ID tables every replay
// keeps (offsets, sizes, residency, queue entries), multiplied by the
// config count for multi-configuration jobs (each config holds its own
// offset column and queue).
func sweepJobFootprint(tabs []*traceTables, nMulti int) int64 {
	var worst int64
	for _, tt := range tabs {
		span := int64(len(tt.tables.sizes))
		per := span * 48
		if nMulti > 0 {
			if m := span * int64(24*nMulti+16); m > per {
				per = m
			}
		}
		if per > worst {
			worst = per
		}
	}
	return worst
}

// singlePassPolicy reports whether the multi-configuration kernel can
// simulate the policy (the FIFO family: one shared arena model, modes
// differing only in frontier advance).
func singlePassPolicy(p core.Policy) bool {
	switch p.Kind {
	case core.PolicyFlush, core.PolicyUnits, core.PolicyFine:
		return true
	}
	return false
}

// singlePassEligible reports whether the sweep as a whole may route
// FIFO-family policies through the multi-configuration kernel.
func singlePassEligible(opts Options) bool {
	return opts.SinglePass && !opts.Verify && !opts.RecordSamples && !opts.ForceGeneric
}

// Sweep replays every trace against every policy at one pressure factor,
// in parallel across available CPUs. Results are deterministic: each
// simulation is independent and stored by index. With Options.SinglePass
// the FIFO-family policies are simulated together, one multi-config job
// per trace, with identical results.
func Sweep(traces []*trace.Trace, policies []core.Policy, pressure int, opts Options) (*SweepResult, error) {
	return sweep(traces, policies, pressure, opts, 0)
}

// sweep runs the job pool; workers <= 0 sizes the pool from the job
// count and the memory budget.
func sweep(traces []*trace.Trace, policies []core.Policy, pressure int, opts Options, workers int) (*SweepResult, error) {
	sw := &SweepResult{
		Policies: policies,
		Results:  make([][]*Result, len(policies)),
	}
	for _, tr := range traces {
		sw.Benchmarks = append(sw.Benchmarks, tr.Name)
	}
	for p := range policies {
		sw.Results[p] = make([]*Result, len(traces))
	}
	// One table build per trace, shared by every job replaying it.
	tabs := make([]*traceTables, len(traces))
	for b, tr := range traces {
		tt, err := buildTraceTables(tr)
		if err != nil {
			return nil, fmt.Errorf("sim: sweep (benchmark %q): %w", tr.Name, err)
		}
		tabs[b] = tt
	}
	// Partition policies: multiIdx are covered by one single-pass job per
	// trace, perConfig run as individual (policy, trace) jobs.
	var multiIdx, perConfig []int
	for p, pol := range policies {
		if singlePassEligible(opts) && singlePassPolicy(pol) {
			multiIdx = append(multiIdx, p)
		} else {
			perConfig = append(perConfig, p)
		}
	}
	type job struct{ p, b int } // p == -1: multi-config job covering multiIdx
	njobs := len(perConfig) * len(traces)
	if len(multiIdx) > 0 {
		njobs += len(traces)
	}
	jobs := make(chan job, njobs)
	for b := range traces {
		if len(multiIdx) > 0 {
			jobs <- job{-1, b}
		}
	}
	for _, p := range perConfig {
		for b := range traces {
			jobs <- job{p, b}
		}
	}
	close(jobs)
	if workers <= 0 {
		workers = sweepWorkers(njobs, sweepJobFootprint(tabs, len(multiIdx)))
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// After the first failure the sweep's result can never be
				// returned; drain remaining jobs instead of simulating them.
				if failed.Load() {
					continue
				}
				var err error
				if j.p < 0 {
					var results []*Result
					results, err = runMultiJob(traces[j.b], tabs[j.b], policies, multiIdx, pressure, opts)
					if err == nil {
						for k, p := range multiIdx {
							sw.Results[p][j.b] = results[k]
						}
					} else {
						err = fmt.Errorf("sim: sweep (single-pass, benchmark %q): %w", traces[j.b].Name, err)
					}
				} else {
					var res *Result
					res, err = runJob(traces[j.b], tabs[j.b], policies[j.p], pressure, opts)
					if err == nil {
						sw.Results[j.p][j.b] = res
					} else {
						err = fmt.Errorf("sim: sweep (policy %s, benchmark %q): %w",
							policies[j.p], traces[j.b].Name, err)
					}
				}
				if err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sw, nil
}

// UnifiedMissRate computes Equation 1 for one policy row: total misses
// over total accesses across all benchmarks.
func (sw *SweepResult) UnifiedMissRate(policyIdx int) float64 {
	var misses, accesses uint64
	for _, r := range sw.Results[policyIdx] {
		misses += r.Stats.Misses
		accesses += r.Stats.Accesses
	}
	if accesses == 0 {
		return 0
	}
	return float64(misses) / float64(accesses)
}

// TotalEvictionInvocations sums eviction invocations across benchmarks for
// one policy (Figure 8's numerator).
func (sw *SweepResult) TotalEvictionInvocations(policyIdx int) uint64 {
	var total uint64
	for _, r := range sw.Results[policyIdx] {
		total += r.Stats.EvictionInvocations
	}
	return total
}

// TotalOverhead sums priced overhead across benchmarks for one policy.
func (sw *SweepResult) TotalOverhead(policyIdx int, m overhead.Model, includeLinks bool) float64 {
	var total float64
	for _, r := range sw.Results[policyIdx] {
		total += r.Overhead(m, includeLinks).Total()
	}
	return total
}

// MeanInterUnitLinkFraction averages Figure 13's metric across benchmarks
// for one policy.
func (sw *SweepResult) MeanInterUnitLinkFraction(policyIdx int) float64 {
	var sum float64
	n := 0
	for _, r := range sw.Results[policyIdx] {
		sum += r.InterUnitLinkFraction()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SizeForMissRate finds, by bisection over capacity, the smallest cache
// (within tolerance bytes) whose replay of tr under the policy achieves at
// most the target miss rate. It answers the provisioning question the
// paper's bimodal observation raises (§4.2): below the knee "performance
// can suffer precipitously", so how much cache does this workload need?
//
// The returned size is always a capacity Run actually simulates: the
// search space is clamped to the effectiveCapacity floor, so the result
// can never name a cache smaller than the arena the replay used.
func SizeForMissRate(tr *trace.Trace, policy core.Policy, target float64, tolerance int) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("sim: target miss rate %g outside (0, 1)", target)
	}
	if tolerance < 1 {
		tolerance = 1
	}
	maxBlock := maxBlockSize(tr)
	if maxBlock == 0 {
		return 0, fmt.Errorf("sim: trace %q is empty", tr.Name)
	}
	missAt := func(capacity int) (float64, error) {
		res, err := Run(tr, policy, 1, Options{Capacity: capacity})
		if err != nil {
			return 0, err
		}
		return res.Stats.MissRate(), nil
	}
	lo, hi := effectiveCapacity(1, maxBlock), tr.TotalBytes()+4096
	// Even an unbounded cache pays one compulsory miss per block; the
	// target must be reachable.
	if m, err := missAt(hi); err != nil {
		return 0, err
	} else if m > target {
		return 0, fmt.Errorf("sim: target %.4f unreachable (compulsory miss rate %.4f)", target, m)
	}
	for hi-lo > tolerance {
		mid := lo + (hi-lo)/2
		m, err := missAt(mid)
		if err != nil {
			return 0, err
		}
		if m <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}
