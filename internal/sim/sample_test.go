package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dynocache/internal/core"
)

// TestDetectPhasesPartition pins the detector's structural contract on
// real traces: intervals tile the stream exactly, every interval belongs
// to exactly one cluster, representatives and probes are members, and
// cluster weights sum to 1.
func TestDetectPhasesPartition(t *testing.T) {
	for _, tr := range testTraces(t, 0.1, "word", "vortex", "gzip") {
		ps := DetectPhases(tr.Accesses, SampleOptions{})
		checkPhaseSet(t, ps, len(tr.Accesses))
	}
}

// checkPhaseSet asserts every structural invariant of a phase partition.
func checkPhaseSet(t *testing.T, ps *PhaseSet, n int) {
	t.Helper()
	if n == 0 {
		if len(ps.Intervals) != 0 || len(ps.Clusters) != 0 {
			t.Fatalf("empty stream produced %d intervals, %d clusters", len(ps.Intervals), len(ps.Clusters))
		}
		return
	}
	next := 0
	for i, iv := range ps.Intervals {
		if iv.Start != next || iv.End <= iv.Start {
			t.Fatalf("interval %d = [%d, %d), want start %d and positive length", i, iv.Start, iv.End, next)
		}
		next = iv.End
		if iv.Cluster < 0 || iv.Cluster >= len(ps.Clusters) {
			t.Fatalf("interval %d names cluster %d of %d", i, iv.Cluster, len(ps.Clusters))
		}
	}
	if next != n {
		t.Fatalf("intervals cover [0, %d), want [0, %d)", next, n)
	}
	seen := make(map[int]bool)
	var weight float64
	for c, cl := range ps.Clusters {
		if len(cl.Members) == 0 {
			t.Fatalf("cluster %d has no members", c)
		}
		repOK, farOK := false, false
		for _, m := range cl.Members {
			if seen[m] {
				t.Fatalf("interval %d appears in more than one cluster", m)
			}
			seen[m] = true
			if ps.Intervals[m].Cluster != c {
				t.Fatalf("interval %d is a member of cluster %d but names %d", m, c, ps.Intervals[m].Cluster)
			}
			repOK = repOK || m == cl.Rep
			farOK = farOK || m == cl.Farthest
		}
		if !repOK || !farOK {
			t.Fatalf("cluster %d: Rep %d (member: %v) / Farthest %d (member: %v)", c, cl.Rep, repOK, cl.Farthest, farOK)
		}
		weight += cl.Weight
	}
	if len(seen) != len(ps.Intervals) {
		t.Fatalf("%d intervals clustered, want %d", len(seen), len(ps.Intervals))
	}
	if math.Abs(weight-1) > 1e-9 {
		t.Fatalf("cluster weights sum to %g, want 1", weight)
	}
}

// TestDetectPhasesDeterministic: identical input must produce the
// identical partition.
func TestDetectPhasesDeterministic(t *testing.T) {
	tr := testTraces(t, 0.1, "vortex")[0]
	a := DetectPhases(tr.Accesses, SampleOptions{})
	b := DetectPhases(tr.Accesses, SampleOptions{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("DetectPhases is not deterministic on identical input")
	}
}

// TestDetectPhasesWarmableRep: a cluster with members past the warmup
// prefix must not pick an unwarmable representative or probe — the
// stream's cold-fill region is compulsory-miss-dense and cannot be
// warmed, so measuring it would bias the whole cluster's estimate.
func TestDetectPhasesWarmableRep(t *testing.T) {
	tr := testTraces(t, 1.0, "gzip")[0]
	opts := sampleDefaults(len(tr.Accesses), SampleOptions{})
	ps := DetectPhases(tr.Accesses, opts)
	for c, cl := range ps.Clusters {
		warmable := false
		for _, m := range cl.Members {
			if ps.Intervals[m].Start >= opts.Warmup {
				warmable = true
			}
		}
		if !warmable {
			continue
		}
		if ps.Intervals[cl.Rep].Start < opts.Warmup {
			t.Errorf("cluster %d picked unwarmable representative %d (start %d < warmup %d)",
				c, cl.Rep, ps.Intervals[cl.Rep].Start, opts.Warmup)
		}
		if ps.Intervals[cl.Farthest].Start < opts.Warmup {
			t.Errorf("cluster %d picked unwarmable probe %d", c, cl.Farthest)
		}
	}
}

// TestDetectPhasesEmpty: the detector is total — an empty stream yields
// an empty partition, not a panic.
func TestDetectPhasesEmpty(t *testing.T) {
	ps := DetectPhases(nil, SampleOptions{})
	checkPhaseSet(t, ps, 0)
}

// TestRunConfigsSampledAgainstFull is the estimator's honesty contract
// on a real trace: every configuration's sampled miss rate must lie
// within its own reported error bound of the full replay's, and the
// estimate must be a valid rate.
func TestRunConfigsSampledAgainstFull(t *testing.T) {
	tr := testTraces(t, 1.0, "gzip")[0]
	var cfgs []SweepConfig
	for _, pol := range core.GranularitySweep(8) {
		for _, pressure := range []int{1, 2, 4, 8} {
			cfgs = append(cfgs, SweepConfig{Policy: pol, Pressure: pressure})
		}
	}
	full, err := RunConfigs(tr, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Results) != len(cfgs) {
		t.Fatalf("sampled %d results for %d configs", len(ss.Results), len(cfgs))
	}
	if ss.Coverage <= 0 || ss.Coverage > 1 || ss.SampledAccesses <= 0 {
		t.Fatalf("coverage %g, sampled accesses %d", ss.Coverage, ss.SampledAccesses)
	}
	for i, r := range ss.Results {
		if r.Config != cfgs[i] {
			t.Fatalf("result %d carries config %+v, want %+v", i, r.Config, cfgs[i])
		}
		if r.MissRate < 0 || r.MissRate > 1 || r.ErrorBound <= 0 {
			t.Errorf("%s/p%d: miss rate %g, bound %g", r.Config.Policy, r.Config.Pressure, r.MissRate, r.ErrorBound)
		}
		if e := math.Abs(r.MissRate - full[i].Stats.MissRate()); e > r.ErrorBound {
			t.Errorf("%s/p%d: sampled %.4f vs full %.4f — error %.4f above reported bound %.4f",
				r.Config.Policy, r.Config.Pressure, r.MissRate, full[i].Stats.MissRate(), e, r.ErrorBound)
		}
	}
}

// TestRunConfigsSampledSingletonClusters pins the short-trace regime
// where every cluster is a singleton: the farthest-member probe equals
// the representative, so the bound's cross-validation term must come
// from the window's half-vs-half disagreement instead of collapsing to
// the floor. Unit-granularity policies at moderate pressure are the
// sharp case — their reclaim cadence is longer than a window, and the
// measured error exceeds the floor without the half-spread term.
func TestRunConfigsSampledSingletonClusters(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	var cfgs []SweepConfig
	for _, pol := range core.GranularitySweep(8) {
		for _, pressure := range []int{2, 4, 8} {
			cfgs = append(cfgs, SweepConfig{Policy: pol, Pressure: pressure})
		}
	}
	full, err := RunConfigs(tr, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Clusters != ss.Intervals {
		t.Skipf("trace no longer clusters into singletons (%d clusters over %d intervals)", ss.Clusters, ss.Intervals)
	}
	for i, r := range ss.Results {
		if e := math.Abs(r.MissRate - full[i].Stats.MissRate()); e > r.ErrorBound {
			t.Errorf("%s/p%d: sampled %.4f vs full %.4f — error %.4f above reported bound %.4f",
				r.Config.Policy, r.Config.Pressure, r.MissRate, full[i].Stats.MissRate(), e, r.ErrorBound)
		}
	}
}

// TestRunConfigsSampledDeterministic: two sampled runs over the same
// trace and options must agree exactly.
func TestRunConfigsSampledDeterministic(t *testing.T) {
	tr := testTraces(t, 0.2, "vortex")[0]
	cfgs := []SweepConfig{
		{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 4},
		{Policy: core.Policy{Kind: core.PolicyFlush}, Pressure: 2},
	}
	a, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampled replay is not deterministic")
	}
}

// TestRunConfigsSampledErrors covers the rejection paths: census and
// occupancy sampling are incompatible with interval sampling, and an
// access-free trace has nothing to sample.
func TestRunConfigsSampledErrors(t *testing.T) {
	tr := testTraces(t, 0.05, "gzip")[0]
	cfgs := []SweepConfig{{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 2}}
	if _, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{CensusEvery: 100}); err == nil {
		t.Error("census sampling should be rejected")
	}
	if _, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{OccupancyEvery: 100}); err == nil {
		t.Error("occupancy sampling should be rejected")
	}
	empty := testTraces(t, 0.05, "gzip")[0]
	empty.Accesses = nil
	if _, err := RunConfigsSampled(empty, cfgs, SampleOptions{}, Options{}); err == nil {
		t.Error("empty access stream should be rejected")
	}
}

// FuzzPhaseDetector drives the detector with adversarial streams and
// asserts the partition invariants plus determinism hold for any input.
func FuzzPhaseDetector(f *testing.F) {
	f.Add([]byte{}, 16, 8, float64(0.1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, 4, 2, float64(0.5))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255}, 2, 0, float64(0))
	f.Add([]byte{7}, 0, -3, float64(-1))
	f.Fuzz(func(t *testing.T, raw []byte, intervalLen, warmup int, threshold float64) {
		accesses := make([]core.SuperblockID, len(raw))
		for i, b := range raw {
			accesses[i] = core.SuperblockID(b)
		}
		// Tiny explicit interval lengths on long streams make leader
		// clustering quadratic in the interval count; cap the count so the
		// fuzzer probes adversarial *streams*, not pathological runtimes.
		if intervalLen > 0 && intervalLen < len(raw)/256 {
			intervalLen = len(raw) / 256
		}
		opts := SampleOptions{IntervalLen: intervalLen, Warmup: warmup, Threshold: threshold}
		ps := DetectPhases(accesses, opts)
		checkPhaseSet(t, ps, len(accesses))
		if again := DetectPhases(accesses, opts); !reflect.DeepEqual(ps, again) {
			t.Fatal("detector not deterministic")
		}
	})
}

// TestRunConfigsSampledUndefinedAccess: a replay error inside a sampled
// window (an access naming an undefined block) must propagate out.
func TestRunConfigsSampledUndefinedAccess(t *testing.T) {
	tr := testTraces(t, 0.05, "gzip")[0]
	tr.Accesses = append([]core.SuperblockID{}, tr.Accesses...)
	tr.Accesses[len(tr.Accesses)/2] = 1 << 25 // defined nowhere
	cfgs := []SweepConfig{{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 2}}
	if _, err := RunConfigsSampled(tr, cfgs, SampleOptions{}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "undefined block") {
		t.Errorf("undefined access = %v, want undefined-block error", err)
	}
}
