// Replay kernels: the per-access critical path of the simulator.
//
// Run used to drive every access through the core.Cache interface and a
// per-access Superblock struct copy. Profiling showed the single-run
// replay loop floors the full report's wall clock (Sweep parallelizes
// across (policy, trace) pairs, so the longest trace on one core
// dictates latency). This file splits the loop into kernels chosen once
// per run:
//
//   - a devirtualized engine kernel for every cache built on core.Engine
//     (the whole in-tree policy zoo except generational): the hot loop
//     calls concrete engine methods the compiler inlines, touches only a
//     struct-of-arrays sizes table on hits, accumulates AppInstructions
//     as integer bytes, and dispatches to the policy's hit/miss
//     observers only when the policy declares it needs them (the FIFO
//     family declares neither, keeping its hit path branch-free);
//   - a generational kernel for *core.GenerationalCache, whose composite
//     two-generation structure has no single engine: same shape, with
//     the promotion logic reached through a concrete HitFast call;
//   - a generic interface kernel that additionally handles census and
//     occupancy sampling and the verification wrapper — the fallback for
//     Options{Verify: true} and third-party core.Cache implementations.
//
// All kernels produce bit-identical Results: sizes are whole bytes, so
// every partial float sum the old loop computed was an exact multiple of
// 0.25 and converting the integer byte total once at the end yields the
// same float64. Access counters are folded into the cache in batches,
// always flushed before an Insert so policies that read their own
// counters mid-run (the adaptive controller) observe exactly the values
// the per-access interface loop would produce. The kernel equality tests
// and the golden quick-report test enforce this.
package sim

import (
	"fmt"
	"io"
	"math"

	"dynocache/internal/check"
	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// replayTables is the struct-of-arrays view of a trace's block table.
// The hot loop indexes sizes (one int32 load per access); the full
// Superblock definitions — which drag a Links slice header through the
// loop when copied — are only touched on the miss path.
type replayTables struct {
	sizes  []int32           // id -> size; 0 marks an undefined ID
	blocks []core.Superblock // id -> full definition, for Insert on miss
	// adj is the trace's immutable CSR link relation, built once here and
	// shared by every cache replaying these tables (sweep jobs, the
	// multi-configuration kernel); chaining-disabled runs substitute an
	// empty relation instead.
	adj *core.FrozenAdjacency
}

// adjacency returns the link relation a replay with the given options
// must freeze: the shared trace adjacency, or an empty relation when
// chaining is disabled (inserts strip their link rows).
func (t *replayTables) adjacency(opts Options) *core.FrozenAdjacency {
	if opts.DisableChaining {
		return core.EmptyAdjacency(len(t.blocks))
	}
	return t.adj
}

// buildTables densifies a block table in one pass, also computing the
// largest block (for capacity flooring) and the total bytes (maxCache).
func buildTables(name string, blocks map[core.SuperblockID]core.Superblock) (t replayTables, maxBlock, totalBytes int, err error) {
	var maxID core.SuperblockID
	for id, sb := range blocks {
		if id > maxID {
			maxID = id
		}
		if sb.Size > maxBlock {
			maxBlock = sb.Size
		}
		totalBytes += sb.Size
	}
	if maxBlock == 0 {
		return replayTables{}, 0, 0, fmt.Errorf("sim: trace %q is empty", name)
	}
	if maxBlock > math.MaxInt32 {
		return replayTables{}, 0, 0, fmt.Errorf("sim: trace %q block size %d exceeds the replay table limit", name, maxBlock)
	}
	t.sizes = make([]int32, int(maxID)+1)
	t.blocks = make([]core.Superblock, int(maxID)+1)
	// Link rows are copied into a tables-owned arena rather than aliased:
	// streamed replays recycle the decoder's block table (and the pooled
	// chunks backing its link rows) as soon as these tables are built, so
	// nothing here may point into the decoded structures.
	totalLinks := 0
	for _, sb := range blocks {
		totalLinks += len(sb.Links)
	}
	linkArena := make([]core.SuperblockID, 0, totalLinks)
	for id, sb := range blocks {
		if len(sb.Links) > 0 {
			start := len(linkArena)
			linkArena = append(linkArena, sb.Links...)
			sb.Links = linkArena[start:len(linkArena):len(linkArena)]
		}
		t.blocks[id] = sb
		t.sizes[id] = int32(sb.Size)
	}
	t.adj = core.NewFrozenAdjacency(t.blocks)
	return t, maxBlock, totalBytes, nil
}

// replay carries one run's state across kernel invocations, so the same
// kernels serve Run (one chunk: the whole access slice) and RunStream
// (many pooled chunks).
type replay struct {
	traceName string
	tables    replayTables

	raw   core.Cache
	cache core.Cache     // raw, possibly wrapped by the checker
	chk   *check.Checked // non-nil in Verify mode
	fast  bool           // devirtualized kernel selected

	// Devirtualized dispatch state: eng is non-nil when raw is built on
	// the shared engine (every in-tree policy but generational); gen is
	// non-nil for the generational composite. obsHit/obsMiss hoist the
	// policy's observer declaration out of the hot loop; ctrReads marks a
	// core.CounterReader policy (counters flushed before every insert);
	// lean selects the minimal loop when none of the three apply.
	eng             *core.Engine
	pol             core.VictimPolicy
	lru             *core.LRUCache       // non-nil for plain LRU: devirtualized hit path
	alru            *core.ApproxLRUCache // non-nil for ApproxLRU: devirtualized hit path
	obsHit, obsMiss bool
	ctrReads        bool
	lean            bool
	gen             *core.GenerationalCache

	opts Options
	res  *Result

	instrBytes    uint64 // AppInstructions accumulated as bytes
	idx           int    // accesses replayed so far (global index)
	censusSamples int
}

// sampler is the cache-side eviction sample recorder; every engine-backed
// cache satisfies it (the generational composite deliberately does not:
// its two generations have no merged invocation order).
type sampler interface {
	SetSampleRecording(on bool)
	Samples() []core.EvictionSample
}

// newReplay sizes the cache, builds the dense tables, and selects the
// kernel. nAccesses presizes the occupancy timeline; it may be an
// estimate for streamed traces.
func newReplay(name string, blocks map[core.SuperblockID]core.Superblock, nAccesses int, policy core.Policy, pressure int, opts Options) (*replay, error) {
	tables, maxBlock, totalBytes, err := buildTables(name, blocks)
	if err != nil {
		return nil, err
	}
	return newReplayFromTables(name, tables, maxBlock, totalBytes, nAccesses, policy, pressure, opts)
}

// newReplayFromTables is newReplay over prebuilt dense tables: sweeps
// build a trace's tables (and its frozen link adjacency) once and share
// them across every (policy, pressure) job replaying that trace.
func newReplayFromTables(name string, tables replayTables, maxBlock, totalBytes, nAccesses int, policy core.Policy, pressure int, opts Options) (*replay, error) {
	if pressure < 1 {
		return nil, fmt.Errorf("sim: pressure factor must be >= 1, got %d", pressure)
	}
	capacity := totalBytes / pressure
	if opts.Capacity > 0 {
		capacity = opts.Capacity
	}
	capacity = effectiveCapacity(capacity, maxBlock)
	raw, err := policy.New(capacity)
	if err != nil {
		return nil, err
	}
	maxID := core.SuperblockID(len(tables.sizes) - 1)
	var eng *core.Engine
	var gen *core.GenerationalCache
	// Replays insert each block's fixed trace definition, so the link
	// adjacency is known up front; freezing it turns the cache's link
	// maintenance into flat CSR walks (see core.FreezeLinks).
	if r, ok := raw.(interface{ Reserve(core.SuperblockID) }); ok {
		// Through the cache, not the engine: policies with their own dense
		// tables (the LRU recency list, generational promotion state)
		// shadow Engine.Reserve to pre-size those too.
		r.Reserve(maxID)
	}
	if eb, ok := raw.(core.EngineBacked); ok {
		eng = eb.ReplayEngine()
		eng.FreezeLinksShared(tables.adjacency(opts))
	} else if g, ok := raw.(*core.GenerationalCache); ok {
		gen = g
		gen.FreezeLinksShared(tables.adjacency(opts))
	}
	if opts.RecordSamples {
		if s, ok := raw.(sampler); ok {
			s.SetSampleRecording(true)
		}
	}
	rp := &replay{
		traceName: name,
		tables:    tables,
		raw:       raw,
		cache:     raw,
		eng:       eng,
		gen:       gen,
		opts:      opts,
		res: &Result{
			Benchmark: name,
			Policy:    policy,
			Pressure:  pressure,
			Capacity:  capacity,
		},
	}
	if eng != nil {
		rp.pol = eng.BoundPolicy()
		// Recency policies observe every hit; a concrete receiver turns
		// that per-hit interface dispatch into a direct (inlinable) call.
		switch p := rp.pol.(type) {
		case *core.LRUCache:
			rp.lru = p
		case *core.ApproxLRUCache:
			rp.alru = p
		}
		rp.obsHit, rp.obsMiss = eng.Observers()
		if cr, ok := rp.pol.(core.CounterReader); ok {
			rp.ctrReads = cr.ReadsCounters()
		}
		rp.lean = !rp.obsHit && !rp.obsMiss && !rp.ctrReads
	}
	if opts.Verify {
		rp.chk = check.Wrap(raw, policy)
		rp.cache = rp.chk
	}
	// The devirtualized kernels have no sampling or verification hooks;
	// any of those sends the run down the generic interface loop.
	rp.fast = (eng != nil || gen != nil) && rp.chk == nil &&
		opts.CensusEvery <= 0 && opts.OccupancyEvery <= 0 && !opts.ForceGeneric
	if rp.fast {
		// Nothing on the fast path reads the patched-link count mid-run,
		// so the cache can defer it to queries.
		if eng != nil {
			eng.SetLazyPatchedCount(true)
		} else {
			gen.SetLazyPatchedCount(true)
		}
	}
	if opts.OccupancyEvery > 0 {
		rp.res.Occupancy = make([]OccupancySample, 0, nAccesses/opts.OccupancyEvery+1)
	}
	return rp, nil
}

// replayChunk advances the replay over one batch of accesses.
func (rp *replay) replayChunk(ids []core.SuperblockID) error {
	if rp.fast {
		if rp.eng != nil {
			if rp.lean {
				return rp.replayEngineLean(ids)
			}
			return rp.replayEngine(ids)
		}
		return rp.replayGen(ids)
	}
	return rp.replayGeneric(ids)
}

// replayEngineLean is the minimal engine kernel for policies with no
// access observers and no counter-reading hooks (the FIFO family): one
// inlined residency probe per hit, access counters derived from the loop
// index and folded once per chunk. Nothing on this path observes the
// counters mid-chunk, so per-chunk folding is equivalent to per-access
// Access calls.
func (rp *replay) replayEngineLean(ids []core.SuperblockID) error {
	e := rp.eng
	sizes := rp.tables.sizes
	instr := rp.instrBytes
	var hits uint64
	for i, id := range ids {
		if int(id) >= len(sizes) || sizes[id] == 0 {
			rp.instrBytes = instr
			e.BatchAccessStats(uint64(i), hits)
			return fmt.Errorf("sim: trace %q access %d references undefined block %d", rp.traceName, rp.idx+i, id)
		}
		instr += uint64(sizes[id])
		if e.Contains(id) {
			hits++
			continue
		}
		sb := rp.tables.blocks[id]
		if rp.opts.DisableChaining {
			sb.Links = nil
		}
		if err := e.Insert(sb); err != nil {
			rp.instrBytes = instr
			e.BatchAccessStats(uint64(i)+1, hits)
			return fmt.Errorf("sim: trace %q access %d: %w", rp.traceName, rp.idx+i, err)
		}
	}
	rp.instrBytes = instr
	rp.idx += len(ids)
	e.BatchAccessStats(uint64(len(ids)), hits)
	return nil
}

// replayEngine is the devirtualized kernel for engine-backed caches
// whose policy observes accesses or reads counters: monomorphic calls
// into *core.Engine that the compiler inlines, one int32 load per hit,
// and integer instruction accounting. The policy's hit/miss observers
// are dispatched only when the policy declares it needs them (hoisted
// flags). Steady state performs zero heap allocations (enforced by
// TestZeroAllocReplayKernel).
//
// Access outcomes are tallied locally and folded into the cache's
// counters in batches. For core.CounterReader policies the batch is
// flushed before every Insert, so hooks that read the counters (the
// adaptive controller) observe exactly the per-access values the
// interface loop would produce; for everyone else the fold happens once
// per chunk, which nothing on this path can distinguish.
func (rp *replay) replayEngine(ids []core.SuperblockID) error {
	e := rp.eng
	pol := rp.pol
	lru, alru := rp.lru, rp.alru
	obsHit, obsMiss := rp.obsHit, rp.obsMiss
	ctrReads := rp.ctrReads
	sizes := rp.tables.sizes
	instr := rp.instrBytes
	var accs, hits uint64
	for i, id := range ids {
		if int(id) >= len(sizes) || sizes[id] == 0 {
			rp.instrBytes = instr
			e.BatchAccessStats(accs, hits)
			return fmt.Errorf("sim: trace %q access %d references undefined block %d", rp.traceName, rp.idx+i, id)
		}
		instr += uint64(sizes[id])
		if e.Contains(id) {
			accs++
			hits++
			switch {
			case lru != nil:
				lru.ObserveHit(id)
			case alru != nil:
				alru.ObserveHit(id)
			case obsHit:
				pol.ObserveHit(id)
			}
			continue
		}
		accs++
		if ctrReads {
			e.BatchAccessStats(accs, hits)
			accs, hits = 0, 0
		}
		if obsMiss {
			pol.ObserveMiss(id)
		}
		sb := rp.tables.blocks[id]
		if rp.opts.DisableChaining {
			sb.Links = nil
		}
		if err := e.Insert(sb); err != nil {
			rp.instrBytes = instr
			e.BatchAccessStats(accs, hits)
			return fmt.Errorf("sim: trace %q access %d: %w", rp.traceName, rp.idx+i, err)
		}
	}
	rp.instrBytes = instr
	rp.idx += len(ids)
	e.BatchAccessStats(accs, hits)
	return nil
}

// replayGen is the devirtualized kernel for the generational composite,
// which has no single engine: the promotion logic runs through a
// concrete HitFast call and the wrapper's counters are batch-folded with
// the same flush-before-Insert discipline as replayEngine.
func (rp *replay) replayGen(ids []core.SuperblockID) error {
	g := rp.gen
	sizes := rp.tables.sizes
	instr := rp.instrBytes
	var accs, hits uint64
	for i, id := range ids {
		if int(id) >= len(sizes) || sizes[id] == 0 {
			rp.instrBytes = instr
			g.BatchAccessStats(accs, hits)
			return fmt.Errorf("sim: trace %q access %d references undefined block %d", rp.traceName, rp.idx+i, id)
		}
		instr += uint64(sizes[id])
		if g.HitFast(id) {
			accs++
			hits++
			continue
		}
		accs++
		g.BatchAccessStats(accs, hits)
		accs, hits = 0, 0
		sb := rp.tables.blocks[id]
		if rp.opts.DisableChaining {
			sb.Links = nil
		}
		if err := g.Insert(sb); err != nil {
			rp.instrBytes = instr
			return fmt.Errorf("sim: trace %q access %d: %w", rp.traceName, rp.idx+i, err)
		}
	}
	rp.instrBytes = instr
	rp.idx += len(ids)
	g.BatchAccessStats(accs, hits)
	return nil
}

// replayGeneric is the portable interface kernel: it mirrors the
// original Run loop (interface dispatch per access) and carries the
// census, occupancy, and verification hooks.
func (rp *replay) replayGeneric(ids []core.SuperblockID) error {
	cache := rp.cache
	sizes := rp.tables.sizes
	opts := rp.opts
	for i, id := range ids {
		gi := rp.idx + i
		if int(id) >= len(sizes) || sizes[id] == 0 {
			return fmt.Errorf("sim: trace %q access %d references undefined block %d", rp.traceName, gi, id)
		}
		rp.instrBytes += uint64(sizes[id])
		if !cache.Access(id) {
			sb := rp.tables.blocks[id]
			if opts.DisableChaining {
				sb.Links = nil
			}
			if err := cache.Insert(sb); err != nil {
				return fmt.Errorf("sim: trace %q access %d: %w", rp.traceName, gi, err)
			}
		}
		if rp.chk != nil {
			if err := rp.chk.Err(); err != nil {
				return fmt.Errorf("sim: trace %q access %d: verification failed: %w", rp.traceName, gi, err)
			}
		}
		if opts.CensusEvery > 0 && (gi+1)%opts.CensusEvery == 0 {
			intra, inter := cache.LinkCensus()
			rp.res.MeanIntraLinks += float64(intra)
			rp.res.MeanInterLinks += float64(inter)
			rp.res.MeanBackPtrBytes += float64(cache.BackPtrTableBytes())
			rp.censusSamples++
		}
		if opts.OccupancyEvery > 0 && (gi+1)%opts.OccupancyEvery == 0 {
			intra, inter := cache.LinkCensus()
			rp.res.Occupancy = append(rp.res.Occupancy, OccupancySample{
				Access:        uint64(gi + 1),
				ResidentBytes: cache.ResidentBytes(),
				Resident:      cache.Resident(),
				LiveLinks:     intra + inter,
			})
		}
	}
	rp.idx += len(ids)
	return nil
}

// finish folds the accumulated state into the Result.
func (rp *replay) finish() *Result {
	res := rp.res
	if rp.censusSamples > 0 {
		res.MeanIntraLinks /= float64(rp.censusSamples)
		res.MeanInterLinks /= float64(rp.censusSamples)
		res.MeanBackPtrBytes /= float64(rp.censusSamples)
	}
	// Sizes are whole bytes, so this single conversion equals the exact
	// per-access float sum the loop used to maintain.
	res.AppInstructions = float64(rp.instrBytes) / 4
	res.Stats = *rp.cache.Stats()
	if rp.opts.RecordSamples {
		if s, ok := rp.raw.(sampler); ok {
			res.Samples = s.Samples()
		}
	}
	return res
}

// RunStream replays a streamed trace against the policy at the given
// cache pressure without materializing the access sequence: accesses
// are decoded into pooled chunk buffers (shared across concurrent
// replays, e.g. sweep workers) and fed through the same kernels as Run,
// so the result is identical to Run on the materialized trace.
func RunStream(st *trace.Stream, policy core.Policy, pressure int, opts Options) (*Result, error) {
	nAccesses := st.NumAccesses()
	if nAccesses > math.MaxInt32 {
		return nil, fmt.Errorf("sim: trace %q declares %d accesses, too many to replay", st.Name, nAccesses)
	}
	rp, err := newReplay(st.Name, st.Blocks, int(nAccesses), policy, pressure, opts)
	if err != nil {
		return nil, err
	}
	// The replay owns private copies of everything it needs from the
	// block table; recycle the decoder's structures before the long
	// replay loop rather than after it.
	st.ReleaseBlocks()
	buf := trace.GetAccessBuf()
	defer trace.PutAccessBuf(buf)
	for {
		n, err := st.Next(buf)
		if n > 0 {
			if rerr := rp.replayChunk(buf[:n]); rerr != nil {
				return nil, rerr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sim: trace %q: %w", st.Name, err)
		}
	}
	return rp.finish(), nil
}
