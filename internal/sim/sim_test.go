package sim

import (
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/overhead"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// testTraces synthesizes a small but non-trivial benchmark set.
func testTraces(t testing.TB, scale float64, names ...string) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := p.Scaled(scale).Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

func TestCapacityFor(t *testing.T) {
	tr := trace.New("x")
	if _, err := CapacityFor(tr, 2); err == nil {
		t.Error("empty trace should fail")
	}
	if err := tr.Define(core.Superblock{ID: 1, Size: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Define(core.Superblock{ID: 2, Size: 200}); err != nil {
		t.Fatal(err)
	}
	c, err := CapacityFor(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// total=1200, /2 = 600 < maxBlock+512 = 1512: floored.
	if c != 1512 {
		t.Fatalf("capacity = %d, want 1512 (floored at maxBlock+512)", c)
	}
	if _, err := CapacityFor(tr, 0); err == nil {
		t.Error("zero pressure should fail")
	}
}

func TestRunBasics(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	res, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 2, Options{CensusEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Accesses != uint64(len(tr.Accesses)) {
		t.Fatalf("accesses = %d, want %d", s.Accesses, len(tr.Accesses))
	}
	if s.Hits+s.Misses != s.Accesses {
		t.Fatal("conservation violated")
	}
	if s.Misses == 0 || s.Hits == 0 {
		t.Fatalf("degenerate run: %+v", s)
	}
	if res.AppInstructions <= 0 {
		t.Fatal("AppInstructions not estimated")
	}
	if res.MeanIntraLinks+res.MeanInterLinks <= 0 {
		t.Fatal("census never sampled")
	}
	if res.Capacity <= 0 || res.Benchmark != "gzip" || res.Pressure != 2 {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTraces(t, 0.3, "vpr")[0]
	a, err := Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("same run differs: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestRunRecordsSamples(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	res, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 8, Options{RecordSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no eviction samples recorded under pressure 8")
	}
	if uint64(len(res.Samples)) != res.Stats.EvictionInvocations {
		t.Fatalf("samples %d != invocations %d", len(res.Samples), res.Stats.EvictionInvocations)
	}
}

func TestRunDisableChaining(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	res, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 4, Options{DisableChaining: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LinksPatched != 0 {
		t.Fatalf("chaining disabled but %d links patched", res.Stats.LinksPatched)
	}
}

func TestInterUnitLinkFraction(t *testing.T) {
	r := &Result{MeanIntraLinks: 3, MeanInterLinks: 1}
	if got := r.InterUnitLinkFraction(); got != 0.25 {
		t.Fatalf("fraction = %g, want 0.25", got)
	}
	empty := &Result{}
	if empty.InterUnitLinkFraction() != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestSweepShapes(t *testing.T) {
	traces := testTraces(t, 0.4, "gzip", "vpr", "mcf")
	policies := core.GranularitySweep(16)
	sw, err := Sweep(traces, policies, 4, Options{CensusEvery: 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != len(policies) {
		t.Fatalf("results rows = %d", len(sw.Results))
	}
	for p := range policies {
		for b := range traces {
			if sw.Results[p][b] == nil {
				t.Fatalf("missing result [%d][%d]", p, b)
			}
		}
	}
	// Figure 6 shape: unified miss rate declines from FLUSH to FIFO.
	first := sw.UnifiedMissRate(0)
	last := sw.UnifiedMissRate(len(policies) - 1)
	if !(first > last) {
		t.Fatalf("miss rate should decline with granularity: FLUSH %g vs FIFO %g", first, last)
	}
	// Figure 8 shape: eviction invocations grow with granularity.
	if sw.TotalEvictionInvocations(0) >= sw.TotalEvictionInvocations(len(policies)-1) {
		t.Fatal("eviction invocations should grow with granularity")
	}
	// Figure 13 shape: FLUSH has zero inter-unit links; finer policies more.
	if sw.MeanInterUnitLinkFraction(0) != 0 {
		t.Fatal("FLUSH must have no inter-unit links")
	}
	if sw.MeanInterUnitLinkFraction(1) <= 0 {
		t.Fatal("2-unit should have inter-unit links")
	}
	if sw.MeanInterUnitLinkFraction(len(policies)-1) <= sw.MeanInterUnitLinkFraction(1) {
		t.Fatal("inter-unit fraction should grow toward fine granularity")
	}
	// Overheads are positive and FLUSH pays no unlink cost.
	m := overhead.Paper()
	if sw.TotalOverhead(0, m, true) != sw.TotalOverhead(0, m, false) {
		t.Fatal("FLUSH overhead must not change when links are included")
	}
	for p := range policies {
		if sw.TotalOverhead(p, m, true) < sw.TotalOverhead(p, m, false) {
			t.Fatal("link-inclusive overhead cannot be smaller")
		}
	}
}

func TestSweepMissRatesWorsenWithPressure(t *testing.T) {
	traces := testTraces(t, 0.4, "gzip", "crafty")
	policies := []core.Policy{{Kind: core.PolicyFlush}, {Kind: core.PolicyFine}}
	low, err := Sweep(traces, policies, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Sweep(traces, policies, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range policies {
		if high.UnifiedMissRate(p) <= low.UnifiedMissRate(p) {
			t.Fatalf("policy %v: pressure should raise miss rate (%g vs %g)",
				policies[p], low.UnifiedMissRate(p), high.UnifiedMissRate(p))
		}
	}
}

func TestSweepErrorPropagates(t *testing.T) {
	tr := trace.New("bad")
	if err := tr.Define(core.Superblock{ID: 1, Size: 100}); err != nil {
		t.Fatal(err)
	}
	tr.Accesses = append(tr.Accesses, 99) // undefined block: Run must fail
	if _, err := Sweep([]*trace.Trace{tr}, []core.Policy{{Kind: core.PolicyFine}}, 2, Options{}); err == nil {
		t.Fatal("sweep should propagate run errors")
	}
}

func TestUnifiedMissRateMatchesEquation1(t *testing.T) {
	traces := testTraces(t, 0.4, "gzip", "vpr")
	sw, err := Sweep(traces, []core.Policy{{Kind: core.PolicyFlush}}, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var misses, accesses uint64
	for _, r := range sw.Results[0] {
		misses += r.Stats.Misses
		accesses += r.Stats.Accesses
	}
	want := float64(misses) / float64(accesses)
	if got := sw.UnifiedMissRate(0); got != want {
		t.Fatalf("unified miss rate = %g, want %g", got, want)
	}
}

func TestOccupancyTimeline(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	res, err := Run(tr, core.Policy{Kind: core.PolicyFlush}, 4, Options{OccupancyEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Occupancy) != len(tr.Accesses)/100 {
		t.Fatalf("samples = %d, want %d", len(res.Occupancy), len(tr.Accesses)/100)
	}
	sawDrop := false
	prev := 0
	for i, o := range res.Occupancy {
		if o.ResidentBytes > res.Capacity {
			t.Fatalf("sample %d: occupancy %d exceeds capacity %d", i, o.ResidentBytes, res.Capacity)
		}
		if o.ResidentBytes < prev {
			sawDrop = true // a flush emptied the cache between samples
		}
		prev = o.ResidentBytes
		if o.Access == 0 {
			t.Fatal("sample missing access index")
		}
	}
	if res.Stats.FullFlushes > 2 && !sawDrop {
		t.Fatal("FLUSH timeline should show occupancy collapses")
	}
}

func TestCapacityOverride(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	res, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 2, Options{Capacity: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != 5000 {
		t.Fatalf("capacity = %d, want 5000", res.Capacity)
	}
	// Override below the largest block floors at maxBlock+512.
	res, err = Run(tr, core.Policy{Kind: core.PolicyFine}, 2, Options{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity <= 1 {
		t.Fatalf("capacity = %d, floor not applied", res.Capacity)
	}
}

func TestSizeForMissRate(t *testing.T) {
	tr := testTraces(t, 0.5, "gzip")[0]
	size, err := SizeForMissRate(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 0.1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || size > tr.TotalBytes()+4096 {
		t.Fatalf("size = %d out of range", size)
	}
	// The found size must actually achieve the target...
	res, err := Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 1, Options{Capacity: size})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MissRate() > 0.1 {
		t.Fatalf("size %d misses %.4f > target", size, res.Stats.MissRate())
	}
	// ...and meaningfully less cache must not (when the gap is real).
	if size > 4096 {
		res, err = Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 1, Options{Capacity: size / 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.MissRate() <= 0.1 {
			t.Fatalf("half the cache (%d) still meets the target; search converged too high", size/2)
		}
	}
	// Unreachable target errors out.
	if _, err := SizeForMissRate(tr, core.Policy{Kind: core.PolicyFine}, 1e-9, 64); err == nil {
		t.Error("sub-compulsory target should be unreachable")
	}
	if _, err := SizeForMissRate(tr, core.Policy{Kind: core.PolicyFine}, 2, 64); err == nil {
		t.Error("target >= 1 should be rejected")
	}
}

func TestCapacityForOversizedBlock(t *testing.T) {
	// One block dwarfs the rest: at any pressure the floor keeps it
	// cacheable, so capacity never drops below maxBlock+512.
	tr := trace.New("oversized")
	if err := tr.Define(core.Superblock{ID: 1, Size: 50000}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Define(core.Superblock{ID: 2, Size: 64}); err != nil {
		t.Fatal(err)
	}
	for _, pressure := range []int{2, 10, 1000} {
		c, err := CapacityFor(tr, pressure)
		if err != nil {
			t.Fatal(err)
		}
		if c < 50512 {
			t.Fatalf("pressure %d: capacity %d below the oversized-block floor 50512", pressure, c)
		}
	}
	// Run honors the same floor: the oversized block must insert cleanly.
	tr.Accesses = []core.SuperblockID{1, 2, 1}
	res, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity < 50512 {
		t.Fatalf("run capacity %d below floor", res.Capacity)
	}
}

// Regression: when the effectiveCapacity floor dominates (an oversized
// block), every probed capacity simulates at the floor, so the old
// bisection drove the answer down to a few bytes — a "smallest cache"
// far below any arena that was actually replayed. The search space is now
// clamped to the floor and the result names a simulatable capacity.
func TestSizeForMissRateRespectsFloor(t *testing.T) {
	tr := trace.New("oversized")
	if err := tr.Define(core.Superblock{ID: 0, Size: 50000}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Define(core.Superblock{ID: 1, Size: 64}); err != nil {
		t.Fatal(err)
	}
	tr.Accesses = []core.SuperblockID{0, 1, 0, 1, 0, 1, 0, 1}
	policy := core.Policy{Kind: core.PolicyFine}
	size, err := SizeForMissRate(tr, policy, 0.5, 256)
	if err != nil {
		t.Fatal(err)
	}
	const floor = 50000 + 512
	if size < floor {
		t.Fatalf("size = %d, below the effective-capacity floor %d", size, floor)
	}
	// The reported size must be the capacity Run actually uses for it.
	res, err := Run(tr, policy, 1, Options{Capacity: size})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != size {
		t.Fatalf("reported size %d but Run simulated capacity %d", size, res.Capacity)
	}
}

func TestSizeForMissRateEdgeCases(t *testing.T) {
	tr := testTraces(t, 0.3, "gzip")[0]
	policy := core.Policy{Kind: core.PolicyUnits, Units: 8}
	// Targets outside (0, 1) are rejected up front.
	for _, target := range []float64{0, -0.5, 1, 1.5} {
		if _, err := SizeForMissRate(tr, policy, target, 64); err == nil {
			t.Errorf("target %g should be rejected", target)
		}
	}
	// Zero (and negative) tolerance is coerced to one byte: the search
	// still terminates and the result still achieves the target.
	size, err := SizeForMissRate(tr, policy, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, policy, 1, Options{Capacity: size})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MissRate() > 0.2 {
		t.Fatalf("size %d from zero-tolerance search misses %.4f > 0.2", size, res.Stats.MissRate())
	}
	// An empty trace cannot be replayed, so the bisection reports the
	// underlying run error instead of looping.
	if _, err := SizeForMissRate(trace.New("empty"), policy, 0.2, 64); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := Run(trace.New("empty"), core.Policy{Kind: core.PolicyFine}, 2, Options{}); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestRunRejectsBadParameters(t *testing.T) {
	tr := testTraces(t, 0.3, "gzip")[0]
	if _, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 0, Options{}); err == nil {
		t.Error("zero pressure should fail")
	}
	if _, err := Run(tr, core.Policy{Kind: core.PolicyKind(99)}, 2, Options{}); err == nil {
		t.Error("unknown policy kind should fail")
	}
	// The bisection shares Run, so an unbuildable policy surfaces the same
	// error through SizeForMissRate's probe replay.
	if _, err := SizeForMissRate(tr, core.Policy{Kind: core.PolicyKind(99)}, 0.2, 64); err == nil {
		t.Error("unknown policy kind should fail through SizeForMissRate")
	}
}

func TestSweepAggregatesOnEmptyRow(t *testing.T) {
	// A row with no results (no benchmarks) must report zeros, not NaN or
	// a divide-by-zero panic.
	sw := &SweepResult{Results: [][]*Result{{}}}
	if got := sw.UnifiedMissRate(0); got != 0 {
		t.Errorf("UnifiedMissRate on empty row = %v, want 0", got)
	}
	if got := sw.MeanInterUnitLinkFraction(0); got != 0 {
		t.Errorf("MeanInterUnitLinkFraction on empty row = %v, want 0", got)
	}
}

func TestRunVerifyIsTransparent(t *testing.T) {
	// A verified run must be indistinguishable from a plain one — same
	// counters, same census means, same samples — for every policy,
	// including those without an oracle (invariant wall only).
	tr := testTraces(t, 0.3, "vpr")[0]
	policies := append(core.GranularitySweep(8),
		core.Policy{Kind: core.PolicyLRU},
		core.Policy{Kind: core.PolicyGenerational, Units: 8},
	)
	for _, p := range policies {
		plain, err := Run(tr, p, 6, Options{CensusEvery: 200, RecordSamples: true})
		if err != nil {
			t.Fatal(err)
		}
		verified, err := Run(tr, p, 6, Options{CensusEvery: 200, RecordSamples: true, Verify: true})
		if err != nil {
			t.Fatalf("policy %s: verified run failed: %v", p, err)
		}
		if plain.Stats != verified.Stats {
			t.Fatalf("policy %s: verified stats diverge:\nplain:    %+v\nverified: %+v", p, plain.Stats, verified.Stats)
		}
		if plain.MeanIntraLinks != verified.MeanIntraLinks || plain.MeanInterLinks != verified.MeanInterLinks {
			t.Fatalf("policy %s: census means diverge", p)
		}
		if len(plain.Samples) != len(verified.Samples) {
			t.Fatalf("policy %s: sample counts diverge (%d vs %d)", p, len(plain.Samples), len(verified.Samples))
		}
	}
}
