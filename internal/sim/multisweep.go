// Multi-configuration sweep kernel: one pass over a trace simulates an
// array of FIFO-family cache configurations simultaneously (DEW-style
// set-of-caches simulation; see PAPERS.md and DESIGN.md §14).
//
// The per-config path replays the trace once per (policy, pressure,
// capacity) point, re-decoding the same access stream and re-walking the
// same link rows every time. This kernel shares everything that is
// per-trace — the access decode, the dense size table, the frozen CSR
// link adjacency — and keeps only the truly per-config state (virtual
// head/tail, the FIFO queue, counters) in struct-of-arrays slices
// indexed by config. The hot loop's residency test collapses to one
// bitmask compare covering every config at once:
//
//   - resMask[id] holds one residency bit per config; a block resident
//     everywhere (the common case) costs a single load+compare per
//     access, total, across the whole granularity sweep.
//   - On a miss, only the configs whose bit is clear run their eviction
//     and insertion logic (bit iteration over the missing mask).
//   - Link bookkeeping, the dominant per-config cost, is shared on the
//     insert side: the inserted block's CSR rows are walked once, and
//     each edge is charged to every missing config whose endpoint is
//     resident via one bitmask AND — instead of nCfg separate walks.
//   - Eviction-side link classification runs in two passes over the
//     victim set: pass 1 clears residency bits and tags each victim's
//     idMeta.mark with the invocation epoch; pass 2 walks reverse rows
//     only for victims whose pin bit says a patched inbound link may
//     exist, classifying each source branchlessly (res bit set →
//     inter-unit survivor, mark == epoch → intra-unit co-victim). Epochs
//     are shared across configs because invocations never interleave.
//     FLUSH configs short-circuit the walks entirely: every patched link
//     dies intra-unit, so a running counter replaces classification.
//
// Equivalence with the per-config kernels over full core.Stats is held
// by differential tests in this package and internal/check.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/bits"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// SweepConfig names one cache configuration for the multi-configuration
// kernel: a FIFO-family policy plus a sizing rule. Capacity, when
// positive, overrides the totalBytes/Pressure derivation (both are still
// floored via effectiveCapacity, exactly like Options.Capacity on Run).
type SweepConfig struct {
	Policy   core.Policy
	Pressure int
	Capacity int
}

// maxConfigsPerPass is the kernel's width: one residency bit per config
// in a uint64. RunConfigs batches wider ladders into multiple passes.
const maxConfigsPerPass = 64

// mcAbsent marks an ID with no resident block in a config's offset
// column. Virtual offsets are never negative.
const mcAbsent = int64(-1)

// mcEntry is one FIFO queue slot: 8 bytes, so the insert-path store and
// the eviction scan stream 8 entries per cache line. Virtual offsets are
// not stored — the arena is contiguous (entry k+1 starts where entry k
// ends), so the eviction scan reconstructs each offset from the tail by
// accumulating sizes, and tail[c] always equals the front entry's offset.
type mcEntry struct {
	id   core.SuperblockID
	size int32
}

// multiReplay drives nCfg FIFO-family cache states through one pass over
// the access stream. All per-config state is kept in parallel slices
// indexed by config; per-ID state is the residency bitmask and the
// config-major offset table where[id*nCfg+c].
type multiReplay struct {
	traceName string
	tables    replayTables
	adj       *core.FrozenAdjacency
	opts      Options

	chainingDisabled bool
	rowsExact        bool
	linksValid       bool

	nCfg      int
	full      uint64 // mask with one bit per config
	flushMask uint64 // bits of the FLUSH-mode configs

	meta []idMeta // id -> residency bits, patched-in filter, evict epoch
	// where maps id*nCfg + c to the block's virtual offset (mcAbsent when
	// absent). Only the census edge-walk reads it, so it is allocated —
	// and maintained — only when census or occupancy sampling is on.
	where []int64
	epoch uint64 // eviction-invocation epoch for idMeta.mark

	// Hoisted CSR views of adj, so the hot loops index the edge arrays
	// directly instead of re-deriving row slices per call.
	finIdx, foutIdx     []int32
	finEdges, foutEdges []core.SuperblockID

	// Per-config SoA state. mode/unitSize/arenaCap mirror FIFOCache's
	// granularity parameters (arenaCap is the unit-rounded capacity the
	// arena actually enforces; Result.Capacity reports the unrounded
	// effective capacity, matching the per-config path).
	mode     []uint8 // 0 flush, 1 unit, 2 fine
	unitSize []int64
	arenaCap []int64
	head     []int64
	tail     []int64
	// queue[c] is a flat FIFO buffer addressed by [qfront, qback): no
	// append bookkeeping on the insert path, explicit doubling on
	// overflow, prefix compaction when the dead prefix dominates.
	queue    [][]mcEntry
	qfront   []int
	qback    []int
	resident []int
	live     []int64
	// patched maintains, for FLUSH configs only, the deduplicated
	// patched-link count — at flush time every one of them dies
	// intra-unit, which replaces the per-victim reverse-row walks.
	patched [maxConfigsPerPass]uint64
	// Hot per-edge counters live in fixed arrays (no slice header or
	// bounds check in the declare loops) and fold into stats at finish.
	linksPatched   [maxConfigsPerPass]uint64
	pendingRelinks [maxConfigsPerPass]uint64
	stats          []core.Stats
	results        []*Result

	idx        int
	instrBytes uint64

	censusSamples      int
	intraSum, interSum []float64
	backSum            []float64
	cIntra, cInter     []int // census scratch, one slot per config
}

const (
	mcFlush = uint8(iota)
	mcUnit
	mcFine
)

// idMeta packs the per-ID dynamic state the hot loops touch — residency
// bits, the patched-inbound filter, and the eviction-set epoch — so a
// link endpoint or victim costs one cache-line load instead of three
// scattered ones.
//
//   - res: one residency bit per config.
//   - pin: bit c set when the block MAY have a patched inbound link in
//     config c. A conservative filter (stale bits survive silent source
//     evictions) that lets eviction skip the reverse-row walk for
//     victims that never had one.
//   - mark == the current epoch tags the block as a member of the
//     eviction set being classified (epochs are bumped per invocation
//     and shared by all configs, since invocations never interleave).
type idMeta struct {
	res  uint64
	pin  uint64
	mark uint64
}

// newMultiReplay validates and sizes every configuration. Construction
// mirrors the per-config path exactly: each policy is instantiated once
// (for its own validation errors and rounding rules) and then discarded
// in favor of the SoA state.
func newMultiReplay(name string, tabs *traceTables, nAccesses int, cfgs []SweepConfig, opts Options) (*multiReplay, error) {
	nCfg := len(cfgs)
	if nCfg == 0 {
		return nil, fmt.Errorf("sim: multi-config replay of %q needs at least one configuration", name)
	}
	if nCfg > maxConfigsPerPass {
		return nil, fmt.Errorf("sim: multi-config replay width %d exceeds %d", nCfg, maxConfigsPerPass)
	}
	if opts.Verify || opts.RecordSamples || opts.ForceGeneric {
		return nil, fmt.Errorf("sim: multi-config replay supports none of Verify, RecordSamples, ForceGeneric")
	}
	span := len(tabs.tables.sizes)
	adj := tabs.tables.adjacency(opts)
	mr := &multiReplay{
		traceName:        name,
		tables:           tabs.tables,
		adj:              adj,
		opts:             opts,
		chainingDisabled: opts.DisableChaining,
		rowsExact:        adj.RowsExact(),
		linksValid:       adj.LinksValid(),
		nCfg:             nCfg,
		full:             (uint64(1)<<uint(nCfg-1))<<1 - 1,
		meta:             make([]idMeta, span),
		mode:             make([]uint8, nCfg),
		unitSize:         make([]int64, nCfg),
		arenaCap:         make([]int64, nCfg),
		head:             make([]int64, nCfg),
		tail:             make([]int64, nCfg),
		queue:            make([][]mcEntry, nCfg),
		qfront:           make([]int, nCfg),
		qback:            make([]int, nCfg),
		resident:         make([]int, nCfg),
		live:             make([]int64, nCfg),
		stats:            make([]core.Stats, nCfg),
		results:          make([]*Result, nCfg),
	}
	mr.finIdx, mr.finEdges = adj.InCSR()
	mr.foutIdx, mr.foutEdges = adj.OutCSR()
	if opts.CensusEvery > 0 || opts.OccupancyEvery > 0 {
		mr.where = make([]int64, span*nCfg)
		for i := range mr.where {
			mr.where[i] = mcAbsent
		}
	}
	for c, cfg := range cfgs {
		if cfg.Pressure < 1 {
			return nil, fmt.Errorf("sim: pressure factor must be >= 1, got %d", cfg.Pressure)
		}
		capacity := tabs.totalBytes / cfg.Pressure
		switch {
		case cfg.Capacity > 0:
			capacity = cfg.Capacity
		case opts.Capacity > 0:
			capacity = opts.Capacity
		}
		eff := effectiveCapacity(capacity, tabs.maxBlock)
		// Instantiate the policy for its construction-time validation (and
		// to keep its error messages); the cache itself is discarded.
		if _, err := cfg.Policy.New(eff); err != nil {
			return nil, err
		}
		mr.arenaCap[c] = int64(eff)
		switch cfg.Policy.Kind {
		case core.PolicyFlush:
			mr.mode[c] = mcFlush
			mr.flushMask |= uint64(1) << uint(c)
			mr.unitSize[c] = int64(eff)
		case core.PolicyUnits:
			mr.mode[c] = mcUnit
			us := eff / cfg.Policy.Units
			mr.unitSize[c] = int64(us)
			mr.arenaCap[c] = int64(us * cfg.Policy.Units)
		case core.PolicyFine:
			mr.mode[c] = mcFine
		default:
			return nil, fmt.Errorf("sim: multi-config replay supports FIFO-family policies, got %s", cfg.Policy)
		}
		res := &Result{
			Benchmark: name,
			Policy:    cfg.Policy,
			Pressure:  cfg.Pressure,
			Capacity:  eff,
		}
		if opts.OccupancyEvery > 0 {
			res.Occupancy = make([]OccupancySample, 0, nAccesses/opts.OccupancyEvery+1)
		}
		mr.results[c] = res
	}
	// Presize each queue for its expected live set (plus the dead prefix
	// the compaction rule tolerates) so the miss path rarely grows it.
	// Buffers are allocated at full length: the insert path writes by
	// index against qback and never appends.
	avg := int64(1)
	if span > 0 && tabs.totalBytes > 0 {
		avg = int64(tabs.totalBytes / span)
		if avg < 1 {
			avg = 1
		}
	}
	for c := range mr.queue {
		live := int(mr.arenaCap[c] / avg)
		if live > span && span > 0 {
			live = span
		}
		mr.queue[c] = make([]mcEntry, 2*live+2048)
	}
	if opts.CensusEvery > 0 || opts.OccupancyEvery > 0 {
		mr.intraSum = make([]float64, nCfg)
		mr.interSum = make([]float64, nCfg)
		mr.backSum = make([]float64, nCfg)
		mr.cIntra = make([]int, nCfg)
		mr.cInter = make([]int, nCfg)
	}
	return mr, nil
}

// reset returns the replay to a cold-cache state while keeping every
// allocation (meta table, queue buffers) for reuse. Sampled replays
// measure many short windows against the same configuration list; one
// reused kernel amortizes construction across them. Census/occupancy
// state is not reset — sampling rejects those options up front.
func (mr *multiReplay) reset() {
	clear(mr.meta)
	mr.epoch = 0
	for c := 0; c < mr.nCfg; c++ {
		mr.head[c], mr.tail[c] = 0, 0
		mr.qfront[c], mr.qback[c] = 0, 0
		mr.resident[c], mr.live[c] = 0, 0
		mr.patched[c], mr.linksPatched[c], mr.pendingRelinks[c] = 0, 0, 0
		mr.stats[c] = core.Stats{}
	}
	mr.idx = 0
	mr.instrBytes = 0
}

// replayChunk advances every configuration over one batch of accesses,
// splitting at census/occupancy boundaries when sampling is enabled.
func (mr *multiReplay) replayChunk(ids []core.SuperblockID) error {
	ce, oe := mr.opts.CensusEvery, mr.opts.OccupancyEvery
	if ce <= 0 && oe <= 0 {
		return mr.replayTight(ids)
	}
	for len(ids) > 0 {
		n := len(ids)
		if ce > 0 {
			if d := ce - mr.idx%ce; d < n {
				n = d
			}
		}
		if oe > 0 {
			if d := oe - mr.idx%oe; d < n {
				n = d
			}
		}
		if err := mr.replayTight(ids[:n]); err != nil {
			return err
		}
		ids = ids[n:]
		// Sample after the access that lands on the boundary, mirroring
		// the generic kernel's (gi+1)%every == 0 rule.
		if ce > 0 && mr.idx%ce == 0 {
			mr.linkCounts()
			for c := 0; c < mr.nCfg; c++ {
				mr.intraSum[c] += float64(mr.cIntra[c])
				mr.interSum[c] += float64(mr.cInter[c])
				if mr.mode[c] != mcFlush {
					mr.backSum[c] += float64(16 * (mr.cIntra[c] + mr.cInter[c]))
				}
			}
			mr.censusSamples++
		}
		if oe > 0 && mr.idx%oe == 0 {
			mr.linkCounts()
			for c := 0; c < mr.nCfg; c++ {
				mr.results[c].Occupancy = append(mr.results[c].Occupancy, OccupancySample{
					Access:        uint64(mr.idx),
					ResidentBytes: int(mr.live[c]),
					Resident:      mr.resident[c],
					LiveLinks:     mr.cIntra[c] + mr.cInter[c],
				})
			}
		}
	}
	return nil
}

// replayTight is the hot loop: one size-table probe and one residency
// bitmask compare per access; only configs missing the block leave it.
func (mr *multiReplay) replayTight(ids []core.SuperblockID) error {
	sizes := mr.tables.sizes
	meta := mr.meta
	full := mr.full
	instr := mr.instrBytes
	for i, id := range ids {
		if int(id) >= len(sizes) || sizes[id] == 0 {
			mr.instrBytes = instr
			mr.idx += i
			return fmt.Errorf("sim: trace %q access %d references undefined block %d", mr.traceName, mr.idx, id)
		}
		instr += uint64(sizes[id])
		if m := meta[id].res; m != full {
			if err := mr.missAll(id, ^m&full); err != nil {
				mr.instrBytes = instr
				mr.idx += i
				return fmt.Errorf("sim: trace %q access %d: %w", mr.traceName, mr.idx, err)
			}
		}
	}
	mr.instrBytes = instr
	mr.idx += len(ids)
	return nil
}

// missAll inserts id into every config whose residency bit is clear:
// per-config eviction and placement first (each touches only its own
// offset column), then one shared pass over the block's link rows
// charging declaration stats to all missing configs at once.
func (mr *multiReplay) missAll(id core.SuperblockID, missing uint64) error {
	if err := core.ValidateID(id); err != nil {
		return err
	}
	if !mr.linksValid && !mr.chainingDisabled {
		for _, to := range mr.tables.blocks[id].Links {
			if err := core.ValidateID(to); err != nil {
				return err
			}
		}
	}
	size := int64(mr.tables.sizes[id])
	nCfg := mr.nCfg
	base := int(id) * nCfg
	ww := mr.where
	head, tail, arenaCap := mr.head, mr.tail, mr.arenaCap
	for m := missing; m != 0; m &= m - 1 {
		c := bits.TrailingZeros64(m)
		if size > arenaCap[c] {
			return fmt.Errorf("core: superblock %d (%d bytes) exceeds cache capacity %d", id, size, arenaCap[c])
		}
		if head[c]+size-tail[c] > arenaCap[c] {
			mr.evictFor(c, size)
		}
		voff := head[c]
		head[c] = voff + size
		if ww != nil {
			ww[base+c] = voff
		}
		q := mr.queue[c]
		b := mr.qback[c]
		if b == len(q) {
			q = mr.growQueue(c, b)
		}
		q[b] = mcEntry{id: id, size: int32(size)}
		mr.qback[c] = b + 1
		mr.resident[c]++
		mr.live[c] += size
		st := &mr.stats[c]
		st.InsertedBlocks++
		st.InsertedBytes += uint64(size)
	}
	if !mr.chainingDisabled {
		mr.declareShared(id, missing)
	}
	// Residency bits are set only after the link walks: during its own
	// insertion a block is not yet resident (self-links are special-cased
	// by identity), matching the engine's declare/onInsert ordering.
	mr.meta[id].res |= missing
	return nil
}

// growQueue doubles config c's queue buffer (cold path: the constructor
// presizes for the expected live set). n is the current qback.
func (mr *multiReplay) growQueue(c, n int) []mcEntry {
	nq := make([]mcEntry, 2*n+2048)
	copy(nq, mr.queue[c][:n])
	mr.queue[c] = nq
	return nq
}

// declareShared charges the insertion-time link declaration of id to
// every config in missing: one walk over the forward row (patched iff
// the target is resident, self-links always), one walk over the reverse
// row (pending relinks from resident sources). Residency per config is
// one bit test, so each edge costs a mask AND plus a bit iteration over
// only the configs it is actually patched in.
func (mr *multiReplay) declareShared(id core.SuperblockID, missing uint64) {
	meta := mr.meta
	lp := &mr.linksPatched
	pp := &mr.patched
	fm := mr.flushMask
	outRow := mr.foutEdges[mr.foutIdx[id]:mr.foutIdx[id+1]]
	if mr.rowsExact {
		for _, to := range outRow {
			mt := &meta[to]
			m := missing
			if to != id {
				m &= mt.res
			}
			mt.pin |= m
			for x := m; x != 0; x &= x - 1 {
				lp[bits.TrailingZeros64(x)]++
			}
			for x := m & fm; x != 0; x &= x - 1 {
				pp[bits.TrailingZeros64(x)]++
			}
		}
	} else {
		// The frozen rows dropped duplicates or out-of-range targets: the
		// per-declaration LinksPatched stat honors the raw row, while the
		// FLUSH patched-edge counter tracks the deduplicated relation.
		span := len(meta)
		for _, to := range mr.tables.blocks[id].Links {
			m := missing
			if to != id {
				if int(to) >= span {
					continue
				}
				m &= meta[to].res
			}
			for x := m; x != 0; x &= x - 1 {
				lp[bits.TrailingZeros64(x)]++
			}
		}
		for _, to := range outRow {
			mt := &meta[to]
			m := missing
			if to != id {
				m &= mt.res
			}
			mt.pin |= m
			for x := m & fm; x != 0; x &= x - 1 {
				pp[bits.TrailingZeros64(x)]++
			}
		}
	}
	var relinked uint64
	for _, from := range mr.finEdges[mr.finIdx[id]:mr.finIdx[id+1]] {
		if from == id {
			continue
		}
		m := meta[from].res & missing
		relinked |= m
		for x := m; x != 0; x &= x - 1 {
			c := bits.TrailingZeros64(x)
			lp[c]++
			mr.pendingRelinks[c]++
		}
		for x := m & fm; x != 0; x &= x - 1 {
			pp[bits.TrailingZeros64(x)]++
		}
	}
	meta[id].pin |= relinked
}

// evictFor runs one eviction invocation for config c, making room for an
// insertion of the given size. Frontier rules mirror FIFOCache.evictFor.
func (mr *multiReplay) evictFor(c int, size int64) {
	need := mr.head[c] + size - mr.arenaCap[c]
	var frontier int64
	switch mr.mode[c] {
	case mcFlush:
		frontier = mr.head[c]
	case mcUnit:
		q := mr.unitSize[c]
		frontier = (need + q - 1) / q * q
	default:
		frontier = need
	}
	mr.evictBelow(c, frontier)
}

// evictBelow removes, as one eviction invocation for config c, every
// block whose start offset is below frontier, with link classification
// done against offsets instead of mark epochs: the eviction set is
// exactly the resident blocks below the frontier, so an inbound source
// with offset >= frontier survives (inter-unit unlink) and one below it
// dies with the set (intra-unit flush).
func (mr *multiReplay) evictBelow(c int, frontier int64) {
	q := mr.queue[c]
	qf, qb := mr.qfront[c], mr.qback[c]
	voff := mr.tail[c] // == the front entry's virtual offset when nonempty
	if qf == qb || voff >= frontier {
		return
	}
	st := &mr.stats[c]
	nCfg := mr.nCfg
	where := mr.where
	meta := mr.meta
	bit := uint64(1) << uint(c)
	end := qf
	if mr.mode[c] == mcFlush {
		// Full flush: no source survives, so there are no unlink events
		// and every patched link dies intra-unit — the running counter
		// replaces the per-victim reverse-row walks.
		st.IntraUnitLinksFlushed += mr.patched[c]
		mr.patched[c] = 0
		for end < qb && voff < frontier {
			v := &q[end]
			voff += int64(v.size)
			mv := &meta[v.id]
			mv.res &^= bit
			mv.pin &^= bit
			end++
		}
	} else {
		// Pass 1 selects the eviction set, drops its residency bits, and
		// stamps it with a fresh invocation epoch. Pass 2 classifies each
		// victim's inbound links against the shared metadata — a source
		// with the residency bit still set is a survivor (inter-unit
		// removal), one stamped with this epoch is a co-victim
		// (intra-unit flush) — and retires the victims in the same sweep.
		mr.epoch++
		epoch := mr.epoch
		for end < qb && voff < frontier {
			v := &q[end]
			voff += int64(v.size)
			mv := &meta[v.id]
			mv.res &^= bit
			mv.mark = epoch
			end++
		}
		finIdx, finEdges := mr.finIdx, mr.finEdges
		uc := uint(c)
		for k := qf; k < end; k++ {
			id := q[k].id
			mv := &meta[id]
			if mv.pin&bit == 0 {
				continue
			}
			// A surviving source has its residency bit set; a co-victim
			// carries this invocation's epoch. The two are mutually
			// exclusive (pass 1 cleared every victim's bit), so both
			// tallies accumulate branch-free.
			var inter, intra uint64
			for _, from := range finEdges[finIdx[id]:finIdx[id+1]] {
				mf := &meta[from]
				inter += (mf.res >> uc) & 1
				if mf.mark == epoch {
					intra++
				}
			}
			st.InterUnitLinksRemoved += inter
			st.IntraUnitLinksFlushed += intra
			if inter > 0 {
				st.UnlinkEvents++
			}
			mv.pin &^= bit
		}
	}
	if where != nil {
		for k := qf; k < end; k++ {
			where[int(q[k].id)*nCfg+c] = mcAbsent
		}
	}
	n := end - qf
	bytes := voff - mr.tail[c]
	if end < qb {
		mr.tail[c] = voff
		// Reclaim queue space once the dead prefix dominates (same rule
		// as FIFOCache.evictBelow).
		if end > 1024 && end*2 > qb {
			copy(q, q[end:qb])
			mr.qfront[c] = 0
			mr.qback[c] = qb - end
		} else {
			mr.qfront[c] = end
		}
	} else {
		mr.tail[c] = mr.head[c]
		mr.qfront[c] = 0
		mr.qback[c] = 0
	}
	mr.resident[c] -= n
	mr.live[c] -= bytes
	st.EvictionInvocations++
	st.BlocksEvicted += uint64(n)
	st.BytesEvicted += uint64(bytes)
	if mr.resident[c] == 0 {
		st.FullFlushes++
	}
}

// linkCounts fills the census scratch with each config's patched links
// classified intra/inter by unit token, in one edge-major walk over the
// shared adjacency: an edge is patched in config c iff both endpoints'
// residency bits are set, and its unit token comes from the offsets.
func (mr *multiReplay) linkCounts() {
	nCfg := mr.nCfg
	for c := 0; c < nCfg; c++ {
		mr.cIntra[c], mr.cInter[c] = 0, 0
	}
	if mr.chainingDisabled {
		return
	}
	meta := mr.meta
	where := mr.where
	n := mr.adj.NumBlocks()
	for from := 0; from < n; from++ {
		row := mr.adj.OutRow(core.SuperblockID(from))
		if len(row) == 0 {
			continue
		}
		mf := meta[from].res
		if mf == 0 {
			continue
		}
		basef := from * nCfg
		for _, to := range row {
			m := mf
			if int(to) != from {
				m &= meta[to].res
			}
			for x := m; x != 0; x &= x - 1 {
				c := bits.TrailingZeros64(x)
				switch mr.mode[c] {
				case mcFlush:
					mr.cIntra[c]++
				case mcUnit:
					if where[basef+c]/mr.unitSize[c] == where[int(to)*nCfg+c]/mr.unitSize[c] {
						mr.cIntra[c]++
					} else {
						mr.cInter[c]++
					}
				default: // fine: every block is its own unit
					if int(to) == from {
						mr.cIntra[c]++
					} else {
						mr.cInter[c]++
					}
				}
			}
		}
	}
}

// finish folds the accumulated state into per-config Results, in config
// order.
func (mr *multiReplay) finish() []*Result {
	n := uint64(mr.idx)
	for c, res := range mr.results {
		st := mr.stats[c]
		st.Accesses = n
		st.Misses = st.InsertedBlocks
		st.Hits = n - st.Misses
		st.LinksPatched += mr.linksPatched[c]
		st.PendingRelinks += mr.pendingRelinks[c]
		if mr.censusSamples > 0 {
			res.MeanIntraLinks = mr.intraSum[c] / float64(mr.censusSamples)
			res.MeanInterLinks = mr.interSum[c] / float64(mr.censusSamples)
			res.MeanBackPtrBytes = mr.backSum[c] / float64(mr.censusSamples)
		}
		res.AppInstructions = float64(mr.instrBytes) / 4
		res.Stats = st
	}
	return mr.results
}

// runConfigsTables drives the kernel over prebuilt tables, batching
// ladders wider than one pass.
func runConfigsTables(name string, tabs *traceTables, accesses []core.SuperblockID, cfgs []SweepConfig, opts Options) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: multi-config replay needs at least one configuration")
	}
	out := make([]*Result, 0, len(cfgs))
	for start := 0; start < len(cfgs); start += maxConfigsPerPass {
		end := min(start+maxConfigsPerPass, len(cfgs))
		mr, err := newMultiReplay(name, tabs, len(accesses), cfgs[start:end], opts)
		if err != nil {
			return nil, err
		}
		if err := mr.replayChunk(accesses); err != nil {
			return nil, err
		}
		out = append(out, mr.finish()...)
	}
	return out, nil
}

// runMultiJob is Sweep's single-pass job: one kernel pass covering the
// FIFO-family policy subset (multiIdx) for one trace.
func runMultiJob(tr *trace.Trace, tabs *traceTables, policies []core.Policy, multiIdx []int, pressure int, opts Options) ([]*Result, error) {
	cfgs := make([]SweepConfig, len(multiIdx))
	for k, p := range multiIdx {
		cfgs[k] = SweepConfig{Policy: policies[p], Pressure: pressure}
	}
	return runConfigsTables(tr.Name, tabs, tr.Accesses, cfgs, opts)
}

// RunConfigs replays tr once (per batch of 64 configurations) through
// the multi-configuration kernel, returning one Result per SweepConfig
// in input order — Stats-identical to running each configuration through
// Run. Options.Verify, RecordSamples, and ForceGeneric are not supported
// here (Sweep falls back to per-config jobs for those).
func RunConfigs(tr *trace.Trace, cfgs []SweepConfig, opts Options) ([]*Result, error) {
	tabs, err := buildTraceTables(tr)
	if err != nil {
		return nil, err
	}
	return runConfigsTables(tr.Name, tabs, tr.Accesses, cfgs, opts)
}

// RunConfigsStream is RunConfigs over a streamed trace: the access
// sequence is never materialized, so at most one pass — 64 configs — is
// possible.
func RunConfigsStream(st *trace.Stream, cfgs []SweepConfig, opts Options) ([]*Result, error) {
	if len(cfgs) > maxConfigsPerPass {
		return nil, fmt.Errorf("sim: streamed multi-config replay cannot batch %d configs (max %d per pass)",
			len(cfgs), maxConfigsPerPass)
	}
	nAccesses := st.NumAccesses()
	if nAccesses > math.MaxInt32 {
		return nil, fmt.Errorf("sim: trace %q declares %d accesses, too many to replay", st.Name, nAccesses)
	}
	tables, maxBlock, totalBytes, err := buildTables(st.Name, st.Blocks)
	if err != nil {
		return nil, err
	}
	tabs := &traceTables{tables: tables, maxBlock: maxBlock, totalBytes: totalBytes}
	mr, err := newMultiReplay(st.Name, tabs, int(nAccesses), cfgs, opts)
	if err != nil {
		return nil, err
	}
	st.ReleaseBlocks()
	buf := trace.GetAccessBuf()
	defer trace.PutAccessBuf(buf)
	for {
		n, err := st.Next(buf)
		if n > 0 {
			if rerr := mr.replayChunk(buf[:n]); rerr != nil {
				return nil, rerr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sim: trace %q: %w", st.Name, err)
		}
	}
	return mr.finish(), nil
}
