package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// diffResults compares two Results field by field, naming the first
// divergence (Stats fields by name) for debuggability.
func diffResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got=%v want=%v)", label, got != nil, want != nil)
	}
	gs, ws := reflect.ValueOf(got.Stats), reflect.ValueOf(want.Stats)
	for i := 0; i < gs.NumField(); i++ {
		if !reflect.DeepEqual(gs.Field(i).Interface(), ws.Field(i).Interface()) {
			t.Errorf("%s: Stats.%s = %v, want %v", label,
				gs.Type().Field(i).Name, gs.Field(i).Interface(), ws.Field(i).Interface())
			return
		}
	}
	if got.Capacity != want.Capacity {
		t.Errorf("%s: Capacity = %d, want %d", label, got.Capacity, want.Capacity)
	}
	if got.AppInstructions != want.AppInstructions {
		t.Errorf("%s: AppInstructions = %g, want %g", label, got.AppInstructions, want.AppInstructions)
	}
	if got.MeanIntraLinks != want.MeanIntraLinks || got.MeanInterLinks != want.MeanInterLinks ||
		got.MeanBackPtrBytes != want.MeanBackPtrBytes {
		t.Errorf("%s: census means = (%g, %g, %g), want (%g, %g, %g)", label,
			got.MeanIntraLinks, got.MeanInterLinks, got.MeanBackPtrBytes,
			want.MeanIntraLinks, want.MeanInterLinks, want.MeanBackPtrBytes)
	}
	if !reflect.DeepEqual(got.Occupancy, want.Occupancy) {
		t.Errorf("%s: occupancy timelines diverge (%d vs %d samples)", label,
			len(got.Occupancy), len(want.Occupancy))
	}
}

// TestRunConfigsMatchesRun is the kernel-level differential: every
// (policy, pressure, options) point must produce the same Result through
// the multi-configuration kernel as through the per-config path.
func TestRunConfigsMatchesRun(t *testing.T) {
	traces := testTraces(t, 0.05, "word", "vortex", "gzip")
	policies := core.GranularitySweep(8)
	for _, tr := range traces {
		for _, opts := range []Options{
			{},
			{CensusEvery: 700},
			{OccupancyEvery: 900},
			{CensusEvery: 500, OccupancyEvery: 500},
			{DisableChaining: true},
		} {
			var cfgs []SweepConfig
			for _, pol := range policies {
				for _, pressure := range []int{1, 2, 6} {
					cfgs = append(cfgs, SweepConfig{Policy: pol, Pressure: pressure})
				}
			}
			got, err := RunConfigs(tr, cfgs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(cfgs) {
				t.Fatalf("RunConfigs returned %d results for %d configs", len(got), len(cfgs))
			}
			for i, cfg := range cfgs {
				runOpts := opts
				want, err := Run(tr, cfg.Policy, cfg.Pressure, runOpts)
				if err != nil {
					t.Fatal(err)
				}
				diffResults(t, fmt.Sprintf("%s/%s/p%d/opts%+v", tr.Name, cfg.Policy, cfg.Pressure, opts),
					got[i], want)
			}
		}
	}
}

// TestRunConfigsCapacityLadder pins the explicit-capacity sizing path: a
// ladder of capacities over one policy in one pass must match Run's
// Options.Capacity override point for point.
func TestRunConfigsCapacityLadder(t *testing.T) {
	tr := testTraces(t, 0.1, "vortex")[0]
	var cfgs []SweepConfig
	caps := []int{3000, 6000, 12000, 24000, 48000}
	for _, cp := range caps {
		cfgs = append(cfgs, SweepConfig{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 1, Capacity: cp})
	}
	got, err := RunConfigs(tr, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cp := range caps {
		want, err := Run(tr, core.Policy{Kind: core.PolicyFine}, 1, Options{Capacity: cp})
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("capacity %d", cp), got[i], want)
	}
	// Miss rate must be monotonically non-increasing up the ladder.
	for i := 1; i < len(got); i++ {
		if got[i].Stats.MissRate() > got[i-1].Stats.MissRate() {
			t.Errorf("capacity %d: miss rate %g above smaller cache's %g",
				caps[i], got[i].Stats.MissRate(), got[i-1].Stats.MissRate())
		}
	}
}

// TestRunConfigsBatchesWideLadders proves ladders wider than one pass
// (64 configs) split transparently.
func TestRunConfigsBatchesWideLadders(t *testing.T) {
	tr := testTraces(t, 0.05, "gzip")[0]
	var cfgs []SweepConfig
	for i := 0; i < 70; i++ {
		cfgs = append(cfgs, SweepConfig{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 1, Capacity: 2000 + 100*i})
	}
	got, err := RunConfigs(tr, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 70 {
		t.Fatalf("got %d results, want 70", len(got))
	}
	for _, i := range []int{0, 63, 64, 69} {
		want, err := Run(tr, cfgs[i].Policy, 1, Options{Capacity: cfgs[i].Capacity})
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("batched config %d", i), got[i], want)
	}
}

// TestRunConfigsStreamMatchesMaterialized pins chunking invariance: the
// streamed multi-config replay equals the materialized one.
func TestRunConfigsStreamMatchesMaterialized(t *testing.T) {
	tr := testTraces(t, 0.1, "word")[0]
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []SweepConfig
	for _, pol := range core.GranularitySweep(8) {
		cfgs = append(cfgs, SweepConfig{Policy: pol, Pressure: 2})
	}
	streamed, err := RunConfigsStream(st, cfgs, Options{CensusEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunConfigs(tr, cfgs, Options{CensusEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		diffResults(t, fmt.Sprintf("streamed %s", cfgs[i].Policy), streamed[i], direct[i])
	}
}

// TestSweepSinglePassMatchesPerConfig proves Options.SinglePass routing
// is invisible in the results, including with policies the kernel cannot
// take (mixed per-config fallback).
func TestSweepSinglePassMatchesPerConfig(t *testing.T) {
	traces := testTraces(t, 0.05, "word", "gzip")
	policies := append(core.GranularitySweep(8), core.Policy{Kind: core.PolicyLRU})
	for _, pressure := range []int{2, 8} {
		base, err := Sweep(traces, policies, pressure, Options{CensusEvery: 800})
		if err != nil {
			t.Fatal(err)
		}
		single, err := Sweep(traces, policies, pressure, Options{CensusEvery: 800, SinglePass: true})
		if err != nil {
			t.Fatal(err)
		}
		for p := range policies {
			for b := range traces {
				diffResults(t, fmt.Sprintf("p=%s b=%s pressure=%d", policies[p], traces[b].Name, pressure),
					single.Results[p][b], base.Results[p][b])
			}
		}
	}
}

// TestSinglePassFallsBackForVerify: Verify (and friends) must silently
// use the per-config path, not fail.
func TestSinglePassFallsBackForVerify(t *testing.T) {
	traces := testTraces(t, 0.05, "gzip")
	policies := core.GranularitySweep(4)
	sw, err := Sweep(traces, policies, 2, Options{SinglePass: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Sweep(traces, policies, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range policies {
		diffResults(t, policies[p].String(), sw.Results[p][0], base.Results[p][0])
	}
}

// TestRunConfigsErrors covers the kernel's validation and failure paths.
func TestRunConfigsErrors(t *testing.T) {
	tr := testTraces(t, 0.05, "gzip")[0]
	fine := core.Policy{Kind: core.PolicyFine}

	if _, err := RunConfigs(tr, nil, Options{}); err == nil {
		t.Error("empty config list should fail")
	}
	if _, err := RunConfigs(tr, []SweepConfig{{Policy: fine, Pressure: 0}}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "pressure factor") {
		t.Errorf("pressure 0 = %v, want pressure error", err)
	}
	if _, err := RunConfigs(tr, []SweepConfig{{Policy: core.Policy{Kind: core.PolicyLRU}, Pressure: 2}}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "FIFO-family") {
		t.Errorf("LRU config = %v, want FIFO-family error", err)
	}
	if _, err := RunConfigs(tr, []SweepConfig{{Policy: core.Policy{Kind: core.PolicyUnits, Units: 1}, Pressure: 2}}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "n >= 2") {
		t.Errorf("1-unit config = %v, want construction error", err)
	}
	if _, err := RunConfigs(tr, []SweepConfig{{Policy: fine, Pressure: 2}}, Options{Verify: true}); err == nil {
		t.Error("Verify should be rejected by RunConfigs")
	}

	// Undefined access mid-stream, with the same error shape as Run.
	bad := trace.New("bad")
	if err := bad.Define(core.Superblock{ID: 0, Size: 64}); err != nil {
		t.Fatal(err)
	}
	bad.Accesses = []core.SuperblockID{0, 9}
	_, err := RunConfigs(bad, []SweepConfig{{Policy: fine, Pressure: 1}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "undefined block 9") {
		t.Errorf("undefined access = %v, want undefined-block error", err)
	}
	_, werr := Run(bad, fine, 1, Options{})
	if werr == nil || err.Error() != werr.Error() {
		t.Errorf("error text diverges from Run: %v vs %v", err, werr)
	}
}

// TestSweepSharedTablesAcrossJobs pins the memoization satellite: one
// table build per trace regardless of how many (policy, pressure) jobs
// replay it. The job seam receives the prebuilt tables; identical
// pointers across jobs prove sharing.
func TestSweepSharedTablesAcrossJobs(t *testing.T) {
	traces := testTraces(t, 0.05, "gzip", "vortex")
	policies := core.GranularitySweep(4)
	seen := make(map[string]map[*traceTables]bool)
	orig := runJob
	runJob = func(tr *trace.Trace, tabs *traceTables, policy core.Policy, pressure int, opts Options) (*Result, error) {
		if seen[tr.Name] == nil {
			seen[tr.Name] = make(map[*traceTables]bool)
		}
		seen[tr.Name][tabs] = true
		return orig(tr, tabs, policy, pressure, opts)
	}
	defer func() { runJob = orig }()
	if _, err := sweep(traces, policies, 2, Options{}, 1); err != nil {
		t.Fatal(err)
	}
	for name, ptrs := range seen {
		if len(ptrs) != 1 {
			t.Errorf("trace %q used %d table builds across jobs, want 1 shared", name, len(ptrs))
		}
	}
	if len(seen) != len(traces) {
		t.Errorf("saw tables for %d traces, want %d", len(seen), len(traces))
	}
}

// dirtyLinkTrace builds a synthetic trace whose link rows carry the raw
// irregularities the frozen adjacency reduces away — duplicate
// declarations and targets outside the dense table — so the kernel's
// raw-row declaration accounting (the rowsExact=false path) is exercised
// differentially against the per-config engine.
func dirtyLinkTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := trace.New("dirty-links")
	const n = 40
	for i := 0; i < n; i++ {
		links := []core.SuperblockID{
			core.SuperblockID((i + 1) % n),
			core.SuperblockID((i + 1) % n), // duplicate declaration
			core.SuperblockID(n + 3),       // out of the dense table
			core.SuperblockID(i),           // self-link
		}
		if err := tr.Define(core.Superblock{ID: core.SuperblockID(i), Size: 48 + 16*(i%5), Links: links}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6000; i++ {
		tr.Accesses = append(tr.Accesses, core.SuperblockID((i*7+i/13)%n))
	}
	return tr
}

// TestRunConfigsDirtyLinkRows: the kernel must match the per-config
// engine on raw link rows that the frozen CSR cannot represent exactly.
func TestRunConfigsDirtyLinkRows(t *testing.T) {
	tr := dirtyLinkTrace(t)
	var cfgs []SweepConfig
	for _, pol := range core.GranularitySweep(4) {
		for _, p := range []int{1, 3} {
			cfgs = append(cfgs, SweepConfig{Policy: pol, Pressure: p})
		}
	}
	multi, err := RunConfigs(tr, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		single, err := Run(tr, cfg.Policy, cfg.Pressure, Options{})
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("%s p%d", cfg.Policy, cfg.Pressure), multi[i], single)
	}
}

// TestRunConfigsQueueGrowth forces the insertion queue past its presized
// length: the constructor estimates the live set from the trace's mean
// block size, so a trace whose accessed blocks are far smaller than its
// mean (large never-accessed blocks drag the average up) overflows the
// estimate and must grow the buffer mid-replay without corrupting state.
func TestRunConfigsQueueGrowth(t *testing.T) {
	tr := trace.New("queue-growth")
	const small = 10000
	for i := 0; i < small; i++ {
		if err := tr.Define(core.Superblock{ID: core.SuperblockID(i), Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Define(core.Superblock{ID: core.SuperblockID(small + i), Size: 800}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < small; i++ {
		tr.Accesses = append(tr.Accesses, core.SuperblockID(i))
	}
	cfg := SweepConfig{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 7}
	multi, err := RunConfigs(tr, []SweepConfig{cfg}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := multi[0].Stats.InsertedBlocks; got != small {
		t.Fatalf("InsertedBlocks = %d, want %d (every access a compulsory miss)", got, small)
	}
	single, err := Run(tr, cfg.Policy, cfg.Pressure, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "queue growth", multi[0], single)
}

// TestRunConfigsEmptyTrace: table building fails before any kernel is
// constructed.
func TestRunConfigsEmptyTrace(t *testing.T) {
	cfgs := []SweepConfig{{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 2}}
	if _, err := RunConfigs(trace.New("empty"), cfgs, Options{}); err == nil ||
		!strings.Contains(err.Error(), "empty") {
		t.Errorf("empty trace = %v, want empty-trace error", err)
	}
}

// TestRunConfigsStreamTooWide: a streamed trace cannot be re-read, so
// ladders wider than one kernel pass must be rejected up front.
func TestRunConfigsStreamTooWide(t *testing.T) {
	tr := testTraces(t, 0.05, "gzip")[0]
	var enc bytes.Buffer
	if err := tr.Write(&enc); err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewStream(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]SweepConfig, maxConfigsPerPass+1)
	for i := range cfgs {
		cfgs[i] = SweepConfig{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: i + 1}
	}
	if _, err := RunConfigsStream(st, cfgs, Options{}); err == nil ||
		!strings.Contains(err.Error(), "cannot batch") {
		t.Errorf("wide streamed ladder = %v, want batching error", err)
	}
}

// TestRunConfigsInvalidLink: when freeze-time prevalidation fails (a
// link target over the dense-ID limit), the kernel must re-validate per
// insert and surface the same error shape as the engine.
func TestRunConfigsInvalidLink(t *testing.T) {
	tr := trace.New("bad-link")
	if err := tr.Define(core.Superblock{ID: 0, Size: 64, Links: []core.SuperblockID{1 << 30}}); err != nil {
		t.Fatal(err)
	}
	tr.Accesses = []core.SuperblockID{0}
	cfgs := []SweepConfig{{Policy: core.Policy{Kind: core.PolicyFine}, Pressure: 1}}
	if _, err := RunConfigs(tr, cfgs, Options{}); err == nil ||
		!strings.Contains(err.Error(), "dense-ID limit") {
		t.Errorf("invalid link target = %v, want dense-ID limit error", err)
	}
}
