package sim

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/overhead"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// TestProbeShapes is a calibration probe: it prints the shapes of the key
// figures (miss rate, evictions, overhead, inter-unit links) across the
// granularity sweep so workload parameters can be tuned. It never fails;
// assertions live in the regular tests. Run with -v to see the tables.
func TestProbeShapes(t *testing.T) {
	if os.Getenv("DYNOCACHE_PROBE") == "" {
		t.Skip("calibration probe is expensive; set DYNOCACHE_PROBE=1 to run")
	}
	scale := 1.0
	if s := os.Getenv("DYNOCACHE_PROBE_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			scale = f
		}
	}
	var traces []*trace.Trace
	for _, p := range workload.ScaledTable1(scale) {
		tr, err := p.Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	policies := core.GranularitySweep(64)
	model := overhead.Paper()
	for _, pressure := range []int{2, 10} {
		sw, err := Sweep(traces, policies, pressure, Options{CensusEvery: 500})
		if err != nil {
			t.Fatal(err)
		}
		var flushOH float64
		fmt.Printf("pressure=%d\n%-10s %10s %12s %12s %10s %10s\n",
			pressure, "policy", "missrate", "evictions", "oh/FLUSH", "oh+l/FLUSH", "interlink%")
		for p := range policies {
			oh := sw.TotalOverhead(p, model, false)
			ohl := sw.TotalOverhead(p, model, true)
			if p == 0 {
				flushOH = oh
			}
			fmt.Printf("%-10s %10.4f %12d %12.3f %12.3f %10.1f\n",
				policies[p], sw.UnifiedMissRate(p), sw.TotalEvictionInvocations(p),
				oh/flushOH, ohl/flushOH, 100*sw.MeanInterUnitLinkFraction(p))
		}
		// Per-benchmark FLUSH -> 8-unit execution-time reduction (Sec 5.3).
		const appPerAccess = 2000.0
		for b, name := range sw.Benchmarks {
			rf, r8, rfifo := sw.Results[0][b], sw.Results[3][b], sw.Results[len(policies)-1][b]
			tf := model.ExecutionTime(appPerAccess*float64(rf.Stats.Accesses), rf.Overhead(model, true))
			t8 := model.ExecutionTime(appPerAccess*float64(r8.Stats.Accesses), r8.Overhead(model, true))
			tfifo := model.ExecutionTime(appPerAccess*float64(rfifo.Stats.Accesses), rfifo.Overhead(model, true))
			fmt.Printf("  %-14s reduction FLUSH->8unit %6.2f%%  FIFO/FLUSH %5.3f  miss F/8/f %.3f/%.3f/%.3f\n",
				name, 100*overhead.Reduction(tf, t8), tfifo/tf,
				rf.Stats.MissRate(), r8.Stats.MissRate(), rfifo.Stats.MissRate())
		}
	}
}
