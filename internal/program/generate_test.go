package program

import (
	"testing"

	"dynocache/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(7)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Insts), len(b.Insts))
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Insts[i], b.Insts[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(DefaultGenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Insts) == len(b.Insts) {
		same := true
		for i := range a.Insts {
			if a.Insts[i] != b.Insts[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical programs")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := DefaultGenConfig(3)
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// main + NumFuncs + inittable functions recorded.
	if got, want := len(p.Funcs), cfg.NumFuncs+2; got != want {
		t.Fatalf("func count = %d, want %d", got, want)
	}
	if p.Funcs[0].Name != "main" || p.Entry != p.Funcs[0].Entry {
		t.Fatalf("entry should be main: %+v entry=%d", p.Funcs[0], p.Entry)
	}
	// Exactly one halt (end of main).
	halts := 0
	var hasCall, hasBranch, hasIndirect, hasLoad bool
	for _, in := range p.Insts {
		switch {
		case in.Op == isa.OpHalt:
			halts++
		case isa.IsCall(in.Op):
			hasCall = true
		case isa.IsBranch(in.Op):
			hasBranch = true
		case in.Op == isa.OpLw:
			hasLoad = true
		}
		if in.Op == isa.OpJalr {
			hasIndirect = true
		}
	}
	if halts != 1 {
		t.Errorf("halt count = %d, want 1", halts)
	}
	if !hasCall || !hasBranch || !hasLoad {
		t.Errorf("program missing structure: call=%v branch=%v load=%v", hasCall, hasBranch, hasLoad)
	}
	if cfg.IndirectPct > 0 && !hasIndirect {
		t.Error("expected at least one indirect call")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{},
		{NumFuncs: 0, MinBlocks: 1, MaxBlocks: 2, Phases: 1, PhaseFuncs: 1, PhaseIters: 1, MaxLoopTrip: 1},
		{NumFuncs: 2, MinBlocks: 3, MaxBlocks: 2, Phases: 1, PhaseFuncs: 1, PhaseIters: 1, MaxLoopTrip: 1},
		{NumFuncs: 2, MinBlocks: 1, MaxBlocks: 2, Phases: 0, PhaseFuncs: 1, PhaseIters: 1, MaxLoopTrip: 1},
		{NumFuncs: 2, MinBlocks: 1, MaxBlocks: 2, Phases: 1, PhaseFuncs: 3, PhaseIters: 1, MaxLoopTrip: 1},
		{NumFuncs: 2, MinBlocks: 1, MaxBlocks: 2, Phases: 1, PhaseFuncs: 1, PhaseIters: 0, MaxLoopTrip: 1},
		{NumFuncs: 2, MinBlocks: 1, MaxBlocks: 2, Phases: 1, PhaseFuncs: 1, PhaseIters: 1, MaxLoopTrip: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate with config %d should fail", i)
		}
	}
	if err := DefaultGenConfig(0).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestGenerateTinyConfig(t *testing.T) {
	cfg := GenConfig{
		Seed: 1, NumFuncs: 1, MinBlocks: 1, MaxBlocks: 1,
		MaxLoopTrip: 1, Phases: 1, PhaseFuncs: 1, PhaseIters: 1,
	}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) == 0 {
		t.Fatal("empty program")
	}
}
