// Package program generates synthetic DRISC guest programs for the
// dynocache dynamic binary translator.
//
// The paper's workloads are real binaries (SPECint2000 and interactive
// Windows applications) run under DynamoRIO. Our substitute is a program
// generator that emits control-flow graphs with the structural features
// that matter for code cache studies: many basic blocks, counted loops,
// biased conditional branches, direct and indirect calls, and phased
// execution so that the hot working set drifts over time.
package program

import (
	"fmt"

	"dynocache/internal/isa"
)

// Memory layout conventions shared by the generator and the interpreter.
const (
	// CodeBase is the address programs are loaded at.
	CodeBase uint32 = 0
	// DataBase is the start of the scratch data region.
	DataBase uint32 = 1 << 20 // 1 MiB
	// StackTop is the initial stack pointer (stack grows down).
	StackTop uint32 = DataBase + (1 << 19) // 1.5 MiB
	// MemSize is the flat guest memory size needed to run a program.
	MemSize = 1 << 21 // 2 MiB
)

// FuncInfo describes one generated function for reporting purposes.
type FuncInfo struct {
	Name   string
	Entry  uint32 // byte address of the entry block
	Blocks int    // static basic block count
}

// Program is a generated DRISC binary plus metadata.
type Program struct {
	Insts []isa.Inst
	Entry uint32 // byte address of the first instruction to execute
	Funcs []FuncInfo
}

// Code returns the little-endian machine code image of the program.
func (p *Program) Code() ([]byte, error) {
	return isa.EncodeProgram(p.Insts)
}

// Size returns the code image size in bytes.
func (p *Program) Size() int { return len(p.Insts) * isa.WordSize }

// fixupKind distinguishes branch fixups (imm16) from jump fixups (imm26).
type fixupKind uint8

const (
	fixBranch fixupKind = iota
	fixJump
)

type fixup struct {
	idx   int // instruction index to patch
	label string
	kind  fixupKind
}

// addrFixup patches a lui/addi pair so that it materializes the absolute
// byte address of a label (used for function-pointer tables).
type addrFixup struct {
	lui, addi int
	label     string
}

// Builder incrementally constructs an instruction stream with symbolic
// labels, resolving pc-relative offsets at Build time.
type Builder struct {
	insts      []isa.Inst
	labels     map[string]int
	fixups     []fixup
	addrFixups []addrFixup
	funcs      []FuncInfo
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// PC returns the byte address the next emitted instruction will occupy.
func (b *Builder) PC() uint32 { return CodeBase + uint32(len(b.insts)*isa.WordSize) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Label binds name to the current position. Rebinding a name is an error
// reported at Build time via a panic-free sentinel: we record it eagerly.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("program: duplicate label %q", name))
	}
	b.labels[name] = len(b.insts)
}

// Emit appends one instruction and returns its index.
func (b *Builder) Emit(in isa.Inst) int {
	b.insts = append(b.insts, in)
	return len(b.insts) - 1
}

// ALU emits a three-register ALU operation.
func (b *Builder) ALU(op isa.Opcode, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int32) {
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Lw emits rd = mem[rs1+imm].
func (b *Builder) Lw(rd, rs1 isa.Reg, imm int32) {
	b.Emit(isa.Inst{Op: isa.OpLw, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sw emits mem[rs1+imm] = rd.
func (b *Builder) Sw(rd, rs1 isa.Reg, imm int32) {
	b.Emit(isa.Inst{Op: isa.OpSw, Rd: rd, Rs1: rs1, Imm: imm})
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op isa.Opcode, rd, rs1 isa.Reg, label string) {
	if !isa.IsBranch(op) {
		panic(fmt.Sprintf("program: Branch with non-branch opcode %s", op))
	}
	idx := b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1})
	b.fixups = append(b.fixups, fixup{idx: idx, label: label, kind: fixBranch})
}

// Jump emits jmp or jal to label.
func (b *Builder) Jump(op isa.Opcode, label string) {
	if !isa.IsDirectJump(op) {
		panic(fmt.Sprintf("program: Jump with non-jump opcode %s", op))
	}
	idx := b.Emit(isa.Inst{Op: op})
	b.fixups = append(b.fixups, fixup{idx: idx, label: label, kind: fixJump})
}

// JumpReg emits an indirect jump or call through rs1.
func (b *Builder) JumpReg(op isa.Opcode, rs1 isa.Reg) {
	if !isa.IsIndirect(op) {
		panic(fmt.Sprintf("program: JumpReg with non-indirect opcode %s", op))
	}
	b.Emit(isa.Inst{Op: op, Rs1: rs1})
}

// Const materializes an arbitrary 32-bit constant into rd using a lui/addi
// pair (or a single addi when the value fits in a signed 16-bit immediate).
// The low half is sign-extended by addi, so the high half is adjusted the
// way MIPS %hi/%lo relocations are.
func (b *Builder) Const(rd isa.Reg, val uint32) {
	sval := int32(val)
	if sval >= -(1<<15) && sval < 1<<15 {
		b.Addi(rd, isa.RZero, sval)
		return
	}
	lo := int32(int16(uint16(val)))
	hi := int32((val - uint32(lo)) >> 16)
	b.Emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: hi})
	if lo != 0 {
		b.Addi(rd, rd, lo)
	}
}

// Halt emits a halt instruction.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Ret emits a return through the link register.
func (b *Builder) Ret() { b.JumpReg(isa.OpJr, isa.RLink) }

// beginFunc records function metadata; the entry label must already be
// bound at the current position.
func (b *Builder) beginFunc(name string) *FuncInfo {
	b.funcs = append(b.funcs, FuncInfo{Name: name, Entry: b.PC()})
	return &b.funcs[len(b.funcs)-1]
}

// Build resolves all fixups and returns the finished program with the given
// entry label.
func (b *Builder) Build(entry string) (*Program, error) {
	entryIdx, ok := b.labels[entry]
	if !ok {
		return nil, fmt.Errorf("program: undefined entry label %q", entry)
	}
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("program: undefined label %q", fx.label)
		}
		off := int32(target - (fx.idx + 1))
		switch fx.kind {
		case fixBranch:
			if off < -(1<<15) || off >= 1<<15 {
				return nil, fmt.Errorf("program: branch to %q out of range (%d words)", fx.label, off)
			}
		case fixJump:
			if off < -(1<<25) || off >= 1<<25 {
				return nil, fmt.Errorf("program: jump to %q out of range (%d words)", fx.label, off)
			}
		}
		b.insts[fx.idx].Imm = off
	}
	for _, fx := range b.addrFixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("program: undefined label %q", fx.label)
		}
		addr := CodeBase + uint32(target*isa.WordSize)
		lo := int32(int16(uint16(addr)))
		hi := int32((addr - uint32(lo)) >> 16)
		b.insts[fx.lui].Imm = hi
		b.insts[fx.addi].Imm = lo
	}
	// Validate encodability eagerly so callers get errors here, not at run
	// time deep inside the interpreter.
	if _, err := isa.EncodeProgram(b.insts); err != nil {
		return nil, err
	}
	return &Program{
		Insts: b.insts,
		Entry: CodeBase + uint32(entryIdx*isa.WordSize),
		Funcs: b.funcs,
	}, nil
}
