package program

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestObjRoundTrip(t *testing.T) {
	p, err := Generate(DefaultGenConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteObj(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadObj(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != p.Entry {
		t.Fatalf("entry = %d, want %d", back.Entry, p.Entry)
	}
	if len(back.Insts) != len(p.Insts) {
		t.Fatalf("insts = %d, want %d", len(back.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if back.Insts[i] != p.Insts[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, back.Insts[i], p.Insts[i])
		}
	}
	if len(back.Funcs) != len(p.Funcs) {
		t.Fatalf("funcs = %d, want %d", len(back.Funcs), len(p.Funcs))
	}
	for i := range p.Funcs {
		if back.Funcs[i] != p.Funcs[i] {
			t.Fatalf("func %d differs: %+v vs %+v", i, back.Funcs[i], p.Funcs[i])
		}
	}
}

func TestObjSaveLoad(t *testing.T) {
	p, err := Generate(DefaultGenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prog.dobj")
	if err := p.SaveObj(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadObj(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != p.Size() {
		t.Fatalf("size = %d, want %d", back.Size(), p.Size())
	}
	if _, err := LoadObj(filepath.Join(t.TempDir(), "missing.dobj")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestObjReadErrors(t *testing.T) {
	if _, err := ReadObj(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadObj(bytes.NewReader([]byte("DO"))); err == nil {
		t.Error("truncated magic should fail")
	}
	bad := append([]byte(objMagic), 9, 0)
	if _, err := ReadObj(bytes.NewReader(bad)); err == nil {
		t.Error("bad version should fail")
	}
	// Truncations at various depths.
	p, err := Generate(DefaultGenConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := p.WriteObj(&full); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{6, 10, 14, 20, full.Len() - 2} {
		if _, err := ReadObj(bytes.NewReader(full.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	// Entry out of range.
	tiny := &Program{Entry: 4096, Insts: p.Insts[:2], Funcs: nil}
	var buf bytes.Buffer
	if err := tiny.WriteObj(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadObj(&buf); err == nil {
		t.Error("out-of-range entry should fail")
	}
}
