package program

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"dynocache/internal/isa"
)

// Object-file format for generated guest programs, so workloads can be
// saved once and re-run under different DBT configurations (all integers
// little-endian):
//
//	magic    [4]byte "DOBJ"
//	version  uint16 (currently 1)
//	entry    uint32
//	nFuncs   uint32
//	  per func: nameLen uint16, name []byte, entry uint32, blocks uint32
//	nInsts   uint32
//	  insts  []uint32 (encoded DRISC words)
const (
	objMagic   = "DOBJ"
	objVersion = 1
)

// WriteObj serializes the program to w.
func (p *Program) WriteObj(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(objMagic); err != nil {
		return fmt.Errorf("program: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(objVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, p.Entry); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Funcs))); err != nil {
		return err
	}
	for _, f := range p.Funcs {
		if len(f.Name) > 1<<16-1 {
			return fmt.Errorf("program: function name too long: %q", f.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(f.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(f.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, f.Entry); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(f.Blocks)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Insts))); err != nil {
		return err
	}
	for i, in := range p.Insts {
		word, err := isa.Encode(in)
		if err != nil {
			return fmt.Errorf("program: instruction %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, word); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadObj deserializes a program from r.
func ReadObj(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("program: read magic: %w", err)
	}
	if string(head) != objMagic {
		return nil, fmt.Errorf("program: bad magic %q", head)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != objVersion {
		return nil, fmt.Errorf("program: unsupported object version %d", ver)
	}
	p := &Program{}
	if err := binary.Read(br, binary.LittleEndian, &p.Entry); err != nil {
		return nil, err
	}
	var nFuncs uint32
	if err := binary.Read(br, binary.LittleEndian, &nFuncs); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nFuncs; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("program: function %d: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var fi FuncInfo
		fi.Name = string(name)
		if err := binary.Read(br, binary.LittleEndian, &fi.Entry); err != nil {
			return nil, err
		}
		var blocks uint32
		if err := binary.Read(br, binary.LittleEndian, &blocks); err != nil {
			return nil, err
		}
		fi.Blocks = int(blocks)
		p.Funcs = append(p.Funcs, fi)
	}
	var nInsts uint32
	if err := binary.Read(br, binary.LittleEndian, &nInsts); err != nil {
		return nil, err
	}
	p.Insts = make([]isa.Inst, 0, nInsts)
	buf := make([]byte, 4)
	for i := uint32(0); i < nInsts; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("program: instruction %d: %w", i, err)
		}
		in, err := isa.Decode(binary.LittleEndian.Uint32(buf))
		if err != nil {
			return nil, fmt.Errorf("program: instruction %d: %w", i, err)
		}
		p.Insts = append(p.Insts, in)
	}
	if int(p.Entry) >= len(p.Insts)*isa.WordSize {
		return nil, fmt.Errorf("program: entry %#x outside code", p.Entry)
	}
	return p, nil
}

// SaveObj writes the program to a file.
func (p *Program) SaveObj(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("program: %w", err)
	}
	defer f.Close()
	if err := p.WriteObj(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadObj reads a program from a file.
func LoadObj(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	defer f.Close()
	return ReadObj(f)
}
