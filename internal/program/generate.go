package program

import (
	"fmt"

	"dynocache/internal/isa"
	"dynocache/internal/stats"
)

// GenConfig controls synthetic program generation. The defaults produce a
// program on the order of a few hundred basic blocks — comparable to the
// smaller SPECint2000 benchmarks in Table 1 when run under the DBT.
type GenConfig struct {
	Seed uint64 // PRNG seed; equal seeds give identical programs

	NumFuncs  int // number of generated functions
	MinBlocks int // minimum basic blocks per function
	MaxBlocks int // maximum basic blocks per function

	LoopProb    float64 // probability a block carries a counted inner loop
	MaxLoopTrip int     // maximum inner-loop trip count
	CallProb    float64 // probability a block calls another function
	IndirectPct float64 // fraction of main's calls made through a function-pointer table
	BranchProb  float64 // probability a block ends with a conditional skip

	Phases     int // number of execution phases in main
	PhaseFuncs int // functions called per phase (sliding window with overlap)
	PhaseIters int // iterations of each phase loop
}

// DefaultGenConfig returns a small but structurally rich configuration.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{
		Seed:        seed,
		NumFuncs:    24,
		MinBlocks:   4,
		MaxBlocks:   12,
		LoopProb:    0.3,
		MaxLoopTrip: 6,
		// Calls go only to higher-numbered functions, forming a branching
		// process along the function list; keep the expected offspring per
		// invocation (executed blocks x CallProb) comfortably subcritical
		// so program run lengths stay bounded.
		CallProb:    0.08,
		IndirectPct: 0.2,
		BranchProb:  0.6,
		Phases:      4,
		PhaseFuncs:  8,
		PhaseIters:  40,
	}
}

// Validate reports the first problem with the configuration.
func (c GenConfig) Validate() error {
	switch {
	case c.NumFuncs < 1:
		return fmt.Errorf("program: NumFuncs must be >= 1, got %d", c.NumFuncs)
	case c.MinBlocks < 1 || c.MaxBlocks < c.MinBlocks:
		return fmt.Errorf("program: bad block range [%d, %d]", c.MinBlocks, c.MaxBlocks)
	case c.Phases < 1:
		return fmt.Errorf("program: Phases must be >= 1, got %d", c.Phases)
	case c.PhaseFuncs < 1 || c.PhaseFuncs > c.NumFuncs:
		return fmt.Errorf("program: PhaseFuncs %d out of range [1, %d]", c.PhaseFuncs, c.NumFuncs)
	case c.PhaseIters < 1:
		return fmt.Errorf("program: PhaseIters must be >= 1, got %d", c.PhaseIters)
	case c.MaxLoopTrip < 1:
		return fmt.Errorf("program: MaxLoopTrip must be >= 1, got %d", c.MaxLoopTrip)
	}
	return nil
}

// Register allocation conventions inside generated code:
//
//	r1-r8   scratch (ALU/memory ops, indirect call targets)
//	r9      main's phase-loop counter (never touched by callees)
//	r10     global LCG state driving branch directions
//	r11     LCG multiplier constant
//	r12     branch-test bit mask constant
//	r13     innermost loop counter (loop bodies never contain calls)
//	r14     stack pointer
//	r15     link register
const (
	regLCG    = isa.Reg(10)
	regLCGMul = isa.Reg(11)
	regMask   = isa.Reg(12)
	regLoop   = isa.Reg(13)
	regPhase  = isa.Reg(9)
	regData   = isa.Reg(8) // set to DataBase in main; callees reload as needed
)

// FuncTableOff is the offset from DataBase of the function-pointer table
// used for indirect calls. It sits above the 4 KiB scratch window that
// generated work instructions read and write, so scratch stores can never
// corrupt call targets.
const FuncTableOff = 0x4000

// Generate builds a synthetic program from cfg. The same configuration
// always yields the same program.
func Generate(cfg GenConfig) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRand(cfg.Seed, 0x9a7)
	b := NewBuilder()

	// main sits first so the entry PC is stable.
	b.Label("main")
	b.beginFunc("main")
	emitMainProlog(b)

	// Function pointer table setup (for indirect calls): the table lives at
	// DataBase and is filled in after we know function addresses; we emit
	// the stores at the end of codegen via a second pass. To keep a single
	// pass, main jumps to an init stub placed after all functions.
	b.Jump(isa.OpJal, "inittable")

	// Decide each function's callees up front so prologues know whether to
	// save the link register.
	type funcPlan struct {
		blocks  int
		callees []int // callee function indices, one per calling block
	}
	plans := make([]funcPlan, cfg.NumFuncs)
	for i := range plans {
		nb := cfg.MinBlocks
		if cfg.MaxBlocks > cfg.MinBlocks {
			nb += r.Intn(cfg.MaxBlocks - cfg.MinBlocks + 1)
		}
		plans[i].blocks = nb
		for blk := 0; blk < nb; blk++ {
			// Only allow calls to strictly higher-numbered functions: keeps
			// the call graph acyclic so generated programs always halt.
			if i+1 < cfg.NumFuncs && r.Bernoulli(cfg.CallProb) {
				callee := i + 1 + r.Intn(cfg.NumFuncs-i-1)
				plans[i].callees = append(plans[i].callees, callee)
			} else {
				plans[i].callees = append(plans[i].callees, -1)
			}
		}
	}

	// Phase schedule: a sliding window over the function list with 50%
	// overlap between consecutive phases, mimicking working-set drift.
	phaseMembers := make([][]int, cfg.Phases)
	for p := range phaseMembers {
		start := 0
		if cfg.NumFuncs > cfg.PhaseFuncs {
			span := cfg.NumFuncs - cfg.PhaseFuncs
			start = (p * span * 2 / max(1, cfg.Phases)) % (span + 1)
		}
		members := make([]int, cfg.PhaseFuncs)
		for i := range members {
			members[i] = start + i
		}
		phaseMembers[p] = members
	}

	// main body: phase loops.
	for p, members := range phaseMembers {
		b.Const(regPhase, uint32(cfg.PhaseIters))
		loop := fmt.Sprintf("phase%d", p)
		b.Label(loop)
		for _, f := range members {
			if r.Bernoulli(cfg.IndirectPct) {
				// Indirect call through the function-pointer table.
				b.Lw(isa.Reg(1), regData, FuncTableOff+int32(f*4))
				b.JumpReg(isa.OpJalr, isa.Reg(1))
			} else {
				b.Jump(isa.OpJal, funcLabel(f))
			}
		}
		b.Addi(regPhase, regPhase, -1)
		b.Branch(isa.OpBne, regPhase, isa.RZero, loop)
	}
	b.Halt()

	// Generate the functions.
	for i := 0; i < cfg.NumFuncs; i++ {
		emitFunc(b, r, cfg, i, plans[i].blocks, plans[i].callees)
	}

	// Table init stub: store each function's address into the pointer table
	// at DataBase + 4*i, then return to main.
	b.Label("inittable")
	b.beginFunc("inittable")
	for i := 0; i < cfg.NumFuncs; i++ {
		// Function addresses are known only at Build time; record a fixup
		// by emitting Const against the label position. We cheat slightly:
		// emit a placeholder Const and patch below via addrFixups.
		b.constOfLabel(isa.Reg(1), funcLabel(i))
		b.Sw(isa.Reg(1), regData, FuncTableOff+int32(i*4))
	}
	b.Ret()

	prog, err := b.Build("main")
	if err != nil {
		return nil, fmt.Errorf("program: generation produced invalid code: %w", err)
	}
	return prog, nil
}

func funcLabel(i int) string { return fmt.Sprintf("f%d", i) }

func emitMainProlog(b *Builder) {
	b.Const(isa.RSP, StackTop)
	b.Const(regData, DataBase)
	b.Const(regLCG, 12345)
	b.Const(regLCGMul, 75)
	b.Const(regMask, 64)
}

// emitFunc generates one function: entry, body blocks with optional loops,
// calls and conditional skips, and a return epilogue.
func emitFunc(b *Builder, r *stats.Rand, cfg GenConfig, idx, blocks int, callees []int) {
	name := funcLabel(idx)
	b.Label(name)
	fi := b.beginFunc(name)
	fi.Blocks = blocks

	makesCalls := false
	for _, c := range callees {
		if c >= 0 {
			makesCalls = true
			break
		}
	}
	// Prologue: push the link register if this function calls out.
	if makesCalls {
		b.Addi(isa.RSP, isa.RSP, -4)
		b.Sw(isa.RLink, isa.RSP, 0)
	}
	// Callees may clobber the data-base register; reload defensively.
	b.Const(regData, DataBase)

	epilogue := name + "_ret"
	for blk := 0; blk < blocks; blk++ {
		b.Label(blockLabel(idx, blk))
		emitWork(b, r, 2+r.Intn(6))

		if r.Bernoulli(cfg.LoopProb) {
			trips := 1 + r.Intn(cfg.MaxLoopTrip)
			loop := fmt.Sprintf("%s_l%d", blockLabel(idx, blk), blk)
			b.Addi(regLoop, isa.RZero, int32(trips))
			b.Label(loop)
			emitWork(b, r, 1+r.Intn(4))
			b.Addi(regLoop, regLoop, -1)
			b.Branch(isa.OpBne, regLoop, isa.RZero, loop)
		}

		if callees[blk] >= 0 {
			b.Jump(isa.OpJal, funcLabel(callees[blk]))
			b.Const(regData, DataBase) // callee may have clobbered scratch
		}

		// Conditional skip over the next block, driven by the LCG.
		if blk+1 < blocks && r.Bernoulli(cfg.BranchProb) {
			stepLCG(b)
			b.ALU(isa.OpAnd, isa.Reg(1), regLCG, regMask)
			target := blockLabel(idx, blk+2)
			if blk+2 >= blocks {
				target = epilogue
			}
			b.Branch(isa.OpBne, isa.Reg(1), isa.RZero, target)
		}
	}

	b.Label(epilogue)
	if makesCalls {
		b.Lw(isa.RLink, isa.RSP, 0)
		b.Addi(isa.RSP, isa.RSP, 4)
	}
	b.Ret()
}

func blockLabel(f, b int) string { return fmt.Sprintf("f%d_b%d", f, b) }

// stepLCG advances the branch-direction pseudo-random state:
// r10 = r10*75 + 74 (a Lehmer-style generator good enough for bit tests).
func stepLCG(b *Builder) {
	b.ALU(isa.OpMul, regLCG, regLCG, regLCGMul)
	b.Addi(regLCG, regLCG, 74)
}

// emitWork emits n filler ALU/memory instructions over the scratch
// registers. Memory traffic stays inside the data region.
func emitWork(b *Builder, r *stats.Rand, n int) {
	aluOps := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpMul, isa.OpSlt}
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0: // load
			b.Lw(scratch(r), regData, int32(4*(1+r.Intn(1000))))
		case 1: // store
			b.Sw(scratch(r), regData, int32(4*(1+r.Intn(1000))))
		case 2: // immediate
			b.Addi(scratch(r), scratch(r), int32(r.Intn(256))-128)
		default: // three-register ALU
			op := aluOps[r.Intn(len(aluOps))]
			b.ALU(op, scratch(r), scratch(r), scratch(r))
		}
	}
}

// scratch picks one of r1-r7 (r8 is the data base pointer).
func scratch(r *stats.Rand) isa.Reg { return isa.Reg(1 + r.Intn(7)) }

// constOfLabel emits a lui/addi pair that materializes the byte address of
// label into rd, resolved at Build time.
func (b *Builder) constOfLabel(rd isa.Reg, label string) {
	luiIdx := b.Emit(isa.Inst{Op: isa.OpLui, Rd: rd})
	addiIdx := b.Emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rd})
	b.addrFixups = append(b.addrFixups, addrFixup{lui: luiIdx, addi: addiIdx, label: label})
}
