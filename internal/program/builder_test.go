package program

import (
	"strings"
	"testing"

	"dynocache/internal/isa"
)

func TestBuilderSimpleLoop(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Addi(1, isa.RZero, 3)
	b.Label("loop")
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.RZero, "loop")
	b.Halt()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0 {
		t.Fatalf("Entry = %d, want 0", p.Entry)
	}
	if p.Insts[2].Imm != -2 {
		t.Fatalf("branch offset = %d, want -2", p.Insts[2].Imm)
	}
	if p.Size() != 16 {
		t.Fatalf("Size = %d, want 16", p.Size())
	}
}

func TestBuilderForwardJump(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Jump(isa.OpJmp, "end")
	b.Addi(1, isa.RZero, 1) // skipped
	b.Label("end")
	b.Halt()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 1 {
		t.Fatalf("jump offset = %d, want 1", p.Insts[0].Imm)
	}
}

func TestBuilderConstSmallAndLarge(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Const(1, 100)        // single addi
	b.Const(2, 0x12345678) // lui+addi
	b.Const(3, 0x00018000) // low half has the sign bit set: needs hi adjustment
	b.Const(4, 0x00010000) // low half zero: lui only
	b.Halt()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.OpAddi || p.Insts[0].Imm != 100 {
		t.Fatalf("small const not a single addi: %+v", p.Insts[0])
	}
	// Verify materialized values by symbolic evaluation.
	vals := map[isa.Reg]uint32{}
	for _, in := range p.Insts {
		switch in.Op {
		case isa.OpLui:
			vals[in.Rd] = uint32(in.Imm) << 16
		case isa.OpAddi:
			vals[in.Rd] = vals[in.Rs1] + uint32(in.Imm)
		}
	}
	want := map[isa.Reg]uint32{1: 100, 2: 0x12345678, 3: 0x18000, 4: 0x10000}
	for r, w := range want {
		if vals[r] != w {
			t.Errorf("Const into r%d = %#x, want %#x", r, vals[r], w)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Jump(isa.OpJmp, "nowhere")
	if _, err := b.Build("main"); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("undefined label should fail, got %v", err)
	}

	b2 := NewBuilder()
	b2.Halt()
	if _, err := b2.Build("missing"); err == nil {
		t.Error("undefined entry should fail")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.Label("x"); b.Label("x") },
		func(b *Builder) { b.Branch(isa.OpAdd, 1, 2, "l") },
		func(b *Builder) { b.Jump(isa.OpBeq, "l") },
		func(b *Builder) { b.JumpReg(isa.OpJmp, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f(NewBuilder())
		}()
	}
}

func TestBuilderBranchRangeCheck(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Label("target")
	b.Branch(isa.OpBeq, 0, 0, "target")
	// Pad far beyond imm16 range, then branch back.
	for i := 0; i < (1<<15)+10; i++ {
		b.Emit(isa.Inst{Op: isa.OpNop})
	}
	b.Branch(isa.OpBeq, 0, 0, "target")
	b.Halt()
	if _, err := b.Build("main"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected out-of-range error, got %v", err)
	}
}

func TestProgramCode(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Halt()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 4 {
		t.Fatalf("code length = %d, want 4", len(code))
	}
}
