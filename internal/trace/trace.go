// Package trace defines the code-cache event traces that drive the
// simulator.
//
// The paper used the verbose output of DynamoRIO — actual region sizes,
// inter-region links, and the order in which regions were entered — and
// saved those logs so experiments were repeatable. A Trace is our
// equivalent artifact: a table of superblock definitions (size and
// outbound links) plus the sequence of superblock entries observed during
// execution. Traces come from two frontends (the full DBT, and the
// calibrated workload synthesizer) and are replayed identically by
// package sim.
package trace

import (
	"fmt"
	"sort"

	"dynocache/internal/core"
	"dynocache/internal/stats"
)

// Trace is a complete, replayable code-cache workload.
type Trace struct {
	// Name identifies the benchmark (Table 1 naming).
	Name string
	// Blocks defines every superblock that appears in Accesses.
	Blocks map[core.SuperblockID]core.Superblock
	// Accesses is the superblock entry sequence: each element is one
	// transfer of control to a superblock's entry (a code cache lookup).
	Accesses []core.SuperblockID
}

// New returns an empty trace with the given name.
func New(name string) *Trace {
	return &Trace{Name: name, Blocks: make(map[core.SuperblockID]core.Superblock)}
}

// Define registers a superblock definition. Redefining an ID with a
// different size is an error; redefining with identical data is idempotent
// (frontends may emit definitions lazily).
func (t *Trace) Define(sb core.Superblock) error {
	if prev, ok := t.Blocks[sb.ID]; ok {
		if prev.Size != sb.Size {
			return fmt.Errorf("trace: superblock %d redefined with size %d (was %d)", sb.ID, sb.Size, prev.Size)
		}
		return nil
	}
	if sb.Size <= 0 {
		return fmt.Errorf("trace: superblock %d has non-positive size %d", sb.ID, sb.Size)
	}
	t.Blocks[sb.ID] = sb
	return nil
}

// Touch appends one access to the sequence. The block must be defined.
func (t *Trace) Touch(id core.SuperblockID) error {
	if _, ok := t.Blocks[id]; !ok {
		return fmt.Errorf("trace: access to undefined superblock %d", id)
	}
	t.Accesses = append(t.Accesses, id)
	return nil
}

// Validate checks referential integrity: every access and every link
// target must be defined.
func (t *Trace) Validate() error {
	for i, id := range t.Accesses {
		if _, ok := t.Blocks[id]; !ok {
			return fmt.Errorf("trace: access %d references undefined superblock %d", i, id)
		}
	}
	return t.ValidateBlocks()
}

// ValidateBlocks checks the block table alone: keys match embedded IDs
// and every link target is defined. The streaming decoder runs this at
// open time, before any access has been decoded.
func (t *Trace) ValidateBlocks() error {
	for id, sb := range t.Blocks {
		if sb.ID != id {
			return fmt.Errorf("trace: block table key %d holds superblock %d", id, sb.ID)
		}
		for _, to := range sb.Links {
			if _, ok := t.Blocks[to]; !ok {
				return fmt.Errorf("trace: superblock %d links to undefined %d", id, to)
			}
		}
	}
	return nil
}

// NumBlocks returns the number of defined superblocks — the "hot
// superblocks" column of Table 1.
func (t *Trace) NumBlocks() int { return len(t.Blocks) }

// TotalBytes returns the summed size of all defined superblocks. This is
// maxCache: the size an unbounded code cache would reach for this
// workload (§4.2).
func (t *Trace) TotalBytes() int {
	total := 0
	for _, sb := range t.Blocks {
		total += sb.Size
	}
	return total
}

// Sizes returns every block size as float64s (for distribution plots).
func (t *Trace) Sizes() []float64 {
	out := make([]float64, 0, len(t.Blocks))
	for _, sb := range t.Blocks {
		out = append(out, float64(sb.Size))
	}
	return out
}

// MedianSize returns the median superblock size (Figure 4).
func (t *Trace) MedianSize() float64 { return stats.Median(t.Sizes()) }

// MeanOutboundLinks returns the mean number of outbound links per
// superblock (Figure 12; the paper reports ~1.7).
func (t *Trace) MeanOutboundLinks() float64 {
	if len(t.Blocks) == 0 {
		return 0
	}
	total := 0
	for _, sb := range t.Blocks {
		total += len(sb.Links)
	}
	return float64(total) / float64(len(t.Blocks))
}

// SelfLinkFraction returns the fraction of blocks with a self-loop link.
func (t *Trace) SelfLinkFraction() float64 {
	if len(t.Blocks) == 0 {
		return 0
	}
	n := 0
	for _, sb := range t.Blocks {
		for _, to := range sb.Links {
			if to == sb.ID {
				n++
				break
			}
		}
	}
	return float64(n) / float64(len(t.Blocks))
}

// SortedIDs returns all defined IDs in ascending order (deterministic
// iteration for serialization and reporting).
func (t *Trace) SortedIDs() []core.SuperblockID {
	ids := make([]core.SuperblockID, 0, len(t.Blocks))
	for id := range t.Blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Summary is a compact description used in reports.
type Summary struct {
	Name       string
	Blocks     int
	Accesses   int
	TotalBytes int
	MedianSize float64
	MeanLinks  float64
}

// Summarize computes the trace's summary.
func (t *Trace) Summarize() Summary {
	return Summary{
		Name:       t.Name,
		Blocks:     t.NumBlocks(),
		Accesses:   len(t.Accesses),
		TotalBytes: t.TotalBytes(),
		MedianSize: t.MedianSize(),
		MeanLinks:  t.MeanOutboundLinks(),
	}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %d superblocks, %d accesses, %d bytes (median %.0f B, %.2f links/block)",
		s.Name, s.Blocks, s.Accesses, s.TotalBytes, s.MedianSize, s.MeanLinks)
}

// ReuseDistances returns, for every access after the first to each block,
// the number of *distinct* superblocks touched since that block's previous
// access — the classic reuse-distance (LRU stack distance) profile. The
// distribution determines how a workload responds to cache sizing and is
// the quantity our synthesizer's locality model shapes.
func (t *Trace) ReuseDistances() []int {
	lastSeen := make(map[core.SuperblockID]int, len(t.Blocks))
	var out []int
	// For each access, count distinct IDs in the window since the previous
	// occurrence using a per-position set scan bounded by the window; to
	// stay near-linear we recompute with a timestamp + ordered list.
	type stamp struct {
		id core.SuperblockID
		at int
	}
	var order []stamp
	for i, id := range t.Accesses {
		if prev, ok := lastSeen[id]; ok {
			distinct := make(map[core.SuperblockID]struct{})
			for j := len(order) - 1; j >= 0 && order[j].at > prev; j-- {
				if order[j].id != id {
					distinct[order[j].id] = struct{}{}
				}
			}
			out = append(out, len(distinct))
		}
		lastSeen[id] = i
		order = append(order, stamp{id: id, at: i})
	}
	return out
}
