package trace

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dynocache/internal/core"
)

func buildTrace(t testing.TB) *Trace {
	t.Helper()
	tr := New("gzip")
	blocks := []core.Superblock{
		{ID: 1, SrcPC: 0x400120, Size: 100, Links: []core.SuperblockID{2, 1}},
		{ID: 2, SrcPC: 0x400858, Size: 250, Links: []core.SuperblockID{3}},
		{ID: 3, SrcPC: 0xfeed0042deadbeef, Size: 400},
	}
	for _, b := range blocks {
		if err := tr.Define(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []core.SuperblockID{1, 2, 3, 1, 1, 2} {
		if err := tr.Touch(id); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestDefineAndTouch(t *testing.T) {
	tr := buildTrace(t)
	if tr.NumBlocks() != 3 || len(tr.Accesses) != 6 {
		t.Fatalf("blocks=%d accesses=%d", tr.NumBlocks(), len(tr.Accesses))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefineErrors(t *testing.T) {
	tr := New("x")
	if err := tr.Define(core.Superblock{ID: 1, Size: 0}); err == nil {
		t.Error("zero size should fail")
	}
	if err := tr.Define(core.Superblock{ID: 1, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Define(core.Superblock{ID: 1, Size: 10}); err != nil {
		t.Error("idempotent redefinition should succeed")
	}
	if err := tr.Define(core.Superblock{ID: 1, Size: 20}); err == nil {
		t.Error("conflicting redefinition should fail")
	}
	if err := tr.Touch(99); err == nil {
		t.Error("touching undefined block should fail")
	}
}

func TestValidateCatchesBadLinks(t *testing.T) {
	tr := New("x")
	if err := tr.Define(core.Superblock{ID: 1, Size: 10, Links: []core.SuperblockID{7}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err == nil {
		t.Error("link to undefined block should fail validation")
	}
}

func TestDerivedStatistics(t *testing.T) {
	tr := buildTrace(t)
	if got := tr.TotalBytes(); got != 750 {
		t.Fatalf("TotalBytes = %d, want 750", got)
	}
	if got := tr.MedianSize(); got != 250 {
		t.Fatalf("MedianSize = %g, want 250", got)
	}
	if got := tr.MeanOutboundLinks(); got != 1.0 {
		t.Fatalf("MeanOutboundLinks = %g, want 1", got)
	}
	if got := tr.SelfLinkFraction(); got < 0.33 || got > 0.34 {
		t.Fatalf("SelfLinkFraction = %g, want 1/3", got)
	}
	sum := tr.Summarize()
	if sum.Blocks != 3 || sum.Accesses != 6 || !strings.Contains(sum.String(), "gzip") {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestEmptyTraceStats(t *testing.T) {
	tr := New("empty")
	if tr.MeanOutboundLinks() != 0 || tr.SelfLinkFraction() != 0 || tr.TotalBytes() != 0 {
		t.Error("empty trace stats should be zero")
	}
}

func TestSortedIDs(t *testing.T) {
	tr := New("x")
	for _, id := range []core.SuperblockID{5, 1, 3} {
		if err := tr.Define(core.Superblock{ID: id, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ids := tr.SortedIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("SortedIDs = %v", ids)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Write→Read must be identity on the whole struct — SrcPC included
	// (v1 of the format silently dropped it).
	if !reflect.DeepEqual(back, tr) {
		t.Fatalf("round trip is not identity:\ngot  %+v\nwant %+v", back, tr)
	}
}

// writeV1 encodes tr in the legacy v1 format (no per-block SrcPC), as
// produced by pre-v2 builds.
func writeV1(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magic)
	le := binary.LittleEndian
	w := func(v any) {
		if err := binary.Write(&buf, le, v); err != nil {
			t.Fatal(err)
		}
	}
	w(uint16(1))
	w(uint16(len(tr.Name)))
	buf.WriteString(tr.Name)
	w(uint32(len(tr.Blocks)))
	for _, id := range tr.SortedIDs() {
		sb := tr.Blocks[id]
		w(uint32(sb.ID))
		w(uint32(sb.Size))
		w(uint16(len(sb.Links)))
		for _, to := range sb.Links {
			w(uint32(to))
		}
	}
	w(uint64(len(tr.Accesses)))
	for _, id := range tr.Accesses {
		w(uint32(id))
	}
	return buf.Bytes()
}

func TestReadV1Compat(t *testing.T) {
	tr := buildTrace(t)
	back, err := Read(bytes.NewReader(writeV1(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	// v1 carries no SrcPC: decoded blocks get zero, everything else is
	// preserved exactly.
	want := New(tr.Name)
	for _, id := range tr.SortedIDs() {
		sb := tr.Blocks[id]
		sb.SrcPC = 0
		if err := want.Define(sb); err != nil {
			t.Fatal(err)
		}
	}
	want.Accesses = append(want.Accesses, tr.Accesses...)
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("v1 decode mismatch:\ngot  %+v\nwant %+v", back, want)
	}
	// Re-encoding upgrades to v2: the second roundtrip is identity.
	var buf bytes.Buffer
	if err := back.Write(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, back) {
		t.Fatal("v2 re-encode of a v1 trace is not identity")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("JUNK"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Read(bytes.NewReader([]byte("DY"))); err == nil {
		t.Error("truncated magic should fail")
	}
	// Valid magic, bad version.
	buf := append([]byte(magic), 9, 0)
	if _, err := Read(bytes.NewReader(buf)); err == nil {
		t.Error("bad version should fail")
	}
	// Truncated after header.
	var full bytes.Buffer
	tr := buildTrace(t)
	if err := tr.Write(&full); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{6, 10, 20, full.Len() - 3} {
		if _, err := Read(bytes.NewReader(full.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	tr := buildTrace(t)
	path := filepath.Join(t.TempDir(), "gzip.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr) {
		t.Fatalf("Save→Load is not identity:\ngot  %+v\nwant %+v", back, tr)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestDump(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.Dump(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "block 1 size 100") {
		t.Fatalf("dump missing block line:\n%s", out)
	}
	if !strings.Contains(out, "3 more accesses") {
		t.Fatalf("dump missing truncation note:\n%s", out)
	}
	buf.Reset()
	if err := tr.Dump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "access "); got != 6 {
		t.Fatalf("full dump has %d access lines, want 6", got)
	}
}

func TestReuseDistances(t *testing.T) {
	tr := New("x")
	for _, id := range []core.SuperblockID{1, 2, 3} {
		if err := tr.Define(core.Superblock{ID: id, Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	// Sequence: 1 2 3 1 1 2 -> distances: 1:{2,3}=2, 1:{}=0, 2:{1,3}...
	for _, id := range []core.SuperblockID{1, 2, 3, 1, 1, 2} {
		if err := tr.Touch(id); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.ReuseDistances()
	want := []int{2, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("distances = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distances = %v, want %v", got, want)
		}
	}
	empty := New("e")
	if len(empty.ReuseDistances()) != 0 {
		t.Error("empty trace should have no distances")
	}
}
