package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynocache/internal/core"
)

// drainStream decodes every access through chunks of the given size.
func drainStream(t *testing.T, st *Stream, chunk int) []core.SuperblockID {
	t.Helper()
	var out []core.SuperblockID
	dst := make([]core.SuperblockID, chunk)
	for {
		n, err := st.Next(dst)
		out = append(out, dst[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamMatchesRead(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	want, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 2, 3, 64, len(tr.Accesses), len(tr.Accesses) + 7} {
		st, err := NewStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if st.Name != want.Name {
			t.Fatalf("chunk %d: Name = %q, want %q", chunk, st.Name, want.Name)
		}
		if !reflect.DeepEqual(st.Blocks, want.Blocks) {
			t.Fatalf("chunk %d: block tables differ", chunk)
		}
		if got := st.NumAccesses(); got != uint64(len(want.Accesses)) {
			t.Fatalf("chunk %d: NumAccesses = %d, want %d", chunk, got, len(want.Accesses))
		}
		if got := drainStream(t, st, chunk); !reflect.DeepEqual(got, want.Accesses) {
			t.Fatalf("chunk %d: accesses = %v, want %v", chunk, got, want.Accesses)
		}
		if st.Remaining() != 0 {
			t.Fatalf("chunk %d: Remaining = %d after drain", chunk, st.Remaining())
		}
	}
}

func TestStreamV1Compat(t *testing.T) {
	tr := buildTrace(t)
	raw := writeV1(t, tr)
	want, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Blocks, want.Blocks) {
		t.Fatal("v1 block tables differ between Stream and Read")
	}
	if got := drainStream(t, st, 4); !reflect.DeepEqual(got, want.Accesses) {
		t.Fatalf("v1 accesses = %v, want %v", got, want.Accesses)
	}
}

func TestStreamNextAfterEOF(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	drainStream(t, st, 16)
	for i := 0; i < 2; i++ {
		n, err := st.Next(make([]core.SuperblockID, 4))
		if n != 0 || err != io.EOF {
			t.Fatalf("Next after EOF = (%d, %v), want (0, io.EOF)", n, err)
		}
	}
}

func TestStreamEmptyDst(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st.Next(nil); n != 0 || err != nil {
		t.Fatalf("Next(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if got := drainStream(t, st, 3); len(got) != len(tr.Accesses) {
		t.Fatalf("drained %d accesses after Next(nil), want %d", len(got), len(tr.Accesses))
	}
}

func TestStreamTruncated(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the access section: the header decodes, the
	// tail errors with the index of the first undecodable access.
	raw := buf.Bytes()[:buf.Len()-6]
	st, err := NewStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]core.SuperblockID, len(tr.Accesses))
	_, err = st.Next(dst)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated access section: err = %v, want decode error", err)
	}
}

func TestStreamHeaderErrors(t *testing.T) {
	if _, err := NewStream(bytes.NewReader([]byte("JUNKJUNK"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Dangling link target: block validation runs eagerly.
	tr := New("bad")
	if err := tr.Define(core.Superblock{ID: 1, Size: 10}); err != nil {
		t.Fatal(err)
	}
	tr.Blocks[1] = core.Superblock{ID: 1, Size: 10, Links: []core.SuperblockID{99}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStream(&buf); err == nil {
		t.Error("dangling link target should fail eager validation")
	}
}

func TestOpenStream(t *testing.T) {
	tr := buildTrace(t)
	path := filepath.Join(t.TempDir(), "t.trace")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, st, 4); !reflect.DeepEqual(got, tr.Accesses) {
		t.Fatalf("accesses = %v, want %v", got, tr.Accesses)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if _, err := OpenStream(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestAccessBufPool(t *testing.T) {
	buf := GetAccessBuf()
	if len(buf) != AccessChunk {
		t.Fatalf("GetAccessBuf len = %d, want %d", len(buf), AccessChunk)
	}
	PutAccessBuf(buf)
	// Undersized buffers are dropped, not pooled.
	PutAccessBuf(make([]core.SuperblockID, 8))
	if got := GetAccessBuf(); len(got) != AccessChunk {
		t.Fatalf("pool returned %d-element buffer, want %d", len(got), AccessChunk)
	}
}

// FuzzStream cross-checks the streaming decoder against Read on
// arbitrary input: both must agree on accept/reject, and on accepted
// input the decoded trace must be identical.
func FuzzStream(f *testing.F) {
	tr := buildTrace(f)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-3])
	f.Add([]byte("DYTRACE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := Read(bytes.NewReader(data))
		st, err := NewStream(bytes.NewReader(data))
		if err != nil {
			if wantErr == nil {
				t.Fatalf("Stream rejected input Read accepted: %v", err)
			}
			return
		}
		var accesses []core.SuperblockID
		dst := make([]core.SuperblockID, 64)
		for {
			n, nerr := st.Next(dst)
			accesses = append(accesses, dst[:n]...)
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				// Read validates access IDs against the block table;
				// Stream defers that to the consumer. Streaming may
				// therefore fail later (truncation) or not at all.
				return
			}
		}
		if wantErr != nil {
			// Read's extra validation (undefined access IDs) can reject
			// input the streaming decoder structurally accepts.
			return
		}
		if !reflect.DeepEqual(st.Blocks, want.Blocks) {
			t.Fatal("block tables diverge")
		}
		if len(accesses) != len(want.Accesses) {
			t.Fatalf("decoded %d accesses, Read got %d", len(accesses), len(want.Accesses))
		}
		for i := range accesses {
			if accesses[i] != want.Accesses[i] {
				t.Fatalf("access %d: %d != %d", i, accesses[i], want.Accesses[i])
			}
		}
	})
}
