package trace

import (
	"bytes"
	"reflect"
	"testing"

	"dynocache/internal/core"
)

// FuzzRead checks the trace decoder never panics or accepts corrupt data
// that then fails validation.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and some mutations.
	tr := New("seed")
	_ = tr.Define(core.Superblock{ID: 1, SrcPC: 0x40abcd, Size: 100, Links: []core.SuperblockID{1}})
	_ = tr.Define(core.Superblock{ID: 2, Size: 50})
	_ = tr.Touch(1)
	_ = tr.Touch(2)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("DYNT"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xFF
	}
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the reader accepts must be internally consistent and
		// round-trip byte-identically.
		if err := got.Validate(); err != nil {
			t.Fatalf("reader accepted invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted trace does not re-serialize: %v", err)
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized trace does not parse: %v", err)
		}
		if !reflect.DeepEqual(back, got) {
			t.Fatalf("round trip changed the trace:\ngot  %+v\nback %+v", got, back)
		}
	})
}
