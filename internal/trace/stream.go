package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"dynocache/internal/core"
)

// Stream is an incremental decoder for the binary trace format: the
// header and block table are decoded eagerly (capacity sizing and link
// validation need the whole table), while the access sequence — the bulk
// of a trace file — is decoded in caller-sized chunks on demand. A
// replayer can therefore drive millions of accesses through the
// simulator while holding only one chunk of them in memory, instead of
// materializing the full access slice the way Read does.
//
// A Stream is single-use and not safe for concurrent use; concurrent
// replays (e.g. sweep workers) each open their own Stream and share the
// chunk-buffer pool (GetAccessBuf/PutAccessBuf).
type Stream struct {
	// Name is the benchmark name from the trace header.
	Name string
	// Blocks is the fully decoded superblock table (validated: no
	// dangling link targets). Callers must not mutate it while streaming.
	Blocks map[core.SuperblockID]core.Superblock

	nAccesses uint64 // declared access count
	read      uint64 // accesses decoded so far
	br        *bufio.Reader
	closer    io.Closer // non-nil when the stream owns the underlying file
	scratch   []byte    // reused byte buffer for batched u32 decoding

	// arenas are the pooled link-arena chunks backing Blocks' link rows,
	// recycled by ReleaseBlocks together with the block map itself.
	arenas []*[]core.SuperblockID
}

// NewStream decodes the header and block table from r and returns a
// stream positioned at the first access. Unlike Read, access IDs are not
// validated against the block table — consumers that replay (package
// sim) reject undefined IDs per access; consumers that need full
// validation should use Read.
func NewStream(r io.Reader) (*Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	t, arenas, err := decodeHeader(br)
	if err != nil {
		return nil, err
	}
	if err := t.ValidateBlocks(); err != nil {
		return nil, err
	}
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, err
	}
	nAccesses := binary.LittleEndian.Uint64(count[:])
	return &Stream{
		Name:      t.Name,
		Blocks:    t.Blocks,
		nAccesses: nAccesses,
		br:        br,
		arenas:    arenas,
	}, nil
}

// OpenStream opens a trace file for streaming. The returned stream owns
// the file; call Close when done.
func OpenStream(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	st, err := NewStream(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	st.closer = f
	return st, nil
}

// NumAccesses returns the access count declared in the trace header.
func (s *Stream) NumAccesses() uint64 { return s.nAccesses }

// Remaining returns how many accesses have not been decoded yet.
func (s *Stream) Remaining() uint64 { return s.nAccesses - s.read }

// Next decodes up to len(dst) accesses into dst and returns how many
// were filled. It returns (0, io.EOF) once every declared access has
// been decoded. A short or corrupt file surfaces as a decoding error
// carrying the index of the first undecodable access.
func (s *Stream) Next(dst []core.SuperblockID) (int, error) {
	if s.read == s.nAccesses {
		return 0, io.EOF
	}
	n := uint64(len(dst))
	if rem := s.nAccesses - s.read; n > rem {
		n = rem
	}
	if n == 0 {
		return 0, nil
	}
	if s.scratch == nil {
		s.scratch = make([]byte, 16*1024)
	}
	filled := uint64(0)
	for filled < n {
		k := n - filled
		if max := uint64(len(s.scratch) / 4); k > max {
			k = max
		}
		buf := s.scratch[:4*k]
		if _, err := io.ReadFull(s.br, buf); err != nil {
			return int(filled), fmt.Errorf("trace: access %d: %w", s.read+filled, err)
		}
		for i := uint64(0); i < k; i++ {
			dst[filled+i] = core.SuperblockID(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		filled += k
		s.read += k
	}
	return int(filled), nil
}

// ReleaseBlocks recycles the decoded block table — the superblock map
// and the pooled arena chunks backing its link rows — once the caller
// has copied everything it needs into its own structures (e.g. the
// replay kernel's dense tables). After the call, Blocks is nil and any
// previously obtained Superblock.Links slices are invalid: the chunks
// will back a future decode. Callers that keep the table (Read) simply
// never release. Close does not imply release, because Read transfers
// ownership of Blocks to the materialized trace after the stream is
// exhausted.
func (s *Stream) ReleaseBlocks() {
	if s.Blocks != nil {
		clear(s.Blocks)
		blockMapPool.Put(s.Blocks)
		s.Blocks = nil
	}
	for _, a := range s.arenas {
		linkArenaPool.Put(a)
	}
	s.arenas = nil
}

// Close releases the underlying file when the stream was opened with
// OpenStream; it is a no-op for reader-backed streams.
func (s *Stream) Close() error {
	if s.closer == nil {
		return nil
	}
	err := s.closer.Close()
	s.closer = nil
	return err
}

// AccessChunk is the length of pooled access buffers: large enough that
// per-chunk overhead vanishes against replay work, small enough that a
// full sweep's worth of concurrent streams stays in cache-friendly
// territory (64Ki IDs = 256 KiB per worker).
const AccessChunk = 1 << 16

// accessBufPool shares chunk buffers across concurrent streaming
// replays — sweep workers return their buffer when a run finishes, so a
// sweep allocates at most one chunk per live worker, not per run.
var accessBufPool = sync.Pool{
	New: func() any {
		buf := make([]core.SuperblockID, AccessChunk)
		return &buf
	},
}

// GetAccessBuf returns a pooled access buffer of length AccessChunk.
func GetAccessBuf() []core.SuperblockID {
	return *accessBufPool.Get().(*[]core.SuperblockID)
}

// PutAccessBuf returns a buffer obtained from GetAccessBuf to the pool.
func PutAccessBuf(buf []core.SuperblockID) {
	if cap(buf) < AccessChunk {
		return
	}
	buf = buf[:AccessChunk]
	accessBufPool.Put(&buf)
}
