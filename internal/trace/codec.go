package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"dynocache/internal/core"
)

// Binary trace format (all integers little-endian):
//
//	magic   [4]byte  "DYNT"
//	version uint16   (currently 2)
//	nameLen uint16, name []byte
//	nBlocks uint32
//	  per block: id uint32, srcPC uint64 (v2+), size uint32,
//	             nLinks uint16, links []uint32
//	nAccesses uint64
//	  accesses []uint32
//
// Version 1 omitted the per-block srcPC field, so a Save→Load roundtrip
// silently dropped Superblock.SrcPC. Write always emits v2; Read accepts
// both, decoding v1 blocks with SrcPC zero.
const (
	magic   = "DYNT"
	version = 2
)

// Write serializes the trace to w in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if len(t.Name) > 1<<16-1 {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Blocks))); err != nil {
		return err
	}
	for _, id := range t.SortedIDs() {
		sb := t.Blocks[id]
		if len(sb.Links) > 1<<16-1 {
			return fmt.Errorf("trace: superblock %d has too many links (%d)", id, len(sb.Links))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(sb.ID)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, sb.SrcPC); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(sb.Size)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(sb.Links))); err != nil {
			return err
		}
		for _, to := range sb.Links {
			if err := binary.Write(bw, binary.LittleEndian, uint32(to)); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Accesses))); err != nil {
		return err
	}
	for _, id := range t.Accesses {
		if err := binary.Write(bw, binary.LittleEndian, uint32(id)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decodeHeader reads the magic, version, name, and block table, leaving
// br positioned at the access count. Shared by Read and NewStream.
func decodeHeader(br *bufio.Reader) (*Trace, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != 1 && ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	t := New(string(nameBuf))
	var nBlocks uint32
	if err := binary.Read(br, binary.LittleEndian, &nBlocks); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nBlocks; i++ {
		var id, size uint32
		var srcPC uint64
		var nLinks uint16
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("trace: block %d: %w", i, err)
		}
		if ver >= 2 {
			if err := binary.Read(br, binary.LittleEndian, &srcPC); err != nil {
				return nil, fmt.Errorf("trace: block %d srcPC: %w", i, err)
			}
		}
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &nLinks); err != nil {
			return nil, err
		}
		// nil for a link-free block, so a decoded trace is DeepEqual to the
		// one that was encoded (frontends leave Links nil when empty).
		var links []core.SuperblockID
		if nLinks > 0 {
			links = make([]core.SuperblockID, nLinks)
		}
		for j := range links {
			var to uint32
			if err := binary.Read(br, binary.LittleEndian, &to); err != nil {
				return nil, err
			}
			links[j] = core.SuperblockID(to)
		}
		if err := t.Define(core.Superblock{ID: core.SuperblockID(id), SrcPC: srcPC, Size: int(size), Links: links}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Read deserializes a trace from r, materializing the full access
// sequence. It is built on the streaming decoder; callers that replay
// without needing the whole slice in memory should use NewStream.
func Read(r io.Reader) (*Trace, error) {
	st, err := NewStream(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: st.Name, Blocks: st.Blocks}
	// Never trust a length field with an allocation: a corrupt header
	// could claim 2^60 accesses. Preallocate a bounded amount and let
	// append grow if the data really is that large.
	prealloc := st.NumAccesses()
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	if prealloc > 0 {
		t.Accesses = make([]core.SuperblockID, 0, prealloc)
	}
	buf := GetAccessBuf()
	defer PutAccessBuf(buf)
	for {
		n, err := st.Next(buf)
		if n > 0 {
			t.Accesses = append(t.Accesses, buf[:n]...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Dump writes a human-readable rendering of the trace to w: the block
// table followed by the access sequence (capped at maxAccesses lines;
// 0 means all).
func (t *Trace) Dump(w io.Writer, maxAccesses int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s\n# %s\n", t.Name, t.Summarize())
	for _, id := range t.SortedIDs() {
		sb := t.Blocks[id]
		fmt.Fprintf(bw, "block %d size %d links %v\n", sb.ID, sb.Size, sb.Links)
	}
	n := len(t.Accesses)
	if maxAccesses > 0 && maxAccesses < n {
		n = maxAccesses
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "access %d\n", t.Accesses[i])
	}
	if n < len(t.Accesses) {
		fmt.Fprintf(bw, "# ... %d more accesses\n", len(t.Accesses)-n)
	}
	return bw.Flush()
}
