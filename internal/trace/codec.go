package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"dynocache/internal/core"
)

// Binary trace format (all integers little-endian):
//
//	magic   [4]byte  "DYNT"
//	version uint16   (currently 2)
//	nameLen uint16, name []byte
//	nBlocks uint32
//	  per block: id uint32, srcPC uint64 (v2+), size uint32,
//	             nLinks uint16, links []uint32
//	nAccesses uint64
//	  accesses []uint32
//
// Version 1 omitted the per-block srcPC field, so a Save→Load roundtrip
// silently dropped Superblock.SrcPC. Write always emits v2; Read accepts
// both, decoding v1 blocks with SrcPC zero.
const (
	magic   = "DYNT"
	version = 2
)

// Write serializes the trace to w in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if len(t.Name) > 1<<16-1 {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Blocks))); err != nil {
		return err
	}
	for _, id := range t.SortedIDs() {
		sb := t.Blocks[id]
		if len(sb.Links) > 1<<16-1 {
			return fmt.Errorf("trace: superblock %d has too many links (%d)", id, len(sb.Links))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(sb.ID)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, sb.SrcPC); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(sb.Size)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(sb.Links))); err != nil {
			return err
		}
		for _, to := range sb.Links {
			if err := binary.Write(bw, binary.LittleEndian, uint32(to)); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Accesses))); err != nil {
		return err
	}
	for _, id := range t.Accesses {
		if err := binary.Write(bw, binary.LittleEndian, uint32(id)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// linkArenaChunk sizes the block-table link arena: link rows are carved
// out of shared chunks this long, so decoding costs one allocation per
// chunk instead of one per linked block.
const linkArenaChunk = 4096

// linkArenaPool and blockMapPool recycle the two block-table structures
// a decode allocates: the fixed-size link-arena chunks and the
// superblock map. Streaming replays decode a fresh block table per
// trace but copy everything into dense kernel tables immediately, so
// the decoded structures are garbage moments after NewStream returns;
// recycling them through Stream.ReleaseBlocks removes the per-replay
// churn. Materialized traces (Read) keep their block table for life and
// simply never return the structures — the pools refill on demand.
var (
	linkArenaPool = sync.Pool{
		New: func() any {
			s := make([]core.SuperblockID, linkArenaChunk)
			return &s
		},
	}
	blockMapPool = sync.Pool{
		New: func() any {
			return make(map[core.SuperblockID]core.Superblock)
		},
	}
)

// decodeHeader reads the magic, version, name, and block table, leaving
// br positioned at the access count. Shared by Read and NewStream. The
// returned arena chunks back the decoded link rows; a caller that drops
// the block table may recycle them (see Stream.ReleaseBlocks), one that
// keeps it must not.
//
// Every field is decoded manually out of a reused scratch buffer;
// binary.Read is off-limits here because it allocates per call (its
// internal buffer plus the escaping destination), which for a
// five-field-per-block table used to dominate the whole streaming-replay
// allocation profile (~6 allocations × tens of thousands of blocks).
func decodeHeader(br *bufio.Reader) (*Trace, []*[]core.SuperblockID, error) {
	const fixedV2 = 18 // id u32 + srcPC u64 + size u32 + nLinks u16
	const fixedV1 = 10 // id u32 + size u32 + nLinks u16
	scratch := make([]byte, fixedV2)
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(scratch[:4]) != magic {
		return nil, nil, fmt.Errorf("trace: bad magic %q", scratch[:4])
	}
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, nil, err
	}
	ver := binary.LittleEndian.Uint16(scratch)
	if ver != 1 && ver != version {
		return nil, nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen := binary.LittleEndian.Uint16(scratch[2:])
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, nil, err
	}
	t := New(string(nameBuf))
	t.Blocks = blockMapPool.Get().(map[core.SuperblockID]core.Superblock)
	var arenas []*[]core.SuperblockID
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, nil, err
	}
	nBlocks := binary.LittleEndian.Uint32(scratch)
	// Link rows are subslices of shared fixed-size chunks. Chunks are
	// never grown in place — growing would move the backing array and
	// invalidate rows already handed out — and oversized rows get a
	// dedicated allocation. Full slice expressions cap each row so a
	// consumer appending to its links cannot stomp a neighbor's.
	var (
		arena     []core.SuperblockID
		arenaUsed int
		linkBuf   []byte
	)
	for i := uint32(0); i < nBlocks; i++ {
		fixed := fixedV2
		if ver < 2 {
			fixed = fixedV1
		}
		b := scratch[:fixed]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, nil, fmt.Errorf("trace: block %d: %w", i, err)
		}
		var id, size uint32
		var srcPC uint64
		var nLinks uint16
		if ver >= 2 {
			id = binary.LittleEndian.Uint32(b)
			srcPC = binary.LittleEndian.Uint64(b[4:])
			size = binary.LittleEndian.Uint32(b[12:])
			nLinks = binary.LittleEndian.Uint16(b[16:])
		} else {
			id = binary.LittleEndian.Uint32(b)
			size = binary.LittleEndian.Uint32(b[4:])
			nLinks = binary.LittleEndian.Uint16(b[8:])
		}
		// nil for a link-free block, so a decoded trace is DeepEqual to the
		// one that was encoded (frontends leave Links nil when empty).
		var links []core.SuperblockID
		if n := int(nLinks); n > 0 {
			need := 4 * n
			if cap(linkBuf) < need {
				linkBuf = make([]byte, need)
			}
			lb := linkBuf[:need]
			if _, err := io.ReadFull(br, lb); err != nil {
				return nil, nil, fmt.Errorf("trace: block %d links: %w", i, err)
			}
			switch {
			case n > linkArenaChunk:
				links = make([]core.SuperblockID, n)
			default:
				if arenaUsed+n > len(arena) {
					chunk := linkArenaPool.Get().(*[]core.SuperblockID)
					arenas = append(arenas, chunk)
					arena = *chunk
					arenaUsed = 0
				}
				links = arena[arenaUsed : arenaUsed+n : arenaUsed+n]
				arenaUsed += n
			}
			for j := 0; j < n; j++ {
				links[j] = core.SuperblockID(binary.LittleEndian.Uint32(lb[4*j:]))
			}
		}
		if err := t.Define(core.Superblock{ID: core.SuperblockID(id), SrcPC: srcPC, Size: int(size), Links: links}); err != nil {
			return nil, nil, err
		}
	}
	return t, arenas, nil
}

// Read deserializes a trace from r, materializing the full access
// sequence. It is built on the streaming decoder; callers that replay
// without needing the whole slice in memory should use NewStream.
func Read(r io.Reader) (*Trace, error) {
	st, err := NewStream(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: st.Name, Blocks: st.Blocks}
	// Never trust a length field with an allocation: a corrupt header
	// could claim 2^60 accesses. Preallocate a bounded amount and let
	// append grow if the data really is that large.
	prealloc := st.NumAccesses()
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	if prealloc > 0 {
		t.Accesses = make([]core.SuperblockID, 0, prealloc)
	}
	buf := GetAccessBuf()
	defer PutAccessBuf(buf)
	for {
		n, err := st.Next(buf)
		if n > 0 {
			t.Accesses = append(t.Accesses, buf[:n]...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Dump writes a human-readable rendering of the trace to w: the block
// table followed by the access sequence (capped at maxAccesses lines;
// 0 means all).
func (t *Trace) Dump(w io.Writer, maxAccesses int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s\n# %s\n", t.Name, t.Summarize())
	for _, id := range t.SortedIDs() {
		sb := t.Blocks[id]
		fmt.Fprintf(bw, "block %d size %d links %v\n", sb.ID, sb.Size, sb.Links)
	}
	n := len(t.Accesses)
	if maxAccesses > 0 && maxAccesses < n {
		n = maxAccesses
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "access %d\n", t.Accesses[i])
	}
	if n < len(t.Accesses) {
		fmt.Fprintf(bw, "# ... %d more accesses\n", len(t.Accesses)-n)
	}
	return bw.Flush()
}
