package experiments

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/report"
	"dynocache/internal/sim"
)

// This file holds experiments beyond the paper's figures: the
// multiprogramming scenario its introduction motivates, a sensitivity
// analysis over the measured cost coefficients, and the design-choice
// ablations listed in DESIGN.md §5.

// MultiprogResult compares eviction granularities on a shared cache
// running several programs at once.
type MultiprogResult struct {
	Workload string
	Policies []string
	// MissRates and RelOverhead (FLUSH=1) for the shared-cache run.
	MissRates   []float64
	RelOverhead []float64
	// SoloBlendMissRate is the access-weighted miss rate the same programs
	// would see with the same per-program capacity each (8-unit policy).
	SoloBlendMissRate float64
	SharedMissRate8   float64
}

// Multiprog runs the multiprogrammed-cache experiment: §2.3 argues cache
// limits matter because "users tend to execute several programs at once";
// here several benchmarks share one cache with round-robin context
// switches, and the granularity sweep is repeated on the merged workload.
func (s *Suite) Multiprog(names ...string) (*MultiprogResult, error) {
	if len(names) == 0 {
		names = []string{"gzip", "vpr", "crafty", "twolf"}
	}
	merged, err := s.multiprogTrace(2000, names)
	if err != nil {
		return nil, err
	}
	res := &MultiprogResult{Workload: merged.Name, Policies: s.PolicyNames()}

	// Equal hardware budget: the shared cache has the capacity one
	// average member would get at pressure 2, and the solo baseline runs
	// each program on a private cache of exactly the same capacity. The
	// difference between the two is pure multiprogramming interference.
	capacity := merged.TotalBytes() / (2 * len(names))
	opts := sim.Options{CensusEvery: s.cfg.CensusEvery, Capacity: capacity, Verify: s.cfg.Verify}

	var flush float64
	for i, pol := range s.Policies() {
		r, err := sim.Run(merged, pol, 1, opts)
		if err != nil {
			return nil, err
		}
		res.MissRates = append(res.MissRates, r.Stats.MissRate())
		total := r.Overhead(s.cfg.Model, true).Total()
		if i == 0 {
			flush = total
		}
		res.RelOverhead = append(res.RelOverhead, total/flush)
		if pol.String() == "8-unit" {
			res.SharedMissRate8 = r.Stats.MissRate()
		}
	}

	// Solo blend on private caches of the same capacity.
	var misses, accesses uint64
	for _, name := range names {
		tr, err := s.traceByName(name)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 1, sim.Options{Capacity: capacity, Verify: s.cfg.Verify})
		if err != nil {
			return nil, err
		}
		misses += r.Stats.Misses
		accesses += r.Stats.Accesses
	}
	if accesses > 0 {
		res.SoloBlendMissRate = float64(misses) / float64(accesses)
	}
	return res, nil
}

// Table renders the multiprogramming comparison.
func (r *MultiprogResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Multiprogramming: %s sharing one code cache", r.Workload),
		"policy", "miss rate", "overhead/FLUSH")
	for i, p := range r.Policies {
		t.AddRowf(p, fmt.Sprintf("%.4f", r.MissRates[i]), fmt.Sprintf("%.3f", r.RelOverhead[i]))
	}
	return t
}

// SensitivityResult reports how the optimal granularity moves as the
// measured cost coefficients vary.
type SensitivityResult struct {
	// Factors scale the eviction fixed cost (Equation 2's intercept, the
	// term the paper identifies as dominant).
	Factors []float64
	// BestPolicy[i] is the overhead-optimal policy at Factors[i] and
	// pressure 10, link costs included.
	BestPolicy []string
	// FIFORelative[i] is fine-grained FIFO's overhead relative to FLUSH.
	FIFORelative []float64
}

// Sensitivity re-prices the pressure-10 sweep under scaled eviction
// invocation costs. The paper's conclusion — medium granularity — should
// be robust: cheaper invocations favour finer grains, pricier ones
// coarser, but the extremes should stay dominated over a wide band.
func (s *Suite) Sensitivity() (*SensitivityResult, error) {
	sw, err := s.Sweep(10)
	if err != nil {
		return nil, err
	}
	res := &SensitivityResult{Factors: []float64{0.25, 0.5, 1, 2, 4}}
	for _, f := range res.Factors {
		m := s.cfg.Model
		m.EvictBase *= f
		m.UnlinkPerLink *= f
		best, bestVal := "", 0.0
		var flush float64
		var fifoRel float64
		for p, pol := range s.Policies() {
			total := sw.TotalOverhead(p, m, true)
			if p == 0 {
				flush = total
			}
			if best == "" || total < bestVal {
				best, bestVal = pol.String(), total
			}
			if pol.Kind == core.PolicyFine {
				fifoRel = total / flush
			}
		}
		res.BestPolicy = append(res.BestPolicy, best)
		res.FIFORelative = append(res.FIFORelative, fifoRel)
	}
	return res, nil
}

// Table renders the sensitivity analysis.
func (r *SensitivityResult) Table() *report.Table {
	t := report.NewTable("Sensitivity: eviction/unlink cost scaling at pressure 10",
		"cost factor", "best policy", "FIFO/FLUSH")
	for i, f := range r.Factors {
		t.AddRowf(fmt.Sprintf("%.2fx", f), r.BestPolicy[i], fmt.Sprintf("%.3f", r.FIFORelative[i]))
	}
	return t
}

// AblationResult summarizes the design-choice ablations of DESIGN.md §5.
type AblationResult struct {
	// LRUFragEvictionPct: percentage of plain-LRU evictions forced purely
	// by fragmentation (§3.3's argument against LRU).
	LRUFragEvictionPct float64
	// CompactionOverheadPct: compacting-LRU's defragmentation cost as a
	// percentage of its total management overhead ("compaction would
	// require adjusting all the link pointers").
	CompactionOverheadPct float64
	// AdaptiveVsBestStatic: adaptive policy overhead / best static
	// granularity overhead at pressure 10.
	AdaptiveVsBestStatic float64
	// PreemptiveVsFlush: preemptive-flush overhead / plain FLUSH at
	// pressure 6.
	PreemptiveVsFlush float64
	// GenerationalVsFlat: generational miss rate / flat 8-unit miss rate
	// at pressure 6.
	GenerationalVsFlat float64
	// ApproxLRUVsExact: sampling approx-LRU miss rate / exact LRU miss
	// rate at pressure 6 — what giving up the exact recency order (and
	// its fragmentation-burst carving) costs in misses.
	ApproxLRUVsExact float64
}

// Ablations runs the design-choice studies on one mid-sized benchmark.
func (s *Suite) Ablations() (*AblationResult, error) {
	tr, err := s.traceByName("vortex")
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}
	model := s.cfg.Model

	// LRU fragmentation.
	capacity, err := sim.CapacityFor(tr, 6)
	if err != nil {
		return nil, err
	}
	lru, err := core.NewLRU(capacity)
	if err != nil {
		return nil, err
	}
	replay := func(c core.Cache) error {
		for _, id := range tr.Accesses {
			if !c.Access(id) {
				if err := c.Insert(tr.Blocks[id]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := replay(lru); err != nil {
		return nil, err
	}
	if ev := lru.Stats().BlocksEvicted; ev > 0 {
		res.LRUFragEvictionPct = 100 * float64(lru.FragEvictions) / float64(ev)
	}

	// Compaction cost.
	comp, err := core.NewCompactingLRU(capacity)
	if err != nil {
		return nil, err
	}
	if err := replay(comp); err != nil {
		return nil, err
	}
	compactCost := comp.CompactionOverhead(1.0, model.UnlinkPerLink)
	base := model.FromStats(comp.Stats(), true).Total()
	if base+compactCost > 0 {
		res.CompactionOverheadPct = 100 * compactCost / (base + compactCost)
	}

	// Adaptive vs best static at pressure 10.
	var bestStatic float64
	for _, pol := range s.Policies() {
		r, err := sim.Run(tr, pol, 10, sim.Options{Verify: s.cfg.Verify})
		if err != nil {
			return nil, err
		}
		total := r.Overhead(model, true).Total()
		if bestStatic == 0 || total < bestStatic {
			bestStatic = total
		}
	}
	ra, err := sim.Run(tr, core.Policy{Kind: core.PolicyAdaptive}, 10, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	res.AdaptiveVsBestStatic = ra.Overhead(model, true).Total() / bestStatic

	// Preemptive flush vs plain flush at pressure 6.
	rf, err := sim.Run(tr, core.Policy{Kind: core.PolicyFlush}, 6, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	rp, err := sim.Run(tr, core.Policy{Kind: core.PolicyPreemptive}, 6, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	res.PreemptiveVsFlush = rp.Overhead(model, false).Total() / rf.Overhead(model, false).Total()

	// Generational vs flat.
	r8, err := sim.Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 6, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	rg, err := sim.Run(tr, core.Policy{Kind: core.PolicyGenerational, Units: 8}, 6, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	res.GenerationalVsFlat = rg.Stats.MissRate() / r8.Stats.MissRate()

	// Sampling vs exact recency.
	rl, err := sim.Run(tr, core.Policy{Kind: core.PolicyLRU}, 6, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	rs, err := sim.Run(tr, core.Policy{Kind: core.PolicyApproxLRU}, 6, sim.Options{Verify: s.cfg.Verify})
	if err != nil {
		return nil, err
	}
	res.ApproxLRUVsExact = rs.Stats.MissRate() / rl.Stats.MissRate()
	return res, nil
}

// Table renders the ablation summary.
func (r *AblationResult) Table() *report.Table {
	t := report.NewTable("Design-choice ablations (DESIGN.md §5)", "study", "result")
	t.AddRowf("LRU evictions forced by fragmentation", fmt.Sprintf("%.1f%%", r.LRUFragEvictionPct))
	t.AddRowf("compaction share of compacting-LRU overhead", fmt.Sprintf("%.1f%%", r.CompactionOverheadPct))
	t.AddRowf("adaptive / best static overhead (p10)", fmt.Sprintf("%.3f", r.AdaptiveVsBestStatic))
	t.AddRowf("preemptive flush / FLUSH overhead (p6)", fmt.Sprintf("%.3f", r.PreemptiveVsFlush))
	t.AddRowf("generational / flat 8-unit miss rate (p6)", fmt.Sprintf("%.3f", r.GenerationalVsFlat))
	t.AddRowf("approx-LRU / exact LRU miss rate (p6)", fmt.Sprintf("%.3f", r.ApproxLRUVsExact))
	return t
}
