package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

const goldenPath = "testdata/quick_report.golden"

// quickReport runs the full quick-config suite and returns the rendered
// report. Every experiment is deterministic (seeded synthesis, indexed
// parallel sweeps), so the bytes are stable across runs and machines.
func quickReport(t *testing.T, verify bool) string {
	t.Helper()
	cfg := QuickConfig()
	cfg.Verify = verify
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.RunAll(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// section is one "==== name ====" block of the report.
type section struct {
	name string
	body string
}

func splitSections(report string) []section {
	var out []section
	for _, chunk := range strings.Split(report, "\n==== ")[1:] {
		name, body, ok := strings.Cut(chunk, " ====\n")
		if !ok {
			continue
		}
		out = append(out, section{name: name, body: body})
	}
	return out
}

// firstLineDiff locates the first differing line between two texts.
func firstLineDiff(got, want string) (line int, g, w string) {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w = "<missing>", "<missing>"
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return i + 1, g, w
		}
	}
	return 0, "", ""
}

// compareToGolden checks a report against the committed golden file
// section by section, so a regression names the experiment it broke
// rather than a byte offset.
func compareToGolden(t *testing.T, got string) {
	t.Helper()
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -run TestQuickReportGolden -update` to create it)", err)
	}
	gotSecs, wantSecs := splitSections(got), splitSections(string(want))
	if len(gotSecs) != len(wantSecs) {
		t.Fatalf("report has %d sections, golden has %d", len(gotSecs), len(wantSecs))
	}
	for i, ws := range wantSecs {
		gs := gotSecs[i]
		if gs.name != ws.name {
			t.Fatalf("section %d is %q, golden has %q", i, gs.name, ws.name)
		}
		if gs.body != ws.body {
			line, g, w := firstLineDiff(gs.body, ws.body)
			t.Errorf("section %q diverges from golden at line %d:\n  got:  %s\n  want: %s",
				ws.name, line, g, w)
		}
	}
	if !t.Failed() && got != string(want) {
		// Belt and braces: anything outside the section structure.
		line, g, w := firstLineDiff(got, string(want))
		t.Errorf("report diverges from golden outside sections at line %d:\n  got:  %s\n  want: %s", line, g, w)
	}
}

// TestQuickReportGolden pins the entire quick-config evaluation output.
// Any change to a policy, the overhead model, the synthesizer, or the
// renderers shows up here as a named section diff; intentional changes are
// recorded with -update.
func TestQuickReportGolden(t *testing.T) {
	got := quickReport(t, false)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	compareToGolden(t, got)
}

// TestVerifiedQuickReportIsByteIdentical replays the whole quick-config
// suite under the verification layer — invariant wall after every cache
// operation, oracle differ in lockstep for FIFO-family runs — and demands
// the output match the golden bytes exactly. Together with
// TestQuickReportGolden this proves the checked run equals the unchecked
// run with zero violations.
func TestVerifiedQuickReportIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("verified full suite is slow; skipped with -short")
	}
	if raceEnabled {
		// ~100s unraced, ~10x that raced — past the package timeout. The
		// assertion is byte equality of deterministic single-run output,
		// which the race detector cannot influence; the verification code
		// paths get their race coverage from internal/check's tests and
		// sim's TestRunVerifyIsTransparent.
		t.Skip("verified full suite skipped under the race detector")
	}
	got := quickReport(t, true)
	if *update {
		t.Skip("golden updates run unverified")
	}
	compareToGolden(t, got)
}
