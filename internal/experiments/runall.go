package experiments

import (
	"fmt"
	"io"
)

// RunAll regenerates every table and figure in paper order, writing the
// rendered artifacts to w. It is the engine behind cmd/dynocache-experiments
// and the source of EXPERIMENTS.md.
func (s *Suite) RunAll(w io.Writer) error {
	section := func(name string) {
		fmt.Fprintf(w, "\n==== %s ====\n\n", name)
	}

	section("Table 1")
	if err := s.Table1().Render(w); err != nil {
		return err
	}

	section("Figure 3")
	f3, err := s.Fig3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SPECint2000 superblock sizes (bytes):\n%s\n", f3.SPEC)
	fmt.Fprintf(w, "Windows superblock sizes (bytes):\n%s\n", f3.Windows)

	section("Figure 4")
	if err := s.Fig4().Render(w); err != nil {
		return err
	}

	section("Figure 6")
	f6, err := s.Fig6()
	if err != nil {
		return err
	}
	if err := f6.Chart().Render(w); err != nil {
		return err
	}

	section("Figure 7")
	f7, err := s.Fig7()
	if err != nil {
		return err
	}
	if err := f7.Series().Render(w); err != nil {
		return err
	}

	section("Figure 8")
	f8, err := s.Fig8()
	if err != nil {
		return err
	}
	if err := f8.Chart().Render(w); err != nil {
		return err
	}

	section("Figure 9 / Equation 2")
	f9, err := s.Fig9()
	if err != nil {
		return err
	}
	if err := f9.Table().Render(w); err != nil {
		return err
	}

	section("Equation 3")
	e3, err := s.Eq3()
	if err != nil {
		return err
	}
	if err := e3.Table().Render(w); err != nil {
		return err
	}

	section("Figure 10")
	f10, err := s.Fig10()
	if err != nil {
		return err
	}
	if err := f10.Chart().Render(w); err != nil {
		return err
	}

	section("Figure 11")
	f11, err := s.Fig11()
	if err != nil {
		return err
	}
	if err := f11.Series().Render(w); err != nil {
		return err
	}

	section("Figure 12")
	f12, err := s.Fig12()
	if err != nil {
		return err
	}
	if err := f12.Chart().Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "overall mean outbound links/superblock: %.2f (paper: 1.7)\n", f12.OverallMean)
	fmt.Fprintf(w, "back-pointer table footprint: %.1f%% of cache (paper: 11.5%%)\n", f12.BackPtrPctOfCache)

	section("Table 2")
	t2, err := s.Table2()
	if err != nil {
		return err
	}
	if err := t2.Table().Render(w); err != nil {
		return err
	}

	section("Figure 13")
	f13, err := s.Fig13()
	if err != nil {
		return err
	}
	if err := f13.Chart().Render(w); err != nil {
		return err
	}

	section("Equation 4")
	e4, err := s.Eq4()
	if err != nil {
		return err
	}
	if err := e4.Table().Render(w); err != nil {
		return err
	}

	section("Figure 14")
	f14, err := s.Fig14()
	if err != nil {
		return err
	}
	if err := f14.Chart().Render(w); err != nil {
		return err
	}

	section("Figure 15")
	f15, err := s.Fig15()
	if err != nil {
		return err
	}
	if err := f15.Series().Render(w); err != nil {
		return err
	}

	section("Section 5.3")
	s53, err := s.Sec53()
	if err != nil {
		return err
	}
	if err := s53.Table().Render(w); err != nil {
		return err
	}

	// Extensions beyond the paper's figures.
	section("Extension: multiprogramming")
	mp, err := s.Multiprog()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "solo-blend miss rate (8-unit, private caches): %.4f\n", mp.SoloBlendMissRate)
	fmt.Fprintf(w, "shared-cache miss rate (8-unit):               %.4f\n\n", mp.SharedMissRate8)
	if err := mp.Table().Render(w); err != nil {
		return err
	}

	section("Extension: cost-model sensitivity")
	sens, err := s.Sensitivity()
	if err != nil {
		return err
	}
	if err := sens.Table().Render(w); err != nil {
		return err
	}

	section("Extension: design-choice ablations")
	abl, err := s.Ablations()
	if err != nil {
		return err
	}
	if err := abl.Table().Render(w); err != nil {
		return err
	}

	section("Appendix: per-benchmark crossover at pressure 10")
	ap, err := s.Appendix(10)
	if err != nil {
		return err
	}
	if err := ap.Table().Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmarks with FIFO costlier than FLUSH: %d/%d\n", ap.CrossedCount, len(ap.Benchmarks))
	return nil
}
