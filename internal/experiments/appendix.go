package experiments

import (
	"fmt"

	"dynocache/internal/report"
	"dynocache/internal/workload"
)

// AppendixResult carries the per-benchmark breakdown behind the unified
// curves: where fine-grained FIFO crosses FLUSH, benchmark by benchmark.
type AppendixResult struct {
	Pressure   int
	Benchmarks []string
	Suites     []string
	// FIFOOverFlush and Unit8OverFlush are per-benchmark overhead ratios
	// (link costs included).
	FIFOOverFlush  []float64
	Unit8OverFlush []float64
	// CrossedCount is how many benchmarks have FIFO costlier than FLUSH.
	CrossedCount int
	// SPECMissRate / WindowsMissRate are per-suite unified miss rates for
	// the 8-unit policy.
	SPECMissRate    float64
	WindowsMissRate float64
}

// Appendix computes the per-benchmark view at one pressure. The paper
// reports unified numbers; this table shows the heterogeneity underneath —
// in particular which benchmarks push fine-grained FIFO past FLUSH under
// pressure (the Figure 11 crossover, resolved per benchmark).
func (s *Suite) Appendix(pressure int) (*AppendixResult, error) {
	sw, err := s.Sweep(pressure)
	if err != nil {
		return nil, err
	}
	idx8, err := s.policyIndex("8-unit")
	if err != nil {
		return nil, err
	}
	fifoIdx := len(s.Policies()) - 1
	res := &AppendixResult{Pressure: pressure}
	var specMiss, specAcc, winMiss, winAcc uint64
	for b, name := range sw.Benchmarks {
		rf := sw.Results[0][b]
		r8 := sw.Results[idx8][b]
		rfifo := sw.Results[fifoIdx][b]
		flush := rf.Overhead(s.cfg.Model, true).Total()
		if flush == 0 {
			return nil, fmt.Errorf("experiments: %s has zero FLUSH overhead", name)
		}
		fifoRatio := rfifo.Overhead(s.cfg.Model, true).Total() / flush
		res.Benchmarks = append(res.Benchmarks, name)
		res.Suites = append(res.Suites, s.profiles[b].Suite.String())
		res.FIFOOverFlush = append(res.FIFOOverFlush, fifoRatio)
		res.Unit8OverFlush = append(res.Unit8OverFlush, r8.Overhead(s.cfg.Model, true).Total()/flush)
		if fifoRatio > 1 {
			res.CrossedCount++
		}
		if s.profiles[b].Suite == workload.SuiteSPEC {
			specMiss += r8.Stats.Misses
			specAcc += r8.Stats.Accesses
		} else {
			winMiss += r8.Stats.Misses
			winAcc += r8.Stats.Accesses
		}
	}
	if specAcc > 0 {
		res.SPECMissRate = float64(specMiss) / float64(specAcc)
	}
	if winAcc > 0 {
		res.WindowsMissRate = float64(winMiss) / float64(winAcc)
	}
	return res, nil
}

// Table renders the appendix.
func (r *AppendixResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Appendix: per-benchmark overhead ratios at pressure %d (link costs included)", r.Pressure),
		"benchmark", "suite", "8-unit/FLUSH", "FIFO/FLUSH")
	for i, b := range r.Benchmarks {
		t.AddRowf(b, r.Suites[i],
			fmt.Sprintf("%.3f", r.Unit8OverFlush[i]),
			fmt.Sprintf("%.3f", r.FIFOOverFlush[i]))
	}
	return t
}
