// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a runner returning both the raw numbers
// (for tests and benchmarks) and a rendered artifact (for reports); RunAll
// regenerates the whole evaluation in paper order.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured results
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"

	"dynocache/internal/core"
	"dynocache/internal/overhead"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// Config scales and parameterizes the experiment suite.
type Config struct {
	// Scale multiplies every benchmark's superblock count. 1.0 reproduces
	// Table 1 exactly; smaller values give fast approximate runs.
	Scale float64
	// Pressures is the cache-pressure sweep (the paper uses 2..10).
	Pressures []int
	// MaxUnits bounds the granularity sweep (FLUSH, 2..MaxUnits units in
	// powers of two, fine-grained FIFO).
	MaxUnits int
	// CensusEvery controls link-census sampling during simulation.
	CensusEvery int
	// Model prices events (Equations 2-4 by default).
	Model overhead.Model
	// AppInstrPerAccess anchors execution-time estimates (§5.3): the mean
	// number of guest instructions executed inside the cache per code
	// cache lookup.
	AppInstrPerAccess float64
	// Verify runs every simulation under the check package's
	// verification wrapper (structural invariant wall plus the map-based
	// oracle differ for FIFO-family policies). Results are identical to
	// an unverified run; the run is a few times slower.
	Verify bool
}

// DefaultConfig reproduces the paper's setup at full Table 1 scale.
// A complete RunAll takes about a minute of CPU time.
func DefaultConfig() Config {
	return Config{
		Scale:             1.0,
		Pressures:         []int{2, 4, 6, 8, 10},
		MaxUnits:          64,
		CensusEvery:       2000,
		Model:             overhead.Paper(),
		AppInstrPerAccess: 2000,
	}
}

// QuickConfig runs the same experiments on 5%-scale workloads; shapes are
// preserved, absolute counts shrink. Used by tests and benchmarks.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	cfg.CensusEvery = 500
	return cfg
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("experiments: scale must be positive, got %g", c.Scale)
	}
	if len(c.Pressures) == 0 {
		return fmt.Errorf("experiments: no pressure factors")
	}
	for _, p := range c.Pressures {
		if p < 1 {
			return fmt.Errorf("experiments: bad pressure factor %d", p)
		}
	}
	if c.MaxUnits < 2 {
		return fmt.Errorf("experiments: MaxUnits must be >= 2, got %d", c.MaxUnits)
	}
	if c.AppInstrPerAccess < 0 {
		return fmt.Errorf("experiments: negative AppInstrPerAccess")
	}
	return c.Model.Validate()
}

// Suite holds synthesized workloads and memoized simulation sweeps so that
// figures sharing a configuration share the work — the analogue of reusing
// the saved DynamoRIO logs across experiments.
type Suite struct {
	cfg      Config
	profiles []workload.Profile
	traces   []*trace.Trace
	byName   map[string]*trace.Trace

	policies    []core.Policy
	policyNames []string

	mu     sync.Mutex
	sweeps map[int]*sim.SweepResult // keyed by pressure factor
	merged map[string]*trace.Trace  // interleaved workloads, keyed by label
}

// NewSuite synthesizes all Table 1 workloads at the configured scale.
func NewSuite(cfg Config) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Suite{
		cfg:    cfg,
		byName: make(map[string]*trace.Trace),
		sweeps: make(map[int]*sim.SweepResult),
		merged: make(map[string]*trace.Trace),
	}
	s.profiles = workload.ScaledTable1(cfg.Scale)
	for _, p := range s.profiles {
		tr, err := p.Synthesize()
		if err != nil {
			return nil, err
		}
		s.traces = append(s.traces, tr)
		s.byName[p.Name] = tr
	}
	s.policies = core.GranularitySweep(cfg.MaxUnits)
	s.policyNames = make([]string, len(s.policies))
	for i, p := range s.policies {
		s.policyNames[i] = p.String()
	}
	return s, nil
}

// Config returns the suite's configuration.
func (s *Suite) Config() Config { return s.cfg }

// Traces exposes the synthesized workloads.
func (s *Suite) Traces() []*trace.Trace { return s.traces }

// traceByName returns the suite's synthesized trace for a Table 1
// benchmark, so experiments never re-synthesize what NewSuite built.
func (s *Suite) traceByName(name string) (*trace.Trace, error) {
	if tr, ok := s.byName[name]; ok {
		return tr, nil
	}
	return nil, fmt.Errorf("experiments: benchmark %q not in suite", name)
}

// multiprogTrace returns (building and memoizing on first use) the
// interleaved multiprogrammed workload over the named benchmarks, reusing
// the suite's solo traces.
func (s *Suite) multiprogTrace(quantum int, names []string) (*trace.Trace, error) {
	label := "multiprog"
	solos := make([]*trace.Trace, 0, len(names))
	for _, n := range names {
		tr, err := s.traceByName(n)
		if err != nil {
			return nil, err
		}
		solos = append(solos, tr)
		label += "+" + n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr, ok := s.merged[label]; ok {
		return tr, nil
	}
	tr, err := workload.Interleave(label, quantum, solos...)
	if err != nil {
		return nil, err
	}
	s.merged[label] = tr
	return tr, nil
}

// Policies returns the granularity sweep used across figures. Callers
// must not mutate the returned slice.
func (s *Suite) Policies() []core.Policy { return s.policies }

// PolicyNames returns the sweep's display labels. Callers must not mutate
// the returned slice.
func (s *Suite) PolicyNames() []string { return s.policyNames }

// Sweep returns (computing and memoizing on first use) the full
// policy x benchmark simulation at one pressure factor.
func (s *Suite) Sweep(pressure int) (*sim.SweepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sw, ok := s.sweeps[pressure]; ok {
		return sw, nil
	}
	// SinglePass drives the whole granularity ladder through the
	// multi-configuration kernel, one pass per trace; under Verify the
	// option is inert and the sweep falls back to per-config jobs.
	sw, err := sim.Sweep(s.traces, s.Policies(), pressure, sim.Options{CensusEvery: s.cfg.CensusEvery, Verify: s.cfg.Verify, SinglePass: true})
	if err != nil {
		return nil, err
	}
	s.sweeps[pressure] = sw
	return sw, nil
}

// policyIndex locates a policy in the sweep by display name.
func (s *Suite) policyIndex(name string) (int, error) {
	for i, p := range s.Policies() {
		if p.String() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiments: policy %q not in sweep", name)
}
