package experiments

import (
	"fmt"

	"dynocache/internal/dbt"
	"dynocache/internal/program"
	"dynocache/internal/report"
)

// Table2Row is one benchmark's chaining-on/off comparison.
type Table2Row struct {
	Benchmark   string
	LinkedSec   float64
	UnlinkedSec float64
	SlowdownPct float64
}

// Table2Result carries the full chaining experiment.
type Table2Result struct {
	Rows []Table2Row
}

// table2Workload maps each SPEC benchmark of Table 2 to a deterministic
// synthetic program. The structural knobs (loop density, call rate, run
// length) vary per benchmark so the chaining sensitivity spreads the way
// the paper's did: loop-heavy codes stay inside one superblock longer and
// suffer less when links are removed; call/branch-heavy codes transition
// between superblocks constantly and collapse without chaining.
func table2Workload(name string, idx int) program.GenConfig {
	_ = name // the mapping is positional; names label the rows
	base := program.GenConfig{
		Seed:        0x7AB2E0 + uint64(idx)*7919,
		NumFuncs:    18 + 2*(idx%5),
		MinBlocks:   4,
		MaxBlocks:   10 + idx%6,
		LoopProb:    0.15 + 0.05*float64(idx%4),
		MaxLoopTrip: 4 + idx%8,
		CallProb:    0.05 + 0.01*float64(idx%4),
		IndirectPct: 0.1,
		BranchProb:  0.5 + 0.04*float64(idx%5),
		Phases:      4,
		PhaseFuncs:  8,
		PhaseIters:  600,
	}
	return base
}

// Table2 reproduces the chaining on/off experiment: each benchmark's
// program runs twice under the full DBT — once with superblock chaining,
// once without — and the modelled execution times (guest work, dispatch,
// protection toggles, translation, eviction) give the slowdown.
func (s *Suite) Table2() (*Table2Result, error) {
	// The paper's Table 2 covers the SPEC benchmarks it could time
	// natively (eon excluded).
	names := []string{"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
		"perlbmk", "gap", "vortex", "bzip2", "twolf"}
	res := &Table2Result{}
	budget := uint64(float64(80_000_000) * clamp01(s.cfg.Scale))
	if budget < 5_000_000 {
		budget = 5_000_000
	}
	for i, name := range names {
		gen := table2Workload(name, i)
		p, err := program.Generate(gen)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", name, err)
		}
		code, err := p.Code()
		if err != nil {
			return nil, err
		}
		run := func(chaining bool) (float64, error) {
			cfg := dbt.DefaultConfig()
			cfg.Chaining = chaining
			cfg.CacheCapacity = 128 << 10
			d, err := dbt.New(cfg)
			if err != nil {
				return 0, err
			}
			if err := d.Load(code, program.CodeBase, p.Entry); err != nil {
				return 0, err
			}
			if err := d.Run(budget); err != nil {
				return 0, fmt.Errorf("experiments: table2 %s (chaining=%v): %w", name, chaining, err)
			}
			return d.ModeledSeconds(), nil
		}
		on, err := run(true)
		if err != nil {
			return nil, err
		}
		off, err := run(false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Benchmark:   name,
			LinkedSec:   on,
			UnlinkedSec: off,
			SlowdownPct: 100 * (off - on) / on,
		})
	}
	return res, nil
}

func clamp01(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

// Table renders the result in the paper's layout.
func (r *Table2Result) Table() *report.Table {
	t := report.NewTable("Table 2. Slowdown from disabling superblock chaining",
		"Benchmark", "Linked (model s)", "Unlinked (model s)", "Slowdown %")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark,
			fmt.Sprintf("%.4f", row.LinkedSec),
			fmt.Sprintf("%.4f", row.UnlinkedSec),
			fmt.Sprintf("%.0f", row.SlowdownPct))
	}
	return t
}
