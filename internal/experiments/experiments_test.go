package experiments

import (
	"math"
	"strings"
	"testing"
)

// testSuite builds one small suite shared across tests (synthesis and
// sweeps are memoized inside).
var testSuiteOnce *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testSuiteOnce != nil {
		return testSuiteOnce
	}
	cfg := QuickConfig()
	cfg.Pressures = []int{2, 6, 10}
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	testSuiteOnce = s
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Pressures = nil },
		func(c *Config) { c.Pressures = []int{0} },
		func(c *Config) { c.MaxUnits = 1 },
		func(c *Config) { c.AppInstrPerAccess = -1 },
		func(c *Config) { c.Model.CPI = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
		if _, err := NewSuite(cfg); err == nil {
			t.Errorf("NewSuite with mutation %d should fail", i)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := getSuite(t)
	tab := s.Table1()
	if len(tab.Rows) != 20 {
		t.Fatalf("Table 1 rows = %d, want 20", len(tab.Rows))
	}
	out := tab.String()
	for _, name := range []string{"gzip", "word", "photoshop"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestFig3Skew(t *testing.T) {
	s := getSuite(t)
	f3, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if f3.SPEC.Total == 0 || f3.Windows.Total == 0 {
		t.Fatal("empty histograms")
	}
	// Windows regions are larger on average (Figure 3/4).
	if f3.Windows.Mean() <= f3.SPEC.Mean() {
		t.Fatalf("Windows mean %g should exceed SPEC mean %g", f3.Windows.Mean(), f3.SPEC.Mean())
	}
}

func TestFig4Medians(t *testing.T) {
	s := getSuite(t)
	tab := s.Fig4()
	if len(tab.Rows) != 20 {
		t.Fatalf("Fig 4 rows = %d", len(tab.Rows))
	}
}

func TestFig6MonotoneDecline(t *testing.T) {
	s := getSuite(t)
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.Policies[0] != "FLUSH" || f6.Policies[len(f6.Policies)-1] != "FIFO" {
		t.Fatalf("unexpected sweep order: %v", f6.Policies)
	}
	// The paper's central Figure 6 claim: miss rates decline as evictions
	// become finer grained.
	for i := 1; i < len(f6.MissRates); i++ {
		if f6.MissRates[i] > f6.MissRates[i-1]*1.02 { // 2% noise headroom
			t.Fatalf("miss rate not declining at %s: %v", f6.Policies[i], f6.MissRates)
		}
	}
	if f6.MissRates[0] <= f6.MissRates[len(f6.MissRates)-1] {
		t.Fatal("FLUSH must miss strictly more than FIFO")
	}
	if !strings.Contains(f6.Chart().String(), "FLUSH") {
		t.Fatal("chart missing labels")
	}
}

func TestFig7PressureWidensSpread(t *testing.T) {
	s := getSuite(t)
	f7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	nP := len(f7.Pressures)
	flushRow := f7.Rates[0]
	fifoRow := f7.Rates[len(f7.Rates)-1]
	// Rates rise with pressure for both extremes.
	if flushRow[nP-1] <= flushRow[0] || fifoRow[nP-1] <= fifoRow[0] {
		t.Fatalf("pressure should raise miss rates: flush %v fifo %v", flushRow, fifoRow)
	}
	// The granularity ordering holds at every pressure: FLUSH misses more
	// than fine-grained FIFO throughout the sweep.
	for k := 0; k < nP; k++ {
		if flushRow[k] <= fifoRow[k] {
			t.Fatalf("pressure %d: FLUSH %g should miss more than FIFO %g",
				f7.Pressures[k], flushRow[k], fifoRow[k])
		}
	}
	if !strings.Contains(f7.Series().String(), "FLUSH") {
		t.Fatal("series render broken")
	}
}

func TestFig8EvictionCollapse(t *testing.T) {
	s := getSuite(t)
	f8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	last := len(f8.Relative) - 1
	if f8.Relative[last] != 100 {
		t.Fatalf("FIFO baseline should be 100%%, got %g", f8.Relative[last])
	}
	// Invocations grow monotonically with granularity.
	for i := 1; i <= last; i++ {
		if f8.Absolute[i] < f8.Absolute[i-1] {
			t.Fatalf("invocations should grow with granularity: %v", f8.Absolute)
		}
	}
	// The paper's headline: 64-unit needs a small fraction of FIFO's
	// invocations (they report ~3x fewer; exact factor depends on the
	// benchmark mix).
	if f8.Relative[last-1] > 60 {
		t.Fatalf("64-unit at %g%% of FIFO; expected well under 60%%", f8.Relative[last-1])
	}
}

func TestFig9RecoversEquation2(t *testing.T) {
	s := getSuite(t)
	f9, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if f9.Samples < 10000 {
		t.Fatalf("only %d eviction samples; the paper collected >10,000", f9.Samples)
	}
	if math.Abs(f9.Fit.Slope-2.77)/2.77 > 0.15 {
		t.Fatalf("slope %g too far from 2.77", f9.Fit.Slope)
	}
	if math.Abs(f9.Fit.Intercept-3055)/3055 > 0.15 {
		t.Fatalf("intercept %g too far from 3055", f9.Fit.Intercept)
	}
	if !strings.Contains(f9.Table().String(), "slope") {
		t.Fatal("fit table broken")
	}
}

func TestEq3AndEq4Fits(t *testing.T) {
	s := getSuite(t)
	e3, err := s.Eq3()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e3.Fit.Slope-75.4)/75.4 > 0.1 {
		t.Fatalf("Eq3 slope %g too far from 75.4", e3.Fit.Slope)
	}
	e4, err := s.Eq4()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e4.Fit.Slope-296.5)/296.5 > 0.1 {
		t.Fatalf("Eq4 slope %g too far from 296.5", e4.Fit.Slope)
	}
}

func TestFig10UShape(t *testing.T) {
	s := getSuite(t)
	f10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if f10.Relative[0] != 1.0 {
		t.Fatalf("FLUSH must normalize to 1.0, got %g", f10.Relative[0])
	}
	// Some medium granularity beats both extremes (the paper's thesis).
	minVal, minIdx := f10.Relative[0], 0
	for i, v := range f10.Relative {
		if v < minVal {
			minVal, minIdx = v, i
		}
	}
	if minIdx == 0 {
		t.Fatalf("FLUSH should not be optimal: %v", f10.Relative)
	}
	last := len(f10.Relative) - 1
	if minIdx == last {
		t.Fatalf("finest-grained FIFO should not be optimal at pressure 10: %v", f10.Relative)
	}
	// FIFO's overhead turns back up at the fine end.
	if f10.Relative[last] <= minVal {
		t.Fatalf("expected upturn at FIFO: min %g, FIFO %g", minVal, f10.Relative[last])
	}
}

func TestFig11FineGrainDegradesUnderPressure(t *testing.T) {
	s := getSuite(t)
	f11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	fifo := f11.Relative[len(f11.Relative)-1]
	n := len(fifo)
	// Figure 11: fine-grained FIFO's relative position degrades as
	// pressure rises (it starts far below FLUSH and climbs toward/past it).
	if fifo[n-1] <= fifo[0] {
		t.Fatalf("FIFO/FLUSH should rise with pressure: %v", fifo)
	}
}

func TestFig12LinkDensity(t *testing.T) {
	s := getSuite(t)
	f12, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Benchmarks) != 20 {
		t.Fatalf("benchmarks = %d", len(f12.Benchmarks))
	}
	// Paper: ~1.7 outbound links per superblock on average.
	if f12.OverallMean < 1.3 || f12.OverallMean > 2.1 {
		t.Fatalf("mean links = %g, want ~1.7", f12.OverallMean)
	}
	// Paper: back-pointer table ~11.5% of cache size.
	if f12.BackPtrPctOfCache < 4 || f12.BackPtrPctOfCache > 20 {
		t.Fatalf("back-pointer footprint = %g%%, want ~11.5%%", f12.BackPtrPctOfCache)
	}
}

func TestFig13InterUnitGrowth(t *testing.T) {
	s := getSuite(t)
	f13, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if f13.InterPct[0] != 0 {
		t.Fatalf("FLUSH inter-unit links must be 0%%, got %g", f13.InterPct[0])
	}
	// 2 units: the paper reports 24.3%; accept a generous band.
	if f13.InterPct[1] < 5 || f13.InterPct[1] > 45 {
		t.Fatalf("2-unit inter-links = %g%%, want ~24%%", f13.InterPct[1])
	}
	last := len(f13.InterPct) - 1
	// Monotone growth toward fine grains, yet below 100% (self-links).
	for i := 2; i <= last; i++ {
		if f13.InterPct[i] < f13.InterPct[i-1]-2 {
			t.Fatalf("inter-unit %% should grow: %v", f13.InterPct)
		}
	}
	if f13.InterPct[last] >= 100 {
		t.Fatal("self-links keep the FIFO fraction below 100%")
	}
}

func TestFig14LinksPullPoliciesTowardFlush(t *testing.T) {
	s := getSuite(t)
	f10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	f14, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	// Link maintenance costs FLUSH nothing and everyone else something,
	// so every non-FLUSH relative overhead moves up (closer to FLUSH).
	for i := 1; i < len(f14.Relative); i++ {
		if f14.Relative[i] < f10.Relative[i]-1e-9 {
			t.Fatalf("policy %s: link costs should not lower relative overhead (%g -> %g)",
				f14.Policies[i], f10.Relative[i], f14.Relative[i])
		}
	}
}

func TestFig15SameTrendAsFig11(t *testing.T) {
	s := getSuite(t)
	f15, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	fifo := f15.Relative[len(f15.Relative)-1]
	if fifo[len(fifo)-1] <= fifo[0] {
		t.Fatalf("FIFO/FLUSH with links should rise with pressure: %v", fifo)
	}
}

func TestSec53DoubleDigitReductions(t *testing.T) {
	s := getSuite(t)
	s53, err := s.Sec53()
	if err != nil {
		t.Fatal(err)
	}
	if len(s53.Benchmarks) != 20 {
		t.Fatalf("benchmarks = %d", len(s53.Benchmarks))
	}
	// The cache-stressed benchmarks see double-digit reductions (the
	// paper: crafty 19.33%, twolf 19.79%).
	best := 0.0
	for _, r := range s53.ReductionPct {
		if r > best {
			best = r
		}
	}
	// At full scale the cache-stressed benchmarks reach double digits
	// (crafty ~34%); the 5%-scale suite used in tests compresses the
	// effect but it must remain clearly present.
	if best < 5 {
		t.Fatalf("best reduction %g%%, expected a clear effect", best)
	}
	if !strings.Contains(s53.Table().String(), "crafty") {
		t.Fatal("table missing crafty")
	}
}

func TestTable2ChainingCatastrophe(t *testing.T) {
	s := getSuite(t)
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 11 {
		t.Fatalf("Table 2 rows = %d, want 11", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		// Every benchmark slows by at least ~2x; the paper's range is
		// 447%..3357%.
		if row.SlowdownPct < 100 {
			t.Errorf("%s: slowdown %g%% too small", row.Benchmark, row.SlowdownPct)
		}
		if row.SlowdownPct > 20000 {
			t.Errorf("%s: slowdown %g%% absurdly large", row.Benchmark, row.SlowdownPct)
		}
	}
	if !strings.Contains(t2.Table().String(), "Slowdown") {
		t.Fatal("Table 2 render broken")
	}
}

func TestRunAllProducesFullReport(t *testing.T) {
	s := getSuite(t)
	var b strings.Builder
	if err := s.RunAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, marker := range []string{
		"Table 1", "Figure 3", "Figure 4", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Equation 3", "Figure 10", "Figure 11",
		"Figure 12", "Table 2", "Figure 13", "Equation 4", "Figure 14",
		"Figure 15", "Section 5.3",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("RunAll output missing %q", marker)
		}
	}
}
