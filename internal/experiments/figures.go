package experiments

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/papi"
	"dynocache/internal/report"
	"dynocache/internal/sim"
	"dynocache/internal/stats"
	"dynocache/internal/workload"
)

// Table1 reproduces the benchmark table: name, hot-superblock count,
// description.
func (s *Suite) Table1() *report.Table {
	t := report.NewTable("Table 1. Benchmarks (hot superblocks managed by the code cache)",
		"Name", "Superblocks", "Description")
	for i, p := range s.profiles {
		t.AddRowf(p.Name, s.traces[i].NumBlocks(), p.Description)
	}
	return t
}

// Fig3Result carries the per-suite superblock size distributions.
type Fig3Result struct {
	SPEC    *stats.Histogram
	Windows *stats.Histogram
}

// Fig3 reproduces the size-distribution figure: right-skewed histograms,
// with Windows regions larger than SPEC.
func (s *Suite) Fig3() (*Fig3Result, error) {
	specH, err := stats.NewHistogram(0, 2000, 25)
	if err != nil {
		return nil, err
	}
	winH, err := stats.NewHistogram(0, 4000, 25)
	if err != nil {
		return nil, err
	}
	for i, p := range s.profiles {
		h := specH
		if p.Suite == workload.SuiteWindows {
			h = winH
		}
		for _, size := range s.traces[i].Sizes() {
			h.Observe(size)
		}
	}
	return &Fig3Result{SPEC: specH, Windows: winH}, nil
}

// Fig4 reproduces the median superblock sizes per benchmark.
func (s *Suite) Fig4() *report.Table {
	t := report.NewTable("Figure 4. Median superblock size (bytes)",
		"Benchmark", "Suite", "Median")
	for i, p := range s.profiles {
		t.AddRowf(p.Name, p.Suite.String(), fmt.Sprintf("%.0f", s.traces[i].MedianSize()))
	}
	return t
}

// Fig6Result carries the unified miss rate per policy at pressure 2.
type Fig6Result struct {
	Policies  []string
	MissRates []float64
}

// Fig6 reproduces miss rates across eviction granularities at cache
// pressure 2 (Equation 1 weighting).
func (s *Suite) Fig6() (*Fig6Result, error) {
	sw, err := s.Sweep(2)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Policies: s.PolicyNames()}
	res.MissRates = make([]float64, 0, len(res.Policies))
	for p := range s.Policies() {
		res.MissRates = append(res.MissRates, sw.UnifiedMissRate(p))
	}
	return res, nil
}

// Chart renders the figure.
func (r *Fig6Result) Chart() *report.BarChart {
	c := report.NewBarChart("Figure 6. Miss rates at varying granularities (pressure 2)")
	for i, p := range r.Policies {
		c.Add(p, r.MissRates[i])
	}
	return c
}

// Fig7Result carries miss rates per policy per pressure.
type Fig7Result struct {
	Policies  []string
	Pressures []int
	// Rates[p][k] is the unified miss rate of policy p at pressure k.
	Rates [][]float64
}

// Fig7 reproduces miss rates as cache pressure increases.
func (s *Suite) Fig7() (*Fig7Result, error) {
	res := &Fig7Result{Policies: s.PolicyNames(), Pressures: s.cfg.Pressures}
	res.Rates = make([][]float64, len(res.Policies))
	for p := range res.Rates {
		res.Rates[p] = make([]float64, 0, len(res.Pressures))
	}
	for _, pressure := range s.cfg.Pressures {
		sw, err := s.Sweep(pressure)
		if err != nil {
			return nil, err
		}
		for p := range res.Policies {
			res.Rates[p] = append(res.Rates[p], sw.UnifiedMissRate(p))
		}
	}
	return res, nil
}

// Series renders the figure.
func (r *Fig7Result) Series() *report.Series {
	xs := make([]string, len(r.Pressures))
	for i, p := range r.Pressures {
		xs[i] = fmt.Sprintf("%d", p)
	}
	se := report.NewSeries("Figure 7. Miss rates under increasing cache pressure", "policy", xs...)
	for i, name := range r.Policies {
		_ = se.Set(name, r.Rates[i])
	}
	return se
}

// Fig8Result carries eviction invocations relative to fine-grained FIFO.
type Fig8Result struct {
	Policies []string
	// Relative[p] = invocations(p) / invocations(FIFO), in percent.
	Relative []float64
	Absolute []uint64
}

// Fig8 reproduces the relative number of eviction-mechanism invocations at
// pressure 2 (baseline: finest-grained FIFO = 100%).
func (s *Suite) Fig8() (*Fig8Result, error) {
	sw, err := s.Sweep(2)
	if err != nil {
		return nil, err
	}
	policies := s.Policies()
	base := sw.TotalEvictionInvocations(len(policies) - 1)
	if base == 0 {
		return nil, fmt.Errorf("experiments: fine-grained FIFO recorded no evictions at pressure 2")
	}
	res := &Fig8Result{Policies: s.PolicyNames()}
	res.Relative = make([]float64, 0, len(policies))
	res.Absolute = make([]uint64, 0, len(policies))
	for p := range policies {
		n := sw.TotalEvictionInvocations(p)
		res.Absolute = append(res.Absolute, n)
		res.Relative = append(res.Relative, 100*float64(n)/float64(base))
	}
	return res, nil
}

// Chart renders the figure.
func (r *Fig8Result) Chart() *report.BarChart {
	c := report.NewBarChart("Figure 8. Evictions relative to finest-grained FIFO (percent)")
	for i, p := range r.Policies {
		c.Add(p, r.Relative[i])
	}
	return c
}

// FitResult pairs a recovered regression with its published counterpart.
type FitResult struct {
	Name                       string
	Fit                        stats.LinearFit
	PaperSlope, PaperIntercept float64
	Samples                    int
}

// Table renders the comparison.
func (f *FitResult) Table() *report.Table {
	t := report.NewTable(f.Name, "quantity", "measured", "paper")
	t.AddRowf("slope", f.Fit.Slope, f.PaperSlope)
	t.AddRowf("intercept", f.Fit.Intercept, f.PaperIntercept)
	t.AddRowf("R^2", f.Fit.R2, 1.0)
	t.AddRowf("samples", f.Samples, ">10000")
	return t
}

// Fig9 reproduces the eviction-overhead regression (Equation 2): it runs a
// pressured fine-grained simulation with instrumentation enabled, collects
// >10,000 eviction samples, prices them with the simulated PAPI harness,
// and fits the least-squares trendline.
func (s *Suite) Fig9() (*FitResult, error) {
	ins := papi.New(0xF19)
	var samples []core.EvictionSample
	// Mix fine-grained and medium-grained evictions so sizes span single
	// superblocks up to whole units, as the paper's mixed log did.
	for _, pol := range []core.Policy{{Kind: core.PolicyFine}, {Kind: core.PolicyUnits, Units: 64}} {
		for _, tr := range s.traces {
			res, err := sim.Run(tr, pol, 8, sim.Options{RecordSamples: true, Verify: s.cfg.Verify})
			if err != nil {
				return nil, err
			}
			samples = append(samples, res.Samples...)
			if len(samples) > 60000 {
				break
			}
		}
	}
	xs, ys := ins.EvictionLog(samples)
	fit, err := papi.Fit(xs, ys)
	if err != nil {
		return nil, err
	}
	return &FitResult{
		Name: "Figure 9 / Equation 2: eviction overhead (instructions vs bytes)",
		Fit:  fit, PaperSlope: 2.77, PaperIntercept: 3055, Samples: len(xs),
	}, nil
}

// Eq3 reproduces the miss-overhead regression: regeneration cost vs
// superblock size.
func (s *Suite) Eq3() (*FitResult, error) {
	ins := papi.New(0xE3)
	var sizes []int
	for _, tr := range s.traces {
		// Iterate in sorted-ID order: the simulated PAPI noise sequence is
		// consumed per call, so map-order iteration would pair sizes with
		// noise draws nondeterministically and jitter the fit run-to-run.
		for _, id := range tr.SortedIDs() {
			sizes = append(sizes, tr.Blocks[id].Size)
		}
	}
	// Replicate if a scaled-down suite has too few blocks.
	for len(sizes) > 0 && len(sizes) < 10001 {
		sizes = append(sizes, sizes[:min(len(sizes), 10001-len(sizes))]...)
	}
	xs, ys := ins.MissLog(sizes)
	fit, err := papi.Fit(xs, ys)
	if err != nil {
		return nil, err
	}
	return &FitResult{
		Name: "Equation 3: cache miss overhead (instructions vs bytes)",
		Fit:  fit, PaperSlope: 75.4, PaperIntercept: 1922, Samples: len(xs),
	}, nil
}

// Eq4 reproduces the unlinking regression: instructions vs number of
// incoming links removed from an eviction candidate.
func (s *Suite) Eq4() (*FitResult, error) {
	ins := papi.New(0xE4)
	// Link-count sample: the per-candidate inbound inter-unit link counts
	// follow the workload link distribution; draw from it directly.
	r := stats.NewRand(0xE4A, 2)
	counts := make([]int, 12000)
	for i := range counts {
		counts[i] = r.Geometric(1.7)
	}
	xs, ys := ins.UnlinkLog(counts)
	fit, err := papi.Fit(xs, ys)
	if err != nil {
		return nil, err
	}
	return &FitResult{
		Name: "Equation 4: unlinking overhead (instructions vs links)",
		Fit:  fit, PaperSlope: 296.5, PaperIntercept: 95.7, Samples: len(xs),
	}, nil
}

// OverheadResult carries relative overhead per policy (FLUSH = 1.0).
type OverheadResult struct {
	Title        string
	Policies     []string
	Relative     []float64
	IncludeLinks bool
	Pressure     int
}

// Chart renders the result.
func (r *OverheadResult) Chart() *report.BarChart {
	c := report.NewBarChart(r.Title)
	for i, p := range r.Policies {
		c.Add(p, r.Relative[i])
	}
	return c
}

// relativeOverhead computes total overhead per policy normalized to FLUSH.
func (s *Suite) relativeOverhead(pressure int, includeLinks bool, title string) (*OverheadResult, error) {
	sw, err := s.Sweep(pressure)
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{Title: title, Policies: s.PolicyNames(), IncludeLinks: includeLinks, Pressure: pressure}
	flush := sw.TotalOverhead(0, s.cfg.Model, includeLinks)
	if flush == 0 {
		return nil, fmt.Errorf("experiments: FLUSH overhead is zero at pressure %d", pressure)
	}
	res.Relative = make([]float64, 0, len(res.Policies))
	for p := range s.Policies() {
		res.Relative = append(res.Relative, sw.TotalOverhead(p, s.cfg.Model, includeLinks)/flush)
	}
	return res, nil
}

// Fig10 reproduces relative overhead (miss + eviction penalties, no link
// maintenance) at cache size maxCache/10.
func (s *Suite) Fig10() (*OverheadResult, error) {
	return s.relativeOverhead(10, false,
		"Figure 10. Relative overhead of eviction granularities (maxCache/10, no link costs)")
}

// Fig11Result carries relative overhead per policy per pressure.
type Fig11Result struct {
	Title     string
	Policies  []string
	Pressures []int
	Relative  [][]float64 // [policy][pressureIdx], FLUSH = 1.0 at each pressure
}

// Series renders the result.
func (r *Fig11Result) Series() *report.Series {
	xs := make([]string, len(r.Pressures))
	for i, p := range r.Pressures {
		xs[i] = fmt.Sprintf("%d", p)
	}
	se := report.NewSeries(r.Title, "policy", xs...)
	for i, name := range r.Policies {
		_ = se.Set(name, r.Relative[i])
	}
	return se
}

func (s *Suite) overheadUnderPressure(includeLinks bool, title string) (*Fig11Result, error) {
	res := &Fig11Result{Title: title, Policies: s.PolicyNames(), Pressures: s.cfg.Pressures}
	res.Relative = make([][]float64, len(res.Policies))
	for p := range res.Relative {
		res.Relative[p] = make([]float64, 0, len(res.Pressures))
	}
	for _, pressure := range s.cfg.Pressures {
		oh, err := s.relativeOverhead(pressure, includeLinks, "")
		if err != nil {
			return nil, err
		}
		for p := range res.Policies {
			res.Relative[p] = append(res.Relative[p], oh.Relative[p])
		}
	}
	return res, nil
}

// Fig11 reproduces relative overhead as cache pressure increases (no link
// maintenance costs).
func (s *Suite) Fig11() (*Fig11Result, error) {
	return s.overheadUnderPressure(false,
		"Figure 11. Relative overhead under increasing pressure (no link costs)")
}

// Fig12Result carries outbound-link densities and the back-pointer table
// footprint.
type Fig12Result struct {
	Benchmarks []string
	MeanLinks  []float64
	// OverallMean is the access-weighted mean outbound links per block;
	// the paper reports 1.7.
	OverallMean float64
	// BackPtrPctOfCache is the back-pointer table footprint as a
	// percentage of cache size at 16 bytes/link; the paper reports 11.5%.
	BackPtrPctOfCache float64
}

// Fig12 reproduces the outbound-link census.
func (s *Suite) Fig12() (*Fig12Result, error) {
	res := &Fig12Result{}
	var totLinks, totBlocks float64
	for _, tr := range s.traces {
		res.Benchmarks = append(res.Benchmarks, tr.Name)
		m := tr.MeanOutboundLinks()
		res.MeanLinks = append(res.MeanLinks, m)
		totLinks += m * float64(tr.NumBlocks())
		totBlocks += float64(tr.NumBlocks())
	}
	res.OverallMean = totLinks / totBlocks
	// Footprint: 16 bytes per link (an 8-byte pointer and an 8-byte list
	// link, §5.1) against the bytes a typical cached block occupies. The
	// paper's 11.5% figure corresponds to ~1.7 links over a ~235-byte
	// superblock; we average the per-benchmark ratios.
	var pctSum float64
	for i, tr := range s.traces {
		pctSum += 100 * 16 * res.MeanLinks[i] / tr.MedianSize()
	}
	res.BackPtrPctOfCache = pctSum / float64(len(s.traces))
	return res, nil
}

// Chart renders the per-benchmark link densities.
func (r *Fig12Result) Chart() *report.BarChart {
	c := report.NewBarChart("Figure 12. Mean outbound links per superblock")
	for i, b := range r.Benchmarks {
		c.Add(b, r.MeanLinks[i])
	}
	return c
}

// Fig13Result carries the fraction of links crossing unit boundaries.
type Fig13Result struct {
	Policies []string
	// InterPct[p] is the mean percentage of live links that span cache
	// units under policy p at pressure 2.
	InterPct []float64
}

// Fig13 reproduces the inter-unit link fractions.
func (s *Suite) Fig13() (*Fig13Result, error) {
	sw, err := s.Sweep(2)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Policies: s.PolicyNames()}
	res.InterPct = make([]float64, 0, len(res.Policies))
	for p := range s.Policies() {
		res.InterPct = append(res.InterPct, 100*sw.MeanInterUnitLinkFraction(p))
	}
	return res, nil
}

// Chart renders the figure.
func (r *Fig13Result) Chart() *report.BarChart {
	c := report.NewBarChart("Figure 13. Links that cross cache-unit boundaries (percent)")
	for i, p := range r.Policies {
		c.Add(p, r.InterPct[i])
	}
	return c
}

// Fig14 reproduces relative overhead including link-maintenance penalties
// at cache size maxCache/10.
func (s *Suite) Fig14() (*OverheadResult, error) {
	return s.relativeOverhead(10, true,
		"Figure 14. Relative overhead including link maintenance (maxCache/10)")
}

// Fig15 reproduces relative overhead including link maintenance as
// pressure increases.
func (s *Suite) Fig15() (*Fig11Result, error) {
	return s.overheadUnderPressure(true,
		"Figure 15. Relative overhead including link maintenance under pressure")
}

// Sec53Result carries per-benchmark execution-time reductions from
// switching FLUSH -> 8-unit FIFO at pressure 10.
type Sec53Result struct {
	Benchmarks   []string
	ReductionPct []float64
}

// Sec53 reproduces the Section 5.3 execution-time analysis: calculated
// instruction overheads, CPI, and clock frequency convert overhead savings
// into total-run-time reductions (the paper reports 19.33% for crafty and
// 19.79% for twolf).
func (s *Suite) Sec53() (*Sec53Result, error) {
	sw, err := s.Sweep(10)
	if err != nil {
		return nil, err
	}
	idx8, err := s.policyIndex("8-unit")
	if err != nil {
		return nil, err
	}
	res := &Sec53Result{}
	for b, name := range sw.Benchmarks {
		rf := sw.Results[0][b]
		r8 := sw.Results[idx8][b]
		app := s.cfg.AppInstrPerAccess * float64(rf.Stats.Accesses)
		tf := s.cfg.Model.ExecutionTime(app, rf.Overhead(s.cfg.Model, true))
		t8 := s.cfg.Model.ExecutionTime(app, r8.Overhead(s.cfg.Model, true))
		res.Benchmarks = append(res.Benchmarks, name)
		res.ReductionPct = append(res.ReductionPct, 100*(tf-t8)/tf)
	}
	return res, nil
}

// Table renders the result.
func (r *Sec53Result) Table() *report.Table {
	t := report.NewTable("Section 5.3. Execution-time reduction, FLUSH -> 8-unit FIFO at pressure 10",
		"Benchmark", "Reduction %")
	for i, b := range r.Benchmarks {
		t.AddRowf(b, fmt.Sprintf("%.2f", r.ReductionPct[i]))
	}
	return t
}
