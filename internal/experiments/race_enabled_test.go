//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; slow
// single-goroutine tests consult it to stay inside the package timeout.
const raceEnabled = true
