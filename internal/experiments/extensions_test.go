package experiments

import (
	"strings"
	"testing"
)

func TestMultiprogExperiment(t *testing.T) {
	s := getSuite(t)
	r, err := s.Multiprog("gzip", "vpr", "crafty", "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != len(r.MissRates) || len(r.Policies) != len(r.RelOverhead) {
		t.Fatalf("shape mismatch: %+v", r)
	}
	if r.RelOverhead[0] != 1.0 {
		t.Fatalf("FLUSH should normalize to 1, got %g", r.RelOverhead[0])
	}
	// Sharing a cache must cost more misses than running solo at the same
	// per-program pressure (the intro's motivation).
	if r.SharedMissRate8 <= r.SoloBlendMissRate {
		t.Fatalf("shared %g should exceed solo blend %g", r.SharedMissRate8, r.SoloBlendMissRate)
	}
	// Miss rates still decline with granularity on the shared cache.
	if r.MissRates[0] <= r.MissRates[len(r.MissRates)-1] {
		t.Fatalf("FLUSH should miss more than FIFO on the shared cache: %v", r.MissRates)
	}
	if !strings.Contains(r.Table().String(), "Multiprogramming") {
		t.Fatal("table render broken")
	}
}

func TestMultiprogDefaultNames(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Multiprog(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Multiprog("nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestSensitivityRobustness(t *testing.T) {
	s := getSuite(t)
	r, err := s.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BestPolicy) != len(r.Factors) {
		t.Fatalf("shape mismatch: %+v", r)
	}
	// The conclusion holds around the measured coefficients: FLUSH wins
	// only if invocation costs are inflated well beyond the measurements,
	// and plain FIFO only if they are deflated well below them.
	for i, best := range r.BestPolicy {
		if best == "FLUSH" && r.Factors[i] <= 1 {
			t.Errorf("factor %gx: FLUSH should not be optimal at measured costs", r.Factors[i])
		}
		if best == "FIFO" && r.Factors[i] >= 1 {
			t.Errorf("factor %gx: FIFO should not win at full/raised costs", r.Factors[i])
		}
	}
	// FIFO's relative position must worsen monotonically as invocation
	// costs grow.
	for i := 1; i < len(r.FIFORelative); i++ {
		if r.FIFORelative[i] < r.FIFORelative[i-1] {
			t.Fatalf("FIFO/FLUSH should grow with cost factor: %v", r.FIFORelative)
		}
	}
	if !strings.Contains(r.Table().String(), "Sensitivity") {
		t.Fatal("table render broken")
	}
}

func TestAblationsSummary(t *testing.T) {
	s := getSuite(t)
	r, err := s.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	// §3.3: fragmentation is a real problem for LRU with variable-size
	// entries.
	if r.LRUFragEvictionPct <= 5 {
		t.Errorf("LRU fragmentation evictions = %.1f%%, expected a visible effect", r.LRUFragEvictionPct)
	}
	// Compaction carries a real cost (the paper's one-line dismissal).
	if r.CompactionOverheadPct <= 0 {
		t.Errorf("compaction overhead %.2f%% should be positive", r.CompactionOverheadPct)
	}
	// The adaptive controller must stay in the neighbourhood of the best
	// static configuration.
	if r.AdaptiveVsBestStatic < 1.0 || r.AdaptiveVsBestStatic > 1.6 {
		t.Errorf("adaptive/best = %.3f, expected within [1.0, 1.6]", r.AdaptiveVsBestStatic)
	}
	if r.PreemptiveVsFlush <= 0 || r.GenerationalVsFlat <= 0 {
		t.Errorf("degenerate ratios: %+v", r)
	}
	// Sampling must track exact recency within the differential bound
	// internal/check enforces (±20% relative plus slack), and cannot
	// plausibly beat exact LRU by a wide margin either.
	if r.ApproxLRUVsExact < 0.75 || r.ApproxLRUVsExact > 1.3 {
		t.Errorf("approx-LRU/exact miss-rate ratio = %.3f, expected within [0.75, 1.3]", r.ApproxLRUVsExact)
	}
	if !strings.Contains(r.Table().String(), "ablations") {
		t.Fatal("table render broken")
	}
}

func TestAppendixPerBenchmark(t *testing.T) {
	s := getSuite(t)
	r, err := s.Appendix(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 20 || len(r.FIFOOverFlush) != 20 {
		t.Fatalf("shape: %+v", r)
	}
	// Under pressure, at least a few benchmarks push FIFO past FLUSH (the
	// Figure 11 crossover, per benchmark).
	if r.CrossedCount == 0 {
		t.Fatal("no benchmark crossed at pressure 10")
	}
	// 8-unit should practically never be the worse-than-FLUSH policy.
	worse := 0
	for _, v := range r.Unit8OverFlush {
		if v > 1.02 {
			worse++
		}
	}
	if worse > len(r.Unit8OverFlush)/3 {
		t.Fatalf("8-unit worse than FLUSH on %d/20 benchmarks", worse)
	}
	if r.SPECMissRate <= 0 || r.WindowsMissRate <= 0 {
		t.Fatalf("per-suite rates missing: %+v", r)
	}
	if !strings.Contains(r.Table().String(), "Appendix") {
		t.Fatal("table render broken")
	}
}
