// Package profiling wires the standard -cpuprofile/-memprofile flags
// into runtime/pprof for the long-running commands, so a slow experiment
// run or service soak can be diagnosed with `go tool pprof` instead of
// guesswork.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty. The returned
// stop function ends the CPU profile and, when memPath is non-empty,
// writes an allocation (heap) profile taken after a final GC. Callers
// should invoke stop on every exit path that should produce profiles;
// it is safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-set statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
