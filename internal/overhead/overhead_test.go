package overhead

import (
	"math"
	"strings"
	"testing"

	"dynocache/internal/core"
)

func TestPaperCoefficients(t *testing.T) {
	m := Paper()
	// Equation 2: an eviction of 230 bytes requires ~3,690 instructions.
	got := m.EvictionCost(230, 1)
	if math.Abs(got-3692.1) > 0.5 {
		t.Fatalf("EvictionCost(230) = %g, paper says ~3690", got)
	}
	// Equation 3: a miss for a 230-byte superblock requires ~19,264.
	got = m.MissCost(230, 1)
	if math.Abs(got-19264.0) > 1 {
		t.Fatalf("MissCost(230) = %g, paper says 19,264", got)
	}
	// Equation 4 at 2 links.
	got = m.UnlinkCost(2, 1)
	if math.Abs(got-(296.5*2+95.7)) > 0.01 {
		t.Fatalf("UnlinkCost(2,1) = %g", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	m := Paper()
	m.CPI = 0
	if err := m.Validate(); err == nil {
		t.Error("zero CPI should fail")
	}
	m = Paper()
	m.ClockHz = -1
	if err := m.Validate(); err == nil {
		t.Error("negative clock should fail")
	}
}

func TestCostsAreLinearInTotals(t *testing.T) {
	// The whole-run cost must equal the sum of per-event costs; this is
	// the property that lets the simulator keep only aggregate counters.
	m := Paper()
	events := []struct{ bytes uint64 }{{100}, {250}, {431}, {16}}
	var sumIndividual float64
	var totalBytes uint64
	for _, e := range events {
		sumIndividual += m.MissCost(e.bytes, 1)
		totalBytes += e.bytes
	}
	if got := m.MissCost(totalBytes, uint64(len(events))); math.Abs(got-sumIndividual) > 1e-6 {
		t.Fatalf("aggregate %g != summed %g", got, sumIndividual)
	}
}

func TestFromStats(t *testing.T) {
	m := Paper()
	s := &core.Stats{
		Misses:                10,
		InsertedBytes:         2300,
		EvictionInvocations:   4,
		BytesEvicted:          1000,
		UnlinkEvents:          3,
		InterUnitLinksRemoved: 7,
	}
	b := m.FromStats(s, false)
	if b.Unlink != 0 {
		t.Fatal("links excluded but unlink cost nonzero")
	}
	wantMiss := 75.4*2300 + 1922*10
	wantEvict := 2.77*1000 + 3055*4
	if math.Abs(b.Miss-wantMiss) > 1e-9 || math.Abs(b.Evict-wantEvict) > 1e-9 {
		t.Fatalf("breakdown = %+v", b)
	}
	bl := m.FromStats(s, true)
	wantUnlink := 296.5*7 + 95.7*3
	if math.Abs(bl.Unlink-wantUnlink) > 1e-9 {
		t.Fatalf("unlink = %g, want %g", bl.Unlink, wantUnlink)
	}
	if bl.Total() != bl.Miss+bl.Evict+bl.Unlink {
		t.Fatal("Total is not the sum")
	}
	if !strings.Contains(bl.String(), "unlink=") {
		t.Fatalf("String() = %q", bl.String())
	}
}

func TestSecondsAndExecutionTime(t *testing.T) {
	m := Paper()
	m.CPI = 2
	m.ClockHz = 1e9
	if got := m.Seconds(5e8); got != 1.0 {
		t.Fatalf("Seconds = %g, want 1", got)
	}
	b := Breakdown{Miss: 1e9}
	if got := m.ExecutionTime(1e9, b); got != 4.0 {
		t.Fatalf("ExecutionTime = %g, want 4", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 80); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Reduction = %g, want 0.2", got)
	}
	if got := Reduction(0, 10); got != 0 {
		t.Fatalf("Reduction from zero = %g, want 0", got)
	}
	if got := Reduction(100, 120); got >= 0 {
		t.Fatalf("regression should be negative, got %g", got)
	}
}
