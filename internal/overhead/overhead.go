// Package overhead turns simulated event counts into instruction-count and
// execution-time estimates, using the analytical cost models the paper
// measured with PAPI hardware counters on DynamoRIO (Section 4.3, 5.2):
//
//	evictionOverhead = 2.77*sizeBytes + 3055      (Equation 2)
//	missOverhead     = 75.4*sizeBytes + 1922      (Equation 3)
//	unlinkingOverhead = 296.5*numLinks + 95.7     (Equation 4)
//
// Because the models are linear, whole-run costs depend only on the
// aggregate counters in core.Stats: e.g. the summed eviction cost over all
// invocations is 2.77*totalBytesEvicted + 3055*invocations.
package overhead

import (
	"fmt"

	"dynocache/internal/core"
)

// Model holds the linear cost coefficients and the machine parameters used
// to convert instructions to seconds (Section 5.3 used the measured CPI
// and the clock frequency of a 2.4 GHz Xeon).
type Model struct {
	EvictPerByte float64 // Equation 2 slope
	EvictBase    float64 // Equation 2 intercept (the dominant fixed cost)

	MissPerByte float64 // Equation 3 slope (regeneration scales with size)
	MissBase    float64 // Equation 3 intercept

	UnlinkPerLink float64 // Equation 4 slope
	UnlinkBase    float64 // Equation 4 intercept, charged per unlink event

	CPI     float64 // cycles per instruction
	ClockHz float64 // processor frequency
}

// Paper returns the model with the paper's published coefficients and the
// evaluation machine's parameters (dual-Xeon 2.4 GHz; CPI 1.0 is the
// neutral default since the paper reports only that it used "the measured
// CPI").
func Paper() Model {
	return Model{
		EvictPerByte:  2.77,
		EvictBase:     3055,
		MissPerByte:   75.4,
		MissBase:      1922,
		UnlinkPerLink: 296.5,
		UnlinkBase:    95.7,
		CPI:           1.0,
		ClockHz:       2.4e9,
	}
}

// Validate reports the first problem with the model.
func (m Model) Validate() error {
	if m.CPI <= 0 {
		return fmt.Errorf("overhead: CPI must be positive, got %g", m.CPI)
	}
	if m.ClockHz <= 0 {
		return fmt.Errorf("overhead: clock must be positive, got %g", m.ClockHz)
	}
	return nil
}

// EvictionCost returns the instructions spent on eviction invocations that
// removed totalBytes in total (Equation 2, summed).
func (m Model) EvictionCost(totalBytes, invocations uint64) float64 {
	return m.EvictPerByte*float64(totalBytes) + m.EvictBase*float64(invocations)
}

// MissCost returns the instructions spent regenerating totalBytes across
// the given number of misses (Equation 3, summed).
func (m Model) MissCost(totalBytes, misses uint64) float64 {
	return m.MissPerByte*float64(totalBytes) + m.MissBase*float64(misses)
}

// UnlinkCost returns the instructions spent removing links inbound links
// spread over events evicted blocks (Equation 4, summed).
func (m Model) UnlinkCost(links, events uint64) float64 {
	return m.UnlinkPerLink*float64(links) + m.UnlinkBase*float64(events)
}

// Breakdown decomposes a run's cache-management overhead in instructions.
type Breakdown struct {
	Miss   float64 // Equation 3 total
	Evict  float64 // Equation 2 total
	Unlink float64 // Equation 4 total (zero when links are excluded)
}

// Total returns the summed overhead instructions.
func (b Breakdown) Total() float64 { return b.Miss + b.Evict + b.Unlink }

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("miss=%.3g evict=%.3g unlink=%.3g total=%.3g",
		b.Miss, b.Evict, b.Unlink, b.Total())
}

// FromStats computes the overhead breakdown for a run. includeLinks
// selects whether unlink maintenance is charged: Figures 10-11 exclude it,
// Figures 14-15 include it.
func (m Model) FromStats(s *core.Stats, includeLinks bool) Breakdown {
	b := Breakdown{
		Miss:  m.MissCost(s.InsertedBytes, s.Misses),
		Evict: m.EvictionCost(s.BytesEvicted, s.EvictionInvocations),
	}
	if includeLinks {
		b.Unlink = m.UnlinkCost(s.InterUnitLinksRemoved, s.UnlinkEvents)
	}
	return b
}

// Seconds converts an instruction count to wall-clock time.
func (m Model) Seconds(instructions float64) float64 {
	return instructions * m.CPI / m.ClockHz
}

// ExecutionTime estimates total run time in seconds for a program that
// executes appInstructions of useful guest work plus the given
// cache-management overhead (Section 5.3's methodology: calculated
// instruction overheads, measured CPI, processor clock).
func (m Model) ExecutionTime(appInstructions float64, b Breakdown) float64 {
	return m.Seconds(appInstructions + b.Total())
}

// Reduction returns the fractional execution-time reduction achieved by
// `to` relative to `from` (Section 5.3 reports 19.33% for crafty and
// 19.79% for twolf when moving FLUSH -> 8-unit at pressure 10).
func Reduction(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return (from - to) / from
}
