package check

import (
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/stats"
)

func driveChecked(t *testing.T, c *Checked, seed uint64, n, idRange int) {
	t.Helper()
	r := stats.NewRand(seed, 5)
	sizes := make(map[core.SuperblockID]int)
	for i := 0; i < n; i++ {
		id := core.SuperblockID(r.Intn(idRange))
		size, ok := sizes[id]
		if !ok {
			size = 10 + r.Intn(120)
			sizes[id] = size
		}
		var links []core.SuperblockID
		for j := 0; j < r.Geometric(1.7) && j < 6; j++ {
			links = append(links, core.SuperblockID(r.Intn(idRange)))
		}
		if !c.Access(id) {
			if err := c.Insert(core.Superblock{ID: id, Size: size, Links: links}); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}

// TestOracleFollowsMigration migrates the whole span between wrapped
// FIFO-family caches mid-stream; the oracle must stay in lockstep (full
// Stats equality, manifest cross-check) through every hop.
func TestOracleFollowsMigration(t *testing.T) {
	policies := []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyFine},
	}
	for _, p := range policies {
		t.Run(p.String(), func(t *testing.T) {
			mk := func() *Checked {
				inner, err := p.New(1000)
				if err != nil {
					t.Fatal(err)
				}
				c := Wrap(inner, p)
				if !c.HasOracle() {
					t.Fatal("FIFO family must have an oracle")
				}
				return c
			}
			cur := mk()
			for hop := 0; hop < 3; hop++ {
				driveChecked(t, cur, uint64(13+hop), 2000, 300)
				st, err := cur.ExtractSpan(0, 300)
				if err != nil {
					t.Fatalf("hop %d extract: %v", hop, err)
				}
				if err := cur.Err(); err != nil {
					t.Fatalf("hop %d source wall: %v", hop, err)
				}
				if !cur.HasOracle() {
					t.Fatal("FIFO oracle must survive migration, not detach")
				}
				next := mk()
				if err := next.InstallSpan(0, st); err != nil {
					t.Fatalf("hop %d install: %v", hop, err)
				}
				if err := next.Err(); err != nil {
					t.Fatalf("hop %d dest wall: %v", hop, err)
				}
				cur = next
			}
			driveChecked(t, cur, 99, 2000, 300)
			if err := cur.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOracleMigrationSharedSpans exercises the append install path (two
// interleaved spans, partial extraction) under the oracle differ.
func TestOracleMigrationSharedSpans(t *testing.T) {
	p := core.Policy{Kind: core.PolicyFine}
	mk := func() *Checked {
		inner, err := p.New(4000)
		if err != nil {
			t.Fatal(err)
		}
		return Wrap(inner, p)
	}
	src, dst := mk(), mk()
	// Interleave two spans on the source; pre-load the destination so the
	// install cannot adopt and must append (and possibly evict).
	for i := core.SuperblockID(0); i < 60; i++ {
		if err := src.Insert(core.Superblock{ID: i, Size: 20}); err != nil {
			t.Fatal(err)
		}
		links := []core.SuperblockID{1000 + (i+1)%60}
		if err := src.Insert(core.Superblock{ID: 1000 + i, Size: 25, Links: links}); err != nil {
			t.Fatal(err)
		}
	}
	for i := core.SuperblockID(0); i < 80; i++ {
		if err := dst.Insert(core.Superblock{ID: 5000 + i, Size: 40}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := src.ExtractSpan(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("source wall after partial extraction: %v", err)
	}
	if err := dst.InstallSpan(2000, st); err != nil {
		t.Fatal(err)
	}
	if err := dst.Err(); err != nil {
		t.Fatalf("destination wall after append install: %v", err)
	}
	driveChecked(t, dst, 5, 3000, 120)
	if err := dst.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLRUOracleDetachesOnMigration: reference models without a migration
// mirror detach (keeping the invariant wall) instead of diverging.
func TestLRUOracleDetachesOnMigration(t *testing.T) {
	p := core.Policy{Kind: core.PolicyLRU}
	inner, err := p.New(1000)
	if err != nil {
		t.Fatal(err)
	}
	c := Wrap(inner, p)
	if !c.HasOracle() {
		t.Fatal("LRU should start with an oracle")
	}
	driveChecked(t, c, 21, 1000, 200)
	st, err := c.ExtractSpan(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.HasOracle() {
		t.Fatal("LRU oracle should detach on migration")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallSpan(0, st); err != nil {
		t.Fatal(err)
	}
	// The invariant wall stays active after detach.
	driveChecked(t, c, 22, 1000, 200)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
