package check

import (
	"fmt"

	"dynocache/internal/core"
)

// Oracle is a deliberately naive reference simulator for the FIFO policy
// family (FLUSH, n-unit, fine-grained FIFO). It shares no code with the
// dense-ID engine in package core: residency is a map keyed by
// SuperblockID, the FIFO order is a plain slice of live entries with no
// dead prefix, and the link table is map-backed. Everything is re-derived
// from the paper's semantics (§3.2-3.3) rather than from the engine, so a
// divergence between the two is evidence of a bug in one of them — almost
// always the optimized one.
//
// The oracle maintains the full core.Stats counter set, which makes
// whole-struct equality against the engine the single strongest check the
// package performs: any residency, eviction-order, eviction-amount, or
// link-bookkeeping defect eventually lands in a counter.
type Oracle struct {
	mode     core.PolicyKind // PolicyFlush, PolicyUnits, or PolicyFine
	capacity int
	unitSize int // eviction quantum for PolicyUnits

	head, tail int64
	fifo       []oracleEntry // live blocks, oldest first
	resident   map[core.SuperblockID]oracleEntry
	// liveBytes tracks the occupied-byte sum so the per-operation
	// comparison stays O(1); tallyBytes re-derives it for self-checks.
	liveBytes int

	links *oracleLinks
	stats core.Stats
}

type oracleEntry struct {
	id   core.SuperblockID
	voff int64
	size int
}

// NewOracle builds a reference simulator for the given policy over a cache
// of exactly the given capacity. The capacity must already honor the
// policy's own rounding (core.NewUnits floors to an equal-unit multiple);
// callers normally pass cache.Capacity() of the engine under test.
// Policies outside the FIFO family have no oracle and return an error.
func NewOracle(p core.Policy, capacity int) (*Oracle, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("check: oracle capacity must be positive, got %d", capacity)
	}
	o := &Oracle{
		mode:     p.Kind,
		capacity: capacity,
		resident: make(map[core.SuperblockID]oracleEntry),
		links:    newOracleLinks(),
	}
	switch p.Kind {
	case core.PolicyFlush:
		o.unitSize = capacity
	case core.PolicyUnits:
		if p.Units < 2 || p.Units > capacity {
			return nil, fmt.Errorf("check: bad unit count %d for capacity %d", p.Units, capacity)
		}
		if capacity%p.Units != 0 {
			return nil, fmt.Errorf("check: capacity %d not a multiple of %d units (pass the engine's rounded capacity)", capacity, p.Units)
		}
		o.unitSize = capacity / p.Units
	case core.PolicyFine:
		o.unitSize = 0
	default:
		return nil, fmt.Errorf("check: policy %s has no oracle", p)
	}
	return o, nil
}

// Stats exposes the oracle's cumulative counters.
func (o *Oracle) Stats() *core.Stats { return &o.stats }

// Contains reports residency without touching counters.
func (o *Oracle) Contains(id core.SuperblockID) bool {
	_, ok := o.resident[id]
	return ok
}

// Resident returns the number of cached superblocks.
func (o *Oracle) Resident() int { return len(o.resident) }

// ResidentBytes returns the bytes currently occupied.
func (o *Oracle) ResidentBytes() int { return o.liveBytes }

// forEachResident visits every resident block.
func (o *Oracle) forEachResident(fn func(id core.SuperblockID)) {
	for id := range o.resident {
		fn(id)
	}
}

// tallyBytes re-derives the occupied-byte sum from the residency map,
// cross-checking the running counter the fast path reports.
func (o *Oracle) tallyBytes() int {
	total := 0
	for _, e := range o.resident {
		total += e.size
	}
	return total
}

// PatchedLinks returns the number of currently patched chaining links.
func (o *Oracle) PatchedLinks() int { return o.links.patchedCount }

// BackPtrTableBytes mirrors the engine's estimate: 16 bytes per patched
// link, except FLUSH caches which need no table at all.
func (o *Oracle) BackPtrTableBytes() int {
	if o.mode == core.PolicyFlush {
		return 0
	}
	return 16 * o.links.patchedCount
}

// Access records a hit or miss and returns whether id was resident.
func (o *Oracle) Access(id core.SuperblockID) bool {
	o.stats.Accesses++
	if o.Contains(id) {
		o.stats.Hits++
		return true
	}
	o.stats.Misses++
	return false
}

// Insert places a superblock, evicting per the policy's granularity. The
// caller must only present blocks the engine accepted (valid size, not
// already resident); the oracle re-derives everything else.
func (o *Oracle) Insert(sb core.Superblock) {
	if o.head+int64(sb.Size)-o.tail > int64(o.capacity) {
		need := o.head + int64(sb.Size) - int64(o.capacity)
		var frontier int64
		switch o.mode {
		case core.PolicyFlush:
			frontier = o.head
		case core.PolicyUnits:
			q := int64(o.unitSize)
			frontier = (need + q - 1) / q * q
		default: // PolicyFine: free exactly the minimum sufficient bytes
			frontier = need
		}
		o.evictBelow(frontier)
	}
	e := oracleEntry{id: sb.ID, voff: o.head, size: sb.Size}
	o.head += int64(sb.Size)
	o.fifo = append(o.fifo, e)
	o.resident[sb.ID] = e
	o.liveBytes += sb.Size
	o.stats.InsertedBlocks++
	o.stats.InsertedBytes += uint64(sb.Size)
	for _, to := range sb.Links {
		o.links.declare(sb.ID, to, o.Contains, &o.stats)
	}
	o.links.onInsert(sb.ID, &o.stats)
}

// AddLink declares a chaining link from a resident block.
func (o *Oracle) AddLink(from, to core.SuperblockID) {
	o.links.declare(from, to, o.Contains, &o.stats)
}

// Flush empties the cache as one eviction invocation.
func (o *Oracle) Flush() {
	if len(o.resident) == 0 {
		return
	}
	o.evictBelow(o.head)
}

// evictBelow removes, as one invocation, every block starting below
// frontier — the oldest blocks first, by construction of the FIFO slice.
func (o *Oracle) evictBelow(frontier int64) {
	victims := make(map[core.SuperblockID]struct{})
	var order []core.SuperblockID
	var bytes int64
	n := 0
	for n < len(o.fifo) && o.fifo[n].voff < frontier {
		e := o.fifo[n]
		victims[e.id] = struct{}{}
		order = append(order, e.id)
		bytes += int64(e.size)
		delete(o.resident, e.id)
		o.liveBytes -= e.size
		n++
	}
	if n == 0 {
		return
	}
	o.fifo = append([]oracleEntry(nil), o.fifo[n:]...)
	if len(o.fifo) > 0 {
		o.tail = o.fifo[0].voff
	} else {
		o.tail = o.head
		o.stats.FullFlushes++
	}
	o.stats.EvictionInvocations++
	o.stats.BlocksEvicted += uint64(len(order))
	o.stats.BytesEvicted += uint64(bytes)
	o.stats.UnlinkEvents += o.links.unlinkEventsFor(victims)
	o.links.onEvict(order, victims, &o.stats)
}

// oracleLinks is a from-scratch map-backed model of superblock chaining
// (§3.1): patched links, the back-pointer table, and pending declarations
// waiting for an absent target.
type oracleLinks struct {
	patched  map[core.SuperblockID]map[core.SuperblockID]struct{} // from -> targets
	backPtrs map[core.SuperblockID]map[core.SuperblockID]struct{} // to -> sources
	pendIn   map[core.SuperblockID]map[core.SuperblockID]struct{} // absent to -> waiting sources

	patchedCount int
}

func newOracleLinks() *oracleLinks {
	return &oracleLinks{
		patched:  make(map[core.SuperblockID]map[core.SuperblockID]struct{}),
		backPtrs: make(map[core.SuperblockID]map[core.SuperblockID]struct{}),
		pendIn:   make(map[core.SuperblockID]map[core.SuperblockID]struct{}),
	}
}

func addTo(m map[core.SuperblockID]map[core.SuperblockID]struct{}, k, v core.SuperblockID) {
	set, ok := m[k]
	if !ok {
		set = make(map[core.SuperblockID]struct{})
		m[k] = set
	}
	set[v] = struct{}{}
}

func (l *oracleLinks) patch(from, to core.SuperblockID) {
	if _, dup := l.patched[from][to]; dup {
		return
	}
	addTo(l.patched, from, to)
	addTo(l.backPtrs, to, from)
	l.patchedCount++
}

func (l *oracleLinks) declare(from, to core.SuperblockID, resident func(core.SuperblockID) bool, stats *core.Stats) {
	if resident(to) {
		l.patch(from, to)
		stats.LinksPatched++
	} else {
		addTo(l.pendIn, to, from)
	}
}

func (l *oracleLinks) onInsert(id core.SuperblockID, stats *core.Stats) {
	waiting := l.pendIn[id]
	if len(waiting) == 0 {
		return
	}
	delete(l.pendIn, id)
	for from := range waiting {
		l.patch(from, id)
		stats.LinksPatched++
		stats.PendingRelinks++
	}
}

func (l *oracleLinks) unlinkEventsFor(victims map[core.SuperblockID]struct{}) uint64 {
	var events uint64
	for id := range victims {
		for from := range l.backPtrs[id] {
			if _, also := victims[from]; !also {
				events++
				break
			}
		}
	}
	return events
}

// onEvict removes a set of blocks in one invocation. Inbound links from
// co-evicted sources die for free; links from survivors are unpatched one
// by one (Equation 4's cost) and reinstated as pending so the source
// re-chains on regeneration.
func (l *oracleLinks) onEvict(order []core.SuperblockID, victims map[core.SuperblockID]struct{}, stats *core.Stats) {
	for _, id := range order {
		for from := range l.backPtrs[id] {
			if _, also := victims[from]; also {
				stats.IntraUnitLinksFlushed++
				continue
			}
			delete(l.patched[from], id)
			l.patchedCount--
			stats.InterUnitLinksRemoved++
			addTo(l.pendIn, id, from)
		}
		delete(l.backPtrs, id)
	}
	for _, id := range order {
		for to := range l.patched[id] {
			if _, also := victims[to]; !also {
				delete(l.backPtrs[to], id)
			}
			l.patchedCount--
		}
		delete(l.patched, id)
		// Scrub the evicted block's own pending declarations.
		for to, set := range l.pendIn {
			delete(set, id)
			if len(set) == 0 {
				delete(l.pendIn, to)
			}
		}
	}
}
