package check

import (
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// metamorphicWorkloads synthesizes a few calibrated Table 1 benchmarks at
// small scale — one SPEC-like, one Windows-like — plus an adversarial
// random trace, so the relations run against realistic size and link
// distributions, not just uniform noise.
func metamorphicWorkloads(t *testing.T) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, name := range []string{"gzip", "word"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := p.Scaled(0.05).Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	out = append(out, randomTrace(t, "meta-random", 250, 25000, 0xA11CE))
	return out
}

func TestMetamorphicPermutationInvariance(t *testing.T) {
	for _, tr := range metamorphicWorkloads(t) {
		capacity := tr.TotalBytes() / 6
		for _, p := range oraclePolicies() {
			if err := CheckPermutationInvariance(tr, p, capacity, 0xD15C0); err != nil {
				t.Errorf("%s: %v", tr.Name, err)
			}
		}
	}
}

func TestMetamorphicFlushCapacityMonotone(t *testing.T) {
	for _, tr := range metamorphicWorkloads(t) {
		for _, div := range []int{3, 6, 10} {
			if err := CheckFlushCapacityMonotone(tr, tr.TotalBytes()/div); err != nil {
				t.Errorf("%s (capacity /%d): %v", tr.Name, div, err)
			}
		}
	}
}

func TestMetamorphicConcatSteadyState(t *testing.T) {
	for _, tr := range metamorphicWorkloads(t) {
		capacity := tr.TotalBytes() / 6
		for _, p := range oraclePolicies() {
			if err := CheckConcatSteadyState(tr, p, capacity); err != nil {
				t.Errorf("%s: %v", tr.Name, err)
			}
		}
	}
}

func TestPermuteIDsPreservesShape(t *testing.T) {
	tr := randomTrace(t, "shape", 120, 4000, 42)
	perm, err := PermuteIDs(tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if perm.NumBlocks() != tr.NumBlocks() || perm.TotalBytes() != tr.TotalBytes() {
		t.Fatalf("permutation changed the block table: %d/%d blocks, %d/%d bytes",
			perm.NumBlocks(), tr.NumBlocks(), perm.TotalBytes(), tr.TotalBytes())
	}
	if len(perm.Accesses) != len(tr.Accesses) {
		t.Fatalf("permutation changed the access count: %d vs %d", len(perm.Accesses), len(tr.Accesses))
	}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	// The permuted trace must itself pass the oracle differ.
	if err := Diff(perm, core.Policy{Kind: core.PolicyUnits, Units: 8}, tr.TotalBytes()/4); err != nil {
		t.Fatal(err)
	}
}

func TestConcatDoublesAccesses(t *testing.T) {
	tr := randomTrace(t, "double", 60, 900, 43)
	doubled, err := Concat(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(doubled.Accesses) != 2*len(tr.Accesses) {
		t.Fatalf("concat accesses = %d, want %d", len(doubled.Accesses), 2*len(tr.Accesses))
	}
	if err := doubled.Validate(); err != nil {
		t.Fatal(err)
	}
}
