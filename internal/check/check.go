// Package check is the verification layer around the dense-ID cache
// engine: an invariant wall, a naive reference simulator (the oracle), a
// trace differ, and metamorphic trace relations.
//
// The package exists because every performance PR rewrites state machines
// (residency tables, FIFO unit order, link/back-pointer symmetry) whose
// correctness the paper's event counts silently depend on. The shape here
// is the standard one for validating a fast kernel: a slow, obviously
// correct model runs alongside, and structural invariants are re-checked
// after every mutation, so the optimized engine is never trusted on its
// own word. See DESIGN.md §9 for the invariant catalogue and how each maps
// onto a defect class.
package check

import (
	"fmt"
	"reflect"

	"dynocache/internal/core"
)

// Violation describes the first failed check of a verified run, with
// enough context to replay it: which operation, on which superblock, at
// which step, and what the engine and the reference disagreed about.
type Violation struct {
	Step  uint64 // 1-based operation count on the wrapper
	Op    string // "Access", "Insert", "AddLink", "Flush"
	ID    core.SuperblockID
	Field string // what diverged or which invariant broke
	Got   string // engine-side value
	Want  string // oracle-side / required value
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: step %d (%s id=%d): %s: engine=%s want=%s",
		v.Step, v.Op, v.ID, v.Field, v.Got, v.Want)
}

// structuralChecker is implemented by caches that can self-validate
// (FIFOCache, LRUCache and the policies embedding them).
type structuralChecker interface {
	CheckInvariants() error
}

// patchedCounter is implemented by caches exposing their patched-link
// count (every in-tree policy).
type patchedCounter interface {
	PatchedLinks() int
}

// referenceOracle is a policy's independent reference model, replayed in
// lockstep with the engine. Implementations must share no state with the
// engine under test; everything is re-derived from the paper's semantics.
type referenceOracle interface {
	Access(id core.SuperblockID) bool
	Insert(sb core.Superblock)
	AddLink(from, to core.SuperblockID)
	Flush()
	Stats() *core.Stats
	Contains(id core.SuperblockID) bool
	Resident() int
	ResidentBytes() int
	PatchedLinks() int
	BackPtrTableBytes() int
	// forEachResident visits every oracle-resident block (a block in two
	// generations may be visited twice); tallyBytes re-derives the
	// occupied-byte sum for the oracle's own ledger self-check.
	forEachResident(func(id core.SuperblockID))
	tallyBytes() int
}

// generationalParts is what the generational oracle needs from the cache
// under test to mirror its configuration: the live sub-cache geometries
// (post-rounding) and the promotion threshold.
type generationalParts interface {
	Nursery() *core.FIFOCache
	Tenured() *core.FIFOCache
	PromotionThreshold() int
}

// Checked wraps a core.Cache and validates it after every operation. Two
// independent walls run, as far as the wrapped policy supports them:
//
//   - the invariant wall: occupancy never exceeds capacity, counter
//     algebra stays consistent (hits+misses=accesses, evicted ≤ inserted),
//     a freshly inserted block is resident, and — for caches implementing
//     CheckInvariants — the structural self-checks (queue tiling, no block
//     resident twice, link/back-pointer symmetry, no dangling inter-unit
//     links after unit flushes);
//   - the oracle differ: for the FIFO family (FLUSH, n-unit, fine FIFO),
//     LRU, and the generational composite, a map-based reference simulator
//     replays every operation and the two must agree on residency,
//     resident counts and bytes, patched links, and the entire core.Stats
//     counter set. FIFO circular eviction order, minimum-sufficient-bytes
//     fine eviction, LRU victim recency and first-fit placement, and
//     generational promotion are enforced here: any wrong victim choice
//     desynchronizes the residency sets or the BytesEvicted counter.
//
// The wrapper is transparent: it never mutates the inner cache beyond
// delegating, so a verified run produces byte-identical results to an
// unchecked one. The first violation is recorded (with full context) and
// surfaced through Err and through the next Insert error return; later
// checks are skipped so the original divergence is never masked.
type Checked struct {
	inner  core.Cache
	oracle referenceOracle // nil when the policy has no reference model
	strict structuralChecker
	// evictLEInsert enables the "evicted <= inserted" counter identity; it
	// holds for single-arena policies but not for the generational cache,
	// whose promotions re-insert blocks inside the sub-caches without
	// raising the wrapper-level insertion counters.
	evictLEInsert bool
	// importedBlocks/importedBytes count state that arrived via
	// InstallSpan: relocated blocks widen the eviction-algebra identity,
	// since they can be evicted here without an insertion here.
	importedBlocks uint64
	importedBytes  uint64
	step           uint64
	first          *Violation
}

var _ core.Cache = (*Checked)(nil)

// Wrap builds the verification wrapper for a cache instantiated from the
// given policy. Every policy gets the invariant wall; the FIFO family,
// LRU, and the generational composite additionally get the oracle differ.
func Wrap(inner core.Cache, p core.Policy) *Checked {
	c := &Checked{inner: inner, evictLEInsert: p.Kind != core.PolicyGenerational}
	if sc, ok := inner.(structuralChecker); ok {
		c.strict = sc
	}
	switch p.Kind {
	case core.PolicyFlush, core.PolicyUnits, core.PolicyFine:
		// The engine may have rounded the capacity (NewUnits floors to an
		// equal-unit multiple); build the oracle over the same arena.
		if o, err := NewOracle(p, inner.Capacity()); err == nil {
			c.oracle = o
		}
	case core.PolicyLRU:
		if o, err := newLRUOracle(inner.Capacity()); err == nil {
			c.oracle = o
		}
	case core.PolicyGenerational:
		// Mirror the engine's live geometry (nursery/tenured capacities
		// after rounding, tenured unit count, promotion threshold) instead
		// of re-deriving it from the policy spec, so the oracle cannot
		// drift on integer-rounding details.
		if g, ok := inner.(generationalParts); ok {
			if o, err := newGenerationalOracle(g); err == nil {
				c.oracle = o
			}
		}
	}
	return c
}

// HasOracle reports whether the wrapped policy has a reference model.
func (c *Checked) HasOracle() bool { return c.oracle != nil }

// Err returns the first recorded violation, or nil.
func (c *Checked) Err() error {
	if c.first == nil {
		return nil
	}
	return c.first
}

// Unwrap exposes the verified cache.
func (c *Checked) Unwrap() core.Cache { return c.inner }

func (c *Checked) fail(op string, id core.SuperblockID, field, got, want string) {
	if c.first != nil {
		return
	}
	c.first = &Violation{Step: c.step, Op: op, ID: id, Field: field, Got: got, Want: want}
}

// Name implements core.Cache.
func (c *Checked) Name() string { return c.inner.Name() }

// Capacity implements core.Cache.
func (c *Checked) Capacity() int { return c.inner.Capacity() }

// Units implements core.Cache.
func (c *Checked) Units() int { return c.inner.Units() }

// Stats implements core.Cache.
func (c *Checked) Stats() *core.Stats { return c.inner.Stats() }

// Contains implements core.Cache.
func (c *Checked) Contains(id core.SuperblockID) bool { return c.inner.Contains(id) }

// Resident implements core.Cache.
func (c *Checked) Resident() int { return c.inner.Resident() }

// ResidentBytes implements core.Cache.
func (c *Checked) ResidentBytes() int { return c.inner.ResidentBytes() }

// LinkCensus implements core.Cache.
func (c *Checked) LinkCensus() (intra, inter int) { return c.inner.LinkCensus() }

// BackPtrTableBytes implements core.Cache.
func (c *Checked) BackPtrTableBytes() int { return c.inner.BackPtrTableBytes() }

// Samples forwards to the wrapped cache when it records eviction samples.
func (c *Checked) Samples() []core.EvictionSample {
	if s, ok := c.inner.(interface{ Samples() []core.EvictionSample }); ok {
		return s.Samples()
	}
	return nil
}

// Access implements core.Cache, stepping the oracle in lockstep.
func (c *Checked) Access(id core.SuperblockID) bool {
	hit := c.inner.Access(id)
	c.step++
	if c.first == nil && c.oracle != nil {
		if ohit := c.oracle.Access(id); ohit != hit {
			c.fail("Access", id, "hit/miss", fmt.Sprintf("%v", hit), fmt.Sprintf("%v", ohit))
		}
		c.compare("Access", id)
	}
	c.checkAlgebra("Access", id)
	return hit
}

// Insert implements core.Cache. A successful insert is mirrored into the
// oracle and followed by the full wall (cheap algebra, oracle comparison,
// structural self-checks, residency-set sweep). Any previously recorded
// violation is surfaced through the error return so replay loops stop at
// the first divergence.
func (c *Checked) Insert(sb core.Superblock) error {
	err := c.inner.Insert(sb)
	c.step++
	if err != nil {
		// validateInsert rejects before mutating: the engine and the oracle
		// are still in sync; just report the engine's error.
		return err
	}
	if c.first == nil && c.oracle != nil {
		c.oracle.Insert(sb)
		c.compare("Insert", sb.ID)
		c.sweepResidency("Insert", sb.ID)
	}
	if c.first == nil && !c.inner.Contains(sb.ID) {
		c.fail("Insert", sb.ID, "freshly inserted block resident", "false", "true")
	}
	c.checkAlgebra("Insert", sb.ID)
	c.checkStructure("Insert", sb.ID)
	return c.Err()
}

// AddLink implements core.Cache.
func (c *Checked) AddLink(from, to core.SuperblockID) error {
	err := c.inner.AddLink(from, to)
	c.step++
	if err != nil {
		return err
	}
	if c.first == nil && c.oracle != nil {
		c.oracle.AddLink(from, to)
		c.compare("AddLink", from)
	}
	return c.Err()
}

// Flush implements core.Cache.
func (c *Checked) Flush() {
	c.inner.Flush()
	c.step++
	if c.first == nil && c.oracle != nil {
		c.oracle.Flush()
		c.compare("Flush", 0)
		c.sweepResidency("Flush", 0)
	}
	c.checkAlgebra("Flush", 0)
	c.checkStructure("Flush", 0)
}

// compare cross-checks the engine against the oracle after one operation.
func (c *Checked) compare(op string, id core.SuperblockID) {
	if c.first != nil {
		return
	}
	o := c.oracle
	if got, want := c.inner.Contains(id), o.Contains(id); got != want {
		c.fail(op, id, "residency of touched block", fmt.Sprintf("%v", got), fmt.Sprintf("%v", want))
		return
	}
	if got, want := c.inner.Resident(), o.Resident(); got != want {
		c.fail(op, id, "resident block count", fmt.Sprint(got), fmt.Sprint(want))
		return
	}
	if got, want := c.inner.ResidentBytes(), o.ResidentBytes(); got != want {
		c.fail(op, id, "resident bytes", fmt.Sprint(got), fmt.Sprint(want))
		return
	}
	if pc, ok := c.inner.(patchedCounter); ok {
		if got, want := pc.PatchedLinks(), o.PatchedLinks(); got != want {
			c.fail(op, id, "patched link count", fmt.Sprint(got), fmt.Sprint(want))
			return
		}
	}
	if got, want := c.inner.BackPtrTableBytes(), o.BackPtrTableBytes(); got != want {
		c.fail(op, id, "back-pointer table bytes", fmt.Sprint(got), fmt.Sprint(want))
		return
	}
	if got, want := *c.inner.Stats(), *o.Stats(); got != want {
		field, g, w := firstStatsDiff(got, want)
		c.fail(op, id, "stats counter "+field, g, w)
	}
}

// sweepResidency verifies the resident sets agree as sets, not just in
// cardinality: every oracle-resident block must be engine-resident, which
// together with equal counts makes the sets identical (and rules out a
// block resident twice on the oracle side of the ledger).
func (c *Checked) sweepResidency(op string, id core.SuperblockID) {
	if c.first != nil {
		return
	}
	c.oracle.forEachResident(func(rid core.SuperblockID) {
		if c.first == nil && !c.inner.Contains(rid) {
			c.fail(op, id, fmt.Sprintf("oracle-resident block %d in engine", rid), "absent", "resident")
		}
	})
	if c.first != nil {
		return
	}
	if got, want := c.oracle.ResidentBytes(), c.oracle.tallyBytes(); got != want {
		c.fail(op, id, "oracle byte counter vs tally", fmt.Sprint(got), fmt.Sprint(want))
	}
}

// checkAlgebra enforces the counter identities every policy must satisfy.
func (c *Checked) checkAlgebra(op string, id core.SuperblockID) {
	if c.first != nil {
		return
	}
	if got, cap := c.inner.ResidentBytes(), c.inner.Capacity(); got > cap {
		c.fail(op, id, "occupancy within capacity", fmt.Sprint(got), fmt.Sprintf("<= %d", cap))
		return
	}
	s := c.inner.Stats()
	if s.Hits+s.Misses != s.Accesses {
		c.fail(op, id, "hits+misses == accesses",
			fmt.Sprintf("%d+%d", s.Hits, s.Misses), fmt.Sprint(s.Accesses))
		return
	}
	if !c.evictLEInsert {
		return
	}
	if s.BlocksEvicted > s.InsertedBlocks+c.importedBlocks {
		c.fail(op, id, "blocks evicted <= inserted+imported", fmt.Sprint(s.BlocksEvicted), fmt.Sprintf("<= %d", s.InsertedBlocks+c.importedBlocks))
		return
	}
	if s.BytesEvicted > s.InsertedBytes+c.importedBytes {
		c.fail(op, id, "bytes evicted <= inserted+imported", fmt.Sprint(s.BytesEvicted), fmt.Sprintf("<= %d", s.InsertedBytes+c.importedBytes))
	}
}

// checkStructure runs the cache's own structural self-validation, when it
// has one. Insert and Flush are the only operations that evict, so this
// covers every state transition that rearranges the arena.
func (c *Checked) checkStructure(op string, id core.SuperblockID) {
	if c.first != nil || c.strict == nil {
		return
	}
	if err := c.strict.CheckInvariants(); err != nil {
		c.fail(op, id, "structural invariants", err.Error(), "no violation")
	}
}

// firstStatsDiff names the first differing counter between two Stats
// values (both are flat uint64 structs).
func firstStatsDiff(got, want core.Stats) (field, g, w string) {
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	t := gv.Type()
	for i := 0; i < t.NumField(); i++ {
		if gv.Field(i).Uint() != wv.Field(i).Uint() {
			return t.Field(i).Name, fmt.Sprint(gv.Field(i).Uint()), fmt.Sprint(wv.Field(i).Uint())
		}
	}
	return "(none)", "", ""
}
