package check

import (
	"fmt"
	"sort"

	"dynocache/internal/core"
)

// lruOracle is the naive reference simulator for the LRU policy. Like the
// FIFO Oracle, it shares no code with the dense-ID engine: residency is a
// map, recency is a plain most-recent-first slice, and — crucially — the
// first-fit allocator is re-derived on every placement by sorting the
// occupied blocks and scanning the gaps between them, instead of
// maintaining a coalesced hole list. The two formulations are
// mathematically identical (the engine's coalesced holes ARE the gaps
// between occupied regions), so any divergence in placement, victim
// recency order, or eviction accounting surfaces as a residency or
// counter mismatch.
type lruOracle struct {
	capacity int

	resident  map[core.SuperblockID]oracleRegion
	recency   []core.SuperblockID // most recently used first
	liveBytes int

	links *oracleLinks
	stats core.Stats
}

type oracleRegion struct{ off, size int }

var _ referenceOracle = (*lruOracle)(nil)

func newLRUOracle(capacity int) (*lruOracle, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("check: oracle capacity must be positive, got %d", capacity)
	}
	return &lruOracle{
		capacity: capacity,
		resident: make(map[core.SuperblockID]oracleRegion),
		links:    newOracleLinks(),
	}, nil
}

// Stats exposes the oracle's cumulative counters.
func (o *lruOracle) Stats() *core.Stats { return &o.stats }

// Contains reports residency without touching counters.
func (o *lruOracle) Contains(id core.SuperblockID) bool {
	_, ok := o.resident[id]
	return ok
}

// Resident returns the number of cached superblocks.
func (o *lruOracle) Resident() int { return len(o.resident) }

// ResidentBytes returns the bytes currently occupied.
func (o *lruOracle) ResidentBytes() int { return o.liveBytes }

func (o *lruOracle) forEachResident(fn func(id core.SuperblockID)) {
	for id := range o.resident {
		fn(id)
	}
}

func (o *lruOracle) tallyBytes() int {
	total := 0
	for _, e := range o.resident {
		total += e.size
	}
	return total
}

// PatchedLinks returns the number of currently patched chaining links.
func (o *lruOracle) PatchedLinks() int { return o.links.patchedCount }

// BackPtrTableBytes mirrors the engine's estimate: 16 bytes per link.
func (o *lruOracle) BackPtrTableBytes() int { return 16 * o.links.patchedCount }

// Access records a hit or miss; a hit moves the block to the recency
// front.
func (o *lruOracle) Access(id core.SuperblockID) bool {
	o.stats.Accesses++
	if !o.Contains(id) {
		o.stats.Misses++
		return false
	}
	o.stats.Hits++
	o.promoteRecency(id)
	return true
}

func (o *lruOracle) promoteRecency(id core.SuperblockID) {
	for i, r := range o.recency {
		if r == id {
			copy(o.recency[1:i+1], o.recency[:i])
			o.recency[0] = id
			return
		}
	}
}

// alloc re-derives the free regions from the occupied blocks and returns
// the first-fit offset.
func (o *lruOracle) alloc(size int) (int, bool) {
	occ := make([]oracleRegion, 0, len(o.resident))
	for _, e := range o.resident {
		occ = append(occ, e)
	}
	sort.Slice(occ, func(i, j int) bool { return occ[i].off < occ[j].off })
	at := 0
	for _, r := range occ {
		if r.off-at >= size {
			return at, true
		}
		at = r.off + r.size
	}
	if o.capacity-at >= size {
		return at, true
	}
	return 0, false
}

// Insert places a superblock, evicting least-recently-used blocks one at
// a time (retrying the allocator after each) until a gap fits. The caller
// must only present blocks the engine accepted.
func (o *lruOracle) Insert(sb core.Superblock) {
	off, ok := o.alloc(sb.Size)
	if !ok {
		victims := make(map[core.SuperblockID]struct{})
		var order []core.SuperblockID
		var bytes int64
		for {
			k := len(o.recency)
			if k == 0 {
				break // unreachable: the engine validated size <= capacity
			}
			victim := o.recency[k-1]
			o.recency = o.recency[:k-1]
			e := o.resident[victim]
			delete(o.resident, victim)
			o.liveBytes -= e.size
			victims[victim] = struct{}{}
			order = append(order, victim)
			bytes += int64(e.size)
			if off, ok = o.alloc(sb.Size); ok {
				break
			}
		}
		o.stats.EvictionInvocations++
		o.stats.BlocksEvicted += uint64(len(order))
		o.stats.BytesEvicted += uint64(bytes)
		if len(o.resident) == 0 {
			o.stats.FullFlushes++
		}
		o.stats.UnlinkEvents += o.links.unlinkEventsFor(victims)
		o.links.onEvict(order, victims, &o.stats)
	}
	o.resident[sb.ID] = oracleRegion{off: off, size: sb.Size}
	o.recency = append(o.recency, 0)
	copy(o.recency[1:], o.recency)
	o.recency[0] = sb.ID
	o.liveBytes += sb.Size
	o.stats.InsertedBlocks++
	o.stats.InsertedBytes += uint64(sb.Size)
	for _, to := range sb.Links {
		o.links.declare(sb.ID, to, o.Contains, &o.stats)
	}
	o.links.onInsert(sb.ID, &o.stats)
}

// AddLink declares a chaining link from a resident block.
func (o *lruOracle) AddLink(from, to core.SuperblockID) {
	o.links.declare(from, to, o.Contains, &o.stats)
}

// Flush empties the cache as one eviction invocation, in recency order.
func (o *lruOracle) Flush() {
	if len(o.resident) == 0 {
		return
	}
	victims := make(map[core.SuperblockID]struct{})
	order := append([]core.SuperblockID(nil), o.recency...)
	var bytes int64
	for _, id := range order {
		victims[id] = struct{}{}
		bytes += int64(o.resident[id].size)
	}
	o.resident = make(map[core.SuperblockID]oracleRegion)
	o.recency = o.recency[:0]
	o.liveBytes = 0
	o.stats.EvictionInvocations++
	o.stats.BlocksEvicted += uint64(len(order))
	o.stats.BytesEvicted += uint64(bytes)
	o.stats.FullFlushes++
	o.stats.UnlinkEvents += o.links.unlinkEventsFor(victims)
	o.links.onEvict(order, victims, &o.stats)
}
