package check

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// Diff replays a trace through the dense-ID engine and the map-based
// oracle in lockstep and returns nil only if every operation agreed on
// residency, occupancy, patched links, and the full core.Stats counter
// set. On divergence it returns an error naming the trace, the access
// index, the superblock, and the first field the two engines disagreed on
// — everything needed to shrink and replay the failure.
//
// The FIFO policy family (FLUSH, n-unit, fine FIFO), LRU, and the
// generational composite have oracles; other policies return an error
// immediately.
func Diff(tr *trace.Trace, policy core.Policy, capacity int) error {
	cache, err := policy.New(capacity)
	if err != nil {
		return fmt.Errorf("check: diff %q: %w", tr.Name, err)
	}
	chk := Wrap(cache, policy)
	if !chk.HasOracle() {
		return fmt.Errorf("check: policy %s has no oracle to diff against", policy)
	}
	for i, id := range tr.Accesses {
		sb, ok := tr.Blocks[id]
		if !ok {
			return fmt.Errorf("check: diff %q: access %d references undefined block %d", tr.Name, i, id)
		}
		if !chk.Access(id) {
			if err := chk.Insert(sb); err != nil {
				return fmt.Errorf("check: diff %q (policy %s, capacity %d) diverged at access %d: %w",
					tr.Name, policy, capacity, i, err)
			}
		}
		if err := chk.Err(); err != nil {
			return fmt.Errorf("check: diff %q (policy %s, capacity %d) diverged at access %d: %w",
				tr.Name, policy, capacity, i, err)
		}
	}
	return nil
}

// DiffAll diffs the trace against every oracle-backed policy in the
// granularity sweep at the given capacity, returning the first failure.
func DiffAll(tr *trace.Trace, maxUnits, capacity int) error {
	for _, p := range core.GranularitySweep(maxUnits) {
		if err := Diff(tr, p, capacity); err != nil {
			return err
		}
	}
	return nil
}
