package check

import (
	"fmt"

	"dynocache/internal/core"
)

// Migration support for the verification wrapper: Checked implements
// core.SpanMigrator when the wrapped cache does, and the FIFO-family
// oracle follows every extraction/installation in lockstep — including
// the cross-check that the engine's extracted manifest (IDs, sizes,
// eviction order) matches the reference model's own view of the span.
//
// Reference models without a migration mirror (LRU, generational) detach
// on the first migration: the invariant wall (structural self-checks +
// counter algebra) stays up, but lockstep differencing ends. The service
// layer's double-entry ledger and solo-replay equality still cover those
// policies end to end.

// spanMirror is implemented by reference oracles that can follow a live
// span migration.
type spanMirror interface {
	extractSpan(c *Checked, base, span core.SuperblockID, st *core.TenantState)
	installSpan(base core.SuperblockID, st *core.TenantState)
}

var _ core.SpanMigrator = (*Checked)(nil)

// ExtractSpan implements core.SpanMigrator. Violations are recorded and
// surfaced through Err / the next Insert, exactly like the other
// operations — never through this error return, which reports only the
// engine's own refusal (in which case nothing was mutated on either
// side).
func (c *Checked) ExtractSpan(base, span core.SuperblockID) (*core.TenantState, error) {
	mig, ok := c.inner.(core.SpanMigrator)
	if !ok {
		return nil, fmt.Errorf("check: policy %q does not support span migration", c.inner.Name())
	}
	st, err := mig.ExtractSpan(base, span)
	c.step++
	if err != nil {
		return nil, err
	}
	if c.first == nil && c.oracle != nil {
		if om, ok := c.oracle.(spanMirror); ok {
			om.extractSpan(c, base, span, st)
			c.compare("ExtractSpan", base)
			c.sweepResidency("ExtractSpan", base)
		} else {
			c.oracle = nil
		}
	}
	c.checkAlgebra("ExtractSpan", base)
	c.checkStructure("ExtractSpan", base)
	return st, nil
}

// InstallSpan implements core.SpanMigrator. The imported block/byte
// totals widen the eviction-algebra identity: relocated blocks can be
// evicted here without ever having been inserted here.
func (c *Checked) InstallSpan(base core.SuperblockID, st *core.TenantState) error {
	mig, ok := c.inner.(core.SpanMigrator)
	if !ok {
		return fmt.Errorf("check: policy %q does not support span migration", c.inner.Name())
	}
	if err := mig.InstallSpan(base, st); err != nil {
		return err
	}
	c.step++
	c.importedBlocks += uint64(len(st.Blocks))
	c.importedBytes += uint64(st.Bytes)
	if c.first == nil && c.oracle != nil {
		if om, ok := c.oracle.(spanMirror); ok {
			om.installSpan(base, st)
			c.compare("InstallSpan", base)
			c.sweepResidency("InstallSpan", base)
		} else {
			c.oracle = nil
		}
	}
	c.checkAlgebra("InstallSpan", base)
	c.checkStructure("InstallSpan", base)
	return nil
}

// extractSpan mirrors a span departure in the FIFO-family oracle and
// cross-checks the engine's extracted manifest against the model's own
// view of the span: same blocks, same sizes, same eviction order.
func (o *Oracle) extractSpan(c *Checked, base, span core.SuperblockID, st *core.TenantState) {
	inSpan := func(id core.SuperblockID) bool { return id >= base && id-base < span }
	victims := make(map[core.SuperblockID]struct{})
	var order []oracleEntry
	var kept []oracleEntry
	var removed int64
	for _, e := range o.fifo {
		if inSpan(e.id) {
			victims[e.id] = struct{}{}
			order = append(order, e)
			removed += int64(e.size)
			delete(o.resident, e.id)
			o.liveBytes -= e.size
			continue
		}
		e.voff -= removed
		o.resident[e.id] = e
		kept = append(kept, e)
	}
	o.fifo = kept
	o.head -= removed
	if len(kept) > 0 {
		o.tail = kept[0].voff
	} else {
		o.tail = o.head
	}
	if len(order) != len(st.Blocks) {
		c.fail("ExtractSpan", base, "extracted manifest length",
			fmt.Sprint(len(st.Blocks)), fmt.Sprint(len(order)))
	} else {
		for i, e := range order {
			b := st.Blocks[i]
			if base+b.ID != e.id || int(b.Size) != e.size {
				c.fail("ExtractSpan", base, fmt.Sprintf("extracted manifest entry %d", i),
					fmt.Sprintf("id=%d size=%d", base+b.ID, b.Size),
					fmt.Sprintf("id=%d size=%d", e.id, e.size))
				break
			}
		}
	}
	o.links.onExtract(base, span, victims, &o.stats)
}

// installSpan mirrors a span arrival: exact-geometry adoption when the
// arena is empty and the state is contiguous (matching the engine's
// condition), the append path with real evictions otherwise. The link
// relation is rebuilt silently — no patch-cost charges — mirroring
// bindMigrated.
func (o *Oracle) installSpan(base core.SuperblockID, st *core.TenantState) {
	if len(o.resident) == 0 {
		o.fifo = o.fifo[:0]
		if st.Contiguous() {
			o.tail = st.Blocks[0].Off
			o.head = o.tail
			for _, b := range st.Blocks {
				e := oracleEntry{id: base + b.ID, voff: b.Off, size: int(b.Size)}
				o.head += int64(b.Size)
				o.fifo = append(o.fifo, e)
				o.resident[e.id] = e
				o.liveBytes += e.size
				o.links.rebuildSilent(base, b, o.Contains)
			}
			return
		}
	}
	for _, b := range st.Blocks {
		size := int(b.Size)
		if o.head+int64(size)-o.tail > int64(o.capacity) {
			need := o.head + int64(size) - int64(o.capacity)
			var frontier int64
			switch o.mode {
			case core.PolicyFlush:
				frontier = o.head
			case core.PolicyUnits:
				q := int64(o.unitSize)
				frontier = (need + q - 1) / q * q
			default:
				frontier = need
			}
			o.evictBelow(frontier)
		}
		e := oracleEntry{id: base + b.ID, voff: o.head, size: size}
		o.head += int64(size)
		o.fifo = append(o.fifo, e)
		o.resident[e.id] = e
		o.liveBytes += e.size
		o.links.rebuildSilent(base, b, o.Contains)
	}
}

// onExtract severs the span boundary in the map-backed link model with
// the engine's exact accounting: departing blocks' outbound patched
// edges die free; survivors' patched edges into the span are unpatched
// one at a time (InterUnitLinksRemoved, one UnlinkEvent per departing
// block with at least one) and NOT reinstated as pending; pending
// declarations crossing the boundary sever silently; intra-span edges
// travel with the state.
func (l *oracleLinks) onExtract(base, span core.SuperblockID, victims map[core.SuperblockID]struct{}, stats *core.Stats) {
	inSpan := func(id core.SuperblockID) bool { return id >= base && id-base < span }
	for id := range victims {
		for to := range l.patched[id] {
			if _, also := victims[to]; !also {
				delete(l.backPtrs[to], id)
				if len(l.backPtrs[to]) == 0 {
					delete(l.backPtrs, to)
				}
			}
			l.patchedCount--
		}
		delete(l.patched, id)
	}
	var events uint64
	for id := range victims {
		unlinked := false
		for from := range l.backPtrs[id] {
			if _, also := victims[from]; also {
				continue
			}
			delete(l.patched[from], id)
			if len(l.patched[from]) == 0 {
				delete(l.patched, from)
			}
			l.patchedCount--
			stats.InterUnitLinksRemoved++
			unlinked = true
		}
		delete(l.backPtrs, id)
		if unlinked {
			events++
		}
	}
	stats.UnlinkEvents += events
	for to, set := range l.pendIn {
		if inSpan(to) {
			// Sources are either departing (their intra-span pending rows
			// travel with the state) or out-of-span survivors (severed
			// free, matching the engine's edge removal).
			delete(l.pendIn, to)
			continue
		}
		for from := range set {
			if _, dep := victims[from]; dep {
				delete(set, from)
			}
		}
		if len(set) == 0 {
			delete(l.pendIn, to)
		}
	}
}

// rebuildSilent re-establishes one relocated block's link rows without
// patch-cost charges, mirroring declareSilent + onInsertSilent.
func (l *oracleLinks) rebuildSilent(base core.SuperblockID, b core.MigratedBlock, resident func(core.SuperblockID) bool) {
	id := base + b.ID
	for _, to := range b.Links {
		t := base + to
		if resident(t) {
			l.patch(id, t)
		} else {
			addTo(l.pendIn, t, id)
		}
	}
	if waiting := l.pendIn[id]; len(waiting) > 0 {
		delete(l.pendIn, id)
		for from := range waiting {
			l.patch(from, id)
		}
	}
}
