package check

import (
	"testing"

	"dynocache/internal/core"
)

// approxLRUMaxRelDelta and approxLRUMaxAbsDelta bound how far sampling
// LRU's miss rate may drift from exact LRU's across the pressure sweep:
// at most 20% relative plus two points absolute, in either direction.
// The operating point (8 probes) lands the victim in the stalest ~11% of
// residents in expectation, and the measured drift on the calibrated
// workloads stays under +10% relative (the full-scale word trace at
// pressure 2 measures LRU 24.7% vs approx-LRU 27.1% — +9.7% relative);
// the bound leaves headroom for the small-scale test traces without
// letting the approximation degrade toward random eviction. The
// lower bound matters too: a sampler beating exact LRU by more than the
// tolerance would mean the probes are not sampling the recency
// distribution they claim to.
const (
	approxLRUMaxRelDelta = 0.20
	approxLRUMaxAbsDelta = 0.02
)

// TestApproxLRUMissRateBound is the differential contract between
// sampling and exact LRU: across workloads and cache pressures, the
// miss rates must track within the documented bound.
func TestApproxLRUMissRateBound(t *testing.T) {
	for _, tr := range metamorphicWorkloads(t) {
		for _, div := range []int{3, 6, 10} {
			capacity := floorCapacity(tr, tr.TotalBytes()/div)
			_, lru, err := replayStats(tr, core.Policy{Kind: core.PolicyLRU}, capacity, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, approx, err := replayStats(tr, core.Policy{Kind: core.PolicyApproxLRU}, capacity, 0)
			if err != nil {
				t.Fatal(err)
			}
			exact, sampled := lru.MissRate(), approx.MissRate()
			hi := exact*(1+approxLRUMaxRelDelta) + approxLRUMaxAbsDelta
			lo := exact*(1-approxLRUMaxRelDelta) - approxLRUMaxAbsDelta
			t.Logf("%s /%d: exact %.4f sampled %.4f", tr.Name, div, exact, sampled)
			if sampled > hi || sampled < lo {
				t.Errorf("%s at capacity/%d: approx-LRU miss rate %.4f outside [%.4f, %.4f] around exact %.4f",
					tr.Name, div, sampled, lo, hi, exact)
			}
			// The shared counter algebra must hold for both: every miss
			// regenerates exactly one block.
			if approx.Misses != approx.InsertedBlocks {
				t.Errorf("%s at capacity/%d: approx-LRU misses %d != inserted blocks %d",
					tr.Name, div, approx.Misses, approx.InsertedBlocks)
			}
		}
	}
}

// TestApproxLRUDeterministic pins bit-stable replay: the fixed-seed
// sampler must produce identical counters on repeated runs.
func TestApproxLRUDeterministic(t *testing.T) {
	tr := randomTrace(t, "approx-det", 200, 20000, 0x5EED)
	capacity := tr.TotalBytes() / 5
	_, first, err := replayStats(tr, core.Policy{Kind: core.PolicyApproxLRU}, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := replayStats(tr, core.Policy{Kind: core.PolicyApproxLRU}, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		field, g, w := firstStatsDiff(second, first)
		t.Fatalf("repeat replay changed %s (%s vs %s)", field, g, w)
	}
}

// TestApproxLRUPermutationInvariance verifies the sampler's decisions
// are equivariant under ID permutation: probes select positions in the
// dense resident array, never ID values, so remapping IDs must leave
// every counter unchanged.
func TestApproxLRUPermutationInvariance(t *testing.T) {
	for _, tr := range metamorphicWorkloads(t) {
		capacity := tr.TotalBytes() / 6
		if err := CheckPermutationInvariance(tr, core.Policy{Kind: core.PolicyApproxLRU}, capacity, 0xD15C0); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
}
