// Package check_test hosts the single-pass differential suite: it needs
// internal/sim, which itself imports check for the verify oracle, so
// these tests live outside the check package to break the cycle.
package check_test

import (
	"math"
	"reflect"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// sampledMaxAbsError bounds how far the representative-interval
// estimator may drift from the full replay on the calibrated workloads
// in the turnover regime (pressure >= 3, where warmup eviction exceeds a
// full capacity and the sampled cache state converges). Measured worst
// cases at full scale: word 0.98, vortex 1.89 points absolute; two
// points is the acceptance line with the remaining headroom left to the
// estimator's own reported bound, which the test also enforces.
const sampledMaxAbsError = 0.02

// singlePassConfigs is the policy x pressure matrix the differential
// tests sweep: the full granularity ladder under light through heavy
// cache pressure.
func singlePassConfigs(pressures []int) []sim.SweepConfig {
	var cfgs []sim.SweepConfig
	for _, pol := range core.GranularitySweep(8) {
		for _, p := range pressures {
			cfgs = append(cfgs, sim.SweepConfig{Policy: pol, Pressure: p})
		}
	}
	return cfgs
}

// sweepWorkloads synthesizes the calibrated differential workloads at a
// small scale — the single-pass kernel must match the per-config replay
// on every trace shape, not just the ones it is fast on.
func sweepWorkloads(t *testing.T) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, name := range []string{"gzip", "word", "crafty"} {
		out = append(out, scaledTrace(t, name, 0.05))
	}
	return out
}

func scaledTrace(t *testing.T, name string, scale float64) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Scaled(scale).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSinglePassMatchesPerConfig is the exactness contract for the
// multi-configuration sweep kernel: over the policy x pressure x trace
// matrix, every core.Stats field of the single-pass replay must equal
// the per-config replay's bit for bit. On divergence the first differing
// field is named with both values, so a kernel regression points at the
// counter it broke rather than a blob diff.
func TestSinglePassMatchesPerConfig(t *testing.T) {
	cfgs := singlePassConfigs([]int{1, 2, 4, 8})
	for _, tr := range sweepWorkloads(t) {
		multi, err := sim.RunConfigs(tr, cfgs, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			single, err := sim.Run(tr, cfg.Policy, cfg.Pressure, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			gs, ws := reflect.ValueOf(multi[i].Stats), reflect.ValueOf(single.Stats)
			for f := 0; f < gs.NumField(); f++ {
				if !reflect.DeepEqual(gs.Field(f).Interface(), ws.Field(f).Interface()) {
					t.Errorf("%s %s p%d: first divergence at Stats.%s = %v (single-pass), want %v (per-config)",
						tr.Name, cfg.Policy, cfg.Pressure, gs.Type().Field(f).Name,
						gs.Field(f).Interface(), ws.Field(f).Interface())
					break
				}
			}
			if multi[i].Capacity != single.Capacity {
				t.Errorf("%s %s p%d: capacity %d (single-pass), want %d",
					tr.Name, cfg.Policy, cfg.Pressure, multi[i].Capacity, single.Capacity)
			}
		}
	}
}

// TestSampledSweepErrorBound holds the sampling estimator to its
// acceptance line on the full-scale calibrated traces: in the turnover
// regime every configuration's estimate must sit within two points
// absolute of the full replay AND within the estimator's own reported
// error bound — a bound that underpromises is as broken as an estimate
// that misses.
func TestSampledSweepErrorBound(t *testing.T) {
	cfgs := singlePassConfigs([]int{3, 4, 6, 8})
	for _, name := range []string{"word", "vortex"} {
		tr := scaledTrace(t, name, 1.0)
		full, err := sim.RunConfigs(tr, cfgs, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := sim.RunConfigsSampled(tr, cfgs, sim.SampleOptions{}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i, cfg := range cfgs {
			e := math.Abs(ss.Results[i].MissRate - full[i].Stats.MissRate())
			if e > worst {
				worst = e
			}
			if e > sampledMaxAbsError {
				t.Errorf("%s %s p%d: sampled %.4f vs full %.4f — error %.4f over the %.2f acceptance line",
					name, cfg.Policy, cfg.Pressure, ss.Results[i].MissRate, full[i].Stats.MissRate(), e, sampledMaxAbsError)
			}
			if e > ss.Results[i].ErrorBound {
				t.Errorf("%s %s p%d: error %.4f exceeds the estimator's own bound %.4f",
					name, cfg.Policy, cfg.Pressure, e, ss.Results[i].ErrorBound)
			}
		}
		t.Logf("%s: %d clusters over %d intervals, coverage %.2f, worst error %.4f",
			name, ss.Clusters, ss.Intervals, ss.Coverage, worst)
	}
}
