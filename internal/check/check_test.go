package check

import (
	"strings"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
)

// randomTrace synthesizes a small linked workload with Zipf-skewed reuse,
// independent of the calibrated workload package, so these tests do not
// inherit its assumptions.
func randomTrace(t *testing.T, name string, blocks, accesses int, seed uint64) *trace.Trace {
	t.Helper()
	r := stats.NewRand(seed, 7)
	tr := trace.New(name)
	for i := 0; i < blocks; i++ {
		links := make([]core.SuperblockID, 0, 3)
		for k := r.Intn(4); k > 0; k-- {
			links = append(links, core.SuperblockID(r.Intn(blocks)))
		}
		sb := core.Superblock{
			ID:    core.SuperblockID(i),
			Size:  16 + r.Intn(200),
			Links: links,
		}
		if err := tr.Define(sb); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < accesses; i++ {
		if err := tr.Touch(core.SuperblockID(r.Zipf(blocks, 0.8))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// oraclePolicies is every policy with a reference model: the FIFO family,
// LRU, and the generational composite.
func oraclePolicies() []core.Policy {
	return []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 2},
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyUnits, Units: 64},
		{Kind: core.PolicyFine},
		{Kind: core.PolicyLRU},
		{Kind: core.PolicyGenerational, Units: 8},
	}
}

func TestCheckedAgreesWithEngineOnRandomTraces(t *testing.T) {
	tr := randomTrace(t, "random", 300, 40000, 0xBEEF)
	capacity := tr.TotalBytes() / 6
	for _, p := range oraclePolicies() {
		if err := Diff(tr, p, capacity); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

func TestDiffAllGranularities(t *testing.T) {
	tr := randomTrace(t, "sweep", 200, 15000, 0xF00D)
	if err := DiffAll(tr, 64, tr.TotalBytes()/4); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedIsTransparent(t *testing.T) {
	// A verified run must produce exactly the stats of an unchecked run.
	tr := randomTrace(t, "transparent", 150, 20000, 0xABCD)
	capacity := tr.TotalBytes() / 5
	for _, p := range oraclePolicies() {
		_, plain, err := replayStats(tr, p, capacity, 0)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := p.New(capacity)
		if err != nil {
			t.Fatal(err)
		}
		chk := Wrap(cache, p)
		for i, id := range tr.Accesses {
			if !chk.Access(id) {
				if err := chk.Insert(tr.Blocks[id]); err != nil {
					t.Fatalf("policy %s access %d: %v", p, i, err)
				}
			}
		}
		if err := chk.Err(); err != nil {
			t.Fatalf("policy %s: unexpected violation: %v", p, err)
		}
		if got := *chk.Stats(); got != plain {
			field, g, w := firstStatsDiff(got, plain)
			t.Fatalf("policy %s: verified run changed %s (%s vs %s)", p, field, g, w)
		}
	}
}

func TestCheckedWithoutOracleStillRunsInvariantWall(t *testing.T) {
	for _, p := range []core.Policy{
		{Kind: core.PolicyCompactingLRU},
		{Kind: core.PolicyAdaptive},
		{Kind: core.PolicyPreemptive},
		{Kind: core.PolicyApproxLRU},
	} {
		cache, err := p.New(4000)
		if err != nil {
			t.Fatal(err)
		}
		chk := Wrap(cache, p)
		if chk.HasOracle() {
			t.Fatalf("policy %s should not have an oracle", p)
		}
		tr := randomTrace(t, "wall", 120, 8000, 0x1234+uint64(p.Kind))
		for _, id := range tr.Accesses {
			if !chk.Access(id) {
				if err := chk.Insert(tr.Blocks[id]); err != nil {
					t.Fatalf("policy %s: %v", p, err)
				}
			}
		}
		chk.Flush()
		if err := chk.Err(); err != nil {
			t.Fatalf("policy %s: invariant wall tripped on a healthy cache: %v", p, err)
		}
	}
}

// TestCheckedCatchesWrongGranularity wires a fine-grained engine to a
// FLUSH oracle: the first capacity eviction must diverge, proving the
// differ actually detects semantic drift rather than vacuously passing.
func TestCheckedCatchesWrongGranularity(t *testing.T) {
	const capacity = 1000
	inner, err := core.NewFine(capacity)
	if err != nil {
		t.Fatal(err)
	}
	chk := Wrap(inner, core.Policy{Kind: core.PolicyFlush})
	if !chk.HasOracle() {
		t.Fatal("expected a FLUSH oracle")
	}
	r := stats.NewRand(0x5EED, 9)
	var tripped bool
	for i := 0; i < 5000; i++ {
		id := core.SuperblockID(r.Intn(64))
		if !chk.Access(id) {
			_ = chk.Insert(core.Superblock{ID: id, Size: 50 + int(id)})
		}
		if chk.Err() != nil {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("fine-grained engine never diverged from the FLUSH oracle")
	}
	v, ok := chk.Err().(*Violation)
	if !ok {
		t.Fatalf("want *Violation, got %T", chk.Err())
	}
	if v.Step == 0 || v.Op == "" || v.Field == "" {
		t.Fatalf("violation missing context: %+v", v)
	}
	if !strings.Contains(v.Error(), "step") {
		t.Fatalf("unhelpful violation message: %v", v)
	}
}

// brokenCapacityCache under-reports its capacity, so the occupancy
// invariant must trip as soon as the (real, larger) arena fills past the
// reported bound.
type brokenCapacityCache struct {
	core.Cache
	reported int
}

func (b *brokenCapacityCache) Capacity() int { return b.reported }

func TestCheckedCatchesOccupancyViolation(t *testing.T) {
	inner, err := core.NewFine(4000)
	if err != nil {
		t.Fatal(err)
	}
	broken := &brokenCapacityCache{Cache: inner, reported: 1000}
	// No oracle on purpose (capacity lies would desync it immediately);
	// PolicyCompactingLRU keys Wrap into invariant-wall-only mode.
	chk := Wrap(broken, core.Policy{Kind: core.PolicyCompactingLRU})
	for i := 0; i < 100 && chk.Err() == nil; i++ {
		id := core.SuperblockID(i)
		if !chk.Access(id) {
			_ = chk.Insert(core.Superblock{ID: id, Size: 100})
		}
	}
	err = chk.Err()
	if err == nil {
		t.Fatal("occupancy violation went undetected")
	}
	if !strings.Contains(err.Error(), "occupancy") {
		t.Fatalf("expected an occupancy violation, got: %v", err)
	}
}

func TestDiffRejectsPoliciesWithoutOracle(t *testing.T) {
	tr := randomTrace(t, "nooracle", 50, 500, 1)
	err := Diff(tr, core.Policy{Kind: core.PolicyAdaptive}, 2000)
	if err == nil || !strings.Contains(err.Error(), "no oracle") {
		t.Fatalf("want a no-oracle error, got %v", err)
	}
}

// TestCheckedCatchesNonLRUVictims wires a fine-grained FIFO engine to the
// LRU oracle: with a reuse-heavy workload, FIFO evicts recently touched
// blocks the oracle keeps, so the differ must trip with full context.
func TestCheckedCatchesNonLRUVictims(t *testing.T) {
	const capacity = 1000
	inner, err := core.NewFine(capacity)
	if err != nil {
		t.Fatal(err)
	}
	chk := Wrap(inner, core.Policy{Kind: core.PolicyLRU})
	if !chk.HasOracle() {
		t.Fatal("expected an LRU oracle")
	}
	r := stats.NewRand(0xCAFE, 9)
	var tripped bool
	for i := 0; i < 5000; i++ {
		id := core.SuperblockID(r.Zipf(64, 0.9))
		if !chk.Access(id) {
			_ = chk.Insert(core.Superblock{ID: id, Size: 50 + int(id)})
		}
		if chk.Err() != nil {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("FIFO engine never diverged from the LRU oracle")
	}
	v, ok := chk.Err().(*Violation)
	if !ok {
		t.Fatalf("want *Violation, got %T", chk.Err())
	}
	if v.Step == 0 || v.Op == "" || v.Field == "" {
		t.Fatalf("violation missing context: %+v", v)
	}
	if !strings.Contains(v.Error(), "step") {
		t.Fatalf("unhelpful violation message: %v", v)
	}
}

// lyingThreshold misreports the promotion threshold, so the generational
// oracle promotes later than the engine: the first real promotion must
// desynchronize occupancy (the tenured copy plus the dead nursery copy)
// and trip the differ.
type lyingThreshold struct {
	*core.GenerationalCache
}

func (l *lyingThreshold) PromotionThreshold() int {
	return l.GenerationalCache.PromotionThreshold() + 5
}

func TestCheckedCatchesWrongPromotionThreshold(t *testing.T) {
	inner, err := core.NewGenerational(4000, 0.25, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	chk := Wrap(&lyingThreshold{inner}, core.Policy{Kind: core.PolicyGenerational, Units: 8})
	if !chk.HasOracle() {
		t.Fatal("expected a generational oracle")
	}
	r := stats.NewRand(0xD00D, 9)
	var tripped bool
	for i := 0; i < 20000; i++ {
		id := core.SuperblockID(r.Zipf(80, 0.9))
		if !chk.Access(id) {
			_ = chk.Insert(core.Superblock{ID: id, Size: 40 + int(id)})
		}
		if chk.Err() != nil {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("mismatched promotion thresholds never diverged")
	}
	v, ok := chk.Err().(*Violation)
	if !ok {
		t.Fatalf("want *Violation, got %T", chk.Err())
	}
	if v.Step == 0 || v.Op == "" || v.Field == "" {
		t.Fatalf("violation missing context: %+v", v)
	}
}
