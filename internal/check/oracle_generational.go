package check

import (
	"fmt"

	"dynocache/internal/core"
)

// generationalOracle is the reference simulator for the generational
// composite: two FIFO-family Oracles (a fine-grained nursery, a
// FLUSH/n-unit tenured side) plus map-backed promotion bookkeeping that
// re-derives the wrapper's policy — promote a nursery block to the
// tenured side at the configured hit threshold, route jumbo insertions
// straight to tenured, count a promoted block's dead nursery copy toward
// occupancy but not toward the resident-block count. The geometry is read
// from the live cache under test (capacities after rounding, unit count,
// threshold) so the oracle cannot drift on integer-rounding details; all
// behavior is re-derived independently.
type generationalOracle struct {
	nursery *Oracle
	tenured *Oracle

	nurseryCap int
	tenuredCap int
	threshold  int

	hitCounts map[core.SuperblockID]int
	meta      map[core.SuperblockID]core.Superblock

	stats      core.Stats // wrapper-level: accesses and insertions
	aggregated core.Stats // scratch for Stats() aggregation
}

var _ referenceOracle = (*generationalOracle)(nil)

func newGenerationalOracle(g generationalParts) (*generationalOracle, error) {
	nursery, err := NewOracle(core.Policy{Kind: core.PolicyFine}, g.Nursery().Capacity())
	if err != nil {
		return nil, err
	}
	tp := core.Policy{Kind: core.PolicyFlush}
	if u := g.Tenured().Units(); u > 1 {
		tp = core.Policy{Kind: core.PolicyUnits, Units: u}
	}
	tenured, err := NewOracle(tp, g.Tenured().Capacity())
	if err != nil {
		return nil, err
	}
	if g.PromotionThreshold() < 1 {
		return nil, fmt.Errorf("check: promotion threshold must be >= 1, got %d", g.PromotionThreshold())
	}
	return &generationalOracle{
		nursery:    nursery,
		tenured:    tenured,
		nurseryCap: g.Nursery().Capacity(),
		tenuredCap: g.Tenured().Capacity(),
		threshold:  g.PromotionThreshold(),
		hitCounts:  make(map[core.SuperblockID]int),
		meta:       make(map[core.SuperblockID]core.Superblock),
	}, nil
}

// Stats aggregates exactly the way GenerationalCache.Stats does: access
// and insertion counters are the wrapper's, structural counters are
// summed from the generations.
func (o *generationalOracle) Stats() *core.Stats {
	n, t := o.nursery.Stats(), o.tenured.Stats()
	agg := o.stats
	agg.EvictionInvocations = n.EvictionInvocations + t.EvictionInvocations
	agg.BlocksEvicted = n.BlocksEvicted + t.BlocksEvicted
	agg.BytesEvicted = n.BytesEvicted + t.BytesEvicted
	agg.FullFlushes = n.FullFlushes + t.FullFlushes
	agg.LinksPatched = n.LinksPatched + t.LinksPatched
	agg.PendingRelinks = n.PendingRelinks + t.PendingRelinks
	agg.UnlinkEvents = n.UnlinkEvents + t.UnlinkEvents
	agg.InterUnitLinksRemoved = n.InterUnitLinksRemoved + t.InterUnitLinksRemoved
	agg.IntraUnitLinksFlushed = n.IntraUnitLinksFlushed + t.IntraUnitLinksFlushed
	o.aggregated = agg
	return &o.aggregated
}

// Contains reports residency in either generation.
func (o *generationalOracle) Contains(id core.SuperblockID) bool {
	return o.tenured.Contains(id) || o.nursery.Contains(id)
}

// Resident counts blocks present in both generations once.
func (o *generationalOracle) Resident() int {
	n := o.tenured.Resident()
	o.nursery.forEachResident(func(id core.SuperblockID) {
		if !o.tenured.Contains(id) {
			n++
		}
	})
	return n
}

// ResidentBytes double-counts promoted blocks' dead nursery copies, which
// genuinely occupy space.
func (o *generationalOracle) ResidentBytes() int {
	return o.nursery.ResidentBytes() + o.tenured.ResidentBytes()
}

func (o *generationalOracle) forEachResident(fn func(id core.SuperblockID)) {
	o.nursery.forEachResident(fn)
	o.tenured.forEachResident(fn)
}

func (o *generationalOracle) tallyBytes() int {
	return o.nursery.tallyBytes() + o.tenured.tallyBytes()
}

// PatchedLinks sums the generations.
func (o *generationalOracle) PatchedLinks() int {
	return o.nursery.PatchedLinks() + o.tenured.PatchedLinks()
}

// BackPtrTableBytes sums the generations (the FLUSH tenured side reports
// zero, as the engine does).
func (o *generationalOracle) BackPtrTableBytes() int {
	return o.nursery.BackPtrTableBytes() + o.tenured.BackPtrTableBytes()
}

// Access mirrors GenerationalCache.Access: a tenured hit is free, a
// nursery hit bumps the promotion counter and may tenure the block.
func (o *generationalOracle) Access(id core.SuperblockID) bool {
	o.stats.Accesses++
	if o.tenured.Contains(id) {
		o.stats.Hits++
		return true
	}
	if o.nursery.Contains(id) {
		o.stats.Hits++
		o.hitCounts[id]++
		if o.hitCounts[id] >= o.threshold {
			o.promote(id)
		}
		return true
	}
	o.stats.Misses++
	return false
}

// promote copies a proven-hot block into the tenured generation, leaving
// the dead nursery copy to age out.
func (o *generationalOracle) promote(id core.SuperblockID) {
	sb, ok := o.meta[id]
	if !ok || o.tenured.Contains(id) {
		return
	}
	if sb.Size > o.tenuredCap {
		return // cannot ever tenure; keep serving from the nursery
	}
	o.tenured.Insert(sb)
}

// Insert mirrors GenerationalCache.Insert: new blocks enter the nursery,
// jumbo blocks bypass it. Wrapper-level insertion counters are raised
// here; the sub-oracles' own insertion counters are discarded by Stats,
// exactly as the engine discards its sub-caches'.
func (o *generationalOracle) Insert(sb core.Superblock) {
	if sb.Size > o.nurseryCap {
		o.tenured.Insert(sb)
		o.meta[sb.ID] = sb
		o.stats.InsertedBlocks++
		o.stats.InsertedBytes += uint64(sb.Size)
		return
	}
	o.nursery.Insert(sb)
	o.meta[sb.ID] = sb
	o.hitCounts[sb.ID] = 0
	o.stats.InsertedBlocks++
	o.stats.InsertedBytes += uint64(sb.Size)
}

// AddLink routes the link to whichever generation holds the source.
func (o *generationalOracle) AddLink(from, to core.SuperblockID) {
	if o.tenured.Contains(from) {
		o.tenured.AddLink(from, to)
		return
	}
	o.nursery.AddLink(from, to)
}

// Flush empties both generations and resets the promotion counters.
func (o *generationalOracle) Flush() {
	o.nursery.Flush()
	o.tenured.Flush()
	o.hitCounts = make(map[core.SuperblockID]int)
}
