package check

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
)

// Metamorphic relations: properties that must hold between a replay of a
// trace and a replay of a transformed version of it, without either run
// needing a known-good answer. They complement the oracle differ — the
// oracle catches the engine disagreeing with a reference, the relations
// catch both agreeing on something that cannot be right.

// PermuteIDs returns a copy of tr with every superblock ID remapped
// through a pseudo-random dense permutation of [0, maxID]: block
// definitions, link targets, and the access sequence all move together.
// Sizes, link structure, and access order are untouched, so any
// ID-agnostic policy must behave identically on the two traces.
func PermuteIDs(tr *trace.Trace, seed uint64) (*trace.Trace, error) {
	var maxID core.SuperblockID
	for id := range tr.Blocks {
		if id > maxID {
			maxID = id
		}
	}
	r := stats.NewRand(seed, 0xC0FFEE)
	perm := r.Perm(int(maxID) + 1)
	remap := func(id core.SuperblockID) core.SuperblockID {
		return core.SuperblockID(perm[id])
	}
	out := trace.New(tr.Name + "-perm")
	for _, id := range tr.SortedIDs() {
		sb := tr.Blocks[id]
		sb.ID = remap(id)
		links := make([]core.SuperblockID, len(sb.Links))
		for i, to := range sb.Links {
			links[i] = remap(to)
		}
		sb.Links = links
		if err := out.Define(sb); err != nil {
			return nil, fmt.Errorf("check: permute %q: %w", tr.Name, err)
		}
	}
	for _, id := range tr.Accesses {
		if err := out.Touch(remap(id)); err != nil {
			return nil, fmt.Errorf("check: permute %q: %w", tr.Name, err)
		}
	}
	return out, nil
}

// Concat returns a trace that replays tr twice back to back over the same
// block table — the second pass starts against whatever the first pass
// left resident.
func Concat(tr *trace.Trace) (*trace.Trace, error) {
	out := trace.New(tr.Name + "-x2")
	for _, id := range tr.SortedIDs() {
		if err := out.Define(tr.Blocks[id]); err != nil {
			return nil, fmt.Errorf("check: concat %q: %w", tr.Name, err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, id := range tr.Accesses {
			if err := out.Touch(id); err != nil {
				return nil, fmt.Errorf("check: concat %q: %w", tr.Name, err)
			}
		}
	}
	return out, nil
}

// floorCapacity applies the simulator's sizing floor (§4.2): the cache is
// never smaller than the largest single superblock plus headroom, so every
// block stays cacheable under any policy's rounding.
func floorCapacity(tr *trace.Trace, capacity int) int {
	maxBlock := 0
	for _, sb := range tr.Blocks {
		if sb.Size > maxBlock {
			maxBlock = sb.Size
		}
	}
	if floor := maxBlock + 512; capacity < floor {
		return floor
	}
	return capacity
}

// replayStats replays tr against a fresh cache and returns the final
// counters, plus a snapshot taken after `mark` accesses (mark <= 0 skips
// the snapshot). The replay loop is the canonical miss-regenerate cycle
// the simulator uses; it is re-implemented here so package check stays
// independent of package sim.
func replayStats(tr *trace.Trace, policy core.Policy, capacity, mark int) (at, final core.Stats, err error) {
	cache, err := policy.New(capacity)
	if err != nil {
		return at, final, err
	}
	for i, id := range tr.Accesses {
		sb, ok := tr.Blocks[id]
		if !ok {
			return at, final, fmt.Errorf("check: replay %q: access %d references undefined block %d", tr.Name, i, id)
		}
		if !cache.Access(id) {
			if err := cache.Insert(sb); err != nil {
				return at, final, fmt.Errorf("check: replay %q: access %d: %w", tr.Name, i, err)
			}
		}
		if i+1 == mark {
			at = *cache.Stats()
		}
	}
	return at, *cache.Stats(), nil
}

// CheckPermutationInvariance verifies that remapping IDs through a dense
// permutation leaves every counter unchanged: the policies under study
// decide by size, order, and link structure, never by ID value.
func CheckPermutationInvariance(tr *trace.Trace, policy core.Policy, capacity int, seed uint64) error {
	capacity = floorCapacity(tr, capacity)
	perm, err := PermuteIDs(tr, seed)
	if err != nil {
		return err
	}
	_, orig, err := replayStats(tr, policy, capacity, 0)
	if err != nil {
		return err
	}
	_, permuted, err := replayStats(perm, policy, capacity, 0)
	if err != nil {
		return err
	}
	if orig != permuted {
		field, g, w := firstStatsDiff(permuted, orig)
		return fmt.Errorf("check: %q under %s: ID permutation changed %s (%s, original %s)",
			tr.Name, policy, field, g, w)
	}
	return nil
}

// CheckFlushCapacityMonotone verifies that doubling the capacity of a
// full-flush cache never increases the number of flush invocations: a
// bigger arena accumulates at least as much code between consecutive
// flushes, so flushes can only become rarer.
func CheckFlushCapacityMonotone(tr *trace.Trace, capacity int) error {
	capacity = floorCapacity(tr, capacity)
	policy := core.Policy{Kind: core.PolicyFlush}
	_, small, err := replayStats(tr, policy, capacity, 0)
	if err != nil {
		return err
	}
	_, big, err := replayStats(tr, policy, 2*capacity, 0)
	if err != nil {
		return err
	}
	if big.FullFlushes > small.FullFlushes {
		return fmt.Errorf("check: %q: doubling FLUSH capacity %d raised flush invocations %d -> %d",
			tr.Name, capacity, small.FullFlushes, big.FullFlushes)
	}
	return nil
}

// CheckConcatSteadyState verifies two properties of replaying a trace
// twice back to back: (1) prefix determinism — the counters after the
// first pass are exactly the counters of a single replay, because the
// engine's behavior depends only on the operations seen so far; and
// (2) steady-state hit behavior — the warm second pass misses no more
// than the cold first pass did, within a small tolerance. The tolerance
// is necessary, not defensive: residual first-pass content shifts where
// flush/unit boundaries fall in the second pass, and that misalignment
// genuinely costs extra misses (a Belady-style anomaly, observed up to
// ~2% of the cold-pass miss count). The bound of 1/16th of the cold
// misses plus one per distinct block still catches any real regression,
// where a warm pass would miss on a large fraction of reuses.
func CheckConcatSteadyState(tr *trace.Trace, policy core.Policy, capacity int) error {
	capacity = floorCapacity(tr, capacity)
	doubled, err := Concat(tr)
	if err != nil {
		return err
	}
	_, single, err := replayStats(tr, policy, capacity, 0)
	if err != nil {
		return err
	}
	mid, full, err := replayStats(doubled, policy, capacity, len(tr.Accesses))
	if err != nil {
		return err
	}
	if mid != single {
		field, g, w := firstStatsDiff(mid, single)
		return fmt.Errorf("check: %q under %s: concat prefix diverged from single replay on %s (%s, single %s)",
			tr.Name, policy, field, g, w)
	}
	secondPassMisses := full.Misses - mid.Misses
	if slack := single.Misses/16 + uint64(tr.NumBlocks()); secondPassMisses > single.Misses+slack {
		return fmt.Errorf("check: %q under %s: warm second pass missed %d times, cold pass %d (+%d slack)",
			tr.Name, policy, secondPassMisses, single.Misses, slack)
	}
	return nil
}
