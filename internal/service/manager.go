package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Manager is the load-aware rebalancing control loop: it samples
// per-tenant throughput, detects a persistently overloaded shard, and
// migrates one tenant at a time off the hot shard. Hysteresis comes from
// three directions — an imbalance has to exceed Threshold for Patience
// consecutive ticks, moves are rate-limited by Cooldown, and a candidate
// is only moved when the projected post-move peak improves by at least
// Improvement — so the manager never thrashes tenants between shards on
// workload noise.
type Manager struct {
	svc *Service
	cfg ManagerConfig

	migrations atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ManagerConfig tunes the rebalancing loop. Zero values select the
// defaults noted per field.
type ManagerConfig struct {
	// Interval is the sampling period (default 200ms).
	Interval time.Duration
	// Threshold arms a migration when the busiest shard's access rate
	// exceeds this multiple of the mean shard rate (default 1.5).
	Threshold float64
	// Patience is how many consecutive over-threshold ticks are required
	// before a migration fires (default 2).
	Patience int
	// Cooldown is the minimum gap between migrations (default
	// 3*Interval).
	Cooldown time.Duration
	// Improvement is the fractional reduction of the peak shard rate a
	// candidate move must project before it is taken (default 0.05).
	Improvement float64
}

func (c *ManagerConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.Threshold <= 0 {
		c.Threshold = 1.5
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * c.Interval
	}
	if c.Improvement <= 0 {
		c.Improvement = 0.05
	}
}

// StartManager launches the rebalancing loop against this service. Stop
// it with Manager.Stop; it also exits when the service closes.
func (s *Service) StartManager(cfg ManagerConfig) *Manager {
	cfg.applyDefaults()
	m := &Manager{
		svc:  s,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go m.loop()
	return m
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Migrations returns how many migrations this manager has completed.
func (m *Manager) Migrations() uint64 { return m.migrations.Load() }

func (m *Manager) loop() {
	defer close(m.done)
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	lastAcc := map[string]uint64{} // per-tenant cumulative accesses at the previous tick
	streak := 0
	var lastMove time.Time
	primed := false // first tick only establishes the baseline
	for {
		select {
		case <-m.stop:
			return
		case <-m.svc.stop:
			return
		case <-tick.C:
		}
		if m.rebalanceTick(lastAcc, &streak, &lastMove, primed) {
			primed = true
		}
	}
}

// rebalanceTick samples one interval and migrates at most one tenant.
// Returns true once a baseline sample exists.
func (m *Manager) rebalanceTick(lastAcc map[string]uint64, streak *int, lastMove *time.Time, primed bool) bool {
	s := m.svc
	type load struct {
		name  string
		shard int
		delta uint64
	}
	var tenants []load
	shardDelta := make([]uint64, s.NumShards())
	for _, name := range s.TenantNames() {
		t, ok := s.Tenant(name)
		if !ok {
			continue
		}
		acc := t.Stats().Accesses
		delta := acc - lastAcc[name]
		lastAcc[name] = acc
		idx := t.Shard()
		tenants = append(tenants, load{name, idx, delta})
		shardDelta[idx] += delta
	}
	if !primed || len(shardDelta) < 2 {
		return true
	}

	var total, maxD, minD uint64
	hot, cold := 0, 0
	minD = ^uint64(0)
	for i, d := range shardDelta {
		total += d
		if d > maxD {
			maxD, hot = d, i
		}
		if d < minD {
			minD, cold = d, i
		}
	}
	mean := float64(total) / float64(len(shardDelta))
	if mean <= 0 || float64(maxD) < m.cfg.Threshold*mean {
		*streak = 0
		return true
	}
	*streak++
	if *streak < m.cfg.Patience || time.Since(*lastMove) < m.cfg.Cooldown {
		return true
	}

	// Candidate selection. Two regimes:
	//
	// Dominated shard — one tenant produces most of the hot shard's
	// traffic. Moving the dominator cannot lower the access-count peak
	// (it saturates wherever it lands), but its shard-mates are queueing
	// behind it; the win is isolation, so the busiest *sibling* is moved
	// to the coldest shard. Once the dominator sits alone there is
	// nothing left to move and the manager goes quiet — no thrash.
	//
	// Spread shard — several comparable tenants. Move the busiest one to
	// the coldest shard, but only when the projected post-move peak
	// drops by at least Improvement.
	var hotTs []load
	for _, tl := range tenants {
		if tl.shard == hot {
			hotTs = append(hotTs, tl)
		}
	}
	sort.Slice(hotTs, func(i, j int) bool { return hotTs[i].delta > hotTs[j].delta })
	if len(hotTs) == 0 {
		return true
	}
	best := ""
	if top := hotTs[0]; float64(top.delta) >= 0.5*float64(maxD) {
		if len(hotTs) > 1 {
			best = hotTs[1].name
		}
	} else if top.delta > 0 {
		peak := float64(maxD - top.delta)
		if landed := float64(minD + top.delta); landed > peak {
			peak = landed
		}
		for i, d := range shardDelta {
			if i != hot && i != cold && float64(d) > peak {
				peak = float64(d)
			}
		}
		if peak <= float64(maxD)*(1-m.cfg.Improvement) {
			best = top.name
		}
	}
	if best == "" {
		return true
	}
	if err := s.Migrate(best, cold); err == nil {
		m.migrations.Add(1)
		*lastMove = time.Now()
		*streak = 0
	}
	return true
}
