package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynocache/internal/core"
	"dynocache/internal/sim"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
)

// migrateRetry migrates and retries transient coordinator contention;
// only used by tests that fire migrations while another may be racing.
func migrateRetry(t *testing.T, svc *Service, name string, dst int) {
	t.Helper()
	if err := svc.Migrate(name, dst); err != nil {
		t.Fatalf("migrate %q to %d: %v", name, dst, err)
	}
}

// TestMigrateSoloEquality is the tentpole acceptance: a tenant alone on
// its shard, migrated across every shard mid-replay, must finish with
// ledger counters bit-identical to a single-threaded sim replay of the
// same stream — the handoff preserved the cache's exact geometry and
// eviction order at every hop.
func TestMigrateSoloEquality(t *testing.T) {
	policies := []core.Policy{
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyFine},
		{Kind: core.PolicyLRU},
	}
	for _, policy := range policies {
		for _, verify := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/verify=%v", policy, verify), func(t *testing.T) {
				tr := synth(t, "gzip", 0.25)
				capacity, err := sim.CapacityFor(tr, 2)
				if err != nil {
					t.Fatal(err)
				}
				svc, err := New(Config{
					Shards:        4,
					Policy:        policy,
					ShardCapacity: capacity,
					Verify:        verify,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer svc.Close()
				ten, err := svc.RegisterPinned("gzip", 0, span(tr))
				if err != nil {
					t.Fatal(err)
				}
				// Replay in quarters, hopping shards 0→1→2→3 between them
				// and finishing back on 0 (which reuses the vacated span).
				hops := []int{1, 2, 3, 0}
				n := len(tr.Accesses)
				for i, dst := range hops {
					lo, hi := i*n/4, (i+1)*n/4
					part := &trace.Trace{Blocks: tr.Blocks, Accesses: tr.Accesses[lo:hi]}
					replayAll(t, ten, part, 64)
					migrateRetry(t, svc, "gzip", dst)
					if got := ten.Shard(); got != dst {
						t.Fatalf("hop %d: Shard() = %d, want %d", i, got, dst)
					}
					if err := svc.CheckConsistency(); err != nil {
						t.Fatalf("hop %d: %v", i, err)
					}
				}
				solo, err := sim.Run(tr, policy, 1, sim.Options{Capacity: capacity})
				if err != nil {
					t.Fatal(err)
				}
				got, want := ten.Stats(), solo.Stats
				mismatch := got.Accesses != want.Accesses || got.Hits != want.Hits ||
					got.Misses != want.Misses ||
					got.InsertedBlocks != want.InsertedBlocks ||
					got.InsertedBytes != want.InsertedBytes ||
					got.EvictionInvocations != want.EvictionInvocations ||
					got.BlocksEvicted != want.BlocksEvicted ||
					got.BytesEvicted != want.BytesEvicted
				if mismatch {
					t.Errorf("migrated ledger diverged from solo replay:\n got %+v\nwant a=%d h=%d m=%d ib=%d iB=%d ei=%d be=%d bB=%d",
						got, want.Accesses, want.Hits, want.Misses, want.InsertedBlocks,
						want.InsertedBytes, want.EvictionInvocations, want.BlocksEvicted, want.BytesEvicted)
				}
				ms := svc.MigrationStats()
				if ms.Completed != uint64(len(hops)) || ms.Aborted != 0 {
					t.Errorf("migration counters: %+v, want %d completed, 0 aborted", ms, len(hops))
				}
				if ms.BytesMoved == 0 || ms.FlipPauseMax <= 0 || ms.FlipPauseTotal < ms.FlipPauseMax {
					t.Errorf("migration observability not populated: %+v", ms)
				}
			})
		}
	}
}

// TestRouteEpochAdvances: the versioned routing table must reflect every
// placement change, and Tenant.Shard must agree with it after the flip.
func TestRouteEpochAdvances(t *testing.T) {
	svc, err := New(Config{Shards: 3, Policy: core.Policy{Kind: core.PolicyFine}, ShardCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	e0 := svc.RouteEpoch()
	ten, err := svc.RegisterPinned("alpha", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if e := svc.RouteEpoch(); e != e0+1 {
		t.Fatalf("epoch after register = %d, want %d", e, e0+1)
	}
	if idx, ok := svc.ShardOf("alpha"); !ok || idx != 0 {
		t.Fatalf("ShardOf = %d,%v want 0,true", idx, ok)
	}
	if _, err := ten.InsertBatch([]core.Superblock{{ID: 1, Size: 32}}); err != nil {
		t.Fatal(err)
	}
	migrateRetry(t, svc, "alpha", 2)
	if e := svc.RouteEpoch(); e != e0+2 {
		t.Fatalf("epoch after migrate = %d, want %d", e, e0+2)
	}
	idx, ok := svc.ShardOf("alpha")
	if !ok || idx != 2 || ten.Shard() != 2 {
		t.Fatalf("post-flip route: ShardOf=%d,%v Shard()=%d, want 2", idx, ok, ten.Shard())
	}
	// Same-shard migration is a no-op: no epoch bump, no counters.
	if err := svc.Migrate("alpha", 2); err != nil {
		t.Fatal(err)
	}
	if e := svc.RouteEpoch(); e != e0+2 {
		t.Fatalf("no-op migration bumped epoch to %d", e)
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateValidation(t *testing.T) {
	svc, err := New(Config{Shards: 2, Policy: core.Policy{Kind: core.PolicyFine}, ShardCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.RegisterPinned("alpha", 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := svc.Migrate("nobody", 1); err == nil {
		t.Error("unknown tenant should fail")
	}
	if err := svc.Migrate("alpha", 7); err == nil {
		t.Error("out-of-range shard should fail")
	}

	// Policies without a span migrator refuse cleanly and leave the
	// tenant live on its original shard.
	nosvc, err := New(Config{Shards: 2, Policy: core.Policy{Kind: core.PolicyApproxLRU}, ShardCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer nosvc.Close()
	ten, err := nosvc.RegisterPinned("beta", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := nosvc.Migrate("beta", 1); err == nil {
		t.Error("approx-lru migration should be refused")
	}
	if ten.Shard() != 0 {
		t.Errorf("refused migration moved the tenant to shard %d", ten.Shard())
	}
	if _, err := ten.InsertBatch([]core.Superblock{{ID: 0, Size: 16}}); err != nil {
		t.Errorf("tenant unusable after refused migration: %v", err)
	}
	if nosvc.MigrationStats().Started != 0 {
		t.Error("refused migration should not count as started")
	}
}

// TestMigrateUnderLoad hammers a shared service from every tenant while
// one tenant ping-pongs between shards. Frozen-window submissions must
// surface as BacklogError retries — never lost work, never a broken
// ledger. Run with -race this is the concurrency acceptance for the
// handoff protocol.
func TestMigrateUnderLoad(t *testing.T) {
	tr := synth(t, "gzip", 0.12)
	capacity, err := sim.CapacityFor(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Shards:        3,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 8},
		ShardCapacity: capacity,
		QueueDepth:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const tenants = 6
	tens := make([]*Tenant, tenants)
	for i := range tens {
		tens[i], err = svc.RegisterPinned(fmt.Sprintf("tenant-%d", i), i%3, span(tr))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := range tens {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 2; rep++ {
				replayAll(t, tens[i], tr, 32)
			}
		}(i)
	}
	// Ping-pong tenant 0 across all shards while its driver runs.
	for hop := 0; hop < 12; hop++ {
		migrateRetry(t, svc, "tenant-0", (hop+1)%3)
		if err := svc.CheckConsistency(); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
	}
	wg.Wait()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Every access was eventually applied exactly once.
	want := uint64(2 * len(tr.Accesses))
	for i, ten := range tens {
		if got := ten.Stats().Accesses; got != want {
			t.Errorf("tenant-%d: %d accesses, want %d", i, got, want)
		}
	}
	if got := svc.MigrationStats().Completed; got != 12 {
		t.Errorf("completed migrations = %d, want 12", got)
	}
}

// TestRegisterDuringMigration: registrations on source and destination
// shards race a live handoff; both must serialize cleanly through the
// owner loops and the ID-base allocator must never hand out overlapping
// spans.
func TestRegisterDuringMigration(t *testing.T) {
	svc, err := New(Config{Shards: 2, Policy: core.Policy{Kind: core.PolicyFine}, ShardCapacity: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ten, err := svc.RegisterPinned("mover", 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []core.Superblock
	for i := core.SuperblockID(0); i < 200; i++ {
		blocks = append(blocks, core.Superblock{ID: i, Size: 64})
	}
	if _, err := ten.InsertBatch(blocks); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nt, err := svc.RegisterPinned(fmt.Sprintf("r-%d", i), i%2, 64)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := nt.InsertBatch([]core.Superblock{{ID: 0, Size: 32}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for hop := 0; hop < 20; hop++ {
		migrateRetry(t, svc, "mover", (hop+1)%2)
	}
	close(stop)
	wg.Wait()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := ten.Stats().InsertedBlocks; got != 200 {
		t.Errorf("mover lost blocks across migrations: inserted=%d", got)
	}
}

// TestCloseRacingMigration: Close during a migration storm must not
// deadlock, lose tenant state, or leave the ledger open. Migrations that
// lose the race fail with ErrClosed (possibly after rolling back onto a
// quiesced source shard).
func TestCloseRacingMigration(t *testing.T) {
	for round := 0; round < 8; round++ {
		svc, err := New(Config{Shards: 2, Policy: core.Policy{Kind: core.PolicyFine}, ShardCapacity: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		ten, err := svc.RegisterPinned("mover", 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ten.InsertBatch([]core.Superblock{{ID: 0, Size: 100}, {ID: 1, Size: 50}}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hop := 0; hop < 50; hop++ {
				if err := svc.Migrate("mover", (hop+1)%2); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("hop %d: %v", hop, err)
					return
				}
			}
		}()
		if round%2 == 0 {
			time.Sleep(time.Duration(round) * 50 * time.Microsecond)
		}
		svc.Close()
		wg.Wait()
		if err := svc.CheckConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestMigrationChurnSoak runs a seeded random migration schedule under
// live traffic across four shards and closes the ledger after every
// single move.
func TestMigrationChurnSoak(t *testing.T) {
	tr := synth(t, "mcf", 0.12)
	capacity, err := sim.CapacityFor(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Shards:        4,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 8},
		ShardCapacity: capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const tenants = 6
	names := make([]string, tenants)
	tens := make([]*Tenant, tenants)
	for i := range tens {
		names[i] = fmt.Sprintf("tenant-%d", i)
		tens[i], err = svc.RegisterPinned(names[i], i%4, span(tr))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := range tens {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replayAll(t, tens[i], tr, 48)
		}(i)
	}
	r := stats.NewRand(1234, 3)
	for move := 0; move < 30; move++ {
		name := names[r.Intn(tenants)]
		if err := svc.Migrate(name, r.Intn(4)); err != nil {
			t.Fatalf("move %d (%s): %v", move, name, err)
		}
		if err := svc.CheckConsistency(); err != nil {
			t.Fatalf("move %d (%s): %v", move, name, err)
		}
	}
	wg.Wait()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i, ten := range tens {
		if got, want := ten.Stats().Accesses, uint64(len(tr.Accesses)); got != want {
			t.Errorf("tenant-%d: %d accesses, want %d", i, got, want)
		}
	}
}

// TestManagerRebalances: all tenants start piled on shard 0 of a two-
// shard service; the manager must detect the imbalance from its RPS
// samples and spread them out.
func TestManagerRebalances(t *testing.T) {
	svc, err := New(Config{
		Shards:        2,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 8},
		ShardCapacity: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const tenants = 4
	tens := make([]*Tenant, tenants)
	for i := range tens {
		tens[i], err = svc.RegisterPinned(fmt.Sprintf("tenant-%d", i), 0, 128)
		if err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return core.Superblock{ID: id, Size: 48}, nil
	}
	ids := make([]core.SuperblockID, 64)
	for i := range ids {
		ids[i] = core.SuperblockID(i % 128)
	}
	for i := range tens {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := tens[i].ReplayBatch(ids, regen); err != nil {
					var busy *BacklogError
					if !errors.As(err, &busy) {
						t.Error(err)
						return
					}
					time.Sleep(busy.RetryAfter)
				}
			}
		}(i)
	}
	mgr := svc.StartManager(ManagerConfig{
		Interval: 20 * time.Millisecond,
		Cooldown: 40 * time.Millisecond,
	})
	deadline := time.After(5 * time.Second)
	var moved atomic.Bool
	for !moved.Load() {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			mgr.Stop()
			t.Fatalf("manager never rebalanced: %+v", svc.MigrationStats())
		default:
		}
		onOne := 0
		for _, ten := range tens {
			if ten.Shard() == 1 {
				onOne++
			}
		}
		if onOne >= 1 && mgr.Migrations() >= 1 {
			moved.Store(true)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	mgr.Stop()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
