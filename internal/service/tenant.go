package service

import (
	"sync/atomic"

	"dynocache/internal/core"
)

// TenantStats is one tenant's side of the double-entry ledger: the subset
// of core.Stats attributable to a single client, plus service-level
// admission counters. Eviction counters are attributed to the tenant whose
// insert triggered the eviction (the victim blocks may belong to any
// tenant on the shard).
type TenantStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64

	InsertedBlocks uint64
	InsertedBytes  uint64

	EvictionInvocations uint64
	BlocksEvicted       uint64
	BytesEvicted        uint64

	Batches  uint64 // batches admitted and executed
	Rejected uint64 // batches refused with a BacklogError
}

// addLedger folds the eight engine-backed ledger columns of b into a.
// The service-level admission counters (Batches, Rejected) are not part
// of the double-entry identity and are left alone.
func (a *TenantStats) addLedger(b TenantStats) {
	a.Accesses += b.Accesses
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.InsertedBlocks += b.InsertedBlocks
	a.InsertedBytes += b.InsertedBytes
	a.EvictionInvocations += b.EvictionInvocations
	a.BlocksEvicted += b.BlocksEvicted
	a.BytesEvicted += b.BytesEvicted
}

// Tenant is a registered client's handle. All methods are safe for
// concurrent use, but a single tenant is typically driven by one
// goroutine.
//
// A tenant's shard binding is no longer fixed at registration: the
// rebalancer may migrate the tenant's resident state to another shard.
// Entry points load the current shard atomically; during the frozen
// window of a migration every submission is refused with a BacklogError
// (retry-after), and the first retry after the flip lands on the new
// shard.
type Tenant struct {
	name string
	// sh is the tenant's current shard. Written only under the service's
	// migration lock (and once at registration, before the handle is
	// published); read atomically by every entry point.
	sh atomic.Pointer[shard]
	// migrating fences the freeze→extract→install→flip window: while
	// set, admission and the owner-side guard bounce the tenant's
	// batches with a BacklogError so nothing can land on a shard that no
	// longer (or does not yet) hold the tenant's state.
	migrating atomic.Bool
	// base/span place the tenant's dense ID range [0, span) at
	// [base, base+span) in its shard's ID space, so co-located tenants
	// never collide and the shard's slice-indexed tables stay compact.
	// base is owner-owned: it is rewritten when a migration installs the
	// tenant at a new shard-local range, always on the owning goroutine.
	base core.SuperblockID
	span core.SuperblockID
	// stats is the ledger, owned by the shard's owner goroutine; readers
	// go through published snapshots (snap), never the live field. The
	// ledger travels with the tenant across migrations (the departing
	// shard charges it to xferOut, the receiving shard to xferIn).
	stats TenantStats
	snap  atomic.Pointer[tenantSnap]
	// rejected is updated on the submitting goroutine (rejection happens
	// at admission, before the envelope is queued) and folded into
	// Stats() snapshots.
	rejected atomic.Uint64
}

// Name returns the tenant's registered name.
func (t *Tenant) Name() string { return t.name }

// Shard returns the index of the shard this tenant is currently routed
// to. After Migrate returns, Shard reflects the new placement.
func (t *Tenant) Shard() int { return t.sh.Load().idx }

// Stats snapshots the tenant's ledger, at least as new as every batch
// that completed before the call.
func (t *Tenant) Stats() TenantStats {
	s := t.sh.Load().tenantSnapshot(t)
	s.Rejected = t.rejected.Load()
	return s
}

// foldAccesses merges a batch-folded access tally into the ledger,
// mirroring the engine's own BatchAccessStats bookkeeping.
func (t *Tenant) foldAccesses(accs, hits uint64) {
	t.stats.Accesses += accs
	t.stats.Hits += hits
	t.stats.Misses += accs - hits
}

// evictionCounters is the slice of core.Stats attributed per tenant.
type evictionCounters struct {
	invocations, blocks, bytes uint64
}

func snapshotEvictions(s *core.Stats) evictionCounters {
	return evictionCounters{s.EvictionInvocations, s.BlocksEvicted, s.BytesEvicted}
}

// creditEvictions attributes the evictions since before to this tenant.
// Runs on the owner goroutine of sh, which must be the shard whose cache
// the before snapshot was taken from (during an install that shard is
// not yet the tenant's published one, so it is passed explicitly).
func (t *Tenant) creditEvictions(sh *shard, before evictionCounters) {
	now := snapshotEvictions(sh.cache.Stats())
	t.stats.EvictionInvocations += now.invocations - before.invocations
	t.stats.BlocksEvicted += now.blocks - before.blocks
	t.stats.BytesEvicted += now.bytes - before.bytes
}

// AccessBatch looks up every id in one owner-side batch and returns the
// ids that missed, in order. The caller regenerates the missing blocks
// and submits them with InsertBatch.
func (t *Tenant) AccessBatch(ids []core.SuperblockID) ([]core.SuperblockID, error) {
	sh := t.sh.Load()
	env := sh.svc.getEnv()
	env.op = opAccess
	env.tenant = t
	env.ids = ids
	if err := t.submitErr(sh.submit(env)); err != nil {
		sh.svc.putEnv(env)
		return nil, err
	}
	missed, err := env.missed, env.err
	sh.svc.putEnv(env)
	return missed, t.submitErr(err)
}

// InsertBatch installs regenerated blocks in one owner-side batch.
// Returns how many blocks this call actually inserted (blocks already
// resident are skipped, not errors).
func (t *Tenant) InsertBatch(blocks []core.Superblock) (int, error) {
	sh := t.sh.Load()
	env := sh.svc.getEnv()
	env.op = opInsert
	env.tenant = t
	env.blocks = blocks
	if err := t.submitErr(sh.submit(env)); err != nil {
		sh.svc.putEnv(env)
		return 0, err
	}
	inserted, err := env.inserted, env.err
	sh.svc.putEnv(env)
	return inserted, t.submitErr(err)
}

// ReplayBatch runs the miss-driven replay protocol (access, regenerate on
// miss, insert — exactly what package sim does single-threaded) for a
// batch of ids in one owner-side batch. regen supplies the superblock for
// a missed id. This is the client driver the load harness uses: with a
// tenant alone on its shard, the tenant's counters after ReplayBatch
// replay are bit-identical to a single-threaded sim replay of the same
// stream. The steady-state path allocates nothing: pooled envelope,
// owner-side link scratch, batch-folded counters.
func (t *Tenant) ReplayBatch(ids []core.SuperblockID, regen func(core.SuperblockID) (core.Superblock, error)) error {
	sh := t.sh.Load()
	env := sh.svc.getEnv()
	env.op = opReplay
	env.tenant = t
	env.ids = ids
	env.regen = regen
	if err := t.submitErr(sh.submit(env)); err != nil {
		sh.svc.putEnv(env)
		return err
	}
	err := env.err
	sh.svc.putEnv(env)
	return t.submitErr(err)
}

// submitErr counts rejections on the tenant before handing the submission
// error back. Both admission rejections and owner-side migration-guard
// rejections surface as *BacklogError.
func (t *Tenant) submitErr(err error) error {
	if err != nil {
		if _, ok := err.(*BacklogError); ok {
			t.rejected.Add(1)
		}
	}
	return err
}
