package service

import (
	"errors"
	"sync"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

func synth(t *testing.T, name string, scale float64) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Scaled(scale).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// span returns the dense ID universe of a synthesized trace (IDs 0..n-1).
func span(tr *trace.Trace) core.SuperblockID {
	return core.SuperblockID(tr.NumBlocks())
}

// replayAll drives one tenant through its whole trace via ReplayBatch in
// fixed-size batches, retrying on backpressure.
func replayAll(t *testing.T, ten *Tenant, tr *trace.Trace, batch int) {
	t.Helper()
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return tr.Blocks[id], nil
	}
	for cur := 0; cur < len(tr.Accesses); cur += batch {
		end := cur + batch
		if end > len(tr.Accesses) {
			end = len(tr.Accesses)
		}
		for {
			err := ten.ReplayBatch(tr.Accesses[cur:end], regen)
			if err == nil {
				break
			}
			var busy *BacklogError
			if !errors.As(err, &busy) {
				t.Error(err)
				return
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0}); err == nil {
		t.Error("zero shards should fail")
	}
	if _, err := New(Config{Shards: 2, QueueDepth: -1}); err == nil {
		t.Error("negative queue depth should fail")
	}
	if _, err := New(Config{Shards: 2, Policy: core.Policy{Kind: core.PolicyUnits, Units: 4}, ShardCapacity: 0}); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestRegistration(t *testing.T) {
	svc, err := New(Config{Shards: 4, Policy: core.Policy{Kind: core.PolicyFine}, ShardCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := svc.Register("alpha", 100)
	if err != nil {
		t.Fatal(err)
	}
	if ten.Name() != "alpha" {
		t.Fatalf("name = %q", ten.Name())
	}
	if _, err := svc.Register("alpha", 100); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := svc.Register("", 100); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := svc.Register("beta", 0); err == nil {
		t.Error("empty ID span should fail")
	}
	if _, err := svc.RegisterPinned("gamma", 99, 10); err == nil {
		t.Error("out-of-range shard should fail")
	}
	if _, err := svc.RegisterPinned("delta", 1, core.MaxSuperblockID); err != nil {
		t.Fatal(err)
	}
	// The next tenant on shard 1 cannot fit any span.
	if _, err := svc.RegisterPinned("epsilon", 1, 2); err == nil {
		t.Error("ID-space exhaustion should fail")
	}
	if got, ok := svc.Tenant("alpha"); !ok || got != ten {
		t.Error("Tenant lookup failed")
	}
	if _, ok := svc.Tenant("nobody"); ok {
		t.Error("unknown tenant should not resolve")
	}
}

// The acceptance bar for the whole service layer: N concurrent tenants on
// dedicated shards must produce per-tenant miss/eviction counters exactly
// equal to a single-threaded sim replay of the same per-tenant streams.
// Run under -race this also proves the locking discipline.
func TestConcurrentMatchesSoloReplay(t *testing.T) {
	names := []string{"gzip", "mcf", "bzip2", "twolf", "vpr", "crafty", "eon", "gap"}
	policy := core.Policy{Kind: core.PolicyUnits, Units: 8}
	traces := make([]*trace.Trace, len(names))
	capacity := 0
	for i, n := range names {
		traces[i] = synth(t, n, 0.25)
		c, err := sim.CapacityFor(traces[i], 2)
		if err != nil {
			t.Fatal(err)
		}
		if c > capacity {
			capacity = c
		}
	}
	svc, err := New(Config{
		Shards:        len(names),
		Policy:        policy,
		ShardCapacity: capacity,
		Verify:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]*Tenant, len(names))
	for i, n := range names {
		tenants[i], err = svc.RegisterPinned(n, i, span(traces[i]))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replayAll(t, tenants[i], traces[i], 64)
		}(i)
	}
	wg.Wait()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i, ten := range tenants {
		solo, err := sim.Run(traces[i], policy, 1, sim.Options{Capacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		got := ten.Stats()
		want := solo.Stats
		if got.Accesses != want.Accesses || got.Hits != want.Hits || got.Misses != want.Misses {
			t.Errorf("%s: access counters (a=%d h=%d m=%d) != solo (a=%d h=%d m=%d)",
				names[i], got.Accesses, got.Hits, got.Misses, want.Accesses, want.Hits, want.Misses)
		}
		if got.InsertedBlocks != want.InsertedBlocks || got.InsertedBytes != want.InsertedBytes {
			t.Errorf("%s: insert counters (%d blocks, %d bytes) != solo (%d, %d)",
				names[i], got.InsertedBlocks, got.InsertedBytes, want.InsertedBlocks, want.InsertedBytes)
		}
		if got.EvictionInvocations != want.EvictionInvocations ||
			got.BlocksEvicted != want.BlocksEvicted || got.BytesEvicted != want.BytesEvicted {
			t.Errorf("%s: eviction counters (inv=%d blocks=%d bytes=%d) != solo (inv=%d blocks=%d bytes=%d)",
				names[i], got.EvictionInvocations, got.BlocksEvicted, got.BytesEvicted,
				want.EvictionInvocations, want.BlocksEvicted, want.BytesEvicted)
		}
	}
}

// Tenants sharing shards: hash routing, remapped ID spaces, concurrent
// replay. The double-entry ledger must close and every tenant must have
// replayed its full stream.
func TestSharedShardsLedger(t *testing.T) {
	names := []string{"gzip", "mcf", "bzip2", "twolf", "vpr", "crafty", "eon", "gap"}
	traces := make([]*trace.Trace, len(names))
	total := 0
	for i, n := range names {
		traces[i] = synth(t, n, 0.2)
		total += traces[i].TotalBytes()
	}
	svc, err := New(Config{
		Shards:        3,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 8},
		ShardCapacity: total / 4, // starved: evictions guaranteed
		Verify:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]*Tenant, len(names))
	for i, n := range names {
		tenants[i], err = svc.Register(n, span(traces[i]))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replayAll(t, tenants[i], traces[i], 32)
		}(i)
	}
	wg.Wait()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	var wantAccesses uint64
	for i, ten := range tenants {
		st := ten.Stats()
		if st.Accesses != uint64(len(traces[i].Accesses)) {
			t.Errorf("%s: accesses %d, want %d", names[i], st.Accesses, len(traces[i].Accesses))
		}
		wantAccesses += st.Accesses
	}
	if agg := svc.AggregateStats(); agg.Accesses != wantAccesses {
		t.Errorf("aggregate accesses %d, want %d", agg.Accesses, wantAccesses)
	}
}

// Two-phase AccessBatch/InsertBatch protocol: misses reported by
// AccessBatch are inserted by InsertBatch; a second AccessBatch of the
// same ids hits entirely. A co-located tenant that raced its regeneration
// gets its insert skipped, not an error.
func TestAccessInsertBatchProtocol(t *testing.T) {
	tr := synth(t, "gzip", 0.2)
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyFine},
		ShardCapacity: tr.TotalBytes() + 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := svc.Register("gzip", span(tr))
	if err != nil {
		t.Fatal(err)
	}
	ids := tr.Accesses[:200]
	missed, err := ten.AccessBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(missed) == 0 {
		t.Fatal("cold cache should miss")
	}
	// The miss list can repeat an id (several cold accesses to the same
	// block within the batch); InsertBatch installs each block once.
	distinct := make(map[core.SuperblockID]struct{})
	blocks := make([]core.Superblock, len(missed))
	for i, id := range missed {
		distinct[id] = struct{}{}
		blocks[i] = tr.Blocks[id]
	}
	inserted, err := ten.InsertBatch(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != len(distinct) {
		t.Fatalf("inserted %d, want %d distinct missed blocks", inserted, len(distinct))
	}
	// Re-inserting the same blocks is a no-op, not an error (lost
	// regeneration race semantics).
	again, err := ten.InsertBatch(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("re-insert installed %d blocks, want 0", again)
	}
	remiss, err := ten.AccessBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(remiss) != 0 {
		t.Fatalf("warm cache missed %d ids", len(remiss))
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Co-located tenants present overlapping local IDs; the per-tenant base
// remap must keep them disjoint in the shared shard.
func TestTenantIDIsolation(t *testing.T) {
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyFine},
		ShardCapacity: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc.Register("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Register("b", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a installs its block 0; tenant b's block 0 must still miss.
	if _, err := a.InsertBatch([]core.Superblock{{ID: 0, Size: 100}}); err != nil {
		t.Fatal(err)
	}
	missed, err := b.AccessBatch([]core.SuperblockID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(missed) != 1 {
		t.Fatal("tenant b hit tenant a's block: ID spaces alias")
	}
	// Out-of-span IDs are rejected.
	if _, err := a.AccessBatch([]core.SuperblockID{10}); err == nil {
		t.Error("access outside declared span should fail")
	}
	if _, err := a.InsertBatch([]core.Superblock{{ID: 11, Size: 1}}); err == nil {
		t.Error("insert outside declared span should fail")
	}
	if _, err := a.InsertBatch([]core.Superblock{{ID: 1, Size: 1, Links: []core.SuperblockID{99}}}); err == nil {
		t.Error("link target outside declared span should fail")
	}
}

// Admission control: a full shard rejects with a BacklogError carrying a
// positive retry hint, and the rejection is counted on the tenant.
func TestBackpressureRejection(t *testing.T) {
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyFine},
		ShardCapacity: 1 << 16,
		QueueDepth:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := svc.Register("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the only admission slot by hand, as an in-flight batch would.
	sh := ten.sh.Load()
	sh.pending.Add(1)
	_, err = ten.AccessBatch([]core.SuperblockID{0})
	var busy *BacklogError
	if !errors.As(err, &busy) {
		t.Fatalf("want BacklogError, got %v", err)
	}
	if busy.Shard != 0 || busy.RetryAfter <= 0 {
		t.Fatalf("bad backlog hint: %+v", busy)
	}
	if got := ten.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	sh.pending.Add(-1)
	// Slot free again: the same batch is admitted.
	if _, err := ten.AccessBatch([]core.SuperblockID{0}); err != nil {
		t.Fatal(err)
	}
	// The pending counter must return to zero after the batch.
	if n := sh.pending.Load(); n != 0 {
		t.Fatalf("pending = %d after quiesce", n)
	}
}

// Saturation: many tenants, tiny queue, tiny shard count. No deadlock, no
// lost updates (ledger closes), rejections surface as BacklogError only.
func TestSaturationNoDeadlock(t *testing.T) {
	svc, err := New(Config{
		Shards:        2,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 4},
		ShardCapacity: 1 << 15,
		QueueDepth:    2,
		Verify:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 16
	const batches = 50
	ids := make([]core.SuperblockID, 64)
	for i := range ids {
		ids[i] = core.SuperblockID(i % 32)
	}
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return core.Superblock{ID: id, Size: 128 + int(id)*8}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		ten, err := svc.Register(string(rune('a'+i))+"-tenant", 32)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				for {
					err := ten.ReplayBatch(ids, regen)
					if err == nil {
						break
					}
					var busy *BacklogError
					if !errors.As(err, &busy) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	agg := svc.AggregateStats()
	if want := uint64(tenants * batches * len(ids)); agg.Accesses != want {
		t.Fatalf("aggregate accesses %d, want %d", agg.Accesses, want)
	}
}
