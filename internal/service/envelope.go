package service

import (
	"errors"
	"fmt"
	"time"

	"dynocache/internal/core"
)

// ErrClosed is returned by every registration and batch entry point once
// Close has begun: the shard owners are draining or gone.
var ErrClosed = errors.New("service: closed")

// BacklogError reports that a shard's admission queue was full. Clients
// should back off for roughly RetryAfter and resubmit the same batch.
type BacklogError struct {
	Shard      int
	RetryAfter time.Duration
}

// Error implements error.
func (e *BacklogError) Error() string {
	return fmt.Sprintf("service: shard %d backlogged, retry after %v", e.Shard, e.RetryAfter)
}

// opKind selects the owner-side handler for an envelope.
type opKind uint8

const (
	opAccess opKind = iota
	opInsert
	opReplay
	opRegister
	opCheck
	opExtract
	opInstall
)

// envelope is one request travelling the MPSC queue to a shard's owner
// goroutine. Envelopes are pooled: a batch entry point gets one from the
// service pool, the owner fills the result fields and signals done, and
// the submitter copies the results out and returns it — steady-state
// batch traffic allocates no envelopes, no channels, nothing.
//
// The submitter blocks on done until the owner finishes, so the owner may
// read the request fields (including caller-owned slices) without copying
// and the submitter may read the results without further synchronization.
type envelope struct {
	op     opKind
	tenant *Tenant

	// Request payload.
	ids    []core.SuperblockID
	blocks []core.Superblock
	regen  func(core.SuperblockID) (core.Superblock, error)
	name   string            // opRegister
	span   core.SuperblockID // opRegister
	mig    *migrationPacket  // opInstall request / opExtract result

	// Results.
	missed    []core.SuperblockID // opAccess: freshly allocated; ownership passes to the caller
	inserted  int                 // opInsert
	newTenant *Tenant             // opRegister
	err       error

	// done carries completion from the owner back to the submitter;
	// capacity 1, allocated once and reused with the envelope.
	done chan struct{}
}

// getEnv takes a pooled envelope.
func (s *Service) getEnv() *envelope {
	return s.envPool.Get().(*envelope)
}

// putEnv clears an envelope (keeping its completion channel) and returns
// it to the pool. Callers must extract any results they need first.
func (s *Service) putEnv(env *envelope) {
	*env = envelope{done: env.done}
	s.envPool.Put(env)
}
