package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynocache/internal/core"
)

// TestRetryUnitDecaysAcrossIdle pins the admission-side aging of the
// retry-after hint: the owner only refreshes the EWMA when a batch
// completes, so after an idle or quiesced stretch the quoted unit must
// decay toward the cold-start floor instead of replaying burst-era
// service times at the first client of the next burst.
func TestRetryUnitDecaysAcrossIdle(t *testing.T) {
	var sh shard
	// Cold start: no batch measured yet.
	if got := sh.retryUnit(); got != ewmaColdStart {
		t.Fatalf("cold-start unit = %v, want %v", got, ewmaColdStart)
	}
	const burst = 80 * time.Millisecond
	now := time.Now()
	sh.ewmaNanos.Store(int64(burst))

	// Fresh: a just-completed batch quotes the EWMA essentially unaged
	// (allow one halving of slop in case this test goroutine stalls).
	sh.lastBatchNanos.Store(now.UnixNano())
	if got := sh.retryUnit(); got > burst || got < burst/2 {
		t.Fatalf("fresh unit = %v, want ~%v", got, burst)
	}

	// Four half-lives idle: one sixteenth, within a halving of slop.
	sh.lastBatchNanos.Store(now.Add(-4 * ewmaIdleHalfLife).UnixNano())
	if got := sh.retryUnit(); got > burst/16 || got < burst/64 {
		t.Fatalf("unit after 4 half-lives = %v, want ~%v", got, burst/16)
	}

	// Deep idle: floored at the cold-start unit, never zero.
	sh.lastBatchNanos.Store(now.Add(-time.Minute).UnixNano())
	if got := sh.retryUnit(); got != ewmaColdStart {
		t.Fatalf("deep-idle unit = %v, want floor %v", got, ewmaColdStart)
	}
}

// TestRetryHintConcurrentWithOwner hammers admission-side retryUnit
// reads against owner-side EWMA and last-batch stores: eight submitters
// against a depth-1 queue guarantee a steady stream of rejections racing
// live batch completions. Every hint must stay positive; the data-race
// detector covers the rest.
func TestRetryHintConcurrentWithOwner(t *testing.T) {
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyFine},
		ShardCapacity: 1 << 16,
		QueueDepth:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ten, err := svc.Register("a", 64)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		rejected atomic.Int64
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := []core.SuperblockID{core.SuperblockID(w % 16)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ten.AccessBatch(ids); err != nil {
					var busy *BacklogError
					if !errors.As(err, &busy) {
						t.Error(err)
						return
					}
					if busy.RetryAfter <= 0 {
						t.Errorf("non-positive retry hint %v", busy.RetryAfter)
						return
					}
					rejected.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatal("depth-1 queue under 8 submitters never rejected; saturation path untested")
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
