package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynocache/internal/check"
	"dynocache/internal/core"
)

// statsSnap is one published copy-on-write snapshot of a shard's
// engine-side counters, stamped with the mutation generation it reflects.
type statsSnap struct {
	gen   uint64
	stats core.Stats
}

// tenantSnap is one published snapshot of a tenant's ledger.
type tenantSnap struct {
	gen   uint64
	stats TenantStats
}

// shard is one shared-nothing domain: an owner goroutine that exclusively
// owns a cache and the ledgers of the tenants routed to it. Callers never
// touch shard state; they submit pooled envelopes over the MPSC request
// queue and the owner executes them one at a time. The fields below the
// marker are owner-private: no lock guards them because no other
// goroutine reads or writes them while the owner is alive.
type shard struct {
	idx   int
	depth int // admission bound (Config.QueueDepth)
	svc   *Service

	// reqs is the batched MPSC data queue; its capacity is the admission
	// depth, so an admitted envelope never blocks the submitter on send.
	reqs chan *envelope
	// ctl carries registrations and consistency checks. It is unbuffered:
	// a send commits only when the owner actively receives, so control
	// submitters select on ownerDone and can never strand on a dead owner.
	ctl chan *envelope
	// nudge wakes an idle owner to publish a snapshot for a waiting
	// reader (capacity 1; senders never block).
	nudge chan struct{}
	// ownerDone is closed after the owner has drained and exited.
	ownerDone chan struct{}

	// pending counts batches admitted but not yet finished; admission
	// compares it against the queue depth without any lock, and the owner
	// decrements it before signaling completion.
	pending atomic.Int64
	// ewmaNanos mirrors the owner's batch service-time EWMA for
	// retry-after hints; lastBatchNanos is the wall-clock completion
	// time of the owner's most recent batch, read by admission to age
	// the hint across idle gaps (see submit).
	ewmaNanos      atomic.Int64
	lastBatchNanos atomic.Int64

	// Snapshot publication: the owner bumps doneGen after every mutation
	// and publishes a snapshot only when a reader asked for one (wantSnap),
	// so the hot path never allocates. Readers block on snapCond until the
	// published generation catches up with the mutations they observed.
	doneGen  atomic.Uint64
	snap     atomic.Pointer[statsSnap]
	wantSnap atomic.Bool
	snapMu   sync.Mutex
	snapCond *sync.Cond

	// --- owner-private state below: exclusively owned by the owner
	// goroutine while it runs, readable by anyone after ownerDone ---

	cache core.Cache     // the engine, possibly wrapped
	chk   *check.Checked // non-nil in Verify mode

	// Devirtualized fast path (nil/false when Verify wraps the cache or
	// the policy's cache is not engine-backed): the owner replays against
	// the concrete *core.Engine with observer dispatch hoisted out of the
	// loop, exactly like sim's specialized kernels.
	eng      *core.Engine
	pol      core.VictimPolicy
	obsHit   bool
	obsMiss  bool
	ctrReads bool

	gen         uint64 // mutation generation, mirrored into doneGen
	ewma        int64  // batch service-time EWMA (α = 1/8)
	tenants     []*Tenant
	nextBase    core.SuperblockID
	linkScratch []core.SuperblockID // reusable link-remap buffer (fast only)

	// Migration bookkeeping. A departing tenant's ledger is charged to
	// xferOut on extraction, an arriving one's to xferIn on installation,
	// which keeps the per-shard double-entry identity
	//   sum(tenant ledgers) + xferOut == engine counters + xferIn
	// exact mid- and post-migration (engine counters are cumulative and
	// never follow the tenant). freeSpans recycles vacated ID ranges so
	// churn does not exhaust the shard's ID space.
	xferIn    TenantStats
	xferOut   TenantStats
	freeSpans []idSpan
}

// idSpan is a vacated [base, base+span) ID range available for reuse.
type idSpan struct {
	base, span core.SuperblockID
}

// migrationPacket carries a tenant between owner goroutines: the handle,
// its extracted resident state, and the ledger snapshot the destination
// charges to xferIn. Only the migration coordinator (Service.Migrate,
// holding migMu) touches a packet between the two control envelopes.
type migrationPacket struct {
	tenant *Tenant
	state  *core.TenantState
	ledger TenantStats
}

// submit runs one data-path envelope through the shard: admission check,
// queue send, wait for the owner. On success the envelope's result fields
// are filled; the caller still owns the envelope.
func (sh *shard) submit(env *envelope) error {
	svc := sh.svc
	if svc.closed.Load() {
		return ErrClosed
	}
	// Fast-path migration fence: a frozen tenant (or one whose route
	// already flipped away from this shard) is refused before taking an
	// admission slot. The authoritative check is the owner-side guard in
	// execute — this one just keeps the queue clear of doomed envelopes.
	if t := env.tenant; t != nil && (t.migrating.Load() || t.sh.Load() != sh) {
		return &BacklogError{Shard: sh.idx, RetryAfter: sh.retryUnit()}
	}
	if n := sh.pending.Add(1); int(n) > sh.depth {
		sh.pending.Add(-1)
		return &BacklogError{Shard: sh.idx, RetryAfter: time.Duration(n) * sh.retryUnit()}
	}
	// Re-check after taking the slot: Close observes pending, so a
	// submitter that raced the closed flag either backs out here or is
	// already visible to the drain loop and will be executed.
	if svc.closed.Load() {
		sh.pending.Add(-1)
		return ErrClosed
	}
	sh.reqs <- env
	<-env.done
	return nil
}

// ewmaColdStart is the retry-after unit quoted before the owner has
// measured a batch, and the floor idle decay ages a stale EWMA down to.
const ewmaColdStart = 100 * time.Microsecond

// ewmaIdleHalfLife is the idle-decay half-life of the retry-after hint:
// admission halves the quoted EWMA for every interval this long that the
// shard has gone without completing a batch.
const ewmaIdleHalfLife = 50 * time.Millisecond

// retryUnit returns the per-queue-slot retry-after hint. The owner only
// updates the EWMA when a batch completes, so a hint frozen at burst-era
// service times would go stale across an idle or quiesced stretch and
// tell the first client of the next burst to back off far too long.
// Admission ages the hint instead: one halving per ewmaIdleHalfLife
// elapsed since the last completed batch, flooring at the cold-start
// unit so the hint never reaches zero.
func (sh *shard) retryUnit() time.Duration {
	ewma := sh.ewmaNanos.Load()
	if ewma <= 0 {
		return ewmaColdStart
	}
	if last := sh.lastBatchNanos.Load(); last > 0 {
		if h := (time.Now().UnixNano() - last) / int64(ewmaIdleHalfLife); h > 0 {
			if h > 30 {
				h = 30
			}
			ewma >>= uint(h)
		}
	}
	if ewma < int64(ewmaColdStart) {
		ewma = int64(ewmaColdStart)
	}
	return time.Duration(ewma)
}

// control submits a register/check envelope, bypassing batch admission.
// Returns false when the owner has exited (service closed) — by then the
// shard is quiesced, so the caller may fall back to direct access.
func (sh *shard) control(env *envelope) bool {
	select {
	case sh.ctl <- env:
		<-env.done
		return true
	case <-sh.ownerDone:
		return false
	}
}

// ownerLoop is the shard's owner goroutine: it drains the request and
// control queues until Close, then finishes every already-admitted batch,
// publishes a final snapshot, and exits.
func (sh *shard) ownerLoop() {
	for {
		select {
		case env := <-sh.reqs:
			sh.execute(env)
		case env := <-sh.ctl:
			sh.executeCtl(env)
		case <-sh.nudge:
			sh.publishIfWanted()
		case <-sh.svc.stop:
			sh.drain()
			sh.publish()
			close(sh.ownerDone)
			return
		}
	}
}

// drain finishes every batch admitted before (or racing) Close. A
// submitter that incremented pending either sends its envelope — which
// the non-blocking receive will see — or observes the closed flag and
// backs out, decrementing pending; the loop exits once both queues are
// visibly empty and no admission slot is held.
func (sh *shard) drain() {
	for {
		select {
		case env := <-sh.reqs:
			sh.execute(env)
		default:
			if sh.pending.Load() == 0 {
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// execute runs one data-path envelope, updates the service-time EWMA,
// releases the admission slot, and signals the submitter. The admission
// slot is released before the done signal so tests (and clients) that
// observe a completed batch see pending already decremented.
func (sh *shard) execute(env *envelope) {
	// Owner-side migration guard: an envelope admitted just before the
	// tenant froze may be executed after the extraction control envelope
	// (the owner's select does not order reqs ahead of ctl). The tenant's
	// state is gone from this shard by then, so the batch is bounced with
	// a retry-after instead — it is never partially applied, never lost
	// (the client retries), and never double-applied (it did not run).
	if t := env.tenant; t != nil && (t.migrating.Load() || t.sh.Load() != sh) {
		env.err = &BacklogError{Shard: sh.idx, RetryAfter: sh.retryUnit()}
		sh.pending.Add(-1)
		env.done <- struct{}{}
		return
	}
	start := time.Now()
	switch env.op {
	case opAccess:
		env.missed, env.err = sh.execAccess(env.tenant, env.ids)
	case opInsert:
		env.inserted, env.err = sh.execInsert(env.tenant, env.blocks)
	case opReplay:
		env.err = sh.execReplay(env.tenant, env.ids, env.regen)
	}
	sh.gen++
	sh.doneGen.Store(sh.gen)
	sh.publishIfWanted()
	end := time.Now()
	last := end.Sub(start).Nanoseconds()
	sh.ewma = sh.ewma - sh.ewma/8 + last/8
	sh.ewmaNanos.Store(sh.ewma)
	sh.lastBatchNanos.Store(end.UnixNano())
	sh.pending.Add(-1)
	env.done <- struct{}{}
}

// executeCtl runs one control envelope on the owner. Registration mutates
// the tenant list, so it bumps the generation like a data batch;
// consistency checks are pure reads.
func (sh *shard) executeCtl(env *envelope) {
	switch env.op {
	case opRegister:
		env.newTenant, env.err = sh.execRegister(env.name, env.span)
		sh.gen++
		sh.doneGen.Store(sh.gen)
		sh.publishIfWanted()
	case opExtract:
		env.mig, env.err = sh.execExtract(env.tenant)
		sh.gen++
		sh.doneGen.Store(sh.gen)
		sh.publishIfWanted()
	case opInstall:
		env.err = sh.execInstall(env.mig)
		sh.gen++
		sh.doneGen.Store(sh.gen)
		sh.publishIfWanted()
	case opCheck:
		env.err = sh.checkLedger()
	}
	env.done <- struct{}{}
}

// migrator returns the shard cache's span-migration interface. In Verify
// mode the checked wrapper implements it (and mirrors the migration in
// the oracle); on the fast path the concrete cache must.
func (sh *shard) migrator() (core.SpanMigrator, bool) {
	m, ok := sh.cache.(core.SpanMigrator)
	return m, ok
}

// execExtract removes a frozen tenant from this shard: its resident span
// leaves the cache as a TenantState, its ledger moves to the xferOut
// column, and its ID range is parked for reuse. Runs on the owner, so it
// is serialized against every batch; the tenant's migrating flag was set
// before the control envelope was sent, so no later batch can slip in.
func (sh *shard) execExtract(t *Tenant) (*migrationPacket, error) {
	idx := -1
	for i, x := range sh.tenants {
		if x == t {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("service: tenant %q is not on shard %d", t.name, sh.idx)
	}
	mig, ok := sh.migrator()
	if !ok {
		return nil, fmt.Errorf("service: shard %d cache %q does not support span migration", sh.idx, sh.cache.Name())
	}
	st, err := mig.ExtractSpan(t.base, t.span)
	if err != nil {
		return nil, fmt.Errorf("service: shard %d extract %q: %w", sh.idx, t.name, err)
	}
	sh.tenants = append(sh.tenants[:idx], sh.tenants[idx+1:]...)
	sh.xferOut.addLedger(t.stats)
	sh.freeSpans = append(sh.freeSpans, idSpan{t.base, t.span})
	return &migrationPacket{tenant: t, state: st, ledger: t.stats}, nil
}

// execInstall places a migrating tenant on this shard: an ID range is
// allocated (recycling an exactly-matching vacated span when one exists),
// the extracted state is installed — any room-making evictions are real
// and credited to the arriving tenant — and the ledger is charged to
// xferIn. InstallSpan validates before mutating, so on error this shard
// is untouched and the coordinator can re-install on the source.
func (sh *shard) execInstall(pkt *migrationPacket) error {
	t := pkt.tenant
	mig, ok := sh.migrator()
	if !ok {
		return fmt.Errorf("service: shard %d cache %q does not support span migration", sh.idx, sh.cache.Name())
	}
	base, fromFree, err := sh.allocSpan(t.span)
	if err != nil {
		return err
	}
	before := snapshotEvictions(sh.cache.Stats())
	if ierr := mig.InstallSpan(base, pkt.state); ierr != nil {
		if fromFree {
			sh.freeSpans = append(sh.freeSpans, idSpan{base, t.span})
		} else {
			sh.nextBase = base
		}
		return fmt.Errorf("service: shard %d install %q: %w", sh.idx, t.name, ierr)
	}
	t.base = base
	sh.tenants = append(sh.tenants, t)
	sh.xferIn.addLedger(pkt.ledger)
	t.creditEvictions(sh, before)
	// Same dense-table warm-up as registration, so post-migration replay
	// never pays grow-reallocations.
	raw := sh.cache
	if sh.chk != nil {
		raw = sh.chk.Unwrap()
	}
	if r, ok := raw.(interface{ Reserve(core.SuperblockID) }); ok {
		r.Reserve(base + t.span - 1)
	}
	return nil
}

// allocSpan finds an ID range for an arriving tenant: an exactly-sized
// vacated span if one is parked (scanned newest-first), else fresh space
// at nextBase. Reports whether the range came from the free list so a
// failed install can return it.
func (sh *shard) allocSpan(span core.SuperblockID) (base core.SuperblockID, fromFree bool, err error) {
	for i := len(sh.freeSpans) - 1; i >= 0; i-- {
		if sh.freeSpans[i].span == span {
			base = sh.freeSpans[i].base
			sh.freeSpans = append(sh.freeSpans[:i], sh.freeSpans[i+1:]...)
			return base, true, nil
		}
	}
	if sh.nextBase > core.MaxSuperblockID-span {
		return 0, false, fmt.Errorf("service: shard %d ID space exhausted installing span %d (base %d + span > %d)",
			sh.idx, span, sh.nextBase, core.MaxSuperblockID)
	}
	base = sh.nextBase
	sh.nextBase += span
	return base, false, nil
}

// verifyErr surfaces the first invariant-wall violation in Verify mode.
func (sh *shard) verifyErr() error {
	if sh.chk == nil {
		return nil
	}
	return sh.chk.Err()
}

// execAccess looks up every id and returns the ones that missed, in
// order. The missed slice is freshly allocated — its ownership passes to
// the submitting client.
func (sh *shard) execAccess(t *Tenant, ids []core.SuperblockID) (missed []core.SuperblockID, err error) {
	if e := sh.eng; e != nil {
		base := t.base
		var accs, hits uint64
		for _, id := range ids {
			if id >= t.span {
				e.BatchAccessStats(accs, hits)
				t.foldAccesses(accs, hits)
				return missed, fmt.Errorf("service: tenant %q access %d outside declared ID span %d", t.name, id, t.span)
			}
			accs++
			if e.Contains(base + id) {
				hits++
				if sh.obsHit {
					sh.pol.ObserveHit(base + id)
				}
				continue
			}
			if sh.obsMiss {
				sh.pol.ObserveMiss(base + id)
			}
			missed = append(missed, id)
		}
		e.BatchAccessStats(accs, hits)
		t.foldAccesses(accs, hits)
		t.stats.Batches++
		return missed, nil
	}
	for _, id := range ids {
		if id >= t.span {
			return missed, fmt.Errorf("service: tenant %q access %d outside declared ID span %d", t.name, id, t.span)
		}
		t.stats.Accesses++
		if sh.cache.Access(t.base + id) {
			t.stats.Hits++
		} else {
			t.stats.Misses++
			missed = append(missed, id)
		}
	}
	t.stats.Batches++
	return missed, sh.verifyErr()
}

// execInsert installs regenerated blocks. Blocks that became resident
// since the miss was observed (another tenant on the shard regenerated
// them first) are skipped, not errors — sharing translations is the point
// of a shared cache.
func (sh *shard) execInsert(t *Tenant, blocks []core.Superblock) (inserted int, err error) {
	fast := sh.eng != nil
	before := snapshotEvictions(sh.cache.Stats())
	for _, sb := range blocks {
		mapped, merr := sh.remap(t, sb, fast)
		if merr != nil {
			t.creditEvictions(sh, before)
			return inserted, merr
		}
		if sh.cache.Contains(mapped.ID) {
			continue
		}
		if ierr := sh.cache.Insert(mapped); ierr != nil {
			t.creditEvictions(sh, before)
			return inserted, fmt.Errorf("service: tenant %q shard %d: %w", t.name, sh.idx, ierr)
		}
		inserted++
		t.stats.InsertedBlocks++
		t.stats.InsertedBytes += uint64(mapped.Size)
	}
	t.creditEvictions(sh, before)
	t.stats.Batches++
	return inserted, sh.verifyErr()
}

// execReplay runs the miss-driven replay protocol (access, regenerate on
// miss, insert — exactly what package sim does single-threaded) for a
// batch of ids.
func (sh *shard) execReplay(t *Tenant, ids []core.SuperblockID, regen func(core.SuperblockID) (core.Superblock, error)) error {
	if sh.eng != nil {
		return sh.execReplayEngine(t, ids, regen)
	}
	before := snapshotEvictions(sh.cache.Stats())
	for _, id := range ids {
		if id >= t.span {
			t.creditEvictions(sh, before)
			return fmt.Errorf("service: tenant %q access %d outside declared ID span %d", t.name, id, t.span)
		}
		t.stats.Accesses++
		if sh.cache.Access(t.base + id) {
			t.stats.Hits++
			continue
		}
		t.stats.Misses++
		sb, err := regen(id)
		if err != nil {
			t.creditEvictions(sh, before)
			return fmt.Errorf("service: tenant %q regenerate %d: %w", t.name, id, err)
		}
		mapped, err := sh.remap(t, sb, false)
		if err != nil {
			t.creditEvictions(sh, before)
			return err
		}
		if err := sh.cache.Insert(mapped); err != nil {
			t.creditEvictions(sh, before)
			return fmt.Errorf("service: tenant %q shard %d: %w", t.name, sh.idx, err)
		}
		t.stats.InsertedBlocks++
		t.stats.InsertedBytes += uint64(mapped.Size)
	}
	t.creditEvictions(sh, before)
	t.stats.Batches++
	return sh.verifyErr()
}

// execReplayEngine is the zero-allocation replay loop against the
// concrete engine, mirroring sim's specialized kernel discipline: access
// and hit counters fold in batches via BatchAccessStats, observer
// dispatch is hoisted to pre-resolved flags, and counter-reading policies
// (core.CounterReader) get their flush before every Insert so OnInserted
// sees exact counters. Error paths reconcile the partial tallies before
// returning so the double-entry ledger stays balanced.
func (sh *shard) execReplayEngine(t *Tenant, ids []core.SuperblockID, regen func(core.SuperblockID) (core.Superblock, error)) error {
	e := sh.eng
	base := t.base
	before := snapshotEvictions(e.Stats())
	var accs, hits uint64
	for _, id := range ids {
		if id >= t.span {
			e.BatchAccessStats(accs, hits)
			t.foldAccesses(accs, hits)
			t.creditEvictions(sh, before)
			return fmt.Errorf("service: tenant %q access %d outside declared ID span %d", t.name, id, t.span)
		}
		accs++
		if e.Contains(base + id) {
			hits++
			if sh.obsHit {
				sh.pol.ObserveHit(base + id)
			}
			continue
		}
		if sh.ctrReads {
			e.BatchAccessStats(accs, hits)
			t.foldAccesses(accs, hits)
			accs, hits = 0, 0
		}
		if sh.obsMiss {
			sh.pol.ObserveMiss(base + id)
		}
		sb, err := regen(id)
		if err != nil {
			e.BatchAccessStats(accs, hits)
			t.foldAccesses(accs, hits)
			t.creditEvictions(sh, before)
			return fmt.Errorf("service: tenant %q regenerate %d: %w", t.name, id, err)
		}
		mapped, err := sh.remap(t, sb, true)
		if err != nil {
			e.BatchAccessStats(accs, hits)
			t.foldAccesses(accs, hits)
			t.creditEvictions(sh, before)
			return err
		}
		if err := e.Insert(mapped); err != nil {
			e.BatchAccessStats(accs, hits)
			t.foldAccesses(accs, hits)
			t.creditEvictions(sh, before)
			return fmt.Errorf("service: tenant %q shard %d: %w", t.name, sh.idx, err)
		}
		t.stats.InsertedBlocks++
		t.stats.InsertedBytes += uint64(mapped.Size)
	}
	e.BatchAccessStats(accs, hits)
	t.foldAccesses(accs, hits)
	t.creditEvictions(sh, before)
	t.stats.Batches++
	return nil
}

// remap translates a tenant-local superblock into the shard's ID space.
// On the devirtualized fast path the links go through the shard's
// reusable scratch buffer — safe because the engine's link table copies
// link values at declare time and never retains the slice. The generic
// path allocates fresh links: Verify mode's oracle retains inserted
// superblocks, and third-party caches may too.
func (sh *shard) remap(t *Tenant, sb core.Superblock, reuseScratch bool) (core.Superblock, error) {
	if sb.ID >= t.span {
		return sb, fmt.Errorf("service: tenant %q block %d outside declared ID span %d", t.name, sb.ID, t.span)
	}
	sb.ID += t.base
	if n := len(sb.Links); n > 0 {
		var links []core.SuperblockID
		if reuseScratch {
			if cap(sh.linkScratch) < n {
				sh.linkScratch = make([]core.SuperblockID, 2*n)
			}
			links = sh.linkScratch[:n]
		} else {
			links = make([]core.SuperblockID, n)
		}
		for i, to := range sb.Links {
			if to >= t.span {
				return sb, fmt.Errorf("service: tenant %q link target %d outside declared ID span %d", t.name, to, t.span)
			}
			links[i] = t.base + to
		}
		sb.Links = links
	}
	return sb, nil
}

// execRegister places a tenant on the shard: contiguous ID-base remap,
// tenant list append, and a dense-table warm-up so batch replay never
// pays grow-reallocations on the hot path.
func (sh *shard) execRegister(name string, span core.SuperblockID) (*Tenant, error) {
	if sh.nextBase > core.MaxSuperblockID-span {
		return nil, fmt.Errorf("service: shard %d ID space exhausted registering %q (base %d + span %d > %d)",
			sh.idx, name, sh.nextBase, span, core.MaxSuperblockID)
	}
	t := &Tenant{name: name, base: sh.nextBase, span: span}
	t.sh.Store(sh)
	sh.nextBase += span
	sh.tenants = append(sh.tenants, t)
	// Pre-size the engine's dense ID tables for the tenant's remapped
	// range. Every in-tree policy exposes Reserve through the shared
	// engine; third-party caches simply skip the warm-up.
	raw := sh.cache
	if sh.chk != nil {
		raw = sh.chk.Unwrap()
	}
	if r, ok := raw.(interface{ Reserve(core.SuperblockID) }); ok {
		r.Reserve(sh.nextBase - 1)
	}
	return t, nil
}

// publishIfWanted publishes a snapshot only if a reader asked for one
// since the last publication — the steady-state batch path pays one
// atomic swap and nothing else.
func (sh *shard) publishIfWanted() {
	if !sh.wantSnap.Swap(false) {
		return
	}
	sh.publish()
}

// publish snapshots the engine counters and every tenant ledger at the
// current generation and wakes waiting readers. The shard snapshot is
// stored under snapMu so a reader can never miss the broadcast: it either
// sees the fresh snapshot before waiting or is on the condition variable
// when the broadcast fires.
func (sh *shard) publish() {
	for _, t := range sh.tenants {
		t.snap.Store(&tenantSnap{gen: sh.gen, stats: t.stats})
	}
	s := &statsSnap{gen: sh.gen, stats: *sh.cache.Stats()}
	sh.snapMu.Lock()
	sh.snap.Store(s)
	sh.snapMu.Unlock()
	sh.snapCond.Broadcast()
}

// refresh blocks until the published snapshots are at least as new as
// every mutation that completed before the call. Readers that find a
// fresh snapshot return without synchronizing with the owner at all;
// stale readers ask the owner to publish at its next batch boundary (or
// immediately, when idle, via nudge) and wait. After the owner exits its
// final publication carries the final generation, so post-Close readers
// always take the fast path.
func (sh *shard) refresh() {
	g := sh.doneGen.Load()
	if s := sh.snap.Load(); s.gen >= g {
		return
	}
	sh.snapMu.Lock()
	for sh.snap.Load().gen < g {
		sh.wantSnap.Store(true)
		select {
		case sh.nudge <- struct{}{}:
		default:
		}
		sh.snapCond.Wait()
	}
	sh.snapMu.Unlock()
}

// statsSnapshot returns the shard's engine-side counters, at least as new
// as every batch that completed before the call.
func (sh *shard) statsSnapshot() core.Stats {
	sh.refresh()
	return sh.snap.Load().stats
}

// tenantSnapshot returns one tenant's ledger with the same freshness
// guarantee as statsSnapshot.
func (sh *shard) tenantSnapshot(t *Tenant) TenantStats {
	sh.refresh()
	if s := t.snap.Load(); s != nil {
		return s.stats
	}
	return TenantStats{}
}

type structuralChecker interface{ CheckInvariants() error }

// checkLedger verifies one shard: invariant wall, structural checks, and
// the double-entry ledger (tenant counters must sum exactly to the
// engine's core.Stats). It runs on the owner goroutine as an opCheck
// control envelope — naturally serialized with batches — or directly
// once the owner has exited and the shard is quiesced.
func (sh *shard) checkLedger() error {
	if err := sh.verifyErr(); err != nil {
		return fmt.Errorf("service: shard %d invariant wall: %w", sh.idx, err)
	}
	if sc, ok := sh.cache.(structuralChecker); ok {
		if err := sc.CheckInvariants(); err != nil {
			return fmt.Errorf("service: shard %d structure: %w", sh.idx, err)
		}
	}
	// Double-entry identity with migration transfer columns: engine
	// counters are cumulative and stay behind when a tenant leaves, and a
	// tenant's ledger arrives with history the engine never saw, so
	//   sum(tenant ledgers) + xferOut == engine + xferIn
	// holds exactly on every shard, mid-migration included (each side of
	// a migration is updated atomically within one control envelope).
	var sum TenantStats
	for _, t := range sh.tenants {
		sum.addLedger(t.stats)
	}
	sum.addLedger(sh.xferOut)
	eng := sh.cache.Stats()
	in := &sh.xferIn
	for _, c := range []struct {
		name           string
		tenant, engine uint64
	}{
		{"Accesses", sum.Accesses, eng.Accesses + in.Accesses},
		{"Hits", sum.Hits, eng.Hits + in.Hits},
		{"Misses", sum.Misses, eng.Misses + in.Misses},
		{"InsertedBlocks", sum.InsertedBlocks, eng.InsertedBlocks + in.InsertedBlocks},
		{"InsertedBytes", sum.InsertedBytes, eng.InsertedBytes + in.InsertedBytes},
		{"EvictionInvocations", sum.EvictionInvocations, eng.EvictionInvocations + in.EvictionInvocations},
		{"BlocksEvicted", sum.BlocksEvicted, eng.BlocksEvicted + in.BlocksEvicted},
		{"BytesEvicted", sum.BytesEvicted, eng.BytesEvicted + in.BytesEvicted},
	} {
		if c.tenant != c.engine {
			return fmt.Errorf("service: shard %d ledger mismatch on %s: tenants+xferOut sum to %d, engine+xferIn counted %d",
				sh.idx, c.name, c.tenant, c.engine)
		}
	}
	return nil
}
