// Package service turns the single-threaded code-cache engine into a
// thread-safe, sharded, multi-tenant cache service with a shared-nothing
// core.
//
// The paper motivates bounded code caches by multiprogramming (§2.3):
// several programs pressure one cache at once. ShareJIT pushes the same
// idea to production shape — one shared code cache serving many concurrent
// clients. This package is that frontend for the dynocache engine:
//
//   - the arena is split into independent shards, each exclusively owned
//     by one owner goroutine — no shard mutex exists, so unrelated
//     tenants never contend and the owner replays against the concrete
//     engine with the same devirtualized, zero-allocation loop as the
//     solo replay kernels;
//   - clients submit work as batches (AccessBatch / InsertBatch /
//     ReplayBatch) carried by pooled envelopes over a per-shard MPSC
//     queue; one queue handoff amortizes over many cache operations and
//     the steady-state replay path allocates nothing;
//   - tenants are routed to shards by name hash (or pinned explicitly),
//     and tenants that share a shard share its cache capacity, the way
//     ShareJIT clients share one translation cache; each tenant declares
//     an ID span at registration and the service remaps its superblock
//     IDs onto a contiguous per-shard base (exactly the discipline
//     workload.Interleave uses), so tenants can never alias each other's
//     code;
//   - admission is queue-depth-based: each shard accepts at most
//     QueueDepth in-flight batches, and excess load is rejected with a
//     *BacklogError retry-after hint (scaled by an EWMA of owner-measured
//     batch service times) instead of queueing without bound;
//   - stats readers (ShardStats / AggregateStats / Tenant.Stats) never
//     block the hot path: the owner publishes copy-on-write snapshots via
//     atomic pointers at batch boundaries, and only when a reader asked;
//   - every counter is double-entry: per-tenant stats accumulate on the
//     owner goroutine alongside the engine's own core.Stats, and
//     CheckConsistency proves the two ledgers agree, on top of the
//     per-operation invariant wall internal/check provides in Verify
//     mode.
package service

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"dynocache/internal/check"
	"dynocache/internal/core"
)

// DefaultQueueDepth bounds in-flight batches per shard when Config leaves
// QueueDepth zero.
const DefaultQueueDepth = 32

// Config describes the shard layout of a Service.
type Config struct {
	// Shards is the number of independent cache shards (>= 1), each with
	// its own owner goroutine.
	Shards int
	// Policy is the eviction policy instantiated in every shard.
	Policy core.Policy
	// ShardCapacity is the arena size of each shard in bytes.
	ShardCapacity int
	// QueueDepth bounds the batches a shard admits at once (queued for
	// the owner plus executing); it is also the request channel's buffer,
	// so admitted batches never block on the queue itself. Load beyond it
	// is rejected with a *BacklogError. 0 means DefaultQueueDepth.
	QueueDepth int
	// Verify wraps every shard in the check package's invariant wall (and
	// oracle differ for FIFO-family policies): each cache operation is
	// validated on the owner goroutine.
	Verify bool
}

// Service is the sharded multi-tenant frontend over core caches.
type Service struct {
	cfg    Config
	shards []*shard

	envPool sync.Pool

	mu      sync.Mutex
	tenants map[string]*Tenant
	// regMu serializes whole registrations (dup-check through owner
	// placement through map insert), so the name map only ever holds
	// fully constructed tenants.
	regMu sync.Mutex

	// routes is the versioned routing table: an immutable epoch-stamped
	// name→shard map swapped atomically on every placement change
	// (registration or migration flip). Readers pay one atomic load.
	routes atomic.Pointer[routeTable]
	// migMu serializes migrations: at most one tenant is in the frozen
	// extract→install→flip window at a time, and post-Close rollback
	// installs on quiesced shards are fenced against direct ledger reads.
	migMu sync.Mutex

	// Migration observability, exported via MigrationStats.
	migStarted   atomic.Uint64
	migCompleted atomic.Uint64
	migAborted   atomic.Uint64
	migBytes     atomic.Uint64
	flipLastNs   atomic.Int64
	flipMaxNs    atomic.Int64
	flipTotalNs  atomic.Int64

	closed    atomic.Bool
	closeOnce sync.Once
	stop      chan struct{}
}

// New builds a service with cfg.Shards independent caches and starts one
// owner goroutine per shard. Call Close to stop them.
func New(cfg Config) (*Service, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("service: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Service{
		cfg:     cfg,
		tenants: make(map[string]*Tenant),
		stop:    make(chan struct{}),
	}
	s.envPool.New = func() any { return &envelope{done: make(chan struct{}, 1)} }
	s.routes.Store(&routeTable{shardOf: map[string]int{}})
	for i := 0; i < cfg.Shards; i++ {
		raw, err := cfg.Policy.New(cfg.ShardCapacity)
		if err != nil {
			return nil, fmt.Errorf("service: shard %d: %w", i, err)
		}
		sh := &shard{
			idx:       i,
			depth:     cfg.QueueDepth,
			svc:       s,
			reqs:      make(chan *envelope, cfg.QueueDepth),
			ctl:       make(chan *envelope),
			nudge:     make(chan struct{}, 1),
			ownerDone: make(chan struct{}),
			cache:     raw,
		}
		sh.snapCond = sync.NewCond(&sh.snapMu)
		sh.snap.Store(&statsSnap{})
		if cfg.Verify {
			sh.chk = check.Wrap(raw, cfg.Policy)
			sh.cache = sh.chk
		} else if eb, ok := raw.(core.EngineBacked); ok {
			sh.eng = eb.ReplayEngine()
			sh.pol = sh.eng.BoundPolicy()
			sh.obsHit, sh.obsMiss = sh.eng.Observers()
			if cr, ok := sh.pol.(core.CounterReader); ok {
				sh.ctrReads = cr.ReadsCounters()
			}
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		go sh.ownerLoop()
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Service) NumShards() int { return len(s.shards) }

// Close stops the shard owners. Batches already admitted (including ones
// racing the close) are drained to completion first; submissions arriving
// after Close begins fail with ErrClosed. Close is idempotent and returns
// once every owner has exited; the service's state remains readable
// (stats, consistency checks) afterwards.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.stop)
		for _, sh := range s.shards {
			<-sh.ownerDone
		}
	})
}

// routeFor hashes a tenant name onto a shard index.
func (s *Service) routeFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Register adds a tenant, routing it to a shard by name hash. idSpan
// declares the tenant's dense ID universe: every superblock ID the tenant
// will ever present must lie in [0, idSpan). The service remaps the range
// onto a contiguous base in the shard's ID space. Registering the same
// name twice is an error.
func (s *Service) Register(name string, idSpan core.SuperblockID) (*Tenant, error) {
	return s.register(name, s.routeFor(name), idSpan)
}

// RegisterPinned adds a tenant on an explicit shard, for callers that
// manage placement themselves (e.g. one tenant per shard for reproducible
// load tests).
func (s *Service) RegisterPinned(name string, shard int, idSpan core.SuperblockID) (*Tenant, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("service: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	return s.register(name, shard, idSpan)
}

// register validates the request, then hands placement to the shard's
// owner goroutine as an opRegister control envelope — the owner mutates
// its tenant list and ID-base allocator between batches, so registration
// can safely race batch submission from other tenants.
func (s *Service) register(name string, shardIdx int, idSpan core.SuperblockID) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("service: tenant name must be non-empty")
	}
	if idSpan < 1 {
		return nil, fmt.Errorf("service: tenant %q declares empty ID span", name)
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	s.mu.Lock()
	_, dup := s.tenants[name]
	s.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("service: tenant %q already registered", name)
	}
	sh := s.shards[shardIdx]
	env := s.getEnv()
	env.op = opRegister
	env.name = name
	env.span = idSpan
	if !sh.control(env) {
		s.putEnv(env)
		return nil, ErrClosed
	}
	t, err := env.newTenant, env.err
	s.putEnv(env)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tenants[name] = t
	s.setRouteLocked(name, shardIdx)
	s.mu.Unlock()
	return t, nil
}

// Tenant looks up a registered tenant by name.
func (s *Service) Tenant(name string) (*Tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	return t, ok
}

// TenantNames returns the registered tenant names, sorted.
func (s *Service) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ShardStats snapshots every shard's engine-side core.Stats, indexed by
// shard. Readers never block the owners' hot path: each shard returns its
// published copy-on-write snapshot, refreshed to cover every batch that
// completed before this call.
func (s *Service) ShardStats() []core.Stats {
	out := make([]core.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.statsSnapshot()
	}
	return out
}

// AggregateStats sums the engine-side counters across shards.
func (s *Service) AggregateStats() core.Stats {
	var agg core.Stats
	for _, st := range s.ShardStats() {
		agg.Accesses += st.Accesses
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.InsertedBlocks += st.InsertedBlocks
		agg.InsertedBytes += st.InsertedBytes
		agg.EvictionInvocations += st.EvictionInvocations
		agg.BlocksEvicted += st.BlocksEvicted
		agg.BytesEvicted += st.BytesEvicted
		agg.FullFlushes += st.FullFlushes
		agg.LinksPatched += st.LinksPatched
		agg.PendingRelinks += st.PendingRelinks
		agg.UnlinkEvents += st.UnlinkEvents
		agg.InterUnitLinksRemoved += st.InterUnitLinksRemoved
		agg.IntraUnitLinksFlushed += st.IntraUnitLinksFlushed
	}
	return agg
}

// CheckConsistency closes the double-entry ledger: for every shard, the
// tenant-side counters must sum exactly to the engine-side core.Stats,
// the invariant wall (Verify mode) must be clean, and caches that
// self-validate must pass their structural checks. The check runs on each
// shard's owner goroutine, naturally serialized with batches; a snapshot
// taken mid-burst reflects whichever batches finished. After Close the
// shards are quiesced and the check reads them directly.
func (s *Service) CheckConsistency() error {
	for _, sh := range s.shards {
		env := s.getEnv()
		env.op = opCheck
		var err error
		if sh.control(env) {
			err = env.err
		} else {
			// Owner exited: the shard is quiesced, but a post-Close
			// migration rollback may still be re-installing directly —
			// fence with the migration lock before reading owner state.
			s.migMu.Lock()
			err = sh.checkLedger()
			s.migMu.Unlock()
		}
		s.putEnv(env)
		if err != nil {
			return err
		}
	}
	return nil
}
