// Package service turns the single-threaded code-cache engine into a
// thread-safe, sharded, multi-tenant cache service.
//
// The paper motivates bounded code caches by multiprogramming (§2.3):
// several programs pressure one cache at once. ShareJIT pushes the same
// idea to production shape — one shared code cache serving many concurrent
// clients. This package is that frontend for the dynocache engine:
//
//   - the arena is split into independent shards, each one core.Cache
//     behind its own mutex, so unrelated tenants never contend;
//   - tenants are routed to shards by name hash (or pinned explicitly),
//     and tenants that share a shard share its cache capacity, the way
//     ShareJIT clients share one translation cache; each tenant declares
//     an ID span at registration and the service remaps its superblock
//     IDs onto a contiguous per-shard base (exactly the discipline
//     workload.Interleave uses), so tenants can never alias each other's
//     code;
//   - the client protocol is batched (AccessBatch / InsertBatch /
//     ReplayBatch) so one lock acquisition amortizes over many cache
//     operations;
//   - admission is bounded: each shard accepts at most QueueDepth
//     concurrent batches, and excess load is rejected with a
//     retry-after hint instead of queueing without bound;
//   - every counter is double-entry: per-tenant stats accumulate under
//     the same shard lock as the engine's own core.Stats, and
//     CheckConsistency proves the two ledgers agree, on top of the
//     per-operation invariant wall internal/check provides in Verify
//     mode.
package service

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynocache/internal/check"
	"dynocache/internal/core"
)

// DefaultQueueDepth bounds concurrent batches per shard when Config leaves
// QueueDepth zero.
const DefaultQueueDepth = 32

// Config describes the shard layout of a Service.
type Config struct {
	// Shards is the number of independent cache shards (>= 1).
	Shards int
	// Policy is the eviction policy instantiated in every shard.
	Policy core.Policy
	// ShardCapacity is the arena size of each shard in bytes.
	ShardCapacity int
	// QueueDepth bounds the batches a shard admits at once (queued on the
	// shard mutex plus executing). Load beyond it is rejected with a
	// *BacklogError. 0 means DefaultQueueDepth.
	QueueDepth int
	// Verify wraps every shard in the check package's invariant wall (and
	// oracle differ for FIFO-family policies): each cache operation is
	// validated while the shard lock is held.
	Verify bool
}

// BacklogError reports that a shard's admission queue was full. Clients
// should back off for roughly RetryAfter and resubmit the same batch.
type BacklogError struct {
	Shard      int
	RetryAfter time.Duration
}

// Error implements error.
func (e *BacklogError) Error() string {
	return fmt.Sprintf("service: shard %d backlogged, retry after %v", e.Shard, e.RetryAfter)
}

// TenantStats is one tenant's side of the double-entry ledger: the subset
// of core.Stats attributable to a single client, plus service-level
// admission counters. Eviction counters are attributed to the tenant whose
// insert triggered the eviction (the victim blocks may belong to any
// tenant on the shard).
type TenantStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64

	InsertedBlocks uint64
	InsertedBytes  uint64

	EvictionInvocations uint64
	BlocksEvicted       uint64
	BytesEvicted        uint64

	Batches  uint64 // batches admitted and executed
	Rejected uint64 // batches refused with a BacklogError
}

// shard is one lock domain: a cache, its admission gate, and the tenants
// routed to it.
type shard struct {
	idx   int
	depth int // admission bound (Config.QueueDepth)
	mu    sync.Mutex
	cache core.Cache     // the engine, possibly wrapped
	chk   *check.Checked // non-nil in Verify mode

	// pending counts batches admitted but not yet finished (waiting on mu
	// or executing); admission compares it against the queue depth without
	// taking the lock.
	pending atomic.Int64
	// ewmaNanos tracks recent batch service time for retry-after hints.
	ewmaNanos atomic.Int64

	tenants  []*Tenant         // registered tenants routed here (guarded by Service.mu)
	nextBase core.SuperblockID // next free tenant ID base (guarded by Service.mu)
}

// Tenant is a registered client's handle. All methods are safe for
// concurrent use, but a single tenant is typically driven by one
// goroutine.
type Tenant struct {
	name  string
	shard *shard
	// base/span place the tenant's dense ID range [0, span) at
	// [base, base+span) in its shard's ID space, so co-located tenants
	// never collide and the shard's slice-indexed tables stay compact.
	base  core.SuperblockID
	span  core.SuperblockID
	stats TenantStats // guarded by shard.mu, except Rejected
	// rejected is updated outside the shard lock (rejection happens at
	// admission, before the lock) and folded into Stats() snapshots.
	rejected atomic.Uint64
}

// Name returns the tenant's registered name.
func (t *Tenant) Name() string { return t.name }

// Shard returns the index of the shard this tenant is routed to.
func (t *Tenant) Shard() int { return t.shard.idx }

// Service is the sharded multi-tenant frontend over core caches.
type Service struct {
	cfg    Config
	shards []*shard

	mu      sync.Mutex
	tenants map[string]*Tenant
}

// New builds a service with cfg.Shards independent caches.
func New(cfg Config) (*Service, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("service: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Service{cfg: cfg, tenants: make(map[string]*Tenant)}
	for i := 0; i < cfg.Shards; i++ {
		raw, err := cfg.Policy.New(cfg.ShardCapacity)
		if err != nil {
			return nil, fmt.Errorf("service: shard %d: %w", i, err)
		}
		sh := &shard{idx: i, depth: cfg.QueueDepth, cache: raw}
		if cfg.Verify {
			sh.chk = check.Wrap(raw, cfg.Policy)
			sh.cache = sh.chk
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Service) NumShards() int { return len(s.shards) }

// routeFor hashes a tenant name onto a shard index.
func (s *Service) routeFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Register adds a tenant, routing it to a shard by name hash. idSpan
// declares the tenant's dense ID universe: every superblock ID the tenant
// will ever present must lie in [0, idSpan). The service remaps the range
// onto a contiguous base in the shard's ID space. Registering the same
// name twice is an error.
func (s *Service) Register(name string, idSpan core.SuperblockID) (*Tenant, error) {
	return s.register(name, s.routeFor(name), idSpan)
}

// RegisterPinned adds a tenant on an explicit shard, for callers that
// manage placement themselves (e.g. one tenant per shard for reproducible
// load tests).
func (s *Service) RegisterPinned(name string, shard int, idSpan core.SuperblockID) (*Tenant, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("service: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	return s.register(name, shard, idSpan)
}

func (s *Service) register(name string, shardIdx int, idSpan core.SuperblockID) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("service: tenant name must be non-empty")
	}
	if idSpan < 1 {
		return nil, fmt.Errorf("service: tenant %q declares empty ID span", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return nil, fmt.Errorf("service: tenant %q already registered", name)
	}
	sh := s.shards[shardIdx]
	if sh.nextBase > core.MaxSuperblockID-idSpan {
		return nil, fmt.Errorf("service: shard %d ID space exhausted registering %q (base %d + span %d > %d)",
			shardIdx, name, sh.nextBase, idSpan, core.MaxSuperblockID)
	}
	t := &Tenant{name: name, shard: sh, base: sh.nextBase, span: idSpan}
	sh.nextBase += idSpan
	s.tenants[name] = t
	sh.tenants = append(sh.tenants, t)
	// Pre-size the engine's dense ID tables for the tenant's remapped
	// range, so batch replay never pays grow-reallocations under the
	// shard lock. Every in-tree policy exposes Reserve through the shared
	// engine; third-party caches simply skip the warm-up.
	raw := sh.cache
	if sh.chk != nil {
		raw = sh.chk.Unwrap()
	}
	if r, ok := raw.(interface{ Reserve(core.SuperblockID) }); ok {
		r.Reserve(sh.nextBase - 1)
	}
	return t, nil
}

// Tenant looks up a registered tenant by name.
func (s *Service) Tenant(name string) (*Tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	return t, ok
}

// admit reserves an admission slot on the shard, or rejects with a
// *BacklogError carrying a retry hint scaled by the current backlog.
func (sh *shard) admit(depth int) error {
	if n := sh.pending.Add(1); int(n) > depth {
		sh.pending.Add(-1)
		ewma := time.Duration(sh.ewmaNanos.Load())
		if ewma <= 0 {
			ewma = 100 * time.Microsecond
		}
		return &BacklogError{Shard: sh.idx, RetryAfter: time.Duration(n) * ewma}
	}
	return nil
}

// finish releases the admission slot and folds the batch's service time
// into the retry-hint EWMA (α = 1/8; a plain store is fine — the value is
// a hint, not an invariant).
func (sh *shard) finish(start time.Time) {
	last := time.Since(start).Nanoseconds()
	old := sh.ewmaNanos.Load()
	sh.ewmaNanos.Store(old - old/8 + last/8)
	sh.pending.Add(-1)
}

// verifyErr surfaces the first invariant-wall violation in Verify mode.
// Called with the shard lock held.
func (sh *shard) verifyErr() error {
	if sh.chk == nil {
		return nil
	}
	return sh.chk.Err()
}

// AccessBatch looks up every id under one lock acquisition and returns the
// ids that missed, in order. The caller regenerates the missing blocks and
// submits them with InsertBatch.
func (t *Tenant) AccessBatch(ids []core.SuperblockID) (missed []core.SuperblockID, err error) {
	sh := t.shard
	if err := sh.admit(sh.depth); err != nil {
		t.rejected.Add(1)
		return nil, err
	}
	start := time.Now()
	defer sh.finish(start)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, id := range ids {
		if id >= t.span {
			return missed, fmt.Errorf("service: tenant %q access %d outside declared ID span %d", t.name, id, t.span)
		}
		t.stats.Accesses++
		if sh.cache.Access(t.base + id) {
			t.stats.Hits++
		} else {
			t.stats.Misses++
			missed = append(missed, id)
		}
	}
	t.stats.Batches++
	return missed, sh.verifyErr()
}

// remap translates a tenant-local superblock into the shard's ID space.
func (t *Tenant) remap(sb core.Superblock) (core.Superblock, error) {
	if sb.ID >= t.span {
		return sb, fmt.Errorf("service: tenant %q block %d outside declared ID span %d", t.name, sb.ID, t.span)
	}
	sb.ID += t.base
	if len(sb.Links) > 0 {
		links := make([]core.SuperblockID, len(sb.Links))
		for i, to := range sb.Links {
			if to >= t.span {
				return sb, fmt.Errorf("service: tenant %q link target %d outside declared ID span %d", t.name, to, t.span)
			}
			links[i] = t.base + to
		}
		sb.Links = links
	}
	return sb, nil
}

// InsertBatch installs regenerated blocks under one lock acquisition.
// Blocks that became resident since the miss was observed (another tenant
// on the shard regenerated them first) are skipped, not errors — sharing
// translations is the point of a shared cache. Returns how many blocks
// this call actually inserted.
func (t *Tenant) InsertBatch(blocks []core.Superblock) (inserted int, err error) {
	sh := t.shard
	if err := sh.admit(sh.depth); err != nil {
		t.rejected.Add(1)
		return 0, err
	}
	start := time.Now()
	defer sh.finish(start)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	before := snapshotEvictions(sh.cache.Stats())
	for _, sb := range blocks {
		mapped, err := t.remap(sb)
		if err != nil {
			t.creditEvictions(before)
			return inserted, err
		}
		if sh.cache.Contains(mapped.ID) {
			continue
		}
		if err := sh.cache.Insert(mapped); err != nil {
			t.creditEvictions(before)
			return inserted, fmt.Errorf("service: tenant %q shard %d: %w", t.name, sh.idx, err)
		}
		inserted++
		t.stats.InsertedBlocks++
		t.stats.InsertedBytes += uint64(mapped.Size)
	}
	t.creditEvictions(before)
	t.stats.Batches++
	return inserted, sh.verifyErr()
}

// ReplayBatch runs the miss-driven replay protocol (access, regenerate on
// miss, insert — exactly what package sim does single-threaded) for a
// batch of ids under one lock acquisition. regen supplies the superblock
// for a missed id. This is the client driver the load harness uses: with a
// tenant alone on its shard, the tenant's counters after ReplayBatch
// replay are bit-identical to a single-threaded sim replay of the same
// stream.
func (t *Tenant) ReplayBatch(ids []core.SuperblockID, regen func(core.SuperblockID) (core.Superblock, error)) error {
	sh := t.shard
	if err := sh.admit(sh.depth); err != nil {
		t.rejected.Add(1)
		return err
	}
	start := time.Now()
	defer sh.finish(start)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	before := snapshotEvictions(sh.cache.Stats())
	for _, id := range ids {
		if id >= t.span {
			t.creditEvictions(before)
			return fmt.Errorf("service: tenant %q access %d outside declared ID span %d", t.name, id, t.span)
		}
		t.stats.Accesses++
		if sh.cache.Access(t.base + id) {
			t.stats.Hits++
			continue
		}
		t.stats.Misses++
		sb, err := regen(id)
		if err != nil {
			t.creditEvictions(before)
			return fmt.Errorf("service: tenant %q regenerate %d: %w", t.name, id, err)
		}
		mapped, err := t.remap(sb)
		if err != nil {
			t.creditEvictions(before)
			return err
		}
		if err := sh.cache.Insert(mapped); err != nil {
			t.creditEvictions(before)
			return fmt.Errorf("service: tenant %q shard %d: %w", t.name, sh.idx, err)
		}
		t.stats.InsertedBlocks++
		t.stats.InsertedBytes += uint64(mapped.Size)
	}
	t.creditEvictions(before)
	t.stats.Batches++
	return sh.verifyErr()
}

// evictionCounters is the slice of core.Stats attributed per tenant.
type evictionCounters struct {
	invocations, blocks, bytes uint64
}

func snapshotEvictions(s *core.Stats) evictionCounters {
	return evictionCounters{s.EvictionInvocations, s.BlocksEvicted, s.BytesEvicted}
}

// creditEvictions attributes the evictions since before to this tenant.
// Called with the shard lock held.
func (t *Tenant) creditEvictions(before evictionCounters) {
	now := snapshotEvictions(t.shard.cache.Stats())
	t.stats.EvictionInvocations += now.invocations - before.invocations
	t.stats.BlocksEvicted += now.blocks - before.blocks
	t.stats.BytesEvicted += now.bytes - before.bytes
}

// Stats snapshots the tenant's ledger.
func (t *Tenant) Stats() TenantStats {
	t.shard.mu.Lock()
	s := t.stats
	t.shard.mu.Unlock()
	s.Rejected = t.rejected.Load()
	return s
}

// ShardStats snapshots every shard's engine-side core.Stats, indexed by
// shard.
func (s *Service) ShardStats() []core.Stats {
	out := make([]core.Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = *sh.cache.Stats()
		sh.mu.Unlock()
	}
	return out
}

// AggregateStats sums the engine-side counters across shards.
func (s *Service) AggregateStats() core.Stats {
	var agg core.Stats
	for _, st := range s.ShardStats() {
		agg.Accesses += st.Accesses
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.InsertedBlocks += st.InsertedBlocks
		agg.InsertedBytes += st.InsertedBytes
		agg.EvictionInvocations += st.EvictionInvocations
		agg.BlocksEvicted += st.BlocksEvicted
		agg.BytesEvicted += st.BytesEvicted
		agg.FullFlushes += st.FullFlushes
		agg.LinksPatched += st.LinksPatched
		agg.PendingRelinks += st.PendingRelinks
		agg.UnlinkEvents += st.UnlinkEvents
		agg.InterUnitLinksRemoved += st.InterUnitLinksRemoved
		agg.IntraUnitLinksFlushed += st.IntraUnitLinksFlushed
	}
	return agg
}

// CheckConsistency closes the double-entry ledger: for every shard, the
// tenant-side counters must sum exactly to the engine-side core.Stats, the
// invariant wall (Verify mode) must be clean, and caches that self-validate
// must pass their structural checks. Quiesce the service before calling —
// in-flight batches hold shard locks, so the check serializes with them
// but a snapshot taken mid-burst reflects whichever batches finished.
func (s *Service) CheckConsistency() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.checkLedgerLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

type structuralChecker interface{ CheckInvariants() error }

// checkLedgerLocked verifies one shard with its lock held.
func (sh *shard) checkLedgerLocked() error {
	if err := sh.verifyErr(); err != nil {
		return fmt.Errorf("service: shard %d invariant wall: %w", sh.idx, err)
	}
	if sc, ok := sh.cache.(structuralChecker); ok {
		if err := sc.CheckInvariants(); err != nil {
			return fmt.Errorf("service: shard %d structure: %w", sh.idx, err)
		}
	}
	var sum TenantStats
	for _, t := range sh.tenants {
		sum.Accesses += t.stats.Accesses
		sum.Hits += t.stats.Hits
		sum.Misses += t.stats.Misses
		sum.InsertedBlocks += t.stats.InsertedBlocks
		sum.InsertedBytes += t.stats.InsertedBytes
		sum.EvictionInvocations += t.stats.EvictionInvocations
		sum.BlocksEvicted += t.stats.BlocksEvicted
		sum.BytesEvicted += t.stats.BytesEvicted
	}
	eng := sh.cache.Stats()
	for _, c := range []struct {
		name           string
		tenant, engine uint64
	}{
		{"Accesses", sum.Accesses, eng.Accesses},
		{"Hits", sum.Hits, eng.Hits},
		{"Misses", sum.Misses, eng.Misses},
		{"InsertedBlocks", sum.InsertedBlocks, eng.InsertedBlocks},
		{"InsertedBytes", sum.InsertedBytes, eng.InsertedBytes},
		{"EvictionInvocations", sum.EvictionInvocations, eng.EvictionInvocations},
		{"BlocksEvicted", sum.BlocksEvicted, eng.BlocksEvicted},
		{"BytesEvicted", sum.BytesEvicted, eng.BytesEvicted},
	} {
		if c.tenant != c.engine {
			return fmt.Errorf("service: shard %d ledger mismatch on %s: tenants sum to %d, engine counted %d",
				sh.idx, c.name, c.tenant, c.engine)
		}
	}
	return nil
}

// TenantNames returns the registered tenant names, sorted.
func (s *Service) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
