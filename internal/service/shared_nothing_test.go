package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dynocache/internal/core"
	"dynocache/internal/sim"
)

// TestZeroAllocServiceBatch is the service-layer twin of sim's
// TestZeroAllocReplayKernel: once a tenant's tables are warm and the
// shard is in eviction steady state, a ReplayBatch round trip — envelope
// checkout, queue handoff, owner-side devirtualized replay with link
// remapping, stats fold, envelope return — must allocate nothing.
func TestZeroAllocServiceBatch(t *testing.T) {
	tr := synth(t, "gzip", 0.3)
	capacity, err := sim.CapacityFor(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 8},
		ShardCapacity: capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ten, err := svc.RegisterPinned("gzip", 0, span(tr))
	if err != nil {
		t.Fatal(err)
	}
	if ten.sh.Load().eng == nil {
		t.Fatal("units policy should take the devirtualized engine path")
	}
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return tr.Blocks[id], nil
	}
	// Warm up: one full replay pass fills the cache past capacity (steady
	// eviction churn), sizes the owner's link scratch, and seeds the
	// envelope pool.
	replayAll(t, ten, tr, 4096)
	chunk := tr.Accesses[:4096]
	avg := testing.AllocsPerRun(5, func() {
		if err := ten.ReplayBatch(chunk, regen); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state ReplayBatch allocates %.1f objects per batch, want 0", avg)
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// gatedRegen blocks every regeneration until release is closed, pinning
// the shard owner mid-batch so tests can hold the queue full for as long
// as they need.
type gatedRegen struct {
	release chan struct{}
	entered chan struct{} // receives one token per regen call
}

func newGatedRegen() *gatedRegen {
	return &gatedRegen{
		release: make(chan struct{}),
		entered: make(chan struct{}, 64),
	}
}

func (g *gatedRegen) regen(id core.SuperblockID) (core.Superblock, error) {
	g.entered <- struct{}{}
	<-g.release
	return core.Superblock{ID: id, Size: 64}, nil
}

// Saturating a shard's queue with genuinely in-flight batches (not a
// hand-tweaked counter) must reject the next submission with a
// BacklogError whose retry hint scales with the backlog, and the rejected
// batches must be counted on the tenant.
func TestBackpressureUnderSaturatedQueue(t *testing.T) {
	const depth = 2
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyFine},
		ShardCapacity: 1 << 16,
		QueueDepth:    depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ten, err := svc.Register("a", 16)
	if err != nil {
		t.Fatal(err)
	}
	gate := newGatedRegen()
	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(id core.SuperblockID) {
			defer wg.Done()
			if err := ten.ReplayBatch([]core.SuperblockID{id}, gate.regen); err != nil {
				t.Error(err)
			}
		}(core.SuperblockID(i))
	}
	// Wait until the owner is pinned inside the first batch; the second
	// occupies the remaining queue slot (pending reaches depth).
	<-gate.entered
	deadline := time.Now().Add(5 * time.Second)
	for ten.sh.Load().pending.Load() < depth {
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		time.Sleep(100 * time.Microsecond)
	}
	_, err = ten.AccessBatch([]core.SuperblockID{0})
	var busy *BacklogError
	if !errors.As(err, &busy) {
		t.Fatalf("want BacklogError from saturated queue, got %v", err)
	}
	if busy.Shard != 0 || busy.RetryAfter <= 0 {
		t.Fatalf("bad backlog hint: %+v", busy)
	}
	close(gate.release)
	wg.Wait()
	if got := ten.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	if got := ten.Stats().Batches; got != depth {
		t.Fatalf("Batches = %d, want %d", got, depth)
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Close must drain: batches in flight when Close begins complete
// normally, Close blocks until the owners have finished them, and only
// then do the owner goroutines exit. Submissions after Close fail with
// ErrClosed, stats and the consistency check remain readable, and a
// second Close is a no-op.
func TestCloseDrainsInFlightBatches(t *testing.T) {
	svc, err := New(Config{
		Shards:        2,
		Policy:        core.Policy{Kind: core.PolicyFine},
		ShardCapacity: 1 << 16,
		QueueDepth:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := svc.RegisterPinned("a", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	gate := newGatedRegen()
	const inflight = 3
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(id core.SuperblockID) {
			defer wg.Done()
			if err := ten.ReplayBatch([]core.SuperblockID{id}, gate.regen); err != nil {
				t.Errorf("in-flight batch failed across Close: %v", err)
			}
		}(core.SuperblockID(i))
	}
	<-gate.entered // owner pinned mid-batch
	// Wait until the other batches hold admission slots too, so all three
	// are genuinely in flight when Close begins.
	deadline := time.Now().Add(5 * time.Second)
	for ten.sh.Load().pending.Load() < inflight {
		if time.Now().After(deadline) {
			t.Fatal("batches never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate.release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after batches drained")
	}
	wg.Wait()
	if err := ten.ReplayBatch([]core.SuperblockID{0}, gate.regen); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReplayBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := svc.Register("late", 8); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close = %v, want ErrClosed", err)
	}
	if got := ten.Stats().Accesses; got != inflight {
		t.Fatalf("Accesses = %d after drain, want %d", got, inflight)
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	svc.Close() // idempotent
}

// Registration is an owner-side control operation; racing it against
// batch traffic from already-registered tenants (and against stats
// readers) must neither corrupt the ledger nor trip the race detector.
func TestRegisterRacesBatchSubmission(t *testing.T) {
	svc, err := New(Config{
		Shards:        1,
		Policy:        core.Policy{Kind: core.PolicyUnits, Units: 4},
		ShardCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	first, err := svc.Register("tenant-0", 32)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]core.SuperblockID, 32)
	for i := range ids {
		ids[i] = core.SuperblockID(i)
	}
	regen := func(id core.SuperblockID) (core.Superblock, error) {
		return core.Superblock{ID: id, Size: 96 + int(id)}, nil
	}
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			for {
				err := first.ReplayBatch(ids, regen)
				if err == nil {
					break
				}
				var busy *BacklogError
				if !errors.As(err, &busy) {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Register a stream of tenants onto the same shard while the batch
	// traffic runs, immediately exercising each new tenant once.
	const newcomers = 24
	names := make([]string, 0, newcomers)
	for i := 0; i < newcomers; i++ {
		name := "tenant-" + string(rune('a'+i))
		ten, err := svc.Register(name, 32)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		for {
			err := ten.ReplayBatch(ids[:4], regen)
			if err == nil {
				break
			}
			var busy *BacklogError
			if !errors.As(err, &busy) {
				t.Fatal(err)
			}
		}
		if st := ten.Stats(); st.Accesses != 4 {
			t.Fatalf("%s: accesses %d right after first batch, want 4", name, st.Accesses)
		}
	}
	close(stopTraffic)
	wg.Wait()
	for _, name := range names {
		if _, ok := svc.Tenant(name); !ok {
			t.Errorf("tenant %q lost", name)
		}
	}
	if err := svc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
