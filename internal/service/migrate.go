package service

import (
	"fmt"
	"time"
)

// Live tenant migration.
//
// The frozen FNV hash decided placement once, at registration, and the
// service could never revisit it: a tenant that turned hot stayed pinned
// to its birth shard while siblings on the same shard queued behind it.
// This file replaces that with a versioned routing table plus a live
// handoff protocol:
//
//	freeze  — the tenant's migrating flag fences admission; batches get
//	          a *BacklogError retry-after, never silent loss
//	extract — an opExtract control envelope on the source owner lifts
//	          the tenant's resident span out of the cache in eviction
//	          order (core.SpanMigrator), charges the ledger to xferOut,
//	          and parks the vacated ID range
//	install — an opInstall control envelope on the destination owner
//	          re-binds the state (room-making evictions are real and
//	          credited to the tenant), charges xferIn
//	flip    — the tenant's shard pointer and the routing table swap to
//	          the destination, then the fence drops; the first retry
//	          lands on the new shard
//
// Control envelopes are serialized with batches by the owner loops, so
// each shard's double-entry ledger identity holds at every step, and a
// whole-span extract/install into an empty shard preserves the engine's
// exact geometry — solo replay equality survives arbitrary migration
// schedules.

// routeTable is one immutable version of the name→shard route. The epoch
// increments on every placement change; clients that cache a shard
// decision can compare epochs instead of re-reading the map.
type routeTable struct {
	epoch   uint64
	shardOf map[string]int
}

// setRouteLocked publishes a new routing-table version with name→shard
// updated. Caller holds s.mu (the table is also rebuilt under s.mu so
// concurrent registrations cannot lose updates).
func (s *Service) setRouteLocked(name string, shard int) {
	old := s.routes.Load()
	next := &routeTable{epoch: old.epoch + 1, shardOf: make(map[string]int, len(old.shardOf)+1)}
	for n, i := range old.shardOf {
		next.shardOf[n] = i
	}
	next.shardOf[name] = shard
	s.routes.Store(next)
}

// RouteEpoch returns the current routing-table version. It increments on
// every registration and every migration flip.
func (s *Service) RouteEpoch() uint64 { return s.routes.Load().epoch }

// ShardOf reports the shard a tenant name currently routes to.
func (s *Service) ShardOf(name string) (int, bool) {
	i, ok := s.routes.Load().shardOf[name]
	return i, ok
}

// MigrationStats is the service's migration observability counters.
type MigrationStats struct {
	Started    uint64
	Completed  uint64
	Aborted    uint64
	BytesMoved uint64 // resident bytes relocated by completed migrations
	// Flip pause is the client-visible frozen window of a migration,
	// from fence-up to fence-drop.
	FlipPauseLast  time.Duration
	FlipPauseMax   time.Duration
	FlipPauseTotal time.Duration
}

// MigrationStats snapshots the migration counters.
func (s *Service) MigrationStats() MigrationStats {
	return MigrationStats{
		Started:        s.migStarted.Load(),
		Completed:      s.migCompleted.Load(),
		Aborted:        s.migAborted.Load(),
		BytesMoved:     s.migBytes.Load(),
		FlipPauseLast:  time.Duration(s.flipLastNs.Load()),
		FlipPauseMax:   time.Duration(s.flipMaxNs.Load()),
		FlipPauseTotal: time.Duration(s.flipTotalNs.Load()),
	}
}

// Migrate moves a tenant's resident cache state to another shard with a
// live handoff. It blocks until the flip completes (typically well under
// a millisecond: two control envelopes and an in-memory state splice).
// Migrating a tenant onto its current shard is a no-op. On any failure
// the tenant's state is re-installed on the source and the tenant
// resumes there; Migrate never loses state or leaves a tenant frozen on
// a live service.
func (s *Service) Migrate(name string, dstIdx int) error {
	if dstIdx < 0 || dstIdx >= len(s.shards) {
		return fmt.Errorf("service: shard %d out of range [0, %d)", dstIdx, len(s.shards))
	}
	t, ok := s.Tenant(name)
	if !ok {
		return fmt.Errorf("service: tenant %q not registered", name)
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	src := t.sh.Load()
	dst := s.shards[dstIdx]
	if src == dst {
		return nil
	}
	// Refuse up front for policies without span migration (the cache
	// pointers are fixed at New, so reading them off-owner is safe).
	if _, ok := src.migrator(); !ok {
		return fmt.Errorf("service: policy %q does not support live migration", s.cfg.Policy)
	}
	if _, ok := dst.migrator(); !ok {
		return fmt.Errorf("service: policy %q does not support live migration", s.cfg.Policy)
	}

	s.migStarted.Add(1)
	t.migrating.Store(true)
	freeze := time.Now()
	abort := func(err error) error {
		t.migrating.Store(false)
		s.migAborted.Add(1)
		return err
	}

	env := s.getEnv()
	env.op = opExtract
	env.tenant = t
	if !src.control(env) {
		s.putEnv(env)
		return abort(ErrClosed)
	}
	pkt, err := env.mig, env.err
	s.putEnv(env)
	if err != nil {
		return abort(err)
	}

	env = s.getEnv()
	env.op = opInstall
	env.mig = pkt
	delivered := dst.control(env)
	err = env.err
	s.putEnv(env)
	if !delivered || err != nil {
		// The destination refused (ID-space exhaustion, closed owner):
		// re-install on the source, whose just-vacated span is parked on
		// its free list, and resume there. InstallSpan validates before
		// mutating, so the destination is untouched.
		if rerr := s.reinstall(src, pkt); rerr != nil {
			// State lost — unreachable for a well-formed packet on the
			// shard that just produced it. Keep the tenant fenced so the
			// broken ledger cannot be extended, and say so loudly.
			s.migAborted.Add(1)
			return fmt.Errorf("service: migrate %q: rollback failed (%v) after install error: %w", name, rerr, err)
		}
		if !delivered {
			err = ErrClosed
		}
		return abort(fmt.Errorf("service: migrate %q to shard %d: %w", name, dstIdx, err))
	}

	// Flip: publish the new shard before dropping the fence, so any
	// client that observes migrating==false also observes the new route.
	t.sh.Store(dst)
	s.mu.Lock()
	s.setRouteLocked(name, dstIdx)
	s.mu.Unlock()
	t.migrating.Store(false)

	pause := time.Since(freeze).Nanoseconds()
	s.flipLastNs.Store(pause)
	s.flipTotalNs.Add(pause)
	for {
		cur := s.flipMaxNs.Load()
		if pause <= cur || s.flipMaxNs.CompareAndSwap(cur, pause) {
			break
		}
	}
	s.migCompleted.Add(1)
	s.migBytes.Add(uint64(pkt.state.Bytes))
	return nil
}

// reinstall puts a packet back on the shard that produced it, through
// the owner when it is alive, directly once it has exited (the shard is
// quiesced then, and the caller holds migMu which fences post-Close
// ledger reads).
func (s *Service) reinstall(sh *shard, pkt *migrationPacket) error {
	env := s.getEnv()
	env.op = opInstall
	env.mig = pkt
	if sh.control(env) {
		err := env.err
		s.putEnv(env)
		return err
	}
	s.putEnv(env)
	<-sh.ownerDone
	return sh.execInstall(pkt)
}
