package dbt

import (
	"errors"
	"strings"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/interp"
	"dynocache/internal/isa"
	"dynocache/internal/program"
)

// runRef executes a program under the plain interpreter.
func runRef(t *testing.T, p *program.Program, budget uint64) *interp.Machine {
	t.Helper()
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(program.MemSize)
	if err := m.Load(code, program.CodeBase, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(budget); err != nil {
		t.Fatal(err)
	}
	return m
}

// runDBT executes a program under the DBT with the given config.
func runDBT(t *testing.T, p *program.Program, cfg Config, budget uint64) *DBT {
	t.Helper()
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(code, program.CodeBase, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(budget); err != nil {
		t.Fatalf("dbt run: %v", err)
	}
	return d
}

// assertEquivalent compares guest-visible state between interpreter and
// DBT: all registers except the PC (halt sites differ: the DBT halts
// inside the code cache) plus the data region of memory.
func assertEquivalent(t *testing.T, ref *interp.Machine, d *DBT, label string) {
	t.Helper()
	m := d.Machine()
	if !m.Halted {
		t.Fatalf("%s: DBT did not halt", label)
	}
	// Translation legitimately changes dynamic instruction counts a little
	// (calls expand into return-address materialization, elided jumps
	// disappear), so counts must only be close, not equal.
	lo, hi := float64(ref.InstCount)*0.85, float64(ref.InstCount)*1.15
	if got := float64(m.InstCount); got < lo || got > hi {
		t.Errorf("%s: guest instruction count %d too far from reference %d", label, m.InstCount, ref.InstCount)
	}
	for r := 0; r < isa.NumRegs; r++ {
		if m.Regs[r] != ref.Regs[r] {
			t.Errorf("%s: r%d = %#x, ref %#x", label, r, m.Regs[r], ref.Regs[r])
		}
	}
	for addr := program.DataBase; addr < program.StackTop; addr += 4 {
		if m.Mem[addr] != ref.Mem[addr] {
			t.Fatalf("%s: memory differs at %#x", label, addr)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Policy = core.Policy{Kind: core.PolicyLRU}
	if err := bad.Validate(); err == nil {
		t.Error("LRU policy should be rejected")
	}
	bad = cfg
	bad.CacheCapacity = 16
	if err := bad.Validate(); err == nil {
		t.Error("tiny capacity should be rejected")
	}
	bad = cfg
	bad.HotThreshold = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero threshold should be rejected")
	}
	bad = cfg
	bad.MaxTraceBlocks = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero trace blocks should be rejected")
	}
	bad = cfg
	bad.CacheBase = program.MemSize - 1024
	if _, err := New(bad); err == nil {
		t.Error("cache past memory end should be rejected")
	}
}

func TestLoadOverlapRejected(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, int(program.StackTop)+4096)
	if err := d.Load(huge, 0, 0); err == nil {
		t.Error("code overlapping the cache region should be rejected")
	}
}

func TestDBTSimpleLoopEquivalence(t *testing.T) {
	src := `
        addi r1, r0, 200
        addi r2, r0, 0
loop:   addi r2, r2, 3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`
	code, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := interp.New(program.MemSize)
	if err := ref.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(10000); err != nil {
		t.Fatal(err)
	}
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10000); err != nil {
		t.Fatal(err)
	}
	if d.Machine().Regs[2] != ref.Regs[2] || d.Machine().Regs[2] != 600 {
		t.Fatalf("r2 = %d, want 600", d.Machine().Regs[2])
	}
	s := d.Stats()
	if s.SuperblocksFormed == 0 {
		t.Fatal("hot loop never formed a superblock")
	}
	if s.CacheInsts == 0 {
		t.Fatal("no instructions executed from the code cache")
	}
	// Before the superblock exists, each warm-up iteration runs its bb
	// fragment and traps once (the backward branch targets a trace-head
	// candidate). After formation the loop closes on itself: at most a
	// handful of further traps.
	if s.Traps > uint64(DefaultConfig().HotThreshold)+10 {
		t.Fatalf("loop should stay in the cache after formation, got %d traps", s.Traps)
	}
}

func TestDBTEquivalenceAcrossPolicies(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	ref := runRef(t, p, budget)
	policies := []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 4},
		{Kind: core.PolicyUnits, Units: 16},
		{Kind: core.PolicyFine},
	}
	for _, pol := range policies {
		cfg := DefaultConfig()
		cfg.Policy = pol
		d := runDBT(t, p, cfg, budget)
		assertEquivalent(t, ref, d, pol.String())
		if d.Stats().SuperblocksFormed == 0 {
			t.Errorf("%s: no superblocks formed", pol)
		}
	}
}

func TestDBTEquivalenceUnderHeavyEviction(t *testing.T) {
	// Deliberately tiny caches force constant eviction, regeneration,
	// unlinking, and re-chaining in both generations; behaviour must be
	// unchanged.
	gen := program.DefaultGenConfig(23)
	gen.NumFuncs = 48
	gen.PhaseFuncs = 16
	gen.Phases = 6
	p, err := program.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	ref := runRef(t, p, budget)
	for _, pol := range []core.Policy{
		{Kind: core.PolicyFlush},
		{Kind: core.PolicyUnits, Units: 8},
		{Kind: core.PolicyFine},
	} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		cfg.CacheCapacity = 4 << 10
		cfg.BBCacheCapacity = 8 << 10
		d := runDBT(t, p, cfg, budget)
		assertEquivalent(t, ref, d, "tiny-"+pol.String())
		evictions := d.Cache().Stats().EvictionInvocations + d.BBCache().Stats().EvictionInvocations
		if evictions == 0 {
			t.Errorf("%s: tiny caches never evicted", pol)
		}
		if err := d.Cache().CheckInvariants(); err != nil {
			t.Errorf("%s: %v", pol, err)
		}
		if err := d.BBCache().CheckInvariants(); err != nil {
			t.Errorf("%s: bb cache: %v", pol, err)
		}
	}
}

func TestDBTChainingDisabledEquivalence(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	ref := runRef(t, p, budget)
	cfg := DefaultConfig()
	cfg.Chaining = false
	d := runDBT(t, p, cfg, budget)
	assertEquivalent(t, ref, d, "no-chaining")
	if d.Stats().StubsPatched != 0 {
		t.Fatalf("chaining disabled but %d stubs patched", d.Stats().StubsPatched)
	}

	cfg.Chaining = true
	dc := runDBT(t, p, cfg, budget)
	if dc.Stats().StubsPatched == 0 {
		t.Fatal("chaining enabled but nothing patched")
	}
	// Table 2's effect: disabling chaining multiplies dispatcher traffic.
	if d.Stats().Traps <= dc.Stats().Traps {
		t.Fatalf("chaining off should trap more: off=%d on=%d", d.Stats().Traps, dc.Stats().Traps)
	}
	// And modelled execution time must blow up.
	slow := d.ModeledSeconds() / dc.ModeledSeconds()
	if slow < 2 {
		t.Fatalf("chaining-off slowdown = %.2fx, expected well above 2x", slow)
	}
}

func TestDBTDeterministic(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CacheCapacity = 16 << 10
	a := runDBT(t, p, cfg, 50_000_000)
	b := runDBT(t, p, cfg, 50_000_000)
	if a.Stats() != b.Stats() {
		t.Fatalf("same run differs:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	if *a.Cache().Stats() != *b.Cache().Stats() {
		t.Fatal("cache stats differ between identical runs")
	}
}

func TestDBTBudgetExhaustion(t *testing.T) {
	src := "loop: jmp loop"
	code, _ := isa.Assemble(src)
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10_000); !errors.Is(err, ErrBudget) {
		t.Fatalf("infinite loop should exhaust budget, got %v", err)
	}
}

func TestDBTIndirectCalls(t *testing.T) {
	src := `
        addi r3, r0, 400
main:   addi r1, r0, 36     ; address of f
        jalr r1
        addi r3, r3, -1
        bne  r3, r0, main
        halt
        nop
        nop
        nop
f:      addi r2, r2, 1
        jr   r15
`
	code, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := d.Machine().Regs[2]; got != 400 {
		t.Fatalf("r2 = %d, want 400", got)
	}
	if d.Stats().SuperblocksFormed == 0 {
		t.Fatal("indirect-call loop should form superblocks")
	}
}

func TestDBTStatsShape(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	d := runDBT(t, p, DefaultConfig(), 50_000_000)
	s := d.Stats()
	if s.BBsDiscovered == 0 || s.BBFragsTranslated == 0 {
		t.Fatalf("bb stats wrong: %+v", s)
	}
	if s.CacheInsts == 0 || s.InterpretedInsts == 0 {
		t.Fatalf("execution split wrong: %+v", s)
	}
	if s.TranslatedBytes == 0 || s.CacheEntries == 0 {
		t.Fatalf("cache stats wrong: %+v", s)
	}
	if d.ModeledInstructions() <= float64(s.CacheInsts) {
		t.Fatal("modeled cost must exceed raw guest work")
	}
	if d.ModeledSeconds() <= 0 {
		t.Fatal("modeled time must be positive")
	}
}

func TestTranslateTraceErrors(t *testing.T) {
	if _, err := translateTrace([]tracedBlock{
		{bb: &basicBlock{pc: 0, insts: []isa.Inst{{Op: isa.OpJr, Rs1: 15}}}, next: 64},
	}, stopIndirect, 0); err != nil {
		t.Fatalf("indirect trace should translate: %v", err)
	}
	// Discontinuous trace.
	b1 := &basicBlock{pc: 0, insts: []isa.Inst{{Op: isa.OpJmp, Imm: 3}}}
	b2 := &basicBlock{pc: 100, insts: []isa.Inst{{Op: isa.OpHalt}}}
	if _, err := translateTrace([]tracedBlock{{bb: b1, next: 16}, {bb: b2, next: 0}}, stopHalt, 0); err == nil {
		t.Error("discontinuity should be detected")
	}
}

func TestInvertBranch(t *testing.T) {
	pairs := map[isa.Opcode]isa.Opcode{
		isa.OpBeq: isa.OpBne, isa.OpBne: isa.OpBeq,
		isa.OpBlt: isa.OpBge, isa.OpBge: isa.OpBlt,
	}
	for op, want := range pairs {
		if got := invertBranch(op); got != want {
			t.Errorf("invertBranch(%s) = %s, want %s", op, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invertBranch on non-branch should panic")
		}
	}()
	invertBranch(isa.OpAdd)
}

func TestPadInsertionOnWrap(t *testing.T) {
	gen := program.DefaultGenConfig(17)
	gen.NumFuncs = 48
	gen.PhaseFuncs = 16
	p, err := program.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CacheCapacity = 4 << 10 // small enough to wrap many times
	cfg.BBCacheCapacity = 8 << 10
	d := runDBT(t, p, cfg, 50_000_000)
	if d.Stats().PadsInserted == 0 {
		t.Fatal("expected wrap pads in small caches")
	}
}

func TestDBTErrorMessages(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.handleTrap(999); err == nil || !strings.Contains(err.Error(), "dead stub") {
		t.Errorf("dead stub trap should error, got %v", err)
	}
}
