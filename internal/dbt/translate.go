package dbt

import (
	"fmt"

	"dynocache/internal/core"
	"dynocache/internal/isa"
)

// localStub describes one exit of a superblock before global stub indices
// are allocated.
type localStub struct {
	indirect bool
	reg      isa.Reg
	target   uint32 // direct exits: guest continuation PC
}

// translation is the policy-independent result of translating a trace.
type translation struct {
	headPC uint32
	body   []isa.Inst // straight-line superblock body
	// tail is the stub occupying the fall-through slot right after the
	// body (continuation or indirect exit); nil when the trace closes a
	// loop or halts.
	tail *localStub
	// sides are side-exit stubs placed after the tail slot; branch
	// instructions in the body are fixed up to target them.
	sides  []localStub
	fixups []stubFixup
	// loopClose marks traces that re-enter their own head: a direct jump
	// back to the body start is appended at install time (after
	// optimization, which may change the body length).
	loopClose bool
}

type stubFixup struct {
	bodyIdx int // branch instruction position in body
	side    int // index into sides
}

// instCount returns the total translated instruction count.
func (t *translation) instCount() int {
	n := len(t.body) + len(t.sides)
	if t.tail != nil {
		n++
	}
	if t.loopClose {
		n++
	}
	return n
}

// invertBranch returns the opposite condition.
func invertBranch(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.OpBeq:
		return isa.OpBne
	case isa.OpBne:
		return isa.OpBeq
	case isa.OpBlt:
		return isa.OpBge
	case isa.OpBge:
		return isa.OpBlt
	default:
		panic(fmt.Sprintf("dbt: invertBranch(%s)", op))
	}
}

// materializeLink emits instructions setting the link register to a guest
// address (translated calls must expose guest return addresses, never
// cache addresses, so returns flow through the dispatcher's hash lookup).
func materializeLink(body []isa.Inst, addr uint32) []isa.Inst {
	lo := int32(int16(uint16(addr)))
	hi := int32((addr - uint32(lo)) >> 16)
	body = append(body, isa.Inst{Op: isa.OpLui, Rd: isa.RLink, Imm: hi})
	return append(body, isa.Inst{Op: isa.OpAddi, Rd: isa.RLink, Rs1: isa.RLink, Imm: lo})
}

// translateTrace lowers a recorded trace into superblock code. Branches
// are re-pointed at exit stubs so that the recorded hot path falls
// through; calls materialize guest return addresses; indirect transfers
// and the final continuation become trap stubs.
func translateTrace(blocks []tracedBlock, reason stopReason, cont uint32) (*translation, error) {
	t := &translation{headPC: blocks[0].bb.pc}
	addSide := func(s localStub) int {
		t.sides = append(t.sides, s)
		return len(t.sides) - 1
	}
	for j, tb := range blocks {
		insts := tb.bb.insts
		for _, in := range insts[:len(insts)-1] {
			t.body = append(t.body, in)
		}
		term := tb.bb.terminator()
		termPC := tb.bb.pc + uint32((len(insts)-1)*isa.WordSize)
		fallPC := termPC + isa.WordSize
		switch {
		case isa.IsBranch(term.Op):
			taken := term.BranchTarget(termPC)
			followed := tb.next
			if taken == fallPC {
				break // degenerate branch: both ways continue in trace
			}
			var exitTo uint32
			br := isa.Inst{Rd: term.Rd, Rs1: term.Rs1}
			if followed == taken {
				// Hot path is the taken side: invert so the exit is the
				// (cold) fall-through.
				br.Op = invertBranch(term.Op)
				exitTo = fallPC
			} else if followed == fallPC {
				br.Op = term.Op
				exitTo = taken
			} else {
				return nil, fmt.Errorf("dbt: block %#x branch followed to %#x, neither %#x nor %#x",
					tb.bb.pc, followed, taken, fallPC)
			}
			si := addSide(localStub{target: exitTo})
			t.fixups = append(t.fixups, stubFixup{bodyIdx: len(t.body), side: si})
			t.body = append(t.body, br)
		case term.Op == isa.OpJmp:
			// Direct jump: the hot path simply falls through.
		case term.Op == isa.OpJal:
			t.body = materializeLink(t.body, fallPC)
		case term.Op == isa.OpJr:
			t.tail = &localStub{indirect: true, reg: term.Rs1}
		case term.Op == isa.OpJalr:
			t.body = materializeLink(t.body, fallPC)
			t.tail = &localStub{indirect: true, reg: term.Rs1}
		case term.Op == isa.OpHalt:
			t.body = append(t.body, term)
		default:
			return nil, fmt.Errorf("dbt: unexpected terminator %s in block %#x", term.Op, tb.bb.pc)
		}
		// Sanity: the recorded path must be contiguous.
		if j+1 < len(blocks) && tb.next != blocks[j+1].bb.pc {
			return nil, fmt.Errorf("dbt: trace discontinuity after block %#x", tb.bb.pc)
		}
	}
	switch reason {
	case stopLoopToHead:
		// Close the loop with a direct jump back to the superblock start:
		// the self-link of Figure 13. The jump itself is emitted at
		// install time, after optimization has settled the body length.
		t.loopClose = true
	case stopContinue:
		t.tail = &localStub{target: cont}
	case stopIndirect:
		if t.tail == nil {
			return nil, fmt.Errorf("dbt: indirect stop without an indirect tail stub")
		}
	case stopHalt:
		// Body already ends in halt.
	}
	return t, nil
}

// allocStub reserves a global stub index.
func (d *DBT) allocStub(st stubInfo) (int, error) {
	if n := len(d.freeStubs); n > 0 {
		idx := d.freeStubs[n-1]
		d.freeStubs = d.freeStubs[:n-1]
		st.live = true
		d.stubs[idx] = st
		return idx, nil
	}
	if len(d.stubs) >= 1<<15 {
		return 0, fmt.Errorf("dbt: stub table exhausted (%d live stubs)", len(d.stubs))
	}
	st.live = true
	d.stubs = append(d.stubs, st)
	return len(d.stubs) - 1, nil
}

// formAndInstall builds, translates, and installs the superblock headed at
// headPC, evicting under the configured policy as needed.
func (d *DBT) formAndInstall(headPC uint32) error {
	blocks, reason, cont, err := d.formTrace(headPC)
	if err != nil {
		return err
	}
	if !d.cfg.Chaining && reason == stopLoopToHead {
		// With linking disabled even the loop-closing self-link is
		// forbidden: every iteration returns to the dispatcher, which is
		// exactly why Table 2's slowdowns are so catastrophic.
		reason, cont = stopContinue, headPC
	}
	t, err := translateTrace(blocks, reason, cont)
	if err != nil {
		return err
	}
	if d.cfg.Optimize {
		ost := optimize(t)
		d.stats.OptConstFolded += uint64(ost.ConstFolded)
		d.stats.OptDeadRemoved += uint64(ost.DeadRemoved)
		d.stats.OptLoadsForwarded += uint64(ost.LoadsForwarded)
	}

	id := d.allocID(kindSuperblock)
	addr, err := d.installFragment(t, id, headPC, d.cache, d.cfg.CacheBase)
	if err != nil {
		return fmt.Errorf("dbt: superblock at %#x: %w", headPC, err)
	}
	d.hash[headPC] = addr
	d.idOf[headPC] = id
	if d.recorder != nil {
		// Formation is a lookup miss: define the region and log the entry.
		d.recorder.define(headPC, t.instCount()*isa.WordSize)
		d.recorder.touch(headPC)
	}
	if reason == stopLoopToHead {
		if err := d.cache.AddLink(id, id); err != nil {
			return err
		}
		d.stats.StubsPatched++ // the loop-closing jump is a baked-in self-link
		if d.recorder != nil {
			d.recorder.link(headPC, headPC)
		}
	}
	d.stats.SuperblocksFormed++
	d.stats.TranslatedBytes += uint64(t.instCount() * isa.WordSize)

	if d.cfg.Chaining {
		// Eagerly chain: this block's direct exits to resident
		// superblocks...
		for _, idx := range d.stubsOf[id] {
			st := d.stubs[idx]
			if st.indirect {
				continue
			}
			if taddr, ok := d.hash[st.target]; ok {
				d.patchStub(idx, taddr, d.idOf[st.target])
			}
		}
		// ...and resident fragments' pending exits to this new head.
		waiting := d.pendingStubs[headPC]
		for _, idx := range append([]int(nil), waiting...) {
			st := d.stubs[idx]
			if st.live && !st.patched {
				d.patchStub(idx, addr, id)
			}
		}
	}
	return nil
}

// installFragment places a translated fragment into a managed cache
// region: circular-buffer padding, insertion (with evictions), stub
// allocation, encoding, and the shared registries. It returns the guest
// address of the installed code.
func (d *DBT) installFragment(t *translation, id core.SuperblockID, headPC uint32, cache *core.FIFOCache, base uint32) (uint32, error) {
	size := t.instCount() * isa.WordSize
	cap := cache.Capacity()
	if size > cap/2 {
		return 0, fmt.Errorf("dbt: fragment of %d bytes too large for cache of %d", size, cap)
	}

	// Circular-buffer placement: translated code must be physically
	// contiguous, so a fragment that would wrap pads out the end gap with
	// a dead pseudo-block that ages out like any other.
	if phys := int(cache.VirtualHead() % int64(cap)); phys+size > cap {
		pad := core.Superblock{ID: d.allocID(kindPad), Size: cap - phys}
		if err := cache.Insert(pad); err != nil {
			return 0, fmt.Errorf("dbt: inserting wrap pad: %w", err)
		}
		d.stats.PadsInserted++
		d.stats.PadBytes += uint64(pad.Size)
	}

	if err := cache.Insert(core.Superblock{ID: id, SrcPC: uint64(headPC), Size: size}); err != nil {
		return 0, fmt.Errorf("dbt: inserting fragment: %w", err)
	}
	voff, ok := cache.Where(id)
	if !ok {
		return 0, fmt.Errorf("dbt: fragment %d vanished after insert", id)
	}
	addr := base + uint32(voff%int64(cap))

	// Allocate global stubs and finalize the instruction stream:
	// [body][loop jump][tail stub][side stubs...]
	words := make([]isa.Inst, 0, t.instCount())
	words = append(words, t.body...)
	if t.loopClose {
		words = append(words, isa.Inst{Op: isa.OpJmp, Imm: int32(-(len(words) + 1))})
	}
	tailCount := 0
	var stubIdxs []int
	if t.tail != nil {
		tailCount = 1
		idx, err := d.allocStub(stubInfo{
			owner: id, addr: addr + uint32(len(words)*isa.WordSize),
			indirect: t.tail.indirect, reg: t.tail.reg, target: t.tail.target,
		})
		if err != nil {
			return 0, err
		}
		stubIdxs = append(stubIdxs, idx)
		words = append(words, isa.Inst{Op: isa.OpTrap, Imm: int32(idx)})
	}
	loopCount := 0
	if t.loopClose {
		loopCount = 1
	}
	for si, s := range t.sides {
		pos := len(t.body) + loopCount + tailCount + si
		idx, err := d.allocStub(stubInfo{
			owner: id, addr: addr + uint32(pos*isa.WordSize),
			target: s.target,
		})
		if err != nil {
			return 0, err
		}
		stubIdxs = append(stubIdxs, idx)
		words = append(words, isa.Inst{Op: isa.OpTrap, Imm: int32(idx)})
	}
	// Branch fixups to side stubs.
	for _, fx := range t.fixups {
		pos := len(t.body) + loopCount + tailCount + fx.side
		words[fx.bodyIdx].Imm = int32(pos - (fx.bodyIdx + 1))
	}

	code, err := isa.EncodeProgram(words)
	if err != nil {
		return 0, fmt.Errorf("dbt: encoding fragment at %#x: %w", headPC, err)
	}
	copy(d.m.Mem[addr:], code)

	d.pcOf[id] = headPC
	d.stubsOf[id] = stubIdxs
	for _, idx := range stubIdxs {
		st := d.stubs[idx]
		if !st.indirect {
			d.pendingStubs[st.target] = append(d.pendingStubs[st.target], idx)
		}
	}
	return addr, nil
}

// patchStub rewrites a stub's trap into a direct jump to targetAddr and
// records the chaining link (Section 3.1's back-pointer bookkeeping).
func (d *DBT) patchStub(idx int, targetAddr uint32, targetID core.SuperblockID) {
	st := &d.stubs[idx]
	if !st.live || st.patched || st.indirect {
		return
	}
	off := (int64(targetAddr) - int64(st.addr) - isa.WordSize) / isa.WordSize
	jmp := isa.MustEncode(isa.Inst{Op: isa.OpJmp, Imm: int32(off)})
	putWord(d.m.Mem, st.addr, jmp)
	st.patched = true
	st.linkTo = targetID
	d.inbound[targetID] = append(d.inbound[targetID], idx)
	d.pendingStubs[st.target] = removeInt(d.pendingStubs[st.target], idx)
	d.stats.StubsPatched++
	// Register the link with the owning cache's link table for the
	// intra/inter-unit accounting; cross-cache links (bb fragment to
	// superblock) are tracked physically only.
	switch {
	case !d.isBB(st.owner) && !d.isBB(targetID):
		_ = d.cache.AddLink(st.owner, targetID)
		if d.recorder != nil {
			d.recorder.link(d.pcOf[st.owner], d.pcOf[targetID])
		}
	case d.isBB(st.owner) && d.isBB(targetID):
		_ = d.bbFrag.AddLink(st.owner, targetID)
		d.stats.BBToBBLinks++
	}
}

// unpatchStub restores a stub's trap instruction after its target was
// evicted; the exit returns to the dispatcher until re-chained.
func (d *DBT) unpatchStub(idx int) {
	st := &d.stubs[idx]
	trap := isa.MustEncode(isa.Inst{Op: isa.OpTrap, Imm: int32(idx)})
	putWord(d.m.Mem, st.addr, trap)
	st.patched = false
	st.linkTo = 0
	d.pendingStubs[st.target] = append(d.pendingStubs[st.target], idx)
	d.stats.StubsUnpatched++
}

// onEvict is the cache hook: it runs once per eviction invocation with the
// superblocks physically removed, restoring traps on surviving inbound
// links and retiring the dead blocks' own stubs and hash entries.
func (d *DBT) onEvict(ids []core.SuperblockID) {
	dead := make(map[core.SuperblockID]bool, len(ids))
	for _, id := range ids {
		dead[id] = true
	}
	for _, id := range ids {
		for _, sidx := range d.inbound[id] {
			st := &d.stubs[sidx]
			if !st.live || !st.patched || st.linkTo != id {
				continue
			}
			if dead[st.owner] {
				st.patched = false // dies with its owner; nothing to write
				continue
			}
			d.unpatchStub(sidx)
		}
		delete(d.inbound, id)
	}
	for _, id := range ids {
		for _, sidx := range d.stubsOf[id] {
			st := &d.stubs[sidx]
			if st.patched {
				d.inbound[st.linkTo] = removeInt(d.inbound[st.linkTo], sidx)
			} else if !st.indirect {
				d.pendingStubs[st.target] = removeInt(d.pendingStubs[st.target], sidx)
			}
			st.live = false
			st.patched = false
			d.freeStubs = append(d.freeStubs, sidx)
		}
		delete(d.stubsOf, id)
		if pc, ok := d.pcOf[id]; ok {
			if d.isBB(id) {
				delete(d.bbHash, pc)
				delete(d.bbIDOf, pc)
			} else {
				delete(d.hash, pc)
				delete(d.idOf, pc)
			}
			delete(d.pcOf, id)
		}
	}
}

func putWord(mem []byte, addr uint32, w uint32) {
	mem[addr] = byte(w)
	mem[addr+1] = byte(w >> 8)
	mem[addr+2] = byte(w >> 16)
	mem[addr+3] = byte(w >> 24)
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
